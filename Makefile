.PHONY: all build lint test check bench-json clean

all: build

build:
	dune build

lint:
	dune build @lint

test:
	dune runtest

# Fully-timed kernel benchmark artefact, stamped with the current commit.
bench-json:
	GIT_REV=$$(git rev-parse --short HEAD) dune exec bench/main.exe -- json -o BENCH_kernels.json
	dune exec tools/benchcheck/benchcheck.exe -- BENCH_kernels.json

# The single-command gate CI should run (equivalently: dune build @ci).
check:
	dune build @lint
	dune build
	dune runtest
	dune build @bench-smoke

clean:
	dune clean
