.PHONY: all build lint test check clean

all: build

build:
	dune build

lint:
	dune build @lint

test:
	dune runtest

# The single-command gate CI should run (equivalently: dune build @ci).
check:
	dune build @lint
	dune build
	dune runtest

clean:
	dune clean
