.PHONY: all build lint lint-project test check prop diff bench-json bench-diff evidence clean

all: build

build:
	dune build

lint:
	dune build @lint @lint-project

# The whole-project interprocedural pass alone (R9-R11), run directly so
# its scan-surface summary (files / functions / shard-reachable counts)
# is always printed — a silently-shrinking scan shows up as a dropped
# count, not a silently-green gate.
lint-project:
	dune build tools/lint/divlint.exe
	dune exec tools/lint/divlint.exe -- --project

test:
	dune runtest

# Fully-timed kernel benchmark artefact, stamped with the current commit.
bench-json:
	GIT_REV=$$(git rev-parse --short HEAD) dune exec bench/main.exe -- json -o BENCH_kernels.json
	dune exec tools/benchcheck/benchcheck.exe -- BENCH_kernels.json

# Per-kernel speedup/regression report between two bench artefacts.
# Defaults compare the committed full-mode BENCH_kernels.json against a
# freshly timed run (written to BENCH_candidate.json and left in place
# for inspection); override either side or the threshold with
#   make bench-diff BENCH_BASE=old.json BENCH_CAND=new.json BENCH_MAX_REGRESSION=10
# The gate (exit 1 past the threshold) only engages when both artefacts
# carry full-mode timings.
BENCH_BASE ?= BENCH_kernels.json
BENCH_CAND ?= BENCH_candidate.json
BENCH_MAX_REGRESSION ?= 25
bench-diff:
	@if [ ! -f $(BENCH_CAND) ]; then \
	  GIT_REV=$$(git rev-parse --short HEAD) dune exec bench/main.exe -- json -o $(BENCH_CAND); \
	fi
	dune exec tools/benchdiff/benchdiff.exe -- --max-regression $(BENCH_MAX_REGRESSION) $(BENCH_BASE) $(BENCH_CAND)

# The single-command gate CI should run. The test suite executes twice,
# on a 1-domain (inline sequential) and a 2-domain default pool: the
# determinism contract says the outputs cannot differ, and running both
# ways keeps that claim continuously tested. (--force, because dune
# would otherwise replay the cached first run.) The property suite
# (test/test_prop.exe) draws its cases from a fixed seed by default;
# `make check PROP_SEED=1234` replays/explores a different case stream
# (empty means the built-in seed).
PROP_SEED ?=
check:
	dune build @lint
	dune build tools/lint/divlint.exe
	dune exec tools/lint/divlint.exe -- --project
	dune build
	DIVREL_DOMAINS=1 PROP_SEED=$(PROP_SEED) dune runtest --force
	DIVREL_DOMAINS=2 PROP_SEED=$(PROP_SEED) dune runtest --force
	DIVREL_DOMAINS=2 PROP_SEED=271828 dune exec test/test_diff.exe
	DIVREL_DOMAINS=2 PROP_SEED=314159 dune exec test/test_diff.exe
	dune build @bench-smoke
	dune build @evidence-smoke
	dune build @adjudication-smoke
	dune build @serve-smoke

# Proven-in-use evidence pipeline, end to end: log a fleet campaign
# (E26, seed 42) and stream the run log through the assessor with
# windowed interim verdicts, printing the final text report.
evidence:
	dune build bin/experiments_cli.exe
	dune exec bin/experiments_cli.exe -- run E26 --seed 42 --shards 1 --log /tmp/divrel_e26_runlog.jsonl > /dev/null
	dune exec bin/experiments_cli.exe -- evidence /tmp/divrel_e26_runlog.jsonl --window 400 --profile uniform:1600

# Replay/explore the property suites on a chosen case stream:
#   make prop PROP_SEED=1234
# runs both Prop-based binaries (the harness properties and the
# differential oracle suite) with that base seed; empty means the
# built-in default (0x5eed_cafe).
prop:
	PROP_SEED=$(PROP_SEED) dune exec test/test_prop.exe
	PROP_SEED=$(PROP_SEED) dune exec test/test_diff.exe

# Just the differential oracle suite (analytic formulas vs simulation),
# same PROP_SEED replay contract as `make prop`.
diff:
	PROP_SEED=$(PROP_SEED) dune exec test/test_diff.exe

clean:
	dune clean
