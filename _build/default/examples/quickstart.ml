(* Quickstart: build a fault universe, read off the paper's headline
   quantities, and sanity-check them against Monte Carlo development.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A development process with ten potential faults. Each fault has a
     probability p of surviving development in a given version and a
     failure-region measure q (probability that an operational demand hits
     it). *)
  let universe =
    Core.Universe.of_pairs
      [
        (0.10, 0.004); (0.05, 0.010); (0.20, 0.002); (0.02, 0.030);
        (0.15, 0.001); (0.08, 0.006); (0.01, 0.050); (0.12, 0.003);
        (0.04, 0.015); (0.06, 0.008);
      ]
  in

  (* Eqs. (1)-(2): moments of the PFD of one version and of an
     independently developed 1-out-of-2 pair. *)
  let m = Core.Moments.compute universe in
  Fmt.pr "moments:           %a@." Core.Moments.pp m;
  Fmt.pr "mean gain (mu1/mu2):    %.1fx@." (Core.Moments.mean_gain universe);

  (* Section 4: probability that the pair shares no fault at all, and the
     eq. (10) risk ratio. *)
  Fmt.pr "P(version faulty):      %.4f@." (Core.Fault_count.p_n1_pos universe);
  Fmt.pr "P(pair shares a fault): %.4f@." (Core.Fault_count.p_n2_pos universe);
  Fmt.pr "risk ratio (eq. 10):    %.4f@." (Core.Fault_count.risk_ratio universe);

  (* Section 5: 99% confidence bounds under the normal approximation, and
     the guaranteed pmax-based bound an assessor can use. *)
  let b = Core.Normal_approx.bound_at_confidence universe ~confidence:0.99 in
  Fmt.pr "99%% bound, one version: %.5f@." b.Core.Normal_approx.single;
  Fmt.pr "99%% bound, 1oo2 pair:   %.5f@." b.Core.Normal_approx.pair;
  Fmt.pr "eq. (12) guarantee:     %.5f (using only pmax = %.2f)@."
    (Core.Bounds.pair_bound_from_bound ~single_bound:b.Core.Normal_approx.single
       ~pmax:(Core.Universe.pmax universe))
    (Core.Universe.pmax universe);

  (* The exact PFD distribution (the paper stops at the normal
     approximation; on a finite universe we can enumerate). *)
  let pair_dist = Core.Pfd_dist.exact_pair universe in
  Fmt.pr "exact pair PFD q99:     %.5f@." (Core.Pfd_dist.quantile pair_dist 0.99);

  (* Cross-check the analytic answers by simulating the development
     process itself: 50000 independently developed pairs. *)
  let rng = Numerics.Rng.create ~seed:1 in
  let est = Simulator.Montecarlo.estimate rng universe ~replications:50_000 in
  Fmt.pr "@.Monte Carlo over 50000 developed pairs:@.";
  Fmt.pr "  mean version PFD:     %.5f (analytic %.5f)@."
    est.Simulator.Montecarlo.theta1.Numerics.Stats.mean m.Core.Moments.mu1;
  Fmt.pr "  mean pair PFD:        %.5f (analytic %.5f)@."
    est.Simulator.Montecarlo.theta2.Numerics.Stats.mean m.Core.Moments.mu2;
  Fmt.pr "  risk ratio:           %.4f (analytic %.4f)@."
    est.Simulator.Montecarlo.risk_ratio
    (Core.Fault_count.risk_ratio universe)
