(* Fleet-assessment example: a regulator monitors a fleet of plants whose
   protection systems were independently developed by the same supplier.
   From per-plant failure counts alone it (1) detects that the PFD varies
   across developments (over-dispersion), (2) recovers the mean and spread
   of the PFD distribution, and (3) uses the recovered moments to set a
   confidence bound in the paper's mu + k*sigma form — the whole Section 5
   apparatus driven by field data instead of elicited parameters.

   Run with:  dune exec examples/fleet_assessment.exe *)

let () =
  let rng = Numerics.Rng.create ~seed:77 in

  (* Ground truth, unknown to the regulator. *)
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:40 ~height:40 ~n_faults:12
      ~max_extent:5 ~p_lo:0.08 ~p_hi:0.35
      ~profile:(Demandspace.Profile.uniform ~size:(40 * 40))
  in
  let u = Demandspace.Space.to_universe space in

  (* The fleet: 250 plants, each with its own independently developed
     1oo2 system, each observed over 30000 demands. *)
  let systems = Simulator.Fleet.deploy_pairs rng space ~plants:250 in
  let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant:30_000 in

  Fmt.pr "fleet: %d plants, %d total failures, pooled rate %.5f@."
    (Simulator.Fleet.size fleet)
    (Simulator.Fleet.total_failures fleet)
    (Simulator.Fleet.pooled_rate fleet);

  (* Step 1: is one PFD enough for the whole fleet? *)
  let d = Simulator.Fleet.dispersion fleet in
  Fmt.pr "@.over-dispersion of per-plant counts: %.1f@."
    d.Simulator.Fleet.overdispersion;
  if d.Simulator.Fleet.overdispersion > 1.5 then
    Fmt.pr
      "  -> the PFD varies across developments: per-plant reliability is a \
       DISTRIBUTION, as the paper's model says@."
  else Fmt.pr "  -> counts look homogeneous@.";

  (* Step 2: recover the distribution's moments from counts. *)
  let mu_hat, var_hat = Simulator.Fleet.estimate_pfd_moments fleet in
  Fmt.pr "@.method-of-moments recovery vs (hidden) model values:@.";
  Fmt.pr "  mean PFD:  estimated %.5f   model mu2    %.5f@." mu_hat
    (Core.Moments.mu2 u);
  Fmt.pr "  std PFD:   estimated %.5f   model sigma2 %.5f@." (sqrt var_hat)
    (Core.Moments.sigma2 u);

  (* Step 3: a Section 5 style confidence bound from the recovered
     moments. *)
  let k = Numerics.Normal_dist.k_of_confidence 0.99 in
  let bound = mu_hat +. (k *. sqrt var_hat) in
  Fmt.pr "@.99%% mu+k*sigma bound from field data: %.5f@." bound;
  let model_bound = Core.Normal_approx.pair_bound u ~k in
  Fmt.pr "   (model value: %.5f)@." model_bound;

  (* Step 4: sanity-check against the truth the simulation can see. *)
  let s = Simulator.Fleet.true_pfd_summary fleet in
  let below =
    Array.fold_left
      (fun acc r ->
        if r.Simulator.Fleet.system_pfd <= bound then acc + 1 else acc)
      0
      (Simulator.Fleet.records fleet)
  in
  Fmt.pr "@.oracle: true per-plant PFDs have mean %.5f, std %.5f, max %.5f@."
    s.Numerics.Stats.mean s.Numerics.Stats.std s.Numerics.Stats.max;
  Fmt.pr "  fraction of plants whose true PFD meets the bound: %d/%d@." below
    (Simulator.Fleet.size fleet);

  (* Step 5: what the regulator should expect of the next delivered
     plant, combining the fleet-informed moments with the paper's eq. (12)
     if only pmax evidence were available instead. *)
  Fmt.pr
    "@.had the regulator instead only trusted the supplier's pmax (%.3f), \
     eq. (12) would cap the claimable pair bound at %.5f times the \
     single-version bound@."
    (Core.Universe.pmax u)
    (Core.Bounds.sigma_ratio_bound (Core.Universe.pmax u))
