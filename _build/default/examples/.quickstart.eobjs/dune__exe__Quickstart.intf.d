examples/quickstart.mli:
