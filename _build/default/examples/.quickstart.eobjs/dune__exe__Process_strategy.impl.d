examples/process_strategy.ml: Baselines Core Extensions Fmt Numerics Printf
