examples/fleet_assessment.mli:
