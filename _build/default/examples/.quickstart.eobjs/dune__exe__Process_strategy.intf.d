examples/process_strategy.mli:
