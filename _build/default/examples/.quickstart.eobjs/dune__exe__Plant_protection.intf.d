examples/plant_protection.mli:
