examples/safety_case.mli:
