examples/fleet_assessment.ml: Array Core Demandspace Fmt Numerics Simulator
