examples/plant_protection.ml: Core Demandspace Fmt List Numerics Simulator String
