examples/safety_case.ml: Core Extensions Fmt List Numerics
