examples/quickstart.ml: Core Fmt Numerics Simulator
