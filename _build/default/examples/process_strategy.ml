(* Process-strategy example: a development organisation deciding between
   (a) investing in uniform process improvement, (b) targeting its most
   common fault class, and (c) adding a second diverse channel — the
   decision problem of the paper's Sections 4.2 and the Hatton debate.

   Run with:  dune exec examples/process_strategy.exe *)

let () =
  let rng = Numerics.Rng.create ~seed:11 in
  let universe =
    Core.Universe.power_law_random rng ~n:25 ~p_lo:0.01 ~p_hi:0.35
      ~q_exponent:(-1.2) ~total_q:0.3
  in
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  let describe label u =
    Fmt.pr "%-34s mu1=%.5f  bound99=%.5f  pair mu2=%.6f  risk ratio=%.4f@."
      label (Core.Moments.mu1 u)
      (Core.Normal_approx.single_bound u ~k)
      (Core.Moments.mu2 u)
      (Core.Fault_count.risk_ratio u)
  in
  Fmt.pr "current process (n=%d, pmax=%.3f):@." (Core.Universe.size universe)
    (Core.Universe.pmax universe);
  describe "  as-is" universe;

  (* Option a: uniform improvement — everything gets 2x less likely.
     Appendix B: this always increases the relative gain of diversity. *)
  let uniform =
    Core.Improvement.apply_step universe (Core.Improvement.Proportional 0.5)
  in
  describe "  (a) uniform 2x improvement" uniform;

  (* Option b: kill the most likely fault class specifically. *)
  let worst = ref 0 in
  Core.Universe.iteri
    (fun i f ->
      if Core.Fault.p f > Core.Fault.p (Core.Universe.fault universe !worst)
      then worst := i)
    universe;
  let targeted =
    Core.Improvement.apply_step universe
      (Core.Improvement.Single { index = !worst; factor = 0.1 })
  in
  describe
    (Printf.sprintf "  (b) 10x improvement of fault %d" !worst)
    targeted;

  (* Option c: keep the process, add a diverse channel. *)
  Fmt.pr "  (c) 1oo2 pair from the as-is process:     bound99=%.5f@."
    (Core.Normal_approx.pair_bound universe ~k);

  (* How the diversity gain moves under each improvement (Section 4.2):
     the eq. (10) ratio falls = diversity helps more. *)
  Fmt.pr "@.effect of each process change on the gain from diversity:@.";
  let ratio u = Core.Fault_count.risk_ratio u in
  Fmt.pr "  as-is risk ratio:        %.4f@." (ratio universe);
  Fmt.pr "  after (a):               %.4f  (always falls: Appendix B)@."
    (ratio uniform);
  Fmt.pr "  after (b):               %.4f  (can move either way: Appendix A)@."
    (ratio targeted);

  (* The Hatton question: how good must one version become to match the
     pair? *)
  let break_even = Baselines.Hatton.break_even_factor universe in
  Fmt.pr
    "@.to match the pair on mean PFD, a single version needs every fault \
     probability multiplied by %.3f (eq. (4) guarantees this is <= pmax = \
     %.3f)@."
    break_even
    (Core.Universe.pmax universe);

  (* And the forced-diversity upside (Section 1 / LM): channel B developed
     with deliberately different methods. *)
  let forced = Extensions.Forced.complementary rng universe ~strength:1.0 in
  Fmt.pr
    "@.forced diversity (fully divergent second process): pair mean PFD \
     %.6f vs %.6f non-forced (gain %.2fx)@."
    (Extensions.Forced.mu_pair forced)
    (Core.Moments.mu2 universe)
    (Extensions.Forced.divergence_gain forced);

  (* Correlation stress test (Section 6.1): how robust is the non-forced
     prediction if mistakes cluster via common conceptual errors? *)
  let correlated =
    Extensions.Correlated.of_universe_with_shock universe ~cluster_size:5
      ~shock_prob:0.15 ~lift:1.5
  in
  Fmt.pr
    "@.with correlated mistakes (shock 0.15, lift 1.5, marginals fixed):@.";
  Fmt.pr "  risk ratio %.4f vs %.4f under independence@."
    (Extensions.Correlated.risk_ratio correlated)
    (ratio universe);
  Fmt.pr "  sigma1     %.5f vs %.5f under independence@."
    (Extensions.Correlated.sigma1 correlated)
    (Core.Moments.sigma1 universe)
