(* Safety-case example: an assessor must decide whether a 1-out-of-2
   protection system meets "PFD <= 1e-3 at 99% confidence" (the SIL2/SIL3 band boundary), given
   process evidence about a single version and a demonstrated bound on
   pmax — the exact scenario of the paper's Section 5.

   Run with:  dune exec examples/safety_case.exe *)

let () =
  (* Evidence about the development process, elicited as a fault universe.
     In practice the assessor cannot know this; the point of the paper's
     bounds is that only pmax and the single-version bound are needed. *)
  let rng = Numerics.Rng.create ~seed:7 in
  let universe =
    Core.Universe.power_law_random rng ~n:40 ~p_lo:0.001 ~p_hi:0.08
      ~q_exponent:(-1.5) ~total_q:0.02
  in
  let requirement = 1e-3 and confidence = 0.99 in

  Fmt.pr "requirement: PFD <= %g at %g%% confidence (%s)@." requirement
    (100.0 *. confidence)
    (Core.Assessment.sil_to_string (Core.Assessment.sil_of_pfd requirement));

  let verdict =
    Core.Assessment.assess universe ~required_bound:requirement ~confidence
  in
  Fmt.pr "@.%a@." Core.Assessment.pp_verdict verdict;

  (* What would the assessor need to believe about pmax for the eq. (12)
     argument alone to close the case? *)
  (match
     Core.Assessment.required_pmax_for_bound
       ~single_bound:verdict.Core.Assessment.single_bound
       ~required_bound:requirement
   with
  | Some pmax ->
      Fmt.pr
        "@.the eq. (12) argument closes the case iff the assessor can \
         defend pmax <= %.4f@."
        pmax;
      Fmt.pr "   (this process's actual pmax: %.4f)@."
        (Core.Universe.pmax universe)
  | None -> Fmt.pr "@.no pmax bound can close the case via eq. (12) alone@.");

  (* The gain the assessor may claim, three ways. *)
  let k, mean_gain, bound_gain, risk_gain =
    Core.Assessment.diversity_gain_summary universe ~confidence
  in
  Fmt.pr "@.diversity gain at k = %.3f:@." k;
  Fmt.pr "  on mean PFD:          %.1fx@." mean_gain;
  Fmt.pr "  on confidence bounds: %.1fx@." bound_gain;
  Fmt.pr "  on P(any common fault): %.1fx@." risk_gain;

  (* Combine the model prior with operational evidence (conclusions /
     ref [14]): how much failure-free operation until 99% posterior
     confidence in the requirement? *)
  let prior = Extensions.Bayes.of_pfd_dist (Core.Pfd_dist.pair universe) in
  Fmt.pr "@.Bayesian assessment with the model-based prior:@.";
  Fmt.pr "  prior P(PFD <= %g) = %.4f@." requirement
    (Extensions.Bayes.prob_at_most prior requirement);
  (match
     Extensions.Bayes.demands_for_confidence prior ~bound:requirement
       ~confidence:0.99 ~max_demands:5_000_000
   with
  | Some demands ->
      Fmt.pr "  failure-free demands needed for 99%% posterior: %d@." demands
  | None ->
      Fmt.pr "  99%% posterior unreachable by failure-free operation alone@.");
  List.iter
    (fun demands ->
      let post = Extensions.Bayes.observe_failure_free prior ~demands in
      Fmt.pr "  after %6d failure-free demands: P(PFD <= %g) = %.4f@." demands
        requirement
        (Extensions.Bayes.prob_at_most post requirement))
    [ 100; 1_000; 10_000 ]
