(* Plant-protection example: the full Fig. 1 system, end to end.

   A 2-D demand space (two sensed plant variables) carries failure regions
   shaped like those reported in the literature (Fig. 2). Two software
   versions are developed independently by sampling the fault-creation
   process, installed as the two channels of a 1-out-of-2 protection
   system, and the plant then drives the system through operational
   demands. The observed failure rates are compared with the model.

   Run with:  dune exec examples/plant_protection.exe *)

let () =
  let rng = Numerics.Rng.create ~seed:2001 in
  let width = 64 and height = 32 in

  (* The demand space: demands near the centre of the operating envelope
     are more frequent (zipf-ordered profile). *)
  let profile = Demandspace.Profile.zipf ~size:(width * height) ~exponent:0.5 in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width ~height ~n_faults:14
      ~max_extent:5 ~p_lo:0.03 ~p_hi:0.25 ~profile
  in
  Fmt.pr "%a@." Demandspace.Space.pp space;

  (* Show the failure-region geometry. *)
  List.iter print_endline
    (Demandspace.Genspace.render ~width ~height space);

  (* Develop the two channels independently — two teams, same process. *)
  let team_a = Numerics.Rng.split rng ~index:1 in
  let team_b = Numerics.Rng.split rng ~index:2 in
  let va = Simulator.Devteam.develop team_a space in
  let vb = Simulator.Devteam.develop team_b space in
  Fmt.pr "@.channel A: %a@." Demandspace.Version.pp va;
  Fmt.pr "channel B: %a@." Demandspace.Version.pp vb;
  Fmt.pr "common faults: [%s]@."
    (String.concat ","
       (List.map string_of_int (Demandspace.Version.common_faults va vb)));

  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" va)
      (Simulator.Channel.create ~name:"B" vb)
  in
  Fmt.pr "@.%a@." Simulator.Protection.pp system;
  Fmt.pr "system true PFD (region intersection): %.6f@."
    (Simulator.Protection.true_pfd system);

  (* A year of operation at one demand per day would be ~365 demands; run
     a long accelerated campaign instead. *)
  let stats =
    Simulator.Runner.run
      (Numerics.Rng.split rng ~index:3)
      ~system ~demand_count:500_000
  in
  Fmt.pr "@.operational campaign:@.%a@." Simulator.Runner.pp_stats stats;

  (* Compare the population-level model prediction with this particular
     pair, and with the average over many developments. *)
  let u = Demandspace.Space.to_universe space in
  Fmt.pr "@.model view of the process:@.";
  Fmt.pr "  E(version PFD) = %.6f, E(pair PFD) = %.6f@." (Core.Moments.mu1 u)
    (Core.Moments.mu2 u);
  let emp =
    Simulator.Montecarlo.empirical_system_pfd
      (Numerics.Rng.split rng ~index:4)
      space ~replications:200 ~demands_per_system:5_000
  in
  Fmt.pr "  average observed pair PFD over 200 fresh developments: %.6f@." emp;
  Fmt.pr
    "  (a single developed pair, like the one above, deviates from the \
     population mean — exactly why the paper studies distributions, not \
     just averages)@."
