let pair_pfd ~single_pfd = single_pfd *. single_pfd

let predicted_mu2 u =
  let m1 = Core.Moments.mu1 u in
  m1 *. m1

let underestimation_factor u =
  let indep = predicted_mu2 u in
  if indep = 0.0 then nan else Core.Moments.mu2 u /. indep

let model_gain u =
  let m2 = Core.Moments.mu2 u in
  if m2 = 0.0 then infinity else Core.Moments.mu1 u /. m2

let independence_gain u =
  let m1 = Core.Moments.mu1 u in
  if m1 = 0.0 then infinity else 1.0 /. m1

let eq4_beats_independence u = Core.Universe.pmax u <= Core.Moments.mu1 u
