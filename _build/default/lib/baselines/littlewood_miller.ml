open Numerics
module Region = Demandspace.Region

type two_process = {
  space : Demandspace.Space.t;
  probs_a : float array;
  probs_b : float array;
}

let create space ~probs_a ~probs_b =
  let n = Demandspace.Space.fault_count space in
  if Array.length probs_a <> n || Array.length probs_b <> n then
    invalid_arg "Littlewood_miller.create: probability vector length mismatch";
  let check name v =
    Array.iter
      (fun p ->
        if p < 0.0 || p > 1.0 then
          invalid_arg ("Littlewood_miller.create: " ^ name ^ " outside [0, 1]"))
      v
  in
  check "probs_a" probs_a;
  check "probs_b" probs_b;
  { space; probs_a; probs_b }

let same_process space =
  let probs =
    Array.init (Demandspace.Space.fault_count space) (fun i ->
        Demandspace.Space.introduction_prob space i)
  in
  { space; probs_a = probs; probs_b = Array.copy probs }

let difficulty_with probs space demand_id =
  let acc = ref 0.0 in
  for i = 0 to Demandspace.Space.fault_count space - 1 do
    if Bitset.mem (Region.members (Demandspace.Space.region space i)) demand_id
    then acc := !acc +. Special.log1p (-.probs.(i))
  done;
  -.Special.expm1 !acc

let difficulty_a t x = difficulty_with t.probs_a t.space x
let difficulty_b t x = difficulty_with t.probs_b t.space x

let sum_over_profile t f =
  let profile = Demandspace.Space.profile t.space in
  Kahan.sum_over (Demandspace.Space.size t.space) (fun x ->
      Demandspace.Profile.probability profile (Demandspace.Demand.of_int x)
      *. f x)

let mean_single_a t = sum_over_profile t (difficulty_a t)
let mean_single_b t = sum_over_profile t (difficulty_b t)

let mean_pair t =
  sum_over_profile t (fun x -> difficulty_a t x *. difficulty_b t x)

let difficulty_covariance t =
  (* Cov_X(theta_A(X), theta_B(X)): LM's headline quantity. Negative
     covariance — achievable with forced diversity — makes the pair
     *better* than the independence product. *)
  let ma = mean_single_a t and mb = mean_single_b t in
  sum_over_profile t (fun x ->
      (difficulty_a t x -. ma) *. (difficulty_b t x -. mb))

let lm_identity_gap t =
  mean_pair t -. (mean_single_a t *. mean_single_b t) -. difficulty_covariance t
