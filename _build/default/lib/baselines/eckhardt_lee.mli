(** The Eckhardt–Lee model [3], realised inside the fault-creation model.

    EL describe version development as sampling from a distribution over
    programs and summarise it by the "difficulty function" theta(x): the
    probability that a random version fails on demand x. Their key result —
    E(Theta_2) = E(Theta_1)^2 + Var(theta(X)) >= E(Theta_1)^2, so
    independently developed versions do not fail independently — is exact
    in our model, because two independent versions fail together on x with
    probability theta(x)^2. *)

val difficulty : Demandspace.Space.t -> int -> float
(** theta(x) = 1 - prod over faults covering x of (1 - p_i); exact even
    when failure regions overlap. *)

val difficulty_vector : Demandspace.Space.t -> float array
(** theta over the whole demand space. *)

val mean_single : Demandspace.Space.t -> float
(** E(Theta_1) = E_X[theta(X)] under the operational profile. *)

val mean_pair : Demandspace.Space.t -> float
(** E(Theta_2) = E_X[theta(X)^2] for an independently developed pair. *)

val difficulty_variance : Demandspace.Space.t -> float
(** Var_X(theta(X)): the exact excess of the mean pair PFD over the
    independence prediction. *)

val el_identity_gap : Demandspace.Space.t -> float
(** E(Theta_2) - E(Theta_1)^2 - Var(theta(X)); zero up to rounding — the EL
    decomposition, used as a test oracle. *)
