(** The "N versions vs one good version" comparison of Hatton [1], posed
    inside the fault-creation model (the paper's Section 1 cites this
    debate as motivation, and [6]/[7] as its earlier responses).

    The alternative to diversity is spending the second channel's budget on
    making one version better, modelled as a uniform reduction of all fault
    probabilities. *)

type comparison = {
  improvement_factor : float;
      (** uniform scaling f applied to every p_i of the single version *)
  single_improved_mu : float;  (** mean PFD of the improved single version *)
  pair_mu : float;  (** mean PFD of the unimproved 1-out-of-2 pair *)
  diversity_wins_mean : bool;
  single_improved_bound : float;  (** mu + k sigma of the improved version *)
  pair_bound : float;
  diversity_wins_bound : bool;
}

val compare_at : Core.Universe.t -> improvement_factor:float -> k:float -> comparison
(** Compare the two options at one improvement factor and confidence
    multiplier k. *)

val break_even_factor : Core.Universe.t -> float
(** mu2/mu1: the uniform improvement a single version needs to match the
    pair on mean PFD; bounded above by pmax (eq. 4). *)

val sweep : Core.Universe.t -> k:float -> factors:float array -> comparison array
