open Numerics
module Region = Demandspace.Region

let difficulty space demand_id =
  (* theta(x) = P(a random version fails on x)
              = 1 - prod over faults covering x of (1 - p_i). *)
  let acc = ref 0.0 in
  for i = 0 to Demandspace.Space.fault_count space - 1 do
    if Bitset.mem (Region.members (Demandspace.Space.region space i)) demand_id
    then
      acc :=
        !acc +. Special.log1p (-.Demandspace.Space.introduction_prob space i)
  done;
  -.Special.expm1 !acc

let difficulty_vector space =
  Array.init (Demandspace.Space.size space) (fun x -> difficulty space x)

let mean_single space =
  let profile = Demandspace.Space.profile space in
  Kahan.sum_over (Demandspace.Space.size space) (fun x ->
      Demandspace.Profile.probability profile (Demandspace.Demand.of_int x)
      *. difficulty space x)

let mean_pair space =
  let profile = Demandspace.Space.profile space in
  Kahan.sum_over (Demandspace.Space.size space) (fun x ->
      let theta = difficulty space x in
      Demandspace.Profile.probability profile (Demandspace.Demand.of_int x)
      *. theta *. theta)

let difficulty_variance space =
  (* Var_X(theta(X)) under the profile: the EL excess of the pair's mean
     PFD over the independence prediction. *)
  let m = mean_single space in
  let profile = Demandspace.Space.profile space in
  Kahan.sum_over (Demandspace.Space.size space) (fun x ->
      let d = difficulty space x -. m in
      Demandspace.Profile.probability profile (Demandspace.Demand.of_int x)
      *. d *. d)

let el_identity_gap space =
  (* E(Theta_2) - E(Theta_1)^2 - Var(theta(X)) = 0: the Eckhardt-Lee
     decomposition; returned so tests can assert it vanishes. *)
  let m1 = mean_single space in
  mean_pair space -. (m1 *. m1) -. difficulty_variance space
