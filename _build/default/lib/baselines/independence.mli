(** The failure-independence baseline the paper argues against.

    Claims of independence predict a pair PFD equal to the product of the
    version PFDs; the EL/LM analysis (re-derivable in this model) shows the
    true expected pair PFD is at least E(Theta_1)^2 and usually more.
    These functions quantify the optimism of the independence claim for a
    given universe. *)

val pair_pfd : single_pfd:float -> float
(** The independence prediction for a pair of versions with the given PFD. *)

val predicted_mu2 : Core.Universe.t -> float
(** E(Theta_1)^2: the independence prediction for the mean pair PFD. *)

val underestimation_factor : Core.Universe.t -> float
(** mu2 / mu1^2 >= 1: how many times worse the true mean pair PFD is than
    the independence claim (the EL-style penalty). *)

val model_gain : Core.Universe.t -> float
(** mu1/mu2 under the fault-creation model. *)

val independence_gain : Core.Universe.t -> float
(** 1/mu1: the gain independence would promise. *)

val eq4_beats_independence : Core.Universe.t -> bool
(** Section 3.1.1: the eq. (4) upper-bound prediction is at least as strong
    as the independence prediction exactly when pmax <= mu1. *)
