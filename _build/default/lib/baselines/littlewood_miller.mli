(** The Littlewood–Miller model [4]: the two channels are developed by
    *different* processes (forced diversity), so each has its own
    difficulty function, and the mean pair PFD decomposes as

    E(Theta_2) = E(theta_A) E(theta_B) + Cov(theta_A(X), theta_B(X)),

    where — unlike in Eckhardt–Lee — the covariance can be negative: forced
    diversity can beat failure independence. *)

type two_process
(** A demand space equipped with two per-process introduction-probability
    vectors over the same potential faults. *)

val create :
  Demandspace.Space.t -> probs_a:float array -> probs_b:float array -> two_process
(** Raises [Invalid_argument] on length mismatch or out-of-range
    probabilities. *)

val same_process : Demandspace.Space.t -> two_process
(** Degenerate LM instance with identical processes: reduces to
    Eckhardt–Lee (used as a consistency oracle in tests). *)

val difficulty_a : two_process -> int -> float
val difficulty_b : two_process -> int -> float

val mean_single_a : two_process -> float
val mean_single_b : two_process -> float

val mean_pair : two_process -> float
(** E_X[theta_A(X) theta_B(X)] — exact mean PFD of the forced-diverse pair. *)

val difficulty_covariance : two_process -> float
(** Cov_X(theta_A, theta_B); negative values mean the processes' weaknesses
    are complementary. *)

val lm_identity_gap : two_process -> float
(** The LM decomposition residual; zero up to rounding (test oracle). *)
