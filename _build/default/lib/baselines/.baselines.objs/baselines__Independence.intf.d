lib/baselines/independence.mli: Core
