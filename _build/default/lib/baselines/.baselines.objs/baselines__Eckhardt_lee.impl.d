lib/baselines/eckhardt_lee.ml: Array Bitset Demandspace Kahan Numerics Special
