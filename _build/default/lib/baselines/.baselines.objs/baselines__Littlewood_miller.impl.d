lib/baselines/littlewood_miller.ml: Array Bitset Demandspace Kahan Numerics Special
