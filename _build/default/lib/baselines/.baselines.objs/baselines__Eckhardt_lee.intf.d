lib/baselines/eckhardt_lee.mli: Demandspace
