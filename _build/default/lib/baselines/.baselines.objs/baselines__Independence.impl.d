lib/baselines/independence.ml: Core
