lib/baselines/hatton.ml: Array Core
