lib/baselines/littlewood_miller.mli: Demandspace
