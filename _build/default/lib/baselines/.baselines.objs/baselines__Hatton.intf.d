lib/baselines/hatton.mli: Core
