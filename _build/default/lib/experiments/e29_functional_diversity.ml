(* E29 — functional diversity as a continuum (Fig. 1 caption, ref [8]):
   channel B senses the plant through a partially permuted input mapping;
   fraction 0 is the paper's studied worst case, fraction 1 fully
   divergent sensing. How much does the worst-case analysis give away? *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:0)
      ~width:32 ~height:32 ~n_faults:12 ~max_extent:5 ~p_lo:0.1 ~p_hi:0.4
      ~profile:(Demandspace.Profile.uniform ~size:(32 * 32))
  in
  let worst = Extensions.Functional.non_functional space in
  let mu1 = Extensions.Functional.mean_single worst in
  let continuum =
    Extensions.Functional.continuum
      (Numerics.Rng.split rng ~index:1)
      space
      ~fractions:[| 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 |]
  in
  let rows =
    Array.to_list
      (Array.map
         (fun (fraction, mu2) ->
           [
             Report.Table.float fraction;
             Report.Table.float mu2;
             Report.Table.float (mu2 /. (mu1 *. mu1));
           ])
         continuum)
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Mean pair PFD along the functional-diversity continuum (mu1 = \
            %.4g, independence would give %.4g)"
           mu1 (mu1 *. mu1))
      ~headers:[ "permuted fraction"; "E(pair PFD)"; "vs independence" ]
      rows
  in
  (* Monte Carlo cross-check of the analytic mean at full divergence. *)
  let full =
    Extensions.Functional.create space
      ~sensing_b:
        (Demandspace.Transform.random
           (Numerics.Rng.split rng ~index:2)
           (Demandspace.Space.size space))
  in
  let mc =
    let acc = Numerics.Welford.create () in
    let r = Numerics.Rng.split rng ~index:3 in
    for _ = 1 to 20_000 do
      Numerics.Welford.add acc (Extensions.Functional.sample_pair_pfd r full)
    done;
    Numerics.Welford.mean acc
  in
  let check =
    Report.Table.of_rows ~title:"Fully divergent sensing: analytic vs simulated"
      ~headers:[ "quantity"; "value" ]
      [
        [
          "E(pair PFD), analytic";
          Report.Table.float (Extensions.Functional.mean_pair full);
        ];
        [ "E(pair PFD), 20k developed pairs"; Report.Table.float mc ];
        [
          "gain over the paper's worst case";
          Report.Table.float (Extensions.Functional.functional_gain full);
        ];
      ]
  in
  Experiment.output ~tables:[ table; check ]
    ~notes:
      [
        "with identity sensing the pair fails together wherever one \
         difficulty spike sits (the paper's E[theta^2]); divergent sensing \
         decorrelates the spikes so the pair mean approaches the \
         independence level E[theta]^2 — quantifying how conservative the \
         paper's 'limiting worst case' is for real functionally diverse \
         channels";
      ]
    ()

let experiment =
  Experiment.make ~id:"E29" ~paper_ref:"Fig. 1 caption, ref [8]"
    ~description:
      "Functional diversity continuum: from the paper's worst case to \
       fully divergent sensing"
    run
