(* E10 — eq. (4): mu2 <= pmax * mu1, with tightness across universe
   families. The bound is exact when all p_i equal pmax and loosens as the
   p_i spread out. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let families =
    [
      ("homogeneous p=0.2", Core.Universe.homogeneous ~n:20 ~p:0.2 ~q:0.02);
      ( "uniform p in [0.01,0.3]",
        Core.Universe.uniform_random
          (Numerics.Rng.split rng ~index:0)
          ~n:20 ~p_lo:0.01 ~p_hi:0.3 ~total_q:0.4 );
      ( "power-law regions",
        Core.Universe.power_law_random
          (Numerics.Rng.split rng ~index:1)
          ~n:20 ~p_lo:0.01 ~p_hi:0.3 ~q_exponent:(-1.5) ~total_q:0.4 );
      ( "one dominant fault",
        Core.Universe.of_pairs
          ((0.5, 0.1) :: List.init 19 (fun _ -> (0.01, 0.01))) );
      ( "high quality",
        Core.Universe.high_quality
          (Numerics.Rng.split rng ~index:2)
          ~n:50 ~expected_faults:0.3 ~total_q:0.3 );
    ]
  in
  let rows =
    List.map
      (fun (label, u) ->
        let mu1 = Core.Moments.mu1 u in
        let mu2 = Core.Moments.mu2 u in
        let bound = Core.Bounds.mu2_upper u in
        [
          label;
          Report.Table.float mu1;
          Report.Table.float mu2;
          Report.Table.float bound;
          Report.Table.float (bound /. mu2);
          Report.Table.bool (mu2 <= bound +. 1e-15);
        ])
      families
  in
  let table =
    Report.Table.of_rows ~title:"Eq. (4): mu2 <= pmax * mu1 across families"
      ~headers:[ "family"; "mu1"; "mu2"; "pmax*mu1"; "slack factor"; "holds" ]
      rows
  in
  Experiment.output ~tables:[ table ]
    ~notes:
      [
        "slack factor 1 on the homogeneous family (the bound is attained); \
         spread-out p vectors leave the assessor's guarantee conservative";
      ]
    ()

let experiment =
  Experiment.make ~id:"E10" ~paper_ref:"Section 3.1.1, eq. (4)"
    ~description:"Tightness of the mean-PFD bound mu2 <= pmax*mu1" run
