(* E18 — the Hatton [1] debate, posed in-model: one better version (uniform
   improvement of all fault probabilities) vs a 1-out-of-2 pair from the
   unimproved process. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:20 ~p_lo:0.02 ~p_hi:0.3 ~total_q:0.5
  in
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  let factors = [| 1.0; 0.5; 0.2; 0.1; 0.05; 0.02 |] in
  let comparisons = Baselines.Hatton.sweep u ~k ~factors in
  let rows =
    Array.to_list
      (Array.map
         (fun (c : Baselines.Hatton.comparison) ->
           [
             Report.Table.float c.improvement_factor;
             Report.Table.float c.single_improved_mu;
             Report.Table.float c.pair_mu;
             Report.Table.bool c.diversity_wins_mean;
             Report.Table.float c.single_improved_bound;
             Report.Table.float c.pair_bound;
             Report.Table.bool c.diversity_wins_bound;
           ])
         comparisons)
  in
  let table =
    Report.Table.of_rows
      ~title:"One improved version vs a 1-out-of-2 pair (99% bounds)"
      ~headers:
        [
          "improvement factor"; "single mu"; "pair mu"; "pair wins mean";
          "single bound"; "pair bound"; "pair wins bound";
        ]
      rows
  in
  let break_even = Baselines.Hatton.break_even_factor u in
  let summary =
    Report.Table.of_rows ~title:"Break-even analysis"
      ~headers:[ "quantity"; "value" ]
      [
        [ "break-even improvement factor (mu2/mu1)"; Report.Table.float break_even ];
        [ "pmax (eq. 4 ceiling on the break-even)"; Report.Table.float (Core.Universe.pmax u) ];
        [
          "break-even <= pmax";
          Report.Table.bool (break_even <= Core.Universe.pmax u +. 1e-15);
        ];
      ]
  in
  Experiment.output ~tables:[ table; summary ]
    ~notes:
      [
        "the single version must shrink every fault probability by the \
         break-even factor (here below pmax) to match the pair on mean \
         PFD — the in-model content of the paper's response [6,7] to \
         Hatton's argument";
      ]
    ()

let experiment =
  Experiment.make ~id:"E18" ~paper_ref:"Section 1 (Hatton [1], refs [6][7])"
    ~description:"N-version vs one-good-version comparison inside the model"
    run
