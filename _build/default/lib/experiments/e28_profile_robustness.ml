(* E28 — profile uncertainty: the q_i are measures under an assumed
   operational profile ("possibly unknown", Section 2.1). How much can the
   paper's headline quantities move if the true profile differs from the
   assumed one by epsilon in total variation? *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let size = 32 * 32 in
  let assumed = Demandspace.Profile.uniform ~size in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:0)
      ~width:32 ~height:32 ~n_faults:10 ~max_extent:5 ~p_lo:0.05 ~p_hi:0.4
      ~profile:assumed
  in
  let u = Demandspace.Space.to_universe space in
  let base_mu2 = Core.Moments.mu2 u in
  let rows =
    List.map
      (fun epsilon ->
        let robust = Demandspace.Robustness.robust_universe space ~epsilon in
        let sharp = Demandspace.Robustness.worst_case_mu2 space ~epsilon in
        [
          Report.Table.float epsilon;
          Report.Table.float base_mu2;
          Report.Table.float sharp;
          Report.Table.float (Core.Moments.mu2 robust);
          Report.Table.float (sharp /. base_mu2);
        ])
      [ 0.0; 0.005; 0.01; 0.05; 0.1 ]
  in
  let table =
    Report.Table.of_rows
      ~title:"Worst-case pair mean PFD under profile perturbation (TV ball)"
      ~headers:
        [
          "epsilon (TV)"; "assumed mu2"; "sharp worst case";
          "per-region bound"; "inflation";
        ]
      rows
  in
  (* Concrete alternative profiles rather than a distance budget. *)
  let alternatives =
    [
      ("uniform (assumed)", assumed);
      ("zipf 0.5", Demandspace.Profile.zipf ~size ~exponent:0.5);
      ("zipf 1.0", Demandspace.Profile.zipf ~size ~exponent:1.0);
      ( "random dirichlet",
        Demandspace.Profile.random (Numerics.Rng.split rng ~index:9) ~size
          ~alpha:1.0 );
    ]
  in
  let sens = Demandspace.Robustness.profile_sensitivity space ~alternatives in
  let alt_table =
    Report.Table.of_rows ~title:"Exact moments under candidate profiles"
      ~headers:[ "profile"; "TV from assumed"; "mu1"; "mu2" ]
      (List.map
         (fun (label, mu1, mu2) ->
           let profile = List.assoc label alternatives in
           [
             label;
             Report.Table.float
               (Demandspace.Robustness.total_variation assumed profile);
             Report.Table.float mu1;
             Report.Table.float mu2;
           ])
         sens)
  in
  Experiment.output ~tables:[ table; alt_table ]
    ~notes:
      [
        "the sharp bound allocates the movable profile mass to the regions \
         with the largest p_i^2, so it grows linearly in epsilon with \
         slope max p_i^2; the per-region bound (every q at +epsilon) is \
         looser but needs no knowledge of which regions are worst";
      ]
    ()

let experiment =
  Experiment.make ~id:"E28" ~paper_ref:"Section 2.1 (unknown profile)"
    ~description:
      "Carrying operational-profile uncertainty through the model's \
       predictions"
    run
