(* E16 — the conclusions' proposal (with ref [14]): use the model-derived
   PFD distribution as a physically motivated prior and update it with
   operational evidence. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:15 ~p_lo:0.01 ~p_hi:0.2 ~total_q:0.05
  in
  let prior = Extensions.Bayes.of_pfd_dist (Core.Pfd_dist.exact_pair u) in
  let bound = 1e-3 in
  let trajectory =
    Extensions.Bayes.posterior_trajectory prior ~bound
      ~demand_counts:[| 0; 10; 100; 1_000; 10_000; 100_000 |]
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Posterior confidence that pair PFD <= %g after failure-free \
            operation"
           bound)
      ~headers:
        [ "failure-free demands"; "P(PFD <= bound)"; "posterior mean"; "posterior q99" ]
      (Array.to_list
         (Array.map
            (fun (t, conf) ->
              let post = Extensions.Bayes.observe_failure_free prior ~demands:t in
              [
                Report.Table.int t;
                Report.Table.float conf;
                Report.Table.float (Extensions.Bayes.mean post);
                Report.Table.float (Extensions.Bayes.quantile post 0.99);
              ])
            trajectory))
  in
  let needed =
    Extensions.Bayes.demands_for_confidence prior ~bound ~confidence:0.99
      ~max_demands:10_000_000
  in
  let failures_case =
    let post = Extensions.Bayes.observe prior ~demands:10_000 ~failures:2 in
    Report.Table.of_rows ~title:"With observed failures (2 in 10000 demands)"
      ~headers:[ "quantity"; "prior"; "posterior" ]
      [
        [
          "mean PFD";
          Report.Table.float (Extensions.Bayes.mean prior);
          Report.Table.float (Extensions.Bayes.mean post);
        ];
        [
          "P(PFD <= 1e-3)";
          Report.Table.float (Extensions.Bayes.prob_at_most prior bound);
          Report.Table.float (Extensions.Bayes.prob_at_most post bound);
        ];
      ]
  in
  Experiment.output
    ~tables:[ table; failures_case ]
    ~notes:
      [
        (match needed with
        | Some t ->
            Printf.sprintf
              "failure-free demands needed for 99%% confidence in the bound: \
               %d"
              t
        | None ->
            "99% confidence in the bound is unreachable by failure-free \
             operation alone under this prior (prior mass exactly at PFD=0 \
             is the ceiling)");
      ]
    ()

let experiment =
  Experiment.make ~id:"E16" ~paper_ref:"Section 7 conclusions, ref [14]"
    ~description:
      "Bayesian reliability assessment with a model-based prior on the \
       pair's PFD"
    run
