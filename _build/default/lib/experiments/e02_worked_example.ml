(* E02 — the Section 5.1 worked example: mu1=0.01, sigma1=0.001, k=1
   (an 84% confidence bound), pmax=0.1. The paper reports 0.011 for one
   version, 0.001 via eq. (11) and "a more modest 0.004" via eq. (12). *)

let run ~seed:_ =
  let ex = Core.Normal_approx.worked_example () in
  let confidence =
    Numerics.Normal_dist.confidence_of_k ex.Core.Normal_approx.k
  in
  let table =
    Report.Table.of_rows ~title:"Section 5.1 worked example"
      ~headers:[ "quantity"; "paper"; "measured" ]
      [
        [ "mu1"; "0.01"; Report.Table.float ex.mu1 ];
        [ "sigma1"; "0.001"; Report.Table.float ex.sigma1 ];
        [ "k"; "1"; Report.Table.float ex.k ];
        [
          "confidence of k=1";
          "84%";
          Report.Table.float ~precision:3 (100.0 *. confidence) ^ "%";
        ];
        [ "pmax"; "0.1"; Report.Table.float ex.pmax ];
        [ "single-version bound"; "0.011"; Report.Table.float ex.single_bound ];
        [
          "pair bound, eq. (11)"; "0.001"; Report.Table.float ex.pair_bound_eq11;
        ];
        [
          "pair bound, eq. (12)"; "0.004"; Report.Table.float ex.pair_bound_eq12;
        ];
      ]
  in
  let quantile_check =
    Report.Table.of_rows
      ~title:"Normal quantile anchors quoted in Section 5"
      ~headers:[ "statement"; "paper"; "measured" ]
      [
        [
          "P(Theta <= mu+3sigma)";
          "0.99865003";
          Report.Table.float ~precision:8
            (Numerics.Normal_dist.confidence_of_k 3.0);
        ];
        [
          "k at 99% confidence";
          "2.33";
          Report.Table.float ~precision:5
            (Numerics.Normal_dist.k_of_confidence 0.99);
        ];
      ]
  in
  Experiment.output
    ~tables:[ table; quantile_check ]
    ~notes:
      [
        "the paper rounds eq. (11)'s 0.0013... to 0.001 and eq. (12)'s \
         0.00365... to 0.004; both reproduce to the printed precision";
      ]
    ()

let experiment =
  Experiment.make ~id:"E02" ~paper_ref:"Section 5.1 worked example"
    ~description:
      "The numerical example: bounds 0.011 (single), 0.001 (eq. 11), 0.004 \
       (eq. 12), plus the quoted normal-distribution anchors"
    run
