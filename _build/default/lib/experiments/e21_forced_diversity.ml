(* E21 — extension: forced diversity (the paper's Section 1 lists it as the
   superior arrangement whose "degree of superiority is unknown"). The
   two channels' processes diverge by a controlled strength; the gain over
   non-forced diversity is measured. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.power_law_random
      (Numerics.Rng.split rng ~index:0)
      ~n:20 ~p_lo:0.02 ~p_hi:0.4 ~q_exponent:(-1.2) ~total_q:0.4
  in
  let rows =
    List.map
      (fun strength ->
        let f =
          Extensions.Forced.complementary
            (Numerics.Rng.split rng ~index:(int_of_float (strength *. 100.)))
            u ~strength
        in
        [
          Report.Table.float strength;
          Report.Table.float (Extensions.Forced.mu_a f);
          Report.Table.float (Extensions.Forced.mu_b f);
          Report.Table.float (Extensions.Forced.mu_pair f);
          Report.Table.float (Extensions.Forced.divergence_gain f);
          Report.Table.float (Extensions.Forced.p_no_common_fault f);
        ])
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  let table =
    Report.Table.of_rows
      ~title:"Forced diversity: process divergence strength sweep"
      ~headers:
        [ "strength"; "mu_A"; "mu_B"; "mu pair"; "gain vs non-forced"; "P(no common fault)" ]
      rows
  in
  let sanity =
    let f0 = Extensions.Forced.of_universe u in
    Report.Table.of_rows
      ~title:"Strength 0 reduces to the non-forced core model"
      ~headers:[ "quantity"; "core model"; "forced(strength=0)" ]
      [
        [
          "mu pair";
          Report.Table.float (Core.Moments.mu2 u);
          Report.Table.float (Extensions.Forced.mu_pair f0);
        ];
        [
          "P(no common fault)";
          Report.Table.float (Core.Fault_count.p_n2_zero u);
          Report.Table.float (Extensions.Forced.p_no_common_fault f0);
        ];
      ]
  in
  Experiment.output ~tables:[ table; sanity ]
    ~notes:
      [
        "divergence redistributes which faults each process is prone to; \
         the pair improves because a fault now needs BOTH processes to be \
         weak on it (pa_i * pb_i < p_i^2 on the dominant faults)";
      ]
    ()

let experiment =
  Experiment.make ~id:"E21" ~paper_ref:"Section 1 (forced diversity), LM [4]"
    ~description:"Forced diversity: gain from divergent development processes"
    run
