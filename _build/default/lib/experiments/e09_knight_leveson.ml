(* E09 — Section 7: the Knight-Leveson qualitative check. The paper
   observes that in the K-L experiment diversity reduced the sample mean of
   the PFD of the 27 versions and greatly reduced its standard deviation.
   We replicate with 27 synthetic versions over a concrete demand space. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:0)
      ~width:64 ~height:64 ~n_faults:25 ~max_extent:6 ~p_lo:0.02 ~p_hi:0.25
      ~profile:(Demandspace.Profile.uniform ~size:(64 * 64))
  in
  let pop =
    Simulator.Montecarlo.version_population
      (Numerics.Rng.split rng ~index:1)
      space ~count:27
  in
  let mean_ratio, std_ratio = Simulator.Montecarlo.knight_leveson_shape pop in
  let vs = pop.Simulator.Montecarlo.version_summary in
  let ps = pop.Simulator.Montecarlo.pair_summary in
  let table =
    Report.Table.of_rows
      ~title:"Synthetic Knight-Leveson: 27 versions, 351 pairs"
      ~headers:[ "statistic"; "versions"; "pairs (1oo2)"; "ratio" ]
      [
        [
          "mean PFD";
          Report.Table.float vs.Numerics.Stats.mean;
          Report.Table.float ps.Numerics.Stats.mean;
          Report.Table.float mean_ratio;
        ];
        [
          "std of PFD";
          Report.Table.float vs.Numerics.Stats.std;
          Report.Table.float ps.Numerics.Stats.std;
          Report.Table.float std_ratio;
        ];
        [
          "max PFD";
          Report.Table.float vs.Numerics.Stats.max;
          Report.Table.float ps.Numerics.Stats.max;
          "";
        ];
      ]
  in
  let claim =
    Report.Table.of_rows ~title:"Paper's qualitative claim"
      ~headers:[ "claim"; "holds" ]
      [
        [ "diversity reduces the sample mean"; Report.Table.bool (mean_ratio < 1.0) ];
        [ "diversity reduces the sample std"; Report.Table.bool (std_ratio < 1.0) ];
        [
          "the std reduction is 'great' (at least 2-fold)";
          Report.Table.bool (std_ratio < 0.5);
        ];
      ]
  in
  Experiment.output ~tables:[ table; claim ]
    ~notes:
      [
        "the K-L data themselves are not available; this is the in-model \
         replication of the paper's qualitative statement (see DESIGN.md \
         substitution table)";
      ]
    ()

let experiment =
  Experiment.make ~id:"E09" ~paper_ref:"Section 7 (Knight-Leveson check)"
    ~description:
      "27-version synthetic experiment: diversity shrinks mean and (more) \
       standard deviation of PFD"
    run
