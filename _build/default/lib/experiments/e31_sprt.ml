(* E31 — operational acceptance by sequential testing: how much
   failure-free operation does a diverse pair need to be accepted at a SIL
   bound, compared with a single version from the same process? Wald's
   SPRT on the executable Fig. 1 system. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:0)
      ~width:32 ~height:32 ~n_faults:10 ~max_extent:4 ~p_lo:0.1 ~p_hi:0.35
      ~profile:(Demandspace.Profile.uniform ~size:(32 * 32))
  in
  let theta0 = 2e-3 and theta1 = 2e-2 in
  let alpha = 0.05 and beta = 0.05 in
  let trial kind index =
    let r = Numerics.Rng.split rng ~index in
    let system =
      match kind with
      | `Single ->
          Simulator.Protection.create
            [ Simulator.Channel.create ~name:"S" (Simulator.Devteam.develop r space) ]
      | `Pair ->
          let va, vb = Simulator.Devteam.develop_pair r space in
          Simulator.Protection.one_out_of_two
            (Simulator.Channel.create ~name:"A" va)
            (Simulator.Channel.create ~name:"B" vb)
    in
    let decision, t =
      Simulator.Sprt.run r ~system ~theta0 ~theta1 ~alpha ~beta
        ~max_demands:200_000
    in
    (decision, Simulator.Sprt.demands_observed t, Simulator.Protection.true_pfd system)
  in
  let summarise kind base =
    let accepts = ref 0 and rejects = ref 0 and undecided = ref 0 in
    let demand_acc = Numerics.Welford.create () in
    let wrong = ref 0 in
    let trials = 200 in
    for i = 0 to trials - 1 do
      let decision, demands, true_pfd = trial kind (base + i) in
      (match decision with
      | Simulator.Sprt.Accept ->
          incr accepts;
          if true_pfd >= theta1 then incr wrong
      | Simulator.Sprt.Reject ->
          incr rejects;
          if true_pfd <= theta0 then incr wrong
      | Simulator.Sprt.Continue -> incr undecided);
      Numerics.Welford.add demand_acc (float_of_int demands)
    done;
    (trials, !accepts, !rejects, !undecided, Numerics.Welford.mean demand_acc, !wrong)
  in
  let t1, a1, r1, u1, d1, w1 = summarise `Single 1000 in
  let t2, a2, r2, u2, d2, w2 = summarise `Pair 2000 in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "SPRT accept PFD<=%g vs reject PFD>=%g (alpha=beta=%g), 200 \
            freshly developed systems each"
           theta0 theta1 alpha)
      ~headers:
        [
          "system"; "trials"; "accepted"; "rejected"; "undecided";
          "mean demands to decision"; "decisions against the true PFD";
        ]
      [
        [
          "single version"; Report.Table.int t1; Report.Table.int a1;
          Report.Table.int r1; Report.Table.int u1; Report.Table.float d1;
          Report.Table.int w1;
        ];
        [
          "1oo2 pair"; Report.Table.int t2; Report.Table.int a2;
          Report.Table.int r2; Report.Table.int u2; Report.Table.float d2;
          Report.Table.int w2;
        ];
      ]
  in
  let wald =
    Report.Table.of_rows ~title:"Wald's expected sample size under H0"
      ~headers:[ "quantity"; "value" ]
      [
        [
          "E[N | PFD = theta0]";
          Report.Table.float
            (Simulator.Sprt.expected_sample_size_h0 ~theta0 ~theta1 ~alpha
               ~beta);
        ];
      ]
  in
  Experiment.output ~tables:[ table; wald ]
    ~notes:
      [
        "the pair fleet is mostly accepted and the single-version fleet \
         mostly rejected from the same development process: sequential \
         operational testing 'sees' the diversity gain without any model \
         input — and the few decisions against the true PFD stay within \
         the designed error rates";
      ]
    ()

let experiment =
  Experiment.make ~id:"E31" ~paper_ref:"Section 5 practice (assessment)"
    ~description:
      "Sequential (SPRT) operational acceptance of single vs diverse \
       systems"
    run
