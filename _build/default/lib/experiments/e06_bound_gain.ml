(* E06 — eqs. (11)-(12): confidence-bound gains under the normal
   approximation, compared against the exact PFD distribution's quantiles.
   The paper can only offer the bounds; with the exact distribution we can
   show how conservative they are. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let confidence = 0.99 in
  let k = Core.Normal_approx.k_of_confidence confidence in
  let rows =
    List.map
      (fun pmax ->
        let u =
          Core.Universe.uniform_random
            (Numerics.Rng.split rng ~index:(int_of_float (pmax *. 1000.)))
            ~n:18 ~p_lo:(pmax /. 4.0) ~p_hi:pmax ~total_q:0.4
        in
        let single = Core.Normal_approx.single_bound u ~k in
        let pair_normal = Core.Normal_approx.pair_bound u ~k in
        let pair_eq11 = Core.Bounds.pair_bound_from_moments u ~k in
        let pair_eq12 =
          Core.Bounds.pair_bound_from_bound ~single_bound:single
            ~pmax:(Core.Universe.pmax u)
        in
        let exact_pair =
          Core.Pfd_dist.quantile (Core.Pfd_dist.exact_pair u) confidence
        in
        [
          Report.Table.float (Core.Universe.pmax u);
          Report.Table.float single;
          Report.Table.float exact_pair;
          Report.Table.float pair_normal;
          Report.Table.float pair_eq11;
          Report.Table.float pair_eq12;
          Report.Table.bool
            (pair_normal <= pair_eq11 +. 1e-12
            && pair_eq11 <= pair_eq12 +. 1e-12);
        ])
      [ 0.5; 0.2; 0.1; 0.05; 0.01 ]
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "99%% bounds (k=%.3f): single vs pair, normal approx vs exact vs \
            eqs. (11)/(12)"
           k)
      ~headers:
        [
          "pmax"; "single mu1+ks1"; "pair exact q99"; "pair mu2+ks2";
          "pair eq.(11)"; "pair eq.(12)"; "normal<=eq11<=eq12";
        ]
      rows
  in
  let fig =
    let pmaxes = Numerics.Grid.logspace ~lo:0.005 ~hi:0.5 ~n:40 in
    Report.Asciiplot.render_log_y
      ~title:"Guaranteed bound ratio vs pmax (99% confidence)"
      [
        Report.Asciiplot.series ~label:"eq.(12) ratio sqrt(pmax(1+pmax))"
          (Array.map (fun p -> (p, Core.Bounds.sigma_ratio_bound p)) pmaxes);
      ]
  in
  Experiment.output ~tables:[ table ] ~figures:[ fig ]
    ~notes:
      [
        "eq. (11) uses true mu1/sigma1 and is tighter than eq. (12), which \
         only uses the single-version bound — matching Section 5.1's \
         discussion of the two assessor information states";
        "rows where the exact q99 exceeds mu2+k*sigma2 quantify the \
         Section 5 caveat that 'we will not know in practice how good an \
         approximation it is': the pair PFD distribution is right-skewed, \
         so the normal bound can undercover at small n";
      ]
    ()

let experiment =
  Experiment.make ~id:"E06" ~paper_ref:"Section 5.1, eqs. (11)-(12)"
    ~description:
      "Confidence-bound gain from diversity vs pmax, with the exact \
       distribution as ground truth"
    run
