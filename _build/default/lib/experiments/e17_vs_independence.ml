(* E17 — Section 3.1.1's remark: the eq. (4) guarantee beats the
   independence claim exactly when pmax <= mu1, and the EL-style
   underestimation factor of the independence claim. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let rows =
    List.map
      (fun (label, u) ->
        let mu1 = Core.Moments.mu1 u in
        let pmax = Core.Universe.pmax u in
        [
          label;
          Report.Table.float mu1;
          Report.Table.float pmax;
          Report.Table.float (Baselines.Independence.predicted_mu2 u);
          Report.Table.float (Core.Moments.mu2 u);
          Report.Table.float (Baselines.Independence.underestimation_factor u);
          Report.Table.bool (Baselines.Independence.eq4_beats_independence u);
        ])
      [
        ( "many tiny faults",
          Core.Universe.homogeneous ~n:200 ~p:0.002 ~q:0.004 );
        ( "moderate faults",
          Core.Universe.uniform_random
            (Numerics.Rng.split rng ~index:1)
            ~n:30 ~p_lo:0.05 ~p_hi:0.3 ~total_q:0.5 );
        ( "one likely fault",
          Core.Universe.of_pairs
            ((0.4, 0.05) :: List.init 20 (fun _ -> (0.005, 0.02))) );
        ( "pmax below mu1",
          Core.Universe.homogeneous ~n:400 ~p:0.01 ~q:2e-3 );
      ]
  in
  let table =
    Report.Table.of_rows
      ~title:"Diversity vs the independence claim"
      ~headers:
        [
          "universe"; "mu1"; "pmax"; "mu1^2 (indep)"; "mu2 (model)";
          "indep optimism"; "eq.(4) beats indep";
        ]
      rows
  in
  Experiment.output ~tables:[ table ]
    ~notes:
      [
        "independence is optimistic by the factor mu2/mu1^2 >= 1 in every \
         row (the EL insight); eq. (4)'s guarantee only matches it when \
         pmax <= mu1 — requiring many, individually unlikely faults";
      ]
    ()

let experiment =
  Experiment.make ~id:"E17" ~paper_ref:"Section 3.1.1 remark"
    ~description:
      "When the paper's guaranteed bound is as strong as an independence \
       claim (pmax <= mu1), and how optimistic independence really is"
    run
