(* E15 — the Section 3/5 central-limit argument: "we will not know in
   practice how good an approximation it is in a specific case". Here we
   can know: KS distance between the exact PFD distribution and its
   moment-matched normal, as the number of potential faults grows. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let sizes = [ 5; 10; 15; 20; 50; 100; 200 ] in
  let rows =
    List.map
      (fun n ->
        let u =
          Core.Universe.uniform_random
            (Numerics.Rng.split rng ~index:n)
            ~n ~p_lo:0.1 ~p_hi:0.5 ~total_q:0.8
        in
        let dist =
          if n <= Core.Pfd_dist.max_exact_faults then Core.Pfd_dist.exact_single u
          else Core.Pfd_dist.grid_single u ~bins:8192
        in
        let mu = Core.Pfd_dist.mean dist and sigma = Core.Pfd_dist.std dist in
        let ks =
          Numerics.Ks.distance_between_cdfs
            (fun x -> Core.Pfd_dist.cdf dist x)
            (fun x -> Numerics.Normal_dist.cdf ~mu ~sigma x)
            ~lo:(mu -. (5.0 *. sigma))
            ~hi:(mu +. (5.0 *. sigma))
        in
        [
          Report.Table.int n;
          Report.Table.int (Core.Pfd_dist.size dist);
          Report.Table.float mu;
          Report.Table.float sigma;
          Report.Table.float ks;
        ])
      sizes
  in
  let table =
    Report.Table.of_rows
      ~title:"Normal-approximation quality vs universe size"
      ~headers:[ "n faults"; "support points"; "mu"; "sigma"; "KS distance" ]
      rows
  in
  (* A skewed, high-quality universe: the regime the paper warns about
     (Section 7: the K-L data "do not fit ... a normal approximation"). *)
  let skewed =
    Core.Universe.high_quality
      (Numerics.Rng.split rng ~index:999)
      ~n:20 ~expected_faults:0.5 ~total_q:0.3
  in
  let warn =
    Report.Table.of_rows
      ~title:"High-quality (mostly fault-free) regime: normal approx breaks"
      ~headers:[ "quantity"; "value" ]
      [
        [
          "P(Theta1 = 0)";
          Report.Table.float (Core.Fault_count.p_n1_zero skewed);
        ];
        [
          "KS distance to normal";
          Report.Table.float (Core.Normal_approx.normality_ks_distance skewed);
        ];
      ]
  in
  Experiment.output ~tables:[ table; warn ]
    ~notes:
      [
        "KS distance falls with n in the many-small-faults regime (the \
         paper's Section 5 scenario) and is large in the mostly-fault-free \
         regime, where Section 4's no-common-fault analysis applies instead";
      ]
    ()

let experiment =
  Experiment.make ~id:"E15" ~paper_ref:"Sections 3, 5, 7 (CLT argument)"
    ~description:
      "How good the normal approximation of the PFD distribution is, \
       measured against the exact distribution"
    run
