(* E24 — Section 4.2.3 and ref [13]: testing as fault removal. Operational
   testing scrubs large-region faults first, i.e. it is a non-uniform
   process improvement; the gain from diversity can move non-monotonically
   as the test campaign lengthens. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.power_law_random
      (Numerics.Rng.split rng ~index:0)
      ~n:20 ~p_lo:0.05 ~p_hi:0.4 ~q_exponent:(-1.3) ~total_q:0.5
  in
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  let traj =
    Extensions.Testing_process.trajectory u ~k
      ~demand_counts:[| 0; 10; 30; 100; 300; 1_000; 3_000; 10_000 |]
  in
  let rows =
    Array.to_list
      (Array.map
         (fun (p : Extensions.Testing_process.trajectory_point) ->
           [
             Report.Table.int p.demands;
             Report.Table.float p.mu1;
             Report.Table.float p.mu2;
             Report.Table.float p.mean_gain;
             Report.Table.float p.risk_ratio;
             Report.Table.float p.bound_ratio;
           ])
         traj)
  in
  let table =
    Report.Table.of_rows
      ~title:"Operational testing: p_i -> p_i (1-q_i)^t before delivery"
      ~headers:
        [ "test demands"; "mu1"; "mu2"; "mean gain"; "risk ratio"; "bound ratio" ]
      rows
  in
  let fig =
    Report.Asciiplot.render
      ~title:"Diversity gain measures vs test-campaign length (log10 t+1)"
      [
        Report.Asciiplot.series ~label:"risk ratio"
          (Array.map
             (fun (p : Extensions.Testing_process.trajectory_point) ->
               (log10 (float_of_int (p.demands + 1)), p.risk_ratio))
             traj);
        Report.Asciiplot.series ~label:"bound ratio"
          (Array.map
             (fun (p : Extensions.Testing_process.trajectory_point) ->
               (log10 (float_of_int (p.demands + 1)), p.bound_ratio))
             traj);
      ]
  in
  (* The budget question of [13]. *)
  let budget_rows =
    List.map
      (fun budget ->
        let single, pair =
          Extensions.Testing_process.single_vs_pair_testing u
            ~total_demands:budget
        in
        [
          Report.Table.int budget;
          Report.Table.float single;
          Report.Table.float pair;
          Report.Table.bool (pair < single);
        ])
      [ 0; 100; 1_000; 10_000; 100_000 ]
  in
  let budget =
    Report.Table.of_rows
      ~title:
        "Budget split ([13]): one version tested with t demands vs a 1oo2 \
         pair tested with t/2 each"
      ~headers:[ "budget t"; "single mu1"; "pair mu2"; "diversity wins" ]
      budget_rows
  in
  Experiment.output ~tables:[ table; budget ] ~figures:[ fig ]
    ~notes:
      [
        "as testing scrubs the big faults, the surviving universe is \
         dominated by small-q faults whose p_i were never reduced — the \
         diversity gain measures drift accordingly, the non-uniform \
         improvement regime of Appendix A rather than Appendix B";
      ]
    ()

let experiment =
  Experiment.make ~id:"E24" ~paper_ref:"Section 4.2.3, ref [13]"
    ~description:"Testing as non-uniform fault removal and its effect on the gain"
    run
