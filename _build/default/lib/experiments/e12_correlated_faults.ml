(* E12 — Section 6.1: correlated fault introduction via common conceptual
   errors. Marginals are held fixed, so the means are unchanged by
   construction; the experiment shows what correlation does to the
   variance, the no-fault probabilities, and the risk ratio, and how far
   the independence approximation drifts. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let base =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:12 ~p_lo:0.02 ~p_hi:0.2 ~total_q:0.4
  in
  let independent_ratio = Core.Fault_count.risk_ratio base in
  let rows =
    List.map
      (fun shock_prob ->
        let lift = 2.5 in
        let model =
          Extensions.Correlated.of_universe_with_shock base ~cluster_size:4
            ~shock_prob ~lift
        in
        let mc_rng = Numerics.Rng.split rng ~index:(int_of_float (shock_prob *. 100.)) in
        let mc_n1 = ref 0 and mc_trials = 30_000 in
        for _ = 1 to mc_trials do
          if Extensions.Correlated.sample_version mc_rng model <> [] then
            incr mc_n1
        done;
        [
          Report.Table.float shock_prob;
          Report.Table.float (Extensions.Correlated.mu1 model);
          Report.Table.float (Extensions.Correlated.sigma1 model);
          Report.Table.float (Extensions.Correlated.p_n1_pos model);
          Report.Table.float
            (float_of_int !mc_n1 /. float_of_int mc_trials);
          Report.Table.float (Extensions.Correlated.risk_ratio model);
        ])
      [ 0.0; 0.1; 0.2; 0.3 ]
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Common-shock correlation (lift 2.5, clusters of 4); independent \
            risk ratio = %s"
           (Report.Table.float independent_ratio))
      ~headers:
        [
          "shock prob"; "mu1 (fixed)"; "sigma1"; "P(N1>0) analytic";
          "P(N1>0) MC"; "risk ratio";
        ]
      rows
  in
  let baseline_check =
    let zero =
      Extensions.Correlated.of_universe_with_shock base ~cluster_size:4
        ~shock_prob:0.0 ~lift:2.5
    in
    Report.Table.of_rows
      ~title:"Zero-shock model reduces exactly to the independent model"
      ~headers:[ "quantity"; "independent"; "shock_prob=0" ]
      [
        [
          "sigma1";
          Report.Table.float (Core.Moments.sigma1 base);
          Report.Table.float (Extensions.Correlated.sigma1 zero);
        ];
        [
          "P(N1=0)";
          Report.Table.float (Core.Fault_count.p_n1_zero base);
          Report.Table.float (Extensions.Correlated.p_n1_zero zero);
        ];
        [
          "risk ratio";
          Report.Table.float independent_ratio;
          Report.Table.float (Extensions.Correlated.risk_ratio zero);
        ];
      ]
  in
  Experiment.output
    ~tables:[ table; baseline_check ]
    ~notes:
      [
        "positive correlation raises sigma1 and P(N1=0) together (failures \
         cluster into fewer, worse versions); the paper's Section 6.1 \
         argument that low-probability mistakes make independence a \
         tolerable approximation corresponds to the small-shock rows";
      ]
    ()

let experiment =
  Experiment.make ~id:"E12" ~paper_ref:"Section 6.1"
    ~description:
      "Effect of correlated fault introduction (common conceptual errors) \
       on the model's measures, with marginals held fixed"
    run
