(* E03 — eq. (10), Section 4.1: the risk ratio P(N2>0)/P(N1>0) is always at
   most 1; analytic values vs Monte Carlo development simulation across
   universe sizes and process qualities. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (p_lo, p_hi, label) ->
          let u =
            Core.Universe.uniform_random
              (Numerics.Rng.split rng ~index:(n + int_of_float (p_hi *. 100.)))
              ~n ~p_lo ~p_hi ~total_q:0.5
          in
          let analytic = Core.Fault_count.risk_ratio u in
          let mc =
            Simulator.Montecarlo.estimate
              (Numerics.Rng.split rng ~index:(7 * n))
              u ~replications:20_000
          in
          rows :=
            [
              Report.Table.int n;
              label;
              Report.Table.float analytic;
              Report.Table.float mc.Simulator.Montecarlo.risk_ratio;
              Report.Table.bool (analytic <= 1.0);
            ]
            :: !rows)
        [
          (0.001, 0.02, "high quality");
          (0.01, 0.1, "medium quality");
          (0.1, 0.5, "low quality");
        ])
    [ 5; 20; 100 ];
  let table =
    Report.Table.of_rows
      ~title:"Risk ratio P(N2>0)/P(N1>0): analytic vs simulated development"
      ~headers:[ "n"; "process"; "analytic"; "monte carlo"; "<= 1" ]
      (List.rev !rows)
  in
  Experiment.output ~tables:[ table ]
    ~notes:
      [
        "20000 development pairs per row; the empirical ratio counts pairs \
         sharing at least one fault over versions containing at least one";
      ]
    ()

let experiment =
  Experiment.make ~id:"E03" ~paper_ref:"Section 4.1, eq. (10)"
    ~description:
      "The no-common-fault risk ratio is at most 1 and Monte Carlo \
       development reproduces the analytic value"
    run
