(* E05 — Appendix B: with p_i = k b_i, the risk ratio is monotone
   non-decreasing in k for every parameter vector b: uniform process
   improvement (decreasing k) always increases the gain from diversity.
   We check the theorem over random universes and trace trajectories. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let violations = ref 0 in
  let checked = ref 0 in
  let trials = 1000 in
  for t = 0 to trials - 1 do
    let n = 2 + Numerics.Rng.int rng 20 in
    let b = Array.init n (fun _ -> Numerics.Rng.float rng) in
    let ks = Numerics.Grid.linspace ~lo:0.05 ~hi:1.0 ~n:12 in
    let prev = ref neg_infinity in
    Array.iter
      (fun k ->
        let ps = Array.map (fun bi -> k *. bi) b in
        let r = Core.Fault_count.risk_ratio_of_ps ps in
        incr checked;
        if r < !prev -. 1e-12 then incr violations;
        prev := r)
      ks;
    ignore t
  done;
  let check =
    Report.Table.of_rows
      ~title:"Appendix B theorem check over random parameter vectors"
      ~headers:[ "random universes"; "grid evaluations"; "monotonicity violations" ]
      [
        [
          Report.Table.int trials; Report.Table.int !checked;
          Report.Table.int !violations;
        ];
      ]
  in
  let derivative_rows =
    List.map
      (fun k ->
        let b = Array.init 10 (fun i -> 0.05 +. (0.08 *. float_of_int i)) in
        let d = Core.Sensitivity.risk_ratio_k_derivative ~b ~k in
        [
          Report.Table.float k;
          Report.Table.float
            (Core.Fault_count.risk_ratio_of_ps (Array.map (fun x -> k *. x) b));
          Report.Table.float ~precision:3 d;
          Report.Table.bool (d >= 0.0);
        ])
      [ 0.1; 0.25; 0.5; 0.75; 1.0 ]
  in
  let derivative =
    Report.Table.of_rows
      ~title:"dR/dk along a fixed b vector (ten graded fault classes)"
      ~headers:[ "k"; "risk ratio"; "dR/dk"; ">= 0" ]
      derivative_rows
  in
  let fig =
    let trajectories =
      List.map
        (fun (n, label) ->
          let b =
            Array.init n (fun _ -> Numerics.Rng.float rng *. 0.8)
          in
          Report.Asciiplot.series ~label
            (Array.map
               (fun k ->
                 (k, Core.Fault_count.risk_ratio_of_ps (Array.map (fun x -> k *. x) b)))
               (Numerics.Grid.linspace ~lo:0.02 ~hi:1.0 ~n:60)))
        [ (3, "n=3"); (10, "n=10"); (50, "n=50") ]
    in
    Report.Asciiplot.render
      ~title:"Risk ratio vs process-quality parameter k (monotone rising)"
      trajectories
  in
  Experiment.output ~tables:[ check; derivative ] ~figures:[ fig ] ()

let experiment =
  Experiment.make ~id:"E05" ~paper_ref:"Section 4.2.2, Appendix B"
    ~description:
      "Proportional process improvement always increases the diversity \
       gain: the risk ratio is monotone in k"
    run
