lib/experiments/e12_correlated_faults.ml: Core Experiment Extensions List Numerics Printf Report
