lib/experiments/e08_fig2_demand_space.ml: Array Demandspace Experiment List Numerics Printf Report Simulator String
