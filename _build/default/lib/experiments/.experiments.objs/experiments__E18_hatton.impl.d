lib/experiments/e18_hatton.ml: Array Baselines Core Experiment Numerics Report
