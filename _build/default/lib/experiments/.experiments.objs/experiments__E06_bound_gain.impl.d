lib/experiments/e06_bound_gain.ml: Array Core Experiment List Numerics Printf Report
