lib/experiments/e11_golden_lemma.ml: Core Experiment List Numerics Printf Report
