lib/experiments/e01_pmax_table.ml: Array Core Experiment List Numerics Report
