lib/experiments/e23_estimation.ml: Array Core Experiment List Numerics Printf Report Simulator
