lib/experiments/e22_voted_architectures.ml: Core Demandspace Experiment Fmt List Numerics Report Simulator
