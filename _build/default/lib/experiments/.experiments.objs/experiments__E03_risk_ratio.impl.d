lib/experiments/e03_risk_ratio.ml: Core Experiment List Numerics Report Simulator
