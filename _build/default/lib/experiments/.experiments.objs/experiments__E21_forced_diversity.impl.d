lib/experiments/e21_forced_diversity.ml: Core Experiment Extensions List Numerics Report
