lib/experiments/e29_functional_diversity.ml: Array Demandspace Experiment Extensions Numerics Printf Report
