lib/experiments/e13_overlap.ml: Core Demandspace Experiment Extensions List Numerics Printf Report
