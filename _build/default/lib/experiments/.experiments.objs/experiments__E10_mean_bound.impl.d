lib/experiments/e10_mean_bound.ml: Core Experiment List Numerics Report
