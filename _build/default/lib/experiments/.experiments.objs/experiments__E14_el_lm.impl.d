lib/experiments/e14_el_lm.ml: Array Baselines Demandspace Experiment List Numerics Report
