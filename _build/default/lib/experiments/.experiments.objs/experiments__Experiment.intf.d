lib/experiments/experiment.mli: Report
