lib/experiments/e25_prior_choice.ml: Core Experiment Extensions Fmt List Numerics Printf Report
