lib/experiments/e09_knight_leveson.ml: Demandspace Experiment Numerics Report Simulator
