lib/experiments/e24_testing.ml: Array Core Experiment Extensions List Numerics Report
