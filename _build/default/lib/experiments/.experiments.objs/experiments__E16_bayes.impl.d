lib/experiments/e16_bayes.ml: Array Core Experiment Extensions Numerics Printf Report
