lib/experiments/experiment.ml: Buffer List Printf Report String
