lib/experiments/e02_worked_example.ml: Core Experiment Numerics Report
