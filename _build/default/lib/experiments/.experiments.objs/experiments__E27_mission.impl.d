lib/experiments/e27_mission.ml: Demandspace Experiment List Numerics Report Simulator
