lib/experiments/e05_proportional_improvement.ml: Array Core Experiment List Numerics Report
