lib/experiments/e15_clt_quality.ml: Core Experiment List Numerics Report
