lib/experiments/e17_vs_independence.ml: Baselines Core Experiment List Numerics Report
