lib/experiments/e19_success_ratio.ml: Array Core Experiment List Numerics Report
