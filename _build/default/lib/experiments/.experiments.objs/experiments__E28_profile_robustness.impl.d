lib/experiments/e28_profile_robustness.ml: Core Demandspace Experiment List Numerics Report
