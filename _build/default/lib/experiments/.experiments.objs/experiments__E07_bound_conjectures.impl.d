lib/experiments/e07_bound_conjectures.ml: Array Core Experiment List Numerics Printf Report
