lib/experiments/e20_one_out_of_n.ml: Array Core Experiment List Numerics Report
