lib/experiments/e30_tail_bounds.ml: Core Experiment List Numerics Printf Report
