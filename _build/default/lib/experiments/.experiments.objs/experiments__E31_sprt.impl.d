lib/experiments/e31_sprt.ml: Demandspace Experiment Numerics Printf Report Simulator
