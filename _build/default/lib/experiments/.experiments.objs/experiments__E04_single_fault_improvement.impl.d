lib/experiments/e04_single_fault_improvement.ml: Array Core Experiment List Numerics Printf Report
