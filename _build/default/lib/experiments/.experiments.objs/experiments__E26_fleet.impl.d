lib/experiments/e26_fleet.ml: Core Demandspace Experiment Numerics Printf Report Simulator
