(* E04 — Appendix A: improving the process with respect to a single fault
   class can *reduce* the gain from diversity. For n = 2 the stationary
   point of the risk ratio in p1 has a closed form; we trace the ratio,
   verify the derivative's sign pattern, and tabulate the stationary points. *)

let run ~seed:_ =
  let p2_values = [ 0.1; 0.3; 0.5 ] in
  let stationary_rows =
    List.map
      (fun p2 ->
        let p1z = Core.Sensitivity.stationary_p1 ~p2 in
        let d_below = Core.Sensitivity.risk_ratio_partial [| p1z /. 2.0; p2 |] 0 in
        let d_at = Core.Sensitivity.risk_ratio_partial [| p1z; p2 |] 0 in
        let d_above =
          Core.Sensitivity.risk_ratio_partial [| min 0.99 (2.0 *. p1z); p2 |] 0
        in
        [
          Report.Table.float p2;
          Report.Table.float p1z;
          Report.Table.float ~precision:2 d_below;
          Report.Table.float ~precision:2 d_at;
          Report.Table.float ~precision:2 d_above;
          Report.Table.bool (d_below < 0.0 && abs_float d_at < 1e-9 && d_above > 0.0);
        ])
      p2_values
  in
  let stationary =
    Report.Table.of_rows
      ~title:"Appendix A (n=2): stationary point p1z of the risk ratio"
      ~headers:
        [ "p2"; "p1z"; "dR/dp1 below"; "dR/dp1 at p1z"; "dR/dp1 above"; "sign pattern ok" ]
      stationary_rows
  in
  let curves =
    List.map
      (fun p2 ->
        Report.Asciiplot.series
          ~label:(Printf.sprintf "p2=%.1f" p2)
          (Array.map
             (fun p1 -> (p1, Core.Sensitivity.risk_ratio_two ~p1 ~p2))
             (Numerics.Grid.linspace ~lo:0.005 ~hi:0.9 ~n:80)))
      p2_values
  in
  let fig =
    Report.Asciiplot.render
      ~title:"Risk ratio vs p1 (minimum at p1z: improving p1 below it hurts)"
      curves
  in
  Experiment.output ~tables:[ stationary ] ~figures:[ fig ]
    ~notes:
      [
        "reproduction note: our closed form p1z = p2(sqrt(2/(1+p2))-1)/(1-p2) \
         satisfies dR/dp1 = 0 to machine precision and lies BELOW p2, \
         whereas the paper's printed root is claimed to exceed p2 — see \
         EXPERIMENTS.md; the qualitative claim (both derivative signs occur) \
         is confirmed";
      ]
    ()

let experiment =
  Experiment.make ~id:"E04" ~paper_ref:"Section 4.2.1, Appendix A"
    ~description:
      "Single-fault process improvement is non-monotone in its effect on \
       the diversity gain; closed-form stationary point for n = 2"
    run
