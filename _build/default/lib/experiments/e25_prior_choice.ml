(* E25 — the conclusions' closing argument: model-based priors vs priors
   "chosen for computational convenience only". The same operational
   evidence is fed to (a) the exact model-derived prior on the pair's PFD,
   (b) a Beta prior moment-matched to it, and (c) off-the-shelf
   uninformative Beta priors; the posterior claims diverge. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:15 ~p_lo:0.01 ~p_hi:0.2 ~total_q:0.05
  in
  let dist = Core.Pfd_dist.exact_pair u in
  let model_prior = Extensions.Bayes.of_pfd_dist dist in
  let matched = Extensions.Beta_prior.moment_matched dist in
  let bound = 1e-3 in
  let priors =
    [
      ("model-based (exact)", `Model);
      (Fmt.str "%a (moment-matched)" Extensions.Beta_prior.pp matched, `Beta matched);
      ("Beta(1,1) uniform", `Beta Extensions.Beta_prior.uniform);
      ("Beta(0.5,0.5) Jeffreys", `Beta Extensions.Beta_prior.jeffreys);
    ]
  in
  let confidence_at prior demands =
    match prior with
    | `Model ->
        Extensions.Bayes.prob_at_most
          (Extensions.Bayes.observe_failure_free model_prior ~demands)
          bound
    | `Beta b ->
        Extensions.Beta_prior.prob_at_most
          (Extensions.Beta_prior.observe_failure_free b ~demands)
          bound
  in
  let demand_counts = [ 0; 100; 1_000; 10_000; 100_000 ] in
  let rows =
    List.map
      (fun (label, prior) ->
        label
        :: List.map
             (fun d -> Report.Table.float (confidence_at prior d))
             demand_counts)
      priors
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Posterior P(pair PFD <= %g) after t failure-free demands, by \
            prior"
           bound)
      ~headers:
        ("prior" :: List.map (fun d -> Printf.sprintf "t=%d" d) demand_counts)
      rows
  in
  let effort_rows =
    List.filter_map
      (fun (label, prior) ->
        let needed =
          match prior with
          | `Model ->
              Extensions.Bayes.demands_for_confidence model_prior ~bound
                ~confidence:0.99 ~max_demands:20_000_000
          | `Beta b ->
              Extensions.Beta_prior.demands_for_confidence b ~bound
                ~confidence:0.99 ~max_demands:20_000_000
        in
        Some
          [
            label;
            (match needed with
            | Some t -> Report.Table.int t
            | None -> ">2e7 (unreachable)");
          ])
      priors
  in
  let effort =
    Report.Table.of_rows
      ~title:"Failure-free demands needed for 99% confidence in the bound"
      ~headers:[ "prior"; "demands needed" ]
      effort_rows
  in
  Experiment.output ~tables:[ table; effort ]
    ~notes:
      [
        "the model prior carries an atom at PFD = 0 (the pair may share no \
         fault at all) that no Beta prior can represent; after long \
         failure-free operation the model posterior concentrates there \
         while the conjugate priors keep paying for their smooth tail — \
         the quantitative content of the paper's closing recommendation";
      ]
    ()

let experiment =
  Experiment.make ~id:"E25" ~paper_ref:"Section 7 conclusions"
    ~description:
      "Model-based priors vs computational-convenience Beta priors on the \
       same operational evidence"
    run
