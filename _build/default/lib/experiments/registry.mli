(** All reproduced paper artefacts, keyed by the DESIGN.md experiment ids. *)

val all : Experiment.t list
(** Every experiment, in id order. *)

val find : string -> Experiment.t option
(** Case-insensitive lookup by id (e.g. "E04"). *)

val ids : unit -> string list

val run_all : ?seed:int -> unit -> unit
(** Run and print every experiment (the bench harness's table pass). *)
