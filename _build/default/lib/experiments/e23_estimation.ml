(* E23 — Section 3.1.1's empirical programme: "the typical values achieved
   by given software development processes could be studied empirically".
   How many observed versions does an assessor need before the estimated
   pmax bound and the predicted diversity gain are usable? A calibration
   study against a known ground-truth universe. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let truth =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:12 ~p_lo:0.02 ~p_hi:0.35 ~total_q:0.5
  in
  let qs = Core.Universe.qs truth in
  let true_ratio = Core.Fault_count.risk_ratio truth in
  let true_pmax = Core.Universe.pmax truth in
  let rows =
    List.map
      (fun sample_size ->
        let dev_rng = Numerics.Rng.split rng ~index:sample_size in
        let versions =
          Array.init sample_size (fun _ ->
              Simulator.Devteam.sample_fault_set dev_rng truth)
        in
        let obs = Core.Estimator.observe ~n_faults:12 versions in
        let pred =
          Core.Estimator.predict_risk_ratio
            (Numerics.Rng.split rng ~index:(1000 + sample_size))
            obs ~qs
        in
        [
          Report.Table.int sample_size;
          Report.Table.float (Core.Estimator.pmax_hat obs);
          Report.Table.float (Core.Estimator.pmax_upper obs);
          Report.Table.float pred.Core.Estimator.point;
          Printf.sprintf "[%s, %s]"
            (Report.Table.float pred.Core.Estimator.ci_low)
            (Report.Table.float pred.Core.Estimator.ci_high);
          Report.Table.bool
            (pred.Core.Estimator.ci_low <= true_ratio
            && true_ratio <= pred.Core.Estimator.ci_high);
        ])
      [ 5; 10; 27; 50; 100; 400 ]
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Estimating the model from observed versions (truth: pmax=%.3f, \
            risk ratio=%.3f)"
           true_pmax true_ratio)
      ~headers:
        [
          "versions observed"; "pmax MLE"; "pmax 95% upper"; "risk ratio est.";
          "bootstrap 95% CI"; "CI covers truth";
        ]
      rows
  in
  (* What the estimated pmax upper bound buys through eq. (12). *)
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  let single = Core.Normal_approx.single_bound truth ~k in
  let claims =
    Report.Table.of_rows
      ~title:"Assessor's eq. (12) claim from the estimated pmax (99%)"
      ~headers:[ "versions"; "claimed pair bound"; "true pair bound" ]
      (List.map
         (fun sample_size ->
           let dev_rng = Numerics.Rng.split rng ~index:(2000 + sample_size) in
           let versions =
             Array.init sample_size (fun _ ->
                 Simulator.Devteam.sample_fault_set dev_rng truth)
           in
           let obs = Core.Estimator.observe ~n_faults:12 versions in
           [
             Report.Table.int sample_size;
             Report.Table.float
               (Core.Bounds.pair_bound_from_bound ~single_bound:single
                  ~pmax:(min 1.0 (Core.Estimator.pmax_upper obs)));
             Report.Table.float (Core.Normal_approx.pair_bound truth ~k);
           ])
         [ 10; 27; 100 ])
  in
  Experiment.output ~tables:[ table; claims ]
    ~notes:
      [
        "the 27-version row is Knight-Leveson-sized: at that sample size \
         the pmax upper bound is already informative while per-fault \
         estimates remain noisy — consistent with the paper's remark that \
         'estimating small p_i parameters could be infeasible' but an \
         upper bound suffices";
      ]
    ()

let experiment =
  Experiment.make ~id:"E23" ~paper_ref:"Section 3.1.1 (empirical programme)"
    ~description:
      "Calibration study: estimating pmax and the diversity gain from a \
       finite sample of observed versions"
    run
