(* E01 — the Section 5.1 table: the guaranteed confidence-bound shrinkage
   factor sqrt(pmax(1+pmax)) at the paper's three pmax values, plus a finer
   sweep showing the pmax -> sqrt(pmax) limit the paper notes. *)

let paper_values = [ (0.5, 0.866); (0.1, 0.332); (0.01, 0.100) ]

let run ~seed:_ =
  let exact =
    Report.Table.of_rows ~title:"Section 5.1 table: pmax vs sqrt(pmax(1+pmax))"
      ~headers:[ "pmax"; "paper"; "measured"; "abs error" ]
      (List.map
         (fun (pmax, printed) ->
           let v = Core.Bounds.sigma_ratio_bound pmax in
           [
             Report.Table.float pmax;
             Report.Table.float printed;
             Report.Table.float ~precision:3 v;
             Report.Table.float ~precision:1 (abs_float (v -. printed));
           ])
         paper_values)
  in
  let sweep_points =
    Numerics.Grid.logspace ~lo:1e-4 ~hi:0.5 ~n:13
  in
  let sweep =
    Report.Table.of_rows
      ~title:"Finer sweep: shrinkage factor and its sqrt(pmax) limit"
      ~headers:[ "pmax"; "sqrt(pmax(1+pmax))"; "sqrt(pmax)"; "ratio" ]
      (Array.to_list
         (Array.map
            (fun pmax ->
              let v = Core.Bounds.sigma_ratio_bound pmax in
              let lim = sqrt pmax in
              [
                Report.Table.float pmax;
                Report.Table.float v;
                Report.Table.float lim;
                Report.Table.float (v /. lim);
              ])
            sweep_points))
  in
  let fig =
    Report.Asciiplot.render ~title:"Shrinkage factor vs pmax"
      [
        Report.Asciiplot.series ~label:"sqrt(pmax(1+pmax))"
          (Array.map
             (fun p -> (p, Core.Bounds.sigma_ratio_bound p))
             (Numerics.Grid.linspace ~lo:0.001 ~hi:0.6 ~n:60));
        Report.Asciiplot.series ~label:"sqrt(pmax) limit"
          (Array.map
             (fun p -> (p, sqrt p))
             (Numerics.Grid.linspace ~lo:0.001 ~hi:0.6 ~n:60));
      ]
  in
  Experiment.output ~tables:[ exact; sweep ] ~figures:[ fig ]
    ~notes:
      [
        "the paper's last line promises a 10-fold bound improvement at \
         pmax=0.01; measured factor 0.100 reproduces it exactly";
      ]
    ()

let experiment =
  Experiment.make ~id:"E01" ~paper_ref:"Section 5.1 table"
    ~description:
      "Guaranteed confidence-bound shrinkage sqrt(pmax(1+pmax)) at the \
       paper's tabulated pmax values"
    run
