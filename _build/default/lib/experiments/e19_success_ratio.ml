(* E19 — footnote 5: the success-probability ratio P(N2=0)/P(N1=0) equals
   prod(1+p_i) >= 1 and increases when any p_i increases — the paper's
   reason for preferring the risk ratio, which moves the other way. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let rows =
    List.map
      (fun i ->
        let u =
          Core.Universe.uniform_random
            (Numerics.Rng.split rng ~index:i)
            ~n:10 ~p_lo:0.01 ~p_hi:0.4 ~total_q:0.5
        in
        let direct =
          Core.Fault_count.p_n2_zero u /. Core.Fault_count.p_n1_zero u
        in
        let closed = Core.Fault_count.success_ratio u in
        let bumped = Core.Universe.set_p u 0 (min 1.0 ((Core.Universe.ps u).(0) *. 1.5)) in
        [
          Report.Table.int i;
          Report.Table.float direct;
          Report.Table.float closed;
          Report.Table.bool (closed >= 1.0);
          Report.Table.bool
            (Core.Fault_count.success_ratio bumped >= closed -. 1e-15);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  let table =
    Report.Table.of_rows
      ~title:"Footnote 5: P(N2=0)/P(N1=0) = prod(1+p_i)"
      ~headers:
        [ "universe"; "direct ratio"; "prod(1+p_i)"; ">= 1"; "rises with p_1*1.5" ]
      rows
  in
  Experiment.output ~tables:[ table ]
    ~notes:
      [
        "large changes in the small risk P(N>0) look like tiny changes in \
         the success probability — reproducing the paper's argument for \
         working with risks";
      ]
    ()

let experiment =
  Experiment.make ~id:"E19" ~paper_ref:"Section 4.1, footnote 5"
    ~description:"The success-probability ratio identity and its monotonicity"
    run
