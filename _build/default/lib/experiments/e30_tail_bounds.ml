(* E30 — rigorous tail bounds vs the Section 5 normal approximation. The
   paper's mu + k sigma bounds assume normality it cannot verify; Chernoff
   and Hoeffding bounds are guaranteed for any sum of independent bounded
   terms. How much confidence bound does rigor cost? And where does the
   normal approximation actually undercover? *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:18 ~p_lo:0.05 ~p_hi:0.4 ~total_q:0.5
  in
  let exact = Core.Pfd_dist.exact_single u in
  let mu = Core.Moments.mu1 u and sigma = Core.Moments.sigma1 u in
  let rows =
    List.map
      (fun x ->
        let true_sf = Core.Pfd_dist.sf exact x in
        let normal_sf = Numerics.Normal_dist.sf ~mu ~sigma x in
        let chernoff = Core.Tail_bound.chernoff_sf_single u x in
        let hoeffding = Core.Tail_bound.hoeffding_sf_single u x in
        [
          Report.Table.float x;
          Report.Table.float true_sf;
          Report.Table.float normal_sf;
          Report.Table.float chernoff;
          Report.Table.float hoeffding;
          Report.Table.bool (chernoff >= true_sf -. 1e-12);
          Report.Table.bool (normal_sf >= true_sf);
        ])
      (List.map
         (fun k -> mu +. (k *. sigma))
         [ 1.0; 2.0; 3.0; 4.0; 5.0 ])
  in
  let table =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "P(Theta1 > x) at x = mu + k*sigma (mu=%.4g, sigma=%.4g)" mu sigma)
      ~headers:
        [
          "x"; "exact"; "normal approx"; "Chernoff"; "Hoeffding";
          "Chernoff covers"; "normal covers";
        ]
      rows
  in
  let bounds =
    List.map
      (fun confidence ->
        let normal_single =
          Core.Normal_approx.single_quantile u ~confidence
        in
        let rigorous_single =
          Core.Tail_bound.guaranteed_bound_single u ~confidence
        in
        let exact_q = Core.Pfd_dist.quantile exact confidence in
        [
          Report.Table.float confidence;
          Report.Table.float exact_q;
          Report.Table.float normal_single;
          Report.Table.float rigorous_single;
          Report.Table.float (rigorous_single /. exact_q);
        ])
      [ 0.9; 0.99; 0.999; 0.9999 ]
  in
  let bound_table =
    Report.Table.of_rows
      ~title:"Confidence bounds on Theta1: exact vs normal vs guaranteed"
      ~headers:
        [ "confidence"; "exact quantile"; "normal bound"; "Chernoff bound"; "rigor cost" ]
      bounds
  in
  Experiment.output
    ~tables:[ table; bound_table ]
    ~notes:
      [
        "the Chernoff column is a theorem, the normal column an \
         approximation: rows where 'normal covers' is false are exactly \
         the undercoverage the paper's Section 5 caveat worries about, \
         and the 'rigor cost' column prices the fix (typically <2x on the \
         bound at 99%+)";
      ]
    ()

let experiment =
  Experiment.make ~id:"E30" ~paper_ref:"Section 5 (alternative to the CLT)"
    ~description:
      "Guaranteed Chernoff/Hoeffding tail bounds vs the paper's normal \
       approximation"
    run
