(* E14 — Section 2.2's claim that the EL and LM conclusions are "easily
   re-derived here": E(Theta_2) >= E(Theta_1)^2 with the gap equal to the
   variance of the difficulty function (EL), and the LM two-process variant
   where negative difficulty covariance can beat independence. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let profile = Demandspace.Profile.uniform ~size:(32 * 32) in
  let rows =
    List.map
      (fun i ->
        let space =
          Demandspace.Genspace.disjoint_space
            (Numerics.Rng.split rng ~index:i)
            ~width:32 ~height:32 ~n_faults:12 ~max_extent:5 ~p_lo:0.05
            ~p_hi:0.5 ~profile
        in
        let m1 = Baselines.Eckhardt_lee.mean_single space in
        let m2 = Baselines.Eckhardt_lee.mean_pair space in
        let var_theta = Baselines.Eckhardt_lee.difficulty_variance space in
        [
          Report.Table.int i;
          Report.Table.float m1;
          Report.Table.float (m1 *. m1);
          Report.Table.float m2;
          Report.Table.float var_theta;
          Report.Table.float ~precision:2
            (Baselines.Eckhardt_lee.el_identity_gap space);
          Report.Table.bool (m2 >= (m1 *. m1) -. 1e-15);
        ])
      [ 1; 2; 3; 4 ]
  in
  let el =
    Report.Table.of_rows
      ~title:"Eckhardt-Lee re-derived: E(Theta2) = E(Theta1)^2 + Var(theta(X))"
      ~headers:
        [ "space"; "E(Theta1)"; "E(Theta1)^2"; "E(Theta2)"; "Var(theta)"; "identity gap"; ">= indep" ]
      rows
  in
  (* LM: complementary processes can push the covariance negative. *)
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:50)
      ~width:32 ~height:32 ~n_faults:10 ~max_extent:5 ~p_lo:0.05 ~p_hi:0.5
      ~profile
  in
  let n = Demandspace.Space.fault_count space in
  let pa =
    Array.init n (fun i -> Demandspace.Space.introduction_prob space i)
  in
  (* Channel B is strong exactly where A is weak: reverse the vector. *)
  let pb = Array.init n (fun i -> pa.(n - 1 - i)) in
  let forced = Baselines.Littlewood_miller.create space ~probs_a:pa ~probs_b:pb in
  let same = Baselines.Littlewood_miller.same_process space in
  let lm =
    Report.Table.of_rows
      ~title:"Littlewood-Miller: same process vs complementary processes"
      ~headers:[ "quantity"; "same process (EL)"; "complementary (LM)" ]
      [
        [
          "E(thetaA) E(thetaB)";
          Report.Table.float
            (Baselines.Littlewood_miller.mean_single_a same
            *. Baselines.Littlewood_miller.mean_single_b same);
          Report.Table.float
            (Baselines.Littlewood_miller.mean_single_a forced
            *. Baselines.Littlewood_miller.mean_single_b forced);
        ];
        [
          "E(Theta2)";
          Report.Table.float (Baselines.Littlewood_miller.mean_pair same);
          Report.Table.float (Baselines.Littlewood_miller.mean_pair forced);
        ];
        [
          "difficulty covariance";
          Report.Table.float
            (Baselines.Littlewood_miller.difficulty_covariance same);
          Report.Table.float
            (Baselines.Littlewood_miller.difficulty_covariance forced);
        ];
      ]
  in
  Experiment.output ~tables:[ el; lm ]
    ~notes:
      [
        "EL's covariance is a variance, hence never negative: non-forced \
         diversity can never beat independence on averages; LM's can be \
         negative when the processes' weaknesses are complementary";
      ]
    ()

let experiment =
  Experiment.make ~id:"E14" ~paper_ref:"Section 2.2 (EL [3], LM [4])"
    ~description:"Re-derivation of the Eckhardt-Lee and Littlewood-Miller results"
    run
