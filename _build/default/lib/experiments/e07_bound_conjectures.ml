(* E07 — Section 5.2: the paper's numerical conjectures about process
   improvement under the normal approximation:
   1. the bound ratio improves (falls) under proportional improvement;
   2. it may move either way under single-fault improvement;
   3. the bound difference increases with any increase of any p_i. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  (* 1: proportional improvement sweep on random universes. *)
  let prop_violations = ref 0 in
  let prop_trials = 300 in
  for t = 0 to prop_trials - 1 do
    let u =
      Core.Universe.uniform_random
        (Numerics.Rng.split rng ~index:t)
        ~n:15 ~p_lo:0.01 ~p_hi:0.6 ~total_q:0.5
    in
    let prev = ref neg_infinity in
    Array.iter
      (fun f ->
        let r = Core.Normal_approx.bound_ratio (Core.Universe.scale_all_p u f) ~k in
        if r < !prev -. 1e-10 then incr prop_violations;
        prev := r)
      (Numerics.Grid.linspace ~lo:0.1 ~hi:1.0 ~n:10)
  done;
  (* 2: single-fault improvement can move the ratio either direction. *)
  let up = ref 0 and down = ref 0 in
  for t = 0 to 499 do
    let u =
      Core.Universe.uniform_random
        (Numerics.Rng.split rng ~index:(1000 + t))
        ~n:8 ~p_lo:0.01 ~p_hi:0.7 ~total_q:0.5
    in
    let i = Numerics.Rng.int rng 8 in
    let improved =
      Core.Improvement.apply_step u
        (Core.Improvement.Single { index = i; factor = 0.5 })
    in
    let before = Core.Normal_approx.bound_ratio u ~k in
    let after = Core.Normal_approx.bound_ratio improved ~k in
    if after > before +. 1e-12 then incr up
    else if after < before -. 1e-12 then incr down
  done;
  (* 3: bound difference monotone in each p_i — checked per regime of p,
     since the conjecture turns out to hold only for small probabilities. *)
  let diff_regime p_hi =
    let violations = ref 0 in
    let trials = 1000 in
    for t = 0 to trials - 1 do
      let u =
        Core.Universe.uniform_random
          (Numerics.Rng.split rng ~index:(2000 + t + int_of_float (p_hi *. 1e4)))
          ~n:10 ~p_lo:0.01 ~p_hi ~total_q:0.5
      in
      let i = Numerics.Rng.int rng 10 in
      let p = (Core.Universe.ps u).(i) in
      let bigger = Core.Universe.set_p u i (min 1.0 (p *. 1.2)) in
      if
        Core.Normal_approx.bound_difference bigger ~k
        < Core.Normal_approx.bound_difference u ~k -. 1e-12
      then incr violations
    done;
    (trials, !violations)
  in
  let regimes = List.map (fun p_hi -> (p_hi, diff_regime p_hi)) [ 0.1; 0.3; 0.5 ] in
  let table =
    Report.Table.of_rows ~title:"Section 5.2 conjectures, numerically checked"
      ~headers:[ "conjecture"; "trials"; "outcome" ]
      ([
         [
           "bound ratio monotone under proportional improvement";
           Report.Table.int prop_trials;
           Printf.sprintf "%d violations" !prop_violations;
         ];
         [
           "single-fault improvement can move the ratio either way";
           "500";
           Printf.sprintf "%d raised the ratio, %d lowered it" !up !down;
         ];
       ]
      @ List.map
          (fun (p_hi, (trials, violations)) ->
            [
              Printf.sprintf
                "bound difference rises with any p_i increase (p <= %.1f)" p_hi;
              Report.Table.int trials;
              Printf.sprintf "%d violations" violations;
            ])
          regimes)
  in
  Experiment.output ~tables:[ table ]
    ~notes:
      [
        "the paper offers no theorems here; these sweeps are the same kind \
         of numerical evidence it reports, at larger scale";
        "reproduction finding: the third conjecture (bound difference \
         increases with any p_i) holds cleanly only in the small-p regime; \
         with fault probabilities up to 0.5 a p_i increase shrinks the \
         difference in a large share of cases, because d(sigma2)/dp_i \
         scales with 1/sigma2 and overtakes the sigma1 term — see \
         EXPERIMENTS.md";
      ]
    ()

let experiment =
  Experiment.make ~id:"E07" ~paper_ref:"Section 5.2"
    ~description:
      "Numerical verification of the paper's conjectures about process \
       improvement under the normal approximation"
    run
