(* E27 — the operator's view: time to first system failure and mission
   survival, across architectures, on the executable Fig. 1 system. The
   per-demand PFD of the paper maps onto geometric first-failure times;
   this experiment closes that loop and ranks architectures on MTTF. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:0)
      ~width:32 ~height:32 ~n_faults:10 ~max_extent:5 ~p_lo:0.15 ~p_hi:0.45
      ~profile:(Demandspace.Profile.uniform ~size:(32 * 32))
  in
  let reports =
    Simulator.Campaign.compare_architectures
      (Numerics.Rng.split rng ~index:1)
      space
      ~architectures:
        [ ("single", 1, 1); ("1oo2", 2, 1); ("2oo3", 3, 2); ("1oo3", 3, 1) ]
      ~missions:400 ~max_demands:100_000
  in
  let rows =
    List.map
      (fun (r : Simulator.Campaign.architecture_report) ->
        let m = r.simulated_mttf in
        [
          r.label;
          Report.Table.float r.analytic_pfd;
          Report.Table.float
            (Simulator.Campaign.theoretical_mttf ~pfd:r.analytic_pfd);
          Report.Table.float m.Simulator.Campaign.mean_time_to_failure;
          Report.Table.int m.Simulator.Campaign.censored;
          Report.Table.float r.survival_1000;
        ])
      reports
  in
  let table =
    Report.Table.of_rows
      ~title:
        "Architectures on one development process: 400 missions of up to \
         100k demands each (one concrete development per architecture)"
      ~headers:
        [
          "architecture"; "true PFD"; "1/PFD (theory)"; "simulated MTTF";
          "censored missions"; "P(survive 1000 demands)";
        ]
      rows
  in
  (* Geometric-law check on a system with a conveniently large PFD. *)
  let va = Demandspace.Version.create space [ 0; 1 ] in
  let vb = Demandspace.Version.create space [ 1; 2 ] in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" va)
      (Simulator.Channel.create ~name:"B" vb)
  in
  let pfd = Simulator.Protection.true_pfd system in
  let mission_demands = 200 in
  let simulated =
    Simulator.Campaign.simulate_mission_survival
      (Numerics.Rng.split rng ~index:2)
      ~system ~mission_demands ~missions:20_000
  in
  let geometric =
    Report.Table.of_rows ~title:"Geometric first-failure law check"
      ~headers:[ "quantity"; "value" ]
      [
        [ "system PFD"; Report.Table.float pfd ];
        [
          "P(survive 200 demands), theory (1-pfd)^200";
          Report.Table.float
            (Simulator.Campaign.mission_survival_probability ~pfd
               ~mission_demands);
        ];
        [
          "P(survive 200 demands), simulated (20k missions)";
          Report.Table.float simulated;
        ];
      ]
  in
  Experiment.output ~tables:[ table; geometric ]
    ~notes:
      [
        "MTTF rankings follow the Voting-model PFD ordering (1oo3 < 1oo2 < \
         2oo3 < single in PFD, reversed in MTTF); individual developed \
         systems deviate from the population mean, which is why each row \
         fixes one concrete development";
      ]
    ()

let experiment =
  Experiment.make ~id:"E27" ~paper_ref:"operational view of Fig. 1"
    ~description:
      "Time to first failure and mission survival across architectures; \
       geometric-law consistency of the executable system"
    run
