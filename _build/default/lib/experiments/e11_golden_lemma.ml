(* E11 — the Section 3.1.2 lemma: p^2(1-p^2) <= p(1-p) iff
   p <= (sqrt 5 - 1)/2 = 0.618033987, and the induced sigma bound eq. (9). *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let threshold = Core.Bounds.golden_threshold in
  let lemma_rows =
    List.map
      (fun p ->
        let lhs = p *. p *. (1.0 -. (p *. p)) in
        let rhs = p *. (1.0 -. p) in
        [
          Report.Table.float p;
          Report.Table.float lhs;
          Report.Table.float rhs;
          Report.Table.bool (Core.Bounds.variance_term_shrinks p);
          Report.Table.bool (p <= threshold);
        ])
      [ 0.1; 0.3; 0.5; 0.6; 0.618033987; 0.62; 0.7; 0.9 ]
  in
  let lemma =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Lemma: p^2(1-p^2) <= p(1-p) iff p <= %.9f (golden ratio - 1)"
           threshold)
      ~headers:[ "p"; "p^2(1-p^2)"; "p(1-p)"; "shrinks"; "p <= threshold" ]
      lemma_rows
  in
  let sigma_rows =
    List.map
      (fun i ->
        let u =
          Core.Universe.uniform_random
            (Numerics.Rng.split rng ~index:i)
            ~n:15 ~p_lo:0.01 ~p_hi:0.55 ~total_q:0.5
        in
        let s1 = Core.Moments.sigma1 u in
        let s2 = Core.Moments.sigma2 u in
        let bound = Core.Bounds.sigma2_upper u in
        [
          Report.Table.int i;
          Report.Table.float (Core.Universe.pmax u);
          Report.Table.float s1;
          Report.Table.float s2;
          Report.Table.float bound;
          Report.Table.bool (s2 <= bound +. 1e-15 && s2 <= s1);
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  let sigma =
    Report.Table.of_rows
      ~title:"Eq. (9): sigma2 < sqrt(pmax(1+pmax)) * sigma1 (all p_i < 0.618)"
      ~headers:[ "universe"; "pmax"; "sigma1"; "sigma2"; "eq.(9) bound"; "holds" ]
      sigma_rows
  in
  Experiment.output ~tables:[ lemma; sigma ] ()

let experiment =
  Experiment.make ~id:"E11" ~paper_ref:"Section 3.1.2, eq. (9)"
    ~description:
      "The golden-ratio variance lemma and the standard-deviation shrinkage \
       bound"
    run
