(* E22 — extension: M-out-of-N voted architectures under the fault-creation
   model, validated against the executable adjudicator. A protection
   function wants 1-out-of-N (any channel can trip the plant); a control
   function that must not trip spuriously wants majority voting — the
   model quantifies what the vote costs in PFD terms. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:15 ~p_lo:0.02 ~p_hi:0.3 ~total_q:0.4
  in
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  let architectures =
    [
      Core.Voting.create ~channels:1 ~required:1;
      Core.Voting.one_out_of_two;
      Core.Voting.create ~channels:3 ~required:1;
      Core.Voting.two_out_of_three;
      Core.Voting.create ~channels:4 ~required:2;
      Core.Voting.create ~channels:5 ~required:3;
    ]
  in
  let rows =
    List.map
      (fun v ->
        [
          Fmt.str "%a" Core.Voting.pp v;
          Report.Table.float (Core.Voting.mu v u);
          Report.Table.float (Core.Voting.sigma v u);
          Report.Table.float (Core.Voting.confidence_bound v u ~k);
          Report.Table.float (Core.Voting.p_some_system_fault v u);
          Report.Table.float
            (Core.Pfd_dist.quantile (Core.Voting.pfd_dist v u) 0.99);
        ])
      architectures
  in
  let table =
    Report.Table.of_rows
      ~title:"Voted architectures from one development process (99% bounds)"
      ~headers:
        [ "architecture"; "mu"; "sigma"; "mu+k*sigma"; "P(system-level fault)"; "exact q99" ]
      rows
  in
  (* Consistency with the core model and with the executable simulator. *)
  let mu_1oo2_voting = Core.Voting.mu Core.Voting.one_out_of_two u in
  let space =
    Demandspace.Genspace.disjoint_space
      (Numerics.Rng.split rng ~index:1)
      ~width:40 ~height:40 ~n_faults:10 ~max_extent:5 ~p_lo:0.1 ~p_hi:0.4
      ~profile:(Demandspace.Profile.uniform ~size:(40 * 40))
  in
  let su = Demandspace.Space.to_universe space in
  let sim_mu =
    let acc = Numerics.Welford.create () in
    let r = Numerics.Rng.split rng ~index:2 in
    for _ = 1 to 3000 do
      let mk () = Simulator.Channel.create ~name:"c" (Simulator.Devteam.develop r space) in
      let system = Simulator.Protection.voted ~required:2 [ mk (); mk (); mk () ] in
      Numerics.Welford.add acc (Simulator.Protection.true_pfd system)
    done;
    Numerics.Welford.mean acc
  in
  let checks =
    Report.Table.of_rows ~title:"Consistency checks"
      ~headers:[ "check"; "lhs"; "rhs" ]
      [
        [
          "Voting 1oo2 = paper's mu2";
          Report.Table.float mu_1oo2_voting;
          Report.Table.float (Core.Moments.mu2 u);
        ];
        [
          "Voting 2oo3 analytic vs simulated (3000 systems)";
          Report.Table.float (Core.Voting.mu Core.Voting.two_out_of_three su);
          Report.Table.float sim_mu;
        ];
      ]
  in
  Experiment.output ~tables:[ table; checks ]
    ~notes:
      [
        "2-out-of-3 is worse on PFD than 1-out-of-2 (a fault needs only 2 \
         of 3 channels to defeat the vote, probability ~3p^2 vs p^2) — the \
         price paid for spurious-trip protection, now quantified inside \
         the paper's model";
      ]
    ()

let experiment =
  Experiment.make ~id:"E22" ~paper_ref:"extension (Fig. 1 generalised)"
    ~description:"M-out-of-N voted architectures under the fault-creation model"
    run
