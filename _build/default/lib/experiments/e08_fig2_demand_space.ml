(* E08 — Fig. 2: a two-dimensional demand space with failure regions of the
   reported shapes, rendered; and the round trip demand-execution check:
   the empirical failure frequency of a version equals the analytic measure
   of its failure regions. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let width = 48 and height = 24 in
  let space = Demandspace.Genspace.fig2 rng ~width ~height in
  let render =
    String.concat "\n" (Demandspace.Genspace.render ~width ~height space)
  in
  let measures = Demandspace.Space.region_measures space in
  let shapes =
    Report.Table.of_rows ~title:"Fig. 2 failure regions over a 48x24 grid"
      ~headers:[ "region"; "shape"; "points"; "q (measure)"; "p (introduction)" ]
      (List.init (Demandspace.Space.fault_count space) (fun i ->
           let r = Demandspace.Space.region space i in
           [
             Report.Table.int (i + 1);
             Demandspace.Region.shape_name r;
             Report.Table.int (Demandspace.Region.cardinal r);
             Report.Table.float measures.(i);
             Report.Table.float (Demandspace.Space.introduction_prob space i);
           ]))
  in
  (* Round trip: develop a version with ALL faults and run demands. *)
  let all_faults =
    List.init (Demandspace.Space.fault_count space) (fun i -> i)
  in
  let v = Demandspace.Version.create space all_faults in
  let channel = Simulator.Channel.create ~name:"worst" v in
  let system = Simulator.Protection.create [ channel ] in
  let stats =
    Simulator.Runner.run
      (Numerics.Rng.split rng ~index:1)
      ~system ~demand_count:200_000
  in
  let lo, hi = stats.Simulator.Runner.pfd_ci in
  let roundtrip =
    Report.Table.of_rows
      ~title:"Executed-demand PFD vs analytic region measure"
      ~headers:[ "quantity"; "value" ]
      [
        [ "analytic PFD (union measure)"; Report.Table.float (Demandspace.Version.pfd v) ];
        [ "additive PFD (sum of q)"; Report.Table.float (Demandspace.Version.additive_pfd v) ];
        [
          "empirical PFD (200k demands)";
          Report.Table.float stats.Simulator.Runner.estimated_pfd;
        ];
        [ "95% CI"; Printf.sprintf "[%s, %s]" (Report.Table.float lo) (Report.Table.float hi) ];
        [
          "regions pairwise disjoint";
          Report.Table.bool (Demandspace.Space.regions_disjoint space);
        ];
      ]
  in
  Experiment.output ~tables:[ shapes; roundtrip ]
    ~figures:[ "-- Fig. 2 reproduction (digits = region ids) --\n" ^ render ]
    ()

let experiment =
  Experiment.make ~id:"E08" ~paper_ref:"Fig. 2, Section 2.1"
    ~description:
      "Failure-region geometry over a 2-D demand space and the \
       executed-demand consistency check"
    run
