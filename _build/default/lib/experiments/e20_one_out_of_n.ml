(* E20 — extension: 1-out-of-N systems. The model generalises immediately
   (a fault is common to N independent channels with probability p_i^N);
   this experiment traces the gain as channels are added. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let u =
    Core.Universe.uniform_random
      (Numerics.Rng.split rng ~index:0)
      ~n:15 ~p_lo:0.02 ~p_hi:0.3 ~total_q:0.4
  in
  let k = Core.Normal_approx.k_of_confidence 0.99 in
  let rows =
    List.map
      (fun channels ->
        let mu = Core.Moments.mu_n u ~channels in
        let sigma = Core.Moments.sigma_n u ~channels in
        [
          Report.Table.int channels;
          Report.Table.float mu;
          Report.Table.float sigma;
          Report.Table.float (mu +. (k *. sigma));
          Report.Table.float (Core.Fault_count.p_nk_pos u ~channels);
          Report.Table.float
            (Core.Pfd_dist.quantile (Core.Pfd_dist.exact_nk u ~channels) 0.99);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  let table =
    Report.Table.of_rows ~title:"1-out-of-N systems from one process"
      ~headers:
        [ "channels"; "mu"; "sigma"; "mu+k*sigma (99%)"; "P(common fault)"; "exact q99" ]
      rows
  in
  let fig =
    Report.Asciiplot.render_log_y ~title:"Mean PFD vs channel count"
      [
        Report.Asciiplot.series ~label:"mu (1-out-of-N)"
          (Array.init 6 (fun i ->
               (float_of_int (i + 1), Core.Moments.mu_n u ~channels:(i + 1))));
        Report.Asciiplot.series ~label:"independence (mu1^N)"
          (Array.init 6 (fun i ->
               ( float_of_int (i + 1),
                 Core.Moments.mu1 u ** float_of_int (i + 1) )));
      ]
  in
  Experiment.output ~tables:[ table ] ~figures:[ fig ]
    ~notes:
      [
        "each extra channel multiplies the per-fault term by another p_i: \
         diminishing but always positive returns, far short of the \
         independence prediction";
      ]
    ()

let experiment =
  Experiment.make ~id:"E20" ~paper_ref:"extension of Sections 3-5"
    ~description:"Diversity gain as a function of the number of channels" run
