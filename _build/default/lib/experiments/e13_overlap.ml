(* E13 — Section 6.2: overlapping failure regions make the additive model
   pessimistic; and pessimistic priors can accidentally produce optimistic
   posteriors under Bayesian inference. Both effects demonstrated on
   concrete demand spaces. *)

let run ~seed =
  let rng = Numerics.Rng.create ~seed in
  let profile = Demandspace.Profile.uniform ~size:(40 * 40) in
  let rows =
    List.map
      (fun (n_faults, max_extent) ->
        let space =
          Demandspace.Genspace.overlapping_space
            (Numerics.Rng.split rng ~index:(n_faults + max_extent))
            ~width:40 ~height:40 ~n_faults ~max_extent ~p_lo:0.05 ~p_hi:0.4
            ~profile
        in
        let a = Extensions.Overlap.analyse space in
        [
          Report.Table.int n_faults;
          Report.Table.int a.Extensions.Overlap.overlap_pairs;
          Report.Table.float a.exact_mu1;
          Report.Table.float a.additive_mu1;
          Report.Table.float a.mu1_pessimism;
          Report.Table.float a.exact_mu2;
          Report.Table.float a.additive_mu2;
          Report.Table.float a.mu2_pessimism;
        ])
      [ (8, 6); (16, 8); (32, 10) ]
  in
  let table =
    Report.Table.of_rows
      ~title:"Overlap pessimism of the additive (non-overlap) model"
      ~headers:
        [
          "faults"; "overlapping pairs"; "mu1 exact"; "mu1 additive";
          "factor"; "mu2 exact"; "mu2 additive"; "factor";
        ]
      rows
  in
  (* Bayesian effect: prior from the pessimistic additive model vs ground
     truth from the exact (overlap-aware) space. *)
  let space =
    Demandspace.Genspace.overlapping_space
      (Numerics.Rng.split rng ~index:99)
      ~width:40 ~height:40 ~n_faults:10 ~max_extent:8 ~p_lo:0.05 ~p_hi:0.4
      ~profile
  in
  let pessimistic_u = Demandspace.Space.to_universe space in
  let prior =
    Extensions.Bayes.of_pfd_dist (Core.Pfd_dist.exact_pair pessimistic_u)
  in
  let merged_u = Extensions.Overlap.merged_universe space in
  let honest_prior =
    Extensions.Bayes.of_pfd_dist (Core.Pfd_dist.exact_pair merged_u)
  in
  let bound = 1e-3 in
  let bayes_rows =
    List.map
      (fun demands ->
        let pess =
          Extensions.Bayes.prob_at_most
            (Extensions.Bayes.observe_failure_free prior ~demands)
            bound
        in
        let honest =
          Extensions.Bayes.prob_at_most
            (Extensions.Bayes.observe_failure_free honest_prior ~demands)
            bound
        in
        [
          Report.Table.int demands;
          Report.Table.float pess;
          Report.Table.float honest;
          Report.Table.bool (pess > honest);
        ])
      [ 0; 100; 1000; 10_000 ]
  in
  let bayes =
    Report.Table.of_rows
      ~title:
        (Printf.sprintf
           "Posterior P(pair PFD <= %g | t failure-free demands): additive \
            prior vs merged-region prior"
           bound)
      ~headers:
        [ "failure-free demands"; "additive prior"; "merged prior"; "additive more confident" ]
      bayes_rows
  in
  Experiment.output ~tables:[ table; bayes ]
    ~notes:
      [
        "the additive model is pessimistic for the VERSION PFD (mu1 factor \
         >= 1) but can be OPTIMISTIC for the PAIR (mu2 factor < 1): \
         overlapping regions of different faults create coincident failure \
         points that the sum-of-q model never counts — precisely why the \
         paper says that under overlap 'we could no longer trust our \
         estimates of the relative advantage of a two-version system'";
        "Section 6.2 warns that pessimistic priors 'might accidentally \
         produce optimistic posteriors': rows where the additive-prior \
         posterior confidence exceeds the merged-region one exhibit the \
         mechanism (the additive prior spreads mass to high PFD values \
         which failure-free operation then kills off too fast)";
      ]
    ()

let experiment =
  Experiment.make ~id:"E13" ~paper_ref:"Section 6.2"
    ~description:
      "Overlapping failure regions: pessimism of the additive model and \
       its knock-on effect on Bayesian assessment"
    run
