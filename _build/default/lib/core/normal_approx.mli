(** Confidence bounds on the PFD under the normal approximation
    (Section 5).

    The PFD is a sum of many independent per-fault contributions, so the
    paper approximates its distribution as N(mu, sigma^2) and reads
    confidence bounds as mu + k*sigma with k set by the confidence level
    (e.g. 2.33 at 99%). *)

type bound = { confidence : float; k : float; single : float; pair : float }
(** Matched single-version and pair bounds at one confidence level. *)

val k_of_confidence : float -> float
(** k with Phi(k) = confidence. *)

val single_bound : Universe.t -> k:float -> float
(** mu1 + k*sigma1. *)

val pair_bound : Universe.t -> k:float -> float
(** mu2 + k*sigma2. *)

val bound_at_confidence : Universe.t -> confidence:float -> bound

val bound_ratio : Universe.t -> k:float -> float
(** (mu2 + k sigma2)/(mu1 + k sigma1): the Section 5.2 gain measure; by
    eq. (12) it is below sqrt(pmax(1+pmax)). *)

val bound_difference : Universe.t -> k:float -> float
(** (mu1 + k sigma1) - (mu2 + k sigma2): the alternative gain measure whose
    monotonicity in every p_i the paper conjectures in Section 5.2. *)

val single_cdf : Universe.t -> float -> float
(** Normal-approximate P(Theta_1 <= x). *)

val pair_cdf : Universe.t -> float -> float

val single_quantile : Universe.t -> confidence:float -> float
(** Normal-approximate quantile of Theta_1. *)

val pair_quantile : Universe.t -> confidence:float -> float

type worked_example = {
  mu1 : float;
  sigma1 : float;
  k : float;
  pmax : float;
  single_bound : float;
  pair_bound_eq11 : float;
  pair_bound_eq12 : float;
}
(** The quantities of the Section 5.1 numerical example. *)

val worked_example :
  ?mu1:float -> ?sigma1:float -> ?k:float -> ?pmax:float -> unit -> worked_example
(** Defaults reproduce the paper's numbers: single bound 0.011, eq. (11)
    pair bound 0.001, eq. (12) pair bound ~0.004 (the paper rounds). *)

val normality_ks_distance : Universe.t -> float
(** Sup-distance between the exact distribution of Theta_1 and its
    moment-matched normal — how trustworthy the Section 5 approximation is
    for this universe. *)
