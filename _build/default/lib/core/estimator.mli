(** Estimating the model's parameters from observed versions.

    The paper's Section 3.1.1: "these parameters have intuitive meanings
    relating to developers' experiences, and the typical values achieved by
    given software development processes could be studied empirically ...
    to use inequality (4) we only need to estimate an upper bound." This
    module does that study: given the fault sets found in a sample of
    versions (e.g. from past projects of the same process), it estimates
    the p_i, bounds pmax, and propagates the sampling uncertainty into the
    paper's predictions by bootstrap. *)

type observation
(** Fault sets observed in a sample of independently developed versions
    over a known universe of [n_faults] potential faults. *)

val observe : n_faults:int -> int list array -> observation
(** Raises [Invalid_argument] on an empty sample or out-of-range indices. *)

val version_count : observation -> int

val occurrence_counts : observation -> int array
(** Number of observed versions containing each fault. *)

val p_hat : observation -> float array
(** Maximum-likelihood estimates of the introduction probabilities. *)

val p_interval : ?z:float -> observation -> int -> float * float
(** Wilson interval for one fault's probability. *)

val pmax_hat : observation -> float
(** Point estimate of pmax. *)

val pmax_upper : ?z:float -> observation -> float
(** Conservative upper confidence bound on pmax (the largest Wilson upper
    limit over faults) — the quantity an assessor feeds into eqs. (4),
    (9), (11), (12). *)

val plug_in_universe : observation -> qs:float array -> Universe.t
(** Universe with the estimated probabilities and externally supplied
    region measures. *)

type prediction = { point : float; ci_low : float; ci_high : float }

val bootstrap_predict :
  ?replicates:int ->
  ?alpha:float ->
  Numerics.Rng.t ->
  observation ->
  qs:float array ->
  statistic:(Universe.t -> float) ->
  prediction
(** Plug-in prediction of any universe statistic with a percentile
    bootstrap interval over the version sample. *)

val predict_mean_gain :
  ?replicates:int -> ?alpha:float -> Numerics.Rng.t -> observation -> qs:float array -> prediction
(** mu1/mu2 with sampling uncertainty (capped on degenerate resamples). *)

val predict_risk_ratio :
  ?replicates:int -> ?alpha:float -> Numerics.Rng.t -> observation -> qs:float array -> prediction
(** The eq. (10) ratio with sampling uncertainty. *)
