type t = { faults : Fault.t array }

let of_faults faults =
  if Array.length faults = 0 then invalid_arg "Universe.of_faults: empty universe";
  { faults = Array.copy faults }

let of_arrays ~p ~q =
  let n = Array.length p in
  if n <> Array.length q then invalid_arg "Universe.of_arrays: length mismatch";
  if n = 0 then invalid_arg "Universe.of_arrays: empty universe";
  { faults = Array.init n (fun i -> Fault.make ~p:p.(i) ~q:q.(i)) }

let of_pairs pairs =
  of_faults (Array.of_list (List.map (fun (p, q) -> Fault.make ~p ~q) pairs))

let size t = Array.length t.faults
let fault t i = t.faults.(i)
let faults t = Array.copy t.faults
let ps t = Array.map Fault.p t.faults
let qs t = Array.map Fault.q t.faults

let pmax t =
  Array.fold_left (fun acc f -> max acc (Fault.p f)) 0.0 t.faults

let qmax t =
  Array.fold_left (fun acc f -> max acc (Fault.q f)) 0.0 t.faults

let total_q t = Numerics.Kahan.sum_over (size t) (fun i -> Fault.q t.faults.(i))

let validate_disjoint t =
  (* Non-overlapping failure regions require the total region measure to be
     a probability (Section 6.2 concedes this is an artificial constraint,
     which the Extensions.Overlap model removes). *)
  total_q t <= 1.0 +. 1e-12

let map_faults f t = { faults = Array.map f t.faults }

let map_p f t =
  { faults = Array.map (fun flt -> Fault.with_p flt (f (Fault.p flt))) t.faults }

let scale_all_p t k = map_p (fun p -> p *. k) t

let with_fault t i fault =
  let faults = Array.copy t.faults in
  faults.(i) <- fault;
  { faults }

let set_p t i p = with_fault t i (Fault.with_p t.faults.(i) p)

let fold f init t = Array.fold_left f init t.faults
let iteri f t = Array.iteri f t.faults

let pp ppf t =
  Fmt.pf ppf "@[<v>universe (n=%d, pmax=%.4g, total_q=%.4g)@]" (size t) (pmax t)
    (total_q t)

(* ------------------------------------------------------------------ *)
(* Generators for the universe families used by the experiments.      *)
(* ------------------------------------------------------------------ *)

let homogeneous ~n ~p ~q = of_faults (Array.init n (fun _ -> Fault.make ~p ~q))

let uniform_random rng ~n ~p_lo ~p_hi ~total_q =
  if not (0.0 <= p_lo && p_lo <= p_hi && p_hi <= 1.0) then
    invalid_arg "Universe.uniform_random: need 0 <= p_lo <= p_hi <= 1";
  if total_q <= 0.0 || total_q > 1.0 then
    invalid_arg "Universe.uniform_random: total_q must lie in (0, 1]";
  let p = Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo:p_lo ~hi:p_hi) in
  let raw = Array.init n (fun _ -> Numerics.Rng.float rng +. 1e-9) in
  let s = Numerics.Kahan.sum_array raw in
  let q = Array.map (fun w -> w /. s *. total_q) raw in
  of_arrays ~p ~q

let power_law_random rng ~n ~p_lo ~p_hi ~q_exponent ~total_q =
  if total_q <= 0.0 || total_q > 1.0 then
    invalid_arg "Universe.power_law_random: total_q must lie in (0, 1]";
  let p = Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo:p_lo ~hi:p_hi) in
  let raw =
    Array.init n (fun _ ->
        Numerics.Sampler.power_law rng ~exponent:q_exponent ~lo:1e-6 ~hi:1.0)
  in
  let s = Numerics.Kahan.sum_array raw in
  let q = Array.map (fun w -> w /. s *. total_q) raw in
  of_arrays ~p ~q

let dirichlet_random rng ~n ~p_lo ~p_hi ~alpha ~total_q =
  if total_q <= 0.0 || total_q > 1.0 then
    invalid_arg "Universe.dirichlet_random: total_q must lie in (0, 1]";
  let p = Array.init n (fun _ -> Numerics.Rng.uniform rng ~lo:p_lo ~hi:p_hi) in
  let weights =
    Numerics.Sampler.dirichlet rng ~alphas:(Array.make n alpha)
  in
  let q = Array.map (fun w -> w *. total_q) weights in
  of_arrays ~p ~q

let high_quality rng ~n ~expected_faults ~total_q =
  (* The Section 4 regime: all p_i small, E[number of faults] given. *)
  if expected_faults <= 0.0 then
    invalid_arg "Universe.high_quality: expected_faults must be positive";
  let raw = Array.init n (fun _ -> Numerics.Rng.float rng +. 1e-9) in
  let s = Numerics.Kahan.sum_array raw in
  let p = Array.map (fun w -> w /. s *. expected_faults) raw in
  Array.iter
    (fun pi ->
      if pi > 1.0 then
        invalid_arg "Universe.high_quality: expected_faults too large for n")
    p;
  let raw_q = Array.init n (fun _ -> Numerics.Rng.float rng +. 1e-9) in
  let sq = Numerics.Kahan.sum_array raw_q in
  let q = Array.map (fun w -> w /. sq *. total_q) raw_q in
  of_arrays ~p ~q
