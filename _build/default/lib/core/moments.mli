(** Moments of the probability of failure on demand (Section 3, eqs. 1–3).

    In the model the PFD of a version is a sum of independent random
    variables (one per potential fault: value q_i with probability p_i,
    else 0), so means and variances are sums of the per-fault terms. For a
    1-out-of-2 system developed independently the introduction probability
    becomes p_i^2. *)

val mu1 : Universe.t -> float
(** E(Theta_1) = sum p_i q_i — mean PFD of a randomly developed version. *)

val mu2 : Universe.t -> float
(** E(Theta_2) = sum p_i^2 q_i — mean PFD of an independently developed
    1-out-of-2 pair. *)

val var1 : Universe.t -> float
(** Var(Theta_1) = sum p_i (1-p_i) q_i^2. *)

val var2 : Universe.t -> float
(** Var(Theta_2) = sum p_i^2 (1-p_i^2) q_i^2. *)

val sigma1 : Universe.t -> float
val sigma2 : Universe.t -> float

val mu_n : Universe.t -> channels:int -> float
(** Mean PFD of a 1-out-of-N system (fault common to all N independently
    developed channels with probability p_i^N); [channels = 1] and
    [channels = 2] recover {!mu1} and {!mu2}. *)

val var_n : Universe.t -> channels:int -> float
val sigma_n : Universe.t -> channels:int -> float

val expected_fault_count : Universe.t -> float
(** E(N_1) = sum p_i. *)

val expected_common_fault_count : Universe.t -> float
(** E(N_2) = sum p_i^2. *)

val mean_gain : Universe.t -> float
(** mu1 / mu2 — the mean-reliability improvement factor from diversity;
    [infinity] when the pair's mean PFD is exactly zero. *)

type t = { mu1 : float; mu2 : float; sigma1 : float; sigma2 : float }
(** All four headline moments in one record. *)

val compute : Universe.t -> t
val pp : Format.formatter -> t -> unit
