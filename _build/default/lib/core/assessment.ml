type sil = SIL1 | SIL2 | SIL3 | SIL4 | Below_SIL1

let sil_of_pfd pfd =
  if Float.is_nan pfd || pfd < 0.0 then
    invalid_arg "Assessment.sil_of_pfd: invalid PFD";
  if pfd < 1e-5 then SIL4 (* conservatively cap claims at SIL4 *)
  else if pfd < 1e-4 then SIL4
  else if pfd < 1e-3 then SIL3
  else if pfd < 1e-2 then SIL2
  else if pfd < 1e-1 then SIL1
  else Below_SIL1

let sil_to_string = function
  | SIL1 -> "SIL1"
  | SIL2 -> "SIL2"
  | SIL3 -> "SIL3"
  | SIL4 -> "SIL4"
  | Below_SIL1 -> "below SIL1"

let pfd_ceiling_of_sil = function
  | SIL1 -> 1e-1
  | SIL2 -> 1e-2
  | SIL3 -> 1e-3
  | SIL4 -> 1e-4
  | Below_SIL1 -> 1.0

type verdict = {
  required_bound : float;
  confidence : float;
  single_bound : float;
  pair_bound : float;
  pair_bound_conservative : float;
  single_meets : bool;
  pair_meets : bool;
  pair_meets_conservatively : bool;
}

let assess u ~required_bound ~confidence =
  if required_bound <= 0.0 then
    invalid_arg "Assessment.assess: required bound must be positive";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Assessment.assess: confidence must lie strictly in (0, 1)";
  let k = Normal_approx.k_of_confidence confidence in
  let single_bound = Normal_approx.single_bound u ~k in
  let pair_bound = Normal_approx.pair_bound u ~k in
  let pair_bound_conservative =
    (* What an assessor who only trusts the single-version bound and a pmax
       estimate can claim, by eq. (12). *)
    Bounds.pair_bound_from_bound ~single_bound ~pmax:(Universe.pmax u)
  in
  {
    required_bound;
    confidence;
    single_bound;
    pair_bound;
    pair_bound_conservative;
    single_meets = single_bound <= required_bound;
    pair_meets = pair_bound <= required_bound;
    pair_meets_conservatively = pair_bound_conservative <= required_bound;
  }

let diversity_gain_summary u ~confidence =
  let k = Normal_approx.k_of_confidence confidence in
  let v = assess u ~required_bound:1.0 ~confidence in
  let mean_gain = Moments.mean_gain u in
  let bound_gain =
    if v.pair_bound > 0.0 then v.single_bound /. v.pair_bound else infinity
  in
  let risk_gain =
    let r = Fault_count.risk_ratio u in
    if r > 0.0 then 1.0 /. r else infinity
  in
  (k, mean_gain, bound_gain, risk_gain)

let required_pmax_for_bound ~single_bound ~required_bound =
  (* Invert eq. (12): find the largest pmax whose guaranteed shrinkage
     sqrt(pmax(1+pmax)) brings the single bound under the requirement.
     Returns None when even pmax -> 0 cannot (required_bound <= 0) or when
     no shrinkage is needed. *)
  if single_bound <= 0.0 then invalid_arg "Assessment.required_pmax_for_bound";
  if required_bound >= single_bound then Some 1.0
  else
    let target = required_bound /. single_bound in
    (* solve sqrt(p(1+p)) = target: p^2 + p - target^2 = 0. *)
    let t2 = target *. target in
    let p = ((sqrt (1.0 +. (4.0 *. t2))) -. 1.0) /. 2.0 in
    if p <= 0.0 then None else Some (min 1.0 p)

let pp_verdict ppf v =
  Fmt.pf ppf
    "@[<v>requirement: PFD <= %.3g at %.4g confidence@,\
     single version bound: %.3g  -> %s@,\
     pair bound (moments): %.3g  -> %s@,\
     pair bound (eq. 12):  %.3g  -> %s@]"
    v.required_bound v.confidence v.single_bound
    (if v.single_meets then "meets" else "fails")
    v.pair_bound
    (if v.pair_meets then "meets" else "fails")
    v.pair_bound_conservative
    (if v.pair_meets_conservatively then "meets" else "fails")
