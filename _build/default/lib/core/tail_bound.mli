(** Rigorous tail bounds on the PFD distribution.

    Section 5 derives confidence bounds through a normal approximation the
    paper itself flags as unverifiable in practice ("we will not know in
    practice how good an approximation it is"). Because the PFD is a sum
    of independent bounded terms, Chernoff and Hoeffding bounds give
    *guaranteed* (if conservative) tail probabilities with no
    distributional assumption — a sound replacement for mu + k sigma when
    an assessor cannot defend normality (compare in experiment E30). *)

val log_mgf : probs:float array -> values:float array -> float -> float
(** Log moment generating function of a sum of independent two-point
    variables at the given argument. *)

val chernoff_exponent : probs:float array -> values:float array -> float -> float
(** Optimised large-deviation exponent sup (lambda x - log MGF). *)

val chernoff_sf_of_vectors :
  probs:float array -> values:float array -> float -> float
(** Guaranteed upper bound on P(sum > x); returns 1 at or below the mean,
    where the bound is vacuous. *)

val chernoff_sf_single : Universe.t -> float -> float
(** Guaranteed P(Theta_1 > x). *)

val chernoff_sf_pair : Universe.t -> float -> float
(** Guaranteed P(Theta_2 > x) for the independently developed pair. *)

val hoeffding_sf_of_vectors :
  probs:float array -> values:float array -> float -> float
(** The cruder exp(-2 t^2 / sum q_i^2) bound. *)

val hoeffding_sf_single : Universe.t -> float -> float

val guaranteed_bound_single : Universe.t -> confidence:float -> float
(** Smallest PFD level whose Chernoff-guaranteed exceedance probability is
    at most 1 - confidence: the rigorous analogue of the Section 5
    single-version bound. *)

val guaranteed_bound_pair : Universe.t -> confidence:float -> float
