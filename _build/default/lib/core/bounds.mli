(** The paper's pmax-based guaranteed bounds (Sections 3.1 and 5.1).

    These are the results an assessor can use knowing only an upper bound on
    the probability of the most likely fault: eq. (4) bounds the pair's mean
    PFD, eq. (9) its standard deviation, and eqs. (11)–(12) any
    (mu + k sigma)-style confidence bound. *)

val golden_threshold : float
(** (sqrt 5 - 1)/2 = 0.618033987...: the paper's threshold below which
    p^2(1-p^2) <= p(1-p), i.e. each fault's variance term shrinks when
    moving from one version to a pair (Section 3.1.2). *)

val variance_term_shrinks : float -> bool
(** [variance_term_shrinks p] is true iff p^2(1-p^2) <= p(1-p); true exactly
    when p <= {!golden_threshold} (up to rounding at the threshold). *)

val sigma_ratio_bound : float -> float
(** [sigma_ratio_bound pmax] = sqrt(pmax*(1+pmax)), the guaranteed
    shrinkage factor of eq. (9) and the "beta-factor"-style reduction of
    eq. (12); e.g. 0.866 / 0.332 / 0.100 at pmax = 0.5 / 0.1 / 0.01
    (the Section 5.1 table). *)

val mu2_upper : Universe.t -> float
(** Eq. (4): pmax * mu1 >= mu2 — the indisputable upper bound on the pair's
    average unreliability. *)

val sigma2_upper : Universe.t -> float
(** Eq. (9): sqrt(pmax(1+pmax)) * sigma1 > sigma2 (valid since all p_i are
    probabilities; strict improvement needs pmax below the golden
    threshold). *)

val confidence_bound : mu:float -> sigma:float -> k:float -> float
(** The "mu + k sigma" expression studied throughout Section 5. *)

val pair_bound_from_moments : Universe.t -> k:float -> float
(** Eq. (11): upper bound on mu2 + k sigma2 available when the assessor has
    estimates of mu1 and sigma1 themselves. *)

val pair_bound_from_bound : single_bound:float -> pmax:float -> float
(** Eq. (12): upper bound on mu2 + k sigma2 when only the single-version
    confidence bound (mu1 + k sigma1) is known: the bound shrinks by at
    least sqrt(pmax(1+pmax)). *)

val paper_table_pmax : float array
(** The pmax values tabulated in Section 5.1: 0.5, 0.1, 0.01. *)

val paper_table : unit -> (float * float) array
(** The Section 5.1 table: pairs (pmax, sqrt(pmax(1+pmax))). *)

val beats_independence : Universe.t -> bool
(** Section 3.1.1's remark: the eq. (4) bound predicts at least the
    improvement that failure independence would, exactly when
    pmax <= mu1. *)
