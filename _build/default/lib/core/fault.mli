(** A potential fault and its failure region (Section 2.2 of the paper).

    A potential fault is characterised by two probabilities:
    - [p]: the probability that the whole development process leaves this
      fault in a delivered version (a "mistake of the whole development
      process", including failed inspection, testing and debugging);
    - [q]: the probability that a random demand, drawn from the operational
      profile, lands in this fault's failure region — the fault's
      contribution to the version's probability of failure on demand. *)

type t
(** Immutable potential fault. *)

val make : p:float -> q:float -> t
(** Raises [Invalid_argument] unless both probabilities lie in [0, 1]. *)

val p : t -> float
(** Probability of introduction into one independently developed version. *)

val q : t -> float
(** Probability that a demand hits the fault's failure region. *)

val scale_p : t -> float -> t
(** Multiply the introduction probability by a factor (process change);
    raises [Invalid_argument] if the result leaves [0, 1]. *)

val with_p : t -> float -> t
val with_q : t -> float -> t

val mean_contribution : t -> float
(** [p*q]: this fault's term in E(Theta_1), eq. (1). *)

val variance_contribution : t -> float
(** [p(1-p)q^2]: this fault's term in Var(Theta_1), eq. (2). *)

val common_mean_contribution : t -> float
(** [p^2 q]: the term in E(Theta_2) for an independently developed pair. *)

val common_variance_contribution : t -> float
(** [p^2(1-p^2)q^2]: the term in Var(Theta_2). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
