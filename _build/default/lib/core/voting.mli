(** M-out-of-N voted architectures.

    The paper analyses the 1-out-of-2 OR configuration of Fig. 1; the
    fault-creation model extends verbatim to any M-out-of-N adjudication:
    with non-overlapping failure regions, a demand in fault i's region is
    mishandled exactly when too few channels are free of that fault, an
    event with binomial probability in the per-channel p_i. All the
    paper's machinery (moments, no-common-fault probabilities, exact PFD
    distributions, mu + k sigma bounds) then carries over. *)

type t
(** An architecture: N independently developed channels of which at least
    M must respond correctly. *)

val create : channels:int -> required:int -> t
(** Raises [Invalid_argument] unless 1 <= required <= channels. *)

val one_out_of_two : t
(** The paper's configuration. *)

val two_out_of_three : t
(** The classic majority-voting protection architecture. *)

val channels : t -> int
val required : t -> int

val fault_defeats_system : t -> p:float -> float
(** Probability that fault i (introduced per channel with probability [p])
    is present in enough channels to defeat the vote:
    P(Bin(N, p) >= N - M + 1). For 1-out-of-2 this is p^2, recovering the
    paper's model. *)

val mu : t -> Universe.t -> float
(** Mean system PFD. *)

val var : t -> Universe.t -> float
val sigma : t -> Universe.t -> float

val system_fault_probs : t -> Universe.t -> float array
(** Per-fault probabilities of defeating the vote — the voted system's
    analogue of the p_i^2 vector. *)

val p_system_fault_free : t -> Universe.t -> float
(** Probability that no fault defeats the vote (the Section 4 measure). *)

val p_some_system_fault : t -> Universe.t -> float

val risk_ratio_vs_single : t -> Universe.t -> float
(** Eq. (10) generalised: P(some system-level fault)/P(single version
    faulty). *)

val pfd_dist : t -> Universe.t -> Pfd_dist.t
(** Exact PFD distribution of the voted system. *)

val confidence_bound : t -> Universe.t -> k:float -> float
(** mu + k sigma for the voted system. *)

val pp : Format.formatter -> t -> unit
