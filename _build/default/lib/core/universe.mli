(** The collection of potential faults {F_1 .. F_n} of Section 2.2.

    A universe fixes the model parameters: for each potential fault, its
    probability [p_i] of being introduced in an independently developed
    version and the probability [q_i] of a demand hitting its failure
    region. Developing a version "means choosing, randomly and
    independently, possible subsets of this set of possible faults". *)

type t
(** Immutable fault universe (at least one fault). *)

val of_faults : Fault.t array -> t
(** Copies the array. Raises [Invalid_argument] on an empty universe. *)

val of_arrays : p:float array -> q:float array -> t
(** Build from parallel parameter vectors. *)

val of_pairs : (float * float) list -> t
(** Build from [(p, q)] pairs. *)

val size : t -> int
(** Number of potential faults [n]. *)

val fault : t -> int -> Fault.t
val faults : t -> Fault.t array
val ps : t -> float array
val qs : t -> float array

val pmax : t -> float
(** max over i of p_i — the single parameter an assessor must bound to use
    the paper's eqs. (4), (9), (11), (12). *)

val qmax : t -> float

val total_q : t -> float
(** Sum of region measures; the worst possible version PFD. *)

val validate_disjoint : t -> bool
(** True when total_q <= 1, the consistency condition for non-overlapping
    failure regions (Section 6.2). *)

val map_faults : (Fault.t -> Fault.t) -> t -> t
val map_p : (float -> float) -> t -> t

val scale_all_p : t -> float -> t
(** The Appendix B process-quality transformation p_i = k*b_i applied as a
    multiplicative change; raises if a probability leaves [0, 1]. *)

val with_fault : t -> int -> Fault.t -> t
val set_p : t -> int -> float -> t

val fold : ('a -> Fault.t -> 'a) -> 'a -> t -> 'a
val iteri : (int -> Fault.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit

(** {2 Universe families}

    The experiments sweep over families rather than single instances since
    the true parameters are "unknown and unmeasurable in practice". *)

val homogeneous : n:int -> p:float -> q:float -> t
(** All faults identical — the fully symmetric special case. *)

val uniform_random :
  Numerics.Rng.t -> n:int -> p_lo:float -> p_hi:float -> total_q:float -> t
(** p_i uniform in [p_lo, p_hi]; q_i a uniform random subdivision of
    [total_q]. *)

val power_law_random :
  Numerics.Rng.t ->
  n:int ->
  p_lo:float ->
  p_hi:float ->
  q_exponent:float ->
  total_q:float ->
  t
(** q_i drawn from a power law then normalised — a few large failure
    regions and many small ones, matching the shapes reported in the
    literature the paper cites ([9–11]). *)

val dirichlet_random :
  Numerics.Rng.t -> n:int -> p_lo:float -> p_hi:float -> alpha:float -> total_q:float -> t
(** q_i an exact Dirichlet(alpha) subdivision of [total_q]; small [alpha]
    gives highly unequal regions. *)

val high_quality :
  Numerics.Rng.t -> n:int -> expected_faults:float -> total_q:float -> t
(** The Section 4 regime: "very high-quality software with a high chance of
    having no faults" — random p_i scaled so that the expected number of
    faults per version equals [expected_faults] (all p_i small). *)
