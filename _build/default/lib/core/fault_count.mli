(** Distributions of the number of faults N1 (one version) and common
    faults N2 (a 1-out-of-2 pair) — the Section 4 machinery.

    For "very high-quality software with a high chance of having no
    faults", the measure of interest is the probability of the pair sharing
    no fault at all, and the paper's headline quantity is the risk ratio of
    eq. (10). *)

val p_n1_zero : Universe.t -> float
(** P(N1 = 0) = prod (1 - p_i): probability that a version is fault-free. *)

val p_n1_pos : Universe.t -> float
(** P(N1 > 0), computed without cancellation when all p_i are tiny. *)

val p_n2_zero : Universe.t -> float
(** P(N2 = 0) = prod (1 - p_i^2): no common fault in an independent pair. *)

val p_n2_pos : Universe.t -> float

val p_nk_zero : Universe.t -> channels:int -> float
(** 1-out-of-N generalisation: P(no fault common to all N channels). *)

val p_nk_pos : Universe.t -> channels:int -> float

val risk_ratio : Universe.t -> float
(** Eq. (10): P(N2>0) / P(N1>0), always <= 1; the smaller, the greater the
    advantage of diversity. NaN for a universe with all p_i = 0. *)

val risk_ratio_of_ps : float array -> float
(** Eq. (10) directly from a probability vector (used by the sensitivity
    analysis, which perturbs raw vectors). *)

val success_ratio : Universe.t -> float
(** Footnote 5: P(N2=0)/P(N1=0) = prod (1+p_i) >= 1, which *increases* if
    any p_i increases — the reason the paper prefers the risk ratio. *)

val prob_none : float array -> float
(** prod (1 - v_i) for an arbitrary probability vector. *)

val prob_some : float array -> float
(** 1 - prod (1 - v_i), cancellation-free for small probabilities. *)

val poisson_binomial : float array -> float array
(** Full distribution of the number of successes of independent
    non-identical Bernoulli trials: element k is P(exactly k present).
    O(n^2) dynamic programme, exact. *)

val n1_distribution : Universe.t -> float array
(** Distribution of the number of faults in one version. *)

val n2_distribution : Universe.t -> float array
(** Distribution of the number of common faults in a pair. *)

val nk_distribution : Universe.t -> channels:int -> float array

val mean_of_distribution : float array -> float
val variance_of_distribution : float array -> float
