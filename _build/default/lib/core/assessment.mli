(** Assessor-facing API.

    Section 5 motivates the modelling with the assessor's problem:
    standards map reliability requirements into Safety Integrity Levels and
    the assessor must judge, with some confidence, whether a system's PFD
    is below a bound. This module packages the paper's results in those
    terms. *)

type sil = SIL1 | SIL2 | SIL3 | SIL4 | Below_SIL1
(** IEC 61508-style low-demand safety integrity levels. *)

val sil_of_pfd : float -> sil
(** Level whose PFD band contains the given value (claims are capped at
    SIL4). *)

val sil_to_string : sil -> string

val pfd_ceiling_of_sil : sil -> float
(** Upper PFD limit of the level's band. *)

type verdict = {
  required_bound : float;
  confidence : float;
  single_bound : float;  (** mu1 + k*sigma1 *)
  pair_bound : float;  (** mu2 + k*sigma2 *)
  pair_bound_conservative : float;
      (** eq. (12): sqrt(pmax(1+pmax)) * single_bound — usable when only the
          single-version bound and pmax are trusted *)
  single_meets : bool;
  pair_meets : bool;
  pair_meets_conservatively : bool;
}

val assess : Universe.t -> required_bound:float -> confidence:float -> verdict
(** Evaluate a requirement "PFD <= bound with the given confidence" for a
    single version and for a 1-out-of-2 pair from the same process. *)

val diversity_gain_summary : Universe.t -> confidence:float -> float * float * float * float
(** [(k, mean_gain, bound_gain, risk_gain)]: the k factor used, mu1/mu2,
    the ratio of confidence bounds, and P(N1>0)/P(N2>0). *)

val required_pmax_for_bound :
  single_bound:float -> required_bound:float -> float option
(** Invert eq. (12): the weakest demonstrated bound on the probability of
    the most likely fault that lets the assessor claim the required pair
    bound. [Some 1.0] when no diversity credit is needed; [None] when no
    pmax can achieve it. *)

val pp_verdict : Format.formatter -> verdict -> unit
