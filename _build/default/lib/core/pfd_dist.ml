open Numerics

type t = { xs : float array; ws : float array; cum : float array }

let of_mass pairs =
  let pairs = List.filter (fun (_, w) -> w > 0.0) pairs in
  if pairs = [] then invalid_arg "Pfd_dist.of_mass: no positive mass";
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  (* merge equal support points *)
  let merged =
    List.fold_left
      (fun acc (x, w) ->
        match acc with
        | (x0, w0) :: rest when x = x0 -> (x0, w0 +. w) :: rest
        | _ -> (x, w) :: acc)
      [] sorted
    |> List.rev
  in
  let xs = Array.of_list (List.map fst merged) in
  let ws = Array.of_list (List.map snd merged) in
  let total = Kahan.sum_array ws in
  let ws = Array.map (fun w -> w /. total) ws in
  let cum = Array.make (Array.length ws) 0.0 in
  let acc = Kahan.create () in
  Array.iteri
    (fun i w ->
      Kahan.add acc w;
      cum.(i) <- min 1.0 (Kahan.total acc))
    ws;
  cum.(Array.length cum - 1) <- 1.0;
  { xs; ws; cum }

let support t = Array.copy t.xs
let masses t = Array.copy t.ws
let size t = Array.length t.xs

let mean t = Kahan.dot t.xs t.ws

let variance t =
  let m = mean t in
  Kahan.sum_over (size t) (fun i ->
      let d = t.xs.(i) -. m in
      t.ws.(i) *. d *. d)

let std t = sqrt (variance t)

let cdf t x =
  (* P(X <= x): index of last support point <= x. *)
  let n = size t in
  if n = 0 || x < t.xs.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    if x >= t.xs.(n - 1) then 1.0
    else begin
      (* invariant: xs(lo) <= x < xs(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t.xs.(mid) <= x then lo := mid else hi := mid
      done;
      t.cum.(!lo)
    end
  end

let sf t x = 1.0 -. cdf t x

let quantile t alpha =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Pfd_dist.quantile: alpha outside [0, 1]";
  (* smallest x with CDF(x) >= alpha *)
  let n = size t in
  let rec search lo hi =
    if lo >= hi then t.xs.(lo)
    else
      let mid = (lo + hi) / 2 in
      if t.cum.(mid) >= alpha then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let prob_positive t = 1.0 -. cdf t 0.0

let sample t rng =
  let u = Rng.float rng in
  let n = size t in
  let rec search lo hi =
    if lo >= hi then t.xs.(lo)
    else
      let mid = (lo + hi) / 2 in
      if t.cum.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let max_exact_faults = 22

(* Exact distribution of sum of independent {0, q_i} variables with
   P(q_i) = probs.(i): breadth-first doubling over sorted support lists. *)
let exact_of_vectors ~probs ~values =
  let n = Array.length probs in
  if n <> Array.length values then
    invalid_arg "Pfd_dist.exact_of_vectors: length mismatch";
  if n > max_exact_faults then
    invalid_arg
      (Printf.sprintf
         "Pfd_dist.exact_of_vectors: %d faults exceeds the exact-enumeration \
          limit of %d; use grid_of_vectors"
         n max_exact_faults);
  (* dist held as sorted (value, mass) arrays; each fault merges the
     shifted copy in linear time. *)
  let xs = ref [| 0.0 |] and ws = ref [| 1.0 |] in
  for i = 0 to n - 1 do
    let p = probs.(i) and q = values.(i) in
    if p > 0.0 then begin
      let old_xs = !xs and old_ws = !ws in
      let m = Array.length old_xs in
      let nxs = Array.make (2 * m) 0.0 and nws = Array.make (2 * m) 0.0 in
      (* merge (old, weight (1-p)) with (old + q, weight p) *)
      let a = ref 0 and b = ref 0 and out = ref 0 in
      let push x w =
        if !out > 0 && nxs.(!out - 1) = x then nws.(!out - 1) <- nws.(!out - 1) +. w
        else begin
          nxs.(!out) <- x;
          nws.(!out) <- w;
          incr out
        end
      in
      while !a < m || !b < m do
        let xa = if !a < m then old_xs.(!a) else infinity in
        let xb = if !b < m then old_xs.(!b) +. q else infinity in
        if xa <= xb then begin
          push xa (old_ws.(!a) *. (1.0 -. p));
          incr a
        end
        else begin
          push xb (old_ws.(!b) *. p);
          incr b
        end
      done;
      xs := Array.sub nxs 0 !out;
      ws := Array.sub nws 0 !out
    end
  done;
  let pairs = Array.to_list (Array.map2 (fun x w -> (x, w)) !xs !ws) in
  of_mass pairs

let exact_single u = exact_of_vectors ~probs:(Universe.ps u) ~values:(Universe.qs u)

let exact_pair u =
  exact_of_vectors
    ~probs:(Array.map (fun p -> p *. p) (Universe.ps u))
    ~values:(Universe.qs u)

let exact_nk u ~channels =
  if channels < 1 then invalid_arg "Pfd_dist.exact_nk: channels < 1";
  exact_of_vectors
    ~probs:(Array.map (fun p -> p ** float_of_int channels) (Universe.ps u))
    ~values:(Universe.qs u)

(* Grid approximation: round every q_i to a multiple of the grid step and
   run the same convolution on a dense array. The support error per fault
   is at most half a step, so the total displacement is bounded by
   n * step / 2. *)
let grid_of_vectors ~probs ~values ~bins =
  let n = Array.length probs in
  if n <> Array.length values then
    invalid_arg "Pfd_dist.grid_of_vectors: length mismatch";
  if bins < 2 then invalid_arg "Pfd_dist.grid_of_vectors: need at least 2 bins";
  let total = Kahan.sum_array values in
  let step = if total > 0.0 then total /. float_of_int (bins - 1) else 1.0 in
  let dist = Array.make bins 0.0 in
  dist.(0) <- 1.0;
  let top = ref 0 in
  for i = 0 to n - 1 do
    let p = probs.(i) in
    if p > 0.0 then begin
      let shift =
        int_of_float (Float.round (values.(i) /. step))
      in
      if shift = 0 then begin
        (* region too small for the grid: fold its mass into "no change";
           the caller can check the induced mean error via [mean]. *)
        ()
      end
      else begin
        let new_top = min (bins - 1) (!top + shift) in
        for j = new_top downto 0 do
          let keep = dist.(j) *. (1.0 -. p) in
          let arrive = if j >= shift then dist.(j - shift) *. p else 0.0 in
          dist.(j) <- keep +. arrive
        done;
        top := new_top
      end
    end
  done;
  let pairs = ref [] in
  for j = bins - 1 downto 0 do
    if dist.(j) > 0.0 then pairs := (float_of_int j *. step, dist.(j)) :: !pairs
  done;
  of_mass !pairs

let grid_single u ~bins =
  grid_of_vectors ~probs:(Universe.ps u) ~values:(Universe.qs u) ~bins

let grid_pair u ~bins =
  grid_of_vectors
    ~probs:(Array.map (fun p -> p *. p) (Universe.ps u))
    ~values:(Universe.qs u) ~bins

let single u =
  if Universe.size u <= max_exact_faults then exact_single u
  else grid_single u ~bins:4096

let pair u =
  if Universe.size u <= max_exact_faults then exact_pair u
  else grid_pair u ~bins:4096
