type step =
  | Proportional of float
  | Single of { index : int; factor : float }
  | Per_fault of float array

let check_factor name factor =
  if Float.is_nan factor || factor < 0.0 then
    invalid_arg (name ^ ": factor must be a non-negative number")

let apply_step u step =
  match step with
  | Proportional k ->
      check_factor "Improvement.apply_step (Proportional)" k;
      Universe.scale_all_p u k
  | Single { index; factor } ->
      check_factor "Improvement.apply_step (Single)" factor;
      if index < 0 || index >= Universe.size u then
        invalid_arg "Improvement.apply_step: fault index out of range";
      Universe.with_fault u index (Fault.scale_p (Universe.fault u index) factor)
  | Per_fault factors ->
      if Array.length factors <> Universe.size u then
        invalid_arg "Improvement.apply_step: factor vector length mismatch";
      Array.iter (check_factor "Improvement.apply_step (Per_fault)") factors;
      let i = ref (-1) in
      Universe.map_faults
        (fun f ->
          incr i;
          Fault.scale_p f factors.(!i))
        u

let apply u steps = List.fold_left apply_step u steps

let is_obviously_better u u' =
  (* Section 4.2: a change "in which no p_i increases and one or more
     decrease". *)
  if Universe.size u <> Universe.size u' then
    invalid_arg "Improvement.is_obviously_better: universe size mismatch";
  let none_increase = ref true in
  let some_decrease = ref false in
  Universe.iteri
    (fun i f ->
      let p = Fault.p f and p' = Fault.p (Universe.fault u' i) in
      if p' > p +. 1e-15 then none_increase := false;
      if p' < p -. 1e-15 then some_decrease := true)
    u;
  !none_increase && !some_decrease

type trajectory_point = {
  factor : float;
  mu1 : float;
  mu2 : float;
  risk_ratio : float;
  mean_gain : float;
}

let trajectory u ~step ~factors =
  Array.map
    (fun factor ->
      let u' =
        match step factor with
        | s -> apply_step u s
      in
      {
        factor;
        mu1 = Moments.mu1 u';
        mu2 = Moments.mu2 u';
        risk_ratio = Fault_count.risk_ratio u';
        mean_gain = Moments.mean_gain u';
      })
    factors

let proportional_trajectory u ~factors =
  trajectory u ~step:(fun k -> Proportional k) ~factors

let single_fault_trajectory u ~index ~factors =
  trajectory u ~step:(fun factor -> Single { index; factor }) ~factors
