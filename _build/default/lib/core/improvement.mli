(** Process-improvement transformations (Section 4.2).

    The paper distinguishes two idealised kinds of development-process
    change — decreasing a single fault's probability (new V&V methods
    targeting one fault type) and decreasing all probabilities in the same
    proportion (uniformly greater care) — and notes any "obviously better"
    process change decomposes into a sequence of these. *)

type step =
  | Proportional of float
      (** Scale every p_i by the factor (the Appendix B parameter k). *)
  | Single of { index : int; factor : float }
      (** Scale only fault [index]'s probability (Section 4.2.1). *)
  | Per_fault of float array
      (** Arbitrary per-fault scaling — a general process change. *)

val apply_step : Universe.t -> step -> Universe.t
(** Raises [Invalid_argument] on negative factors, out-of-range indices, or
    scalings that push a probability above 1. *)

val apply : Universe.t -> step list -> Universe.t
(** Apply a sequence of changes left to right. *)

val is_obviously_better : Universe.t -> Universe.t -> bool
(** [is_obviously_better u u'] holds when moving from [u] to [u'] no p_i
    increases and at least one decreases — the paper's notion of an
    unambiguous process improvement. *)

type trajectory_point = {
  factor : float;
  mu1 : float;
  mu2 : float;
  risk_ratio : float;
  mean_gain : float;
}
(** Reliability measures of the transformed universe at one value of the
    improvement factor. *)

val trajectory :
  Universe.t -> step:(float -> step) -> factors:float array -> trajectory_point array
(** Evaluate the measures along a family of transformed universes (each
    applied to the *original* universe, not cumulatively). *)

val proportional_trajectory :
  Universe.t -> factors:float array -> trajectory_point array
(** The Appendix B sweep: factors are values of k. *)

val single_fault_trajectory :
  Universe.t -> index:int -> factors:float array -> trajectory_point array
(** The Section 4.2.1 sweep on one fault. *)
