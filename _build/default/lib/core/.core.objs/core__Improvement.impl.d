lib/core/improvement.ml: Array Fault Fault_count Float List Moments Universe
