lib/core/fault_count.mli: Universe
