lib/core/sensitivity.mli:
