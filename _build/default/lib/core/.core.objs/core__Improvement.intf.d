lib/core/improvement.mli: Universe
