lib/core/estimator.mli: Numerics Universe
