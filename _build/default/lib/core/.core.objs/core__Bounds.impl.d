lib/core/bounds.ml: Array Moments Universe
