lib/core/tail_bound.ml: Array Kahan Moments Numerics Rootfind Special Universe
