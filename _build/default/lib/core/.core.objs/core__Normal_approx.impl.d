lib/core/normal_approx.ml: Bounds Ks Moments Normal_dist Numerics Pfd_dist
