lib/core/voting.ml: Array Betainc Fault Fault_count Fmt Kahan Numerics Pfd_dist Universe
