lib/core/universe.ml: Array Fault Fmt List Numerics
