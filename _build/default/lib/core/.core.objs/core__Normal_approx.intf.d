lib/core/normal_approx.mli: Universe
