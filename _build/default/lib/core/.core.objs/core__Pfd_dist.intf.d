lib/core/pfd_dist.mli: Numerics Universe
