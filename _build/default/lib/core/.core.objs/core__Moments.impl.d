lib/core/moments.ml: Fault Fmt Kahan Numerics Universe
