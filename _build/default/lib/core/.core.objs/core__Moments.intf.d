lib/core/moments.mli: Format Universe
