lib/core/estimator.ml: Array Fault_count Float List Moments Numerics Rng Stats Universe
