lib/core/voting.mli: Format Pfd_dist Universe
