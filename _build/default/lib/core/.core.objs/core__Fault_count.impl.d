lib/core/fault_count.ml: Array Fault Kahan Numerics Special Universe
