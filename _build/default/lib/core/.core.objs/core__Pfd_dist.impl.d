lib/core/pfd_dist.ml: Array Float Kahan List Numerics Printf Rng Universe
