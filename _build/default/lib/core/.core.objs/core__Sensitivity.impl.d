lib/core/sensitivity.ml: Array Fault_count Float Kahan Numerics Rootfind Special
