lib/core/tail_bound.mli: Universe
