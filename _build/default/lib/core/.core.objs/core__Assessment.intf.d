lib/core/assessment.mli: Format Universe
