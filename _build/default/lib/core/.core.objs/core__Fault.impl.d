lib/core/fault.ml: Float Fmt Stdlib
