lib/core/assessment.ml: Bounds Fault_count Float Fmt Moments Normal_approx Universe
