lib/core/bounds.mli: Universe
