lib/core/universe.mli: Fault Format Numerics
