open Numerics

type observation = { n_faults : int; versions : int list array }

let observe ~n_faults versions =
  if n_faults <= 0 then invalid_arg "Estimator.observe: n_faults must be positive";
  Array.iter
    (List.iter (fun i ->
         if i < 0 || i >= n_faults then
           invalid_arg "Estimator.observe: fault index out of range"))
    versions;
  if Array.length versions = 0 then
    invalid_arg "Estimator.observe: no versions observed";
  { n_faults; versions = Array.map (List.sort_uniq compare) versions }

let version_count obs = Array.length obs.versions

let occurrence_counts obs =
  let counts = Array.make obs.n_faults 0 in
  Array.iter
    (List.iter (fun i -> counts.(i) <- counts.(i) + 1))
    obs.versions;
  counts

let p_hat obs =
  let m = float_of_int (version_count obs) in
  Array.map (fun c -> float_of_int c /. m) (occurrence_counts obs)

let p_interval ?(z = 1.959963984540054) obs i =
  let counts = occurrence_counts obs in
  if i < 0 || i >= obs.n_faults then
    invalid_arg "Estimator.p_interval: fault index out of range";
  Stats.proportion_ci ~z ~successes:counts.(i) ~trials:(version_count obs) ()

let pmax_hat obs = Array.fold_left max 0.0 (p_hat obs)

let pmax_upper ?(z = 1.959963984540054) obs =
  let counts = occurrence_counts obs in
  Array.fold_left
    (fun acc c ->
      let _, hi = Stats.proportion_ci ~z ~successes:c ~trials:(version_count obs) () in
      max acc hi)
    0.0 counts

let plug_in_universe obs ~qs =
  if Array.length qs <> obs.n_faults then
    invalid_arg "Estimator.plug_in_universe: q vector length mismatch";
  (* A fault never seen gets the estimate 0, which Universe accepts. *)
  Universe.of_arrays ~p:(p_hat obs) ~q:qs

type prediction = {
  point : float;
  ci_low : float;
  ci_high : float;
}

let bootstrap_predict ?(replicates = 1000) ?(alpha = 0.05) rng obs ~qs ~statistic
    =
  if Array.length qs <> obs.n_faults then
    invalid_arg "Estimator.bootstrap_predict: q vector length mismatch";
  let m = version_count obs in
  let point = statistic (plug_in_universe obs ~qs) in
  let stats =
    Array.init replicates (fun _ ->
        let resampled =
          Array.init m (fun _ -> obs.versions.(Rng.int rng m))
        in
        let obs' = { obs with versions = resampled } in
        statistic (plug_in_universe obs' ~qs))
  in
  Array.sort compare stats;
  {
    point;
    ci_low = Stats.quantile_sorted stats (alpha /. 2.0);
    ci_high = Stats.quantile_sorted stats (1.0 -. (alpha /. 2.0));
  }

let predict_mean_gain ?replicates ?alpha rng obs ~qs =
  bootstrap_predict ?replicates ?alpha rng obs ~qs ~statistic:(fun u ->
      (* mean gain can be infinite on resamples where no fault repeats;
         cap it so interval endpoints stay finite and interpretable *)
      let g = Moments.mean_gain u in
      if Float.is_finite g then g else float_of_int (version_count obs) ** 2.0)

let predict_risk_ratio ?replicates ?alpha rng obs ~qs =
  bootstrap_predict ?replicates ?alpha rng obs ~qs ~statistic:(fun u ->
      let r = Fault_count.risk_ratio u in
      if Float.is_nan r then 0.0 else r)
