let golden_threshold = (sqrt 5.0 -. 1.0) /. 2.0

let variance_term_shrinks p = p *. p *. (1.0 -. (p *. p)) <= p *. (1.0 -. p)

let sigma_ratio_bound pmax =
  if pmax < 0.0 || pmax > 1.0 then
    invalid_arg "Bounds.sigma_ratio_bound: pmax outside [0, 1]";
  sqrt (pmax *. (1.0 +. pmax))

let mu2_upper u = Universe.pmax u *. Moments.mu1 u

let sigma2_upper u = sigma_ratio_bound (Universe.pmax u) *. Moments.sigma1 u

let confidence_bound ~mu ~sigma ~k = mu +. (k *. sigma)

let pair_bound_from_moments u ~k =
  (* Eq. (11): mu2 + k*sigma2 <= pmax*mu1 + k*sqrt(pmax(1+pmax))*sigma1. *)
  let pmax = Universe.pmax u in
  (pmax *. Moments.mu1 u)
  +. (k *. sigma_ratio_bound pmax *. Moments.sigma1 u)

let pair_bound_from_bound ~single_bound ~pmax =
  (* Eq. (12): the looser bound usable when only (mu1 + k sigma1) is known. *)
  if single_bound < 0.0 then
    invalid_arg "Bounds.pair_bound_from_bound: negative bound";
  sigma_ratio_bound pmax *. single_bound

let paper_table_pmax = [| 0.5; 0.1; 0.01 |]

let paper_table () =
  Array.map (fun pmax -> (pmax, sigma_ratio_bound pmax)) paper_table_pmax

let beats_independence u = Universe.pmax u <= Moments.mu1 u
