type t = { p : float; q : float }

let make ~p ~q =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Fault.make: p must lie in [0, 1]";
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Fault.make: q must lie in [0, 1]";
  { p; q }

let p t = t.p
let q t = t.q

let scale_p t factor =
  let p = t.p *. factor in
  if p < 0.0 || p > 1.0 then
    invalid_arg "Fault.scale_p: scaled probability leaves [0, 1]";
  { t with p }

let with_p t p = make ~p ~q:t.q
let with_q t q = make ~p:t.p ~q

let mean_contribution t = t.p *. t.q
let variance_contribution t = t.p *. (1.0 -. t.p) *. t.q *. t.q

let common_mean_contribution t = t.p *. t.p *. t.q

let common_variance_contribution t =
  let p2 = t.p *. t.p in
  p2 *. (1.0 -. p2) *. t.q *. t.q

let pp ppf t = Fmt.pf ppf "{p=%.6g; q=%.6g}" t.p t.q
let equal a b = a.p = b.p && a.q = b.q
let compare a b = Stdlib.compare (a.p, a.q) (b.p, b.q)
