type t = { required : int }

let one_out_of_n = { required = 1 }

let m_out_of_n ~required =
  if required < 1 then invalid_arg "Adjudicator.m_out_of_n: required must be >= 1";
  { required }

let required t = t.required

let combine t outputs =
  if outputs = [] then invalid_arg "Adjudicator.combine: no channel outputs";
  if t.required > List.length outputs then
    invalid_arg "Adjudicator.combine: more votes required than channels";
  let shutdowns =
    List.length (List.filter (fun o -> o = Channel.Shutdown) outputs)
  in
  if shutdowns >= t.required then Channel.Shutdown else Channel.No_action

let system_fails t outputs = combine t outputs = Channel.No_action

let pp ppf t =
  if t.required = 1 then Fmt.string ppf "1-out-of-N (OR)"
  else Fmt.pf ppf "%d-out-of-N" t.required
