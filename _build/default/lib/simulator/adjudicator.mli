(** Adjudication of the channels' binary outputs.

    The paper's configuration is "perfect adjudication (simple OR
    combination of binary outputs)": the plant shuts down if any channel
    commands it. The generalised M-out-of-N adjudicator demands at least M
    shutdown votes — M = 1 recovers the paper's 1-out-of-2 when N = 2, and
    M = 2, N = 3 is classic majority voting (see {!Core.Voting} for the
    analytic counterpart). *)

type t

val one_out_of_n : t
(** The OR adjudicator (any shutdown vote suffices). *)

val m_out_of_n : required:int -> t
(** Demand at least [required] shutdown votes. Raises [Invalid_argument]
    if [required < 1]. *)

val required : t -> int

val combine : t -> Channel.output list -> Channel.output
(** Raises [Invalid_argument] on an empty output list or when more votes
    are required than channels are present. *)

val system_fails : t -> Channel.output list -> bool
(** True when the combined output is [No_action] on a demand. *)

val pp : Format.formatter -> t -> unit
