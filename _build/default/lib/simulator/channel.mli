(** One channel of the protection system of Fig. 1: a software version that
    reads the sensed plant state (the demand) and either commands shutdown
    (correct, since a demand by definition requires intervention) or fails
    to act. *)

type output = Shutdown | No_action
(** Binary channel output; the paper's OR adjudication combines these. *)

type t

val create : name:string -> Demandspace.Version.t -> t
val name : t -> string
val version : t -> Demandspace.Version.t

val respond : t -> Demandspace.Demand.t -> output
(** [No_action] exactly when the demand is a failure point of the channel's
    version. *)

val fails_on : t -> Demandspace.Demand.t -> bool
val pfd : t -> float

val pp_output : Format.formatter -> output -> unit
val pp : Format.formatter -> t -> unit
