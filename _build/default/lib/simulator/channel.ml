type output = Shutdown | No_action

type t = { name : string; version : Demandspace.Version.t }

let create ~name version = { name; version }
let name t = t.name
let version t = t.version

let respond t demand =
  (* A demand is, by definition, a plant state requiring intervention; a
     correct channel commands shutdown. The channel fails exactly when the
     demand lies in its version's failure set. *)
  if Demandspace.Version.fails_on t.version demand then No_action else Shutdown

let fails_on t demand = respond t demand = No_action
let pfd t = Demandspace.Version.pfd t.version

let pp_output ppf = function
  | Shutdown -> Fmt.string ppf "shutdown"
  | No_action -> Fmt.string ppf "no-action"

let pp ppf t = Fmt.pf ppf "channel %s (pfd=%.6g)" t.name (pfd t)
