open Numerics

let sample_fault_set rng universe =
  let present = ref [] in
  for i = Core.Universe.size universe - 1 downto 0 do
    if Rng.bool rng ~p:(Core.Fault.p (Core.Universe.fault universe i)) then
      present := i :: !present
  done;
  !present

let develop rng space =
  let present = ref [] in
  for i = Demandspace.Space.fault_count space - 1 downto 0 do
    if Rng.bool rng ~p:(Demandspace.Space.introduction_prob space i) then
      present := i :: !present
  done;
  Demandspace.Version.create space !present

let develop_pair rng space = (develop rng space, develop rng space)

let develop_many rng space ~count = Array.init count (fun _ -> develop rng space)

let version_pfd_from_universe rng universe =
  (* Abstract development: sample the fault set and return the model PFD
     (sum of the q_i of the present faults) without materialising regions. *)
  let present = sample_fault_set rng universe in
  Kahan.sum_list
    (List.map (fun i -> Core.Fault.q (Core.Universe.fault universe i)) present)

let pair_pfd_from_universe rng universe =
  let a = sample_fault_set rng universe in
  let b = sample_fault_set rng universe in
  let common = List.filter (fun i -> List.mem i b) a in
  ( Kahan.sum_list
      (List.map (fun i -> Core.Fault.q (Core.Universe.fault universe i)) a),
    Kahan.sum_list
      (List.map (fun i -> Core.Fault.q (Core.Universe.fault universe i)) b),
    Kahan.sum_list
      (List.map (fun i -> Core.Fault.q (Core.Universe.fault universe i)) common)
  )
