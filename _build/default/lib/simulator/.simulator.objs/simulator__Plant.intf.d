lib/simulator/plant.mli: Demandspace Numerics
