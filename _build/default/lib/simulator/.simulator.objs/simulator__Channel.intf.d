lib/simulator/channel.mli: Demandspace Format
