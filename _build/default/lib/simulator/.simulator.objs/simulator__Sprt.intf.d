lib/simulator/sprt.mli: Numerics Protection
