lib/simulator/sprt.ml: Channel Demandspace List Numerics Plant Protection Special
