lib/simulator/fleet.ml: Array Channel Devteam Numerics Protection Runner Stats
