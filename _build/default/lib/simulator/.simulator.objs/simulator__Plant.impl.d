lib/simulator/plant.ml: Array Demandspace Numerics Rng
