lib/simulator/protection.mli: Adjudicator Channel Demandspace Format
