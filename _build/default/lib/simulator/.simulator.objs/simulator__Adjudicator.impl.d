lib/simulator/adjudicator.ml: Channel Fmt List
