lib/simulator/channel.ml: Demandspace Fmt
