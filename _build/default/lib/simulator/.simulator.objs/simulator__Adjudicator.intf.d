lib/simulator/adjudicator.mli: Channel Format
