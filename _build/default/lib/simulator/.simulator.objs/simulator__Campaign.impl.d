lib/simulator/campaign.ml: Channel Demandspace Devteam List Numerics Plant Protection Special
