lib/simulator/devteam.ml: Array Core Demandspace Kahan List Numerics Rng
