lib/simulator/runner.ml: Adjudicator Array Channel Demandspace Fmt Fun List Logs Numerics Plant Protection Stats
