lib/simulator/runner.mli: Format Numerics Protection
