lib/simulator/fleet.mli: Demandspace Numerics Protection
