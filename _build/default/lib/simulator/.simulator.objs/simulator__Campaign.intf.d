lib/simulator/campaign.mli: Demandspace Numerics Protection
