lib/simulator/montecarlo.mli: Core Demandspace Numerics
