lib/simulator/protection.ml: Adjudicator Channel Demandspace Fmt List
