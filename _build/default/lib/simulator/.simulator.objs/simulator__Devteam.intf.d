lib/simulator/devteam.mli: Core Demandspace Numerics
