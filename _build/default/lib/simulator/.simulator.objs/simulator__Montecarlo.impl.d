lib/simulator/montecarlo.ml: Array Channel Demandspace Devteam Numerics Protection Runner Stats Welford
