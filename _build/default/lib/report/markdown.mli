(** Markdown rendering of report tables — used to paste experiment output
    into EXPERIMENTS.md and similar documents without reformatting. *)

val of_table : Table.t -> string
(** GitHub-flavoured markdown table with the title as an H3 heading; pipe
    characters in cells are escaped. *)

val of_tables : Table.t list -> string

val code_block : ?language:string -> string -> string
(** Wrap preformatted text (e.g. an ASCII figure) in a fenced code block. *)
