lib/report/markdown.mli: Table
