lib/report/markdown.ml: Buffer List String Table
