lib/report/table.mli:
