lib/report/asciiplot.ml: Array Buffer List Printf String
