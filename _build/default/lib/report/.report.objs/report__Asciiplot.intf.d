lib/report/asciiplot.mli:
