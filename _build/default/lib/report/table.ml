type cell = string
type t = { title : string; headers : string list; rows : cell list list }

let create ~title ~headers = { title; headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: cell count does not match header count";
  { t with rows = t.rows @ [ row ] }

let add_rows t rows = List.fold_left add_row t rows

let of_rows ~title ~headers rows = add_rows (create ~title ~headers) rows

let float ?(precision = 4) x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && abs_float x < 1e6 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*g" precision x

let int = string_of_int
let bool b = if b then "yes" else "no"

let title t = t.title
let headers t = t.headers
let rows t = t.rows

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    t.rows;
  widths

let render t =
  let widths = column_widths t in
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  let line char =
    String.concat "-+-"
      (Array.to_list (Array.map (fun w -> String.make w char) widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf
    (String.concat " | " (List.mapi pad t.headers) ^ "\n");
  Buffer.add_string buf (line '-' ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat " | " (List.mapi pad row) ^ "\n"))
    t.rows;
  Buffer.contents buf

let print t = print_string (render t)
