(** Terminal scatter/line plots for the reproduced figures. *)

type series

val series : label:string -> (float * float) array -> series

val render : ?width:int -> ?height:int -> title:string -> series list -> string
(** Plot all series on a shared frame with per-series markers and a legend.
    Raises [Invalid_argument] on empty input. *)

val render_log_y :
  ?width:int -> ?height:int -> title:string -> series list -> string
(** As {!render} but y values are log10-transformed (non-positive points
    dropped) — for PFD curves spanning orders of magnitude. *)

val print : ?width:int -> ?height:int -> title:string -> series list -> unit
