(** Fixed-width text tables: every reproduced paper table is rendered
    through this module so bench output and the EXPERIMENTS.md record share
    one format. *)

type cell = string
type t

val create : title:string -> headers:string list -> t

val add_row : t -> cell list -> t
(** Raises [Invalid_argument] when the row width differs from the header
    count. *)

val add_rows : t -> cell list list -> t
val of_rows : title:string -> headers:string list -> cell list list -> t

val float : ?precision:int -> float -> cell
(** Compact numeric formatting (default 4 significant digits). *)

val int : int -> cell
val bool : bool -> cell

val title : t -> string
val headers : t -> string list
val rows : t -> cell list list

val render : t -> string
(** Aligned text rendering with a title line. *)

val print : t -> unit
