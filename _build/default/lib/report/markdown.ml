let escape_cell s =
  String.concat "\\|" (String.split_on_char '|' s)

let of_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("### " ^ Table.title t ^ "\n\n");
  let row cells =
    "| " ^ String.concat " | " (List.map escape_cell cells) ^ " |\n"
  in
  Buffer.add_string buf (row (Table.headers t));
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") (Table.headers t)) ^ "|\n");
  List.iter (fun r -> Buffer.add_string buf (row r)) (Table.rows t);
  Buffer.contents buf

let of_tables ts = String.concat "\n" (List.map of_table ts)

let code_block ?(language = "") body =
  let body =
    if String.length body > 0 && body.[String.length body - 1] = '\n' then body
    else body ^ "\n"
  in
  "```" ^ language ^ "\n" ^ body ^ "```\n"
