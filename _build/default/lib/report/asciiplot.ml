type series = { label : string; points : (float * float) array }

let series ~label points = { label; points }

let bounds all =
  let xs = List.concat_map (fun s -> Array.to_list (Array.map fst s.points)) all in
  let ys = List.concat_map (fun s -> Array.to_list (Array.map snd s.points)) all in
  match (xs, ys) with
  | [], _ | _, [] -> invalid_arg "Asciiplot: no points"
  | x :: xs', y :: ys' ->
      let fold = List.fold_left in
      ( fold min x xs',
        fold max x xs',
        fold min y ys',
        fold max y ys' )

let markers = [| '*'; 'o'; '+'; 'x'; '@'; '%' |]

let render ?(width = 64) ?(height = 20) ~title all =
  if all = [] then invalid_arg "Asciiplot.render: no series";
  let x_lo, x_hi, y_lo, y_hi = bounds all in
  let x_span = if x_hi > x_lo then x_hi -. x_lo else 1.0 in
  let y_span = if y_hi > y_lo then y_hi -. y_lo else 1.0 in
  let canvas = Array.make_matrix height width ' ' in
  List.iteri
    (fun si s ->
      let marker = markers.(si mod Array.length markers) in
      Array.iter
        (fun (x, y) ->
          let cx =
            int_of_float ((x -. x_lo) /. x_span *. float_of_int (width - 1))
          in
          let cy =
            int_of_float ((y -. y_lo) /. y_span *. float_of_int (height - 1))
          in
          let row = height - 1 - cy in
          if row >= 0 && row < height && cx >= 0 && cx < width then
            canvas.(row).(cx) <- marker)
        s.points)
    all;
  let buf = Buffer.create (width * height) in
  Buffer.add_string buf ("-- " ^ title ^ " --\n");
  Array.iteri
    (fun row line ->
      let y_label =
        if row = 0 then Printf.sprintf "%10.3g |" y_hi
        else if row = height - 1 then Printf.sprintf "%10.3g |" y_lo
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buf y_label;
      Buffer.add_string buf (String.init width (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-12s%*s\n" ""
       (Printf.sprintf "%.3g" x_lo)
       (width - 12)
       (Printf.sprintf "%.3g" x_hi));
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "%10s  [%c] %s\n" ""
           markers.(si mod Array.length markers)
           s.label))
    all;
  Buffer.contents buf

let render_log_y ?(width = 64) ?(height = 20) ~title all =
  let log_series s =
    {
      s with
      points =
        Array.of_list
          (List.filter_map
             (fun (x, y) -> if y > 0.0 then Some (x, log10 y) else None)
             (Array.to_list s.points));
    }
  in
  render ~width ~height ~title:(title ^ " (log10 y)") (List.map log_series all)

let print ?width ?height ~title all =
  print_string (render ?width ?height ~title all)
