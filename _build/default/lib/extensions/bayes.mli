(** Bayesian assessment of a system's PFD with a model-based prior.

    The paper's conclusions propose exactly this: "apply a family of prior
    distributions for a product's reliability parameters that are based on
    this plausible physical model rather than chosen ... for computational
    convenience only", combining the fault-creation model with inference
    from operation [14]. The prior here is the (exact or grid) distribution
    of Theta_2 from the model; observations are demand outcomes. *)

type t
(** A distribution over PFD values, held in log space so that enormous
    failure-free run lengths do not underflow. *)

val of_pfd_dist : Core.Pfd_dist.t -> t
(** Use a model-derived PFD distribution as the prior. *)

val of_mass : (float * float) list -> t
(** Prior from explicit (value, mass) pairs. *)

val to_pfd_dist : t -> Core.Pfd_dist.t
(** Normalised snapshot of the current distribution. *)

val observe : t -> demands:int -> failures:int -> t
(** Condition on a binomial operational record. Raises [Invalid_argument]
    when the record is impossible under the prior (e.g. failures observed
    under a prior concentrated on 0). *)

val observe_failure_free : t -> demands:int -> t
(** The paper's headline case: t failure-free demands. *)

val mean : t -> float
val quantile : t -> float -> float

val prob_at_most : t -> float -> float
(** Posterior confidence that the PFD meets a bound. *)

val posterior_trajectory :
  t -> bound:float -> demand_counts:int array -> (int * float) array
(** Posterior confidence in the bound after each failure-free run length —
    experiment E16's series. *)

val demands_for_confidence :
  t -> bound:float -> confidence:float -> max_demands:int -> int option
(** Smallest failure-free run length after which the posterior confidence
    in the bound reaches the target; [None] if [max_demands] does not
    suffice (e.g. the prior puts too much mass above the bound). *)
