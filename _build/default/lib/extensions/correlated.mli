(** Correlated fault introduction (the paper's Section 6.1 assumption
    violation).

    Mistakes "due to a common conceptual error" make several faults more
    likely together. We model this with a two-state mixture per cluster of
    faults: with the cluster's shock probability a conceptual error occurs
    and every fault i in the cluster is introduced with its elevated
    probability hi_i, otherwise with lo_i; distinct clusters and the two
    channels' developments stay independent. hi > lo yields positive
    within-version correlation; mixing faults with hi < lo into a cluster
    yields negative correlation (the paper's resource-diversion argument).

    Because marginals can be held fixed, the model isolates exactly what
    correlation changes: within-version correlation leaves both mean PFDs
    untouched but moves the variance and the no-common-fault
    probabilities. *)

type cluster = {
  shock_prob : float;
  faults : (float * float * float) array;
      (** per fault: (hi, lo, q) — introduction probability with and without
          the cluster's conceptual error, and the failure-region measure *)
}

type t

val create : cluster array -> t
(** Raises [Invalid_argument] on empty input or out-of-range
    probabilities. *)

val of_universe_with_shock :
  Core.Universe.t -> cluster_size:int -> shock_prob:float -> lift:float -> t
(** Partition a universe into consecutive clusters and add a common shock
    that multiplies each fault's probability by [lift] while preserving
    every marginal p_i (so the independent model with the same universe is
    the exact zero-correlation reference). Raises when the lift is too
    large to preserve a marginal. *)

val fault_count : t -> int

val marginal_universe : t -> Core.Universe.t
(** The universe an observer of marginals alone would infer — feeding it to
    the core model gives the paper's independence approximation. *)

val mu1 : t -> float
(** Exact mean version PFD (equals the marginal universe's mu1). *)

val mu2 : t -> float
(** Exact mean pair PFD — also unchanged by within-version correlation. *)

val var1 : t -> float
(** Exact variance of the version PFD, including within-cluster
    covariances. *)

val sigma1 : t -> float

val p_n1_zero : t -> float
(** Exact P(version fault-free), conditioning on each cluster's shock. *)

val p_n2_zero : t -> float
(** Exact P(pair shares no fault), conditioning on both channels' shocks. *)

val p_n1_pos : t -> float
val p_n2_pos : t -> float

val risk_ratio : t -> float
(** The eq. (10) ratio under correlation. *)

val sample_version : Numerics.Rng.t -> t -> int list
(** Draw one version's fault set (global fault indices). *)

val sample_pair_pfd : Numerics.Rng.t -> t -> float * float
(** [(version_pfd, pair_pfd)] for an independently developed pair. *)
