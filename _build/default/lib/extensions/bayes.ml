open Numerics

type t = { support : float array; log_weights : float array }

let of_pfd_dist dist =
  {
    support = Core.Pfd_dist.support dist;
    log_weights = Array.map log (Core.Pfd_dist.masses dist);
  }

let of_mass pairs =
  let dist = Core.Pfd_dist.of_mass pairs in
  of_pfd_dist dist

let to_pfd_dist t =
  let m = Special.logsumexp t.log_weights in
  Core.Pfd_dist.of_mass
    (Array.to_list
       (Array.mapi (fun i lw -> (t.support.(i), exp (lw -. m))) t.log_weights))

let observe t ~demands ~failures =
  if demands < 0 || failures < 0 || failures > demands then
    invalid_arg "Bayes.observe: need 0 <= failures <= demands";
  (* Binomial likelihood: theta^failures (1-theta)^(demands-failures),
     accumulated in log space so 10^9 failure-free demands are fine. *)
  let log_weights =
    Array.mapi
      (fun i lw ->
        let theta = t.support.(i) in
        let log_like =
          (if failures = 0 then 0.0
           else if theta <= 0.0 then neg_infinity
           else float_of_int failures *. log theta)
          +.
          if demands = failures then 0.0
          else if theta >= 1.0 then neg_infinity
          else float_of_int (demands - failures) *. Special.log1p (-.theta)
        in
        lw +. log_like)
      t.log_weights
  in
  if Array.for_all (fun lw -> lw = neg_infinity) log_weights then
    invalid_arg "Bayes.observe: observation impossible under the prior";
  { t with log_weights }

let observe_failure_free t ~demands = observe t ~demands ~failures:0

let mean t = Core.Pfd_dist.mean (to_pfd_dist t)

let quantile t alpha = Core.Pfd_dist.quantile (to_pfd_dist t) alpha

let prob_at_most t bound = Core.Pfd_dist.cdf (to_pfd_dist t) bound

let posterior_trajectory t ~bound ~demand_counts =
  Array.map
    (fun demands ->
      let post = observe_failure_free t ~demands in
      (demands, prob_at_most post bound))
    demand_counts

let demands_for_confidence t ~bound ~confidence ~max_demands =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bayes.demands_for_confidence: confidence outside (0, 1)";
  (* P(theta <= bound | T failure-free demands) is non-decreasing in T;
     binary-search the smallest sufficient T. *)
  if prob_at_most t bound >= confidence then Some 0
  else if
    prob_at_most (observe_failure_free t ~demands:max_demands) bound
    < confidence
  then None
  else begin
    let lo = ref 0 and hi = ref max_demands in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prob_at_most (observe_failure_free t ~demands:mid) bound >= confidence
      then hi := mid
      else lo := mid
    done;
    Some !hi
  end
