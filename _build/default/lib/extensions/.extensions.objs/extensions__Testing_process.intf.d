lib/extensions/testing_process.mli: Core
