lib/extensions/bayes.mli: Core
