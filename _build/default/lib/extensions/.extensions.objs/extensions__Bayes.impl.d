lib/extensions/bayes.ml: Array Core Numerics Special
