lib/extensions/overlap.mli: Core Demandspace Numerics
