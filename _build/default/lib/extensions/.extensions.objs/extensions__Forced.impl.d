lib/extensions/forced.ml: Array Core Float Kahan Numerics Rng Special
