lib/extensions/beta_prior.mli: Core Format
