lib/extensions/functional.mli: Demandspace Numerics
