lib/extensions/functional.ml: Array Baselines Bitset Demandspace Kahan Numerics Rng
