lib/extensions/testing_process.ml: Array Core Numerics Special
