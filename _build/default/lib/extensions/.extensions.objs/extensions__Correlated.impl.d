lib/extensions/correlated.ml: Array Core Float Kahan List Numerics Rng Special
