lib/extensions/forced.mli: Core Numerics
