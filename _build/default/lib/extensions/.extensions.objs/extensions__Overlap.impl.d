lib/extensions/overlap.ml: Array Baselines Core Demandspace Hashtbl Kahan List Numerics Rng Special Welford
