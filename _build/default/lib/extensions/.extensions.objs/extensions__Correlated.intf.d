lib/extensions/correlated.mli: Core Numerics
