lib/extensions/beta_prior.ml: Betainc Core Fmt Numerics
