open Numerics

let operational_testing u ~demands =
  (* Each test demand falls in fault i's failure region with probability
     q_i; a hit reveals the fault, which is then fixed. A fault survives a
     t-demand test campaign (if present) with probability (1-q_i)^t, so
     the delivered-fault probability becomes p_i (1-q_i)^t. Big-region
     faults are scrubbed first — the mechanism behind the non-uniform
     improvement of Section 4.2.1. *)
  if demands < 0 then
    invalid_arg "Testing_process.operational_testing: negative demand count";
  let t = float_of_int demands in
  let i = ref (-1) in
  Core.Universe.map_faults
    (fun f ->
      incr i;
      let survive = exp (t *. Special.log1p (-.Core.Fault.q f)) in
      Core.Fault.with_p f (Core.Fault.p f *. survive))
    u

let directed_testing u ~detection ~cycles =
  (* Directed V&V: fault i is caught per cycle with probability
     detection.(i), independent of its region size. *)
  if cycles < 0 then
    invalid_arg "Testing_process.directed_testing: negative cycle count";
  if Array.length detection <> Core.Universe.size u then
    invalid_arg "Testing_process.directed_testing: detection vector length mismatch";
  Array.iter
    (fun d ->
      if d < 0.0 || d > 1.0 then
        invalid_arg "Testing_process.directed_testing: detection outside [0, 1]")
    detection;
  let c = float_of_int cycles in
  let i = ref (-1) in
  Core.Universe.map_faults
    (fun f ->
      incr i;
      let survive = exp (c *. Special.log1p (-.detection.(!i))) in
      Core.Fault.with_p f (Core.Fault.p f *. survive))
    u

type trajectory_point = {
  demands : int;
  mu1 : float;
  mu2 : float;
  mean_gain : float;
  risk_ratio : float;
  bound_ratio : float;
}

let trajectory u ~k ~demand_counts =
  Array.map
    (fun demands ->
      let u' = operational_testing u ~demands in
      {
        demands;
        mu1 = Core.Moments.mu1 u';
        mu2 = Core.Moments.mu2 u';
        mean_gain = Core.Moments.mean_gain u';
        risk_ratio = Core.Fault_count.risk_ratio u';
        bound_ratio = Core.Normal_approx.bound_ratio u' ~k;
      })
    demand_counts

let single_vs_pair_testing u ~total_demands =
  (* The budget question of [13]: test one version with the whole budget,
     or develop two versions and test each with half. Returns
     (tested single mu1, half-tested pair mu2). *)
  if total_demands < 0 then
    invalid_arg "Testing_process.single_vs_pair_testing: negative budget";
  let single = operational_testing u ~demands:total_demands in
  let half = operational_testing u ~demands:(total_demands / 2) in
  (Core.Moments.mu1 single, Core.Moments.mu2 half)
