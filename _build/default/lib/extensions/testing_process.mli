(** Testing as a fault-removal process acting on the model's parameters.

    Section 4.2.3 cites Djambazov & Popov [13] ("The effects of testing on
    the reliability of single version and 1-out-of-2 software") for the
    observation that fault removal can change — even reduce — the gain
    from fault tolerance. Operational testing is a *non-uniform* process
    improvement: a test demand reveals fault i with probability q_i, so
    large-region faults are scrubbed first, pushing the process along
    exactly the kind of per-fault trajectory Appendix A studies. *)

val operational_testing : Core.Universe.t -> demands:int -> Core.Universe.t
(** Universe after a test campaign of the given length on each delivered
    version: p_i -> p_i (1 - q_i)^demands. *)

val directed_testing :
  Core.Universe.t -> detection:float array -> cycles:int -> Core.Universe.t
(** Universe after V&V cycles with per-fault detection probabilities
    independent of region size. *)

type trajectory_point = {
  demands : int;
  mu1 : float;
  mu2 : float;
  mean_gain : float;
  risk_ratio : float;
  bound_ratio : float;
}

val trajectory :
  Core.Universe.t -> k:float -> demand_counts:int array -> trajectory_point array
(** The paper's gain measures as the test campaign lengthens. *)

val single_vs_pair_testing :
  Core.Universe.t -> total_demands:int -> float * float
(** The budget split of [13]: (mean PFD of one version tested with the
    full budget, mean PFD of a 1oo2 pair whose versions each got half). *)
