(** Functional diversity: the two channels sense the plant through
    different input mappings.

    The paper's Fig. 1 caption: "In reality, the two channels usually
    sense different state variables ... We study the limiting worst case
    in which this functional diversity does not apply", citing [8] for
    the view that functional diversity is "part of a continuum of
    diversity arrangements". Here the continuum is explicit: channel B
    reads the demand through a bijection of the demand space; the
    identity reproduces the paper's worst case, and increasing the
    permuted fraction decorrelates the channels' failure regions, so the
    model *quantifies how much the paper's worst-case analysis gives
    away*. *)

type t
(** A demand space plus channel B's sensing bijection (channel A senses
    directly). *)

val create : Demandspace.Space.t -> sensing_b:Demandspace.Transform.t -> t
val non_functional : Demandspace.Space.t -> t
(** The paper's worst case: both channels sense identically. *)

val space : t -> Demandspace.Space.t
val sensing_b : t -> Demandspace.Transform.t

val mean_single : t -> float
(** E(Theta_1) — unchanged by sensing (a bijection preserves nothing about
    a single channel's failure probability only if the profile is
    preserved; with a uniform profile it is exact, and in general channel
    A's mean is reported). *)

val mean_pair : t -> float
(** Exact E(Theta_2) = E_X[theta(X) theta(T(X))] for independently
    developed versions behind the two sensing maps. *)

val functional_gain : t -> float
(** Worst-case (identity-sensing) mean pair PFD divided by this
    arrangement's: how much the paper's limiting case gives away. *)

val pair_pfd_of_versions :
  t -> Demandspace.Version.t -> Demandspace.Version.t -> float
(** True PFD of one concrete developed pair under the sensing maps. *)

val sample_pair_pfd : Numerics.Rng.t -> t -> float
(** Develop a pair and evaluate it. *)

val continuum :
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  fractions:float array ->
  (float * float) array
(** Mean pair PFD along the functional-diversity continuum (permuted
    fraction from 0 = the paper's case to 1 = fully divergent sensing). *)
