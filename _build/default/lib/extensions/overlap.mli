(** Overlapping failure regions (the paper's Section 6.2 assumption
    violation).

    When regions overlap, "if two or more faults are present, their
    contribution to the PFD is not necessarily equal to the sum of their
    individual contributions, but may be less": the additive model is a
    pessimistic approximation. This module quantifies that pessimism on
    concrete demand spaces, where the exact quantities are computable. *)

type analysis = {
  overlap_pairs : int;  (** number of overlapping region pairs *)
  exact_mu1 : float;  (** true E(Theta_1) (difficulty-function computation) *)
  exact_mu2 : float;
  additive_mu1 : float;  (** the paper's sum-of-q model on the same faults *)
  additive_mu2 : float;
  mu1_pessimism : float;  (** additive/exact; >= 1 — overlap only removes
                              version-PFD mass *)
  mu2_pessimism : float;
      (** additive/exact for the pair; can fall BELOW 1: overlapping regions
          of *different* faults create coincident failure points the
          additive model does not count, so the non-overlap assumption can
          be optimistic about the pair — the concrete content of the
          paper's warning that under overlap "we could no longer trust our
          estimates of the relative advantage of a two-version system" *)
}

val analyse : Demandspace.Space.t -> analysis
(** Exact pessimism analysis of a (possibly overlapping) space. *)

val merged_universe : Demandspace.Space.t -> Core.Universe.t
(** Restore the non-overlap assumption by merging overlapping regions into
    union-faults (the paper's treatment of perfectly coupled mistakes):
    each connected overlap group becomes one fault with the union region's
    measure and introduction probability 1 - prod(1 - p_i). *)

val monte_carlo_pessimism :
  Numerics.Rng.t -> Demandspace.Space.t -> replications:int -> float
(** Mean over sampled faulty versions of additive PFD / true PFD (>= 1);
    how much the non-overlap assumption overstates version unreliability at
    the distribution level. *)
