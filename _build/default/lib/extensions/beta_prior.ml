open Numerics

type t = { a : float; b : float }

let create ~a ~b =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Beta_prior.create: shapes must be positive";
  { a; b }

let uniform = { a = 1.0; b = 1.0 }
let jeffreys = { a = 0.5; b = 0.5 }

let of_mean_and_equivalent_observations ~mean ~observations =
  if mean <= 0.0 || mean >= 1.0 then
    invalid_arg "Beta_prior.of_mean_and_equivalent_observations: mean outside (0, 1)";
  if observations <= 0.0 then
    invalid_arg
      "Beta_prior.of_mean_and_equivalent_observations: observations must be \
       positive";
  { a = mean *. observations; b = (1.0 -. mean) *. observations }

let moment_matched dist =
  (* Match the Beta's mean and variance to a model PFD distribution: the
     'computational convenience' prior an assessor would pick if told only
     the model's first two moments. *)
  let m = Core.Pfd_dist.mean dist in
  let v = Core.Pfd_dist.variance dist in
  if m <= 0.0 || m >= 1.0 || v <= 0.0 then
    invalid_arg "Beta_prior.moment_matched: degenerate distribution";
  let nu = (m *. (1.0 -. m) /. v) -. 1.0 in
  if nu <= 0.0 then
    invalid_arg "Beta_prior.moment_matched: variance too large for a Beta";
  { a = m *. nu; b = (1.0 -. m) *. nu }

let a t = t.a
let b t = t.b

let observe t ~demands ~failures =
  if demands < 0 || failures < 0 || failures > demands then
    invalid_arg "Beta_prior.observe: need 0 <= failures <= demands";
  (* Conjugate update under the binomial likelihood. *)
  {
    a = t.a +. float_of_int failures;
    b = t.b +. float_of_int (demands - failures);
  }

let observe_failure_free t ~demands = observe t ~demands ~failures:0

let mean t = Betainc.beta_mean ~a:t.a ~b:t.b
let prob_at_most t bound = Betainc.beta_cdf ~a:t.a ~b:t.b bound
let quantile t p = Betainc.beta_ppf ~a:t.a ~b:t.b p

let demands_for_confidence t ~bound ~confidence ~max_demands =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Beta_prior.demands_for_confidence: confidence outside (0, 1)";
  if prob_at_most t bound >= confidence then Some 0
  else if
    prob_at_most (observe_failure_free t ~demands:max_demands) bound < confidence
  then None
  else begin
    let lo = ref 0 and hi = ref max_demands in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prob_at_most (observe_failure_free t ~demands:mid) bound >= confidence
      then hi := mid
      else lo := mid
    done;
    Some !hi
  end

let pp ppf t = Fmt.pf ppf "Beta(%.4g, %.4g)" t.a t.b
