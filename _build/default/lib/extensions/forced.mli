(** Forced diversity: the two channels are developed by different processes
    (different methods, notations, tools — Section 1), so fault i is
    introduced with probability pa_i in channel A and pb_i in channel B.

    The paper studies non-forced diversity as a worst case and lists forced
    diversity as a desirable extension; this module provides the
    generalised moments (the common-fault probability becomes pa_i * pb_i)
    and a generator of complementary process pairs. *)

type t
(** A fault universe shared by two development processes. *)

val create : qs:float array -> pa:float array -> pb:float array -> t
(** Raises [Invalid_argument] on length mismatch or out-of-range values. *)

val of_universe : Core.Universe.t -> t
(** Both channels use the same process: the paper's non-forced case (all
    results then coincide with the core model's — the test oracle). *)

val size : t -> int

val channel_a : t -> Core.Universe.t
(** Channel A's process viewed as a single-process universe. *)

val channel_b : t -> Core.Universe.t

val mu_a : t -> float
(** Mean PFD of a channel-A version. *)

val mu_b : t -> float

val mu_pair : t -> float
(** Mean PFD of the forced-diverse 1-out-of-2 pair: sum pa_i pb_i q_i. *)

val var_pair : t -> float
val sigma_pair : t -> float

val p_no_common_fault : t -> float
(** prod (1 - pa_i pb_i). *)

val risk_ratio_vs_a : t -> float
(** Eq. (10) generalised: P(pair shares a fault)/P(channel-A version
    faulty). *)

val divergence_gain : t -> float
(** Mean-PFD advantage of the forced pair over the non-forced pair built
    from channel A's process alone; > 1 when forcing helps. *)

val complementary : Numerics.Rng.t -> Core.Universe.t -> strength:float -> t
(** Derive a process pair whose weaknesses diverge: channel B's fault
    probabilities are a convex mix (by [strength]) of channel A's and a
    random permutation of them. Strength 0 recovers {!of_universe}. *)
