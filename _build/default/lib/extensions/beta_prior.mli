(** The conventional conjugate Beta prior on PFD — the comparator for the
    model-based prior of {!Bayes}.

    The paper's closing proposal is to use "prior distributions ... based
    on this plausible physical model rather than chosen, as is frequently
    the case, for computational convenience only". The Beta prior is the
    computational-convenience choice; this module implements it so the two
    can be compared on the same operational evidence (experiment E25). *)

type t
(** Beta(a, b) distribution over the PFD. *)

val create : a:float -> b:float -> t
val uniform : t
(** Beta(1, 1). *)

val jeffreys : t
(** Beta(1/2, 1/2). *)

val of_mean_and_equivalent_observations : mean:float -> observations:float -> t
(** Elicit from a mean PFD and a pseudo-observation weight. *)

val moment_matched : Core.Pfd_dist.t -> t
(** Beta with the same mean and variance as a model PFD distribution —
    what an assessor keeps of the model if forced into a conjugate form.
    Raises [Invalid_argument] when no Beta has those moments. *)

val a : t -> float
val b : t -> float

val observe : t -> demands:int -> failures:int -> t
(** Conjugate binomial update. *)

val observe_failure_free : t -> demands:int -> t

val mean : t -> float
val prob_at_most : t -> float -> float
val quantile : t -> float -> float

val demands_for_confidence :
  t -> bound:float -> confidence:float -> max_demands:int -> int option
(** Smallest failure-free run reaching the target posterior confidence. *)

val pp : Format.formatter -> t -> unit
