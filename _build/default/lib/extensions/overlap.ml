open Numerics

type analysis = {
  overlap_pairs : int;
  exact_mu1 : float;
  exact_mu2 : float;
  additive_mu1 : float;
  additive_mu2 : float;
  mu1_pessimism : float;
  mu2_pessimism : float;
}

let analyse space =
  let exact_mu1 = Baselines.Eckhardt_lee.mean_single space in
  let exact_mu2 = Baselines.Eckhardt_lee.mean_pair space in
  let u = Demandspace.Space.to_universe space in
  let additive_mu1 = Core.Moments.mu1 u in
  let additive_mu2 = Core.Moments.mu2 u in
  {
    overlap_pairs = List.length (Demandspace.Space.overlap_pairs space);
    exact_mu1;
    exact_mu2;
    additive_mu1;
    additive_mu2;
    mu1_pessimism = (if exact_mu1 > 0.0 then additive_mu1 /. exact_mu1 else nan);
    mu2_pessimism = (if exact_mu2 > 0.0 then additive_mu2 /. exact_mu2 else nan);
  }

let merged_universe space =
  (* The paper's Section 6.1 suggestion for perfectly coupled mistakes,
     adapted to overlap: greedily merge overlapping regions into connected
     groups; each group becomes one potential fault whose region is the
     union and whose probability is that of at least one member being
     introduced. This under-counts partial overlaps but restores the
     non-overlap assumption exactly. *)
  let n = Demandspace.Space.fault_count space in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter (fun (i, j) -> union i j) (Demandspace.Space.overlap_pairs space);
  let groups = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace groups r (i :: (try Hashtbl.find groups r with Not_found -> []))
  done;
  let profile = Demandspace.Space.profile space in
  let entries =
    Hashtbl.fold
      (fun _ members acc ->
        let union_set =
          Demandspace.Region.union_members
            (List.map (Demandspace.Space.region space) members)
        in
        let q = Demandspace.Profile.measure profile union_set in
        let p =
          1.0
          -. exp
               (Kahan.sum_list
                  (List.map
                     (fun i ->
                       Special.log1p
                         (-.Demandspace.Space.introduction_prob space i))
                     members))
        in
        (p, q) :: acc)
      groups []
  in
  Core.Universe.of_pairs entries

let monte_carlo_pessimism rng space ~replications =
  (* Distribution-level check: sample versions, compare true PFD (measure
     of the union) with the additive PFD (sum of q_i); returns the mean
     ratio additive/true over versions that have any fault. *)
  if replications <= 0 then
    invalid_arg "Overlap.monte_carlo_pessimism: replications must be positive";
  let acc = Welford.create () in
  let develop () =
    let present = ref [] in
    for i = Demandspace.Space.fault_count space - 1 downto 0 do
      if Rng.bool rng ~p:(Demandspace.Space.introduction_prob space i) then
        present := i :: !present
    done;
    Demandspace.Version.create space !present
  in
  for _ = 1 to replications do
    let v = develop () in
    let true_pfd = Demandspace.Version.pfd v in
    if true_pfd > 0.0 then
      Welford.add acc (Demandspace.Version.additive_pfd v /. true_pfd)
  done;
  Welford.mean acc
