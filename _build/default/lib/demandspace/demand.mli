(** Demands on the protection system (Section 2.1).

    A demand is an occasion on which the plant requires intervention; in
    this reproduction the demand space is finite and a demand is an opaque
    id. Two-dimensional demand spaces (the paper's Fig. 2: two sensed input
    variables) map coordinates onto ids row-major. *)

type t = private int
(** Demand identifier in [0, space size). *)

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

type coords = { var1 : int; var2 : int }
(** A point of a two-dimensional demand grid, in the paper's Fig. 2 naming. *)

val to_coords : width:int -> t -> coords
(** Interpret an id on a grid of the given width. *)

val of_coords : width:int -> coords -> t
