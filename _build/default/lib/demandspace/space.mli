(** A complete demand-space model: profile + potential faults, each a
    failure region with an introduction probability.

    This realises the paper's full setting concretely: where the abstract
    model only keeps the pair (p_i, q_i), the space keeps the actual region,
    so that demands can be executed and the non-overlap assumption can be
    checked rather than assumed. *)

type t

val create : profile:Profile.t -> faults:(Region.t * float) array -> t
(** [faults] pairs each potential fault's failure region with its
    introduction probability p. Raises [Invalid_argument] if a region lives
    on a different space or a probability is out of range. *)

val size : t -> int
(** Number of possible demands. *)

val profile : t -> Profile.t
val fault_count : t -> int
val region : t -> int -> Region.t
val introduction_prob : t -> int -> float

val regions_disjoint : t -> bool
(** Does the model satisfy the paper's non-overlap assumption? *)

val region_measures : t -> float array
(** The q_i vector: each region's measure under the profile. *)

val to_universe : t -> Core.Universe.t
(** Abstract the space into the paper's parameter-only model. Exact (not
    sampled); when the regions overlap the universe is the paper's
    pessimistic approximation of Section 6.2. *)

val overlap_pairs : t -> (int * int) list
(** All pairs of region indices that violate non-overlap. *)

val failure_set : t -> int list -> Numerics.Bitset.t
(** Union of the regions of the listed faults: the failure set of a version
    containing exactly those faults. *)

val pp : Format.formatter -> t -> unit
