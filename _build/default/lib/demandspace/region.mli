(** Failure regions in the demand space (Section 2.1 and Fig. 2).

    "A design fault in a version consists in the fact that, for one or more
    possible demands, that version will not respond as required. Any such
    demand is a failure point ... Any set of demands on which a version
    will fail is called a failure region."

    The constructors cover the shapes the paper reports from the
    literature: simple blobs (boxes/intervals), lines, and "non-intuitive
    shapes, including non-connected regions like arrays of separate points". *)

type shape =
  | Points of int list
  | Interval of { lo : int; hi : int }
  | Box of { x_lo : int; x_hi : int; y_lo : int; y_hi : int; width : int }
  | Line of { x0 : int; y0 : int; dx : int; dy : int; steps : int; width : int }
  | Scatter of { seed : int; count : int }

type t
(** A set of demands over a fixed-size space, tagged with how it was built. *)

val members : t -> Numerics.Bitset.t
val shape : t -> shape
val space_size : t -> int

val cardinal : t -> int
(** Number of failure points. *)

val mem : t -> Demand.t -> bool
(** Is this demand a failure point of the region? *)

val of_bitset : space_size:int -> shape:shape -> Numerics.Bitset.t -> t

val points : space_size:int -> int list -> t
(** Explicit list of failure points. *)

val interval : space_size:int -> lo:int -> hi:int -> t
(** Contiguous 1-D region [lo, hi]. *)

val box : width:int -> height:int -> x_lo:int -> x_hi:int -> y_lo:int -> y_hi:int -> t
(** Axis-aligned rectangle on a 2-D grid (the simple Fig. 2 shapes). *)

val line :
  width:int -> height:int -> x0:int -> y0:int -> dx:int -> dy:int -> steps:int -> t
(** Discrete line with the given direction; points falling off the grid are
    dropped. Raises if the whole line misses the grid. *)

val scatter : Numerics.Rng.t -> space_size:int -> count:int -> t
(** Non-connected region of randomly scattered failure points. *)

val disjoint : t -> t -> bool

val union_members : t list -> Numerics.Bitset.t
(** Union of the member sets (fresh bitset). *)

val measure : t -> Profile.t -> float
(** The region's probability q under the operational profile. *)

val shape_name : t -> string
val pp : Format.formatter -> t -> unit
