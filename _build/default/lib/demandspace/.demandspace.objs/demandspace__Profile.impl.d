lib/demandspace/profile.ml: Alias Array Bitset Demand Kahan Numerics Sampler
