lib/demandspace/genspace.mli: Numerics Profile Region Space
