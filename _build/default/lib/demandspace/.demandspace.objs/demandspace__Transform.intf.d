lib/demandspace/transform.mli: Numerics
