lib/demandspace/transform.ml: Array Bitset List Numerics Rng
