lib/demandspace/robustness.mli: Core Profile Space
