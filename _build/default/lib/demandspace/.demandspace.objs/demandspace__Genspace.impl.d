lib/demandspace/genspace.ml: Array Bitset Buffer Char List Numerics Profile Region Rng Space
