lib/demandspace/demand.ml: Fmt Stdlib
