lib/demandspace/version.mli: Demand Format Numerics Space
