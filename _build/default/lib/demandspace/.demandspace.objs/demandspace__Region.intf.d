lib/demandspace/region.mli: Demand Format Numerics Profile
