lib/demandspace/robustness.ml: Array Core Kahan List Numerics Profile Region Space
