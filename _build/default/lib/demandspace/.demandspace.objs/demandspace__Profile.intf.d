lib/demandspace/profile.mli: Demand Numerics
