lib/demandspace/space.ml: Array Bitset Core Fmt List Numerics Profile Region
