lib/demandspace/version.ml: Bitset Demand Fmt Kahan List Numerics Profile Region Space String
