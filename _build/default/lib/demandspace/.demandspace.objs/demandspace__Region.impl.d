lib/demandspace/region.ml: Array Bitset Demand Fmt List Numerics Profile Rng
