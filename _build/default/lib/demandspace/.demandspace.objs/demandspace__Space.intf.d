lib/demandspace/space.mli: Core Format Numerics Profile Region
