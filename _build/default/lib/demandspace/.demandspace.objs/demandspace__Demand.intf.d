lib/demandspace/demand.mli: Format
