open Numerics

type t = {
  size : int;
  profile : Profile.t;
  regions : Region.t array;
  introduction_probs : float array;
}

let create ~profile ~faults =
  let size = Profile.size profile in
  let regions = Array.map fst faults in
  let introduction_probs = Array.map snd faults in
  if Array.length regions = 0 then invalid_arg "Space.create: no faults";
  Array.iter
    (fun r ->
      if Region.space_size r <> size then
        invalid_arg "Space.create: region over a different space")
    regions;
  Array.iter
    (fun p ->
      if p < 0.0 || p > 1.0 then
        invalid_arg "Space.create: introduction probability outside [0, 1]")
    introduction_probs;
  { size; profile; regions; introduction_probs }

let size t = t.size
let profile t = t.profile
let fault_count t = Array.length t.regions
let region t i = t.regions.(i)
let introduction_prob t i = t.introduction_probs.(i)

let regions_disjoint t =
  let n = Array.length t.regions in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Region.disjoint t.regions.(i) t.regions.(j)) then ok := false
    done
  done;
  !ok

let region_measures t =
  Array.map (fun r -> Region.measure r t.profile) t.regions

let to_universe t =
  Core.Universe.of_arrays ~p:t.introduction_probs ~q:(region_measures t)

let overlap_pairs t =
  let n = Array.length t.regions in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Region.disjoint t.regions.(i) t.regions.(j)) then
        pairs := (i, j) :: !pairs
    done
  done;
  List.rev !pairs

let failure_set t present =
  let acc = Bitset.create t.size in
  List.iter
    (fun i ->
      if i < 0 || i >= fault_count t then
        invalid_arg "Space.failure_set: fault index out of range";
      Bitset.union_in_place acc (Region.members t.regions.(i)))
    present;
  acc

let pp ppf t =
  Fmt.pf ppf "space(|D|=%d, faults=%d, disjoint=%b)" t.size (fault_count t)
    (regions_disjoint t)
