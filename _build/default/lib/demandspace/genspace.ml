open Numerics

let random_box rng ~width ~height ~max_side =
  let w = 1 + Rng.int rng max_side in
  let h = 1 + Rng.int rng max_side in
  let w = min w width and h = min h height in
  let x_lo = Rng.int rng (width - w + 1) in
  let y_lo = Rng.int rng (height - h + 1) in
  Region.box ~width ~height ~x_lo ~x_hi:(x_lo + w - 1) ~y_lo
    ~y_hi:(y_lo + h - 1)

let random_line rng ~width ~height ~max_steps =
  let x0 = Rng.int rng width and y0 = Rng.int rng height in
  let dirs = [| (1, 0); (0, 1); (1, 1); (1, -1) |] in
  let dx, dy = dirs.(Rng.int rng (Array.length dirs)) in
  let steps = 2 + Rng.int rng (max 1 (max_steps - 1)) in
  Region.line ~width ~height ~x0 ~y0 ~dx ~dy ~steps

let random_scatter rng ~width ~height ~max_points =
  let count = 1 + Rng.int rng max_points in
  Region.scatter rng ~space_size:(width * height) ~count

let random_region rng ~width ~height ~max_extent =
  match Rng.int rng 3 with
  | 0 -> random_box rng ~width ~height ~max_side:max_extent
  | 1 -> random_line rng ~width ~height ~max_steps:(2 * max_extent)
  | _ -> random_scatter rng ~width ~height ~max_points:max_extent

let place_disjoint rng ~width ~height ~n_faults ~max_extent =
  let space_size = width * height in
  let occupied = Bitset.create space_size in
  let regions = ref [] in
  let placed = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 1000 * n_faults in
  while !placed < n_faults && !attempts < max_attempts do
    incr attempts;
    let r = random_region rng ~width ~height ~max_extent in
    if Bitset.disjoint (Region.members r) occupied then begin
      Bitset.union_in_place occupied (Region.members r);
      regions := r :: !regions;
      incr placed
    end
  done;
  if !placed < n_faults then
    invalid_arg
      "Genspace.place_disjoint: could not place disjoint regions; lower \
       n_faults or max_extent";
  Array.of_list (List.rev !regions)

let disjoint_space rng ~width ~height ~n_faults ~max_extent ~p_lo ~p_hi ~profile
    =
  let regions = place_disjoint rng ~width ~height ~n_faults ~max_extent in
  let faults =
    Array.map
      (fun r -> (r, Rng.uniform rng ~lo:p_lo ~hi:p_hi))
      regions
  in
  Space.create ~profile ~faults

let overlapping_space rng ~width ~height ~n_faults ~max_extent ~p_lo ~p_hi
    ~profile =
  (* Regions placed independently: overlaps arise naturally (Section 6.2
     setting). *)
  let faults =
    Array.init n_faults (fun _ ->
        ( random_region rng ~width ~height ~max_extent,
          Rng.uniform rng ~lo:p_lo ~hi:p_hi ))
  in
  Space.create ~profile ~faults

let fig2 rng ~width ~height =
  (* The paper's illustrative figure: five failure regions of assorted
     shapes in a two-dimensional demand space (var1, var2). *)
  if width < 16 || height < 16 then invalid_arg "Genspace.fig2: grid too small";
  let space_size = width * height in
  let r1 =
    Region.box ~width ~height ~x_lo:(width / 8) ~x_hi:(width / 4)
      ~y_lo:(height / 8) ~y_hi:(height / 5)
  in
  let r2 =
    Region.box ~width ~height ~x_lo:(width / 2) ~x_hi:(width / 2 + 2)
      ~y_lo:(height / 2) ~y_hi:(height - (height / 4))
  in
  let r3 =
    Region.line ~width ~height ~x0:(3 * width / 4) ~y0:(height / 8) ~dx:1 ~dy:1
      ~steps:(min (width / 5) (height / 5))
  in
  let r4 = Region.scatter rng ~space_size ~count:7 in
  let r5 =
    Region.box ~width ~height ~x_lo:(width / 16) ~x_hi:(width / 16 + 1)
      ~y_lo:(2 * height / 3) ~y_hi:(2 * height / 3 + 1)
  in
  let regions = [| r1; r2; r3; r4; r5 |] in
  let ps = [| 0.15; 0.08; 0.1; 0.05; 0.2 |] in
  let profile = Profile.uniform ~size:space_size in
  Space.create ~profile ~faults:(Array.map2 (fun r p -> (r, p)) regions ps)

let render ~width ~height space =
  let rows = ref [] in
  for y = height - 1 downto 0 do
    let buf = Buffer.create width in
    for x = 0 to width - 1 do
      let id = (y * width) + x in
      let label = ref '.' in
      for i = 0 to Space.fault_count space - 1 do
        if Bitset.mem (Region.members (Space.region space i)) id then
          label :=
            (if !label = '.' then Char.chr (Char.code '1' + (i mod 9))
             else '#' (* overlap marker *))
      done;
      Buffer.add_char buf !label
    done;
    rows := Buffer.contents buf :: !rows
  done;
  List.rev !rows
