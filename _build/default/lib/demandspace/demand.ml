type t = int

let of_int i =
  if i < 0 then invalid_arg "Demand.of_int: negative demand id";
  i

let to_int d = d
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let pp ppf d = Fmt.pf ppf "demand#%d" d

type coords = { var1 : int; var2 : int }

let to_coords ~width d =
  if width <= 0 then invalid_arg "Demand.to_coords: width must be positive";
  { var1 = d mod width; var2 = d / width }

let of_coords ~width { var1; var2 } =
  if width <= 0 then invalid_arg "Demand.of_coords: width must be positive";
  if var1 < 0 || var1 >= width || var2 < 0 then
    invalid_arg "Demand.of_coords: coordinates out of range";
  (var2 * width) + var1
