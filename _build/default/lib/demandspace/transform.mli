(** Bijective transformations of the demand space — the sensing layer of
    functional diversity.

    Fig. 1's caption notes that real dual channels "usually sense different
    state variables": the same plant demand reaches the two channels as
    different inputs. We model each channel's sensing as a bijection of
    the finite demand space; a channel whose version has failure set F
    fails on plant demand x iff its *input* T(x) lies in F, i.e. its
    plant-space failure set is the preimage of F. Interpolating the
    bijection from the identity to a random permutation realises the
    "continuum of diversity arrangements" of the paper's ref [8]. *)

type t
(** A bijection of demand ids with a precomputed inverse. *)

val of_array : int array -> t
(** Raises [Invalid_argument] unless the array is a permutation of
    0..n-1. *)

val identity : int -> t

val random : Numerics.Rng.t -> int -> t
(** Uniform random permutation. *)

val partial : Numerics.Rng.t -> int -> fraction:float -> t
(** Permute a random subset of roughly the given fraction of ids among
    themselves, fixing the rest: fraction 0 is the identity (the paper's
    non-functional worst case), fraction 1 a full shuffle. *)

val size : t -> int
val apply : t -> int -> int
val apply_inverse : t -> int -> int

val displaced : t -> int
(** Number of ids the bijection moves. *)

val preimage : t -> Numerics.Bitset.t -> Numerics.Bitset.t
(** [preimage t s] is [{x | apply t x ∈ s}] — the plant-space failure set
    of a channel whose input-space failure set is [s]. *)

val compose : t -> t -> t
(** [compose a b] maps x to a(b(x)). *)
