(** A developed program version: the set of potential faults it actually
    contains, with the induced failure behaviour.

    "Developing versions for a given application under a regime of separate
    development means choosing, randomly and independently, possible
    subsets of this set of possible faults" (Section 2.2). The *choosing*
    lives in the simulator's development-team model; this module represents
    the chosen subset and answers failure queries. *)

type t

val create : Space.t -> int list -> t
(** Version containing exactly the listed faults (deduplicated). *)

val perfect : Space.t -> t
(** The fault-free version. *)

val space : t -> Space.t
val present_faults : t -> int list
val fault_count : t -> int

val failure_set : t -> Numerics.Bitset.t
(** Union of the version's failure regions. *)

val pfd : t -> float
(** True PFD: measure of the failure set (correct even under overlap). *)

val fails_on : t -> Demand.t -> bool
val has_fault : t -> int -> bool

val common_faults : t -> t -> int list
(** Faults present in both versions of a pair. *)

val joint_failure_set : t -> t -> Numerics.Bitset.t
(** Intersection of the two failure sets: where a 1-out-of-2 OR system
    fails (both channels fail on the demand). *)

val pair_pfd : t -> t -> float
(** True PFD of the 1-out-of-2 pair. *)

val additive_pfd : t -> float
(** Sum of the present faults' region measures — the paper's formula under
    the non-overlap assumption; an upper bound on {!pfd} in general. *)

val pp : Format.formatter -> t -> unit
