(** Robustness of the q parameters to operational-profile uncertainty.

    Section 2.1: each demand "has a certain (possibly unknown) probability
    of happening". The q_i are measures under an assumed profile; if the
    real profile differs from the assumed one by at most epsilon in total
    variation, every region's measure can rise by at most epsilon, and an
    adversarial profile inflates the pair's mean PFD by pushing its
    movable mass into the regions most likely to be common. These bounds
    let an assessor carry profile uncertainty through the paper's
    formulas. *)

val worst_case_region_measure : q:float -> epsilon:float -> float
(** min(1, q + epsilon): the largest measure a region can attain under a
    total-variation-epsilon profile perturbation. *)

val worst_case_qs : Space.t -> epsilon:float -> float array

val robust_universe : Space.t -> epsilon:float -> Core.Universe.t
(** Conservative universe with every region at its worst-case measure
    (each region's bound is individually attainable, not jointly — the
    conservative direction for assessment). *)

val worst_case_mu2 : Space.t -> epsilon:float -> float
(** Sharp adversarial bound on the pair's mean PFD: the epsilon of movable
    profile mass is allocated greedily to the regions with the largest
    p_i^2, respecting each region's headroom. Coincides with the model's
    mu2 at epsilon = 0. *)

val profile_sensitivity :
  Space.t -> alternatives:(string * Profile.t) list -> (string * float * float) list
(** [(label, mu1, mu2)] under each explicitly supplied candidate profile. *)

val total_variation : Profile.t -> Profile.t -> float
(** Total-variation distance between two profiles on the same space. *)
