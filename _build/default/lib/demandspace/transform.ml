open Numerics

type t = { forward : int array; inverse : int array }

let of_array forward =
  let n = Array.length forward in
  if n = 0 then invalid_arg "Transform.of_array: empty mapping";
  let seen = Array.make n false in
  Array.iter
    (fun y ->
      if y < 0 || y >= n then
        invalid_arg "Transform.of_array: image out of range";
      if seen.(y) then invalid_arg "Transform.of_array: not a bijection";
      seen.(y) <- true)
    forward;
  let inverse = Array.make n 0 in
  Array.iteri (fun x y -> inverse.(y) <- x) forward;
  { forward = Array.copy forward; inverse }

let identity n =
  if n <= 0 then invalid_arg "Transform.identity: size must be positive";
  let forward = Array.init n (fun i -> i) in
  { forward = Array.copy forward; inverse = forward }

let random rng n =
  if n <= 0 then invalid_arg "Transform.random: size must be positive";
  let forward = Array.init n (fun i -> i) in
  Rng.shuffle_in_place rng forward;
  of_array forward

let partial rng n ~fraction =
  if n <= 0 then invalid_arg "Transform.partial: size must be positive";
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Transform.partial: fraction outside [0, 1]";
  (* Permute a random subset of about [fraction]*n ids among themselves;
     the rest map identically. fraction 0 = identity, 1 = full shuffle. *)
  let chosen =
    Array.of_list
      (List.filter
         (fun _ -> Rng.bool rng ~p:fraction)
         (List.init n (fun i -> i)))
  in
  let shuffled = Array.copy chosen in
  Rng.shuffle_in_place rng shuffled;
  let forward = Array.init n (fun i -> i) in
  Array.iteri (fun k x -> forward.(x) <- shuffled.(k)) chosen;
  of_array forward

let size t = Array.length t.forward

let apply t x =
  if x < 0 || x >= size t then invalid_arg "Transform.apply: id out of range";
  t.forward.(x)

let apply_inverse t y =
  if y < 0 || y >= size t then
    invalid_arg "Transform.apply_inverse: id out of range";
  t.inverse.(y)

let displaced t =
  let count = ref 0 in
  Array.iteri (fun x y -> if x <> y then incr count) t.forward;
  !count

let preimage t set =
  if Bitset.length set <> size t then
    invalid_arg "Transform.preimage: set over a different space";
  let out = Bitset.create (size t) in
  Bitset.iter (fun y -> Bitset.set out t.inverse.(y)) set;
  out

let compose a b =
  if size a <> size b then invalid_arg "Transform.compose: size mismatch";
  of_array (Array.init (size a) (fun x -> a.forward.(b.forward.(x))))
