open Numerics

type t = {
  space : Space.t;
  present : int list;
  failure_set : Bitset.t;
  pfd : float;
}

let create space present =
  let sorted = List.sort_uniq compare present in
  let failure_set = Space.failure_set space sorted in
  let pfd = Profile.measure (Space.profile space) failure_set in
  { space; present = sorted; failure_set; pfd }

let perfect space = create space []

let space t = t.space
let present_faults t = t.present
let fault_count t = List.length t.present
let failure_set t = t.failure_set
let pfd t = t.pfd

let fails_on t demand = Bitset.mem t.failure_set (Demand.to_int demand)

let has_fault t i = List.mem i t.present

let common_faults a b =
  List.filter (fun i -> List.mem i b.present) a.present

let joint_failure_set a b =
  if Space.size a.space <> Space.size b.space then
    invalid_arg "Version.joint_failure_set: versions over different spaces";
  Bitset.inter a.failure_set b.failure_set

let pair_pfd a b =
  Profile.measure (Space.profile a.space) (joint_failure_set a b)

let additive_pfd t =
  (* The paper's non-overlap formula: sum of the present faults' q_i. When
     regions really are disjoint this equals [pfd]; when they overlap it is
     the Section 6.2 pessimistic approximation. *)
  Kahan.sum_list
    (List.map
       (fun i -> Region.measure (Space.region t.space i) (Space.profile t.space))
       t.present)

let pp ppf t =
  Fmt.pf ppf "version(faults=[%s], pfd=%.6g)"
    (String.concat "," (List.map string_of_int t.present))
    t.pfd
