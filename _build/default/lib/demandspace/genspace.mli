(** Random demand-space generators reproducing the failure-region geometry
    of the paper's Fig. 2 and the shapes it cites from the literature:
    compact blobs, thin lines, and non-connected scatters of points. *)

val random_box : Numerics.Rng.t -> width:int -> height:int -> max_side:int -> Region.t
val random_line : Numerics.Rng.t -> width:int -> height:int -> max_steps:int -> Region.t
val random_scatter :
  Numerics.Rng.t -> width:int -> height:int -> max_points:int -> Region.t

val random_region :
  Numerics.Rng.t -> width:int -> height:int -> max_extent:int -> Region.t
(** One region with a uniformly chosen shape kind. *)

val place_disjoint :
  Numerics.Rng.t ->
  width:int ->
  height:int ->
  n_faults:int ->
  max_extent:int ->
  Region.t array
(** Rejection-place pairwise-disjoint random regions (the model's
    assumption). Raises [Invalid_argument] when the grid is too crowded. *)

val disjoint_space :
  Numerics.Rng.t ->
  width:int ->
  height:int ->
  n_faults:int ->
  max_extent:int ->
  p_lo:float ->
  p_hi:float ->
  profile:Profile.t ->
  Space.t
(** Full model instance satisfying the non-overlap assumption, with
    introduction probabilities uniform in [p_lo, p_hi]. *)

val overlapping_space :
  Numerics.Rng.t ->
  width:int ->
  height:int ->
  n_faults:int ->
  max_extent:int ->
  p_lo:float ->
  p_hi:float ->
  profile:Profile.t ->
  Space.t
(** Regions placed independently so overlaps occur — the Section 6.2
    assumption-violation setting. *)

val fig2 : Numerics.Rng.t -> width:int -> height:int -> Space.t
(** A five-region space laid out like the paper's Fig. 2 (boxes of two
    sizes, a diagonal line, a scatter), uniform profile. Requires at least
    a 16 x 16 grid. *)

val render : width:int -> height:int -> Space.t -> string list
(** ASCII rendering, one string per grid row (top row first): '.' empty,
    digit = region index + 1, '#' = overlapping regions. *)
