open Numerics

type shape =
  | Points of int list
  | Interval of { lo : int; hi : int }
  | Box of { x_lo : int; x_hi : int; y_lo : int; y_hi : int; width : int }
  | Line of { x0 : int; y0 : int; dx : int; dy : int; steps : int; width : int }
  | Scatter of { seed : int; count : int }

type t = { space_size : int; members : Bitset.t; shape : shape }

let members t = t.members
let shape t = t.shape
let space_size t = t.space_size
let cardinal t = Bitset.cardinal t.members
let mem t d = Bitset.mem t.members (Demand.to_int d)

let of_bitset ~space_size ~shape members =
  if Bitset.length members <> space_size then
    invalid_arg "Region.of_bitset: bitset over a different space";
  { space_size; members; shape }

let points ~space_size ids =
  List.iter
    (fun i ->
      if i < 0 || i >= space_size then
        invalid_arg "Region.points: demand id out of range")
    ids;
  { space_size; members = Bitset.of_list space_size ids; shape = Points ids }

let interval ~space_size ~lo ~hi =
  if lo < 0 || hi >= space_size || lo > hi then
    invalid_arg "Region.interval: bad bounds";
  let members = Bitset.create space_size in
  for i = lo to hi do
    Bitset.set members i
  done;
  { space_size; members; shape = Interval { lo; hi } }

let box ~width ~height ~x_lo ~x_hi ~y_lo ~y_hi =
  if x_lo < 0 || x_hi >= width || x_lo > x_hi then
    invalid_arg "Region.box: bad x bounds";
  if y_lo < 0 || y_hi >= height || y_lo > y_hi then
    invalid_arg "Region.box: bad y bounds";
  let space_size = width * height in
  let members = Bitset.create space_size in
  for y = y_lo to y_hi do
    for x = x_lo to x_hi do
      Bitset.set members ((y * width) + x)
    done
  done;
  { space_size; members; shape = Box { x_lo; x_hi; y_lo; y_hi; width } }

let line ~width ~height ~x0 ~y0 ~dx ~dy ~steps =
  if dx = 0 && dy = 0 then invalid_arg "Region.line: zero direction";
  let space_size = width * height in
  let members = Bitset.create space_size in
  let placed = ref 0 in
  for s = 0 to steps - 1 do
    let x = x0 + (s * dx) and y = y0 + (s * dy) in
    if x >= 0 && x < width && y >= 0 && y < height then begin
      Bitset.set members ((y * width) + x);
      incr placed
    end
  done;
  if !placed = 0 then invalid_arg "Region.line: line misses the grid entirely";
  { space_size; members; shape = Line { x0; y0; dx; dy; steps; width } }

let scatter rng ~space_size ~count =
  if count <= 0 || count > space_size then
    invalid_arg "Region.scatter: bad point count";
  let members = Bitset.create space_size in
  let placed = ref 0 in
  (* rejection: fine because count << space_size in all uses; fall back to
     sweep when dense. *)
  if count * 2 < space_size then begin
    while !placed < count do
      let i = Rng.int rng space_size in
      if not (Bitset.mem members i) then begin
        Bitset.set members i;
        incr placed
      end
    done
  end
  else begin
    let ids = Array.init space_size (fun i -> i) in
    Rng.shuffle_in_place rng ids;
    for j = 0 to count - 1 do
      Bitset.set members ids.(j)
    done
  end;
  { space_size; members; shape = Scatter { seed = 0; count } }

let disjoint a b =
  if a.space_size <> b.space_size then
    invalid_arg "Region.disjoint: regions over different spaces";
  Bitset.disjoint a.members b.members

let union_members regions =
  match regions with
  | [] -> invalid_arg "Region.union_members: empty list"
  | r :: rest ->
      let acc = Bitset.copy r.members in
      List.iter
        (fun r' ->
          if r'.space_size <> r.space_size then
            invalid_arg "Region.union_members: regions over different spaces";
          Bitset.union_in_place acc r'.members)
        rest;
      acc

let measure t profile = Profile.measure profile t.members

let shape_name t =
  match t.shape with
  | Points _ -> "points"
  | Interval _ -> "interval"
  | Box _ -> "box"
  | Line _ -> "line"
  | Scatter _ -> "scatter"

let pp ppf t =
  Fmt.pf ppf "region(%s, |.|=%d/%d)" (shape_name t) (cardinal t) t.space_size
