open Numerics

let worst_case_region_measure ~q ~epsilon =
  if epsilon < 0.0 then
    invalid_arg "Robustness.worst_case_region_measure: negative epsilon";
  min 1.0 (q +. epsilon)

let worst_case_qs space ~epsilon =
  Array.map
    (fun q -> worst_case_region_measure ~q ~epsilon)
    (Space.region_measures space)

let robust_universe space ~epsilon =
  (* Per-region worst case: each region's measure can rise by at most the
     total-variation budget. Taking all of them at +epsilon simultaneously
     is conservative (a single adversarial profile cannot inflate every
     region at once), which is the right direction for a bound. *)
  Core.Universe.of_arrays
    ~p:
      (Array.init (Space.fault_count space) (fun i ->
           Space.introduction_prob space i))
    ~q:(worst_case_qs space ~epsilon)

let worst_case_mu2 space ~epsilon =
  (* Sharper than [robust_universe]: a total-variation shift of epsilon
     moves at most epsilon of profile mass, and an adversary maximising
     the PAIR's mean PFD pushes it into the regions with the largest
     common-fault probability p_i^2. Greedy allocation over regions,
     bounded by each region's headroom (its complement mass). *)
  if epsilon < 0.0 || epsilon > 1.0 then
    invalid_arg "Robustness.worst_case_mu2: epsilon outside [0, 1]";
  let qs = Space.region_measures space in
  let n = Space.fault_count space in
  let weights =
    Array.init n (fun i ->
        let p = Space.introduction_prob space i in
        (p *. p, i))
  in
  Array.sort (fun (a, _) (b, _) -> compare b a) weights;
  let base =
    Kahan.sum_over n (fun i ->
        let p = Space.introduction_prob space i in
        p *. p *. qs.(i))
  in
  let budget = ref epsilon in
  let extra = Kahan.create () in
  Array.iter
    (fun (w2, i) ->
      if !budget > 0.0 then begin
        let headroom = 1.0 -. qs.(i) in
        let take = min !budget headroom in
        Kahan.add extra (w2 *. take);
        budget := !budget -. take
      end)
    weights;
  base +. Kahan.total extra

let profile_sensitivity space ~alternatives =
  (* Exact q vectors under explicitly supplied alternative profiles:
     assessors often have a handful of candidate operational profiles
     rather than a distance budget. *)
  List.map
    (fun (label, profile) ->
      if Profile.size profile <> Space.size space then
        invalid_arg "Robustness.profile_sensitivity: profile size mismatch";
      let qs =
        Array.init (Space.fault_count space) (fun i ->
            Region.measure (Space.region space i) profile)
      in
      let u =
        Core.Universe.of_arrays
          ~p:
            (Array.init (Space.fault_count space) (fun i ->
                 Space.introduction_prob space i))
          ~q:qs
      in
      (label, Core.Moments.mu1 u, Core.Moments.mu2 u))
    alternatives

let total_variation a b =
  if Profile.size a <> Profile.size b then
    invalid_arg "Robustness.total_variation: profile size mismatch";
  let pa = Profile.probabilities a and pb = Profile.probabilities b in
  0.5 *. Kahan.sum_over (Array.length pa) (fun i -> abs_float (pa.(i) -. pb.(i)))
