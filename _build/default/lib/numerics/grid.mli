(** Parameter grids for experiment sweeps and simple quadrature. *)

val linspace : lo:float -> hi:float -> n:int -> float array
(** [n >= 2] evenly spaced points from [lo] to [hi] inclusive. *)

val logspace : lo:float -> hi:float -> n:int -> float array
(** Points evenly spaced in log-space; requires 0 < lo < hi. *)

val arange : lo:float -> hi:float -> step:float -> float array
(** Points lo, lo+step, ... strictly below [hi]. *)

val map2 : ('a -> 'b -> 'c) -> 'a array -> 'b array -> 'c array
(** Element-wise map over two equal-length arrays. *)

val trapezoid : xs:float array -> ys:float array -> float
(** Trapezoidal-rule integral of the sampled function. *)
