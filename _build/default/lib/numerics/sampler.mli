(** Samplers for the distributions used to generate fault universes and
    demand profiles.

    The paper leaves the parameter vectors {p_i} and {q_i} free ("all
    parameters are unknown and unmeasurable in practice"); experiments
    therefore sweep over *families* of universes — uniform, power-law
    (a few large failure regions, many tiny ones, matching the shapes
    reported in refs [9–11]), Dirichlet-normalised, etc. *)

val exponential : Rng.t -> rate:float -> float

val binomial : Rng.t -> n:int -> p:float -> int
(** Number of successes in [n] Bernoulli(p) trials. *)

val gamma : Rng.t -> shape:float -> float
(** Gamma(shape, 1) via Marsaglia–Tsang. *)

val beta : Rng.t -> a:float -> b:float -> float

val dirichlet : Rng.t -> alphas:float array -> float array
(** A point on the simplex: non-negative entries summing to 1. *)

val power_law : Rng.t -> exponent:float -> lo:float -> hi:float -> float
(** Draw from the density proportional to x^exponent on [lo, hi]
    (0 < lo < hi). Exponent -1 is handled as the log-uniform limit. *)

val log_uniform : Rng.t -> lo:float -> hi:float -> float
(** Log-uniform draw: uniform in log-space, the standard model for
    failure-region sizes spanning several orders of magnitude. *)

val poisson : Rng.t -> lambda:float -> int

val truncated : Rng.t -> lo:float -> hi:float -> (Rng.t -> float) -> float
(** Rejection-sample [draw] until the value lands in [lo, hi]. Raises
    [Invalid_argument] after 100000 rejections. *)
