let resample rng samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Bootstrap.resample: empty sample";
  Array.init n (fun _ -> samples.(Rng.int rng n))

let percentile_ci ?(replicates = 2000) ?(alpha = 0.05) rng samples statistic =
  if Array.length samples = 0 then invalid_arg "Bootstrap.percentile_ci: empty sample";
  if replicates < 10 then invalid_arg "Bootstrap.percentile_ci: too few replicates";
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Bootstrap.percentile_ci: alpha outside (0, 1)";
  let stats = Array.init replicates (fun _ -> statistic (resample rng samples)) in
  Array.sort compare stats;
  ( Stats.quantile_sorted stats (alpha /. 2.0),
    Stats.quantile_sorted stats (1.0 -. (alpha /. 2.0)) )

let standard_error ?(replicates = 2000) rng samples statistic =
  let stats = Array.init replicates (fun _ -> statistic (resample rng samples)) in
  Stats.std stats
