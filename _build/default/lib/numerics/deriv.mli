(** Numerical differentiation.

    The analytic derivatives of the diversity-gain ratio (Appendices A and B
    of the paper) are cross-validated against these finite-difference
    estimates in the test suite; they are also the fallback for models with
    no closed-form gradient (correlated faults, overlap). *)

val central : ?h:float -> (float -> float) -> float -> float
(** Central difference, relative step [h] (default 1e-6). *)

val richardson : ?h:float -> (float -> float) -> float -> float
(** Richardson-extrapolated central difference, O(h^4) accurate. *)

val partial : ?h:float -> (float array -> float) -> float array -> int -> float
(** Partial derivative of a multivariate function in coordinate [i]. Does
    not mutate the input point. *)

val gradient : ?h:float -> (float array -> float) -> float array -> float array
(** All partial derivatives. *)

val second : ?h:float -> (float -> float) -> float -> float
(** Second derivative by the three-point stencil. *)
