(** Streaming mean/variance (Welford's algorithm).

    Monte-Carlo sweeps in the simulator can run millions of replications;
    this accumulator produces numerically stable single-pass moments without
    storing the samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val mean : t -> float
(** NaN when empty. *)

val variance : t -> float
(** Unbiased variance; NaN when fewer than two observations. *)

val std : t -> float

val min_value : t -> float
val max_value : t -> float

val merge : t -> t -> t
(** Combine two accumulators (parallel reduction); exact in the same sense
    as Welford's update. *)

val to_summary : t -> Stats.summary
(** Snapshot as a {!Stats.summary} (variance reported as 0 when n < 2). *)
