type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  let delta2 = x -. t.mean in
  t.m2 <- t.m2 +. (delta *. delta2);
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean

let variance t =
  if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

let std t = sqrt (variance t)
let min_value t = if t.count = 0 then nan else t.min
let max_value t = if t.count = 0 then nan else t.max

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean =
      a.mean +. (delta *. float_of_int b.count /. float_of_int n)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
          /. float_of_int n)
    in
    { count = n; mean; m2; min = min a.min b.min; max = max a.max b.max }

let to_summary t : Stats.summary =
  {
    Stats.n = t.count;
    mean = mean t;
    variance = (if t.count < 2 then 0.0 else variance t);
    std = (if t.count < 2 then 0.0 else std t);
    min = min_value t;
    max = max_value t;
  }
