(** The normal (Gauss) distribution: density, CDF, tail, quantile, sampling.

    This is the machinery behind the paper's Section 5 ("Bounds on
    unreliability, under the normal approximation"): confidence statements
    of the form "P(PFD <= mu + k*sigma) = alpha" need the CDF to go from [k]
    to [alpha] and the quantile function to go from [alpha] to [k]
    (e.g. alpha = 0.99 gives k = 2.3263). *)

val pdf : ?mu:float -> ?sigma:float -> float -> float
(** Density. Defaults: standard normal. *)

val cdf : ?mu:float -> ?sigma:float -> float -> float
(** Cumulative distribution function, computed through [erfc] so the lower
    tail does not lose precision. *)

val sf : ?mu:float -> ?sigma:float -> float -> float
(** Survival function 1 - CDF, accurate in the upper tail. *)

val ppf : ?mu:float -> ?sigma:float -> float -> float
(** Quantile (inverse CDF): Acklam's approximation plus one Halley
    refinement step; full double precision. Raises [Invalid_argument]
    unless 0 < p < 1. *)

val k_of_confidence : float -> float
(** [k_of_confidence alpha] is the k with P(Z <= k) = alpha for standard
    normal Z — the paper's "factor k chosen according to the required
    confidence" (Section 5.1). *)

val confidence_of_k : float -> float
(** Inverse of {!k_of_confidence}: e.g. [confidence_of_k 3.0] =
    0.99865003... as quoted in the paper. *)

val sample : Rng.t -> ?mu:float -> ?sigma:float -> unit -> float
(** Draw a normal variate (Marsaglia polar method). *)
