(** One-dimensional root finding and minimisation.

    Used to locate stationary points of the diversity-gain ratio for general
    universes (Appendix A studies where the partial derivatives change sign)
    and to invert monotone bound functions. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Bisection on a bracketing interval. Raises [Invalid_argument] if
    [f lo] and [f hi] have the same (non-zero) sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Brent's method (inverse quadratic interpolation with bisection
    safeguard); same bracketing contract as {!bisect}, faster convergence. *)

val minimize_golden :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Golden-section search for the minimiser of a unimodal function. *)
