(** Fixed-range histograms for empirical PFD distributions. *)

type t
(** Mutable histogram with equal-width bins over [lo, hi]; values exactly at
    [hi] land in the last bin. *)

val create : lo:float -> hi:float -> bins:int -> t
val add : t -> float -> unit
val bins : t -> int
val count : t -> int -> int
val total : t -> int

val underflow : t -> int
(** Observations strictly below [lo]. *)

val overflow : t -> int
(** Observations strictly above [hi]. *)

val bin_edges : t -> float array
(** [bins + 1] edges. *)

val bin_centers : t -> float array

val densities : t -> float array
(** Normalised density per bin (integrates to the in-range fraction). *)

val of_samples : bins:int -> float array -> t
(** Histogram spanning the sample range. *)
