let statistic samples cdf =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Ks.statistic: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let f = cdf sorted.(i) in
    let lo = float_of_int i /. float_of_int n in
    let hi = float_of_int (i + 1) /. float_of_int n in
    d := max !d (max (abs_float (f -. lo)) (abs_float (hi -. f)))
  done;
  !d

(* Kolmogorov survival function Q(lambda) = 2 sum_{j>=1} (-1)^{j-1}
   exp(-2 j^2 lambda^2); converges very fast for lambda > 0.2. *)
let kolmogorov_q lambda =
  if lambda <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 in
    let j = ref 1 in
    let continue_ = ref true in
    while !continue_ && !j <= 100 do
      let fj = float_of_int !j in
      let term = exp (-2.0 *. fj *. fj *. lambda *. lambda) in
      let signed = if !j mod 2 = 1 then term else -.term in
      acc := !acc +. signed;
      if term < 1e-12 then continue_ := false;
      incr j
    done;
    min 1.0 (max 0.0 (2.0 *. !acc))
  end

let p_value samples cdf =
  let n = float_of_int (Array.length samples) in
  let d = statistic samples cdf in
  (* Stephens' small-sample correction. *)
  let lambda = (sqrt n +. 0.12 +. (0.11 /. sqrt n)) *. d in
  kolmogorov_q lambda

let distance_between_cdfs ?(points = 2048) cdf1 cdf2 ~lo ~hi =
  if not (lo < hi) then invalid_arg "Ks.distance_between_cdfs: need lo < hi";
  let d = ref 0.0 in
  for i = 0 to points do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int points) in
    d := max !d (abs_float (cdf1 x -. cdf2 x))
  done;
  !d
