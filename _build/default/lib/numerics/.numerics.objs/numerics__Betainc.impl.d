lib/numerics/betainc.ml: Float Kahan Rootfind Special
