lib/numerics/sampler.ml: Array Kahan Normal_dist Rng
