lib/numerics/rng.mli:
