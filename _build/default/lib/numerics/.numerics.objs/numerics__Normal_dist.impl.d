lib/numerics/normal_dist.ml: Array Float Rng Special
