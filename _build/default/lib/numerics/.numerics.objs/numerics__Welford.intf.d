lib/numerics/welford.mli: Stats
