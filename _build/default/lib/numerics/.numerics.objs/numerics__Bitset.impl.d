lib/numerics/bitset.ml: Array List Sys
