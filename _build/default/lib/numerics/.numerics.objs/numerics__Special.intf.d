lib/numerics/special.mli:
