lib/numerics/deriv.mli:
