lib/numerics/rootfind.ml:
