lib/numerics/bitset.mli:
