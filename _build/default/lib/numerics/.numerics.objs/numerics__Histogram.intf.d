lib/numerics/histogram.mli:
