lib/numerics/welford.ml: Stats
