lib/numerics/alias.mli: Rng
