lib/numerics/rootfind.mli:
