lib/numerics/kahan.mli:
