lib/numerics/ks.mli:
