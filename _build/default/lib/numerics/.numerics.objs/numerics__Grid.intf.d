lib/numerics/grid.mli:
