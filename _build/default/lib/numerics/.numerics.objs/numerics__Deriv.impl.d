lib/numerics/deriv.ml: Array
