lib/numerics/betainc.mli:
