lib/numerics/alias.ml: Array Float Kahan Queue Rng
