lib/numerics/bootstrap.mli: Rng
