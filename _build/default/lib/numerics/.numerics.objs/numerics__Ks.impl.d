lib/numerics/ks.ml: Array
