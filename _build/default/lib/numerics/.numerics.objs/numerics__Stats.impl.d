lib/numerics/stats.ml: Array Kahan
