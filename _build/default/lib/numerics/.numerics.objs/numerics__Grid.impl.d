lib/numerics/grid.ml: Array Kahan
