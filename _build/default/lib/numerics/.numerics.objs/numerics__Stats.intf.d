lib/numerics/stats.mli:
