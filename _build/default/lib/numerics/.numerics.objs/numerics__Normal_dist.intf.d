lib/numerics/normal_dist.mli: Rng
