lib/numerics/bootstrap.ml: Array Rng Stats
