(** Compensated summation (Kahan–Babuška / Neumaier variant).

    All the probability-mass bookkeeping in this project sums many small
    floating-point terms of similar magnitude; naive summation loses several
    digits on universes with thousands of faults. Every sum that feeds a
    reported statistic goes through this module. The Neumaier variant also
    compensates when an addend exceeds the running sum, and infinite terms
    propagate as infinities rather than poisoning the compensation. *)

type t
(** A mutable compensated accumulator. *)

val create : unit -> t
(** A fresh accumulator holding 0. *)

val add : t -> float -> unit
(** [add acc x] accumulates [x] with error compensation. *)

val total : t -> float
(** Current compensated sum. *)

val reset : t -> unit
(** Reset the accumulator to 0. *)

val sum_array : float array -> float
(** Compensated sum of an array. *)

val sum_list : float list -> float
(** Compensated sum of a list. *)

val sum_over : int -> (int -> float) -> float
(** [sum_over n f] is the compensated sum of [f 0 .. f (n-1)]. *)

val dot : float array -> float array -> float
(** Compensated dot product. Raises [Invalid_argument] on length mismatch. *)
