(** One-sample Kolmogorov–Smirnov machinery.

    Experiment E15 quantifies how quickly the exact PFD distribution
    approaches the paper's Section 5 normal approximation as the number of
    potential faults grows; the KS distance is the metric. *)

val statistic : float array -> (float -> float) -> float
(** Exact one-sample KS statistic D_n of a sample against a continuous CDF. *)

val kolmogorov_q : float -> float
(** Kolmogorov's limiting survival function Q(lambda). *)

val p_value : float array -> (float -> float) -> float
(** Asymptotic p-value with Stephens' finite-sample correction. *)

val distance_between_cdfs :
  ?points:int -> (float -> float) -> (float -> float) -> lo:float -> hi:float -> float
(** Sup-distance between two CDFs, evaluated on a uniform grid of
    [points + 1] abscissae over [lo, hi]. *)
