(** Nonparametric bootstrap.

    The synthetic Knight–Leveson replication (E09) reports sample statistics
    of only 27 versions / 351 pairs; the bootstrap provides honest interval
    estimates at those small sample sizes, where normal theory is dubious
    (as the paper itself notes for the K–L data). *)

val resample : Rng.t -> float array -> float array
(** One bootstrap resample (same size, drawn with replacement). *)

val percentile_ci :
  ?replicates:int ->
  ?alpha:float ->
  Rng.t ->
  float array ->
  (float array -> float) ->
  float * float
(** Percentile bootstrap confidence interval for an arbitrary statistic.
    Defaults: 2000 replicates, 95% coverage. *)

val standard_error :
  ?replicates:int -> Rng.t -> float array -> (float array -> float) -> float
(** Bootstrap standard error of a statistic. *)
