type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.0; compensation = 0.0 }

(* Neumaier's improvement of Kahan's algorithm: unlike plain Kahan it also
   compensates when the addend is larger than the running sum (e.g.
   [1e16; 1.0; -1e16] sums to exactly 1.0). Non-finite intermediate sums
   drop the compensation so infinities propagate cleanly instead of
   producing inf - inf = NaN. *)
let add acc x =
  let t = acc.sum +. x in
  if Float.is_finite t then begin
    if abs_float acc.sum >= abs_float x then
      acc.compensation <- acc.compensation +. ((acc.sum -. t) +. x)
    else acc.compensation <- acc.compensation +. ((x -. t) +. acc.sum);
    acc.sum <- t
  end
  else begin
    acc.sum <- t;
    acc.compensation <- 0.0
  end

let total acc = acc.sum +. acc.compensation

let reset acc =
  acc.sum <- 0.0;
  acc.compensation <- 0.0

let sum_array a =
  let acc = create () in
  Array.iter (fun x -> add acc x) a;
  total acc

let sum_list l =
  let acc = create () in
  List.iter (fun x -> add acc x) l;
  total acc

let sum_over n f =
  let acc = create () in
  for i = 0 to n - 1 do
    add acc (f i)
  done;
  total acc

let dot a b =
  if Array.length a <> Array.length b then
    invalid_arg "Kahan.dot: length mismatch";
  sum_over (Array.length a) (fun i -> a.(i) *. b.(i))
