(** Special functions implemented to double precision.

    The OCaml standard library does not ship [erf]/[erfc]; the paper's
    Section 5 confidence-bound machinery needs the normal CDF and its
    inverse, which we build on these primitives. The implementations use a
    positive-term Maclaurin series for small arguments and Lentz's continued
    fraction for the tails, giving close to machine precision over the whole
    real line. *)

val sqrt_pi : float
(** sqrt(pi). *)

val sqrt2 : float
(** sqrt(2). *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function, accurate in the far tail (no cancellation
    for large positive arguments). *)

val log_gamma : float -> float
(** Natural log of the Gamma function (Lanczos, g=7). *)

val log_factorial : int -> float
(** [log n!], cached for n < 256. Raises [Invalid_argument] on negatives. *)

val log_choose : int -> int -> float
(** Log binomial coefficient; [neg_infinity] outside the valid range. *)

val log1p : float -> float
(** log(1+x) without cancellation for small x. *)

val expm1 : float -> float
(** exp(x)-1 without cancellation for small x. *)

val logsumexp : float array -> float
(** Numerically stable log of a sum of exponentials. *)
