(** Regularized incomplete beta function and its derived distributions.

    Two uses in the reproduction: exact binomial tails (the failure
    probability of an M-out-of-N voted channel group is a binomial tail in
    the per-channel fault probability), and the conventional Beta prior on
    PFD that the paper's conclusions contrast with model-based priors. *)

val log_beta : float -> float -> float
(** log B(a, b). *)

val regularized : a:float -> b:float -> float -> float
(** I_x(a, b), the regularized incomplete beta function, to near machine
    precision (continued fraction with the symmetry switch). Raises
    [Invalid_argument] on non-positive shapes or x outside [0, 1]. *)

val beta_cdf : a:float -> b:float -> float -> float
(** CDF of the Beta(a, b) distribution (argument clamped to [0, 1]). *)

val beta_ppf : a:float -> b:float -> float -> float
(** Quantile of Beta(a, b) by safeguarded bisection. *)

val beta_mean : a:float -> b:float -> float

val binomial_cdf : n:int -> p:float -> int -> float
(** P(Bin(n, p) <= k) through the incomplete beta identity — no summation
    error even for large n. *)

val binomial_sf : n:int -> p:float -> int -> float
(** P(Bin(n, p) > k). *)

val binomial_tail_direct : n:int -> p:float -> int -> float
(** P(Bin(n, p) >= k) by direct log-space summation; exact for small n and
    the cross-check oracle for {!binomial_sf}. *)
