let default_h = 1e-6

let central ?(h = default_h) f x =
  let h = h *. max 1.0 (abs_float x) in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let richardson ?(h = 1e-3) f x =
  (* Richardson extrapolation of the central difference: combine step sizes
     h and h/2 to cancel the O(h^2) term, giving an O(h^4) estimate. *)
  let h = h *. max 1.0 (abs_float x) in
  let d1 = (f (x +. h) -. f (x -. h)) /. (2.0 *. h) in
  let h2 = h /. 2.0 in
  let d2 = (f (x +. h2) -. f (x -. h2)) /. (2.0 *. h2) in
  ((4.0 *. d2) -. d1) /. 3.0

let partial ?(h = default_h) f x i =
  let xi = x.(i) in
  let step = h *. max 1.0 (abs_float xi) in
  let eval v =
    let x' = Array.copy x in
    x'.(i) <- v;
    f x'
  in
  (eval (xi +. step) -. eval (xi -. step)) /. (2.0 *. step)

let gradient ?h f x = Array.init (Array.length x) (fun i -> partial ?h f x i)

let second ?(h = 1e-4) f x =
  let h = h *. max 1.0 (abs_float x) in
  (f (x +. h) -. (2.0 *. f x) +. f (x -. h)) /. (h *. h)
