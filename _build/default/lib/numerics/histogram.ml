type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  { lo; hi; counts = Array.make bins 0; total = 0; underflow = 0; overflow = 0 }

let bins t = Array.length t.counts

let bin_index t x =
  let b = Array.length t.counts in
  let f = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int b in
  int_of_float (floor f)

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then
    if x = t.hi then t.counts.(bins t - 1) <- t.counts.(bins t - 1) + 1
    else t.overflow <- t.overflow + 1
  else
    let i = bin_index t x in
    let i = if i >= bins t then bins t - 1 else if i < 0 then 0 else i in
    t.counts.(i) <- t.counts.(i) + 1

let count t i = t.counts.(i)
let total t = t.total
let underflow t = t.underflow
let overflow t = t.overflow

let bin_edges t =
  let b = bins t in
  Array.init (b + 1) (fun i ->
      t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int b))

let bin_centers t =
  let edges = bin_edges t in
  Array.init (bins t) (fun i -> 0.5 *. (edges.(i) +. edges.(i + 1)))

let densities t =
  let b = bins t in
  let width = (t.hi -. t.lo) /. float_of_int b in
  let n = float_of_int (max 1 t.total) in
  Array.map (fun c -> float_of_int c /. (n *. width)) t.counts

let of_samples ~bins samples =
  let lo = Array.fold_left min infinity samples in
  let hi = Array.fold_left max neg_infinity samples in
  let hi = if hi > lo then hi else lo +. 1.0 in
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) samples;
  t
