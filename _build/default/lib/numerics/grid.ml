let linspace ~lo ~hi ~n =
  if n < 2 then invalid_arg "Grid.linspace: need at least two points";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let logspace ~lo ~hi ~n =
  if not (0.0 < lo && lo < hi) then invalid_arg "Grid.logspace: need 0 < lo < hi";
  let llo = log lo and lhi = log hi in
  Array.map exp (linspace ~lo:llo ~hi:lhi ~n)

let arange ~lo ~hi ~step =
  if step <= 0.0 then invalid_arg "Grid.arange: step must be positive";
  let n = int_of_float (ceil ((hi -. lo) /. step)) in
  Array.init (max 0 n) (fun i -> lo +. (step *. float_of_int i))

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Grid.map2: length mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let trapezoid ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Grid.trapezoid: length mismatch";
  if n < 2 then 0.0
  else
    Kahan.sum_over (n - 1) (fun i ->
        0.5 *. (xs.(i + 1) -. xs.(i)) *. (ys.(i) +. ys.(i + 1)))
