let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Sampler.exponential: rate must be positive";
  -.log (1.0 -. Rng.float rng) /. rate

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampler.binomial: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Sampler.binomial: p outside [0, 1]";
  (* Direct Bernoulli summation: n is small everywhere we use this. *)
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng ~p then incr count
  done;
  !count

let rec gamma rng ~shape =
  if shape <= 0.0 then invalid_arg "Sampler.gamma: shape must be positive";
  if shape < 1.0 then
    (* Boost to shape+1 then correct (Marsaglia–Tsang trick). *)
    let g = gamma rng ~shape:(shape +. 1.0) in
    let u = 1.0 -. Rng.float rng in
    g *. (u ** (1.0 /. shape))
  else begin
    (* Marsaglia–Tsang squeeze method. *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = Normal_dist.sample rng () in
      let v = (1.0 +. (c *. x)) ** 3.0 in
      if v <= 0.0 then loop ()
      else
        let u = 1.0 -. Rng.float rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
        else loop ()
    in
    loop ()
  end

let beta rng ~a ~b =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Sampler.beta: shapes must be positive";
  let x = gamma rng ~shape:a in
  let y = gamma rng ~shape:b in
  x /. (x +. y)

let dirichlet rng ~alphas =
  if Array.length alphas = 0 then invalid_arg "Sampler.dirichlet: empty alphas";
  let draws = Array.map (fun a -> gamma rng ~shape:a) alphas in
  let total = Kahan.sum_array draws in
  Array.map (fun d -> d /. total) draws

let power_law rng ~exponent ~lo ~hi =
  if not (0.0 < lo && lo < hi) then
    invalid_arg "Sampler.power_law: need 0 < lo < hi";
  let u = Rng.float rng in
  if abs_float (exponent +. 1.0) < 1e-12 then
    (* exponent = -1: log-uniform *)
    lo *. exp (u *. log (hi /. lo))
  else
    let e = exponent +. 1.0 in
    (((hi ** e) -. (lo ** e)) *. u +. (lo ** e)) ** (1.0 /. e)

let log_uniform rng ~lo ~hi = power_law rng ~exponent:(-1.0) ~lo ~hi

let poisson rng ~lambda =
  if lambda < 0.0 then invalid_arg "Sampler.poisson: negative rate";
  if lambda < 30.0 then begin
    (* Knuth's product method. *)
    let threshold = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. Rng.float rng in
      if prod <= threshold then k else loop (k + 1) prod
    in
    loop 0 1.0
  end
  else
    (* Split to keep the product method in floating-point range. *)
    let half = lambda /. 2.0 in
    let rec sample l = if l < 30.0 then knuth l else knuth half + sample (l -. half)
    and knuth l =
      let threshold = exp (-.l) in
      let rec loop k prod =
        let prod = prod *. Rng.float rng in
        if prod <= threshold then k else loop (k + 1) prod
      in
      loop 0 1.0
    in
    sample lambda

let truncated rng ~lo ~hi draw =
  if not (lo <= hi) then invalid_arg "Sampler.truncated: need lo <= hi";
  let rec loop attempts =
    if attempts > 100_000 then
      invalid_arg "Sampler.truncated: acceptance region too small"
    else
      let x = draw rng in
      if x >= lo && x <= hi then x else loop (attempts + 1)
  in
  loop 0
