(* Tests for the rigorous tail bounds and the sequential acceptance test. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:161803

let tiny () = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ]

(* ------------------------------------------------------------------ *)
(* Tail bounds                                                         *)
(* ------------------------------------------------------------------ *)

let test_log_mgf_at_zero () =
  check_close "MGF(0) = 1" 0.0
    (Core.Tail_bound.log_mgf ~probs:[| 0.5; 0.2 |] ~values:[| 0.1; 0.3 |] 0.0)

let test_log_mgf_derivative_is_mean () =
  let probs = [| 0.5; 0.2; 0.1 |] and values = [| 0.1; 0.3; 0.05 |] in
  let mean = Numerics.Kahan.dot probs values in
  let d =
    Numerics.Deriv.richardson
      (fun l -> Core.Tail_bound.log_mgf ~probs ~values l)
      0.0
  in
  check_close ~eps:1e-8 "d/dl log MGF at 0 = mean" mean d

let test_chernoff_covers_exact () =
  let rng = rng0 () in
  for _ = 1 to 20 do
    let u =
      Core.Universe.uniform_random rng ~n:10 ~p_lo:0.05 ~p_hi:0.6 ~total_q:0.6
    in
    let exact = Core.Pfd_dist.exact_single u in
    let mu = Core.Moments.mu1 u in
    List.iter
      (fun x ->
        let true_sf = Core.Pfd_dist.sf exact x in
        let bound = Core.Tail_bound.chernoff_sf_single u x in
        if bound < true_sf -. 1e-12 then
          Alcotest.fail
            (Printf.sprintf "Chernoff violated at x=%g: bound %g < true %g" x
               bound true_sf))
      [ mu *. 1.2; mu *. 1.5; mu *. 2.0; mu *. 3.0 ]
  done

let test_hoeffding_covers_exact () =
  let rng = rng0 () in
  for _ = 1 to 20 do
    let u =
      Core.Universe.uniform_random rng ~n:10 ~p_lo:0.05 ~p_hi:0.6 ~total_q:0.6
    in
    let exact = Core.Pfd_dist.exact_single u in
    let mu = Core.Moments.mu1 u in
    List.iter
      (fun x ->
        if
          Core.Tail_bound.hoeffding_sf_single u x
          < Core.Pfd_dist.sf exact x -. 1e-12
        then Alcotest.fail "Hoeffding violated")
      [ mu *. 1.5; mu *. 2.5 ]
  done

let test_chernoff_vacuous_below_mean () =
  let u = tiny () in
  check_close "at the mean the bound is 1" 1.0
    (Core.Tail_bound.chernoff_sf_single u (Core.Moments.mu1 u));
  check_close "below the mean the bound is 1" 1.0
    (Core.Tail_bound.chernoff_sf_single u 0.01)

let test_chernoff_monotone () =
  let u = tiny () in
  let xs = Numerics.Grid.linspace ~lo:0.12 ~hi:0.39 ~n:10 in
  let prev = ref 1.0 in
  Array.iter
    (fun x ->
      let b = Core.Tail_bound.chernoff_sf_single u x in
      if b > !prev +. 1e-12 then Alcotest.fail "bound not monotone";
      prev := b)
    xs

let test_guaranteed_bound_covers_quantile () =
  let rng = rng0 () in
  for _ = 1 to 10 do
    let u =
      Core.Universe.uniform_random rng ~n:12 ~p_lo:0.05 ~p_hi:0.5 ~total_q:0.6
    in
    let exact = Core.Pfd_dist.exact_single u in
    List.iter
      (fun confidence ->
        let rigorous = Core.Tail_bound.guaranteed_bound_single u ~confidence in
        let quantile = Core.Pfd_dist.quantile exact confidence in
        if rigorous < quantile -. 1e-9 then
          Alcotest.fail
            (Printf.sprintf "guaranteed bound %g below exact quantile %g"
               rigorous quantile))
      [ 0.9; 0.99; 0.999 ]
  done

let test_guaranteed_pair_bound () =
  let u = tiny () in
  let exact = Core.Pfd_dist.exact_pair u in
  let b = Core.Tail_bound.guaranteed_bound_pair u ~confidence:0.99 in
  Alcotest.(check bool) "pair bound covers the exact pair quantile" true
    (b >= Core.Pfd_dist.quantile exact 0.99 -. 1e-9);
  (* with only two faults Chernoff is loose and both bounds can saturate
     at total_q, so the comparison is non-strict *)
  Alcotest.(check bool) "pair bound at most the single bound" true
    (b <= Core.Tail_bound.guaranteed_bound_single u ~confidence:0.99 +. 1e-12)

(* ------------------------------------------------------------------ *)
(* SPRT                                                                *)
(* ------------------------------------------------------------------ *)

let test_sprt_validation () =
  Alcotest.check_raises "theta order"
    (Invalid_argument "Sprt.create: need 0 < theta0 < theta1 < 1") (fun () ->
      ignore (Simulator.Sprt.create ~theta0:0.1 ~theta1:0.05 ~alpha:0.05 ~beta:0.05))

let test_sprt_failures_push_to_reject () =
  let t = Simulator.Sprt.create ~theta0:1e-3 ~theta1:1e-2 ~alpha:0.05 ~beta:0.05 in
  (* consecutive failures should reject quickly *)
  let rec feed n =
    if n > 100 then Alcotest.fail "no rejection after 100 failures"
    else
      match Simulator.Sprt.record t ~failed:true with
      | Simulator.Sprt.Reject -> n
      | _ -> feed (n + 1)
  in
  let n = feed 1 in
  Alcotest.(check bool) "rejects within a few failures" true (n <= 5)

let test_sprt_successes_push_to_accept () =
  let t = Simulator.Sprt.create ~theta0:1e-2 ~theta1:1e-1 ~alpha:0.05 ~beta:0.05 in
  let rec feed n =
    if n > 100_000 then Alcotest.fail "no acceptance"
    else
      match Simulator.Sprt.record t ~failed:false with
      | Simulator.Sprt.Accept -> n
      | _ -> feed (n + 1)
  in
  let n = feed 1 in
  (* Wald: acceptance after ~ log(beta/(1-alpha)) / log((1-t1)/(1-t0)) *)
  let expected =
    log (0.05 /. 0.95) /. (log 0.9 -. log 0.99) |> Float.ceil |> int_of_float
  in
  Alcotest.(check int) "accepts exactly at Wald's boundary" expected n

let test_sprt_decision_is_final () =
  let t = Simulator.Sprt.create ~theta0:1e-3 ~theta1:1e-2 ~alpha:0.05 ~beta:0.05 in
  for _ = 1 to 50 do
    ignore (Simulator.Sprt.record t ~failed:true)
  done;
  let d = Simulator.Sprt.demands_observed t in
  ignore (Simulator.Sprt.record t ~failed:false);
  Alcotest.(check int) "no more demands counted after the decision" d
    (Simulator.Sprt.demands_observed t);
  Alcotest.(check bool) "decision stays Reject" true
    (Simulator.Sprt.state t = Simulator.Sprt.Reject)

let test_sprt_error_rates () =
  (* Systems with true PFD = theta0 should be accepted ~95% of the time. *)
  let rng = rng0 () in
  let profile = Demandspace.Profile.uniform ~size:1000 in
  let region = Demandspace.Region.interval ~space_size:1000 ~lo:0 ~hi:9 in
  let space = Demandspace.Space.create ~profile ~faults:[| (region, 1.0) |] in
  let v = Demandspace.Version.create space [ 0 ] in
  let system =
    Simulator.Protection.create [ Simulator.Channel.create ~name:"x" v ]
  in
  (* true PFD = 0.01 = theta0 *)
  let accepts = ref 0 and trials = 300 in
  for _ = 1 to trials do
    match
      Simulator.Sprt.run rng ~system ~theta0:0.01 ~theta1:0.1 ~alpha:0.05
        ~beta:0.05 ~max_demands:1_000_000
    with
    | Simulator.Sprt.Accept, _ -> incr accepts
    | _ -> ()
  done;
  let rate = float_of_int !accepts /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance rate ~ 1 - alpha (got %g)" rate)
    true (rate > 0.9)

let test_sprt_expected_sample_size_positive () =
  let n =
    Simulator.Sprt.expected_sample_size_h0 ~theta0:1e-3 ~theta1:1e-2
      ~alpha:0.05 ~beta:0.05
  in
  Alcotest.(check bool) "positive and finite" true (n > 0.0 && Float.is_finite n)

let () =
  Alcotest.run "tailbound-sprt"
    [
      ( "tail-bounds",
        [
          Alcotest.test_case "MGF at zero" `Quick test_log_mgf_at_zero;
          Alcotest.test_case "MGF derivative" `Quick test_log_mgf_derivative_is_mean;
          Alcotest.test_case "Chernoff covers exact" `Quick test_chernoff_covers_exact;
          Alcotest.test_case "Hoeffding covers exact" `Quick
            test_hoeffding_covers_exact;
          Alcotest.test_case "vacuous below mean" `Quick
            test_chernoff_vacuous_below_mean;
          Alcotest.test_case "monotone" `Quick test_chernoff_monotone;
          Alcotest.test_case "guaranteed bound covers quantile" `Quick
            test_guaranteed_bound_covers_quantile;
          Alcotest.test_case "pair bound" `Quick test_guaranteed_pair_bound;
        ] );
      ( "sprt",
        [
          Alcotest.test_case "validation" `Quick test_sprt_validation;
          Alcotest.test_case "failures reject" `Quick test_sprt_failures_push_to_reject;
          Alcotest.test_case "successes accept" `Quick
            test_sprt_successes_push_to_accept;
          Alcotest.test_case "decision final" `Quick test_sprt_decision_is_final;
          Alcotest.test_case "error rates" `Slow test_sprt_error_rates;
          Alcotest.test_case "expected sample size" `Quick
            test_sprt_expected_sample_size_positive;
        ] );
    ]
