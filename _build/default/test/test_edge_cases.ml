(* Boundary and degenerate-input behaviour across all libraries: the cases
   a downstream user will eventually hit (empty regions, certain and
   impossible faults, algorithm switch points, size-1 and word-boundary
   structures). *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:31415

(* ------------------------------------------------------------------ *)
(* numerics boundaries                                                 *)
(* ------------------------------------------------------------------ *)

let test_erf_switch_continuity () =
  (* the implementation switches from the series to the continued
     fraction at |x| = 1.5; the two branches must agree there *)
  let below = Numerics.Special.erf (1.5 -. 1e-9) in
  let above = Numerics.Special.erf (1.5 +. 1e-9) in
  Alcotest.(check bool) "continuous at the branch switch" true
    (abs_float (above -. below) < 1e-8);
  let below' = Numerics.Special.erfc (1.5 -. 1e-9) in
  let above' = Numerics.Special.erfc (1.5 +. 1e-9) in
  Alcotest.(check bool) "erfc continuous at the switch" true
    (abs_float (above' -. below') < 1e-8)

let test_normal_ppf_deep_tails () =
  List.iter
    (fun p ->
      let x = Numerics.Normal_dist.ppf p in
      Alcotest.(check bool) "finite deep-tail quantile" true (Float.is_finite x);
      check_close ~eps:(1e-4 *. p) "tail roundtrip" p (Numerics.Normal_dist.cdf x))
    [ 1e-10; 1e-14 ]

let test_rng_int_bound_one () =
  let rng = rng0 () in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 always 0" 0 (Numerics.Rng.int rng 1)
  done

let test_bitset_word_boundaries () =
  List.iter
    (fun size ->
      let b = Numerics.Bitset.create size in
      Numerics.Bitset.set b (size - 1);
      Alcotest.(check bool) "last bit set" true (Numerics.Bitset.mem b (size - 1));
      Alcotest.(check int) "cardinal 1" 1 (Numerics.Bitset.cardinal b);
      let c = Numerics.Bitset.copy b in
      Numerics.Bitset.clear c (size - 1);
      Alcotest.(check bool) "copy cleared independently" true
        (Numerics.Bitset.mem b (size - 1) && Numerics.Bitset.is_empty c))
    [ 1; 62; 63; 64; 65; 126; 127; 128 ]

let test_alias_extreme_weights () =
  let rng = rng0 () in
  let t = Numerics.Alias.create [| 1e-12; 1e12 |] in
  let ones = ref 0 in
  for _ = 1 to 10_000 do
    if Numerics.Alias.sample t rng = 1 then incr ones
  done;
  Alcotest.(check int) "dominant outcome always drawn" 10_000 !ones

let test_kahan_catastrophic_cancellation () =
  check_close ~eps:1e-6 "large-small-large" 1.0
    (Numerics.Kahan.sum_array [| 1e16; 1.0; -1e16 |])

let test_logsumexp_with_neg_infinity () =
  check_close ~eps:1e-12 "ignores impossible terms" 2.0
    (Numerics.Special.logsumexp [| neg_infinity; 2.0; neg_infinity |])

let test_poisson_extremes () =
  let rng = rng0 () in
  Alcotest.(check int) "lambda 0" 0 (Numerics.Sampler.poisson rng ~lambda:0.0);
  let big =
    Array.init 20_000 (fun _ ->
        float_of_int (Numerics.Sampler.poisson rng ~lambda:50.0))
  in
  check_close ~eps:0.5 "large-lambda splitting path" 50.0 (Numerics.Stats.mean big)

let test_histogram_single_bin () =
  let h = Numerics.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:1 in
  List.iter (Numerics.Histogram.add h) [ 0.0; 0.5; 1.0 ];
  Alcotest.(check int) "everything in the one bin" 3 (Numerics.Histogram.count h 0)

let test_grid_arange () =
  let a = Numerics.Grid.arange ~lo:0.0 ~hi:1.0 ~step:0.25 in
  Alcotest.(check int) "4 points strictly below hi" 4 (Array.length a);
  check_close "last point" 0.75 a.(3)

(* ------------------------------------------------------------------ *)
(* core boundaries                                                     *)
(* ------------------------------------------------------------------ *)

let test_certain_fault () =
  (* p = 1: every version contains the fault; diversity buys nothing for
     it (common with probability 1). *)
  let u = Core.Universe.of_pairs [ (1.0, 0.1); (0.2, 0.05) ] in
  check_close "P(N1=0) = 0" 0.0 (Core.Fault_count.p_n1_zero u);
  check_close "P(N2=0) = 0" 0.0 (Core.Fault_count.p_n2_zero u);
  check_close "risk ratio 1" 1.0 (Core.Fault_count.risk_ratio u);
  check_close "mu2 includes the certain fault"
    (0.1 +. (0.04 *. 0.05))
    (Core.Moments.mu2 u);
  let dist = Core.Pfd_dist.exact_single u in
  check_close "PFD never below q of the certain fault" 0.1
    (Core.Pfd_dist.quantile dist 0.0)

let test_impossible_fault () =
  let u = Core.Universe.of_pairs [ (0.0, 0.3); (0.2, 0.05) ] in
  check_close "impossible fault contributes nothing" (0.2 *. 0.05)
    (Core.Moments.mu1 u);
  let dist = Core.Pfd_dist.exact_single u in
  Alcotest.(check int) "support excludes the impossible fault" 2
    (Core.Pfd_dist.size dist)

let test_zero_measure_fault () =
  (* q = 0: the fault exists but can never fail — it affects N counts but
     not the PFD. *)
  let u = Core.Universe.of_pairs [ (0.5, 0.0); (0.2, 0.1) ] in
  Alcotest.(check bool) "P(N1>0) > P(Theta1>0)" true
    (Core.Fault_count.p_n1_pos u
    > Core.Pfd_dist.prob_positive (Core.Pfd_dist.exact_single u));
  check_close "mu1 ignores the null region" 0.02 (Core.Moments.mu1 u)

let test_all_faults_impossible () =
  let u = Core.Universe.of_pairs [ (0.0, 0.1); (0.0, 0.2) ] in
  let dist = Core.Pfd_dist.exact_single u in
  Alcotest.(check int) "point mass at zero" 1 (Core.Pfd_dist.size dist);
  check_close "mean 0" 0.0 (Core.Pfd_dist.mean dist);
  Alcotest.(check bool) "risk ratio undefined" true
    (Float.is_nan (Core.Fault_count.risk_ratio u))

let test_improvement_factor_zero () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ] in
  let perfect = Core.Improvement.apply_step u (Core.Improvement.Proportional 0.0) in
  check_close "perfect process: mu1 = 0" 0.0 (Core.Moments.mu1 perfect);
  check_close "P(N1=0) = 1" 1.0 (Core.Fault_count.p_n1_zero perfect)

let test_poisson_binomial_with_certain_faults () =
  let dist = Core.Fault_count.poisson_binomial [| 1.0; 1.0; 0.5 |] in
  check_close "P(0) = 0" 0.0 dist.(0);
  check_close "P(1) = 0" 0.0 dist.(1);
  check_close "P(2) = 0.5" 0.5 dist.(2);
  check_close "P(3) = 0.5" 0.5 dist.(3)

let test_grid_dist_with_null_region () =
  let u = Core.Universe.of_pairs [ (0.5, 0.0); (0.3, 0.2) ] in
  let g = Core.Pfd_dist.grid_single u ~bins:64 in
  check_close ~eps:1e-6 "grid handles zero-measure regions"
    (Core.Moments.mu1 u) (Core.Pfd_dist.mean g)

let test_sigma_ratio_extremes () =
  check_close "pmax 0" 0.0 (Core.Bounds.sigma_ratio_bound 0.0);
  check_close ~eps:1e-12 "pmax 1" (sqrt 2.0) (Core.Bounds.sigma_ratio_bound 1.0)

let test_degenerate_normal_bound () =
  (* all p = 1: sigma = 0, so mu + k sigma = mu without touching the CDF. *)
  let u = Core.Universe.homogeneous ~n:3 ~p:1.0 ~q:0.1 in
  check_close "bound collapses to the mean" 0.3
    (Core.Normal_approx.single_bound u ~k:2.33)

let test_voting_single_channel () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1) ] in
  let v = Core.Voting.create ~channels:1 ~required:1 in
  check_close "1oo1 defeat probability is p" 0.5
    (Core.Voting.fault_defeats_system v ~p:0.5);
  check_close "1oo1 mean is mu1" (Core.Moments.mu1 u) (Core.Voting.mu v u)

let test_estimator_fault_never_seen () =
  let obs = Core.Estimator.observe ~n_faults:3 [| [ 0 ]; [ 0 ] |] in
  let p = Core.Estimator.p_hat obs in
  check_close "unseen fault estimated 0" 0.0 p.(2);
  (* plug-in universe accepts the zero and the never-seen fault simply
     drops out of the predictions *)
  let u = Core.Estimator.plug_in_universe obs ~qs:[| 0.1; 0.1; 0.1 |] in
  check_close "plug-in mu1" 0.1 (Core.Moments.mu1 u)

(* ------------------------------------------------------------------ *)
(* demandspace / simulator boundaries                                  *)
(* ------------------------------------------------------------------ *)

let test_version_duplicate_faults () =
  let profile = Demandspace.Profile.uniform ~size:50 in
  let r = Demandspace.Region.interval ~space_size:50 ~lo:0 ~hi:4 in
  let space = Demandspace.Space.create ~profile ~faults:[| (r, 0.5) |] in
  let v = Demandspace.Version.create space [ 0; 0; 0 ] in
  Alcotest.(check (list int)) "duplicates collapse" [ 0 ]
    (Demandspace.Version.present_faults v);
  check_close "pfd counted once" 0.1 (Demandspace.Version.pfd v)

let test_certain_process_space () =
  let rng = rng0 () in
  let profile = Demandspace.Profile.uniform ~size:50 in
  let r = Demandspace.Region.interval ~space_size:50 ~lo:0 ~hi:4 in
  let space = Demandspace.Space.create ~profile ~faults:[| (r, 1.0) |] in
  for _ = 1 to 20 do
    let v = Simulator.Devteam.develop rng space in
    Alcotest.(check (list int)) "certain fault always present" [ 0 ]
      (Demandspace.Version.present_faults v)
  done

let test_runner_single_demand () =
  let rng = rng0 () in
  let profile = Demandspace.Profile.uniform ~size:10 in
  let r = Demandspace.Region.interval ~space_size:10 ~lo:0 ~hi:9 in
  let space = Demandspace.Space.create ~profile ~faults:[| (r, 1.0) |] in
  let v = Demandspace.Version.create space [ 0 ] in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" v)
      (Simulator.Channel.create ~name:"B" v)
  in
  let stats = Simulator.Runner.run rng ~system ~demand_count:1 in
  Alcotest.(check int) "one demand, one failure (pfd 1 system)" 1
    stats.Simulator.Runner.system_failures

let test_transform_size_one () =
  let t = Demandspace.Transform.identity 1 in
  Alcotest.(check int) "singleton space" 0 (Demandspace.Transform.apply t 0)

(* ------------------------------------------------------------------ *)
(* extensions boundaries                                               *)
(* ------------------------------------------------------------------ *)

let test_bayes_point_prior () =
  let t = Extensions.Bayes.of_mass [ (0.0, 1.0) ] in
  let post = Extensions.Bayes.observe_failure_free t ~demands:1_000_000 in
  check_close "perfect prior survives any failure-free run" 1.0
    (Extensions.Bayes.prob_at_most post 0.0);
  check_close "mean stays 0" 0.0 (Extensions.Bayes.mean post)

let test_correlated_cluster_bigger_than_universe () =
  let u = Core.Universe.of_pairs [ (0.3, 0.1); (0.2, 0.2) ] in
  (* cluster_size larger than n: one cluster holding everything. *)
  let m =
    Extensions.Correlated.of_universe_with_shock u ~cluster_size:10
      ~shock_prob:0.2 ~lift:1.5
  in
  Alcotest.(check int) "all faults in one cluster" 2
    (Extensions.Correlated.fault_count m);
  check_close ~eps:1e-12 "marginals preserved" (Core.Moments.mu1 u)
    (Extensions.Correlated.mu1 m)

let test_forced_extreme_processes () =
  let f =
    Extensions.Forced.create ~qs:[| 0.2 |] ~pa:[| 1.0 |] ~pb:[| 0.0 |]
  in
  check_close "a certain and an impossible process never share" 0.0
    (Extensions.Forced.mu_pair f);
  check_close "no common fault, certainly" 1.0
    (Extensions.Forced.p_no_common_fault f)

let test_testing_huge_campaign () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ] in
  let u' =
    Extensions.Testing_process.operational_testing u ~demands:10_000_000
  in
  Alcotest.(check bool) "long testing drives mu1 to ~0" true
    (Core.Moments.mu1 u' < 1e-30)

(* ------------------------------------------------------------------ *)
(* report / markdown                                                   *)
(* ------------------------------------------------------------------ *)

let test_markdown_table () =
  let t =
    Report.Table.of_rows ~title:"demo" ~headers:[ "a"; "b" ]
      [ [ "1"; "x|y" ] ]
  in
  let md = Report.Markdown.of_table t in
  let lines = String.split_on_char '\n' md in
  Alcotest.(check bool) "heading present" true (List.mem "### demo" lines);
  Alcotest.(check bool) "separator present" true (List.mem "|---|---|" lines);
  Alcotest.(check bool) "pipe escaped" true (List.mem "| 1 | x\\|y |" lines)

let test_markdown_code_block () =
  let cb = Report.Markdown.code_block ~language:"text" "fig" in
  Alcotest.(check string) "fenced" "```text\nfig\n```\n" cb

let () =
  Alcotest.run "edge-cases"
    [
      ( "numerics",
        [
          Alcotest.test_case "erf switch continuity" `Quick test_erf_switch_continuity;
          Alcotest.test_case "normal deep tails" `Quick test_normal_ppf_deep_tails;
          Alcotest.test_case "rng bound one" `Quick test_rng_int_bound_one;
          Alcotest.test_case "bitset word boundaries" `Quick
            test_bitset_word_boundaries;
          Alcotest.test_case "alias extreme weights" `Quick test_alias_extreme_weights;
          Alcotest.test_case "kahan cancellation" `Quick
            test_kahan_catastrophic_cancellation;
          Alcotest.test_case "logsumexp -inf" `Quick test_logsumexp_with_neg_infinity;
          Alcotest.test_case "poisson extremes" `Slow test_poisson_extremes;
          Alcotest.test_case "histogram single bin" `Quick test_histogram_single_bin;
          Alcotest.test_case "grid arange" `Quick test_grid_arange;
        ] );
      ( "core",
        [
          Alcotest.test_case "certain fault" `Quick test_certain_fault;
          Alcotest.test_case "impossible fault" `Quick test_impossible_fault;
          Alcotest.test_case "zero-measure fault" `Quick test_zero_measure_fault;
          Alcotest.test_case "all faults impossible" `Quick test_all_faults_impossible;
          Alcotest.test_case "factor-zero improvement" `Quick
            test_improvement_factor_zero;
          Alcotest.test_case "poisson-binomial certain faults" `Quick
            test_poisson_binomial_with_certain_faults;
          Alcotest.test_case "grid with null region" `Quick
            test_grid_dist_with_null_region;
          Alcotest.test_case "sigma ratio extremes" `Quick test_sigma_ratio_extremes;
          Alcotest.test_case "degenerate normal bound" `Quick
            test_degenerate_normal_bound;
          Alcotest.test_case "voting single channel" `Quick test_voting_single_channel;
          Alcotest.test_case "estimator unseen fault" `Quick
            test_estimator_fault_never_seen;
        ] );
      ( "demandspace-simulator",
        [
          Alcotest.test_case "duplicate faults" `Quick test_version_duplicate_faults;
          Alcotest.test_case "certain process" `Quick test_certain_process_space;
          Alcotest.test_case "single demand run" `Quick test_runner_single_demand;
          Alcotest.test_case "transform size one" `Quick test_transform_size_one;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "point prior" `Quick test_bayes_point_prior;
          Alcotest.test_case "oversized cluster" `Quick
            test_correlated_cluster_bigger_than_universe;
          Alcotest.test_case "extreme forced processes" `Quick
            test_forced_extreme_processes;
          Alcotest.test_case "huge test campaign" `Quick test_testing_huge_campaign;
        ] );
      ( "report",
        [
          Alcotest.test_case "markdown table" `Quick test_markdown_table;
          Alcotest.test_case "markdown code block" `Quick test_markdown_code_block;
        ] );
    ]
