(* Integration tests: cross-library consistency of the full pipeline
   (demand space -> abstract model -> simulator -> inference), plus smoke
   tests of the experiment registry and report rendering. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:10101

(* ------------------------------------------------------------------ *)
(* Space -> universe -> distributions -> simulator consistency         *)
(* ------------------------------------------------------------------ *)

let test_space_universe_el_consistency () =
  (* On a disjoint space, three independent computations of E(Theta_1)
     must agree: the abstract model's moments, the EL difficulty-function
     integral, and the exact PFD distribution's mean. *)
  let rng = rng0 () in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:32 ~height:32 ~n_faults:12
      ~max_extent:4 ~p_lo:0.05 ~p_hi:0.5
      ~profile:(Demandspace.Profile.uniform ~size:(32 * 32))
  in
  let u = Demandspace.Space.to_universe space in
  let mu1_model = Core.Moments.mu1 u in
  let mu1_el = Baselines.Eckhardt_lee.mean_single space in
  let mu1_dist = Core.Pfd_dist.mean (Core.Pfd_dist.exact_single u) in
  check_close ~eps:1e-10 "model vs EL" mu1_model mu1_el;
  check_close ~eps:1e-10 "model vs exact dist" mu1_model mu1_dist;
  let mu2_model = Core.Moments.mu2 u in
  check_close ~eps:1e-10 "pair: model vs EL" mu2_model
    (Baselines.Eckhardt_lee.mean_pair space);
  check_close ~eps:1e-10 "pair: model vs exact dist" mu2_model
    (Core.Pfd_dist.mean (Core.Pfd_dist.exact_pair u))

let test_develop_and_operate_matches_model () =
  (* Full stack: develop a pair of versions over a zipf profile, build the
     1-out-of-2 system, run operational demands; the observed failure rate
     must match the set-intersection PFD, and over many replications its
     average must approach mu2. *)
  let rng = rng0 () in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:24 ~height:24 ~n_faults:8
      ~max_extent:5 ~p_lo:0.2 ~p_hi:0.6
      ~profile:(Demandspace.Profile.zipf ~size:(24 * 24) ~exponent:0.7)
  in
  let va, vb = Simulator.Devteam.develop_pair rng space in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" va)
      (Simulator.Channel.create ~name:"B" vb)
  in
  let truth = Simulator.Protection.true_pfd system in
  check_close ~eps:1e-12 "protection pfd = version pair pfd"
    (Demandspace.Version.pair_pfd va vb)
    truth;
  let stats = Simulator.Runner.run rng ~system ~demand_count:150_000 in
  let lo, hi = stats.Simulator.Runner.pfd_ci in
  Alcotest.(check bool) "operational estimate brackets the truth" true
    (lo <= truth +. 1e-9 && truth <= hi +. 1e-9)

let test_montecarlo_matches_fault_count () =
  let rng = rng0 () in
  let u =
    Core.Universe.uniform_random rng ~n:10 ~p_lo:0.05 ~p_hi:0.4 ~total_q:0.6
  in
  let est = Simulator.Montecarlo.estimate rng u ~replications:40_000 in
  check_close ~eps:0.02 "simulated risk ratio matches eq. (10)"
    (Core.Fault_count.risk_ratio u)
    est.Simulator.Montecarlo.risk_ratio;
  check_close ~eps:0.01 "simulated P(N2>0)"
    (Core.Fault_count.p_n2_pos u)
    est.Simulator.Montecarlo.p_n2_pos

let test_exact_distribution_vs_simulation_quantiles () =
  let rng = rng0 () in
  let u =
    Core.Universe.uniform_random rng ~n:12 ~p_lo:0.05 ~p_hi:0.5 ~total_q:0.7
  in
  let dist = Core.Pfd_dist.exact_single u in
  let est = Simulator.Montecarlo.estimate rng u ~replications:40_000 in
  List.iter
    (fun alpha ->
      let exact = Core.Pfd_dist.quantile dist alpha in
      let simulated = Simulator.Montecarlo.quantile_theta1 est alpha in
      if abs_float (exact -. simulated) > 0.05 then
        Alcotest.fail
          (Printf.sprintf "q%.2f mismatch: exact %g vs simulated %g" alpha
             exact simulated))
    [ 0.25; 0.5; 0.75; 0.9 ]

let test_bayes_prior_from_simulation_consistent () =
  (* A prior assembled from simulated pair PFDs should lead to posterior
     conclusions close to the exact-distribution prior. *)
  let rng = rng0 () in
  let u =
    Core.Universe.uniform_random rng ~n:10 ~p_lo:0.01 ~p_hi:0.2 ~total_q:0.02
  in
  let exact_prior = Extensions.Bayes.of_pfd_dist (Core.Pfd_dist.exact_pair u) in
  let est = Simulator.Montecarlo.estimate rng u ~replications:30_000 in
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      Hashtbl.replace counts x
        (1 + (try Hashtbl.find counts x with Not_found -> 0)))
    est.Simulator.Montecarlo.theta2_samples;
  let empirical_prior =
    Extensions.Bayes.of_mass
      (Hashtbl.fold (fun x c acc -> (x, float_of_int c) :: acc) counts [])
  in
  let bound = 2e-3 in
  let demands = 500 in
  let p_exact =
    Extensions.Bayes.prob_at_most
      (Extensions.Bayes.observe_failure_free exact_prior ~demands)
      bound
  in
  let p_emp =
    Extensions.Bayes.prob_at_most
      (Extensions.Bayes.observe_failure_free empirical_prior ~demands)
      bound
  in
  check_close ~eps:0.02 "posterior confidence agrees" p_exact p_emp

let test_overlap_el_vs_merged () =
  (* After merging overlapping regions the additive model becomes exact
     again: its mu1 must equal the EL integral on the original space. *)
  let rng = rng0 () in
  let space =
    Demandspace.Genspace.overlapping_space rng ~width:24 ~height:24 ~n_faults:8
      ~max_extent:6 ~p_lo:0.2 ~p_hi:0.6
      ~profile:(Demandspace.Profile.uniform ~size:(24 * 24))
  in
  let merged = Extensions.Overlap.merged_universe space in
  (* Every demand's covering faults all live in one connected overlap
     group, and the merged fault's presence event ("any member present")
     contains the exact failure event there, so the merged universe is a
     sound pessimistic abstraction of the version mean. (It is NOT below
     the additive mean in general: a group member's probability mass is
     smeared over the whole union region.) *)
  let a = Extensions.Overlap.analyse space in
  let merged_mu1 = Core.Moments.mu1 merged in
  Alcotest.(check bool) "merged mu1 covers the exact mean" true
    (merged_mu1 >= a.Extensions.Overlap.exact_mu1 -. 1e-9)

let test_correlated_reduces_to_core_via_montecarlo () =
  (* The correlated sampler with zero shock is another route to the same
     development process as Devteam: their Monte Carlo risk ratios agree. *)
  let rng = rng0 () in
  let u = Core.Universe.of_pairs [ (0.3, 0.1); (0.2, 0.2); (0.4, 0.05) ] in
  let m =
    Extensions.Correlated.of_universe_with_shock u ~cluster_size:3
      ~shock_prob:0.0 ~lift:1.5
  in
  let n = 40_000 in
  let some = ref 0 in
  for _ = 1 to n do
    if Extensions.Correlated.sample_version rng m <> [] then incr some
  done;
  check_close ~eps:0.01 "correlated sampler matches fault-count model"
    (Core.Fault_count.p_n1_pos u)
    (float_of_int !some /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Experiment registry and report smoke tests                          *)
(* ------------------------------------------------------------------ *)

let test_registry_complete () =
  Alcotest.(check int) "31 experiments registered" 31
    (List.length Experiments.Registry.all);
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.fail ("missing experiment " ^ id))
    [ "E01"; "e04"; "E13"; "E21" ]

let test_fast_experiments_run () =
  (* The cheap analytic experiments must produce non-empty output. *)
  List.iter
    (fun id ->
      match Experiments.Registry.find id with
      | None -> Alcotest.fail ("missing " ^ id)
      | Some e ->
          let out = e.Experiments.Experiment.run ~seed:7 in
          Alcotest.(check bool)
            (id ^ " produces tables")
            true
            (out.Experiments.Experiment.tables <> []))
    [ "E01"; "E02"; "E04"; "E10"; "E11"; "E19" ]

let test_table_rendering () =
  let t =
    Report.Table.of_rows ~title:"t" ~headers:[ "a"; "b" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let rendered = Report.Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length rendered > 0
    &&
    let lines = String.split_on_char '\n' rendered in
    List.exists (fun l -> l = "== t ==") lines);
  Alcotest.check_raises "row width mismatch"
    (Invalid_argument "Table.add_row: cell count does not match header count")
    (fun () -> ignore (Report.Table.add_row t [ "only one" ]))

let test_asciiplot_rendering () =
  let s =
    Report.Asciiplot.series ~label:"x^2"
      (Array.init 10 (fun i ->
           let x = float_of_int i in
           (x, x *. x)))
  in
  let rendered = Report.Asciiplot.render ~title:"parabola" [ s ] in
  Alcotest.(check bool) "mentions title" true
    (String.length rendered > 0
    && String.sub rendered 0 3 = "-- ");
  Alcotest.(check bool) "mentions legend" true
    (let lines = String.split_on_char '\n' rendered in
     List.exists (fun l -> String.length l > 0 && String.ends_with ~suffix:"x^2" l) lines)

let test_experiment_output_rendering () =
  let out =
    Experiments.Experiment.output
      ~tables:
        [ Report.Table.of_rows ~title:"x" ~headers:[ "h" ] [ [ "v" ] ] ]
      ~notes:[ "a note" ] ()
  in
  let s = Experiments.Experiment.render_output out in
  Alcotest.(check bool) "table rendered" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "note: a note") lines)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "space/universe/EL/dist agree" `Quick
            test_space_universe_el_consistency;
          Alcotest.test_case "develop-and-operate" `Slow
            test_develop_and_operate_matches_model;
          Alcotest.test_case "montecarlo vs fault_count" `Slow
            test_montecarlo_matches_fault_count;
          Alcotest.test_case "exact vs simulated quantiles" `Slow
            test_exact_distribution_vs_simulation_quantiles;
          Alcotest.test_case "bayes prior from simulation" `Slow
            test_bayes_prior_from_simulation_consistent;
          Alcotest.test_case "overlap merged universe" `Quick test_overlap_el_vs_merged;
          Alcotest.test_case "correlated zero-shock sampler" `Slow
            test_correlated_reduces_to_core_via_montecarlo;
        ] );
      ( "harness",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "fast experiments run" `Quick test_fast_experiments_run;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
          Alcotest.test_case "asciiplot rendering" `Quick test_asciiplot_rendering;
          Alcotest.test_case "experiment output" `Quick test_experiment_output_rendering;
        ] );
    ]
