(* Tests for the operational campaign and fleet modules. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:20240

let make_space () =
  let profile = Demandspace.Profile.uniform ~size:200 in
  let r1 = Demandspace.Region.interval ~space_size:200 ~lo:0 ~hi:19 in
  let r2 = Demandspace.Region.interval ~space_size:200 ~lo:50 ~hi:59 in
  let r3 = Demandspace.Region.points ~space_size:200 [ 100; 150 ] in
  Demandspace.Space.create ~profile
    ~faults:[| (r1, 0.4); (r2, 0.25); (r3, 0.6) |]

let fixed_system faults_a faults_b =
  let space = make_space () in
  Simulator.Protection.one_out_of_two
    (Simulator.Channel.create ~name:"A" (Demandspace.Version.create space faults_a))
    (Simulator.Channel.create ~name:"B" (Demandspace.Version.create space faults_b))

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let test_perfect_system_survives () =
  let rng = rng0 () in
  let system = fixed_system [] [] in
  match
    Simulator.Campaign.time_to_first_failure rng ~system ~max_demands:10_000
  with
  | Simulator.Campaign.Survived -> ()
  | Simulator.Campaign.Failed_at t ->
      Alcotest.fail (Printf.sprintf "perfect system failed at %d" t)

let test_mttf_geometric () =
  let rng = rng0 () in
  (* common fault 0: pfd = 0.1, so E[T] = 10. *)
  let system = fixed_system [ 0 ] [ 0 ] in
  let est =
    Simulator.Campaign.estimate_mttf rng ~system ~missions:5_000
      ~max_demands:100_000
  in
  Alcotest.(check int) "no censoring with short MTTF" 0
    est.Simulator.Campaign.censored;
  check_close ~eps:0.5 "MTTF ~ 1/pfd" 10.0
    est.Simulator.Campaign.mean_time_to_failure;
  check_close ~eps:0.005 "failure rate ~ pfd" 0.1
    est.Simulator.Campaign.failure_rate

let test_mttf_theory () =
  check_close "theoretical MTTF" 1000.0
    (Simulator.Campaign.theoretical_mttf ~pfd:1e-3);
  Alcotest.(check bool) "perfect system: infinite" true
    (Simulator.Campaign.theoretical_mttf ~pfd:0.0 = infinity)

let test_mission_survival_formula () =
  check_close ~eps:1e-12 "survival closed form"
    (0.999 ** 500.0)
    (Simulator.Campaign.mission_survival_probability ~pfd:1e-3
       ~mission_demands:500);
  check_close "zero-length mission" 1.0
    (Simulator.Campaign.mission_survival_probability ~pfd:0.5 ~mission_demands:0)

let test_mission_survival_simulated () =
  let rng = rng0 () in
  let system = fixed_system [ 0 ] [ 0 ] in
  let pfd = Simulator.Protection.true_pfd system in
  let simulated =
    Simulator.Campaign.simulate_mission_survival rng ~system
      ~mission_demands:10 ~missions:20_000
  in
  check_close ~eps:0.01 "simulated survival matches geometric law"
    (Simulator.Campaign.mission_survival_probability ~pfd ~mission_demands:10)
    simulated

let test_compare_architectures () =
  let rng = rng0 () in
  let space = make_space () in
  let reports =
    Simulator.Campaign.compare_architectures rng space
      ~architectures:[ ("single", 1, 1); ("1oo2", 2, 1) ]
      ~missions:50 ~max_demands:2_000
  in
  Alcotest.(check int) "one report per architecture" 2 (List.length reports);
  List.iter
    (fun (r : Simulator.Campaign.architecture_report) ->
      let m = r.simulated_mttf in
      Alcotest.(check int) "missions accounted for" 50
        (m.Simulator.Campaign.failures + m.Simulator.Campaign.censored))
    reports

(* ------------------------------------------------------------------ *)
(* Fleet                                                               *)
(* ------------------------------------------------------------------ *)

let test_fleet_deploy_and_observe () =
  let rng = rng0 () in
  let space = make_space () in
  let systems = Simulator.Fleet.deploy_pairs rng space ~plants:30 in
  Alcotest.(check int) "fleet size" 30 (Array.length systems);
  let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant:500 in
  Alcotest.(check int) "observed size" 30 (Simulator.Fleet.size fleet);
  Array.iter
    (fun r ->
      Alcotest.(check int) "demands recorded" 500 r.Simulator.Fleet.demands;
      if r.Simulator.Fleet.failures < 0 then Alcotest.fail "negative count")
    (Simulator.Fleet.records fleet)

let test_fleet_pooled_rate_matches_mu () =
  let rng = rng0 () in
  let space = make_space () in
  let u = Demandspace.Space.to_universe space in
  let systems = Simulator.Fleet.deploy_pairs rng space ~plants:300 in
  let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant:5_000 in
  check_close ~eps:0.005 "pooled rate ~ mu2" (Core.Moments.mu2 u)
    (Simulator.Fleet.pooled_rate fleet)

let test_fleet_moment_recovery () =
  let rng = rng0 () in
  let space = make_space () in
  let u = Demandspace.Space.to_universe space in
  let systems = Simulator.Fleet.deploy_singles rng space ~plants:500 in
  let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant:20_000 in
  let mu_hat, var_hat = Simulator.Fleet.estimate_pfd_moments fleet in
  check_close ~eps:0.005 "MoM mean" (Core.Moments.mu1 u) mu_hat;
  check_close ~eps:0.01 "MoM sigma" (Core.Moments.sigma1 u) (sqrt var_hat)

let test_fleet_homogeneous_not_overdispersed () =
  (* Every plant gets the SAME system: counts are plain binomial, so the
     overdispersion index should sit near 1. *)
  let rng = rng0 () in
  let system = fixed_system [ 0 ] [ 0 ] in
  let systems = Array.make 300 system in
  let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant:2_000 in
  let d = Simulator.Fleet.dispersion fleet in
  Alcotest.(check bool)
    (Printf.sprintf "overdispersion ~ 1 (got %g)" d.Simulator.Fleet.overdispersion)
    true
    (d.Simulator.Fleet.overdispersion > 0.7
    && d.Simulator.Fleet.overdispersion < 1.3)

let test_fleet_heterogeneous_overdispersed () =
  let rng = rng0 () in
  let space = make_space () in
  let systems = Simulator.Fleet.deploy_singles rng space ~plants:300 in
  let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant:2_000 in
  let d = Simulator.Fleet.dispersion fleet in
  Alcotest.(check bool) "overdispersion clearly above 1" true
    (d.Simulator.Fleet.overdispersion > 2.0)

let test_fleet_validation () =
  let rng = rng0 () in
  Alcotest.check_raises "zero plants"
    (Invalid_argument "Fleet.deploy_pairs: plants must be positive") (fun () ->
      ignore (Simulator.Fleet.deploy_pairs rng (make_space ()) ~plants:0))

let () =
  Alcotest.run "campaign-fleet"
    [
      ( "campaign",
        [
          Alcotest.test_case "perfect system survives" `Quick
            test_perfect_system_survives;
          Alcotest.test_case "MTTF geometric" `Slow test_mttf_geometric;
          Alcotest.test_case "MTTF theory" `Quick test_mttf_theory;
          Alcotest.test_case "survival formula" `Quick test_mission_survival_formula;
          Alcotest.test_case "survival simulated" `Slow test_mission_survival_simulated;
          Alcotest.test_case "compare architectures" `Quick test_compare_architectures;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deploy and observe" `Quick test_fleet_deploy_and_observe;
          Alcotest.test_case "pooled rate" `Slow test_fleet_pooled_rate_matches_mu;
          Alcotest.test_case "moment recovery" `Slow test_fleet_moment_recovery;
          Alcotest.test_case "homogeneous fleet" `Slow
            test_fleet_homogeneous_not_overdispersed;
          Alcotest.test_case "heterogeneous fleet" `Slow
            test_fleet_heterogeneous_overdispersed;
          Alcotest.test_case "validation" `Quick test_fleet_validation;
        ] );
    ]
