(* Tests for the voted-architecture model, the incomplete-beta numerics
   behind it, parameter estimation, the testing-process extension, and the
   Beta-prior comparator. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:555

let tiny () = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ]

(* ------------------------------------------------------------------ *)
(* Betainc                                                             *)
(* ------------------------------------------------------------------ *)

let test_betainc_known_values () =
  (* I_x(1,1) = x *)
  check_close ~eps:1e-12 "I_x(1,1) = x" 0.37
    (Numerics.Betainc.regularized ~a:1.0 ~b:1.0 0.37);
  (* I_x(2,2) = x^2 (3 - 2x) *)
  let x = 0.3 in
  check_close ~eps:1e-12 "I_x(2,2)" (x *. x *. (3.0 -. (2.0 *. x)))
    (Numerics.Betainc.regularized ~a:2.0 ~b:2.0 x);
  check_close "endpoints 0" 0.0 (Numerics.Betainc.regularized ~a:3.0 ~b:4.0 0.0);
  check_close "endpoints 1" 1.0 (Numerics.Betainc.regularized ~a:3.0 ~b:4.0 1.0)

let test_betainc_symmetry () =
  List.iter
    (fun (a, b, x) ->
      check_close ~eps:1e-12 "I_x(a,b) = 1 - I_{1-x}(b,a)"
        (1.0 -. Numerics.Betainc.regularized ~a:b ~b:a (1.0 -. x))
        (Numerics.Betainc.regularized ~a ~b x))
    [ (2.0, 5.0, 0.1); (0.5, 0.5, 0.7); (10.0, 3.0, 0.9); (1.5, 8.0, 0.25) ]

let test_betainc_binomial_identity () =
  (* binomial_cdf via the beta identity must match direct summation. *)
  List.iter
    (fun (n, p, k) ->
      check_close ~eps:1e-12
        (Printf.sprintf "binomial tail n=%d p=%g k=%d" n p k)
        (Numerics.Betainc.binomial_tail_direct ~n ~p k)
        (Numerics.Betainc.binomial_sf ~n ~p (k - 1)))
    [ (10, 0.3, 4); (3, 0.5, 2); (20, 0.05, 1); (7, 0.9, 7); (5, 0.2, 0) ]

let test_beta_ppf_roundtrip () =
  List.iter
    (fun p ->
      check_close ~eps:1e-9 "cdf(ppf(p)) = p" p
        (Numerics.Betainc.beta_cdf ~a:2.5 ~b:7.0
           (Numerics.Betainc.beta_ppf ~a:2.5 ~b:7.0 p)))
    [ 0.01; 0.25; 0.5; 0.9; 0.999 ]

let test_betainc_validation () =
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Betainc.regularized: shapes must be positive") (fun () ->
      ignore (Numerics.Betainc.regularized ~a:0.0 ~b:1.0 0.5));
  Alcotest.check_raises "bad x"
    (Invalid_argument "Betainc.regularized: x outside [0, 1]") (fun () ->
      ignore (Numerics.Betainc.regularized ~a:1.0 ~b:1.0 1.5))

(* ------------------------------------------------------------------ *)
(* Voting                                                              *)
(* ------------------------------------------------------------------ *)

let test_voting_recovers_paper_model () =
  let u = tiny () in
  check_close ~eps:1e-12 "1oo1 = mu1" (Core.Moments.mu1 u)
    (Core.Voting.mu (Core.Voting.create ~channels:1 ~required:1) u);
  check_close ~eps:1e-12 "1oo2 = mu2" (Core.Moments.mu2 u)
    (Core.Voting.mu Core.Voting.one_out_of_two u);
  check_close ~eps:1e-12 "1oo3 = mu_n 3" (Core.Moments.mu_n u ~channels:3)
    (Core.Voting.mu (Core.Voting.create ~channels:3 ~required:1) u);
  check_close ~eps:1e-12 "1oo2 sigma" (Core.Moments.sigma2 u)
    (Core.Voting.sigma Core.Voting.one_out_of_two u)

let test_voting_defeat_probability () =
  (* 2oo3: defeated when >= 2 of 3 channels have the fault:
     3p^2(1-p) + p^3. *)
  let p = 0.3 in
  check_close ~eps:1e-12 "2oo3 defeat probability"
    ((3.0 *. p *. p *. (1.0 -. p)) +. (p ** 3.0))
    (Core.Voting.fault_defeats_system Core.Voting.two_out_of_three ~p);
  (* 1oo2: p^2. *)
  check_close ~eps:1e-12 "1oo2 defeat probability" (p *. p)
    (Core.Voting.fault_defeats_system Core.Voting.one_out_of_two ~p)

let test_voting_ordering () =
  let u = tiny () in
  let mu v = Core.Voting.mu v u in
  Alcotest.(check bool) "1oo3 < 1oo2 < 2oo3 < 1oo1" true
    (mu (Core.Voting.create ~channels:3 ~required:1)
     < mu Core.Voting.one_out_of_two
    && mu Core.Voting.one_out_of_two < mu Core.Voting.two_out_of_three
    && mu Core.Voting.two_out_of_three
       < mu (Core.Voting.create ~channels:1 ~required:1))

let test_voting_dist_consistency () =
  let u = tiny () in
  let v = Core.Voting.two_out_of_three in
  let dist = Core.Voting.pfd_dist v u in
  check_close ~eps:1e-12 "dist mean = analytic mu" (Core.Voting.mu v u)
    (Core.Pfd_dist.mean dist);
  check_close ~eps:1e-12 "dist variance = analytic var" (Core.Voting.var v u)
    (Core.Pfd_dist.variance dist);
  check_close ~eps:1e-12 "P(positive) = P(some system fault)"
    (Core.Voting.p_some_system_fault v u)
    (Core.Pfd_dist.prob_positive dist)

let test_voting_validation () =
  Alcotest.check_raises "required > channels"
    (Invalid_argument "Voting.create: required must lie in [1, channels]")
    (fun () -> ignore (Core.Voting.create ~channels:2 ~required:3))

let test_voting_simulator_agreement () =
  (* The analytic voted model vs the executable adjudicator on a concrete
     space: exact per-system PFD, averaged over sampled developments. *)
  let rng = rng0 () in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:20 ~height:20 ~n_faults:6
      ~max_extent:4 ~p_lo:0.2 ~p_hi:0.5
      ~profile:(Demandspace.Profile.uniform ~size:400)
  in
  let u = Demandspace.Space.to_universe space in
  let acc = Numerics.Welford.create () in
  for _ = 1 to 4000 do
    let mk () =
      Simulator.Channel.create ~name:"c" (Simulator.Devteam.develop rng space)
    in
    let system = Simulator.Protection.voted ~required:2 [ mk (); mk (); mk () ] in
    Numerics.Welford.add acc (Simulator.Protection.true_pfd system)
  done;
  check_close ~eps:0.004 "2oo3 simulated mean PFD"
    (Core.Voting.mu Core.Voting.two_out_of_three u)
    (Numerics.Welford.mean acc)

let test_adjudicator_m_out_of_n () =
  let open Simulator in
  let adj = Adjudicator.m_out_of_n ~required:2 in
  Alcotest.(check bool) "2 votes suffice" true
    (Adjudicator.combine adj
       Channel.[ Shutdown; Shutdown; No_action ]
    = Channel.Shutdown);
  Alcotest.(check bool) "1 vote fails" true
    (Adjudicator.combine adj
       Channel.[ Shutdown; No_action; No_action ]
    = Channel.No_action);
  Alcotest.check_raises "too few channels"
    (Invalid_argument "Adjudicator.combine: more votes required than channels")
    (fun () -> ignore (Adjudicator.combine adj [ Channel.Shutdown ]))

(* ------------------------------------------------------------------ *)
(* Estimator                                                           *)
(* ------------------------------------------------------------------ *)

let test_estimator_p_hat () =
  let obs =
    Core.Estimator.observe ~n_faults:3
      [| [ 0 ]; [ 0; 1 ]; []; [ 0; 1; 2 ] |]
  in
  Alcotest.(check int) "version count" 4 (Core.Estimator.version_count obs);
  Alcotest.(check (array int)) "occurrence counts" [| 3; 2; 1 |]
    (Core.Estimator.occurrence_counts obs);
  let p = Core.Estimator.p_hat obs in
  check_close "p0" 0.75 p.(0);
  check_close "p1" 0.5 p.(1);
  check_close "p2" 0.25 p.(2);
  check_close "pmax hat" 0.75 (Core.Estimator.pmax_hat obs);
  Alcotest.(check bool) "pmax upper exceeds hat" true
    (Core.Estimator.pmax_upper obs > 0.75)

let test_estimator_consistency () =
  (* With many observed versions the estimates converge to the truth. *)
  let rng = rng0 () in
  let truth = tiny () in
  let versions =
    Array.init 20_000 (fun _ -> Simulator.Devteam.sample_fault_set rng truth)
  in
  let obs = Core.Estimator.observe ~n_faults:2 versions in
  let p = Core.Estimator.p_hat obs in
  check_close ~eps:0.01 "p0 converges" 0.5 p.(0);
  check_close ~eps:0.01 "p1 converges" 0.2 p.(1);
  let u = Core.Estimator.plug_in_universe obs ~qs:(Core.Universe.qs truth) in
  check_close ~eps:0.01 "plug-in risk ratio" (Core.Fault_count.risk_ratio truth)
    (Core.Fault_count.risk_ratio u)

let test_estimator_bootstrap_interval () =
  let rng = rng0 () in
  let truth = tiny () in
  let versions =
    Array.init 100 (fun _ -> Simulator.Devteam.sample_fault_set rng truth)
  in
  let obs = Core.Estimator.observe ~n_faults:2 versions in
  let pred =
    Core.Estimator.predict_risk_ratio rng obs ~qs:(Core.Universe.qs truth)
  in
  Alcotest.(check bool) "interval ordered" true
    (pred.Core.Estimator.ci_low <= pred.Core.Estimator.point
    && pred.Core.Estimator.point <= pred.Core.Estimator.ci_high);
  Alcotest.(check bool) "interval non-degenerate" true
    (pred.Core.Estimator.ci_high > pred.Core.Estimator.ci_low)

let test_estimator_validation () =
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Estimator.observe: no versions observed") (fun () ->
      ignore (Core.Estimator.observe ~n_faults:2 [||]));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Estimator.observe: fault index out of range") (fun () ->
      ignore (Core.Estimator.observe ~n_faults:2 [| [ 5 ] |]))

(* ------------------------------------------------------------------ *)
(* Testing process                                                     *)
(* ------------------------------------------------------------------ *)

let test_testing_zero_demands_is_identity () =
  let u = tiny () in
  let u' = Extensions.Testing_process.operational_testing u ~demands:0 in
  check_close "mu1 unchanged" (Core.Moments.mu1 u) (Core.Moments.mu1 u')

let test_testing_scrubs_big_regions_faster () =
  let u = tiny () in
  (* fault 1 has q = 0.3, fault 0 has q = 0.1: after testing the big-region
     fault's probability falls more. *)
  let u' = Extensions.Testing_process.operational_testing u ~demands:10 in
  let p = Core.Universe.ps u' in
  check_close ~eps:1e-12 "fault 0 survival" (0.5 *. (0.9 ** 10.0)) p.(0);
  check_close ~eps:1e-12 "fault 1 survival" (0.2 *. (0.7 ** 10.0)) p.(1);
  Alcotest.(check bool) "relative reduction larger for big region" true
    (p.(1) /. 0.2 < p.(0) /. 0.5)

let test_testing_monotone_reliability () =
  let u = tiny () in
  let prev = ref infinity in
  List.iter
    (fun t ->
      let mu = Core.Moments.mu1 (Extensions.Testing_process.operational_testing u ~demands:t) in
      Alcotest.(check bool) "mu1 falls with testing" true (mu <= !prev +. 1e-15);
      prev := mu)
    [ 0; 1; 10; 100; 1000 ]

let test_directed_testing () =
  let u = tiny () in
  let u' =
    Extensions.Testing_process.directed_testing u ~detection:[| 0.5; 0.0 |]
      ~cycles:2
  in
  let p = Core.Universe.ps u' in
  check_close "detected fault shrinks" (0.5 *. 0.25) p.(0);
  check_close "undetected fault untouched" 0.2 p.(1)

let test_testing_trajectory () =
  let u = tiny () in
  let traj =
    Extensions.Testing_process.trajectory u ~k:2.33
      ~demand_counts:[| 0; 10; 100 |]
  in
  Alcotest.(check int) "points" 3 (Array.length traj);
  check_close ~eps:1e-12 "t=0 is the base universe"
    (Core.Fault_count.risk_ratio u)
    traj.(0).Extensions.Testing_process.risk_ratio

(* ------------------------------------------------------------------ *)
(* Beta prior                                                          *)
(* ------------------------------------------------------------------ *)

let test_beta_prior_conjugacy () =
  let prior = Extensions.Beta_prior.create ~a:2.0 ~b:8.0 in
  let post = Extensions.Beta_prior.observe prior ~demands:10 ~failures:3 in
  check_close "posterior a" 5.0 (Extensions.Beta_prior.a post);
  check_close "posterior b" 15.0 (Extensions.Beta_prior.b post);
  check_close ~eps:1e-12 "posterior mean" 0.25 (Extensions.Beta_prior.mean post)

let test_beta_prior_uniform_update () =
  (* Uniform prior + t failure-free demands: P(theta <= x) = 1-(1-x)^(t+1). *)
  let post =
    Extensions.Beta_prior.observe_failure_free Extensions.Beta_prior.uniform
      ~demands:100
  in
  let x = 0.01 in
  check_close ~eps:1e-10 "closed-form posterior CDF"
    (1.0 -. ((1.0 -. x) ** 101.0))
    (Extensions.Beta_prior.prob_at_most post x)

let test_beta_prior_moment_match () =
  let u = tiny () in
  let dist = Core.Pfd_dist.exact_pair u in
  let matched = Extensions.Beta_prior.moment_matched dist in
  check_close ~eps:1e-10 "mean matched" (Core.Pfd_dist.mean dist)
    (Extensions.Beta_prior.mean matched)

let test_beta_prior_demands_for_confidence () =
  match
    Extensions.Beta_prior.demands_for_confidence Extensions.Beta_prior.uniform
      ~bound:1e-2 ~confidence:0.95 ~max_demands:10_000
  with
  | None -> Alcotest.fail "reachable"
  | Some d ->
      (* closed form: smallest t with 1-(1-x)^(t+1) >= 0.95 *)
      let expected =
        int_of_float (Float.ceil (log 0.05 /. Numerics.Special.log1p (-0.01))) - 1
      in
      Alcotest.(check int) "matches closed form" expected d

let () =
  Alcotest.run "voting-estimation"
    [
      ( "betainc",
        [
          Alcotest.test_case "known values" `Quick test_betainc_known_values;
          Alcotest.test_case "symmetry" `Quick test_betainc_symmetry;
          Alcotest.test_case "binomial identity" `Quick test_betainc_binomial_identity;
          Alcotest.test_case "ppf roundtrip" `Quick test_beta_ppf_roundtrip;
          Alcotest.test_case "validation" `Quick test_betainc_validation;
        ] );
      ( "voting",
        [
          Alcotest.test_case "recovers paper model" `Quick
            test_voting_recovers_paper_model;
          Alcotest.test_case "defeat probability" `Quick test_voting_defeat_probability;
          Alcotest.test_case "architecture ordering" `Quick test_voting_ordering;
          Alcotest.test_case "distribution consistency" `Quick
            test_voting_dist_consistency;
          Alcotest.test_case "validation" `Quick test_voting_validation;
          Alcotest.test_case "simulator agreement" `Slow
            test_voting_simulator_agreement;
          Alcotest.test_case "m-out-of-n adjudicator" `Quick
            test_adjudicator_m_out_of_n;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "p_hat" `Quick test_estimator_p_hat;
          Alcotest.test_case "consistency" `Slow test_estimator_consistency;
          Alcotest.test_case "bootstrap interval" `Quick
            test_estimator_bootstrap_interval;
          Alcotest.test_case "validation" `Quick test_estimator_validation;
        ] );
      ( "testing",
        [
          Alcotest.test_case "zero demands" `Quick test_testing_zero_demands_is_identity;
          Alcotest.test_case "big regions scrubbed faster" `Quick
            test_testing_scrubs_big_regions_faster;
          Alcotest.test_case "monotone reliability" `Quick
            test_testing_monotone_reliability;
          Alcotest.test_case "directed testing" `Quick test_directed_testing;
          Alcotest.test_case "trajectory" `Quick test_testing_trajectory;
        ] );
      ( "beta-prior",
        [
          Alcotest.test_case "conjugacy" `Quick test_beta_prior_conjugacy;
          Alcotest.test_case "uniform update" `Quick test_beta_prior_uniform_update;
          Alcotest.test_case "moment match" `Quick test_beta_prior_moment_match;
          Alcotest.test_case "demands for confidence" `Quick
            test_beta_prior_demands_for_confidence;
        ] );
    ]
