(* Tests for the baseline models (independence, Eckhardt-Lee,
   Littlewood-Miller, Hatton). *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:777

let disjoint_space () =
  let profile = Demandspace.Profile.uniform ~size:100 in
  let r1 = Demandspace.Region.interval ~space_size:100 ~lo:0 ~hi:9 in
  let r2 = Demandspace.Region.interval ~space_size:100 ~lo:20 ~hi:29 in
  Demandspace.Space.create ~profile ~faults:[| (r1, 0.4); (r2, 0.2) |]

let overlapping_space () =
  let profile = Demandspace.Profile.uniform ~size:100 in
  let r1 = Demandspace.Region.interval ~space_size:100 ~lo:0 ~hi:9 in
  let r2 = Demandspace.Region.interval ~space_size:100 ~lo:5 ~hi:14 in
  Demandspace.Space.create ~profile ~faults:[| (r1, 0.4); (r2, 0.2) |]

(* ------------------------------------------------------------------ *)
(* Independence                                                        *)
(* ------------------------------------------------------------------ *)

let test_independence_formulas () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ] in
  check_close "pair pfd claim" 0.0004 (Baselines.Independence.pair_pfd ~single_pfd:0.02);
  check_close "predicted mu2" (0.11 *. 0.11) (Baselines.Independence.predicted_mu2 u);
  check_close ~eps:1e-12 "underestimation" (0.037 /. 0.0121)
    (Baselines.Independence.underestimation_factor u);
  check_close ~eps:1e-12 "model gain" (0.11 /. 0.037)
    (Baselines.Independence.model_gain u);
  check_close ~eps:1e-12 "independence gain" (1.0 /. 0.11)
    (Baselines.Independence.independence_gain u)

let test_independence_always_optimistic () =
  let rng = rng0 () in
  for _ = 1 to 50 do
    let u =
      Core.Universe.uniform_random rng ~n:10 ~p_lo:0.01 ~p_hi:0.9 ~total_q:0.5
    in
    if Baselines.Independence.underestimation_factor u < 1.0 -. 1e-12 then
      Alcotest.fail "independence was pessimistic (impossible under EL)"
  done

(* ------------------------------------------------------------------ *)
(* Eckhardt-Lee                                                        *)
(* ------------------------------------------------------------------ *)

let test_el_difficulty_disjoint () =
  let s = disjoint_space () in
  (* inside region 0, theta = p0; outside all regions, theta = 0 *)
  check_close ~eps:1e-12 "difficulty inside region 0" 0.4
    (Baselines.Eckhardt_lee.difficulty s 5);
  check_close ~eps:1e-12 "difficulty inside region 1" 0.2
    (Baselines.Eckhardt_lee.difficulty s 25);
  check_close "difficulty outside" 0.0 (Baselines.Eckhardt_lee.difficulty s 50)

let test_el_difficulty_overlap () =
  let s = overlapping_space () in
  (* on the overlap, theta = 1 - (1-0.4)(1-0.2) = 0.52 *)
  check_close ~eps:1e-12 "difficulty on overlap" 0.52
    (Baselines.Eckhardt_lee.difficulty s 7)

let test_el_means_match_core_when_disjoint () =
  let s = disjoint_space () in
  let u = Demandspace.Space.to_universe s in
  check_close ~eps:1e-12 "EL mean single = mu1" (Core.Moments.mu1 u)
    (Baselines.Eckhardt_lee.mean_single s);
  check_close ~eps:1e-12 "EL mean pair = mu2" (Core.Moments.mu2 u)
    (Baselines.Eckhardt_lee.mean_pair s)

let test_el_identity () =
  let rng = rng0 () in
  for i = 0 to 9 do
    let s =
      Demandspace.Genspace.overlapping_space
        (Numerics.Rng.split rng ~index:i)
        ~width:20 ~height:20 ~n_faults:6 ~max_extent:5 ~p_lo:0.1 ~p_hi:0.7
        ~profile:(Demandspace.Profile.uniform ~size:400)
    in
    let gap = Baselines.Eckhardt_lee.el_identity_gap s in
    if abs_float gap > 1e-12 then
      Alcotest.fail (Printf.sprintf "EL identity violated: gap %g" gap)
  done

let test_el_pair_ge_independence () =
  let rng = rng0 () in
  for i = 0 to 9 do
    let s =
      Demandspace.Genspace.disjoint_space
        (Numerics.Rng.split rng ~index:(100 + i))
        ~width:20 ~height:20 ~n_faults:5 ~max_extent:4 ~p_lo:0.1 ~p_hi:0.6
        ~profile:(Demandspace.Profile.uniform ~size:400)
    in
    let m1 = Baselines.Eckhardt_lee.mean_single s in
    if Baselines.Eckhardt_lee.mean_pair s < (m1 *. m1) -. 1e-15 then
      Alcotest.fail "EL pair mean below independence (impossible)"
  done

(* ------------------------------------------------------------------ *)
(* Littlewood-Miller                                                   *)
(* ------------------------------------------------------------------ *)

let test_lm_same_process_reduces_to_el () =
  let s = disjoint_space () in
  let lm = Baselines.Littlewood_miller.same_process s in
  check_close ~eps:1e-12 "LM mean A = EL single"
    (Baselines.Eckhardt_lee.mean_single s)
    (Baselines.Littlewood_miller.mean_single_a lm);
  check_close ~eps:1e-12 "LM pair = EL pair"
    (Baselines.Eckhardt_lee.mean_pair s)
    (Baselines.Littlewood_miller.mean_pair lm);
  check_close ~eps:1e-12 "LM covariance = EL variance"
    (Baselines.Eckhardt_lee.difficulty_variance s)
    (Baselines.Littlewood_miller.difficulty_covariance lm)

let test_lm_identity () =
  let s = disjoint_space () in
  let lm =
    Baselines.Littlewood_miller.create s ~probs_a:[| 0.4; 0.1 |]
      ~probs_b:[| 0.05; 0.5 |]
  in
  check_close ~eps:1e-15 "LM decomposition holds" 0.0
    (Baselines.Littlewood_miller.lm_identity_gap lm)

let test_lm_negative_covariance () =
  (* Complementary processes: A likely to hit fault 0, B fault 1. *)
  let s = disjoint_space () in
  let lm =
    Baselines.Littlewood_miller.create s ~probs_a:[| 0.8; 0.01 |]
      ~probs_b:[| 0.01; 0.8 |]
  in
  Alcotest.(check bool) "negative difficulty covariance" true
    (Baselines.Littlewood_miller.difficulty_covariance lm < 0.0);
  Alcotest.(check bool) "pair beats the independence product" true
    (Baselines.Littlewood_miller.mean_pair lm
    < Baselines.Littlewood_miller.mean_single_a lm
      *. Baselines.Littlewood_miller.mean_single_b lm)

let test_lm_validation () =
  let s = disjoint_space () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Littlewood_miller.create: probability vector length mismatch")
    (fun () ->
      ignore (Baselines.Littlewood_miller.create s ~probs_a:[| 0.1 |] ~probs_b:[| 0.1 |]))

(* ------------------------------------------------------------------ *)
(* Hatton                                                              *)
(* ------------------------------------------------------------------ *)

let test_hatton_break_even () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ] in
  check_close ~eps:1e-12 "break even = mu2/mu1" (0.037 /. 0.11)
    (Baselines.Hatton.break_even_factor u);
  Alcotest.(check bool) "break even below pmax" true
    (Baselines.Hatton.break_even_factor u <= Core.Universe.pmax u)

let test_hatton_compare () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ] in
  let c = Baselines.Hatton.compare_at u ~improvement_factor:1.0 ~k:2.33 in
  Alcotest.(check bool) "unimproved single loses on mean" true
    c.Baselines.Hatton.diversity_wins_mean;
  let be = Baselines.Hatton.break_even_factor u in
  let c2 = Baselines.Hatton.compare_at u ~improvement_factor:(be /. 2.0) ~k:2.33 in
  Alcotest.(check bool) "well below break-even, single wins on mean" false
    c2.Baselines.Hatton.diversity_wins_mean

let test_hatton_sweep_monotone () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ] in
  let sweep =
    Baselines.Hatton.sweep u ~k:2.33 ~factors:[| 1.0; 0.8; 0.6; 0.4; 0.2 |]
  in
  for i = 0 to Array.length sweep - 2 do
    Alcotest.(check bool) "single improves monotonically" true
      (sweep.(i + 1).Baselines.Hatton.single_improved_mu
      <= sweep.(i).Baselines.Hatton.single_improved_mu +. 1e-15)
  done

let test_hatton_validation () =
  let u = Core.Universe.of_pairs [ (0.5, 0.1) ] in
  Alcotest.check_raises "factor out of range"
    (Invalid_argument "Hatton.compare_at: improvement factor must lie in [0, 1]")
    (fun () -> ignore (Baselines.Hatton.compare_at u ~improvement_factor:1.5 ~k:1.0))

let () =
  Alcotest.run "baselines"
    [
      ( "independence",
        [
          Alcotest.test_case "formulas" `Quick test_independence_formulas;
          Alcotest.test_case "always optimistic" `Quick
            test_independence_always_optimistic;
        ] );
      ( "eckhardt-lee",
        [
          Alcotest.test_case "difficulty disjoint" `Quick test_el_difficulty_disjoint;
          Alcotest.test_case "difficulty overlap" `Quick test_el_difficulty_overlap;
          Alcotest.test_case "means match core" `Quick
            test_el_means_match_core_when_disjoint;
          Alcotest.test_case "identity" `Quick test_el_identity;
          Alcotest.test_case "pair >= independence" `Quick test_el_pair_ge_independence;
        ] );
      ( "littlewood-miller",
        [
          Alcotest.test_case "same process = EL" `Quick test_lm_same_process_reduces_to_el;
          Alcotest.test_case "identity" `Quick test_lm_identity;
          Alcotest.test_case "negative covariance" `Quick test_lm_negative_covariance;
          Alcotest.test_case "validation" `Quick test_lm_validation;
        ] );
      ( "hatton",
        [
          Alcotest.test_case "break even" `Quick test_hatton_break_even;
          Alcotest.test_case "compare" `Quick test_hatton_compare;
          Alcotest.test_case "sweep monotone" `Quick test_hatton_sweep_monotone;
          Alcotest.test_case "validation" `Quick test_hatton_validation;
        ] );
    ]
