test/test_integration.ml: Alcotest Array Baselines Core Demandspace Experiments Extensions Hashtbl List Numerics Printf Report Simulator String
