test/test_voting_estimation.mli:
