test/test_simulator.ml: Adjudicator Alcotest Array Channel Core Demandspace List Numerics Simulator
