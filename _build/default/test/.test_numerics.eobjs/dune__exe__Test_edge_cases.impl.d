test/test_edge_cases.ml: Alcotest Array Core Demandspace Extensions Float List Numerics Report Simulator String
