test/test_baselines.ml: Alcotest Array Baselines Core Demandspace Numerics Printf
