test/test_voting_estimation.ml: Adjudicator Alcotest Array Channel Core Demandspace Extensions Float List Numerics Printf Simulator
