test/test_campaign_fleet.mli:
