test/test_demandspace.ml: Alcotest Array Core Demand Demandspace Fun Genspace List Numerics Profile QCheck2 QCheck_alcotest Region Space String Version
