test/test_campaign_fleet.ml: Alcotest Array Core Demandspace List Numerics Printf Simulator
