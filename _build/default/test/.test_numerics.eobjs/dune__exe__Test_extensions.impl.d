test/test_extensions.ml: Alcotest Array Core Demandspace Extensions Numerics
