test/test_tailbound_sprt.mli:
