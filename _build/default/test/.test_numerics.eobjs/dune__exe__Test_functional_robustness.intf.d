test/test_functional_robustness.mli:
