test/test_demandspace.mli:
