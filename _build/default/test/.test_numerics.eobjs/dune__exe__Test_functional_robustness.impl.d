test/test_functional_robustness.ml: Alcotest Array Baselines Core Demandspace Extensions List Numerics
