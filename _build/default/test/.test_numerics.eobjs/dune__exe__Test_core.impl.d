test/test_core.ml: Alcotest Array Core List Numerics Printf QCheck2 QCheck_alcotest
