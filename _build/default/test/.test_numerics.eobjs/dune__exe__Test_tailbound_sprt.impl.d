test/test_tailbound_sprt.ml: Alcotest Array Core Demandspace Float List Numerics Printf Simulator
