test/test_numerics.ml: Alcotest Alias Array Bitset Bootstrap Deriv Float Grid Histogram Kahan Ks List Normal_dist Numerics Printf QCheck2 QCheck_alcotest Rng Rootfind Sampler Special Stats Welford
