(* benchcheck — structural validator for BENCH_kernels.json.

   The @ci alias runs `bench/main.exe json --smoke` and then this tool,
   so a malformed or structurally wrong benchmark artefact fails the
   gate. Checks: the file parses as JSON, carries the divrel-bench/2
   schema marker, a seed, a git_rev, and a non-empty kernels array whose
   entries each have a name, numeric-or-null ns_per_run / r_square, a
   sample count and a positive domain count; the parallel-estimate,
   fleet-observe and serve-throughput kernel pairs must be present. On a full-mode artefact
   (mode = "full", i.e. real timings, not the --smoke structural pass)
   the required kernels must additionally publish an OLS fit with
   r_square >= 0.9 — the repo's floor for a timing it is willing to
   stand behind — and the artefact's git_rev must match the current
   HEAD (GIT_REV env or `git rev-parse`), so stale timings are never
   re-blessed at a different commit. Exit codes: 0 ok, 1 structurally
   invalid, 2 unreadable or unparseable. *)

let fail code msg =
  prerr_endline ("benchcheck: " ^ msg);
  exit code

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let require what = function
  | Some v -> v
  | None -> fail 1 ("missing or ill-typed " ^ what)

let check_number what v =
  match v with
  | Obs.Json.Null | Obs.Json.Int _ | Obs.Json.Float _ -> ()
  | _ -> fail 1 (what ^ " must be a number or null")

let check_kernel i k =
  let ctx = Printf.sprintf "kernels[%d]" i in
  let name =
    require (ctx ^ ".name")
      (Option.bind (Obs.Json.member "name" k) Obs.Json.to_string)
  in
  if String.trim name = "" then fail 1 (ctx ^ ".name is empty");
  check_number (ctx ^ ".ns_per_run") (require (ctx ^ ".ns_per_run") (Obs.Json.member "ns_per_run" k));
  check_number (ctx ^ ".r_square") (require (ctx ^ ".r_square") (Obs.Json.member "r_square" k));
  let samples =
    require (ctx ^ ".samples")
      (Option.bind (Obs.Json.member "samples" k) Obs.Json.to_int)
  in
  if samples < 0 then fail 1 (ctx ^ ".samples is negative");
  let domains =
    require (ctx ^ ".domains")
      (Option.bind (Obs.Json.member "domains" k) Obs.Json.to_int)
  in
  if domains < 1 then fail 1 (ctx ^ ".domains must be >= 1");
  name

(* Kernels whose presence the gate insists on: the determinism
   demonstrator pairs (same computation on 1 vs 4 domains), the
   proven-in-use evidence ingest path, and the rewritten hot-path
   kernels (both the headline names and the explicit incremental/fast
   variants, so a regenerated artefact can never silently drop the
   perf-trajectory anchors). *)
let required_kernels =
  [
    "mc-estimate-parallel/1dom";
    "mc-estimate-parallel/4dom";
    "fleet-observe-parallel/1dom";
    "fleet-observe-parallel/4dom";
    "evidence-ingest/1e6";
    "sensitivity-gradient/n=1000";
    "sensitivity-gradient-incremental/n=1000";
    "exact-pfd-dist/n=16";
    "exact-pfd-dist-fast/n=16";
    "serve-throughput/1workers";
    "serve-throughput/4workers";
  ]

(* Minimum OLS fit quality a full-mode artefact may publish for the
   required kernels (matches bench/main.ml's target_r_square). *)
let min_r_square = 0.9

(* In full mode the artefact's git_rev must describe the code that was
   actually benchmarked: validating a stale BENCH_kernels.json at a
   different HEAD would bless timings for code that no longer exists.
   HEAD comes from the GIT_REV environment variable when set (the
   bench-json target exports it) or from git itself; with neither
   available (e.g. a tarball checkout) the check is skipped with a
   note. Prefix matching tolerates short-vs-long rev spellings. *)
let head_rev () =
  match Sys.getenv_opt "GIT_REV" with
  | Some r when String.trim r <> "" -> Some (String.trim r)
  | _ -> (
      match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
      | exception _ -> None
      | ic ->
          let line =
            match input_line ic with
            | l -> Some (String.trim l)
            | exception End_of_file -> None
          in
          (match Unix.close_process_in ic with
          | Unix.WEXITED 0 -> (
              match line with Some l when l <> "" -> Some l | _ -> None)
          | _ -> None
          | exception _ -> None))

let revs_match a b =
  let a = String.trim a and b = String.trim b in
  a <> "" && b <> ""
  && (String.starts_with ~prefix:a b || String.starts_with ~prefix:b a)

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail 2 "usage: benchcheck FILE.json"
  in
  let source =
    match read_file path with
    | s -> s
    | exception Sys_error e -> fail 2 ("cannot read " ^ path ^ ": " ^ e)
  in
  let json =
    match Obs.Json.parse source with
    | Ok j -> j
    | Error e -> fail 2 (path ^ ": malformed JSON: " ^ e)
  in
  let schema =
    require "schema" (Option.bind (Obs.Json.member "schema" json) Obs.Json.to_string)
  in
  if schema <> "divrel-bench/2" then
    fail 1 (Printf.sprintf "unexpected schema %S (want divrel-bench/2)" schema);
  ignore (require "seed" (Option.bind (Obs.Json.member "seed" json) Obs.Json.to_int));
  let artefact_rev =
    require "git_rev"
      (Option.bind (Obs.Json.member "git_rev" json) Obs.Json.to_string)
  in
  let kernels =
    require "kernels" (Option.bind (Obs.Json.member "kernels" json) Obs.Json.to_list)
  in
  if kernels = [] then fail 1 "kernels array is empty";
  let names = List.mapi check_kernel kernels in
  List.iter
    (fun k ->
      if not (List.mem k names) then fail 1 ("required kernel missing: " ^ k))
    required_kernels;
  let mode =
    match Option.bind (Obs.Json.member "mode" json) Obs.Json.to_string with
    | Some m -> m
    | None -> "full"  (* older artefacts carry no mode: treat as real timings *)
  in
  if mode = "full" then begin
    (match head_rev () with
    | None ->
        print_endline
          "benchcheck: note: HEAD revision unavailable, skipping git_rev match"
    | Some head ->
        if not (revs_match artefact_rev head) then
          fail 1
            (Printf.sprintf
               "git_rev %S does not match HEAD %S: regenerate full-mode \
                timings at the current commit (make bench-json)"
               artefact_rev head));
    List.iter
      (fun required ->
        let kernel =
          List.find_opt
            (fun k ->
              Option.bind (Obs.Json.member "name" k) Obs.Json.to_string
              = Some required)
            kernels
        in
        let r2 =
          Option.bind kernel (fun k ->
              Option.bind (Obs.Json.member "r_square" k) Obs.Json.to_float)
        in
        match r2 with
        | None -> fail 1 (required ^ ": full-mode artefact has no r_square")
        | Some r2 when r2 < min_r_square ->
            fail 1
              (Printf.sprintf "%s: r_square %.4f below the %.1f floor" required
                 r2 min_r_square)
        | Some _ -> ())
      required_kernels
  end;
  Printf.printf "benchcheck: %s ok (%d kernels, schema divrel-bench/2)\n" path
    (List.length kernels)
