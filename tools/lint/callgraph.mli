(** Per-file harvesting for the project-wide analysis: top-level function
    summaries (references, mutation sites, Rng draws, shard-spawn sites,
    lock usage) and closure-capture classification. Purely syntactic;
    names are resolved later by {!Analysis}. *)

type loc = { l_line : int; l_col : int }

val loc_of : Location.t -> loc

type write_kind =
  | Assign  (** [r := v], [incr]/[decr], mutable-field assignment *)
  | Indexed
      (** [a.(i) <- v], [Bytes.set], fill/blit — the sanctioned
          disjoint-slice shard-output pattern, exempt from R11 *)
  | Container  (** Hashtbl/Buffer/Queue/Stack mutation *)

val kind_word : write_kind -> string

type call = {
  c_path : string;  (** normalized callee path *)
  c_loc : loc;
  c_lambdas : (Asttypes.arg_label * Parsetree.expression) list;
}

type summary = {
  s_refs : (string * loc) list;
  s_writes : (string * write_kind * loc) list;
  s_draws : (string * loc) list;
  s_spawns : (loc * Parsetree.expression list) list;
  s_calls : call list;
  s_locks : bool;
  s_hashfolds : (string * loc) list;
}

val summarize : Parsetree.expression -> summary

type capture =
  | Cap_write of string * write_kind * loc
  | Cap_draw of string * loc

val captures : Parsetree.expression -> capture list
(** Mutation/draw sites inside a closure whose target is an unqualified
    name bound outside the closure. *)

type func = {
  f_name : string;
  f_mods : string list;
  f_file : string;
  f_loc : loc;
  f_params : string list;
  f_opt_labels : string list;
  f_summary : summary;
  f_captures : capture list;
  f_is_fun : bool;
      (** the RHS is syntactically a function; non-function bindings run
          once at module init, so references to them are not call edges *)
}

val harvest : modname:string -> file:string -> Parsetree.structure -> func list
val modname_of_file : string -> string

(** {2 Path helpers} *)

val last1 : string -> string
val last2 : string -> (string * string) option
val is_qualified : string -> bool
val is_lambda : Parsetree.expression -> bool
val is_rng_create : string -> bool
