(** The divlint rule engine.

    Parses [.ml] sources with compiler-libs and reports violations of the
    repo's numerical-reliability rules. Rule scoping (which rules apply to
    a file) is decided from the reported path, so callers linting files
    outside the repo layout (e.g. the fixture corpus) can override it with
    [?relpath]. *)

type rule =
  | Float_eq  (** R1: exact float (in)equality against a float literal *)
  | Random_use  (** R2: [Stdlib.Random] outside [lib/numerics/rng.ml] *)
  | Float_sum  (** R3: naive [+.] accumulation via [fold_left] *)
  | Missing_mli  (** R4: [lib/] module without an interface file *)
  | Print_effect  (** R5: printing side effect in [lib/] outside [lib/report/] *)
  | Partial_fun  (** R6: partial function ([List.hd] / [List.nth] / [Option.get]) *)
  | Wallclock
      (** R7: non-monotonic time source ([Unix.gettimeofday] / [Unix.time] /
          [Sys.time]) outside [lib/obs/] *)
  | Domain_containment
      (** R8: parallelism primitive ([Domain.spawn] / [Domain.join] / any
          [Atomic.*]) outside [lib/exec/] — ad-hoc threading bypasses the
          deterministic sharding contract *)

val all_rules : rule list

val rule_id : rule -> string
(** ["R1"] .. ["R8"]. *)

val rule_slug : rule -> string
(** Stable lowercase name used in suppression comments, e.g. ["float-eq"]. *)

val rule_of_token : string -> rule option
(** Accepts a slug or a rule id, case-insensitively. *)

type finding = {
  rule : rule;
  file : string;  (** path as reported (the [?relpath] when given) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

val lint_source : ?relpath:string -> path:string -> string -> finding list
(** Lint source text. [path] locates the file on disk (for the R4 interface
    check and parse-error positions); [relpath] (default [path]) scopes the
    rules. Raises on syntax errors. *)

val lint_file : ?relpath:string -> string -> finding list
(** [lint_source] over the file's contents. *)

val lint_paths : string list -> finding list * string list * int
(** Recursively lint every [.ml] under the given files/directories
    (skipping [_build] and dot-directories). Returns findings, parse-error
    descriptions, and the number of files scanned. *)

val render_finding : finding -> string
(** [file:line:col: [R1 float-eq] message]. *)

val render_text : finding list -> string
val render_json : finding list -> string
