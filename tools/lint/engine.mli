(** The divlint rule engine.

    Parses [.ml] sources with compiler-libs and reports violations of the
    repo's numerical-reliability rules. Rule scoping (which rules apply to
    a file) is decided from the reported path, so callers linting files
    outside the repo layout (e.g. the fixture corpus) can override it with
    [?relpath].

    The per-file rules (R1-R8) are implemented here; the project-wide
    interprocedural rules (R9-R11) are implemented in {!Analysis} but
    share this module's rule/finding/suppression machinery. *)

type rule =
  | Float_eq  (** R1: exact float (in)equality against a float literal *)
  | Random_use  (** R2: [Stdlib.Random] outside [lib/numerics/rng.ml] *)
  | Float_sum  (** R3: naive [+.] accumulation via [fold_left] *)
  | Missing_mli  (** R4: [lib/] module without an interface file *)
  | Print_effect  (** R5: printing side effect in [lib/] outside [lib/report/] *)
  | Partial_fun  (** R6: partial function ([List.hd] / [List.nth] / [Option.get]) *)
  | Wallclock
      (** R7: non-monotonic time source ([Unix.gettimeofday] / [Unix.time] /
          [Sys.time]) outside [lib/obs/] *)
  | Domain_containment
      (** R8: parallelism primitive ([Domain.spawn] / [Domain.join] / any
          [Atomic.*]) outside [lib/exec/] — ad-hoc threading bypasses the
          deterministic sharding contract *)
  | Shared_mutable_escape
      (** R9 (project-wide): module-level mutable state written from code
          reachable from a shard callback without [Atomic] / [Mutex] /
          [Domain.DLS] protection *)
  | Rng_discipline
      (** R10 (project-wide): a parent [Rng.t] captured by a shard closure,
          or draws from a module-level stream inside shard-reachable code,
          instead of a per-shard [Rng.split] substream *)
  | Nondet_merge
      (** R11 (project-wide): shard results accumulated in completion or
          hash order instead of shard-index order *)
  | Unused_suppression
      (** W1: a [(* divlint: allow ... *)] comment whose rules never fire
          on its target line *)

val syntactic_rules : rule list
(** R1-R8: the per-file rules checked by {!lint_source}. *)

val project_rules : rule list
(** R9-R11: the interprocedural rules checked by {!Analysis}. *)

val all_rules : rule list
(** Every rule, in id order (R1-R11 then W1). *)

val rule_id : rule -> string
(** ["R1"] .. ["R11"], ["W1"]. *)

val rule_slug : rule -> string
(** Stable lowercase name used in suppression comments, e.g. ["float-eq"]. *)

val rule_doc : rule -> string
(** One-line description (used for SARIF rule metadata). *)

val rule_of_token : string -> rule option
(** Accepts a slug or a rule id, case-insensitively. *)

type finding = {
  rule : rule;
  file : string;  (** path as reported (the [?relpath] when given) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
}

(** {2 Rule scoping} *)

val rule_applies : rule -> string -> bool
(** [rule_applies rule relpath]: is [rule] in force for the file at
    [relpath]? Combines the rule's scope (some rules only apply under
    [lib/]) with the path-exemption table. *)

val exempt_rules : string -> rule list
(** The rules the exemption table switches off for a path. Patterns ending
    in ['/'] exempt the subtree; any other pattern matches exactly. *)

val exemption_table : (string * rule list) list
(** The table itself, exposed for tests. *)

(** {2 Suppressions} *)

type suppression_spec = Allow_all | Allow of rule list

type suppression_entry = {
  sup_line : int;  (** line the comment sits on *)
  sup_target : int;  (** line whose findings it suppresses *)
  sup_spec : suppression_spec;
  mutable sup_used : bool;
}

val scan_suppressions : string -> suppression_entry list
(** All [(* divlint: allow ... *)] comments in the source, in line order.
    A comment alone on its line targets the following line; otherwise it
    targets its own line. *)

val apply_suppressions :
  file:string ->
  checkable:rule list ->
  suppression_entry list ->
  finding list ->
  finding list * finding list
(** [(kept, suppressed)]. Marks entries used as they match. When
    [Unused_suppression] is in [checkable], entries whose listed rules are
    all in [checkable] but never matched produce W1 findings in [kept]
    (themselves suppressible). [Allow_all] entries are never W1-judged. *)

(** {2 Linting} *)

val parse_implementation : path:string -> string -> Parsetree.structure
(** Parse source text, raising on syntax errors. [path] seeds positions. *)

val read_file : string -> string

type outcome = { kept : finding list; dropped : finding list }

val lint_source_full :
  ?rules:rule list -> ?relpath:string -> path:string -> string -> outcome
(** Lint source text, returning surviving and suppressed findings.
    [rules] (default {!syntactic_rules}) selects the per-file rules to
    run; it also scopes which suppressions are W1-judged. [path] locates
    the file on disk (for the R4 interface check and parse-error
    positions); [relpath] (default [path]) scopes the rules. Raises on
    syntax errors. *)

val lint_source :
  ?rules:rule list -> ?relpath:string -> path:string -> string -> finding list
(** [lint_source_full].kept. *)

val lint_file : ?rules:rule list -> ?relpath:string -> string -> finding list
(** [lint_source] over the file's contents. *)

val lint_paths :
  ?rules:rule list -> string list -> finding list * string list * int
(** Recursively lint every [.ml] under the given files/directories
    (skipping [_build] and dot-directories). Returns findings, parse-error
    descriptions, and the number of files scanned. *)

val collect_ml_files : string list -> string -> string list
(** [collect_ml_files acc path]: accumulate every [.ml] under [path],
    skipping [_build] and dot-directories. *)

(** {2 AST helpers shared with the project analysis} *)

val path_of_lid : Longident.t -> string
val normalize : string -> string
(** Strip a leading ["Stdlib."]. *)

val last_component : string -> string
val has_prefix : prefix:string -> string -> bool

(** {2 Rendering} *)

val render_finding : finding -> string
(** [file:line:col: [R1 float-eq] message]. *)

val render_text : finding list -> string
val render_json : finding list -> string

val render_sarif : finding list -> string
(** SARIF 2.1.0: one run, the full rule table as driver metadata, one
    result per finding (W1 at level warning, everything else error). *)

val json_escape : string -> string
