val near_zero : float -> float -> bool
val safe_ratio : float -> float -> float
val first_or_zero : float list -> float
val describe : float -> string
