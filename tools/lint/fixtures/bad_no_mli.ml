(* Known-bad R4 corpus (linted as if under lib/): no .mli next to this file. *)

let answer = 42
