(* Known-bad R8 corpus: domain primitives outside lib/exec/. *)

let worker f = Domain.spawn f
let wait d = Domain.join d
let bump counter = Atomic.incr counter

(* Other Domain operations (e.g. the identifier of the current domain)
   are not parallelism primitives and must not be flagged. *)
let me () = Domain.self ()
