(* R10 corpus: draws that depend on shard scheduling. *)

let global_stream = Numerics.Rng.create ~seed:42

(* Per-file linting sees nothing wrong here; the hazard appears only when
   a shard callback reaches it. *)
let draw_from_global () = Numerics.Rng.float global_stream

let bad_global () =
  Exec.map_shards ~shards:4 ~f:(fun _k -> draw_from_global ()) ()

let bad_capture rng =
  Exec.map_shards ~shards:4 ~f:(fun _k -> Numerics.Rng.float rng) ()

let bad_suppressed rng =
  Exec.map_shards ~shards:4
    ~f:(fun _k ->
      (* divlint: allow rng-discipline *)
      Numerics.Rng.float rng)
    ()
