(* R11 corpus: shard results merged outside shard-index order. *)

let bad_completion_order xs =
  let total = ref 0.0 in
  Exec.map_shards ~shards:4 ~f:(fun k -> total := !total +. xs.(k)) ();
  !total

let shard_outputs = Hashtbl.create 16

let bad_hash_merge () =
  let results = Exec.map_shards ~shards:4 ~f:(fun k -> k) () in
  ignore results;
  Hashtbl.fold (fun _k v acc -> v +. acc) shard_outputs 0.0

let bad_suppressed xs =
  let total = ref 0.0 in
  Exec.map_shards ~shards:4
    ~f:(fun k ->
      (* divlint: allow nondeterministic-merge *)
      total := !total +. xs.(k))
    ();
  !total
