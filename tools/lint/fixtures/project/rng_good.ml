(* R10 negative: every shard draws from its own split substream. *)

let good_substream rng =
  let rngs = Exec.split_rngs rng ~shards:4 in
  Exec.map_shards ~shards:4 ~f:(fun k -> Numerics.Rng.float rngs.(k)) ()

let good_rebound rng =
  let rngs = Exec.split_rngs rng ~shards:4 in
  Exec.map_shards ~shards:4
    ~f:(fun k ->
      let rng_k = rngs.(k) in
      Numerics.Rng.uniform rng_k ~lo:0.0 ~hi:1.0)
    ()
