(* R11 negative: the sanctioned merge patterns. *)

(* map_reduce's ~merge runs sequentially over shard-indexed results at
   join — the callback itself stays pure. *)
let good_index_order xs =
  Exec.map_reduce ~shards:4
    ~f:(fun k -> xs.(k))
    ~merge:(fun acc v -> acc +. v)
    ()

(* Disjoint indexed writes into a preallocated output buffer: each shard
   owns slot k, so completion order cannot change the result. *)
let good_slices n =
  let out = Array.make n 0.0 in
  Exec.map_shards ~shards:4 ~f:(fun k -> out.(k) <- float_of_int k) ();
  out
