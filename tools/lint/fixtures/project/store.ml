(* Module-level mutable state for the project-analysis corpus. Writing
   [hits]/[total]/[samples] from shard-reachable code is an R9 unless the
   writing function takes the mutex; [protected_hits] is safe by
   construction. *)

let hits = ref 0
let total = ref 0.0
let samples = Hashtbl.create 16
let guard = Mutex.create ()
let protected_hits = Atomic.make 0

(* The cross-module hazard: per-file linting of this file alone sees an
   ordinary function mutating an ordinary ref. Only the project pass,
   with Driver.bad_cross_module's shard callback in view, can tell this
   write races. *)
let bump () = hits := !hits + 1
let accumulate x = total := !total +. x

let record_sample k v = Hashtbl.replace samples k v

let bump_guarded () =
  Mutex.lock guard;
  hits := !hits + 1;
  Mutex.unlock guard

let bump_protected () = Atomic.incr protected_hits
