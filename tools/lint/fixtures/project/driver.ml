(* Shard callbacks exercising the R9 paths, including the cross-module
   mutation per-file linting provably cannot see. *)

let bad_cross_module () =
  Exec.map_shards ~shards:4 ~f:(fun _k -> Store.bump ()) ()

let bad_qualified_write () =
  Exec.map_shards ~shards:4 ~f:(fun _k -> Store.hits := !Store.hits + 1) ()

let bad_container () =
  Exec.map_shards ~shards:4 ~f:(fun k -> Store.record_sample k 1.0) ()

let bad_suppressed () =
  Exec.map_shards ~shards:4
    ~f:(fun _k ->
      (* divlint: allow shared-mutable-escape *)
      Store.total := !Store.total +. 1.0)
    ()

let good_guarded () =
  Exec.map_shards ~shards:4 ~f:(fun _k -> Store.bump_guarded ()) ()

let good_atomic () =
  Exec.map_shards ~shards:4 ~f:(fun _k -> Store.bump_protected ()) ()

let good_local () =
  Exec.map_shards ~shards:4
    ~f:(fun k ->
      let local = ref 0 in
      local := k;
      !local)
    ()
