(* Known-bad R3 corpus: naive float accumulation. *)

let total xs = List.fold_left ( +. ) 0.0 xs
let total_arr xs = Array.fold_left (fun acc x -> acc +. x) 0.0 xs
let labelled xs = ListLabels.fold_left ~f:( +. ) ~init:0.0 xs

(* fine: non-float fold *)
let count xs = List.fold_left (fun acc _ -> acc + 1) 0 xs
