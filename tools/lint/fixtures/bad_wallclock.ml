(* Known-bad R7 corpus: non-monotonic time sources outside lib/obs/. *)

let wall () = Unix.gettimeofday ()
let seconds () = Unix.time ()
let cpu () = Sys.time ()
