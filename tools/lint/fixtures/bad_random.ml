(* Known-bad R2 corpus: unseeded Stdlib.Random outside lib/numerics/rng.ml. *)

let noise () = Random.float 1.0
let coin () = Stdlib.Random.bool ()
let state () = Random.State.make_self_init ()
