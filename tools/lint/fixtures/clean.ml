(* Known-clean corpus (linted as if under lib/): passes every rule. *)

let near_zero eps x = abs_float x <= eps
let safe_ratio num denom = if near_zero 1e-308 denom then nan else num /. denom

let first_or_zero = function [] -> 0.0 | x :: _ -> x

let describe x = Printf.sprintf "value %f" x
