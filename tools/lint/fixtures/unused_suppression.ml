(* A suppression whose rule never fires on its line: W1 must report it. *)

let ok = 1 (* divlint: allow float-eq *)
