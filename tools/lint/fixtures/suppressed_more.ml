let has_no_interface = 1 (* divlint: allow missing-mli *)

let log_it s = print_endline s (* divlint: allow print *)

let first xs = List.hd xs (* divlint: allow partial *)

let now () = Unix.gettimeofday () (* divlint: allow wallclock *)

(* divlint: allow domain-containment *)
let spawn f = Domain.spawn f
