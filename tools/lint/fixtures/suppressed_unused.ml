(* A stale suppression silenced by a meta-suppression: the float-eq allow
   below never fires (W1), but the unused-suppression allow above it
   swallows that warning, so this file lints clean. *)

(* divlint: allow unused-suppression *)
(* divlint: allow float-eq *)
let ok = 1
