(* Suppression-comment corpus: every violation below is annotated except
   the last one, which must still be reported. *)

let exact_guard x = if x = 0.0 then 1.0 else x (* divlint: allow float-eq *)

(* divlint: allow float-eq *)
let standalone_comment_covers_next_line x = x <> 1.0

let by_rule_id x = x = 2.5 (* divlint: allow R1 *)

let several xs = List.fold_left ( +. ) 0.0 xs (* divlint: allow float-sum, float-eq *)

let everything () = Random.bit () (* divlint: allow all *)

let unsuppressed x = x = 3.25
