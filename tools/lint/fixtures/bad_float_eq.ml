(* Known-bad R1 corpus: exact float comparisons against literals. *)

let guard denom = if denom = 0.0 then nan else 1.0 /. denom
let not_one x = x <> 1.0
let negated x = x = -0.5
let int_compare_is_fine n = n = 0
let char_compare_is_fine c = c = 'x'
