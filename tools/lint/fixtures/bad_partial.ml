(* Known-bad R6 corpus (linted as if under lib/): partial functions. *)

let first xs = List.hd xs
let third xs = List.nth xs 2
let force o = Option.get o

(* fine: total alternatives *)
let first_opt xs = match xs with [] -> None | x :: _ -> Some x
