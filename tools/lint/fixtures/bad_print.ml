(* Known-bad R5 corpus (linted as if under lib/): printing side effects. *)

let shout () = print_endline "reliability!"
let fmt x = Printf.printf "%f\n" x
let via_format x = Format.printf "%f@." x

(* fine: building strings is not a side effect *)
let pure x = Printf.sprintf "%f" x
