(** Inventory of module-level mutable state: every top-level binding whose
    right-hand side syntactically allocates a mutable value, classified as
    unprotected (a shared-state hazard when reached from shard code) or
    protected by construction ([Atomic.make] / [Domain.DLS.new_key] /
    [Mutex.create]). *)

type kind =
  | Ref
  | Arr
  | Bytes_buf
  | Hashtbl_t
  | Buffer_t
  | Queue_t
  | Stack_t
  | Rng_stream

val kind_word : kind -> string

type nature = Mutable of kind | Protected of string

type item = {
  it_name : string;
  it_mods : string list;
  it_file : string;
  it_loc : Callgraph.loc;
  it_nature : nature;
}

val classify : Parsetree.expression -> nature option
val harvest : modname:string -> file:string -> Parsetree.structure -> item list
