(* The project-wide interprocedural analysis behind rules R9-R11.

   One pass loads every .ml under the given roots, harvests per-file
   function summaries (Callgraph) and the module-level mutable-state
   inventory (Mutstate), then walks the conservative call graph from
   every shard-callback root:

   - roots are the callback arguments of Exec.map_shards / Exec.map_reduce
     / Pool.run spawn sites, plus any function literal passed to an entry
     point declaring ?pool or ?shards (except ~merge arguments, which run
     sequentially at join);
   - reachability follows every referenced identifier, resolved against
     the harvested inventory: a qualified path A.B.f matches any harvested
     f whose enclosing module components include B; an unqualified name
     matches only within the same file. Opens are not tracked (a
     documented false-negative source, kept deliberately: guessing opens
     without a typing environment would produce false edges instead).

   Along the walk:
   - R9  fires on a write to unprotected module-level mutable state,
     unless the write happens in a body that takes a Mutex or below one
     that does (the lock sanction propagates to callees — Obs.Trace
     mutates its store in helpers called under the lock of [enter]);
   - R10 fires on a draw from a stream the shard closure captured from
     its enclosing scope (the parent's Rng.t), or from a module-level
     stream, instead of a per-shard Rng.split substream;
   - R11 fires on accumulation into a captured scalar/container from
     inside the shard callback (completion-order merge), and on
     Hashtbl.fold/iter inside any function that also spawns shards
     (hash-order merge). Indexed writes into captured arrays are exempt:
     disjoint-slice output buffers are the sanctioned pattern.

   Soundness caveats are spelled out in DESIGN.md. *)

module E = Engine
module C = Callgraph
module M = Mutstate

type stats = { st_files : int; st_functions : int; st_reachable : int }

type result = {
  res_findings : E.finding list;
  res_suppressed : E.finding list;
  res_errors : string list;
  res_stats : stats;
}

(* ------------------------------------------------------------------ *)
(* File collection                                                    *)
(* ------------------------------------------------------------------ *)

(* Like Engine.collect_ml_files but also skips directories named
   [fixtures]: the lint fixture corpus deliberately violates every rule
   and must not pollute a project scan (tests analyse it by passing the
   directory explicitly as a root). *)
let rec collect acc path =
  if Sys.is_directory path then
    if Filename.basename path = "fixtures" then acc
    else
      Sys.readdir path |> Array.to_list |> List.sort compare
      |> List.fold_left
           (fun acc name ->
             if name = "" || name.[0] = '.' || name = "_build" then acc
             else collect acc (Filename.concat path name))
           acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* ------------------------------------------------------------------ *)
(* Name resolution                                                    *)
(* ------------------------------------------------------------------ *)

(* "A.B.f" -> (Some "B", "f"); "f" -> (None, "f"). Operator names can
   contain dots ("+."); they yield an empty last component and resolve to
   nothing. *)
let split_last path =
  match String.rindex_opt path '.' with
  | None -> (None, path)
  | Some i ->
      let name = String.sub path (i + 1) (String.length path - i - 1) in
      let rest = String.sub path 0 i in
      let m =
        match String.rindex_opt rest '.' with
        | None -> rest
        | Some j -> String.sub rest (j + 1) (String.length rest - j - 1)
      in
      (Some m, name)

type index = {
  fn_by_name : (string, C.func) Hashtbl.t;  (** key: last name component *)
  item_by_name : (string, M.item) Hashtbl.t;
}

let build_index funcs items =
  let fn_by_name = Hashtbl.create 256 in
  List.iter
    (fun (f : C.func) -> Hashtbl.add fn_by_name (C.last1 f.f_name) f)
    funcs;
  let item_by_name = Hashtbl.create 64 in
  List.iter
    (fun (it : M.item) -> Hashtbl.add item_by_name it.it_name it)
    items;
  { fn_by_name; item_by_name }

let resolve_fn idx ~file path =
  match split_last path with
  | _, "" -> []
  | None, name ->
      Hashtbl.find_all idx.fn_by_name name
      |> List.filter (fun (f : C.func) -> f.f_file = file)
  | Some m, name ->
      Hashtbl.find_all idx.fn_by_name name
      |> List.filter (fun (f : C.func) -> List.mem m f.f_mods)

let resolve_item idx ~file path =
  match split_last path with
  | _, "" -> []
  | None, name ->
      Hashtbl.find_all idx.item_by_name name
      |> List.filter (fun (it : M.item) -> it.it_file = file)
  | Some m, name ->
      Hashtbl.find_all idx.item_by_name name
      |> List.filter (fun (it : M.item) -> List.mem m it.it_mods)

let is_entry (f : C.func) =
  List.mem "pool" f.f_opt_labels || List.mem "shards" f.f_opt_labels

(* ------------------------------------------------------------------ *)
(* Messages                                                           *)
(* ------------------------------------------------------------------ *)

let item_path (it : M.item) =
  String.concat "." (it.it_mods @ [ it.it_name ])

let r9_msg (it : M.item) kind root =
  Printf.sprintf
    "write to module-level mutable state %s (%s, defined at %s:%d) in code \
     reachable from the shard callback at %s; concurrent shards race on \
     it — protect it with Atomic/Mutex/Domain.DLS or accumulate per shard \
     and merge at join (suppress: divlint allow shared-mutable-escape)"
    (item_path it)
    (M.kind_word kind)
    it.it_file it.it_loc.C.l_line root

let r10_captured_msg name =
  Printf.sprintf
    "shard closure captures Rng stream '%s' from the enclosing scope and \
     draws from it; draw order then depends on shard scheduling — give \
     each shard its own substream via Exec.split_rngs / Rng.split \
     (suppress: divlint allow rng-discipline)"
    name

let r10_global_msg (it : M.item) root =
  Printf.sprintf
    "draw from module-level Rng stream %s (defined at %s:%d) in code \
     reachable from the shard callback at %s; shard code must draw from a \
     per-shard Rng.split substream (suppress: divlint allow rng-discipline)"
    (item_path it) it.it_file it.it_loc.C.l_line root

let r11_captured_msg name kind =
  Printf.sprintf
    "shard callback accumulates into captured '%s' (%s); shards complete \
     in nondeterministic order, so the merged result is not in \
     shard-index order — return per-shard values and combine them with \
     Exec.map_reduce / an indexed output slot (suppress: divlint allow \
     nondeterministic-merge)"
    name (C.kind_word kind)

let r11_hash_msg op =
  Printf.sprintf
    "Hashtbl.%s in a function that also spawns shard work; hash iteration \
     order is not shard-index order, so folding shard results this way is \
     nondeterministic — iterate sorted keys or merge per-shard values in \
     shard order (suppress: divlint allow nondeterministic-merge)"
    op

(* ------------------------------------------------------------------ *)
(* The walk                                                           *)
(* ------------------------------------------------------------------ *)

let analyze_paths roots =
  let files =
    List.fold_left collect [] roots |> List.sort_uniq compare
  in
  let parsed, errors =
    List.fold_left
      (fun (ps, es) file ->
        match
          let source = E.read_file file in
          (file, source, E.parse_implementation ~path:file source)
        with
        | p -> (p :: ps, es)
        | exception exn ->
            ( ps,
              Printf.sprintf "%s: parse error: %s" file
                (Printexc.to_string exn)
              :: es ))
      ([], []) files
  in
  let parsed = List.rev parsed and errors = List.rev errors in
  let funcs =
    List.concat_map
      (fun (file, _, str) ->
        C.harvest ~modname:(C.modname_of_file file) ~file str)
      parsed
  in
  let items =
    List.concat_map
      (fun (file, _, str) ->
        M.harvest ~modname:(C.modname_of_file file) ~file str)
      parsed
  in
  let idx = build_index funcs items in
  let findings = ref [] in
  let add rule file (loc : C.loc) message =
    if E.rule_applies rule file then
      findings :=
        {
          E.rule;
          file;
          line = loc.C.l_line;
          col = loc.C.l_col;
          message;
        }
        :: !findings
  in
  (* shared write/draw checks over a body's summary + captures ------- *)
  let check_item_write ~file ~locked ~root (it : M.item) loc =
    match it.M.it_nature with
    | M.Protected _ -> ()
    | M.Mutable M.Rng_stream -> () (* stream state advances are R10 *)
    | M.Mutable kind ->
        if not locked then
          add E.Shared_mutable_escape file loc (r9_msg it kind root)
  in
  let check_item_draw ~file ~root (it : M.item) loc =
    match it.M.it_nature with
    | M.Mutable M.Rng_stream ->
        add E.Rng_discipline file loc (r10_global_msg it root)
    | _ -> ()
  in
  (* [is_root_lambda]: capture diagnostics (R10 captured stream, R11
     completion-order accumulator) only make sense on the shard callback
     itself — a top-level function has no enclosing scope to capture
     from, so its unresolved free names can only come from opens, which
     we deliberately do not guess at. *)
  let check_body ~file ~locked ~root ~is_root_lambda (s : C.summary)
      (caps : C.capture list) =
    List.iter
      (fun (target, _kind, loc) ->
        if C.is_qualified target then
          List.iter
            (fun it -> check_item_write ~file ~locked ~root it loc)
            (resolve_item idx ~file target))
      s.C.s_writes;
    List.iter
      (fun (stream, loc) ->
        if stream <> "" && C.is_qualified stream then
          List.iter
            (fun it -> check_item_draw ~file ~root it loc)
            (resolve_item idx ~file stream))
      s.C.s_draws;
    List.iter
      (function
        | C.Cap_write (name, kind, loc) -> (
            match resolve_item idx ~file name with
            | [] ->
                if is_root_lambda then (
                  match kind with
                  | C.Assign | C.Container ->
                      add E.Nondet_merge file loc (r11_captured_msg name kind)
                  | C.Indexed -> ())
            | its ->
                List.iter
                  (fun it -> check_item_write ~file ~locked ~root it loc)
                  its)
        | C.Cap_draw (name, loc) -> (
            match resolve_item idx ~file name with
            | [] ->
                if is_root_lambda then
                  add E.Rng_discipline file loc (r10_captured_msg name)
            | its ->
                List.iter
                  (fun it -> check_item_draw ~file ~root it loc)
                  its))
      caps
  in
  (* reachability -------------------------------------------------- *)
  let visited = Hashtbl.create 256 in
  let reachable = Hashtbl.create 256 in
  let pending = Queue.create () in
  let enqueue (f : C.func) root locked =
    let key = (f.f_file, f.f_name, locked) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      Queue.add (f, root, locked) pending
    end
  in
  (* Only function bindings are execution edges: a module-level value
     binding's RHS ran once at init, before any shard existed. (The cost:
     a module-level partial application [let f = g x] hides g — see the
     DESIGN.md caveats.) *)
  let expand_refs ~file ~root ~locked (s : C.summary) =
    List.iter
      (fun (path, _) ->
        List.iter
          (fun (g : C.func) -> if g.f_is_fun then enqueue g root locked)
          (resolve_fn idx ~file path))
      s.C.s_refs
  in
  let rooted = Hashtbl.create 64 in
  (* A callback expression at a spawn site: a literal lambda is analysed
     in place; an identifier (or partial application head) is resolved
     and enqueued as a named root. *)
  let rec process_callback ~file ~root (cb : Parsetree.expression) =
    if C.is_lambda cb then begin
      let loc = C.loc_of cb.Parsetree.pexp_loc in
      let key = (file, loc.C.l_line, loc.C.l_col) in
      if not (Hashtbl.mem rooted key) then begin
        Hashtbl.replace rooted key ();
        let s = C.summarize cb in
        let caps = C.captures cb in
        let locked = s.C.s_locks in
        check_body ~file ~locked ~root ~is_root_lambda:true s caps;
        if s.C.s_spawns <> [] then
          List.iter
            (fun (op, loc) -> add E.Nondet_merge file loc (r11_hash_msg op))
            s.C.s_hashfolds;
        List.iter
          (fun ((sloc : C.loc), cbs) ->
            let nested_root = Printf.sprintf "%s:%d" file sloc.C.l_line in
            List.iter (process_callback ~file ~root:nested_root) cbs)
          s.C.s_spawns;
        expand_refs ~file ~root ~locked s
      end
    end
    else
      let head =
        match cb.Parsetree.pexp_desc with
        | Pexp_ident { txt; _ } -> Some (E.normalize (E.path_of_lid txt))
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
            Some (E.normalize (E.path_of_lid txt))
        | _ -> None
      in
      match head with
      | Some path ->
          List.iter
            (fun g -> enqueue g root false)
            (resolve_fn idx ~file path)
      | None -> ()
  in
  (* global pass: R11 hash-merge + root collection ------------------- *)
  List.iter
    (fun (f : C.func) ->
      let s = f.C.f_summary in
      if s.C.s_spawns <> [] then
        List.iter
          (fun (op, loc) ->
            add E.Nondet_merge f.C.f_file loc (r11_hash_msg op))
          s.C.s_hashfolds;
      List.iter
        (fun ((sloc : C.loc), cbs) ->
          let root = Printf.sprintf "%s:%d" f.C.f_file sloc.C.l_line in
          List.iter (process_callback ~file:f.C.f_file ~root) cbs)
        s.C.s_spawns;
      List.iter
        (fun (c : C.call) ->
          if List.exists is_entry (resolve_fn idx ~file:f.C.f_file c.c_path)
          then
            List.iter
              (fun (lbl, lam) ->
                if lbl <> Asttypes.Labelled "merge" then
                  process_callback ~file:f.C.f_file
                    ~root:
                      (Printf.sprintf "%s:%d" f.C.f_file c.c_loc.C.l_line)
                    lam)
              c.c_lambdas)
        s.C.s_calls)
    funcs;
  (* drain the worklist --------------------------------------------- *)
  let rec drain () =
    match Queue.take_opt pending with
    | None -> ()
    | Some (f, root, locked) ->
        Hashtbl.replace reachable (f.C.f_file, f.C.f_name) ();
        let s = f.C.f_summary in
        let locked = locked || s.C.s_locks in
        check_body ~file:f.C.f_file ~locked ~root ~is_root_lambda:false s
          f.C.f_captures;
        (* nested spawn sites inside a reachable function *)
        List.iter
          (fun ((sloc : C.loc), cbs) ->
            let nested = Printf.sprintf "%s:%d" f.C.f_file sloc.C.l_line in
            List.iter (process_callback ~file:f.C.f_file ~root:nested) cbs)
          s.C.s_spawns;
        expand_refs ~file:f.C.f_file ~root ~locked s;
        drain ()
  in
  drain ();
  (* suppressions + assembly ---------------------------------------- *)
  let deduped =
    List.sort_uniq compare !findings
    |> List.sort (fun (a : E.finding) b ->
           compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
  in
  let checkable = E.project_rules @ [ E.Unused_suppression ] in
  let kept, suppressed =
    List.fold_left
      (fun (ks, ss) (file, source, _) ->
        let here =
          List.filter (fun (f : E.finding) -> f.file = file) deduped
        in
        let entries = E.scan_suppressions source in
        let k, s = E.apply_suppressions ~file ~checkable entries here in
        (ks @ k, ss @ s))
      ([], []) parsed
  in
  {
    res_findings = kept;
    res_suppressed = suppressed;
    res_errors = errors;
    res_stats =
      {
        st_files = List.length files;
        st_functions = List.length funcs;
        st_reachable = Hashtbl.length reachable;
      };
  }
