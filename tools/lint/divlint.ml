(* divlint command line.

   Per-file mode (default): lint the given files/directories (default:
   the repo's source trees) with the syntactic rules R1-R8 (+W1) and
   exit 1 on any finding, 2 on parse errors.

   Project mode (--project): load every .ml under the roots (default:
   lib bin tools test bench) in one pass and run the interprocedural
   determinism rules R9-R11 (+W1); same exit codes, plus a scan-surface
   summary on stderr so a silently-shrinking scan is visible in CI. *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]
let project_default_roots = [ "lib"; "bin"; "tools"; "test"; "bench" ]

let usage =
  "divlint [--project] [--json|--sarif] [--rule R1,float-eq,...] [path ...]"

type format = Text | Json | Sarif

let () =
  let format = ref Text in
  let project = ref false in
  let only_rules = ref [] in
  let paths = ref [] in
  let add_rules spec =
    String.split_on_char ',' spec
    |> List.iter (fun tok ->
           match Divlint_lib.Engine.rule_of_token tok with
           | Some r -> only_rules := r :: !only_rules
           | None ->
               prerr_endline ("divlint: unknown rule " ^ tok);
               exit 2)
  in
  let spec =
    [
      ("--json", Arg.Unit (fun () -> format := Json),
       " emit findings as a JSON array");
      ("--sarif", Arg.Unit (fun () -> format := Sarif),
       " emit findings as a SARIF 2.1.0 log");
      ("--project", Arg.Set project,
       " run the whole-project interprocedural analysis (R9-R11)");
      ( "--rule",
        Arg.String add_rules,
        "RULES comma-separated rule ids or slugs to report (default: all)" );
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  let roots =
    match List.rev !paths with
    | [] ->
        List.filter Sys.file_exists
          (if !project then project_default_roots else default_roots)
    | ps -> ps
  in
  let findings, errors, summary =
    if !project then begin
      let r = Divlint_lib.Analysis.analyze_paths roots in
      let s = r.Divlint_lib.Analysis.res_stats in
      ( r.Divlint_lib.Analysis.res_findings,
        r.Divlint_lib.Analysis.res_errors,
        fun n ->
          Printf.sprintf
            "divlint --project: %d file(s), %d function(s), %d \
             shard-reachable, %d finding(s)"
            s.Divlint_lib.Analysis.st_files
            s.Divlint_lib.Analysis.st_functions
            s.Divlint_lib.Analysis.st_reachable n )
    end
    else begin
      let findings, errors, scanned =
        Divlint_lib.Engine.lint_paths roots
      in
      ( findings,
        errors,
        fun n -> Printf.sprintf "divlint: %d finding(s) in %d file(s)" n scanned
      )
    end
  in
  let findings =
    match !only_rules with
    | [] -> findings
    | rules ->
        List.filter
          (fun f -> List.mem f.Divlint_lib.Engine.rule rules)
          findings
  in
  List.iter prerr_endline errors;
  (match !format with
  | Json -> print_string (Divlint_lib.Engine.render_json findings)
  | Sarif -> print_string (Divlint_lib.Engine.render_sarif findings)
  | Text ->
      print_string (Divlint_lib.Engine.render_text findings);
      prerr_endline (summary (List.length findings)));
  if errors <> [] then exit 2 else if findings <> [] then exit 1
