(* divlint command line: lint the given files/directories (default: the
   repo's source trees) and exit 1 on any finding, 2 on parse errors. *)

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let usage = "divlint [--json] [--rule R1,float-eq,...] [path ...]"

let () =
  let json = ref false in
  let only_rules = ref [] in
  let paths = ref [] in
  let add_rules spec =
    String.split_on_char ',' spec
    |> List.iter (fun tok ->
           match Divlint_lib.Engine.rule_of_token tok with
           | Some r -> only_rules := r :: !only_rules
           | None ->
               prerr_endline ("divlint: unknown rule " ^ tok);
               exit 2)
  in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array");
      ( "--rule",
        Arg.String add_rules,
        "RULES comma-separated rule ids or slugs to enable (default: all)" );
    ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  let roots =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists default_roots
    | ps -> ps
  in
  let findings, errors, scanned = Divlint_lib.Engine.lint_paths roots in
  let findings =
    match !only_rules with
    | [] -> findings
    | rules -> List.filter (fun f -> List.mem f.Divlint_lib.Engine.rule rules) findings
  in
  List.iter prerr_endline errors;
  if !json then print_string (Divlint_lib.Engine.render_json findings)
  else begin
    print_string (Divlint_lib.Engine.render_text findings);
    Printf.eprintf "divlint: %d finding(s) in %d file(s)\n"
      (List.length findings) scanned
  end;
  if errors <> [] then exit 2 else if findings <> [] then exit 1
