(** The project-wide interprocedural analysis behind R9 (shared mutable
    state escaping into shard code), R10 (Rng stream discipline) and R11
    (nondeterministic merges). Loads every [.ml] under the given roots in
    one pass, harvests call-graph summaries and the module-level
    mutable-state inventory, and walks conservatively from every
    shard-callback root. See DESIGN.md for the soundness caveats. *)

type stats = {
  st_files : int;  (** .ml files scanned *)
  st_functions : int;  (** top-level bindings harvested *)
  st_reachable : int;  (** named bindings reachable from a shard callback *)
}

type result = {
  res_findings : Engine.finding list;  (** surviving findings, sorted *)
  res_suppressed : Engine.finding list;
  res_errors : string list;  (** parse-error descriptions *)
  res_stats : stats;
}

val analyze_paths : string list -> result
(** Analyse every [.ml] under the given files/directories, skipping
    [_build], dot-directories and any directory named [fixtures] (the
    deliberately-bad lint corpus; tests analyse it by passing it
    explicitly). Suppression comments work as in per-file mode; unused
    project-rule suppressions are reported as W1. *)

val collect : string list -> string -> string list
(** The file collector, exposed for the scan-surface stats test. *)
