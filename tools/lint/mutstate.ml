(* Inventory of module-level mutable state.

   A top-level [let] whose right-hand side syntactically allocates a
   mutable value (ref / array / Bytes / Hashtbl / Buffer / Queue / Stack
   / Rng stream) is a shared-state hazard when written from shard code
   (R9) or drawn from (R10). Allocations wrapped in the sanctioned
   protections — [Atomic.make], [Domain.DLS.new_key], [Mutex.create] —
   are inventoried as protected and never flagged.

   Limitations (documented in DESIGN.md): a mutable *record* literal
   ([let s = { count = 0 }]) is indistinguishable from an immutable one
   without type information, so it is not inventoried; protection is
   judged at the allocation site only. *)

type kind =
  | Ref
  | Arr
  | Bytes_buf
  | Hashtbl_t
  | Buffer_t
  | Queue_t
  | Stack_t
  | Rng_stream

let kind_word = function
  | Ref -> "ref"
  | Arr -> "array"
  | Bytes_buf -> "bytes"
  | Hashtbl_t -> "hashtable"
  | Buffer_t -> "buffer"
  | Queue_t -> "queue"
  | Stack_t -> "stack"
  | Rng_stream -> "rng stream"

type nature =
  | Mutable of kind  (** unprotected mutable state *)
  | Protected of string  (** "Atomic" / "Domain.DLS" / "Mutex" *)

type item = {
  it_name : string;
  it_mods : string list;  (** enclosing modules, outermost first *)
  it_file : string;
  it_loc : Callgraph.loc;
  it_nature : nature;
}

(* Classify the RHS of a top-level binding. Peels constraints and
   single-branch wrappers ([lazy] is left alone: forcing is itself a
   race, but none exist at module level in this repo). *)
let rec classify (e : Parsetree.expression) : nature option =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> classify e
  | Pexp_array _ -> Some (Mutable Arr)
  | Pexp_apply (fn, _) -> (
      match
        match fn.pexp_desc with
        | Pexp_ident { txt; _ } ->
            Some (Engine.normalize (Engine.path_of_lid txt))
        | _ -> None
      with
      | None -> None
      | Some path -> (
          if path = "ref" then Some (Mutable Ref)
          else if Callgraph.is_rng_create path then Some (Mutable Rng_stream)
          else
            match Callgraph.last2 path with
            | Some ("Atomic", "make") -> Some (Protected "Atomic")
            | Some ("DLS", "new_key") -> Some (Protected "Domain.DLS")
            | Some (("Mutex" | "Condition" | "Semaphore"), "create") ->
                Some (Protected "Mutex")
            | Some ("Array", ("make" | "create" | "init" | "make_matrix")) ->
                Some (Mutable Arr)
            | Some ("Bytes", ("make" | "create" | "init")) ->
                Some (Mutable Bytes_buf)
            | Some ("Hashtbl", "create") -> Some (Mutable Hashtbl_t)
            | Some ("Buffer", "create") -> Some (Mutable Buffer_t)
            | Some ("Queue", "create") -> Some (Mutable Queue_t)
            | Some ("Stack", "create") -> Some (Mutable Stack_t)
            | _ -> None))
  | _ -> None

let harvest ~modname ~file (structure : Parsetree.structure) : item list =
  let out = ref [] in
  let rec walk mods items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt = name; _ } -> (
                    match classify vb.pvb_expr with
                    | Some nature ->
                        out :=
                          {
                            it_name = name;
                            it_mods = mods;
                            it_file = file;
                            it_loc = Callgraph.loc_of vb.pvb_loc;
                            it_nature = nature;
                          }
                          :: !out
                    | None -> ())
                | _ -> ())
              vbs
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure sub_items -> walk (mods @ [ sub ]) sub_items
            | _ -> ())
        | _ -> ())
      items
  in
  walk [ modname ] structure;
  List.rev !out
