(* Per-file harvesting for the project-wide analysis.

   For every top-level binding we record a conservative summary of what
   its body does: identifiers referenced (the call-graph edges), mutation
   sites, Rng draws, shard-spawn sites, calls that carry function-literal
   arguments (for ?pool/?shards entry-point rooting), whether the body
   takes a Mutex, and Hashtbl folds. Everything is purely syntactic —
   no typing environment — so names are resolved later against the
   harvested inventory by module-component matching (see Analysis). *)

type loc = { l_line : int; l_col : int }

let loc_of (l : Location.t) =
  {
    l_line = l.loc_start.pos_lnum;
    l_col = l.loc_start.pos_cnum - l.loc_start.pos_bol;
  }

let components path = String.split_on_char '.' path

(* The last two path components, e.g. "Stdlib.Hashtbl.fold" -> ("Hashtbl",
   "fold"). Operator names ("+.") contain dots and split weirdly, but they
   never collide with the (module, function) pairs matched below. *)
let last2 path =
  match List.rev (components path) with
  | f :: m :: _ -> Some (m, f)
  | _ -> None

let last1 path =
  match List.rev (components path) with f :: _ -> f | [] -> path

let is_qualified path = String.contains path '.'

(* ------------------------------------------------------------------ *)
(* Syntactic classifiers                                              *)
(* ------------------------------------------------------------------ *)

type write_kind =
  | Assign  (** [r := v], [incr]/[decr], mutable-field assignment *)
  | Indexed  (** [a.(i) <- v], [Bytes.set], fill/blit — disjoint-slice
                 writes into preallocated buffers are the sanctioned
                 shard-output pattern, so these are exempt from R11 *)
  | Container  (** Hashtbl/Buffer/Queue/Stack mutation *)

let kind_word = function
  | Assign -> "assignment"
  | Indexed -> "indexed write"
  | Container -> "container mutation"

(* Which positional argument of a mutating stdlib call is the mutated
   value, e.g. [Array.set a i v] mutates argument 0. Returns the argument
   index and the write kind. *)
let write_op path : (int * write_kind) option =
  match path with
  | ":=" | "incr" | "decr" -> Some (0, Assign)
  | _ -> (
      match last2 path with
      | Some (("Array" | "Bytes"), ("set" | "unsafe_set" | "fill")) ->
          Some (0, Indexed)
      | Some (("Array" | "Bytes"), "blit") -> Some (2, Indexed)
      | Some
          ( "Hashtbl",
            ( "add" | "replace" | "remove" | "reset" | "clear"
            | "filter_map_inplace" ) ) ->
          Some (0, Container)
      | Some ("Buffer", op)
        when String.length op > 4 && String.sub op 0 4 = "add_" ->
          Some (0, Container)
      | Some ("Buffer", ("clear" | "reset" | "truncate")) ->
          Some (0, Container)
      | Some (("Queue" | "Stack"), "push") -> Some (1, Container)
      | Some ("Queue", "add") -> Some (1, Container)
      | Some (("Queue" | "Stack"), ("pop" | "take" | "clear")) ->
          Some (0, Container)
      | Some ("Queue", "transfer") -> Some (0, Container)
      | _ -> None)

(* The draw operations of Numerics.Rng: anything that advances a stream's
   state. [split] is excluded — deriving a substream is exactly the
   sanctioned pattern. *)
let rng_draw_fns =
  [ "float"; "int"; "bool"; "uniform"; "shuffle_in_place"; "next_int64" ]

let is_rng_draw path =
  match last2 path with
  | Some ("Rng", f) -> List.mem f rng_draw_fns
  | _ -> false

let is_rng_create path =
  match last2 path with
  | Some ("Rng", ("create" | "split")) -> true
  | _ -> false

type spawn_api =
  | Map_shards  (** Exec.map_shards / Exec.map_reduce: callback is [~f] *)
  | Pool_run  (** Pool.run: callback is the last positional argument *)

let spawn_api path =
  match last2 path with
  | Some ("Exec", ("map_shards" | "map_reduce")) -> Some Map_shards
  | Some ("Pool", "run") -> Some Pool_run
  | _ -> (
      (* unqualified calls inside lib/exec itself *)
      match path with
      | "map_shards" | "map_reduce" -> Some Map_shards
      | _ -> None)

let is_lock path =
  match last2 path with
  | Some ("Mutex", ("lock" | "protect")) -> true
  | _ -> false

let is_hashfold path =
  match last2 path with
  | Some ("Hashtbl", (("fold" | "iter") as op)) -> Some op
  | _ -> None

let rec is_lambda (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, body) -> is_lambda body
  | Pexp_constraint (body, _) -> is_lambda body
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Summaries                                                          *)
(* ------------------------------------------------------------------ *)

type call = {
  c_path : string;  (** normalized callee path *)
  c_loc : loc;
  c_lambdas : (Asttypes.arg_label * Parsetree.expression) list;
      (** the function-literal arguments of the call *)
}

type summary = {
  s_refs : (string * loc) list;  (** every identifier referenced *)
  s_writes : (string * write_kind * loc) list;
      (** mutation sites whose target is a plain identifier (possibly
          module-qualified) *)
  s_draws : (string * loc) list;
      (** Rng draw sites; the string is the stream argument when it is a
          plain identifier, [""] otherwise *)
  s_spawns : (loc * Parsetree.expression list) list;
      (** shard-spawn sites and their callback expressions *)
  s_calls : call list;  (** calls that carry function-literal arguments *)
  s_locks : bool;  (** body takes a Mutex (lock or protect) *)
  s_hashfolds : (string * loc) list;  (** Hashtbl.fold / Hashtbl.iter sites *)
}

let path_of_lid = Engine.path_of_lid
let normalize = Engine.normalize

let ident_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (normalize (path_of_lid txt))
  | _ -> None

let positional args =
  List.filter_map
    (fun (lbl, a) -> if lbl = Asttypes.Nolabel then Some a else None)
    args

let summarize (expr : Parsetree.expression) : summary =
  let refs = ref [] in
  let writes = ref [] in
  let draws = ref [] in
  let spawns = ref [] in
  let calls = ref [] in
  let locks = ref false in
  let hashfolds = ref [] in
  let handle_apply (e : Parsetree.expression) fn args =
    match ident_path fn with
    | None -> ()
    | Some path ->
        let loc = loc_of e.Parsetree.pexp_loc in
        (match write_op path with
        | Some (idx, kind) -> (
            match List.nth_opt (positional args) idx with
            | Some target -> (
                match ident_path target with
                | Some tpath -> writes := (tpath, kind, loc) :: !writes
                | None -> ())
            | None -> ())
        | None -> ());
        if is_rng_draw path then begin
          let stream =
            match positional args with
            | a :: _ -> Option.value (ident_path a) ~default:""
            | [] -> ""
          in
          draws := (stream, loc) :: !draws
        end;
        (match spawn_api path with
        | Some Map_shards ->
            let cbs =
              List.filter_map
                (fun (lbl, a) ->
                  if lbl = Asttypes.Labelled "f" then Some a else None)
                args
            in
            if cbs <> [] then spawns := (loc, cbs) :: !spawns
        | Some Pool_run ->
            let labelled_f =
              List.filter_map
                (fun (lbl, a) ->
                  if lbl = Asttypes.Labelled "f" then Some a else None)
                args
            in
            let last_pos =
              match List.rev (positional args) with
              | cb :: _ :: _ -> [ cb ] (* at least (pool, callback) *)
              | _ -> []
            in
            let cbs = labelled_f @ last_pos in
            if cbs <> [] then spawns := (loc, cbs) :: !spawns
        | None -> ());
        if is_lock path then locks := true;
        (match is_hashfold path with
        | Some op -> hashfolds := (op, loc) :: !hashfolds
        | None -> ());
        let lambdas =
          List.filter (fun (_, a) -> is_lambda a) args
        in
        if lambdas <> [] then
          calls := { c_path = path; c_loc = loc; c_lambdas = lambdas } :: !calls
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
              refs :=
                (normalize (path_of_lid txt), loc_of e.pexp_loc) :: !refs
          | Pexp_apply (fn, args) -> handle_apply e fn args
          | Pexp_setfield (target, _, _) -> (
              match ident_path target with
              | Some tpath ->
                  writes := (tpath, Assign, loc_of e.pexp_loc) :: !writes
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr;
  {
    s_refs = List.rev !refs;
    s_writes = List.rev !writes;
    s_draws = List.rev !draws;
    s_spawns = List.rev !spawns;
    s_calls = List.rev !calls;
    s_locks = !locks;
    s_hashfolds = List.rev !hashfolds;
  }

(* ------------------------------------------------------------------ *)
(* Captures                                                           *)
(* ------------------------------------------------------------------ *)

type capture =
  | Cap_write of string * write_kind * loc
      (** the closure mutates a free (captured) variable *)
  | Cap_draw of string * loc
      (** the closure draws from a free (captured) Rng stream *)

(* Names bound by any pattern anywhere inside [expr] (parameters, lets,
   match cases, ...). Used as an over-approximation of "locally bound":
   a name in this set is never reported as captured. This can only cause
   false negatives (a shadowing inner binding hides an outer capture),
   never false positives. *)
let bound_names expr =
  let bound = Hashtbl.create 16 in
  let iter =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              Hashtbl.replace bound txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  iter.expr iter expr;
  bound

(* The mutation/draw sites of [lambda] whose target is an *unqualified*
   name not bound anywhere inside the lambda — i.e. captured from the
   enclosing scope. Qualified (module-level) targets are resolved
   separately against the mutable-state inventory. *)
let captures (lambda : Parsetree.expression) : capture list =
  let s = summarize lambda in
  let bound = bound_names lambda in
  let free name =
    name <> "" && (not (is_qualified name)) && not (Hashtbl.mem bound name)
  in
  List.filter_map
    (fun (name, kind, loc) ->
      if free name then Some (Cap_write (name, kind, loc)) else None)
    s.s_writes
  @ List.filter_map
      (fun (name, loc) ->
        if free name then Some (Cap_draw (name, loc)) else None)
      s.s_draws

(* ------------------------------------------------------------------ *)
(* Top-level harvesting                                               *)
(* ------------------------------------------------------------------ *)

type func = {
  f_name : string;  (** binding name, ["Sub.f"] inside a submodule *)
  f_mods : string list;
      (** enclosing module components, outermost first: [["Exec"]] for a
          top-level binding of exec.ml, [["Exec"; "Sub"]] inside
          [module Sub = struct ... end] *)
  f_file : string;
  f_loc : loc;
  f_params : string list;
      (** value-parameter names of the outer [fun]/[function] chain *)
  f_opt_labels : string list;
      (** optional-argument labels ([?pool], [?shards], ...) *)
  f_summary : summary;
  f_captures : capture list;
      (** mutation/draw sites on unqualified names not bound anywhere in
          the body — for a top-level binding these can only be
          module-level state (or open-imported names, which resolution
          ignores) *)
  f_is_fun : bool;
      (** the RHS is syntactically a function. A non-function binding's
          RHS runs exactly once at module initialisation — before any
          shard exists — so referencing it from shard code is not an
          execution edge. *)
}

let rec pattern_vars (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pattern_vars p
  | Ppat_constraint (p, _) -> pattern_vars p
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | _ -> []

(* Walk the outer fun chain collecting parameter names and optional-arg
   labels. *)
let rec fun_signature (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
      let params, opts = fun_signature body in
      let opts =
        match lbl with
        | Asttypes.Optional name -> name :: opts
        | _ -> opts
      in
      (pattern_vars pat @ params, opts)
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> fun_signature body
  | _ -> ([], [])

let binding_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let harvest ~modname ~file (structure : Parsetree.structure) : func list =
  let out = ref [] in
  let rec walk_structure mods prefix items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                let name =
                  match binding_name vb.pvb_pat with
                  | Some n -> prefix ^ n
                  | None ->
                      Printf.sprintf "%s(init:%d)" prefix
                        vb.pvb_loc.loc_start.pos_lnum
                in
                let params, opts = fun_signature vb.pvb_expr in
                out :=
                  {
                    f_name = name;
                    f_mods = mods;
                    f_file = file;
                    f_loc = loc_of vb.pvb_loc;
                    f_params = params;
                    f_opt_labels = opts;
                    f_summary = summarize vb.pvb_expr;
                    f_captures = captures vb.pvb_expr;
                    f_is_fun = is_lambda vb.pvb_expr;
                  }
                  :: !out)
              vbs
        | Pstr_eval (e, _) ->
            out :=
              {
                f_name =
                  Printf.sprintf "%s(init:%d)" prefix
                    item.pstr_loc.loc_start.pos_lnum;
                f_mods = mods;
                f_file = file;
                f_loc = loc_of item.pstr_loc;
                f_params = [];
                f_opt_labels = [];
                f_summary = summarize e;
                f_captures = captures e;
                f_is_fun = false;
              }
              :: !out
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } -> (
            match pmb_expr.pmod_desc with
            | Pmod_structure sub_items ->
                walk_structure (mods @ [ sub ]) (prefix ^ sub ^ ".")
                  sub_items
            | _ -> ())
        | _ -> ())
      items
  in
  walk_structure [ modname ] "" structure;
  List.rev !out

let modname_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))
