(* divlint — numerical-reliability static analysis for this repo.

   Parses every .ml with compiler-libs and walks the Parsetree with
   Ast_iterator, enforcing the project rules documented in README.md
   ("Static analysis"). The per-file checks (R1-R8) are deliberately
   syntactic: they run before type-checking, need no build context, and
   therefore work on any parseable source file, including the known-bad
   fixture corpus. The project-wide rules (R9-R11) live in Analysis,
   which builds on the same finding/suppression machinery here. *)

type rule =
  | Float_eq (* R1: exact float (in)equality against a float literal *)
  | Random_use (* R2: Stdlib.Random outside lib/numerics/rng.ml *)
  | Float_sum (* R3: naive +. accumulation via fold_left *)
  | Missing_mli (* R4: lib module without an interface file *)
  | Print_effect (* R5: printing side effect in lib/ outside lib/report/ *)
  | Partial_fun (* R6: partial function (List.hd / List.nth / Option.get) *)
  | Wallclock (* R7: non-monotonic time source outside lib/obs/ *)
  | Domain_containment (* R8: Domain/Atomic primitive outside lib/exec/ *)
  | Shared_mutable_escape
    (* R9: module-level mutable state written from shard-reachable code *)
  | Rng_discipline
    (* R10: parent/global Rng stream drawn from inside shard code *)
  | Nondet_merge
    (* R11: shard results accumulated outside shard-index order *)
  | Unused_suppression
    (* W1: a divlint-allow comment whose rule never fires on its line *)

let syntactic_rules =
  [
    Float_eq;
    Random_use;
    Float_sum;
    Missing_mli;
    Print_effect;
    Partial_fun;
    Wallclock;
    Domain_containment;
  ]

let project_rules = [ Shared_mutable_escape; Rng_discipline; Nondet_merge ]
let all_rules = syntactic_rules @ project_rules @ [ Unused_suppression ]

let rule_id = function
  | Float_eq -> "R1"
  | Random_use -> "R2"
  | Float_sum -> "R3"
  | Missing_mli -> "R4"
  | Print_effect -> "R5"
  | Partial_fun -> "R6"
  | Wallclock -> "R7"
  | Domain_containment -> "R8"
  | Shared_mutable_escape -> "R9"
  | Rng_discipline -> "R10"
  | Nondet_merge -> "R11"
  | Unused_suppression -> "W1"

let rule_slug = function
  | Float_eq -> "float-eq"
  | Random_use -> "random"
  | Float_sum -> "float-sum"
  | Missing_mli -> "missing-mli"
  | Print_effect -> "print"
  | Partial_fun -> "partial"
  | Wallclock -> "wallclock"
  | Domain_containment -> "domain-containment"
  | Shared_mutable_escape -> "shared-mutable-escape"
  | Rng_discipline -> "rng-discipline"
  | Nondet_merge -> "nondeterministic-merge"
  | Unused_suppression -> "unused-suppression"

let rule_doc = function
  | Float_eq -> "exact float (in)equality against a float literal"
  | Random_use -> "Stdlib.Random outside the seeded Numerics.Rng"
  | Float_sum -> "naive float accumulation via fold_left ( +. )"
  | Missing_mli -> "lib module without an interface file"
  | Print_effect -> "printing side effect in lib/ outside lib/report/"
  | Partial_fun -> "partial function in lib/"
  | Wallclock -> "non-monotonic time source outside lib/obs/"
  | Domain_containment -> "parallelism primitive outside lib/exec/"
  | Shared_mutable_escape ->
      "module-level mutable state written from shard-reachable code without \
       Atomic/Mutex/Domain.DLS protection"
  | Rng_discipline ->
      "parent or module-level Rng stream drawn from shard code instead of a \
       per-shard Rng.split substream"
  | Nondet_merge ->
      "shard results accumulated in completion or hash order instead of \
       shard-index order"
  | Unused_suppression ->
      "a (* divlint: allow ... *) comment whose rule never fires on its line"

let rule_of_token tok =
  let tok = String.lowercase_ascii (String.trim tok) in
  List.find_opt
    (fun r ->
      String.lowercase_ascii (rule_id r) = tok || rule_slug r = tok)
    all_rules

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

(* ------------------------------------------------------------------ *)
(* Rule scoping                                                       *)
(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

type scope = Everywhere | Lib_only

let rule_scope = function
  | Missing_mli | Print_effect | Partial_fun -> Lib_only
  | _ -> Everywhere

(* The single source of truth for path-based rule exemptions: which rules
   are switched off under which trees. A pattern ending in '/' exempts
   the whole subtree; any other pattern must match the path exactly.
   R1-R11 all consult this table (W1 applies everywhere). *)
let exemption_table =
  [
    ("lib/numerics/rng.ml", [ Random_use ]);
    ("lib/report/", [ Print_effect ]);
    ("lib/obs/", [ Wallclock ]);
    ("lib/exec/", [ Domain_containment; Shared_mutable_escape ]);
  ]

let exempt_rules relpath =
  List.concat_map
    (fun (pat, rules) ->
      let matches =
        if pat <> "" && pat.[String.length pat - 1] = '/' then
          has_prefix ~prefix:pat relpath
        else relpath = pat
      in
      if matches then rules else [])
    exemption_table

let rule_applies rule relpath =
  (match rule_scope rule with
  | Everywhere -> true
  | Lib_only -> has_prefix ~prefix:"lib/" relpath)
  && not (List.mem rule (exempt_rules relpath))

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)
(* ------------------------------------------------------------------ *)

(* A comment of the form "divlint: allow float-eq" suppresses matching
   findings on its line; when the comment is the only thing on its line it
   suppresses the following line instead. Several slugs (or rule ids, or
   "all") may be listed, separated by spaces or commas. Each comment is
   tracked individually so that a suppression which never fires can
   itself be reported (W1). *)

type suppression_spec = Allow_all | Allow of rule list

type suppression_entry = {
  sup_line : int; (* line the comment sits on *)
  sup_target : int; (* line whose findings it suppresses *)
  sup_spec : suppression_spec;
  mutable sup_used : bool;
}

let suppression_re =
  Str.regexp
    "(\\*[ \t]*divlint[ \t]*:[ \t]*allow[ \t]+\\([A-Za-z0-9, \t-]+\\)\\*)"

let is_blank s = String.trim s = ""

let parse_suppression_tokens text =
  let tokens =
    Str.split (Str.regexp "[ \t,]+") text
    |> List.filter (fun t -> t <> "")
  in
  if List.exists (fun t -> String.lowercase_ascii t = "all") tokens then
    Some Allow_all
  else
    match List.filter_map rule_of_token tokens with
    | [] -> None
    | rules -> Some (Allow rules)

let scan_suppressions source =
  let entries = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match Str.search_forward suppression_re line 0 with
      | exception Not_found -> ()
      | start ->
          let matched = Str.matched_string line in
          let tokens = Str.matched_group 1 line in
          (match parse_suppression_tokens tokens with
          | None -> ()
          | Some spec ->
              let stop = start + String.length matched in
              let before = String.sub line 0 start in
              let after =
                String.sub line stop (String.length line - stop)
              in
              let standalone = is_blank before && is_blank after in
              let target = (i + 1) + if standalone then 1 else 0 in
              entries :=
                {
                  sup_line = i + 1;
                  sup_target = target;
                  sup_spec = spec;
                  sup_used = false;
                }
                :: !entries))
    lines;
  List.rev !entries

let spec_allows spec rule =
  match spec with Allow_all -> true | Allow rules -> List.mem rule rules

(* Partition [findings] into (kept, suppressed) under [entries], marking
   each entry that suppresses something as used; then report entries that
   are judged unused as W1 findings. An entry is only judged when every
   rule it lists was actually checkable in this run — a per-file pass
   cannot tell whether a project-rule suppression is stale and vice
   versa. [Allow_all] entries are never judged (no single pass checks
   every rule). W1 findings are themselves suppressible: meta-suppressions
   are consumed first so that silencing a W1 does not beget another. *)
let apply_suppressions ~file ~checkable entries findings =
  let suppress f =
    let hit = ref false in
    List.iter
      (fun e ->
        if e.sup_target = f.line && spec_allows e.sup_spec f.rule then begin
          e.sup_used <- true;
          hit := true
        end)
      entries;
    !hit
  in
  let kept, dropped = List.partition (fun f -> not (suppress f)) findings in
  if not (List.mem Unused_suppression checkable) then (kept, dropped)
  else begin
    let warning e =
      let listed =
        match e.sup_spec with
        | Allow_all -> "all"
        | Allow rules -> String.concat ", " (List.map rule_slug rules)
      in
      {
        rule = Unused_suppression;
        file;
        line = e.sup_line;
        col = 0;
        message =
          Printf.sprintf
            "suppression (allow %s) never matched a finding on its target \
             line in this run; remove it or fix the rule list"
            listed;
      }
    in
    let judged e =
      (not e.sup_used)
      &&
      match e.sup_spec with
      | Allow_all -> false
      | Allow rules -> List.for_all (fun r -> List.mem r checkable) rules
    in
    let mentions_w1 e =
      match e.sup_spec with
      | Allow_all -> false
      | Allow rules -> List.mem Unused_suppression rules
    in
    (* Stage 1: ordinary stale suppressions; filtering these marks any
       meta-suppression that silences them as used. *)
    let stage1 =
      entries
      |> List.filter (fun e -> judged e && not (mentions_w1 e))
      |> List.map warning
    in
    let kept1, dropped1 =
      List.partition (fun f -> not (suppress f)) stage1
    in
    (* Stage 2: meta-suppressions that are still unused after stage 1. *)
    let stage2 =
      entries
      |> List.filter (fun e -> judged e && mentions_w1 e)
      |> List.map warning
    in
    let kept2, dropped2 =
      List.partition (fun f -> not (suppress f)) stage2
    in
    (kept @ kept1 @ kept2, dropped @ dropped1 @ dropped2)
  end

(* ------------------------------------------------------------------ *)
(* AST helpers                                                        *)
(* ------------------------------------------------------------------ *)

let path_of_lid lid = String.concat "." (Longident.flatten lid)

let normalize path =
  if has_prefix ~prefix:"Stdlib." path then
    String.sub path 7 (String.length path - 7)
  else path

let last_component path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let rec is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+."); _ }; _ },
        [ (_, arg) ] ) ->
      is_float_literal arg
  | _ -> false

let fold_left_paths =
  [
    "List.fold_left";
    "Array.fold_left";
    "ListLabels.fold_left";
    "ArrayLabels.fold_left";
    "Seq.fold_left";
  ]

(* [( +. )] itself, or an eta-expanded accumulator [fun acc x -> acc +. x]
   (possibly with the operands swapped or through more parameters). Note
   operator names contain a dot, so compare whole normalized paths rather
   than path components. *)
let is_float_add_ident txt = normalize (path_of_lid txt) = "+."

let rec is_float_add_fn (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> is_float_add_ident txt
  | Pexp_fun (_, _, _, body) -> is_float_add_fn body
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      is_float_add_ident txt
  | _ -> false

let printer_paths =
  [
    "Printf.printf";
    "Printf.eprintf";
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "Format.printf";
    "Format.eprintf";
    "Format.print_string";
    "Format.print_newline";
  ]

let partial_paths = [ "List.hd"; "List.tl"; "List.nth"; "Option.get" ]

let wallclock_paths = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

(* R8: the spawn/join primitives, plus anything in Atomic. Atomic is
   matched by module prefix so new operations (exchange, compare_and_set,
   ...) are caught without listing them. *)
let domain_paths = [ "Domain.spawn"; "Domain.join" ]

let is_domain_primitive path =
  List.mem path domain_paths || has_prefix ~prefix:"Atomic." path

(* ------------------------------------------------------------------ *)
(* The walk                                                           *)
(* ------------------------------------------------------------------ *)

let message rule detail =
  match rule with
  | Float_eq ->
      Printf.sprintf
        "exact float comparison (%s) against a float literal; use \
         Numerics.Stats.approx_eq / Numerics.Stats.is_zero (or classify \
         the float) or suppress with a divlint allow comment (float-eq)"
        detail
  | Random_use ->
      Printf.sprintf
        "%s: Stdlib.Random is only allowed in lib/numerics/rng.ml; route \
         all randomness through the seeded Numerics.Rng"
        detail
  | Float_sum ->
      "naive float accumulation via fold_left ( +. ); use \
       Numerics.Kahan.sum_array / Kahan.sum_over (or Numerics.Welford for \
       running moments)"
  | Missing_mli ->
      Printf.sprintf
        "lib module without an interface: expected %si next to %s" detail
        detail
  | Print_effect ->
      Printf.sprintf
        "%s: printing side effect in lib/ (only lib/report may print); \
         return a string and let the caller print"
        detail
  | Partial_fun ->
      Printf.sprintf
        "partial function %s in lib/; match explicitly or use the _opt \
         variant"
        detail
  | Wallclock ->
      Printf.sprintf
        "%s: non-monotonic time source outside lib/obs/; route all timing \
         through the monotonic Obs.Clock"
        detail
  | Domain_containment ->
      Printf.sprintf
        "%s: domain primitive outside lib/exec/; run parallel work through \
         Exec.Pool / Exec.map_reduce so results stay deterministic, or \
         suppress with a divlint allow comment (domain-containment)"
        detail
  | Shared_mutable_escape | Rng_discipline | Nondet_merge ->
      (* project rules compose their own messages in Analysis *)
      detail
  | Unused_suppression -> detail

let findings_of_structure relpath structure =
  let acc = ref [] in
  let add (loc : Location.t) rule detail =
    if rule_applies rule relpath then begin
      let pos = loc.loc_start in
      !acc
      |> List.exists (fun f ->
             f.rule = rule && f.line = pos.pos_lnum
             && f.col = pos.pos_cnum - pos.pos_bol)
      |> fun dup ->
      if not dup then
        acc :=
          {
            rule;
            file = relpath;
            line = pos.pos_lnum;
            col = pos.pos_cnum - pos.pos_bol;
            message = message rule detail;
          }
          :: !acc
    end
  in
  let check_ident loc path =
    let path = normalize path in
    (match String.index_opt path '.' with
    | Some i when String.sub path 0 i = "Random" -> add loc Random_use path
    | _ -> ());
    if List.mem path printer_paths then add loc Print_effect path;
    if List.mem path partial_paths then add loc Partial_fun path;
    if List.mem path wallclock_paths then add loc Wallclock path;
    if is_domain_primitive path then add loc Domain_containment path
  in
  let check_apply (e : Parsetree.expression) fn args =
    match fn.Parsetree.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let path = normalize (path_of_lid txt) in
        let op = last_component path in
        if
          (op = "=" || op = "<>")
          && List.exists (fun (_, a) -> is_float_literal a) args
        then add e.pexp_loc Float_eq op;
        if List.mem path fold_left_paths || path = "fold_left" then (
          (* the folded function: the ~f argument if labelled, the first
             positional argument otherwise *)
          let folded =
            match
              List.find_opt
                (fun (lbl, _) -> lbl = Asttypes.Labelled "f")
                args
            with
            | Some (_, f0) -> Some f0
            | None -> (
                match args with
                | (Asttypes.Nolabel, f0) :: _ -> Some f0
                | _ -> None)
          in
          match folded with
          | Some f0 when is_float_add_fn f0 -> add e.pexp_loc Float_sum ""
          | _ -> ())
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, args) -> check_apply e fn args
          | Pexp_ident { txt; _ } -> check_ident e.pexp_loc (path_of_lid txt)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.structure iterator structure;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Driving                                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.implementation lexbuf

type outcome = { kept : finding list; dropped : finding list }

let lint_source_full ?(rules = syntactic_rules) ?relpath ~path source =
  let relpath = Option.value relpath ~default:path in
  let structure = parse_implementation ~path source in
  let entries = scan_suppressions source in
  let ast_findings = findings_of_structure relpath structure in
  let mli_findings =
    if
      Filename.check_suffix relpath ".ml"
      && rule_applies Missing_mli relpath
      && not (Sys.file_exists (path ^ "i"))
    then
      [
        {
          rule = Missing_mli;
          file = relpath;
          line = 1;
          col = 0;
          message = message Missing_mli relpath;
        };
      ]
    else []
  in
  let raw =
    List.filter (fun f -> List.mem f.rule rules) (mli_findings @ ast_findings)
  in
  let checkable = Unused_suppression :: rules in
  let kept, dropped =
    apply_suppressions ~file:relpath ~checkable entries raw
  in
  { kept; dropped }

let lint_source ?rules ?relpath ~path source =
  (lint_source_full ?rules ?relpath ~path source).kept

let lint_file ?rules ?relpath path =
  lint_source ?rules ?relpath ~path (read_file path)

let rec collect_ml_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else collect_ml_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths ?rules paths =
  let files =
    List.fold_left collect_ml_files [] paths |> List.sort_uniq compare
  in
  let findings, errors =
    List.fold_left
      (fun (fs, es) file ->
        match lint_file ?rules file with
        | findings -> (fs @ findings, es)
        | exception exn ->
            let err =
              Printf.sprintf "%s: parse error: %s" file
                (Printexc.to_string exn)
            in
            (fs, es @ [ err ]))
      ([], []) files
  in
  (findings, errors, List.length files)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let render_finding f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" f.file f.line f.col (rule_id f.rule)
    (rule_slug f.rule) f.message

let render_text findings =
  String.concat "" (List.map (fun f -> render_finding f ^ "\n") findings)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json findings =
  let item f =
    Printf.sprintf
      "{\"rule\":\"%s\",\"slug\":\"%s\",\"file\":\"%s\",\"line\":%d,\
       \"col\":%d,\"message\":\"%s\"}"
      (rule_id f.rule) (rule_slug f.rule) (json_escape f.file) f.line f.col
      (json_escape f.message)
  in
  "[" ^ String.concat "," (List.map item findings) ^ "]\n"

(* SARIF 2.1.0 (the static-analysis interchange format CI systems render
   as code annotations). One run, one driver, the full rule table, one
   result per finding. Columns are 1-based in SARIF; divlint's are
   0-based, hence the + 1. *)
let render_sarif findings =
  let rule_json r =
    Printf.sprintf
      "{\"id\":\"%s\",\"name\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}"
      (rule_id r) (json_escape (rule_slug r))
      (json_escape (rule_doc r))
  in
  let rule_index r =
    let rec go i = function
      | [] -> -1
      | r' :: rest -> if r' = r then i else go (i + 1) rest
    in
    go 0 all_rules
  in
  let result f =
    let level =
      match f.rule with Unused_suppression -> "warning" | _ -> "error"
    in
    Printf.sprintf
      "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\",\
       \"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":\
       {\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\
       \"startColumn\":%d}}}]}"
      (rule_id f.rule) (rule_index f.rule) level (json_escape f.message)
      (json_escape f.file) f.line (f.col + 1)
  in
  Printf.sprintf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
     \"name\":\"divlint\",\"informationUri\":\
     \"https://example.invalid/divlint\",\"rules\":[%s]}},\"results\":[%s]}]}\n"
    (String.concat "," (List.map rule_json all_rules))
    (String.concat "," (List.map result findings))
