(* divlint — numerical-reliability static analysis for this repo.

   Parses every .ml with compiler-libs and walks the Parsetree with
   Ast_iterator, enforcing the project rules documented in README.md
   ("Static analysis"). The checks are deliberately syntactic: they run
   before type-checking, need no build context, and therefore work on any
   parseable source file, including the known-bad fixture corpus. *)

type rule =
  | Float_eq (* R1: exact float (in)equality against a float literal *)
  | Random_use (* R2: Stdlib.Random outside lib/numerics/rng.ml *)
  | Float_sum (* R3: naive +. accumulation via fold_left *)
  | Missing_mli (* R4: lib module without an interface file *)
  | Print_effect (* R5: printing side effect in lib/ outside lib/report/ *)
  | Partial_fun (* R6: partial function (List.hd / List.nth / Option.get) *)
  | Wallclock (* R7: non-monotonic time source outside lib/obs/ *)
  | Domain_containment (* R8: Domain/Atomic primitive outside lib/exec/ *)

let all_rules =
  [
    Float_eq;
    Random_use;
    Float_sum;
    Missing_mli;
    Print_effect;
    Partial_fun;
    Wallclock;
    Domain_containment;
  ]

let rule_id = function
  | Float_eq -> "R1"
  | Random_use -> "R2"
  | Float_sum -> "R3"
  | Missing_mli -> "R4"
  | Print_effect -> "R5"
  | Partial_fun -> "R6"
  | Wallclock -> "R7"
  | Domain_containment -> "R8"

let rule_slug = function
  | Float_eq -> "float-eq"
  | Random_use -> "random"
  | Float_sum -> "float-sum"
  | Missing_mli -> "missing-mli"
  | Print_effect -> "print"
  | Partial_fun -> "partial"
  | Wallclock -> "wallclock"
  | Domain_containment -> "domain-containment"

let rule_of_token tok =
  let tok = String.lowercase_ascii (String.trim tok) in
  List.find_opt
    (fun r ->
      String.lowercase_ascii (rule_id r) = tok || rule_slug r = tok)
    all_rules

type finding = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  message : string;
}

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)
(* ------------------------------------------------------------------ *)

(* [(* divlint: allow float-eq *)] on a line suppresses matching findings
   on that line; when the comment is the only thing on its line it
   suppresses the following line instead. Several slugs (or rule ids, or
   [all]) may be listed, separated by spaces or commas. *)

type suppression = Allow_all | Allow of rule list

let suppression_re =
  Str.regexp
    "(\\*[ \t]*divlint[ \t]*:[ \t]*allow[ \t]+\\([A-Za-z0-9, \t-]+\\)\\*)"

let is_blank s = String.trim s = ""

let parse_suppression_tokens text =
  let tokens =
    Str.split (Str.regexp "[ \t,]+") text
    |> List.filter (fun t -> t <> "")
  in
  if List.exists (fun t -> String.lowercase_ascii t = "all") tokens then
    Some Allow_all
  else
    match List.filter_map rule_of_token tokens with
    | [] -> None
    | rules -> Some (Allow rules)

(* line number -> suppressions in force on that line *)
let scan_suppressions source =
  let tbl = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match Str.search_forward suppression_re line 0 with
      | exception Not_found -> ()
      | start ->
          let matched = Str.matched_string line in
          let tokens = Str.matched_group 1 line in
          (match parse_suppression_tokens tokens with
          | None -> ()
          | Some sup ->
              let stop = start + String.length matched in
              let before = String.sub line 0 start in
              let after =
                String.sub line stop (String.length line - stop)
              in
              let standalone = is_blank before && is_blank after in
              let target = (i + 1) + if standalone then 1 else 0 in
              Hashtbl.add tbl target sup))
    lines;
  tbl

let suppressed tbl line rule =
  List.exists
    (function Allow_all -> true | Allow rules -> List.mem rule rules)
    (Hashtbl.find_all tbl line)

(* ------------------------------------------------------------------ *)
(* Path classification                                                *)
(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

type ctx = {
  relpath : string; (* path as reported, used for rule scoping *)
  in_lib : bool;
  in_report : bool;
  in_obs : bool;
  in_exec : bool;
  is_rng : bool;
}

let make_ctx relpath =
  {
    relpath;
    in_lib = has_prefix ~prefix:"lib/" relpath;
    in_report = has_prefix ~prefix:"lib/report/" relpath;
    in_obs = has_prefix ~prefix:"lib/obs/" relpath;
    in_exec = has_prefix ~prefix:"lib/exec/" relpath;
    is_rng = relpath = "lib/numerics/rng.ml";
  }

(* ------------------------------------------------------------------ *)
(* AST helpers                                                        *)
(* ------------------------------------------------------------------ *)

let path_of_lid lid = String.concat "." (Longident.flatten lid)

let normalize path =
  if has_prefix ~prefix:"Stdlib." path then
    String.sub path 7 (String.length path - 7)
  else path

let last_component path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let rec is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+."); _ }; _ },
        [ (_, arg) ] ) ->
      is_float_literal arg
  | _ -> false

let fold_left_paths =
  [
    "List.fold_left";
    "Array.fold_left";
    "ListLabels.fold_left";
    "ArrayLabels.fold_left";
    "Seq.fold_left";
  ]

(* [( +. )] itself, or an eta-expanded accumulator [fun acc x -> acc +. x]
   (possibly with the operands swapped or through more parameters). Note
   operator names contain a dot, so compare whole normalized paths rather
   than path components. *)
let is_float_add_ident txt = normalize (path_of_lid txt) = "+."

let rec is_float_add_fn (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> is_float_add_ident txt
  | Pexp_fun (_, _, _, body) -> is_float_add_fn body
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      is_float_add_ident txt
  | _ -> false

let printer_paths =
  [
    "Printf.printf";
    "Printf.eprintf";
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "Format.printf";
    "Format.eprintf";
    "Format.print_string";
    "Format.print_newline";
  ]

let partial_paths = [ "List.hd"; "List.tl"; "List.nth"; "Option.get" ]

let wallclock_paths = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

(* R8: the spawn/join primitives, plus anything in Atomic. Atomic is
   matched by module prefix so new operations (exchange, compare_and_set,
   ...) are caught without listing them. *)
let domain_paths = [ "Domain.spawn"; "Domain.join" ]

let is_domain_primitive path =
  List.mem path domain_paths || has_prefix ~prefix:"Atomic." path

(* ------------------------------------------------------------------ *)
(* The walk                                                           *)
(* ------------------------------------------------------------------ *)

let message rule detail =
  match rule with
  | Float_eq ->
      Printf.sprintf
        "exact float comparison (%s) against a float literal; use \
         Numerics.Stats.approx_eq / Numerics.Stats.is_zero (or classify \
         the float) or annotate with (* divlint: allow float-eq *)"
        detail
  | Random_use ->
      Printf.sprintf
        "%s: Stdlib.Random is only allowed in lib/numerics/rng.ml; route \
         all randomness through the seeded Numerics.Rng"
        detail
  | Float_sum ->
      "naive float accumulation via fold_left ( +. ); use \
       Numerics.Kahan.sum_array / Kahan.sum_over (or Numerics.Welford for \
       running moments)"
  | Missing_mli ->
      Printf.sprintf
        "lib module without an interface: expected %si next to %s" detail
        detail
  | Print_effect ->
      Printf.sprintf
        "%s: printing side effect in lib/ (only lib/report may print); \
         return a string and let the caller print"
        detail
  | Partial_fun ->
      Printf.sprintf
        "partial function %s in lib/; match explicitly or use the _opt \
         variant"
        detail
  | Wallclock ->
      Printf.sprintf
        "%s: non-monotonic time source outside lib/obs/; route all timing \
         through the monotonic Obs.Clock"
        detail
  | Domain_containment ->
      Printf.sprintf
        "%s: domain primitive outside lib/exec/; run parallel work through \
         Exec.Pool / Exec.map_reduce so results stay deterministic, or \
         annotate with (* divlint: allow domain-containment *)"
        detail

let findings_of_structure ctx structure =
  let acc = ref [] in
  let add (loc : Location.t) rule detail =
    let pos = loc.loc_start in
    !acc
    |> List.exists (fun f ->
           f.rule = rule && f.line = pos.pos_lnum
           && f.col = pos.pos_cnum - pos.pos_bol)
    |> fun dup ->
    if not dup then
      acc :=
        {
          rule;
          file = ctx.relpath;
          line = pos.pos_lnum;
          col = pos.pos_cnum - pos.pos_bol;
          message = message rule detail;
        }
        :: !acc
  in
  let check_ident loc path =
    let path = normalize path in
    (match String.index_opt path '.' with
    | Some i when String.sub path 0 i = "Random" && not ctx.is_rng ->
        add loc Random_use path
    | _ -> ());
    if ctx.in_lib && (not ctx.in_report) && List.mem path printer_paths then
      add loc Print_effect path;
    if ctx.in_lib && List.mem path partial_paths then
      add loc Partial_fun path;
    if (not ctx.in_obs) && List.mem path wallclock_paths then
      add loc Wallclock path;
    if (not ctx.in_exec) && is_domain_primitive path then
      add loc Domain_containment path
  in
  let check_apply (e : Parsetree.expression) fn args =
    match fn.Parsetree.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let path = normalize (path_of_lid txt) in
        let op = last_component path in
        if
          (op = "=" || op = "<>")
          && List.exists (fun (_, a) -> is_float_literal a) args
        then add e.pexp_loc Float_eq op;
        if List.mem path fold_left_paths || path = "fold_left" then (
          (* the folded function: the ~f argument if labelled, the first
             positional argument otherwise *)
          let folded =
            match
              List.find_opt
                (fun (lbl, _) -> lbl = Asttypes.Labelled "f")
                args
            with
            | Some (_, f0) -> Some f0
            | None -> (
                match args with
                | (Asttypes.Nolabel, f0) :: _ -> Some f0
                | _ -> None)
          in
          match folded with
          | Some f0 when is_float_add_fn f0 -> add e.pexp_loc Float_sum ""
          | _ -> ())
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, args) -> check_apply e fn args
          | Pexp_ident { txt; _ } -> check_ident e.pexp_loc (path_of_lid txt)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iterator.structure iterator structure;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Driving                                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let lint_source ?relpath ~path source =
  let ctx = make_ctx (Option.value relpath ~default:path) in
  let structure = parse_implementation ~path source in
  let suppressions = scan_suppressions source in
  let ast_findings = findings_of_structure ctx structure in
  let mli_findings =
    if
      ctx.in_lib
      && Filename.check_suffix ctx.relpath ".ml"
      && not (Sys.file_exists (path ^ "i"))
    then
      [
        {
          rule = Missing_mli;
          file = ctx.relpath;
          line = 1;
          col = 0;
          message = message Missing_mli ctx.relpath;
        };
      ]
    else []
  in
  List.filter
    (fun f -> not (suppressed suppressions f.line f.rule))
    (mli_findings @ ast_findings)

let lint_file ?relpath path = lint_source ?relpath ~path (read_file path)

let rec collect_ml_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name = "_build" then acc
           else collect_ml_files acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  let files =
    List.fold_left collect_ml_files [] paths |> List.sort_uniq compare
  in
  let findings, errors =
    List.fold_left
      (fun (fs, es) file ->
        match lint_file file with
        | findings -> (fs @ findings, es)
        | exception exn ->
            let err =
              Printf.sprintf "%s: parse error: %s" file
                (Printexc.to_string exn)
            in
            (fs, es @ [ err ]))
      ([], []) files
  in
  (findings, errors, List.length files)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let render_finding f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" f.file f.line f.col (rule_id f.rule)
    (rule_slug f.rule) f.message

let render_text findings =
  String.concat "" (List.map (fun f -> render_finding f ^ "\n") findings)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json findings =
  let item f =
    Printf.sprintf
      "{\"rule\":\"%s\",\"slug\":\"%s\",\"file\":\"%s\",\"line\":%d,\
       \"col\":%d,\"message\":\"%s\"}"
      (rule_id f.rule) (rule_slug f.rule) (json_escape f.file) f.line f.col
      (json_escape f.message)
  in
  "[" ^ String.concat "," (List.map item findings) ^ "]\n"
