(* benchdiff — compare two divrel-bench/2 kernel-timing artefacts.

   Usage: benchdiff [--max-regression PCT] BASELINE.json CANDIDATE.json

   Prints a per-kernel table of baseline vs candidate ns/run and the
   speedup factor (baseline / candidate: > 1 means the candidate got
   faster), plus the kernels present on only one side. The regression
   gate fails any kernel whose candidate timing is more than
   [--max-regression] percent slower than the baseline (default 25,
   i.e. speedup < 1/1.25) — but only when BOTH artefacts carry real
   timings (mode = "full"). A smoke artefact runs each kernel a couple
   of times purely for structural validation, so its numbers mean
   nothing; diffing against one still prints the table (the @ci smoke
   does exactly that to keep this tool continuously exercised) but
   skips the gate with a note.

   Exit codes: 0 ok (or gate skipped), 1 regression past the threshold,
   2 unreadable/unparseable artefact or bad usage. *)

let fail code msg =
  prerr_endline ("benchdiff: " ^ msg);
  exit code

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type artefact = {
  path : string;
  mode : string;
  git_rev : string;
  (* kernel name -> ns_per_run (kernels publishing no estimate are
     dropped: nothing to compare). *)
  kernels : (string * float) list;
}

let load path =
  let source =
    match read_file path with
    | s -> s
    | exception Sys_error e -> fail 2 ("cannot read " ^ path ^ ": " ^ e)
  in
  let json =
    match Obs.Json.parse source with
    | Ok j -> j
    | Error e -> fail 2 (path ^ ": malformed JSON: " ^ e)
  in
  (match Option.bind (Obs.Json.member "schema" json) Obs.Json.to_string with
  | Some "divrel-bench/2" -> ()
  | Some s ->
      fail 2 (Printf.sprintf "%s: unexpected schema %S (want divrel-bench/2)" path s)
  | None -> fail 2 (path ^ ": missing schema marker"));
  let mode =
    match Option.bind (Obs.Json.member "mode" json) Obs.Json.to_string with
    | Some m -> m
    | None -> "full" (* older artefacts carry no mode: real timings *)
  in
  let git_rev =
    Option.value ~default:"unknown"
      (Option.bind (Obs.Json.member "git_rev" json) Obs.Json.to_string)
  in
  let kernels =
    match Option.bind (Obs.Json.member "kernels" json) Obs.Json.to_list with
    | None | Some [] -> fail 2 (path ^ ": no kernels array")
    | Some ks ->
        List.filter_map
          (fun k ->
            match
              ( Option.bind (Obs.Json.member "name" k) Obs.Json.to_string,
                Option.bind (Obs.Json.member "ns_per_run" k) Obs.Json.to_float )
            with
            | Some name, Some ns when ns > 0.0 -> Some (name, ns)
            | _ -> None)
          ks
  in
  { path; mode; git_rev; kernels }

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let () =
  let usage () =
    fail 2 "usage: benchdiff [--max-regression PCT] BASELINE.json CANDIDATE.json"
  in
  let max_regression = ref 25.0 in
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--max-regression" :: v :: tl -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 ->
            max_regression := p;
            parse_args tl
        | _ -> fail 2 ("invalid --max-regression value: " ^ v))
    | "--max-regression" :: [] -> usage ()
    | a :: tl ->
        positional := a :: !positional;
        parse_args tl
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_path, cand_path =
    match List.rev !positional with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let base = load base_path and cand = load cand_path in
  Printf.printf "benchdiff: baseline %s (mode %s, rev %s)\n" base.path base.mode
    base.git_rev;
  Printf.printf "benchdiff: candidate %s (mode %s, rev %s)\n" cand.path
    cand.mode cand.git_rev;
  let shared =
    List.filter_map
      (fun (name, b_ns) ->
        Option.map
          (fun c_ns -> (name, b_ns, c_ns))
          (List.assoc_opt name cand.kernels))
      base.kernels
  in
  if shared = [] then fail 2 "no kernel appears in both artefacts";
  let shared =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) shared
  in
  Printf.printf "\n%-40s %12s %12s %9s\n" "kernel" "baseline" "candidate"
    "speedup";
  Printf.printf "%s\n" (String.make 76 '-');
  List.iter
    (fun (name, b_ns, c_ns) ->
      Printf.printf "%-40s %12s %12s %8.2fx\n" name (pretty_ns b_ns)
        (pretty_ns c_ns) (b_ns /. c_ns))
    shared;
  let only_in which mine theirs =
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name theirs) then
          Printf.printf "benchdiff: note: %s only in %s\n" name which)
      mine
  in
  only_in "baseline" base.kernels cand.kernels;
  only_in "candidate" cand.kernels base.kernels;
  if base.mode <> "full" || cand.mode <> "full" then begin
    Printf.printf
      "benchdiff: note: %s artefact is smoke-mode (timings not meaningful), \
       regression gate skipped\n"
      (if base.mode <> "full" then "baseline" else "candidate");
    exit 0
  end;
  let limit = 1.0 +. (!max_regression /. 100.0) in
  let regressions =
    List.filter (fun (_, b_ns, c_ns) -> c_ns > b_ns *. limit) shared
  in
  if regressions <> [] then begin
    List.iter
      (fun (name, b_ns, c_ns) ->
        Printf.eprintf
          "benchdiff: REGRESSION %s: %s -> %s (%.1f%% slower, threshold %.1f%%)\n"
          name (pretty_ns b_ns) (pretty_ns c_ns)
          (((c_ns /. b_ns) -. 1.0) *. 100.0)
          !max_regression)
      regressions;
    exit 1
  end;
  Printf.printf
    "benchdiff: ok (%d shared kernels, none more than %.1f%% slower)\n"
    (List.length shared) !max_regression
