(* Command-line front end for the reproduction experiments.

   Usage:
     divrel-experiments list
     divrel-experiments run E04 [--seed 7]
     divrel-experiments all [--seed 7]            *)

open Cmdliner

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let seed_arg =
  let doc = "Random seed used by every stochastic experiment component." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let list_cmd =
  let run () =
    setup_logs ();
    List.iter
      (fun e ->
        Printf.printf "%-4s %-38s %s\n" e.Experiments.Experiment.id
          e.Experiments.Experiment.paper_ref e.Experiments.Experiment.description)
      Experiments.Registry.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every reproduced table/figure/claim")
    Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id, e.g. E04 (see 'list').")
  in
  let run id seed =
    setup_logs ();
    match Experiments.Registry.find id with
    | Some e ->
        print_string (Experiments.Experiment.render ~seed e);
        `Ok ()
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; known: %s" id
              (String.concat ", " (Experiments.Registry.ids ())) )
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id")
    Term.(ret (const run $ id_arg $ seed_arg))

let all_cmd =
  let run seed =
    setup_logs ();
    print_string (Experiments.Registry.render_all ~seed ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in order")
    Term.(const run $ seed_arg)

let main =
  let doc =
    "Reproduction harness for Popov & Strigini, 'The Reliability of Diverse \
     Systems' (DSN 2001)"
  in
  Cmd.group (Cmd.info "divrel-experiments" ~doc) [ list_cmd; run_cmd; all_cmd ]

let () = exit (Cmd.eval main)
