(* Command-line front end for the reproduction experiments.

   Usage:
     divrel-experiments list
     divrel-experiments run E04 [--seed 7]
     divrel-experiments all [--seed 7]

   Telemetry (run / all): --metrics FILE writes a JSON metrics snapshot
   (counters, gauges, PFD histograms, RNG draw counts), --trace FILE a
   Chrome trace-event file of the nested simulator spans, --log FILE a
   JSONL structured run log. Instrumentation is off unless requested and
   never perturbs the experiments: same seeds, same outputs.

   Parallelism (run / all): --domains N sizes the default Exec pool
   (also settable via DIVREL_DOMAINS), --shards M sets the default
   shard count of the sharded library entry points. Domains never
   change results; shards change them deterministically. *)

open Cmdliner

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let seed_arg =
  let doc = "Random seed used by every stochastic experiment component." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc = "Write a Chrome trace-event JSON file of the simulator spans." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a JSON metrics snapshot (counters, gauges, histograms, RNG draws)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let log_arg =
  let doc = "Write a JSONL structured run log (one event object per line)." in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

let domains_arg =
  let doc =
    "Size of the default execution pool (worker domains). Overrides the \
     DIVREL_DOMAINS environment variable. Results are independent of this \
     value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Default shard count for sharded map-reduce entry points. Part of the \
     deterministic contract: outputs are a pure function of (seed, shards)."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"M" ~doc)

let setup_parallelism domains shards =
  Option.iter Exec.Pool.set_default_domains domains;
  Option.iter Exec.set_default_shards shards

(* Process-wide RNG consumption, reported in the metrics snapshot. *)
let m_rng_draws = Obs.Metrics.counter "rng.draws"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Run [f] with the telemetry sinks the flags request, then write the
   artefacts. With all three flags absent this is just [f ()]. *)
let with_telemetry ~label ~seed ~trace ~metrics ~log f =
  if trace = None && metrics = None && log = None then f ()
  else begin
    if metrics <> None then Obs.Metrics.set_enabled true;
    if trace <> None then Obs.Trace.set_enabled true;
    let runlog =
      match log with Some _ -> Some (Obs.Runlog.create ()) | None -> None
    in
    Obs.Runlog.set_sink runlog;
    if Obs.Runlog.active () then
      Obs.Runlog.record ~kind:"run.start"
        [
          ("target", Obs.Json.String label);
          ("seed", Obs.Json.Int seed);
          (* outputs are a pure function of (seed, shards): recording the
             effective default shard count makes a logged run replayable *)
          ("shards", Obs.Json.Int (Exec.default_shards ()));
        ];
    let draws0 = Numerics.Rng.total_draws () in
    let span = Obs.Trace.enter label in
    let result, dur_ns = Obs.Clock.timed f in
    Obs.Trace.leave span;
    let draws = Numerics.Rng.total_draws () - draws0 in
    Obs.Metrics.add m_rng_draws draws;
    if Obs.Runlog.active () then
      Obs.Runlog.record ~kind:"run.end"
        [
          ("target", Obs.Json.String label);
          ("seed", Obs.Json.Int seed);
          ("shards", Obs.Json.Int (Exec.default_shards ()));
          ("rng_draws", Obs.Json.Int draws);
          ("duration_ns", Obs.Json.Int (Int64.to_int dur_ns));
        ];
    Option.iter (fun path -> write_file path (Obs.Metrics.render_json ())) metrics;
    Option.iter
      (fun path -> write_file path (Obs.Trace.render_chrome_json ()))
      trace;
    Option.iter
      (fun path ->
        match runlog with
        | Some l -> write_file path (Obs.Runlog.to_jsonl l)
        | None -> ())
      log;
    Obs.Runlog.set_sink None;
    Obs.Trace.set_enabled false;
    Obs.Metrics.set_enabled false;
    result
  end

let list_cmd =
  let run () =
    setup_logs ();
    List.iter
      (fun e ->
        Printf.printf "%-4s %-38s %s\n" e.Experiments.Experiment.id
          e.Experiments.Experiment.paper_ref e.Experiments.Experiment.description)
      Experiments.Registry.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every reproduced table/figure/claim")
    Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id, e.g. E04 (see 'list').")
  in
  let run id seed trace metrics log domains shards =
    setup_logs ();
    setup_parallelism domains shards;
    match Experiments.Registry.find id with
    | Some e ->
        let rendered =
          with_telemetry ~label:("experiment." ^ e.Experiments.Experiment.id)
            ~seed ~trace ~metrics ~log (fun () ->
              Experiments.Experiment.render ~seed e)
        in
        print_string rendered;
        `Ok ()
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; known: %s" id
              (String.concat ", " (Experiments.Registry.ids ())) )
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id")
    Term.(
      ret
        (const run $ id_arg $ seed_arg $ trace_arg $ metrics_arg $ log_arg
       $ domains_arg $ shards_arg))

let all_cmd =
  let run seed trace metrics log domains shards =
    setup_logs ();
    setup_parallelism domains shards;
    let rendered =
      with_telemetry ~label:"experiments.all" ~seed ~trace ~metrics ~log
        (fun () -> Experiments.Registry.render_all ~seed ())
    in
    print_string rendered
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in order")
    Term.(
      const run $ seed_arg $ trace_arg $ metrics_arg $ log_arg $ domains_arg
      $ shards_arg)

let check_cmd =
  let cases_arg =
    let doc = "Number of randomized scenarios to sweep." in
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let replications_arg =
    let doc = "Monte-Carlo replications per scenario." in
    Arg.(value & opt int 1200 & info [ "replications" ] ~docv:"R" ~doc)
  in
  let only_arg =
    let doc =
      "Sweep only oracles whose id starts with $(docv) (e.g. \
       'adjudication' for the calculus law oracles)."
    in
    Arg.(
      value & opt (some string) None & info [ "only" ] ~docv:"PREFIX" ~doc)
  in
  let run seed cases replications only trace metrics log domains shards =
    setup_logs ();
    setup_parallelism domains shards;
    if cases < 1 then `Error (false, "--cases must be >= 1")
    else if replications < 1 then `Error (false, "--replications must be >= 1")
    else if
      match only with
      | None -> false
      | Some prefix ->
          not
            (List.exists
               (String.starts_with ~prefix)
               (Check.Registry.ids ()))
    then
      `Error
        ( false,
          Printf.sprintf "--only matches no oracle; known: %s"
            (String.concat ", " (Check.Registry.ids ())) )
    else begin
      let sweep =
        with_telemetry ~label:"check.sweep" ~seed ~trace ~metrics ~log
          (fun () -> Check.Registry.sweep ~seed ~cases ~replications ?only ())
      in
      print_string (Check.Registry.render sweep);
      if Check.Registry.passed sweep then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf
              "%d differential check(s) failed (replay with --seed %d)"
              (List.length sweep.Check.Registry.failed)
              seed )
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Sweep the differential oracle registry over randomized \
          architectures: every analytic quantity (voting moments, PFD \
          distributions, risk ratios, baseline identities) is cross-checked \
          against an independent simulation estimator. Deterministic for a \
          fixed --seed; exits non-zero on any disagreement.")
    Term.(
      ret
        (const run $ seed_arg $ cases_arg $ replications_arg $ only_arg
       $ trace_arg $ metrics_arg $ log_arg $ domains_arg $ shards_arg))

(* Declared-profile specs for the evidence verb: the drift detector
   needs the profile the operating evidence was supposedly collected
   under, given on the command line as a constructor spec. *)
let parse_profile spec =
  let err () =
    Error
      (Printf.sprintf
         "bad --profile %S: expected uniform:SIZE, zipf:SIZE:EXPONENT, or \
          peaked:SIZE:PEAK:MASS"
         spec)
  in
  let size_of s =
    match int_of_string_opt s with Some n when n > 0 -> Some n | _ -> None
  in
  let build f = try Ok (Demandspace.Profile.probabilities (f ())) with
    | Invalid_argument msg -> Error ("bad --profile: " ^ msg)
  in
  match String.split_on_char ':' spec with
  | [ "uniform"; n ] -> (
      match size_of n with
      | Some size -> build (fun () -> Demandspace.Profile.uniform ~size)
      | None -> err ())
  | [ "zipf"; n; e ] -> (
      match (size_of n, float_of_string_opt e) with
      | Some size, Some exponent ->
          build (fun () -> Demandspace.Profile.zipf ~size ~exponent)
      | _ -> err ())
  | [ "peaked"; n; p; m ] -> (
      match (size_of n, int_of_string_opt p, float_of_string_opt m) with
      | Some size, Some peak, Some mass ->
          build (fun () -> Demandspace.Profile.peaked ~size ~peak ~mass)
      | _ -> err ())
  | _ -> err ()

let evidence_cmd =
  let runlog_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"RUNLOG"
          ~doc:"JSONL run log to assess (written by run/all/check --log).")
  in
  let window_arg =
    let doc =
      "Ingest in windows of $(docv) lines, printing an interim verdict line \
       after each window (suppressed under --json, where output depends only \
       on the log's contents). 0 ingests the whole log as one batch. The \
       final verdict is identical for every window size."
    in
    Arg.(value & opt int 0 & info [ "window" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc =
      "Print the final verdict as canonical JSON instead of text. \
       Byte-identical for any --window."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let fopt name ~default doc =
    Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)
  in
  let d = Evidence.Assessor.default_config in
  let theta0_arg =
    fopt "theta0" ~default:d.Evidence.Assessor.theta0
      "Acceptable PFD (H0) of the Wald boundary."
  in
  let theta1_arg =
    fopt "theta1" ~default:d.Evidence.Assessor.theta1
      "Rejectable PFD (H1) of the Wald boundary; must exceed theta0."
  in
  let alpha_arg =
    fopt "alpha" ~default:d.Evidence.Assessor.alpha
      "Type-I error rate of the Wald boundary."
  in
  let beta_arg =
    fopt "beta" ~default:d.Evidence.Assessor.beta
      "Type-II error rate of the Wald boundary."
  in
  let prior_a_arg =
    fopt "prior-a" ~default:d.Evidence.Assessor.prior_a
      "Beta prior alpha parameter for the posterior PFD."
  in
  let prior_b_arg =
    fopt "prior-b" ~default:d.Evidence.Assessor.prior_b
      "Beta prior beta parameter for the posterior PFD."
  in
  let bound_arg =
    fopt "bound" ~default:d.Evidence.Assessor.bound
      "PFD bound the posterior confidence is reported against."
  in
  let confidence_arg =
    fopt "confidence" ~default:d.Evidence.Assessor.confidence
      "Coverage of the reported posterior interval (and the confidence an \
       accepted verdict requires in the bound)."
  in
  let profile_arg =
    let doc =
      "Declared operational profile for drift detection: uniform:SIZE, \
       zipf:SIZE:EXPONENT, or peaked:SIZE:PEAK:MASS. Omitted: drift \
       detection disabled."
    in
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"SPEC" ~doc)
  in
  let drift_alpha_arg =
    fopt "drift-alpha" ~default:d.Evidence.Assessor.drift_alpha
      "Drift alarm threshold on the chi-square p-value."
  in
  let run file window json theta0 theta1 alpha beta prior_a prior_b bound
      confidence profile drift_alpha metrics =
    setup_logs ();
    if window < 0 then `Error (false, "--window must be >= 0")
    else
      let profile_result =
        match profile with
        | None -> Ok None
        | Some spec -> Result.map Option.some (parse_profile spec)
      in
      match profile_result with
      | Error msg -> `Error (false, msg)
      | Ok expected_profile -> (
          let assessor =
            try
              Ok
                (Evidence.Assessor.create
                   {
                     Evidence.Assessor.theta0;
                     theta1;
                     alpha;
                     beta;
                     prior_a;
                     prior_b;
                     bound;
                     confidence;
                     expected_profile;
                     drift_alpha;
                   })
            with Invalid_argument msg -> Error msg
          in
          match assessor with
          | Error msg -> `Error (false, msg)
          | Ok assessor ->
              if metrics <> None then Obs.Metrics.set_enabled true;
              let src = Evidence.Source.open_file file in
              Fun.protect
                ~finally:(fun () -> Evidence.Source.close src)
                (fun () ->
                  (* Single pass, bounded memory: at most one window (or one
                     64k-line chunk) of the log is ever resident. *)
                  let chunk = if window > 0 then window else 65536 in
                  let rec drain () =
                    let lines = ref [] in
                    let n = ref 0 in
                    let eof = ref false in
                    while !n < chunk && not !eof do
                      match Evidence.Source.next_line src with
                      | Some line ->
                          lines := line :: !lines;
                          incr n
                      | None -> eof := true
                    done;
                    if !n > 0 then begin
                      Evidence.Assessor.ingest_batch assessor
                        (List.rev !lines);
                      if window > 0 && not json then begin
                        let v = Evidence.Verdict.of_assessor assessor in
                        let fleet = v.Evidence.Verdict.fleet in
                        Printf.printf
                          "interim @ %7d line(s): %-21s fleet %d/%d \
                           failures/demands, P(pfd<=%g)=%.4f\n"
                          (Evidence.Source.lines_read src)
                          (Evidence.Verdict.overall_string
                             v.Evidence.Verdict.overall)
                          fleet.Evidence.Assessor.f_failures
                          fleet.Evidence.Assessor.f_demands bound
                          v.Evidence.Verdict.fleet_posterior
                            .Evidence.Assessor.confidence_in_bound
                      end;
                      if not !eof then drain ()
                    end
                  in
                  drain ());
              let verdict = Evidence.Verdict.of_assessor assessor in
              if json then
                print_string (Evidence.Verdict.render_json verdict ^ "\n")
              else print_string (Evidence.Verdict.render_text verdict);
              Option.iter
                (fun path -> write_file path (Obs.Metrics.render_json ()))
                metrics;
              if metrics <> None then Obs.Metrics.set_enabled false;
              `Ok ())
  in
  Cmd.v
    (Cmd.info "evidence"
       ~doc:
         "Assess a JSONL run log as proven-in-use evidence: stream it in one \
          pass, reconcile per-plant and fleet demand/failure counters, \
          derive Bayesian posterior PFD bounds and a Wald accept/reject \
          boundary over the aggregate, detect demand-profile drift against \
          a declared profile, and print a verdict report (text or JSON). \
          The final verdict depends only on the log's contents, never on \
          how it was windowed.")
    Term.(
      ret
        (const run $ runlog_arg $ window_arg $ json_arg $ theta0_arg
       $ theta1_arg $ alpha_arg $ beta_arg $ prior_a_arg $ prior_b_arg
       $ bound_arg $ confidence_arg $ profile_arg $ drift_alpha_arg
       $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* Assessment service verbs                                           *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  let doc = "Listen on (or connect to) a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc =
    "Listen on (or connect to) loopback TCP port $(docv); 0 picks an \
     ephemeral port (announced on stdout)."
  in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let listen_of_flags socket port =
  match (socket, port) with
  | Some path, None -> Ok (Serve.Server.Unix_path path)
  | None, Some p -> Ok (Serve.Server.Tcp_port p)
  | None, None -> Ok (Serve.Server.Tcp_port 0)
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"

(* Request script lines from a file or stdin; blank lines are skipped
   (both here and in serve-client, so scripts render identically). *)
let read_script path =
  let read_channel ic =
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    List.rev !lines
  in
  let lines =
    match path with
    | "-" -> read_channel stdin
    | path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_channel ic)
  in
  List.filter (fun l -> String.trim l <> "") lines

let script_arg =
  let doc = "Request script: one JSON request per line ('-' for stdin)." in
  Arg.(value & pos 0 string "-" & info [] ~docv:"SCRIPT" ~doc)

(* In-process smoke test: daemon on a private Unix socket in a thread, a
   scripted client through the public codec, every served response
   compared byte-for-byte against a direct [Engine.eval]. *)
let serve_selftest ~workers ~queue_depth ~batch ~seed =
  let path = Filename.temp_file "divrel-serve" ".sock" in
  let config =
    {
      Serve.Server.listen = Serve.Server.Unix_path path;
      workers;
      queue_capacity = queue_depth;
      batch_max = batch;
      seed;
    }
  in
  let stats_slot = ref None in
  let server =
    Thread.create (fun () -> stats_slot := Some (Serve.Server.serve config)) ()
  in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        Printf.eprintf "serve selftest: %s\n" s)
      fmt
  in
  let u = { Serve.Proto.ps = [| 0.1; 0.02; 0.3 |]; qs = [| 1e-3; 1e-4; 5e-3 |] } in
  let work =
    [
      { Serve.Proto.id = "t1"; u; verb = Serve.Proto.Moments };
      {
        Serve.Proto.id = "t2";
        u;
        verb = Serve.Proto.Risk_ratio { channels = 2; required = 1 };
      };
      {
        Serve.Proto.id = "t3";
        u;
        verb = Serve.Proto.Pfd_dist { channels = 2; required = 1; bins = 0 };
      };
      {
        Serve.Proto.id = "t4";
        u;
        verb =
          Serve.Proto.Fleet_mission
            {
              plants = 8;
              demands_per_plant = 200;
              mission_demands = 1000;
              salt = 1;
              shards = 4;
              space = 512;
            };
      };
    ]
  in
  let client = Serve.Client.connect (Serve.Server.Unix_path path) in
  List.iter
    (fun r ->
      let expect = Serve.Engine.eval ~seed r in
      match Serve.Client.round_trip client (Serve.Proto.render_request r) with
      | Some got when String.equal got expect -> ()
      | Some got ->
          fail "%s: daemon differs from direct evaluation\n  daemon: %s\n  direct: %s"
            r.Serve.Proto.id got expect
      | None -> fail "%s: connection closed early" r.Serve.Proto.id)
    work;
  (match Serve.Client.round_trip client "{ not json" with
  | Some line -> (
      match Serve.Proto.parse_response line with
      | Ok resp
        when (not resp.Serve.Proto.resp_ok)
             && resp.Serve.Proto.resp_error = Some "parse" ->
          ()
      | _ -> fail "malformed line not answered with a parse error: %s" line)
  | None -> fail "malformed line: connection closed early");
  (match
     Serve.Client.round_trip client
       (Serve.Proto.render_admin ~id:"s1" Serve.Proto.Stats)
   with
  | Some line -> (
      match Serve.Proto.parse_response line with
      | Ok resp when resp.Serve.Proto.resp_ok -> (
          match
            Option.bind resp.Serve.Proto.resp_body (fun b ->
                Option.bind (Obs.Json.member "served" b) Obs.Json.to_int)
          with
          | Some 4 -> ()
          | _ -> fail "stats body did not report served=4: %s" line)
      | _ -> fail "stats request failed: %s" line)
  | None -> fail "stats: connection closed early");
  (match
     Serve.Client.round_trip client
       (Serve.Proto.render_admin ~id:"s2" Serve.Proto.Shutdown)
   with
  | Some line -> (
      match Serve.Proto.parse_response line with
      | Ok resp when resp.Serve.Proto.resp_ok -> ()
      | _ -> fail "shutdown request failed: %s" line)
  | None -> fail "shutdown: connection closed early");
  Serve.Client.close client;
  Thread.join server;
  (match !stats_slot with
  | Some st
    when st.Serve.Server.served = 4
         && st.Serve.Server.malformed = 1
         && st.Serve.Server.rejected = 0 ->
      ()
  | Some st ->
      fail "session stats off: served=%d rejected=%d malformed=%d"
        st.Serve.Server.served st.Serve.Server.rejected
        st.Serve.Server.malformed
  | None -> fail "server thread returned no stats");
  if !failures = 0 then begin
    Printf.printf
      "serve selftest: ok (4 verbs byte-identical to direct evaluation, \
       malformed counted, stats/shutdown clean; workers=%d)\n"
      workers;
    `Ok ()
  end
  else `Error (false, Printf.sprintf "serve selftest: %d failure(s)" !failures)

let serve_cmd =
  let workers_arg =
    let doc =
      "Dispatcher pool size. Responses are byte-identical for any value."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission queue capacity; past it requests are rejected with a busy \
       line carrying retry_after_ms."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"D" ~doc)
  in
  let batch_arg =
    let doc = "Most requests dispatched per pool batch." in
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let selftest_arg =
    let doc =
      "Run an in-process smoke test instead of serving: daemon on a private \
       Unix socket, scripted client, byte-identity against direct \
       evaluation. Exits non-zero on any mismatch."
    in
    Arg.(value & flag & info [ "selftest" ] ~doc)
  in
  let run socket port workers queue_depth batch seed selftest metrics =
    setup_logs ();
    if workers < 1 then `Error (false, "--workers must be >= 1")
    else if queue_depth < 1 then `Error (false, "--queue-depth must be >= 1")
    else if batch < 1 then `Error (false, "--batch must be >= 1")
    else if selftest then serve_selftest ~workers ~queue_depth ~batch ~seed
    else
      match listen_of_flags socket port with
      | Error msg -> `Error (false, msg)
      | Ok listen ->
          let config =
            {
              Serve.Server.listen;
              workers;
              queue_capacity = queue_depth;
              batch_max = batch;
              seed;
            }
          in
          if metrics <> None then Obs.Metrics.set_enabled true;
          let on_ready port =
            (match port with
            | Some p -> Printf.printf "serve: listening tcp port=%d\n" p
            | None ->
                Printf.printf "serve: listening socket=%s\n"
                  (match listen with
                  | Serve.Server.Unix_path p -> p
                  | Serve.Server.Tcp_port _ -> assert false));
            flush stdout
          in
          let stats = Serve.Server.serve ~on_ready config in
          Printf.printf
            "serve: done served=%d rejected=%d malformed=%d batches=%d \
             draws=%d\n"
            stats.Serve.Server.served stats.Serve.Server.rejected
            stats.Serve.Server.malformed stats.Serve.Server.batches
            stats.Serve.Server.draws_total;
          Option.iter
            (fun path -> write_file path (Obs.Metrics.render_json ()))
            metrics;
          if metrics <> None then Obs.Metrics.set_enabled false;
          `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the assessment daemon: JSONL requests (moments, risk-ratio, \
          pfd-dist, fleet-mission, stats, shutdown) over a Unix or loopback \
          TCP socket, bounded admission queue with deterministic \
          retry-after backpressure, batched dispatch onto an Exec pool. \
          Every response is a pure function of (--seed, request): \
          byte-identical to 'assess' output for any --workers value.")
    Term.(
      ret
        (const run $ socket_arg $ port_arg $ workers_arg $ queue_arg
       $ batch_arg $ seed_arg $ selftest_arg $ metrics_arg))

let serve_client_cmd =
  let pipeline_arg =
    let doc =
      "Send the whole script before reading replies (one reply per line is \
       still guaranteed) instead of strict request/reply alternation."
    in
    Arg.(value & flag & info [ "pipeline" ] ~doc)
  in
  let run socket port script pipeline =
    setup_logs ();
    match listen_of_flags socket port with
    | Error msg -> `Error (false, msg)
    | Ok (Serve.Server.Tcp_port 0) ->
        `Error (false, "serve-client needs --socket PATH or --port PORT")
    | Ok listen -> (
        let lines = read_script script in
        let client = Serve.Client.connect listen in
        let finish () = Serve.Client.close client in
        match
          Fun.protect ~finally:finish (fun () ->
              if pipeline then begin
                List.iter (Serve.Client.send_line client) lines;
                let rec drain n =
                  if n > 0 then
                    match Serve.Client.recv_line client with
                    | Some reply ->
                        print_endline reply;
                        drain (n - 1)
                    | None -> Error "server closed before all replies arrived"
                  else Ok ()
                in
                drain (List.length lines)
              end
              else
                List.fold_left
                  (fun acc line ->
                    match acc with
                    | Error _ -> acc
                    | Ok () -> (
                        match Serve.Client.round_trip client line with
                        | Some reply ->
                            print_endline reply;
                            Ok ()
                        | None -> Error "server closed before replying"))
                  (Ok ()) lines)
        with
        | Ok () -> `Ok ()
        | Error msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "serve-client"
       ~doc:
         "Scripted client for the assessment daemon: send each non-blank \
          line of SCRIPT as a request, print each reply line. Exactly one \
          reply per request, in order.")
    Term.(ret (const run $ socket_arg $ port_arg $ script_arg $ pipeline_arg))

let assess_cmd =
  let run seed script =
    setup_logs ();
    List.iter
      (fun line ->
        let reply =
          match Serve.Proto.parse_line line with
          | Error detail -> Serve.Proto.error_line ~error:"parse" ~detail ()
          | Ok (Serve.Proto.Work r) -> Serve.Engine.eval ~seed r
          | Ok (Serve.Proto.Admin { id; _ }) ->
              Serve.Proto.error_line ~id ~error:"unsupported"
                ~detail:"admin verb requires the daemon" ()
        in
        print_endline reply)
      (read_script script)
  in
  Cmd.v
    (Cmd.info "assess"
       ~doc:
         "One-shot assessment: evaluate each non-blank request line of \
          SCRIPT directly (no daemon) and print the response lines. \
          Byte-identical to what 'serve' answers for the same --seed and \
          requests, for any worker count — the anchor the serve-vs-cli \
          differential tests compare against.")
    Term.(const run $ seed_arg $ script_arg)

let main =
  let doc =
    "Reproduction harness for Popov & Strigini, 'The Reliability of Diverse \
     Systems' (DSN 2001)"
  in
  Cmd.group
    (Cmd.info "divrel-experiments" ~doc)
    [
      list_cmd;
      run_cmd;
      all_cmd;
      check_cmd;
      evidence_cmd;
      serve_cmd;
      serve_client_cmd;
      assess_cmd;
    ]

let () = exit (Cmd.eval main)
