(* The telemetry layer: histogram bucket geometry at PFD magnitudes,
   span nesting/ordering, well-formedness of every JSON artefact, and
   the zero-allocation guarantee of the disabled path. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Runlog = Obs.Runlog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Metrics and Trace keep global state; every test that enables them
   restores the default (disabled, empty) world on the way out. *)
let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset_values ())

let with_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect f ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())

let parse_ok label s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: invalid JSON (%s): %s" label e s

(* ------------------------------------------------------------------ *)
(* Json: render/parse round-trips and strictness                      *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("pfd", Json.Float 3.25e-7);
        ("s", Json.String "line\none\ttab \"quoted\" back\\slash");
        ("items", Json.List [ Json.Int 1; Json.Float 0.5; Json.String "" ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  let reparsed = parse_ok "round-trip" (Json.render doc) in
  check_bool "render/parse round-trips" true (reparsed = doc)

let test_json_strictness () =
  let bad = [ "{"; "[1,]"; "{\"a\":1} extra"; "\"unterminated"; "01a"; "nul" ] in
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "rejects %S" s)
        true
        (match Json.parse s with Ok _ -> false | Error _ -> true))
    bad;
  (* Non-finite floats must never leak into the output. *)
  check_string "nan renders null" "null" (Json.render (Json.Float Float.nan));
  check_string "inf renders null" "null" (Json.render (Json.Float infinity));
  (* \u escapes decode to UTF-8. *)
  match Json.parse "\"\\u00e9\"" with
  | Ok (Json.String s) -> check_string "utf-8 decode" "\xc3\xa9" s
  | _ -> Alcotest.fail "\\u escape did not parse as a string"

(* ------------------------------------------------------------------ *)
(* Metrics: histogram geometry at PFD scales                          *)
(* ------------------------------------------------------------------ *)

(* The bucket that counted [v] must actually contain it. *)
let containing_bucket h v =
  let hit =
    Array.to_list (Metrics.buckets h)
    |> List.filter (fun (_, _, n) -> n > 0)
  in
  match hit with
  | [ (lo, hi, 1) ] ->
      (* Edges are computed as lo * 10^(i/per_decade), so allow an
         ulp-scale slack against the decimal literal. *)
      check_bool
        (Printf.sprintf "%g inside its bucket [%g, %g)" v lo hi)
        true
        (lo *. (1.0 -. 1e-12) <= v && v < hi *. (1.0 +. 1e-12));
      (lo, hi)
  | _ -> Alcotest.failf "expected exactly one occupied bucket for %g" v

let test_histogram_pfd_edges () =
  with_metrics (fun () ->
      (* Exact decade edges across the PFD range must open their decade,
         not fall one bucket short to log10 rounding. *)
      List.iter
        (fun v ->
          let h =
            Metrics.histogram (Printf.sprintf "test.edge.%g" v)
          in
          Metrics.observe h v;
          let lo, _ = containing_bucket h v in
          check_bool
            (Printf.sprintf "%g is a bucket lower edge (got %g)" v lo)
            true
            (Float.abs (lo -. v) /. v < 1e-9))
        [ 1e-7; 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1 ];
      (* Interior values land in a containing bucket too. *)
      List.iter
        (fun v ->
          let h =
            Metrics.histogram (Printf.sprintf "test.mid.%g" v)
          in
          Metrics.observe h v;
          ignore (containing_bucket h v))
        [ 3.2e-7; 4.7e-5; 2.3e-3; 0.13; 0.97 ])

let test_histogram_under_overflow () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.flow" in
      (* 0 is a legitimate PFD; it and sub-lo values go to underflow. *)
      Metrics.observe h 0.0;
      Metrics.observe h 1e-12;
      (* The default range tops out at 1.0; a PFD of exactly 1 and
         anything above overflows. *)
      Metrics.observe h 1.0;
      Metrics.observe h 2.5;
      let bs = Metrics.buckets h in
      let u_lo, u_hi, u_n = bs.(0) in
      check_bool "underflow bucket is [0, lo)" true (u_lo = 0.0 && u_hi = 1e-9);
      check_int "underflow count" 2 u_n;
      let o_lo, o_hi, o_n = bs.(Array.length bs - 1) in
      check_bool "overflow lower edge is the top edge ~ 1.0" true
        (Float.abs (o_lo -. 1.0) < 1e-9);
      check_bool "overflow upper edge is infinite" true (o_hi = infinity);
      check_int "overflow count" 2 o_n;
      check_int "total count" 4 (Metrics.histogram_count h);
      check_bool "min tracks underflow values" true
        (Metrics.histogram_min h = Some 0.0);
      check_bool "max tracks overflow values" true
        (Metrics.histogram_max h = Some 2.5))

let test_histogram_quantile () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.quantile" in
      check_bool "empty histogram has no quantiles" true
        (Metrics.quantile h 0.5 = None);
      for _ = 1 to 90 do
        Metrics.observe h 1e-4
      done;
      for _ = 1 to 10 do
        Metrics.observe h 0.5
      done;
      (match Metrics.quantile h 0.5 with
      | Some q ->
          check_bool
            (Printf.sprintf "median ~ 1e-4 scale (got %g)" q)
            true
            (q > 5e-5 && q < 5e-4)
      | None -> Alcotest.fail "median missing");
      match Metrics.quantile h 0.99 with
      | Some q ->
          check_bool
            (Printf.sprintf "p99 ~ 0.5 scale (got %g)" q)
            true
            (q > 0.1 && q < 1.0)
      | None -> Alcotest.fail "p99 missing")

let test_quantile_summaries () =
  with_metrics (fun () ->
      let h = Metrics.histogram "test.qsummary" in
      for _ = 1 to 90 do
        Metrics.observe h 1e-4
      done;
      for _ = 1 to 10 do
        Metrics.observe h 0.5
      done;
      let text = Metrics.render_text () in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      List.iter
        (fun tag ->
          check_bool
            (Printf.sprintf "text summary carries %s" tag)
            true (contains text tag))
        [ "p50="; "p95="; "p99=" ];
      let doc = parse_ok "quantile snapshot" (Metrics.render_json ()) in
      let hist =
        match Option.bind (Json.member "histograms" doc) Json.to_list with
        | Some items ->
            List.find_opt
              (fun item ->
                Option.bind (Json.member "name" item) Json.to_string
                = Some "test.qsummary")
              items
        | None -> None
      in
      match hist with
      | None -> Alcotest.fail "test.qsummary missing from snapshot"
      | Some item ->
          List.iter
            (fun field ->
              match Option.bind (Json.member field item) Json.to_float with
              | Some q ->
                  check_bool
                    (Printf.sprintf "%s positive (got %g)" field q)
                    true (q > 0.0)
              | None -> Alcotest.failf "snapshot lacks %s" field)
            [ "p50"; "p95"; "p99" ];
          let value field =
            match Option.bind (Json.member field item) Json.to_float with
            | Some q -> q
            | None -> Alcotest.failf "snapshot lacks %s" field
          in
          check_bool "p50 <= p95 <= p99" true
            (value "p50" <= value "p95" && value "p95" <= value "p99");
          check_bool "p99 at the outlier scale" true (value "p99" > 0.1))

let test_counters_and_gauges () =
  let c = Metrics.counter "test.counter" in
  let g = Metrics.gauge "test.gauge" in
  (* Disabled (the default): mutations are dropped. *)
  Metrics.incr c;
  Metrics.add c 10;
  Metrics.set g 3.0;
  check_int "disabled counter stays 0" 0 (Metrics.counter_value c);
  check_bool "disabled gauge stays unset" true (Metrics.gauge_value g = None);
  with_metrics (fun () ->
      Metrics.incr c;
      Metrics.add c 10;
      Metrics.set g 3.0;
      Metrics.set g 0.125;
      check_int "enabled counter counts" 11 (Metrics.counter_value c);
      check_bool "enabled gauge holds last value" true
        (Metrics.gauge_value g = Some 0.125);
      Metrics.reset_values ();
      check_int "reset zeroes counters" 0 (Metrics.counter_value c);
      check_bool "reset unsets gauges" true (Metrics.gauge_value g = None))

let test_metrics_json () =
  with_metrics (fun () ->
      let c = Metrics.counter "test.snapshot.counter" in
      let h = Metrics.histogram "test.snapshot.hist" in
      Metrics.incr c;
      Metrics.observe h 1e-5;
      let doc = parse_ok "metrics snapshot" (Metrics.render_json ()) in
      let names section =
        match Option.bind (Json.member section doc) Json.to_list with
        | Some items ->
            List.filter_map
              (fun item -> Option.bind (Json.member "name" item) Json.to_string)
              items
        | None -> Alcotest.failf "snapshot lacks %S list" section
      in
      check_bool "counter listed" true
        (List.mem "test.snapshot.counter" (names "counters"));
      check_bool "histogram listed" true
        (List.mem "test.snapshot.hist" (names "histograms"));
      check_bool "gauges section present" true
        (Json.member "gauges" doc <> None))

(* ------------------------------------------------------------------ *)
(* Trace: nesting, ordering, Chrome export                            *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_trace (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner.a" (fun () -> ());
          Trace.with_span "inner.b" (fun () ->
              Trace.with_span "leaf" (fun () -> ())));
      Trace.with_span "sibling" (fun () -> ());
      let spans = Trace.spans () in
      check_int "span count" 5 (List.length spans);
      let names = List.map (fun s -> s.Trace.name) spans in
      Alcotest.(check (list string))
        "spans in start order"
        [ "outer"; "inner.a"; "inner.b"; "leaf"; "sibling" ]
        names;
      let depths = List.map (fun s -> s.Trace.depth) spans in
      Alcotest.(check (list int)) "nesting depths" [ 0; 1; 1; 2; 0 ] depths;
      List.iter
        (fun s ->
          check_bool
            (s.Trace.name ^ " is closed with a non-negative duration")
            true
            (s.Trace.dur_ns >= 0L))
        spans;
      (* Start timestamps never go backwards within the record. *)
      let starts = List.map (fun s -> s.Trace.start_ns) spans in
      check_bool "monotone start order" true
        (List.sort compare starts = starts);
      (* The text tree indents two spaces per level. *)
      let text = Trace.to_text () in
      check_bool "text tree indents nested spans" true
        (String.length text > 0
        && List.exists
             (fun line ->
               String.length line > 4 && String.sub line 0 4 = "    ")
             (String.split_on_char '\n' text)))

let test_trace_disabled () =
  Trace.reset ();
  let h = Trace.enter "ignored" in
  check_bool "disabled enter yields the null handle" true
    (h = Trace.null_handle);
  Trace.leave h;
  check_int "nothing recorded while disabled" 0 (Trace.span_count ())

let test_chrome_json () =
  with_trace (fun () ->
      Trace.with_span "parent" (fun () ->
          Trace.with_span "child" (fun () -> ()));
      let doc = parse_ok "chrome trace" (Trace.render_chrome_json ()) in
      let events =
        match Option.bind (Json.member "traceEvents" doc) Json.to_list with
        | Some items -> items
        | None -> Alcotest.fail "no traceEvents array"
      in
      check_int "one event per span" 2 (List.length events);
      List.iter
        (fun ev ->
          check_bool "complete event" true
            (Option.bind (Json.member "ph" ev) Json.to_string = Some "X");
          check_bool "has a name" true
            (Option.is_some (Option.bind (Json.member "name" ev) Json.to_string));
          check_bool "has numeric ts and dur" true
            (Option.is_some (Option.bind (Json.member "ts" ev) Json.to_float)
            && Option.is_some (Option.bind (Json.member "dur" ev) Json.to_float)))
        events;
      (* Timestamps are relative to the first span. *)
      match events with
      | first :: _ ->
          check_bool "first event starts at ts 0" true
            (Option.bind (Json.member "ts" first) Json.to_float = Some 0.0)
      | [] -> ())

(* ------------------------------------------------------------------ *)
(* Runlog: sink lifecycle and JSONL output                            *)
(* ------------------------------------------------------------------ *)

let test_runlog () =
  Runlog.set_sink None;
  check_bool "inactive without a sink" true (not (Runlog.active ()));
  Runlog.record ~kind:"dropped" [ ("x", Json.Int 1) ];
  let log = Runlog.create () in
  Runlog.set_sink (Some log);
  Fun.protect ~finally:(fun () -> Runlog.set_sink None) (fun () ->
      check_bool "active with a sink" true (Runlog.active ());
      Runlog.record ~kind:"alpha" [ ("pfd", Json.Float 1e-6) ];
      Runlog.record ~kind:"beta" [];
      check_int "both events captured, dropped one lost" 2 (Runlog.size log);
      let lines =
        Runlog.to_jsonl log |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      check_int "one line per event" 2 (List.length lines);
      let docs = List.map (parse_ok "runlog line") lines in
      List.iteri
        (fun i doc ->
          check_bool "has event kind" true
            (Option.is_some
               (Option.bind (Json.member "event" doc) Json.to_string));
          check_bool "seq numbers count up from 1" true
            (Option.bind (Json.member "seq" doc) Json.to_int = Some (i + 1));
          check_bool "has a timestamp" true
            (Option.is_some (Option.bind (Json.member "t_ns" doc) Json.to_int)))
        docs;
      match docs with
      | first :: _ ->
          check_bool "payload fields preserved" true
            (Option.bind (Json.member "pfd" first) Json.to_float = Some 1e-6)
      | [] -> ())

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock () =
  let t0 = Obs.Clock.now_ns () in
  let x = ref 0 in
  for i = 1 to 1_000 do
    x := !x + i
  done;
  let dt = Obs.Clock.elapsed_ns ~since:t0 in
  check_bool "monotonic elapsed time" true (dt >= 0L);
  let v, spent = Obs.Clock.timed (fun () -> 7 * 6) in
  check_int "timed returns the result" 42 v;
  check_bool "timed measures non-negative time" true (spent >= 0L);
  check_bool "unit conversions agree" true
    (Obs.Clock.ns_to_us 1_000L = 1.0
    && Obs.Clock.ns_to_ms 1_000_000L = 1.0
    && Obs.Clock.ns_to_s 1_000_000_000L = 1.0)

(* ------------------------------------------------------------------ *)
(* The zero-allocation disabled path                                  *)
(* ------------------------------------------------------------------ *)

let test_disabled_path_no_alloc () =
  (* With everything disabled (the default state the simulator runs in),
     a hot loop of instrument calls must not touch the minor heap — this
     is the contract that lets instrumentation live inside the
     per-demand loops. *)
  Metrics.set_enabled false;
  Trace.set_enabled false;
  Runlog.set_sink None;
  let c = Metrics.counter "test.noalloc.counter" in
  let g = Metrics.gauge "test.noalloc.gauge" in
  let h = Metrics.histogram "test.noalloc.hist" in
  let iterations = 100_000 in
  let words_before = Gc.minor_words () in
  for _ = 1 to iterations do
    Metrics.incr c;
    Metrics.add c 3;
    Metrics.set g 0.25;
    Metrics.observe h 0.25;
    Trace.leave (Trace.enter "hot");
    if Runlog.active () then Runlog.record ~kind:"hot" []
  done;
  let delta = Gc.minor_words () -. words_before in
  (* Allow the few words the Gc probe itself boxes; real leakage would
     show up as >= one word per iteration. *)
  check_bool
    (Printf.sprintf "disabled path allocates nothing (%.0f words / %d iters)"
       delta iterations)
    true
    (delta < float_of_int iterations /. 100.0);
  check_int "and records nothing" 0 (Metrics.counter_value c);
  check_int "no spans either" 0 (Trace.span_count ())

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "render/parse round-trip" `Quick
            test_json_roundtrip;
          Alcotest.test_case "strict parsing" `Quick test_json_strictness;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "histogram pfd decade edges" `Quick
            test_histogram_pfd_edges;
          Alcotest.test_case "histogram under/overflow" `Quick
            test_histogram_under_overflow;
          Alcotest.test_case "histogram quantiles" `Quick
            test_histogram_quantile;
          Alcotest.test_case "quantile summaries (text and json)" `Quick
            test_quantile_summaries;
          Alcotest.test_case "json snapshot" `Quick test_metrics_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "disabled tracing" `Quick test_trace_disabled;
          Alcotest.test_case "chrome trace export" `Quick test_chrome_json;
        ] );
      ( "runlog", [ Alcotest.test_case "sink and jsonl" `Quick test_runlog ] );
      ( "clock", [ Alcotest.test_case "monotonic timing" `Quick test_clock ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_path_no_alloc;
        ] );
    ]
