(* Tests for demand-space transformations, functional diversity, and
   profile-robustness bounds. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:808

let make_space () =
  let profile = Demandspace.Profile.uniform ~size:100 in
  let r1 = Demandspace.Region.interval ~space_size:100 ~lo:0 ~hi:9 in
  let r2 = Demandspace.Region.interval ~space_size:100 ~lo:20 ~hi:29 in
  Demandspace.Space.create ~profile ~faults:[| (r1, 0.4); (r2, 0.3) |]

(* ------------------------------------------------------------------ *)
(* Transform                                                           *)
(* ------------------------------------------------------------------ *)

let test_transform_identity () =
  let t = Demandspace.Transform.identity 10 in
  for i = 0 to 9 do
    Alcotest.(check int) "identity maps to itself" i
      (Demandspace.Transform.apply t i)
  done;
  Alcotest.(check int) "nothing displaced" 0 (Demandspace.Transform.displaced t)

let test_transform_bijection_validation () =
  Alcotest.check_raises "repeated image"
    (Invalid_argument "Transform.of_array: not a bijection") (fun () ->
      ignore (Demandspace.Transform.of_array [| 0; 0; 2 |]));
  Alcotest.check_raises "image out of range"
    (Invalid_argument "Transform.of_array: image out of range") (fun () ->
      ignore (Demandspace.Transform.of_array [| 0; 3 |]))

let test_transform_inverse () =
  let rng = rng0 () in
  let t = Demandspace.Transform.random rng 50 in
  for x = 0 to 49 do
    Alcotest.(check int) "inverse of apply" x
      (Demandspace.Transform.apply_inverse t (Demandspace.Transform.apply t x))
  done

let test_transform_partial_extremes () =
  let rng = rng0 () in
  let t0 = Demandspace.Transform.partial rng 60 ~fraction:0.0 in
  Alcotest.(check int) "fraction 0 is the identity" 0
    (Demandspace.Transform.displaced t0);
  let t1 = Demandspace.Transform.partial rng 200 ~fraction:1.0 in
  Alcotest.(check bool) "fraction 1 displaces most ids" true
    (Demandspace.Transform.displaced t1 > 150)

let test_transform_preimage () =
  (* mapping: rotate ids by 1 (x -> x+1 mod 5). preimage of {2} is {1}. *)
  let t = Demandspace.Transform.of_array [| 1; 2; 3; 4; 0 |] in
  let s = Numerics.Bitset.of_list 5 [ 2 ] in
  Alcotest.(check (list int)) "preimage" [ 1 ]
    (Numerics.Bitset.to_list (Demandspace.Transform.preimage t s))

let test_transform_compose () =
  let rng = rng0 () in
  let a = Demandspace.Transform.random rng 20 in
  let b = Demandspace.Transform.random rng 20 in
  let c = Demandspace.Transform.compose a b in
  for x = 0 to 19 do
    Alcotest.(check int) "composition law"
      (Demandspace.Transform.apply a (Demandspace.Transform.apply b x))
      (Demandspace.Transform.apply c x)
  done

(* ------------------------------------------------------------------ *)
(* Functional diversity                                                *)
(* ------------------------------------------------------------------ *)

let test_functional_identity_is_worst_case () =
  let space = make_space () in
  let model = Extensions.Functional.non_functional space in
  check_close ~eps:1e-12 "identity sensing = EL pair mean"
    (Baselines.Eckhardt_lee.mean_pair space)
    (Extensions.Functional.mean_pair model);
  check_close ~eps:1e-12 "gain is 1 at the worst case" 1.0
    (Extensions.Functional.functional_gain model)

let test_functional_hand_computed () =
  (* Two disjoint regions; a transform that maps region 1's demands onto
     region 2's and vice versa makes the channels fail on a demand
     together only when A has fault 1 and B has fault 2 (or symmetric):
     E(pair) = sum_x pi theta(x) theta(Tx) = q1*p1*p2 + q2*p2*p1. *)
  let space = make_space () in
  let forward = Array.init 100 (fun i -> i) in
  for i = 0 to 9 do
    forward.(i) <- 20 + i;
    forward.(20 + i) <- i
  done;
  let t = Demandspace.Transform.of_array forward in
  let model = Extensions.Functional.create space ~sensing_b:t in
  check_close ~eps:1e-12 "swapped regions"
    ((0.1 *. 0.4 *. 0.3) +. (0.1 *. 0.3 *. 0.4))
    (Extensions.Functional.mean_pair model);
  (* vs the worst case q1 p1^2 + q2 p2^2 = 0.1*0.16 + 0.1*0.09 = 0.025 *)
  Alcotest.(check bool) "swap beats the worst case" true
    (Extensions.Functional.mean_pair model
    < Extensions.Functional.mean_pair (Extensions.Functional.non_functional space))

let test_functional_gain_zero_denominator () =
  (* Zero-denominator path: with no failure region at all the actual pair
     mean is exactly zero and the gain must come back as infinity (the
     transform removes every coincident failure), not as a 0/0 nan. *)
  let profile = Demandspace.Profile.uniform ~size:10 in
  let r = Demandspace.Region.interval ~space_size:10 ~lo:0 ~hi:4 in
  let space = Demandspace.Space.create ~profile ~faults:[| (r, 0.0) |] in
  let model = Extensions.Functional.non_functional space in
  check_close ~eps:0.0 "pair mean is exactly zero" 0.0
    (Extensions.Functional.mean_pair model);
  Alcotest.(check bool) "gain guard returns infinity" true
    (Extensions.Functional.functional_gain model = infinity)

let test_functional_concrete_pair () =
  let space = make_space () in
  let forward = Array.init 100 (fun i -> i) in
  for i = 0 to 9 do
    forward.(i) <- 20 + i;
    forward.(20 + i) <- i
  done;
  let model =
    Extensions.Functional.create space
      ~sensing_b:(Demandspace.Transform.of_array forward)
  in
  let va = Demandspace.Version.create space [ 0 ] in
  let vb = Demandspace.Version.create space [ 1 ] in
  (* A fails on region 1 ([0,9]); B's input-space failure set is region 2,
     whose plant-space preimage is region 1 — so they coincide. *)
  check_close ~eps:1e-12 "transformed pair pfd" 0.1
    (Extensions.Functional.pair_pfd_of_versions model va vb);
  let vb' = Demandspace.Version.create space [ 0 ] in
  check_close ~eps:1e-12 "same fault no longer coincides" 0.0
    (Extensions.Functional.pair_pfd_of_versions model va vb')

let test_functional_monte_carlo_matches () =
  let rng = rng0 () in
  let space = make_space () in
  let model =
    Extensions.Functional.create space
      ~sensing_b:(Demandspace.Transform.random rng 100)
  in
  let acc = Numerics.Welford.create () in
  for _ = 1 to 30_000 do
    Numerics.Welford.add acc (Extensions.Functional.sample_pair_pfd rng model)
  done;
  check_close ~eps:0.002 "analytic pair mean matches sampling"
    (Extensions.Functional.mean_pair model)
    (Numerics.Welford.mean acc)

let test_functional_continuum_monotone_trend () =
  (* Not pointwise monotone (random permutations), but the fully divergent
     end should beat the worst case clearly. *)
  let rng = rng0 () in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:24 ~height:24 ~n_faults:8
      ~max_extent:4 ~p_lo:0.1 ~p_hi:0.4
      ~profile:(Demandspace.Profile.uniform ~size:(24 * 24))
  in
  let c =
    Extensions.Functional.continuum rng space ~fractions:[| 0.0; 1.0 |]
  in
  let _, at0 = c.(0) and _, at1 = c.(1) in
  Alcotest.(check bool) "full divergence clearly beats identity" true
    (at1 < 0.8 *. at0)

(* ------------------------------------------------------------------ *)
(* Robustness                                                          *)
(* ------------------------------------------------------------------ *)

let test_robust_region_measure () =
  check_close "bounded rise" 0.25
    (Demandspace.Robustness.worst_case_region_measure ~q:0.2 ~epsilon:0.05);
  check_close "capped at 1" 1.0
    (Demandspace.Robustness.worst_case_region_measure ~q:0.99 ~epsilon:0.05)

let test_robust_universe_epsilon_zero () =
  let space = make_space () in
  let u0 = Demandspace.Space.to_universe space in
  let ur = Demandspace.Robustness.robust_universe space ~epsilon:0.0 in
  check_close ~eps:1e-12 "epsilon 0 changes nothing" (Core.Moments.mu2 u0)
    (Core.Moments.mu2 ur)

let test_worst_case_mu2 () =
  let space = make_space () in
  let base = Core.Moments.mu2 (Demandspace.Space.to_universe space) in
  check_close ~eps:1e-12 "epsilon 0 is the base value" base
    (Demandspace.Robustness.worst_case_mu2 space ~epsilon:0.0);
  (* the adversary pushes mass into region 1 (p^2 = 0.16 > 0.09):
     slope is max p_i^2 while headroom lasts *)
  check_close ~eps:1e-12 "linear in epsilon with slope max p^2"
    (base +. (0.16 *. 0.05))
    (Demandspace.Robustness.worst_case_mu2 space ~epsilon:0.05);
  Alcotest.(check bool) "monotone in epsilon" true
    (Demandspace.Robustness.worst_case_mu2 space ~epsilon:0.2
    > Demandspace.Robustness.worst_case_mu2 space ~epsilon:0.1)

let test_worst_case_mu2_below_per_region () =
  let rng = rng0 () in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:24 ~height:24 ~n_faults:8
      ~max_extent:4 ~p_lo:0.1 ~p_hi:0.5
      ~profile:(Demandspace.Profile.uniform ~size:(24 * 24))
  in
  List.iter
    (fun epsilon ->
      let sharp = Demandspace.Robustness.worst_case_mu2 space ~epsilon in
      let loose =
        Core.Moments.mu2 (Demandspace.Robustness.robust_universe space ~epsilon)
      in
      Alcotest.(check bool) "sharp bound below per-region bound" true
        (sharp <= loose +. 1e-12))
    [ 0.01; 0.05; 0.2 ]

let test_total_variation () =
  let a = Demandspace.Profile.uniform ~size:4 in
  let b = Demandspace.Profile.of_weights [| 1.0; 1.0; 1.0; 0.0 |] in
  (* TV = 0.5 * (|1/4-1/3|*3 + 1/4) = 0.5 * (0.25 + 0.25) = 0.25 *)
  check_close ~eps:1e-12 "hand-computed TV" 0.25
    (Demandspace.Robustness.total_variation a b);
  check_close "TV to itself" 0.0 (Demandspace.Robustness.total_variation a a)

let test_profile_sensitivity () =
  let space = make_space () in
  let alt = Demandspace.Profile.peaked ~size:100 ~peak:5 ~mass:0.5 in
  match
    Demandspace.Robustness.profile_sensitivity space
      ~alternatives:[ ("peaked", alt) ]
  with
  | [ (label, mu1, _) ] ->
      Alcotest.(check string) "label" "peaked" label;
      (* demand 5 (in region 1) now carries half the mass: q1 jumps to
         0.5 + 9*(0.5/99), q2 = 10*(0.5/99). *)
      let q1 = 0.5 +. (9.0 *. (0.5 /. 99.0)) in
      let q2 = 10.0 *. (0.5 /. 99.0) in
      check_close ~eps:1e-12 "mu1 under the peaked profile"
        ((0.4 *. q1) +. (0.3 *. q2))
        mu1
  | _ -> Alcotest.fail "expected one row"

let () =
  Alcotest.run "functional-robustness"
    [
      ( "transform",
        [
          Alcotest.test_case "identity" `Quick test_transform_identity;
          Alcotest.test_case "validation" `Quick test_transform_bijection_validation;
          Alcotest.test_case "inverse" `Quick test_transform_inverse;
          Alcotest.test_case "partial extremes" `Quick test_transform_partial_extremes;
          Alcotest.test_case "preimage" `Quick test_transform_preimage;
          Alcotest.test_case "compose" `Quick test_transform_compose;
        ] );
      ( "functional",
        [
          Alcotest.test_case "identity worst case" `Quick
            test_functional_identity_is_worst_case;
          Alcotest.test_case "hand computed" `Quick test_functional_hand_computed;
          Alcotest.test_case "concrete pair" `Quick test_functional_concrete_pair;
          Alcotest.test_case "zero-denominator gain" `Quick
            test_functional_gain_zero_denominator;
          Alcotest.test_case "monte carlo" `Slow test_functional_monte_carlo_matches;
          Alcotest.test_case "continuum trend" `Quick
            test_functional_continuum_monotone_trend;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "region measure" `Quick test_robust_region_measure;
          Alcotest.test_case "epsilon zero" `Quick test_robust_universe_epsilon_zero;
          Alcotest.test_case "worst case mu2" `Quick test_worst_case_mu2;
          Alcotest.test_case "sharp below loose" `Quick
            test_worst_case_mu2_below_per_region;
          Alcotest.test_case "total variation" `Quick test_total_variation;
          Alcotest.test_case "profile sensitivity" `Quick test_profile_sensitivity;
        ] );
    ]
