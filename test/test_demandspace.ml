(* Tests for the demand-space substrate. *)

open Demandspace

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:99

(* ------------------------------------------------------------------ *)
(* Demand                                                              *)
(* ------------------------------------------------------------------ *)

let test_demand_basic () =
  let d = Demand.of_int 17 in
  Alcotest.(check int) "roundtrip" 17 (Demand.to_int d);
  Alcotest.check_raises "negative id"
    (Invalid_argument "Demand.of_int: negative demand id") (fun () ->
      ignore (Demand.of_int (-1)))

let test_demand_coords () =
  let d = Demand.of_int 23 in
  let c = Demand.to_coords ~width:10 d in
  Alcotest.(check int) "var1" 3 c.Demand.var1;
  Alcotest.(check int) "var2" 2 c.Demand.var2;
  Alcotest.(check int) "coords roundtrip" 23
    (Demand.to_int (Demand.of_coords ~width:10 c))

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_uniform () =
  let p = Profile.uniform ~size:10 in
  Alcotest.(check int) "size" 10 (Profile.size p);
  check_close "each demand 1/10" 0.1 (Profile.probability p (Demand.of_int 3));
  let full = Numerics.Bitset.of_list 10 (List.init 10 Fun.id) in
  check_close ~eps:1e-12 "measure of everything" 1.0 (Profile.measure p full)

let test_profile_zipf () =
  let p = Profile.zipf ~size:3 ~exponent:1.0 in
  let z = 1.0 +. 0.5 +. (1.0 /. 3.0) in
  check_close ~eps:1e-12 "zipf head" (1.0 /. z)
    (Profile.probability p (Demand.of_int 0));
  check_close ~eps:1e-12 "zipf tail" (1.0 /. 3.0 /. z)
    (Profile.probability p (Demand.of_int 2))

let test_profile_peaked () =
  let p = Profile.peaked ~size:5 ~peak:2 ~mass:0.6 in
  check_close "peak mass" 0.6 (Profile.probability p (Demand.of_int 2));
  check_close "others share" 0.1 (Profile.probability p (Demand.of_int 0))

let test_profile_sampling () =
  let p = Profile.peaked ~size:4 ~peak:1 ~mass:0.7 in
  let rng = rng0 () in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Demand.to_int (Profile.sample p rng) = 1 then incr hits
  done;
  check_close ~eps:0.01 "peak sampled at its mass" 0.7
    (float_of_int !hits /. float_of_int n)

let test_profile_measure_subset () =
  let p = Profile.uniform ~size:100 in
  let set = Numerics.Bitset.of_list 100 [ 0; 1; 2; 3; 4 ] in
  check_close ~eps:1e-12 "measure of 5 points" 0.05 (Profile.measure p set)

(* ------------------------------------------------------------------ *)
(* Region                                                              *)
(* ------------------------------------------------------------------ *)

let test_region_points () =
  let r = Region.points ~space_size:50 [ 1; 7; 7; 30 ] in
  Alcotest.(check int) "cardinal (dedup)" 3 (Region.cardinal r);
  Alcotest.(check bool) "mem" true (Region.mem r (Demand.of_int 7));
  Alcotest.(check bool) "not mem" false (Region.mem r (Demand.of_int 8));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Region.points: demand id out of range") (fun () ->
      ignore (Region.points ~space_size:10 [ 10 ]))

let test_region_interval () =
  let r = Region.interval ~space_size:20 ~lo:5 ~hi:9 in
  Alcotest.(check int) "cardinal" 5 (Region.cardinal r);
  Alcotest.(check bool) "endpoint" true (Region.mem r (Demand.of_int 9))

let test_region_box () =
  let r = Region.box ~width:10 ~height:8 ~x_lo:2 ~x_hi:4 ~y_lo:1 ~y_hi:2 in
  Alcotest.(check int) "3x2 box" 6 (Region.cardinal r);
  (* (3, 1) maps to id 13 on width 10 *)
  Alcotest.(check bool) "interior point" true (Region.mem r (Demand.of_int 13))

let test_region_line () =
  let r = Region.line ~width:10 ~height:10 ~x0:0 ~y0:0 ~dx:1 ~dy:1 ~steps:5 in
  Alcotest.(check int) "diagonal length" 5 (Region.cardinal r);
  Alcotest.(check bool) "diagonal point (3,3)" true (Region.mem r (Demand.of_int 33));
  (* clipping: most of the line falls off the grid but some stays *)
  let clipped = Region.line ~width:10 ~height:10 ~x0:8 ~y0:8 ~dx:1 ~dy:1 ~steps:5 in
  Alcotest.(check int) "clipped" 2 (Region.cardinal clipped);
  Alcotest.check_raises "entirely off grid"
    (Invalid_argument "Region.line: line misses the grid entirely") (fun () ->
      ignore (Region.line ~width:5 ~height:5 ~x0:10 ~y0:10 ~dx:1 ~dy:0 ~steps:3))

let test_region_scatter () =
  let rng = rng0 () in
  let r = Region.scatter rng ~space_size:1000 ~count:25 in
  Alcotest.(check int) "scatter count" 25 (Region.cardinal r);
  let dense = Region.scatter rng ~space_size:20 ~count:15 in
  Alcotest.(check int) "dense scatter count" 15 (Region.cardinal dense)

let test_region_measure () =
  let p = Profile.uniform ~size:100 in
  let r = Region.interval ~space_size:100 ~lo:0 ~hi:24 in
  check_close ~eps:1e-12 "measure = cardinality/size" 0.25 (Region.measure r p)

let test_region_disjoint_union () =
  let a = Region.interval ~space_size:30 ~lo:0 ~hi:9 in
  let b = Region.interval ~space_size:30 ~lo:10 ~hi:19 in
  let c = Region.interval ~space_size:30 ~lo:5 ~hi:14 in
  Alcotest.(check bool) "a,b disjoint" true (Region.disjoint a b);
  Alcotest.(check bool) "a,c overlap" false (Region.disjoint a c);
  Alcotest.(check int) "union cardinality" 20
    (Numerics.Bitset.cardinal (Region.union_members [ a; b ]))

(* ------------------------------------------------------------------ *)
(* Space and Version                                                   *)
(* ------------------------------------------------------------------ *)

let make_space () =
  let profile = Profile.uniform ~size:100 in
  let r1 = Region.interval ~space_size:100 ~lo:0 ~hi:9 in
  let r2 = Region.interval ~space_size:100 ~lo:20 ~hi:24 in
  let r3 = Region.points ~space_size:100 [ 50; 60; 70 ] in
  Space.create ~profile ~faults:[| (r1, 0.5); (r2, 0.2); (r3, 0.1) |]

let test_space_basic () =
  let s = make_space () in
  Alcotest.(check int) "fault count" 3 (Space.fault_count s);
  Alcotest.(check bool) "disjoint" true (Space.regions_disjoint s);
  Alcotest.(check (list (pair int int))) "no overlap pairs" []
    (Space.overlap_pairs s);
  let q = Space.region_measures s in
  check_close "q1" 0.1 q.(0);
  check_close "q2" 0.05 q.(1);
  check_close "q3" 0.03 q.(2)

let test_space_to_universe () =
  let s = make_space () in
  let u = Space.to_universe s in
  Alcotest.(check int) "universe size" 3 (Core.Universe.size u);
  check_close ~eps:1e-12 "mu1 from space" ((0.5 *. 0.1) +. (0.2 *. 0.05) +. (0.1 *. 0.03))
    (Core.Moments.mu1 u)

let test_space_overlap_detection () =
  let profile = Profile.uniform ~size:50 in
  let r1 = Region.interval ~space_size:50 ~lo:0 ~hi:10 in
  let r2 = Region.interval ~space_size:50 ~lo:8 ~hi:20 in
  let s = Space.create ~profile ~faults:[| (r1, 0.1); (r2, 0.1) |] in
  Alcotest.(check bool) "not disjoint" false (Space.regions_disjoint s);
  Alcotest.(check (list (pair int int))) "overlap pair found" [ (0, 1) ]
    (Space.overlap_pairs s)

let test_version_basic () =
  let s = make_space () in
  let v = Version.create s [ 0; 2 ] in
  Alcotest.(check (list int)) "present" [ 0; 2 ] (Version.present_faults v);
  Alcotest.(check bool) "has fault 0" true (Version.has_fault v 0);
  Alcotest.(check bool) "lacks fault 1" false (Version.has_fault v 1);
  check_close ~eps:1e-12 "pfd = union measure" 0.13 (Version.pfd v);
  check_close ~eps:1e-12 "additive equals pfd when disjoint" (Version.pfd v)
    (Version.additive_pfd v);
  Alcotest.(check bool) "fails inside region" true
    (Version.fails_on v (Demand.of_int 5));
  Alcotest.(check bool) "correct outside" false
    (Version.fails_on v (Demand.of_int 30))

let test_version_perfect () =
  let s = make_space () in
  let v = Version.perfect s in
  check_close "perfect has pfd 0" 0.0 (Version.pfd v);
  Alcotest.(check bool) "never fails" false (Version.fails_on v (Demand.of_int 5))

let test_version_pair () =
  let s = make_space () in
  let a = Version.create s [ 0; 1 ] in
  let b = Version.create s [ 1; 2 ] in
  Alcotest.(check (list int)) "common faults" [ 1 ] (Version.common_faults a b);
  check_close ~eps:1e-12 "pair pfd = common region measure" 0.05
    (Version.pair_pfd a b);
  check_close ~eps:1e-12 "pair pfd symmetric" (Version.pair_pfd a b)
    (Version.pair_pfd b a)

let test_version_pair_overlap () =
  (* Overlapping regions of DIFFERENT faults create pair failure points. *)
  let profile = Profile.uniform ~size:50 in
  let r1 = Region.interval ~space_size:50 ~lo:0 ~hi:10 in
  let r2 = Region.interval ~space_size:50 ~lo:8 ~hi:20 in
  let s = Space.create ~profile ~faults:[| (r1, 0.5); (r2, 0.5) |] in
  let a = Version.create s [ 0 ] in
  let b = Version.create s [ 1 ] in
  check_close ~eps:1e-12 "pair fails on the overlap" (3.0 /. 50.0)
    (Version.pair_pfd a b)

(* ------------------------------------------------------------------ *)
(* Genspace                                                            *)
(* ------------------------------------------------------------------ *)

let test_genspace_disjoint_placement () =
  let rng = rng0 () in
  for _ = 1 to 5 do
    let regions =
      Genspace.place_disjoint rng ~width:40 ~height:40 ~n_faults:15 ~max_extent:5
    in
    Alcotest.(check int) "requested faults placed" 15 (Array.length regions);
    Array.iteri
      (fun i ri ->
        Array.iteri
          (fun j rj ->
            if i < j && not (Region.disjoint ri rj) then
              Alcotest.fail "placed regions overlap")
          regions)
      regions
  done

let test_genspace_disjoint_space () =
  let rng = rng0 () in
  let s =
    Genspace.disjoint_space rng ~width:32 ~height:32 ~n_faults:10 ~max_extent:4
      ~p_lo:0.1 ~p_hi:0.3
      ~profile:(Profile.uniform ~size:(32 * 32))
  in
  Alcotest.(check bool) "space is disjoint" true (Space.regions_disjoint s);
  for i = 0 to 9 do
    let p = Space.introduction_prob s i in
    if p < 0.1 || p > 0.3 then Alcotest.fail "p outside requested range"
  done

let test_genspace_fig2 () =
  let rng = rng0 () in
  let s = Genspace.fig2 rng ~width:48 ~height:24 in
  Alcotest.(check int) "five regions" 5 (Space.fault_count s);
  Alcotest.(check bool) "fig2 disjoint" true (Space.regions_disjoint s);
  let rows = Genspace.render ~width:48 ~height:24 s in
  Alcotest.(check int) "render rows" 24 (List.length rows);
  List.iter
    (fun row -> Alcotest.(check int) "render width" 48 (String.length row))
    rows;
  Alcotest.(check bool) "render shows regions" true
    (List.exists (fun row -> String.contains row '1') rows)

let test_genspace_crowding_raises () =
  let rng = rng0 () in
  Alcotest.(check bool) "impossible placement raises" true
    (try
       ignore
         (Genspace.place_disjoint rng ~width:4 ~height:4 ~n_faults:40
            ~max_extent:4);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_profile_normalised =
  QCheck2.Test.make ~name:"profile probabilities sum to 1" ~count:100
    QCheck2.Gen.(array_size (int_range 1 50) (float_range 0.01 10.0))
    (fun weights ->
      let p = Profile.of_weights weights in
      let total =
        Numerics.Kahan.sum_over (Profile.size p) (fun i ->
            Profile.probability p (Demand.of_int i))
      in
      abs_float (total -. 1.0) < 1e-9)

let prop_version_additive_ge_pfd =
  QCheck2.Test.make ~name:"additive PFD >= true PFD" ~count:50
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Numerics.Rng.create ~seed in
      let s =
        Genspace.overlapping_space rng ~width:20 ~height:20 ~n_faults:6
          ~max_extent:6 ~p_lo:0.2 ~p_hi:0.8
          ~profile:(Profile.uniform ~size:400)
      in
      let faults =
        List.filter (fun _ -> Numerics.Rng.bool rng ~p:0.5) [ 0; 1; 2; 3; 4; 5 ]
      in
      let v = Version.create s faults in
      Version.additive_pfd v >= Version.pfd v -. 1e-12)

let props =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_profile_normalised; prop_version_additive_ge_pfd ]

let () =
  Alcotest.run "demandspace"
    [
      ( "demand",
        [
          Alcotest.test_case "basic" `Quick test_demand_basic;
          Alcotest.test_case "coords" `Quick test_demand_coords;
        ] );
      ( "profile",
        [
          Alcotest.test_case "uniform" `Quick test_profile_uniform;
          Alcotest.test_case "zipf" `Quick test_profile_zipf;
          Alcotest.test_case "peaked" `Quick test_profile_peaked;
          Alcotest.test_case "sampling" `Slow test_profile_sampling;
          Alcotest.test_case "measure subset" `Quick test_profile_measure_subset;
        ] );
      ( "region",
        [
          Alcotest.test_case "points" `Quick test_region_points;
          Alcotest.test_case "interval" `Quick test_region_interval;
          Alcotest.test_case "box" `Quick test_region_box;
          Alcotest.test_case "line" `Quick test_region_line;
          Alcotest.test_case "scatter" `Quick test_region_scatter;
          Alcotest.test_case "measure" `Quick test_region_measure;
          Alcotest.test_case "disjoint/union" `Quick test_region_disjoint_union;
        ] );
      ( "space",
        [
          Alcotest.test_case "basic" `Quick test_space_basic;
          Alcotest.test_case "to universe" `Quick test_space_to_universe;
          Alcotest.test_case "overlap detection" `Quick test_space_overlap_detection;
        ] );
      ( "version",
        [
          Alcotest.test_case "basic" `Quick test_version_basic;
          Alcotest.test_case "perfect" `Quick test_version_perfect;
          Alcotest.test_case "pair" `Quick test_version_pair;
          Alcotest.test_case "pair with overlap" `Quick test_version_pair_overlap;
        ] );
      ( "genspace",
        [
          Alcotest.test_case "disjoint placement" `Quick test_genspace_disjoint_placement;
          Alcotest.test_case "disjoint space" `Quick test_genspace_disjoint_space;
          Alcotest.test_case "fig2" `Quick test_genspace_fig2;
          Alcotest.test_case "crowding" `Quick test_genspace_crowding_raises;
        ] );
      ("properties", props);
    ]
