(* The determinism contract of lib/exec: sharded map-reduce outputs are
   a pure function of (seed, shards) and byte-identical for any domain
   count. Every parallel entry point is run on a 1-domain (inline
   sequential) pool and a 4-domain pool and compared bit-for-bit; shard
   substream accounting and the pool mechanics get unit tests of their
   own. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Bit-level float comparison: the contract is byte identity, not
   tolerance. *)
let bits = Array.map Int64.bits_of_float
let check_bits name a b = Alcotest.(check (array int64)) name (bits a) (bits b)

let check_float_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Pools shared by all tests. The container may expose a single core —
   that slows the 4-domain pool down but cannot change any output, which
   is exactly what these tests pin. *)
let pool1 = lazy (Exec.Pool.create ~domains:1 ())
let pool4 = lazy (Exec.Pool.create ~domains:4 ())

let universe n =
  let rng = Numerics.Rng.create ~seed:11 in
  Core.Universe.uniform_random rng ~n ~p_lo:0.01 ~p_hi:0.4 ~total_q:0.5

let space seed =
  let rng = Numerics.Rng.create ~seed in
  Demandspace.Genspace.disjoint_space rng ~width:32 ~height:32 ~n_faults:10
    ~max_extent:4 ~p_lo:0.05 ~p_hi:0.4
    ~profile:(Demandspace.Profile.uniform ~size:(32 * 32))

let system seed =
  let rng = Numerics.Rng.create ~seed in
  let va, vb = Simulator.Devteam.develop_pair rng (space seed) in
  Simulator.Protection.one_out_of_two
    (Simulator.Channel.create ~name:"A" va)
    (Simulator.Channel.create ~name:"B" vb)

(* ---- shard_bounds ---- *)

let test_shard_bounds () =
  let check_cover ~range ~shards =
    let b = Exec.shard_bounds ~range ~shards in
    check_int "one entry per shard" shards (Array.length b);
    let seen = Array.make range 0 in
    Array.iter
      (fun (lo, len) ->
        check_bool "len >= 0" true (len >= 0);
        for i = lo to lo + len - 1 do
          seen.(i) <- seen.(i) + 1
        done)
      b;
    Array.iteri
      (fun i c -> check_int (Printf.sprintf "index %d covered once" i) 1 c)
      seen;
    let lens = Array.map snd b in
    let mn = Array.fold_left min max_int lens
    and mx = Array.fold_left max 0 lens in
    check_bool "balanced to within one" true (mx - mn <= 1)
  in
  check_cover ~range:10 ~shards:4;
  check_cover ~range:16 ~shards:16;
  check_cover ~range:1 ~shards:3;
  check_cover ~range:1000 ~shards:7;
  (* more shards than work: trailing shards are empty, coverage holds *)
  let b = Exec.shard_bounds ~range:2 ~shards:5 in
  check_int "empty tail shards" 3
    (Array.fold_left (fun acc (_, len) -> if len = 0 then acc + 1 else acc) 0 b)

(* ---- split_rngs ---- *)

let test_split_rngs () =
  let parent = Numerics.Rng.create ~seed:99 in
  let before = Numerics.Rng.draws parent in
  let subs = Exec.split_rngs parent ~shards:8 in
  check_int "parent advances one draw per split" 8
    (Numerics.Rng.draws parent - before);
  (* substreams are reproducible and pairwise distinct *)
  let parent' = Numerics.Rng.create ~seed:99 in
  let subs' = Exec.split_rngs parent' ~shards:8 in
  let draw_some r = Array.init 16 (fun _ -> Numerics.Rng.float r) in
  let a = Array.map draw_some subs and b = Array.map draw_some subs' in
  Array.iteri
    (fun k ak -> check_bits (Printf.sprintf "substream %d reproducible" k) ak b.(k))
    a;
  for i = 0 to 6 do
    check_bool
      (Printf.sprintf "substreams %d and %d differ" i (i + 1))
      true
      (bits a.(i) <> bits a.(i + 1))
  done

(* ---- Pool.run ---- *)

let test_pool_run () =
  let p4 = Lazy.force pool4 in
  check_int "pool size" 4 (Exec.Pool.size p4);
  let r = Exec.Pool.run p4 ~n:257 (fun i -> (i * i) - i) in
  Alcotest.(check (array int))
    "results in index order"
    (Array.init 257 (fun i -> (i * i) - i))
    r;
  let r0 = Exec.Pool.run p4 ~n:0 (fun _ -> assert false) in
  check_int "empty batch" 0 (Array.length r0)

exception Boom of int

let test_pool_exception () =
  let p4 = Lazy.force pool4 in
  let raised =
    match Exec.Pool.run p4 ~n:64 (fun i -> if i = 37 then raise (Boom i) else i) with
    | _ -> false
    | exception Boom 37 -> true
  in
  check_bool "task exception propagates" true raised;
  (* the pool survives a failed batch *)
  let r = Exec.Pool.run p4 ~n:8 (fun i -> i + 1) in
  Alcotest.(check (array int)) "pool reusable after failure"
    (Array.init 8 (fun i -> i + 1)) r

(* ---- Montecarlo.estimate: byte identity across domain counts ---- *)

let estimate ~pool ~shards ~seed =
  let rng = Numerics.Rng.create ~seed in
  Simulator.Montecarlo.estimate ~pool ~shards rng (universe 200) ~replications:96

let test_estimate_identical () =
  let a = estimate ~pool:(Lazy.force pool1) ~shards:4 ~seed:7 in
  let b = estimate ~pool:(Lazy.force pool4) ~shards:4 ~seed:7 in
  check_bits "theta1 samples" a.Simulator.Montecarlo.theta1_samples
    b.Simulator.Montecarlo.theta1_samples;
  check_bits "theta2 samples" a.theta2_samples b.theta2_samples;
  check_float_bits "theta1 mean" a.theta1.Numerics.Stats.mean
    b.theta1.Numerics.Stats.mean;
  check_float_bits "theta2 std" a.theta2.Numerics.Stats.std
    b.theta2.Numerics.Stats.std;
  check_float_bits "risk ratio" a.risk_ratio b.risk_ratio;
  check_float_bits "p_n1_pos" a.p_n1_pos b.p_n1_pos;
  Alcotest.(check (array int)) "per-shard draw counts" a.shard_draws b.shard_draws

let test_estimate_shard_accounting () =
  let a = estimate ~pool:(Lazy.force pool4) ~shards:6 ~seed:3 in
  let b = estimate ~pool:(Lazy.force pool4) ~shards:6 ~seed:3 in
  check_int "shards recorded" 6 a.Simulator.Montecarlo.shards;
  check_int "one draw count per shard" 6 (Array.length a.shard_draws);
  Alcotest.(check (array int)) "draw counts reproducible" a.shard_draws
    b.shard_draws;
  Array.iter (fun d -> check_bool "every shard drew" true (d > 0)) a.shard_draws

let test_estimate_shards_matter () =
  (* Changing the shard count changes the substreams — deterministically
     different outputs, which is why shards defaults to a constant. *)
  let a = estimate ~pool:(Lazy.force pool1) ~shards:4 ~seed:7 in
  let b = estimate ~pool:(Lazy.force pool1) ~shards:8 ~seed:7 in
  check_bool "different shard counts, different samples" true
    (bits a.Simulator.Montecarlo.theta1_samples
    <> bits b.Simulator.Montecarlo.theta1_samples)

(* ---- Campaign ---- *)

let mttf ~pool ~seed =
  let rng = Numerics.Rng.create ~seed in
  Simulator.Campaign.estimate_mttf ~pool ~shards:4 rng ~system:(system 21)
    ~missions:64 ~max_demands:400

let test_campaign_identical () =
  let a = mttf ~pool:(Lazy.force pool1) ~seed:5 in
  let b = mttf ~pool:(Lazy.force pool4) ~seed:5 in
  check_int "missions" a.Simulator.Campaign.missions b.Simulator.Campaign.missions;
  check_int "failures" a.failures b.failures;
  check_int "censored" a.censored b.censored;
  check_float_bits "mttf" a.mean_time_to_failure b.mean_time_to_failure;
  check_float_bits "failure rate" a.failure_rate b.failure_rate

let test_survival_identical () =
  let run pool =
    let rng = Numerics.Rng.create ~seed:13 in
    Simulator.Campaign.simulate_mission_survival ~pool ~shards:4 rng
      ~system:(system 21) ~mission_demands:300 ~missions:80
  in
  check_float_bits "survival probability" (run (Lazy.force pool1))
    (run (Lazy.force pool4))

(* ---- version population & empirical system PFD ---- *)

let test_population_identical () =
  let run pool =
    let rng = Numerics.Rng.create ~seed:17 in
    Simulator.Montecarlo.version_population ~pool ~shards:4 rng (space 17)
      ~count:12
  in
  let a = run (Lazy.force pool1) and b = run (Lazy.force pool4) in
  check_int "12 choose 2 pairs" 66
    (Array.length a.Simulator.Montecarlo.pair_pfds);
  check_bits "version pfds" a.version_pfds b.version_pfds;
  check_bits "pair pfds" a.pair_pfds b.pair_pfds

let test_empirical_pfd_identical () =
  let run pool =
    let rng = Numerics.Rng.create ~seed:23 in
    Simulator.Montecarlo.empirical_system_pfd ~pool ~shards:4 rng (space 23)
      ~replications:12 ~demands_per_system:200
  in
  check_float_bits "empirical system pfd" (run (Lazy.force pool1))
    (run (Lazy.force pool4))

(* ---- Sensitivity gradient ---- *)

let test_gradient_identical () =
  let ps = Array.init 60 (fun i -> 0.01 +. (0.005 *. float_of_int i)) in
  let seq = Core.Sensitivity.risk_ratio_gradient ~pool:(Lazy.force pool1) ~shards:1 ps in
  let par = Core.Sensitivity.risk_ratio_gradient ~pool:(Lazy.force pool4) ~shards:5 ps in
  check_bits "gradient" seq par

(* ---- Pfd_dist ---- *)

let test_grid_identical () =
  (* Large enough that the sharded dense-update path actually engages
     (>= 32768 active bins); both paths must be bit-identical. *)
  let u = universe 60 in
  let seq = Core.Pfd_dist.grid_single ~shards:1 u ~bins:40_000 in
  let par =
    Core.Pfd_dist.grid_single ~pool:(Lazy.force pool4) ~shards:4 u ~bins:40_000
  in
  check_bits "grid support" (Core.Pfd_dist.support seq) (Core.Pfd_dist.support par);
  check_bits "grid masses" (Core.Pfd_dist.masses seq) (Core.Pfd_dist.masses par)

let test_exact_sharded_close () =
  (* The sharded exact tree reassociates mass sums, so equality is up to
     ulp-level rounding, not byte identity — but it must not depend on
     the pool size. *)
  let u = universe 14 in
  let seq = Core.Pfd_dist.exact_single ~shards:1 u in
  let p1 = Core.Pfd_dist.exact_single ~pool:(Lazy.force pool1) ~shards:4 u in
  let p4 = Core.Pfd_dist.exact_single ~pool:(Lazy.force pool4) ~shards:4 u in
  check_bits "sharded exact: domain count irrelevant"
    (Core.Pfd_dist.masses p1) (Core.Pfd_dist.masses p4);
  check_int "same support size" (Core.Pfd_dist.size seq) (Core.Pfd_dist.size p1);
  let close what a b =
    check_bool what true (Float.abs (a -. b) <= 1e-12 *. (1.0 +. Float.abs a))
  in
  close "mean" (Core.Pfd_dist.mean seq) (Core.Pfd_dist.mean p1);
  close "variance" (Core.Pfd_dist.variance seq) (Core.Pfd_dist.variance p1);
  close "P(theta > 0)" (Core.Pfd_dist.prob_positive seq)
    (Core.Pfd_dist.prob_positive p1)

(* ---- trace spans from parallel regions ---- *)

let test_trace_shards () =
  Obs.Trace.set_enabled true;
  let _ = estimate ~pool:(Lazy.force pool4) ~shards:4 ~seed:31 in
  let rendered = Obs.Trace.render_chrome_json () in
  Obs.Trace.set_enabled false;
  (match Obs.Json.parse rendered with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome trace is not valid JSON: " ^ e));
  check_bool "spans carry a shard lane (tid)" true
    (let needle = "\"tid\"" in
     let nl = String.length needle and hl = String.length rendered in
     let rec go i =
       i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1))
     in
     go 0)

let () =
  Alcotest.run "exec"
    [
      ( "mechanics",
        [
          Alcotest.test_case "shard_bounds" `Quick test_shard_bounds;
          Alcotest.test_case "split_rngs" `Quick test_split_rngs;
          Alcotest.test_case "pool run" `Quick test_pool_run;
          Alcotest.test_case "pool exceptions" `Quick test_pool_exception;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "montecarlo estimate" `Quick test_estimate_identical;
          Alcotest.test_case "shard draw accounting" `Quick
            test_estimate_shard_accounting;
          Alcotest.test_case "shards change outputs" `Quick
            test_estimate_shards_matter;
          Alcotest.test_case "campaign mttf" `Quick test_campaign_identical;
          Alcotest.test_case "mission survival" `Quick test_survival_identical;
          Alcotest.test_case "version population" `Quick test_population_identical;
          Alcotest.test_case "empirical system pfd" `Quick
            test_empirical_pfd_identical;
          Alcotest.test_case "sensitivity gradient" `Quick test_gradient_identical;
          Alcotest.test_case "grid pfd dist" `Quick test_grid_identical;
          Alcotest.test_case "sharded exact pfd dist" `Quick
            test_exact_sharded_close;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "trace shard lanes" `Quick test_trace_shards ] );
    ]
