(* Differential oracle suite: drives the lib/check registry over
   randomized paired scenarios, plus the deterministic satellites —
   adjudicator degenerate configurations, Appendix A golden pins, and
   mutation-power checks showing the comparators actually reject
   corrupted analytic values.

   Like every Prop-based suite, the randomized sections are a pure
   function of PROP_SEED (default 0x5eed_cafe): any reported failure is
   replayable bit-for-bit with `make prop PROP_SEED=<seed>`. *)

let check_float = Alcotest.(check (float 1e-12))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_bits what expected actual =
  Alcotest.(check int64) what expected (Int64.bits_of_float actual)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

(* ---- registry coverage ---- *)

let test_registry_coverage () =
  let ids = Check.Registry.ids () in
  check_bool "at least 8 oracle pairs registered" true (List.length ids >= 8);
  let sorted = List.sort_uniq String.compare ids in
  check_int "oracle ids unique" (List.length ids) (List.length sorted);
  List.iter
    (fun id ->
      match Check.Registry.find id with
      | Some o -> check_bool id true (String.equal (Check.Oracle.id o) id)
      | None -> Alcotest.failf "Registry.find %S returned None" id)
    ids;
  check_bool "find rejects unknown ids" true
    (Check.Registry.find "no-such-oracle" = None)

let test_registry_descriptions () =
  List.iter
    (fun o ->
      check_bool
        (Check.Oracle.id o ^ " has a description")
        true
        (String.length (Check.Oracle.description o) > 10))
    Check.Registry.all

(* ---- the randomized differential property ---- *)

let fail_outcomes scenario outcomes =
  Alcotest.failf "%d oracle check(s) disagreed on %s:@\n%a"
    (List.length outcomes)
    (Check.Scenario.to_string scenario)
    (Fmt.list ~sep:Fmt.cut Check.Oracle.pp_outcome)
    outcomes

(* The tentpole property: on every randomized architecture/space pair,
   every analytic quantity agrees with its independent estimator under
   the registered comparator. 100 scenarios x 13 oracles ~ 3k checks. *)
let test_differential_sweep () =
  Prop.check ~cases:100 "registry agrees on randomized scenarios"
    (Prop.scenario ())
    (fun scenario ->
      match Check.Registry.failures (Check.Registry.run_all scenario) with
      | [] -> ()
      | bad -> fail_outcomes scenario bad)

(* Verdicts are a pure function of the scenario: running the registry
   twice yields bit-identical simulated values and identical verdicts
   (per-oracle RNG salts, no shared mutable state). *)
let test_determinism () =
  Prop.check ~cases:5 "registry outcomes are deterministic"
    (Prop.scenario ~replications:400 ())
    (fun scenario ->
      let a = Check.Registry.run_all scenario in
      let b = Check.Registry.run_all scenario in
      check_int "outcome count" (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          check_bits
            (x.Check.Oracle.oracle ^ "/" ^ x.quantity)
            (Int64.bits_of_float x.Check.Oracle.simulated)
            y.Check.Oracle.simulated;
          check_bool "same verdict" (Check.Oracle.passed x)
            (Check.Oracle.passed y))
        a b)

let test_sweep_summary () =
  let sweep = Check.Registry.sweep ~seed:7 ~cases:3 ~replications:400 () in
  check_bool "sweep passes" true (Check.Registry.passed sweep);
  check_int "cases" 3 sweep.Check.Registry.cases;
  check_bool "every oracle ran on every case" true
    (List.for_all (fun (_, n, _) -> n >= 3) sweep.Check.Registry.per_oracle);
  let rendered = Check.Registry.render sweep in
  check_bool "render mentions the tally" true
    (contains ~sub:"3 scenarios" rendered)

(* ---- comparator unit behaviour ---- *)

let test_comparators () =
  check_bool "exact_bits accepts identical doubles" true
    (Check.Compare.exact_bits 0.1 0.1).Check.Compare.pass;
  check_bool "exact_bits rejects one-ulp difference" false
    (Check.Compare.exact_bits 0.1 (Float.succ 0.1)).Check.Compare.pass;
  check_bool "exact_bits rejects nan" false
    (Check.Compare.exact_bits Float.nan Float.nan).Check.Compare.pass;
  check_bool "approx tolerates rounding" true
    (Check.Compare.approx 0.3 (0.1 +. 0.2)).Check.Compare.pass;
  check_bool "approx rejects real differences" false
    (Check.Compare.approx 0.3 0.31).Check.Compare.pass;
  check_bool "wilson accepts the true proportion" true
    (Check.Compare.wilson ~expected:0.5 ~successes:249 ~trials:500 ())
      .Check.Compare.pass;
  check_bool "wilson rejects a far-off proportion" false
    (Check.Compare.wilson ~expected:0.9 ~successes:250 ~trials:500 ())
      .Check.Compare.pass;
  Alcotest.check_raises "wilson rejects empty samples"
    (Invalid_argument "Compare.wilson: trials must be positive") (fun () ->
      ignore (Check.Compare.wilson ~expected:0.5 ~successes:0 ~trials:0 ()));
  check_bool "mean_z accepts a mean within tolerance" true
    (Check.Compare.mean_z ~expected:1.0 ~sigma:0.5 ~trials:100 ~mean:1.1 ())
      .Check.Compare.pass;
  check_bool "mean_z rejects a far-off mean" false
    (Check.Compare.mean_z ~expected:1.0 ~sigma:0.5 ~trials:100 ~mean:2.0 ())
      .Check.Compare.pass;
  (* zero sigma and no bound: degrades to the float comparator *)
  check_bool "mean_z zero-sigma exact" true
    (Check.Compare.mean_z ~expected:0.25 ~sigma:0.0 ~trials:10 ~mean:0.25 ())
      .Check.Compare.pass;
  check_bool "mean_z zero-sigma rejects any gap" false
    (Check.Compare.mean_z ~expected:0.25 ~sigma:0.0 ~trials:10 ~mean:0.26 ())
      .Check.Compare.pass;
  (* the Bernstein term widens the tolerance for bounded rare events *)
  let narrow =
    Check.Compare.mean_z ~expected:0.01 ~sigma:0.001 ~trials:100 ~mean:0.012 ()
  in
  let widened =
    Check.Compare.mean_z ~bound:0.05 ~expected:0.01 ~sigma:0.001 ~trials:100
      ~mean:0.012 ()
  in
  check_bool "pure z-test rejects" false narrow.Check.Compare.pass;
  check_bool "bernstein bound accepts" true widened.Check.Compare.pass;
  check_bool "ratio_wilson inconclusive on empty denominator" true
    (Check.Compare.ratio_wilson ~expected:5.0 ~num:3 ~den:0 ~trials:50 ())
      .Check.Compare.pass;
  check_bool "ratio_wilson accepts the true ratio" true
    (Check.Compare.ratio_wilson ~expected:0.5 ~num:100 ~den:200 ~trials:400 ())
      .Check.Compare.pass;
  check_bool "ratio_wilson rejects a far-off ratio" false
    (Check.Compare.ratio_wilson ~expected:5.0 ~num:100 ~den:200 ~trials:400 ())
      .Check.Compare.pass

let test_scenario_validation () =
  (* overlapping regions: the universe abstraction would be the Section
     6.2 pessimistic approximation, so Scenario.create must refuse *)
  let overlapping =
    Demandspace.Space.create
      ~profile:(Demandspace.Profile.uniform ~size:50)
      ~faults:
        [|
          (Demandspace.Region.interval ~space_size:50 ~lo:0 ~hi:9, 0.2);
          (Demandspace.Region.interval ~space_size:50 ~lo:5 ~hi:14, 0.3);
        |]
  in
  check_bool "overlap detected" false
    (Demandspace.Space.regions_disjoint overlapping);
  (try
     ignore
       (Check.Scenario.create ~arch:Core.Voting.one_out_of_two
          ~space:overlapping ~sim_seed:1 ~replications:10);
     Alcotest.fail "Scenario.create accepted an overlapping space"
   with Invalid_argument _ -> ());
  (* generation is a pure function of the rng state *)
  let s1 = Check.Scenario.generate (Numerics.Rng.create ~seed:99) in
  let s2 = Check.Scenario.generate (Numerics.Rng.create ~seed:99) in
  Alcotest.(check string)
    "generate deterministic"
    (Check.Scenario.to_string s1)
    (Check.Scenario.to_string s2);
  check_bool "generated regions disjoint" true
    (Demandspace.Space.regions_disjoint (Check.Scenario.space s1))

(* ---- adjudicator degenerate configurations ---- *)

let test_adjudicator_degenerate () =
  let open Simulator in
  Alcotest.check_raises "empty output list"
    (Invalid_argument "Adjudicator.combine: no channel outputs") (fun () ->
      ignore (Adjudicator.combine Adjudicator.one_out_of_n []));
  Alcotest.check_raises "zero required votes"
    (Invalid_argument "Adjudicator.m_out_of_n: required must be >= 1")
    (fun () -> ignore (Adjudicator.m_out_of_n ~required:0));
  (try
     ignore
       (Adjudicator.combine
          (Adjudicator.m_out_of_n ~required:3)
          [ Channel.Shutdown; Channel.Shutdown ]);
     Alcotest.fail "accepted more required votes than channels"
   with Invalid_argument _ -> ());
  (* single channel: the adjudicator is the identity *)
  List.iter
    (fun o ->
      check_bool "single channel passthrough" true
        (Adjudicator.combine Adjudicator.one_out_of_n [ o ] = o))
    [ Channel.Shutdown; Channel.No_action ];
  (* all-channels-required: one abstaining channel defeats the shutdown *)
  let unanimous = Adjudicator.m_out_of_n ~required:3 in
  check_bool "unanimous, all vote" true
    (Adjudicator.combine unanimous
       [ Channel.Shutdown; Channel.Shutdown; Channel.Shutdown ]
    = Channel.Shutdown);
  check_bool "unanimous, one abstains" true
    (Adjudicator.combine unanimous
       [ Channel.Shutdown; Channel.No_action; Channel.Shutdown ]
    = Channel.No_action);
  check_bool "system_fails tracks the combined output" true
    (Adjudicator.system_fails unanimous
       [ Channel.Shutdown; Channel.No_action; Channel.Shutdown ])

let test_degenerate_universes () =
  (* the model refuses an empty fault universe outright *)
  (try
     ignore (Core.Universe.of_pairs []);
     Alcotest.fail "accepted an empty universe"
   with Invalid_argument _ -> ());
  (* perfect process (p = 0 everywhere): simulated voted systems never
     carry a fault, matching mu = 0 exactly *)
  let u = Core.Universe.of_pairs [ (0.0, 0.1); (0.0, 0.2) ] in
  let arch = Core.Voting.two_out_of_three in
  let run =
    Check.Sim.voted (Numerics.Rng.create ~seed:5) u ~arch ~replications:200
  in
  check_float "mu = 0" 0.0 (Core.Voting.mu arch u);
  check_int "no system faults ever" 0 run.Check.Sim.system_faulty;
  check_int "no single faults ever" 0 run.Check.Sim.single_faulty;
  check_bool "all sampled PFDs zero" true
    (Array.for_all (fun x -> x = 0.0) run.Check.Sim.pfds);
  (* certain faults (p = 1): every channel carries every fault, any
     architecture is defeated, and the PFD is the total measure *)
  let u1 = Core.Universe.of_pairs [ (1.0, 0.1); (1.0, 0.2) ] in
  let run1 =
    Check.Sim.voted (Numerics.Rng.create ~seed:6) u1 ~arch ~replications:50
  in
  check_float "mu = total_q" (Core.Universe.total_q u1)
    (Core.Voting.mu arch u1);
  check_int "every replication system-faulty" 50 run1.Check.Sim.system_faulty;
  check_bool "every sampled PFD = total_q" true
    (Array.for_all
       (fun x -> x = Core.Universe.total_q u1)
       run1.Check.Sim.pfds)

(* ---- Appendix A golden pins ----

   The paper's Appendix A studies, for n = 2, where improving one
   channel stops paying: the risk ratio as a function of p1 at fixed p2
   has its stationary point at p1 = p2 (sqrt (2 / (1 + p2)) - 1)/(1 - p2).
   We pin the stationary point for p2 = 0.3 and every derived quantity
   of the 1-out-of-2 system on a q = (0.012, 0.02) universe to exact
   IEEE-754 bit patterns (captured from the implementation at the time
   this suite was written): any change to the voting algebra, the
   summation order, or the distribution enumeration shows up as a bit
   difference here before any statistical test can see it. *)

let golden_universe () =
  let p2 = 0.3 in
  let p1 = Core.Sensitivity.stationary_p1 ~p2 in
  (p1, p2, Core.Universe.of_pairs [ (p1, 0.012); (p2, 0.02) ])

let test_golden_stationary_point () =
  let p1, p2, u = golden_universe () in
  let arch = Core.Voting.one_out_of_two in
  check_bits "stationary p1" 0x3fba5e9a00689ec2L p1;
  check_bits "Voting.mu" 0x3f5f93c725d77ef9L (Core.Voting.mu arch u);
  check_bits "Voting.var" 0x3f01f7dd602439ebL (Core.Voting.var arch u);
  check_bits "p_some_system_fault" 0x3fb98302c23dc19bL
    (Core.Voting.p_some_system_fault arch u);
  check_bits "risk_ratio_vs_single" 0x3fd123e419dd9a6bL
    (Core.Voting.risk_ratio_vs_single arch u);
  check_bits "Sensitivity.risk_ratio_two" 0x3fd123e419dd9a68L
    (Core.Sensitivity.risk_ratio_two ~p1 ~p2);
  (* the two risk-ratio derivations agree analytically but differ in
     rounding (3 ulps here) — exactly the distinction between the
     exact-bits and approx comparator tiers *)
  check_bool "derivations agree up to rounding" true
    (Check.Compare.approx
       (Core.Voting.risk_ratio_vs_single arch u)
       (Core.Sensitivity.risk_ratio_two ~p1 ~p2))
      .Check.Compare.pass;
  (* stationarity: perturbing p1 in either direction increases the ratio *)
  let rr d = Core.Sensitivity.risk_ratio_two ~p1:(p1 +. d) ~p2 in
  check_bool "stationary point is a minimum" true
    (rr 1e-4 >= rr 0.0 && rr (-1e-4) >= rr 0.0)

let test_golden_pfd_dist () =
  let _, _, u = golden_universe () in
  let d = Core.Voting.pfd_dist Core.Voting.one_out_of_two u in
  check_int "support size" 4 (Core.Pfd_dist.size d);
  let support_bits =
    [ 0x0L; 0x3f889374bc6a7efaL; 0x3f947ae147ae147bL; 0x3fa0624dd2f1a9fcL ]
  in
  let mass_bits =
    [
      0x3feccf9fa7b847cdL;
      0x3f83c62a8ccf5468L;
      0x3fb6cba884b39009L;
      0x3f4f4a75f82382c7L;
    ]
  in
  List.iteri
    (fun i bits ->
      check_bits (Printf.sprintf "support[%d]" i) bits
        (Core.Pfd_dist.support d).(i))
    support_bits;
  List.iteri
    (fun i bits ->
      check_bits (Printf.sprintf "mass[%d]" i) bits (Core.Pfd_dist.masses d).(i))
    mass_bits

(* ---- mutation power ----

   The differential suite is only worth its runtime if a corrupted
   analytic formula actually fails it. These checks corrupt the analytic
   side the way a plausible coding slip would (wrong binomial defeat
   threshold; complement instead of probability) and assert the
   comparator rejects the corrupted value against an honest simulation —
   the in-suite half of the mutation smoke documented in
   EXPERIMENTS.md. *)

let test_mutation_power () =
  let scenario =
    Check.Scenario.create ~arch:Core.Voting.one_out_of_two
      ~space:
        (Demandspace.Space.create
           ~profile:(Demandspace.Profile.uniform ~size:100)
           ~faults:
             [|
               (Demandspace.Region.interval ~space_size:100 ~lo:0 ~hi:9, 0.35);
               (Demandspace.Region.interval ~space_size:100 ~lo:20 ~hi:34, 0.5);
               (Demandspace.Region.interval ~space_size:100 ~lo:50 ~hi:57, 0.2);
             |])
      ~sim_seed:4242 ~replications:20_000
  in
  let u = Check.Scenario.universe scenario in
  let arch = Check.Scenario.arch scenario in
  let r = Check.Scenario.replications scenario in
  let run = Check.Sim.voted (Check.Oracle.rng scenario ~salt:2) u ~arch ~replications:r in
  let mean = Numerics.Stats.mean run.Check.Sim.pfds in
  let verdict expected =
    Check.Compare.mean_z
      ~bound:(Core.Universe.total_q u)
      ~expected
      ~sigma:(Core.Voting.sigma arch u)
      ~trials:r ~mean ()
  in
  (* the honest formula passes... *)
  check_bool "honest mu accepted" true
    (verdict (Core.Voting.mu arch u)).Check.Compare.pass;
  (* ...a wrong defeat threshold (>= 1 channel instead of >= 2, i.e.
     mu1 instead of mu2 for 1-out-of-2) is rejected... *)
  check_bool "mutated defeat threshold rejected" false
    (verdict (Core.Moments.mu1 u)).Check.Compare.pass;
  (* ...as is a sign/complement slip in the event probability *)
  let honest_p = Core.Voting.p_some_system_fault arch u in
  let sys = run.Check.Sim.system_faulty in
  check_bool "honest p_some accepted" true
    (Check.Compare.wilson ~expected:honest_p ~successes:sys ~trials:r ())
      .Check.Compare.pass;
  check_bool "complement slip rejected" false
    (Check.Compare.wilson ~expected:(1.0 -. honest_p) ~successes:sys ~trials:r
       ())
      .Check.Compare.pass

let () =
  Alcotest.run "diff"
    [
      ( "registry",
        [
          Alcotest.test_case "coverage" `Quick test_registry_coverage;
          Alcotest.test_case "descriptions" `Quick test_registry_descriptions;
        ] );
      ( "differential",
        [
          Alcotest.test_case "randomized sweep" `Slow test_differential_sweep;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "sweep summary" `Quick test_sweep_summary;
        ] );
      ( "comparators",
        [
          Alcotest.test_case "verdicts" `Quick test_comparators;
          Alcotest.test_case "scenario validation" `Quick
            test_scenario_validation;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "adjudicator" `Quick test_adjudicator_degenerate;
          Alcotest.test_case "universes" `Quick test_degenerate_universes;
        ] );
      ( "golden",
        [
          Alcotest.test_case "appendix A stationary point" `Quick
            test_golden_stationary_point;
          Alcotest.test_case "pfd distribution bits" `Quick
            test_golden_pfd_dist;
        ] );
      ( "mutation",
        [ Alcotest.test_case "power" `Quick test_mutation_power ] );
    ]
