(* Property-based suite for the sharded simulator (harness: Prop).

   Three layers of evidence that sharding and batched demand sampling
   changed nothing they must not change:

   - golden example tests pin the exact pre-change outputs (captured on
     the commit before the fleet was sharded) for the legacy
     [~shards:1] path and the rewritten runner loop;
   - randomized properties check, over hundreds of generated
     (seed, space, shards) configurations, that every sharded entry
     point is a pure function of (seed, shards) — 1-domain and 4-domain
     pools byte-identical — that [~shards:1] reproduces a test-local
     reimplementation of the pre-change algorithms draw for draw, and
     that [Rng.total_draws] accounting is exact under parallel runs;
   - statistical tests check the fleet estimators against their oracles
     (dispersion ~ 1 for a common PFD, method of moments vs the true
     PFD summary). *)

open Numerics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_float_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits name a b =
  Alcotest.(check (array int64))
    name
    (Array.map Int64.bits_of_float a)
    (Array.map Int64.bits_of_float b)

(* Pools shared by every test; a single-core container slows the
   4-domain pool but cannot change any output, which is the point. *)
let pool1 = lazy (Exec.Pool.create ~domains:1 ())
let pool4 = lazy (Exec.Pool.create ~domains:4 ())

(* ---- reference implementations (the pre-change algorithms) ---- *)

(* The pre-batching runner loop: one demand at a time through
   [Plant.next_demand] and the full channel-output list machinery.
   [Runner.run] must consume the identical RNG draw sequence and produce
   the identical counts. *)
let reference_run rng ~system ~demand_count =
  let channels = Simulator.Protection.channels system in
  let channel_failures = Array.make (List.length channels) 0 in
  let system_failures = ref 0 in
  let coincident = ref 0 in
  let space = Simulator.Protection.space system in
  let plant =
    Simulator.Plant.create ~profile:(Demandspace.Space.profile space) rng
  in
  for _ = 1 to demand_count do
    let demand = Simulator.Plant.next_demand plant in
    let outputs =
      List.map (fun c -> Simulator.Channel.respond c demand) channels
    in
    List.iteri
      (fun i o ->
        if o = Simulator.Channel.No_action then
          channel_failures.(i) <- channel_failures.(i) + 1)
      outputs;
    let n_failed =
      List.length
        (List.filter (fun o -> o = Simulator.Channel.No_action) outputs)
    in
    if n_failed >= 2 then incr coincident;
    if
      Simulator.Adjudicator.system_fails
        (Simulator.Protection.adjudicator system)
        outputs
    then incr system_failures
  done;
  (!system_failures, !coincident, channel_failures)

(* The pre-sharding fleet: develop the plants in order on the parent
   RNG, then run each through the reference runner in order. *)
let reference_pairs_fleet rng space ~plants ~demands_per_plant =
  let systems =
    Array.init plants (fun _ ->
        let va, vb = Simulator.Devteam.develop_pair rng space in
        Simulator.Protection.one_out_of_two
          (Simulator.Channel.create ~name:"A" va)
          (Simulator.Channel.create ~name:"B" vb))
  in
  Array.map
    (fun system ->
      let failures, _, _ =
        reference_run rng ~system ~demand_count:demands_per_plant
      in
      (failures, Int64.bits_of_float (Simulator.Protection.true_pfd system)))
    systems

(* ---- the fixed golden space (mirrors the capture program) ---- *)

let golden_space () =
  let profile = Demandspace.Profile.uniform ~size:200 in
  let r1 = Demandspace.Region.interval ~space_size:200 ~lo:0 ~hi:19 in
  let r2 = Demandspace.Region.interval ~space_size:200 ~lo:50 ~hi:59 in
  let r3 = Demandspace.Region.points ~space_size:200 [ 100; 150 ] in
  Demandspace.Space.create ~profile
    ~faults:[| (r1, 0.4); (r2, 0.25); (r3, 0.6) |]

let fleet_signature fleet =
  Array.map
    (fun r ->
      ( r.Simulator.Fleet.failures,
        Int64.bits_of_float r.Simulator.Fleet.system_pfd ))
    (Simulator.Fleet.records fleet)

(* ---- golden example tests ---- *)

(* Captured from the pre-sharding implementation: [~shards:1] must
   reproduce these numbers forever. *)
let test_golden_pairs_fleet () =
  let rng = Rng.create ~seed:4242 in
  let space = golden_space () in
  let systems = Simulator.Fleet.deploy_pairs ~shards:1 rng space ~plants:6 in
  let fleet =
    Simulator.Fleet.observe ~shards:1 rng systems ~demands_per_plant:400
  in
  Alcotest.(check (array (pair int int64)))
    "pairs fleet pinned to pre-change output"
    [|
      (27, 0x3faeb851eb851eb8L);
      (0, 0x0L);
      (0, 0x0L);
      (0, 0x0L);
      (5, 0x3f847ae147ae147bL);
      (5, 0x3f847ae147ae147bL);
    |]
    (fleet_signature fleet);
  check_int "parent draw count pinned" 4836 (Rng.draws rng)

let test_golden_singles_fleet () =
  let rng = Rng.create ~seed:99 in
  let space = golden_space () in
  let systems = Simulator.Fleet.deploy_singles ~shards:1 rng space ~plants:5 in
  let fleet =
    Simulator.Fleet.observe ~shards:1 rng systems ~demands_per_plant:250
  in
  Alcotest.(check (array (pair int int64)))
    "singles fleet pinned to pre-change output"
    [|
      (2, 0x3f847ae147ae147bL);
      (3, 0x3f847ae147ae147bL);
      (0, 0x0L);
      (0, 0x0L);
      (30, 0x3fbc28f5c28f5c29L);
    |]
    (fleet_signature fleet);
  check_int "parent draw count pinned" 2515 (Rng.draws rng)

let test_golden_runner () =
  let space = golden_space () in
  let rng = Rng.create ~seed:777 in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A"
         (Demandspace.Version.create space [ 0; 2 ]))
      (Simulator.Channel.create ~name:"B"
         (Demandspace.Version.create space [ 1; 2 ]))
  in
  let stats = Simulator.Runner.run rng ~system ~demand_count:1000 in
  check_int "system failures" 10 stats.Simulator.Runner.system_failures;
  check_int "coincident" 10 stats.Simulator.Runner.coincident_failures;
  Alcotest.(check (array int))
    "channel failures" [| 117; 62 |] stats.Simulator.Runner.channel_failures;
  check_int "draws" 2000 (Rng.draws rng);
  Alcotest.(check int64)
    "estimated pfd bits" 0x3f847ae147ae147bL
    (Int64.bits_of_float stats.Simulator.Runner.estimated_pfd)

let test_golden_runner_voted () =
  let space = golden_space () in
  let rng = Rng.create ~seed:555 in
  let voted =
    Simulator.Protection.voted ~required:2
      [
        Simulator.Channel.create ~name:"A"
          (Demandspace.Version.create space [ 0 ]);
        Simulator.Channel.create ~name:"B"
          (Demandspace.Version.create space [ 1 ]);
        Simulator.Channel.create ~name:"C"
          (Demandspace.Version.create space [ 0; 1 ]);
      ]
  in
  let s = Simulator.Runner.run rng ~system:voted ~demand_count:2000 in
  check_int "system failures" 306 s.Simulator.Runner.system_failures;
  check_int "coincident" 306 s.Simulator.Runner.coincident_failures;
  Alcotest.(check (array int))
    "channel failures" [| 211; 95; 306 |]
    s.Simulator.Runner.channel_failures;
  check_int "draws" 4000 (Rng.draws rng)

(* Example of the headline acceptance criterion: one fleet, default
   shard count, observed on a 1-domain and a 4-domain pool — every
   record byte-identical. *)
let test_fleet_domain_identity_example () =
  let space = golden_space () in
  let observe pool =
    let rng = Rng.create ~seed:2026 in
    let systems =
      Simulator.Fleet.deploy_pairs ~pool ~shards:16 rng space ~plants:23
    in
    let fleet =
      Simulator.Fleet.observe ~pool ~shards:16 rng systems
        ~demands_per_plant:500
    in
    (fleet_signature fleet, Rng.draws rng)
  in
  let sig1, draws1 = observe (Lazy.force pool1) in
  let sig4, draws4 = observe (Lazy.force pool4) in
  Alcotest.(check (array (pair int int64)))
    "fleet records: 4 domains = 1 domain" sig1 sig4;
  check_int "parent draws: 4 domains = 1 domain" draws1 draws4

(* ---- randomized properties ---- *)

let plants_gen = Prop.int_range 1 8
let demands_gen = Prop.int_range 1 400

let fleet_case =
  Prop.pair
    (Prop.pair Prop.seed (Prop.space ~max_size:120 ~max_faults:4 ()))
    (Prop.triple plants_gen demands_gen Prop.shard_count)

(* The headline property (>= 100 cases): the whole deploy-and-observe
   pipeline is a pure function of (seed, shards) — pool size never
   matters — and the parallel run consumes exactly as many global RNG
   draws as the 1-domain run. *)
let test_prop_fleet_domain_invariance () =
  Prop.check ~cases:100 "fleet pipeline is domain-count invariant" fleet_case
    (fun ((seed, space), (plants, demands_per_plant, shards)) ->
      let observe pool =
        let rng = Rng.create ~seed in
        let before = Rng.total_draws () in
        let systems =
          Simulator.Fleet.deploy_pairs ~pool ~shards rng space ~plants
        in
        let fleet =
          Simulator.Fleet.observe ~pool ~shards rng systems ~demands_per_plant
        in
        (fleet_signature fleet, Rng.draws rng, Rng.total_draws () - before)
      in
      let sig1, draws1, total1 = observe (Lazy.force pool1) in
      let sig4, draws4, total4 = observe (Lazy.force pool4) in
      Alcotest.(check (array (pair int int64)))
        "records byte-identical across pools" sig1 sig4;
      check_int "parent draws identical across pools" draws1 draws4;
      check_int "global draw accounting identical across pools" total1 total4)

(* [~shards:1] is the legacy path: it must replay the pre-change
   algorithms (sequential fleet loops, one-demand-at-a-time runner)
   draw for draw. *)
let test_prop_fleet_matches_reference () =
  Prop.check ~cases:60 "fleet ~shards:1 matches the pre-change reference"
    (Prop.pair
       (Prop.pair Prop.seed (Prop.space ~max_size:120 ~max_faults:4 ()))
       (Prop.pair plants_gen demands_gen))
    (fun ((seed, space), (plants, demands_per_plant)) ->
      let rng_new = Rng.create ~seed in
      let systems = Simulator.Fleet.deploy_pairs ~shards:1 rng_new space ~plants in
      let fleet =
        Simulator.Fleet.observe ~shards:1 rng_new systems ~demands_per_plant
      in
      let rng_ref = Rng.create ~seed in
      let expected =
        reference_pairs_fleet rng_ref space ~plants ~demands_per_plant
      in
      Alcotest.(check (array (pair int int64)))
        "records match reference" expected (fleet_signature fleet);
      check_int "draw sequences identical" (Rng.draws rng_ref)
        (Rng.draws rng_new))

(* Batched demand sampling in Runner.run is byte-compatible with the
   one-demand-at-a-time loop for any demand count (cases straddle the
   1024-demand block size) and any M-out-of-N adjudicator. *)
let test_prop_runner_batching () =
  Prop.check ~cases:60 "Runner.run batching matches the reference loop"
    (Prop.quad Prop.seed
       (Prop.space ~max_size:120 ~max_faults:4 ())
       (Prop.int_range 1 2600) (Prop.int_range 1 3))
    (fun (seed, space, demand_count, n_channels) ->
      let build rng =
        let channels =
          List.init n_channels (fun i ->
              Simulator.Channel.create
                ~name:(Printf.sprintf "ch%d" i)
                (Simulator.Devteam.develop rng space))
        in
        let required = 1 + ((seed + n_channels) mod n_channels) in
        Simulator.Protection.voted ~required channels
      in
      let rng_new = Rng.create ~seed in
      let system_new = build rng_new in
      let stats =
        Simulator.Runner.run rng_new ~system:system_new ~demand_count
      in
      let rng_ref = Rng.create ~seed in
      let system_ref = build rng_ref in
      let failures, coincident, channel_failures =
        reference_run rng_ref ~system:system_ref ~demand_count
      in
      check_int "system failures" failures
        stats.Simulator.Runner.system_failures;
      check_int "coincident failures" coincident
        stats.Simulator.Runner.coincident_failures;
      Alcotest.(check (array int))
        "channel failures" channel_failures
        stats.Simulator.Runner.channel_failures;
      check_int "draw sequences identical" (Rng.draws rng_ref)
        (Rng.draws rng_new))

(* Montecarlo.estimate: pure function of (seed, shards). *)
let test_prop_montecarlo_invariance () =
  Prop.check ~cases:30 "Montecarlo.estimate is domain-count invariant"
    (Prop.quad Prop.seed
       (Prop.universe ~max_faults:8 ())
       (Prop.int_range 1 16) (Prop.int_range 1 200))
    (fun (seed, universe, shards, replications) ->
      let run pool =
        Simulator.Montecarlo.estimate ~pool ~shards (Rng.create ~seed) universe
          ~replications
      in
      let a = run (Lazy.force pool1) in
      let b = run (Lazy.force pool4) in
      check_bits "theta1 samples" a.Simulator.Montecarlo.theta1_samples
        b.Simulator.Montecarlo.theta1_samples;
      check_bits "theta2 samples" a.Simulator.Montecarlo.theta2_samples
        b.Simulator.Montecarlo.theta2_samples;
      check_float_bits "p_n1_pos" a.Simulator.Montecarlo.p_n1_pos
        b.Simulator.Montecarlo.p_n1_pos;
      check_float_bits "p_n2_pos" a.Simulator.Montecarlo.p_n2_pos
        b.Simulator.Montecarlo.p_n2_pos;
      check_float_bits "risk ratio" a.Simulator.Montecarlo.risk_ratio
        b.Simulator.Montecarlo.risk_ratio;
      Alcotest.(check (array int))
        "per-shard draw accounting" a.Simulator.Montecarlo.shard_draws
        b.Simulator.Montecarlo.shard_draws)

(* Campaign.estimate_mttf: pure function of (seed, shards), including
   the per-shard draw accounts. *)
let test_prop_campaign_invariance () =
  Prop.check ~cases:30 "Campaign.estimate_mttf is domain-count invariant"
    (Prop.quad Prop.seed
       (Prop.space ~max_size:120 ~max_faults:4 ())
       (Prop.int_range 1 16) (Prop.pair (Prop.int_range 1 60) (Prop.int_range 1 150)))
    (fun (seed, space, shards, (missions, max_demands)) ->
      let system =
        let rng = Rng.create ~seed:(seed + 1) in
        let va, vb = Simulator.Devteam.develop_pair rng space in
        Simulator.Protection.one_out_of_two
          (Simulator.Channel.create ~name:"A" va)
          (Simulator.Channel.create ~name:"B" vb)
      in
      let run pool =
        Simulator.Campaign.estimate_mttf ~pool ~shards (Rng.create ~seed)
          ~system ~missions ~max_demands
      in
      let a = run (Lazy.force pool1) in
      let b = run (Lazy.force pool4) in
      check_int "failures" a.Simulator.Campaign.failures
        b.Simulator.Campaign.failures;
      check_int "censored" a.Simulator.Campaign.censored
        b.Simulator.Campaign.censored;
      check_float_bits "mttf" a.Simulator.Campaign.mean_time_to_failure
        b.Simulator.Campaign.mean_time_to_failure;
      check_float_bits "failure rate" a.Simulator.Campaign.failure_rate
        b.Simulator.Campaign.failure_rate;
      check_int "shards recorded" shards a.Simulator.Campaign.shards;
      Alcotest.(check (array int))
        "per-shard draw accounting" a.Simulator.Campaign.shard_draws
        b.Simulator.Campaign.shard_draws;
      check_int "one shard account per shard" shards
        (Array.length a.Simulator.Campaign.shard_draws))

(* Pfd_dist: the exact enumeration is deterministic in shards (pool
   size never matters); the grid convolution is bit-identical even
   across shard counts. *)
let test_prop_pfd_dist_invariance () =
  Prop.check ~cases:30 "Pfd_dist exact/grid are domain-count invariant"
    (Prop.pair (Prop.universe ~max_faults:8 ()) (Prop.int_range 1 8))
    (fun (universe, shards) ->
      let check_dist name a b =
        check_bits (name ^ ": support") (Core.Pfd_dist.support a)
          (Core.Pfd_dist.support b);
        check_bits (name ^ ": masses") (Core.Pfd_dist.masses a)
          (Core.Pfd_dist.masses b)
      in
      let p1 = Lazy.force pool1 and p4 = Lazy.force pool4 in
      check_dist "exact_single"
        (Core.Pfd_dist.exact_single ~pool:p1 ~shards universe)
        (Core.Pfd_dist.exact_single ~pool:p4 ~shards universe);
      check_dist "exact_pair"
        (Core.Pfd_dist.exact_pair ~pool:p1 ~shards universe)
        (Core.Pfd_dist.exact_pair ~pool:p4 ~shards universe);
      check_dist "grid_single across pools"
        (Core.Pfd_dist.grid_single ~pool:p1 ~shards universe ~bins:256)
        (Core.Pfd_dist.grid_single ~pool:p4 ~shards universe ~bins:256);
      check_dist "grid_single across shard counts"
        (Core.Pfd_dist.grid_single ~pool:p4 ~shards:1 universe ~bins:256)
        (Core.Pfd_dist.grid_single ~pool:p4 ~shards universe ~bins:256))

(* ---- incremental kernels vs their retained naive references ---- *)

(* Tolerance for incremental-vs-naive gradient agreement (the
   EXPERIMENTS.md ulp policy): the paths differ only in summation
   association, so per-coordinate drift is rounding-level; the bound
   1e-9 * (1 + ||grad_naive||_inf) is orders of magnitude above any
   observed drift yet fails instantly on a formula divergence. *)
let gradient_tol naive =
  let inf_norm =
    Array.fold_left
      (fun acc d -> if Float.is_nan d then acc else Float.max acc (Float.abs d))
      0.0 naive
  in
  1e-9 *. (1.0 +. inf_norm)

let check_gradient_agreement name ps =
  let fast = Core.Sensitivity.risk_ratio_gradient ps in
  let naive = Core.Sensitivity.risk_ratio_gradient_naive ps in
  check_int (name ^ ": length") (Array.length naive) (Array.length fast);
  let tol = gradient_tol naive in
  Array.iteri
    (fun i f ->
      let ok =
        (Float.is_nan f && Float.is_nan naive.(i))
        || Float.abs (f -. naive.(i)) <= tol
      in
      check_bool
        (Printf.sprintf "%s: coordinate %d (%.17g vs %.17g, tol %.3g)" name i
           f naive.(i) tol)
        true ok)
    fast

(* Incremental O(n) gradient vs the retained O(n^2) reference over
   random universes, including coordinates forced to the p = 0 and
   p = 1 boundaries the prefix/suffix construction exists for (a
   1-coordinate pushes every other partial through exp(-inf) = 0). *)
let test_prop_gradient_incremental_vs_naive () =
  Prop.check ~cases:80 "incremental gradient matches the naive reference"
    (Prop.pair (Prop.universe ~max_faults:24 ()) (Prop.int_range 0 3))
    (fun (u, mode) ->
      let ps = Core.Universe.ps u in
      let n = Array.length ps in
      if mode land 1 = 1 then ps.(0) <- 0.0;
      if mode land 2 = 2 then ps.(n - 1) <- 1.0;
      check_gradient_agreement "gradient" ps;
      (* Appendix B: p_i = k b_i; random universes keep k b_i in [0,1] *)
      let b = Core.Universe.ps u in
      let k = 0.7 in
      let dk = Core.Sensitivity.risk_ratio_k_derivative ~b ~k in
      let dk_naive = Core.Sensitivity.risk_ratio_k_derivative_naive ~b ~k in
      check_bool
        (Printf.sprintf "dR/dk agrees (%.17g vs %.17g)" dk dk_naive)
        true
        (Float.abs (dk -. dk_naive) <= 1e-12 *. (1.0 +. Float.abs dk_naive)))

(* The ping-pong exact convolution claims full bit-identity with the
   legacy allocating pass: same float ops in the same order, only the
   buffer management and finalisation plumbing changed. *)
let test_prop_exact_fast_vs_legacy () =
  Prop.check ~cases:40 "exact convolution: ping-pong = legacy, bitwise"
    (Prop.universe ~max_faults:10 ())
    (fun u ->
      let values = Core.Universe.qs u in
      let check_for name probs =
        let fast = Core.Pfd_dist.exact_of_vectors ~shards:1 ~probs ~values () in
        let legacy = Core.Pfd_dist.exact_of_vectors_naive ~probs ~values () in
        check_bits (name ^ ": support") (Core.Pfd_dist.support legacy)
          (Core.Pfd_dist.support fast);
        check_bits (name ^ ": masses") (Core.Pfd_dist.masses legacy)
          (Core.Pfd_dist.masses fast)
      in
      let ps = Core.Universe.ps u in
      check_for "single" ps;
      check_for "pair" (Array.map (fun p -> p *. p) ps))

(* The binomial-block grid convolution reorders and reassociates the
   per-fault products, so in general it agrees with the per-fault
   reference only to rounding; when every active fault's shift is
   unique and already ascending in index order each block is a
   single-fault legacy pass in the legacy order, and the claim sharpens
   to bit-identity. *)
let test_prop_grid_fast_vs_legacy () =
  Prop.check ~cases:60 "grid convolution: blocks vs per-fault reference"
    (Prop.pair (Prop.universe ~max_faults:10 ()) (Prop.int_range 32 512))
    (fun (u, bins) ->
      let probs = Core.Universe.ps u and values = Core.Universe.qs u in
      let fast =
        Core.Pfd_dist.grid_of_vectors ~shards:1 ~probs ~values ~bins ()
      in
      let legacy =
        Core.Pfd_dist.grid_of_vectors_naive ~shards:1 ~probs ~values ~bins ()
      in
      (* replicate the kernel's shift rounding to decide which claim
         applies to this case *)
      let total = Kahan.sum_array values in
      let step =
        if total > 0.0 then total /. float_of_int (bins - 1) else 1.0
      in
      let active_shifts =
        Array.to_list
          (Array.mapi
             (fun i q ->
               if probs.(i) > 0.0 then
                 int_of_float (Float.round (q /. step))
               else 0)
             values)
        |> List.filter (fun s -> s > 0)
      in
      let rec strictly_ascending = function
        | a :: (b :: _ as rest) -> a < b && strictly_ascending rest
        | _ -> true
      in
      if strictly_ascending active_shifts then begin
        check_bits "support (unique ascending shifts)"
          (Core.Pfd_dist.support legacy)
          (Core.Pfd_dist.support fast);
        check_bits "masses (unique ascending shifts)"
          (Core.Pfd_dist.masses legacy)
          (Core.Pfd_dist.masses fast)
      end
      else begin
        let close what a b =
          check_bool
            (Printf.sprintf "%s agrees to rounding (%.17g vs %.17g)" what a b)
            true
            (Stats.approx_eq ~abs:1e-12 a b)
        in
        close "mean" (Core.Pfd_dist.mean legacy) (Core.Pfd_dist.mean fast);
        close "variance" (Core.Pfd_dist.variance legacy)
          (Core.Pfd_dist.variance fast);
        close "P(X > 0)"
          (Core.Pfd_dist.prob_positive legacy)
          (Core.Pfd_dist.prob_positive fast)
      end)

(* ---- the harness itself ---- *)

(* A deliberately failing property: the harness must find it, shrink
   the counterexample to the exact boundary, and report the same case
   again on replay (same PROP_SEED => same counterexample). *)
let test_harness_shrinks () =
  let gen = Prop.int_range 0 1000 in
  let property v = if v >= 700 then failwith "too big" in
  match Prop.find_counterexample ~cases:100 gen property with
  | None -> Alcotest.fail "property unexpectedly passed"
  | Some (case, value, _err) ->
      check_int "shrunk to the exact boundary" 700 value;
      (match Prop.find_counterexample ~cases:100 gen property with
      | Some (case', value', _) ->
          check_int "replay finds the same case" case case';
          check_int "replay finds the same counterexample" value value'
      | None -> Alcotest.fail "replay did not reproduce the failure");
      (* a satisfiable property yields no counterexample *)
      check_bool "passing property has no counterexample" true
        (Prop.find_counterexample ~cases:100 gen (fun _ -> ()) = None)

(* ---- statistical estimator tests ---- *)

(* When every plant runs the *same* system the per-plant failure counts
   are iid binomial, so the overdispersion statistic concentrates on 1:
   with K plants its sampling s.d. is about sqrt(2/(K-1)) ~ 0.09 here,
   and the bound below sits more than 4 sigma out. *)
let test_dispersion_common_pfd () =
  let space = golden_space () in
  let rng = Rng.create ~seed:31337 in
  let system =
    Simulator.Protection.create
      [
        Simulator.Channel.create ~name:"common"
          (Demandspace.Version.create space [ 0 ]);
      ]
  in
  check_bool "system fails sometimes (test is non-vacuous)" true
    (Simulator.Protection.true_pfd system > 0.0);
  let systems = Array.make 256 system in
  let fleet =
    Simulator.Fleet.observe ~pool:(Lazy.force pool4) ~shards:16 rng systems
      ~demands_per_plant:2000
  in
  let d = Simulator.Fleet.dispersion fleet in
  check_bool
    (Printf.sprintf "overdispersion %.3f in [0.6, 1.4]"
       d.Simulator.Fleet.overdispersion)
    true
    (d.Simulator.Fleet.overdispersion > 0.6
    && d.Simulator.Fleet.overdispersion < 1.4)

(* On a large diverse fleet the method-of-moments estimates recover the
   oracle's true PFD moments from counts alone. *)
let test_moments_match_oracle () =
  let space = golden_space () in
  let rng = Rng.create ~seed:90210 in
  let pool = Lazy.force pool4 in
  let systems =
    Simulator.Fleet.deploy_pairs ~pool ~shards:16 rng space ~plants:300
  in
  let fleet =
    Simulator.Fleet.observe ~pool ~shards:16 rng systems
      ~demands_per_plant:5000
  in
  let mu_hat, var_hat = Simulator.Fleet.estimate_pfd_moments fleet in
  let oracle = Simulator.Fleet.true_pfd_summary fleet in
  let true_var = oracle.Stats.std *. oracle.Stats.std in
  let rel a b = abs_float (a -. b) /. b in
  check_bool
    (Printf.sprintf "MoM mean %.3g within 15%% of true mean %.3g" mu_hat
       oracle.Stats.mean)
    true
    (rel mu_hat oracle.Stats.mean < 0.15);
  check_bool
    (Printf.sprintf "MoM variance %.3g within 40%% of true variance %.3g"
       var_hat true_var)
    true
    (rel var_hat true_var < 0.40)

(* The fleet's per-plant records agree with the oracle on demand counts
   and the run is reproducible: same seed, same shards => same fleet. *)
let test_fleet_reproducible () =
  let space = golden_space () in
  let run () =
    let rng = Rng.create ~seed:1717 in
    let systems =
      Simulator.Fleet.deploy_singles ~pool:(Lazy.force pool4) ~shards:7 rng
        space ~plants:11
    in
    fleet_signature
      (Simulator.Fleet.observe ~pool:(Lazy.force pool4) ~shards:7 rng systems
         ~demands_per_plant:321)
  in
  Alcotest.(check (array (pair int int64)))
    "same (seed, shards) => byte-identical fleet" (run ()) (run ())

(* ---- adjudication algebra: goldens, laws, legacy identity ---- *)

let output_t =
  Alcotest.testable Simulator.Channel.pp_output Simulator.Channel.equal

let check_output = Alcotest.check output_t

(* Captured immediately before the adjudicator-calculus refactor
   (seed 42, the golden space, abstain-free channels): Runner, Campaign
   and Fleet outputs must remain byte-identical now that the legacy
   M-out-of-N vote is a calculus instance. *)
let test_golden_seed42_runner_pins () =
  let space = golden_space () in
  let mk name faults =
    Simulator.Channel.create ~name (Demandspace.Version.create space faults)
  in
  let system =
    Simulator.Protection.voted ~required:2
      [ mk "A" [ 0; 1 ]; mk "B" [ 1; 2 ]; mk "C" [ 0; 2 ] ]
  in
  let rng = Rng.create ~seed:42 in
  let stats = Simulator.Runner.run rng ~system ~demand_count:20_000 in
  check_int "system failures" 3218 stats.Simulator.Runner.system_failures;
  check_int "unresolved abstentions" 0
    stats.Simulator.Runner.system_abstentions;
  check_int "coincident" 3218 stats.Simulator.Runner.coincident_failures;
  Alcotest.(check (array int))
    "channel failures" [| 3004; 1234; 2198 |]
    stats.Simulator.Runner.channel_failures;
  check_float_bits "estimated pfd" 0x1.4985f06f69446p-3
    stats.Simulator.Runner.estimated_pfd;
  check_int "draws" 40_000 (Rng.draws rng);
  (* the same stream through a developed 1-out-of-2 pair *)
  let rng2 = Rng.create ~seed:42 in
  let va, vb = Simulator.Devteam.develop_pair rng2 space in
  let pair =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" va)
      (Simulator.Channel.create ~name:"B" vb)
  in
  let pstats = Simulator.Runner.run rng2 ~system:pair ~demand_count:20_000 in
  check_int "pair system failures" 0 pstats.Simulator.Runner.system_failures;
  check_int "pair coincident" 0 pstats.Simulator.Runner.coincident_failures;
  Alcotest.(check (array int))
    "pair channel failures" [| 0; 0 |]
    pstats.Simulator.Runner.channel_failures;
  check_int "pair draws" 40_006 (Rng.draws rng2);
  check_float_bits "pair true pfd" 0.0 (Simulator.Protection.true_pfd pair)

let test_golden_seed42_campaign_pins () =
  let space = golden_space () in
  let mk name faults =
    Simulator.Channel.create ~name (Demandspace.Version.create space faults)
  in
  let system =
    Simulator.Protection.voted ~required:2
      [ mk "A" [ 0; 1 ]; mk "B" [ 1; 2 ]; mk "C" [ 0; 2 ] ]
  in
  let mttf shards =
    let rng = Rng.create ~seed:42 in
    Simulator.Campaign.estimate_mttf ~shards rng ~system ~missions:400
      ~max_demands:2000
  in
  let est1 = mttf 1 in
  check_int "shards=1 failures" 400 est1.Simulator.Campaign.failures;
  check_int "shards=1 censored" 0 est1.Simulator.Campaign.censored;
  check_float_bits "shards=1 mttf" 0x1.88p+2
    est1.Simulator.Campaign.mean_time_to_failure;
  check_float_bits "shards=1 rate" 0x1.4e5e0a72f0539p-3
    est1.Simulator.Campaign.failure_rate;
  Alcotest.(check (array int))
    "shards=1 draws" [| 4900 |]
    est1.Simulator.Campaign.shard_draws;
  let est8 = mttf 8 in
  check_float_bits "shards=8 mttf" 0x1.9451eb851eb85p+2
    est8.Simulator.Campaign.mean_time_to_failure;
  check_float_bits "shards=8 rate" 0x1.442dca4ed0e49p-3
    est8.Simulator.Campaign.failure_rate;
  Alcotest.(check (array int))
    "shards=8 draws"
    [| 562; 548; 666; 670; 638; 716; 690; 564 |]
    est8.Simulator.Campaign.shard_draws;
  let survival shards =
    let rng = Rng.create ~seed:42 in
    let frac =
      Simulator.Campaign.simulate_mission_survival ~shards rng ~system
        ~mission_demands:4 ~missions:400
    in
    (frac, Rng.draws rng)
  in
  let frac1, draws1 = survival 1 in
  check_float_bits "survival shards=1" 0x1.dc28f5c28f5c3p-2 frac1;
  check_int "survival shards=1 parent draws" 1 draws1;
  let frac8, draws8 = survival 8 in
  check_float_bits "survival shards=8" 0x1.eb851eb851eb8p-2 frac8;
  check_int "survival shards=8 parent draws" 8 draws8

let test_golden_seed42_fleet_pins () =
  let space = golden_space () in
  let fleet shards =
    let rng = Rng.create ~seed:42 in
    let systems = Simulator.Fleet.deploy_pairs ~shards rng space ~plants:12 in
    fleet_signature
      (Simulator.Fleet.observe ~shards rng systems ~demands_per_plant:800)
  in
  Alcotest.(check (array (pair int int64)))
    "shards=1 pinned"
    [|
      (0, 0x0L);
      (0, 0x0L);
      (32, 0x3fa999999999999aL);
      (0, 0x0L);
      (0, 0x0L);
      (4, 0x3f847ae147ae147bL);
      (0, 0x0L);
      (12, 0x3f847ae147ae147bL);
      (0, 0x0L);
      (0, 0x0L);
      (0, 0x0L);
      (14, 0x3f847ae147ae147bL);
    |]
    (fleet 1);
  Alcotest.(check (array (pair int int64)))
    "shards=8 pinned"
    [|
      (5, 0x3f847ae147ae147bL);
      (9, 0x3f847ae147ae147bL);
      (0, 0x0L);
      (0, 0x0L);
      (69, 0x3fb999999999999aL);
      (9, 0x3f847ae147ae147bL);
      (0, 0x0L);
      (76, 0x3fb999999999999aL);
      (10, 0x3f847ae147ae147bL);
      (0, 0x0L);
      (7, 0x3f847ae147ae147bL);
      (3, 0x3f847ae147ae147bL);
    |]
    (fleet 8)

(* An independent legacy evaluator: the seed's M-out-of-N adjudicator
   reimplemented verbatim (double traversal, polymorphic compare and
   all) as it stood before the combinator calculus. *)
let legacy_combine ~required outputs =
  let shutdowns =
    List.length
      (List.filter (fun o -> o = Simulator.Channel.Shutdown) outputs)
  in
  if shutdowns >= required then Simulator.Channel.Shutdown
  else Simulator.Channel.No_action

let count_outputs outs =
  List.fold_left
    (fun (s, na, ab) o ->
      match o with
      | Simulator.Channel.Shutdown -> (s + 1, na, ab)
      | Simulator.Channel.No_action -> (s, na + 1, ab)
      | Simulator.Channel.Abstain -> (s, na, ab + 1))
    (0, 0, 0) outs

let shuffle_outputs seed l =
  let a = Array.of_list l in
  let rng = Rng.create ~seed in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Every law the lib/check adjudication oracles assert, re-checked here
   over generated calculus terms and abstention-bearing vectors, plus
   the legacy-vs-combinator byte-identity on abstain-free inputs. *)
let test_prop_adjudication_laws () =
  let gen =
    Prop.(triple (adjudicator_term ()) (channel_outputs ()) seed)
  in
  Prop.check ~cases:100 "adjudication laws + legacy identity" gen
    (fun (term, outs, salt) ->
      let module A = Simulator.Adjudicator in
      let n = List.length outs in
      let shutdowns, no_actions, abstains = count_outputs outs in
      let d t = A.decide_counts t ~shutdowns ~no_actions ~abstains in
      (* unit is a two-sided identity for compose *)
      check_output "compose unit t == t" (d term) (d (A.compose A.unit term));
      check_output "compose t unit == t" (d term) (d (A.compose term A.unit));
      (* fallback is idempotent (the backup re-reads the same votes) *)
      check_output "fallback t t == t" (d term) (d (A.fallback term term));
      (* adjudication is permutation-invariant on the list path *)
      if A.min_channels term <= n then
        check_output "combine permutation-invariant" (A.combine term outs)
          (A.combine term (shuffle_outputs salt outs));
      (* legacy-vs-combinator byte-identity on abstain-free inputs *)
      let free =
        List.map
          (fun o ->
            if Simulator.Channel.equal o Simulator.Channel.Abstain then
              Simulator.Channel.No_action
            else o)
          outs
      in
      for required = 1 to n do
        let adj = A.m_out_of_n ~required in
        check_output
          (Printf.sprintf "%d-of-%d vote == legacy" required n)
          (legacy_combine ~required free)
          (A.combine adj free);
        check_bool "system_fails == legacy"
          (legacy_combine ~required free = Simulator.Channel.No_action)
          (A.system_fails adj free)
      done)

let () =
  Alcotest.run "prop"
    [
      ( "golden",
        [
          Alcotest.test_case "pairs fleet pinned" `Quick test_golden_pairs_fleet;
          Alcotest.test_case "singles fleet pinned" `Quick
            test_golden_singles_fleet;
          Alcotest.test_case "runner 1oo2 pinned" `Quick test_golden_runner;
          Alcotest.test_case "runner 2oo3 pinned" `Quick
            test_golden_runner_voted;
          Alcotest.test_case "fleet domain identity example" `Quick
            test_fleet_domain_identity_example;
        ] );
      ( "adjudication",
        [
          Alcotest.test_case "seed-42 runner pinned" `Quick
            test_golden_seed42_runner_pins;
          Alcotest.test_case "seed-42 campaign pinned" `Quick
            test_golden_seed42_campaign_pins;
          Alcotest.test_case "seed-42 fleet pinned" `Quick
            test_golden_seed42_fleet_pins;
          Alcotest.test_case "algebra laws (100 cases)" `Quick
            test_prop_adjudication_laws;
        ] );
      ( "properties",
        [
          Alcotest.test_case "fleet domain invariance (100 cases)" `Quick
            test_prop_fleet_domain_invariance;
          Alcotest.test_case "fleet shards=1 = pre-change reference" `Quick
            test_prop_fleet_matches_reference;
          Alcotest.test_case "runner batching = reference loop" `Quick
            test_prop_runner_batching;
          Alcotest.test_case "montecarlo invariance" `Quick
            test_prop_montecarlo_invariance;
          Alcotest.test_case "campaign invariance" `Quick
            test_prop_campaign_invariance;
          Alcotest.test_case "pfd_dist invariance" `Quick
            test_prop_pfd_dist_invariance;
          Alcotest.test_case "gradient incremental vs naive" `Quick
            test_prop_gradient_incremental_vs_naive;
          Alcotest.test_case "exact convolution fast vs legacy" `Quick
            test_prop_exact_fast_vs_legacy;
          Alcotest.test_case "grid convolution fast vs legacy" `Quick
            test_prop_grid_fast_vs_legacy;
        ] );
      ( "harness",
        [
          Alcotest.test_case "shrinking and replay" `Quick test_harness_shrinks;
        ] );
      ( "estimators",
        [
          Alcotest.test_case "dispersion ~ 1 for common PFD" `Quick
            test_dispersion_common_pfd;
          Alcotest.test_case "method of moments vs oracle" `Quick
            test_moments_match_oracle;
          Alcotest.test_case "fleet reproducible" `Quick test_fleet_reproducible;
        ] );
    ]
