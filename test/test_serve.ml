(* lib/serve — the assessment service.

   Layered the way the service is: codec properties (parse ∘ render ≡ id
   plus malformed-line rejection), admission/backpressure units, engine
   determinism, dispatcher byte-identity across pool sizes, a
   daemon-vs-one-shot CLI differential matrix over subprocesses, a
   64-client soak with exact draw conservation, and a golden-pinned
   session transcript under seed 42.

   Regenerate the golden transcript (from _build/default/test) with:
     SERVE_PRINT_GOLDEN=1 ./test_serve.exe > golden/serve_session_seed42.jsonl *)

module Proto = Serve.Proto
module Engine = Serve.Engine
module Admission = Serve.Admission
module Dispatcher = Serve.Dispatcher
module Server = Serve.Server
module Client = Serve.Client

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The selftest universe: three faults, mixed creation probabilities,
   small disjoint failure regions. *)
let u3 : Proto.universe_spec =
  { ps = [| 0.1; 0.02; 0.3 |]; qs = [| 1.0e-3; 1.0e-4; 5.0e-3 |] }

let work_requests : Proto.request list =
  [
    { Proto.id = "t1"; u = u3; verb = Proto.Moments };
    { Proto.id = "t2"; u = u3; verb = Proto.Risk_ratio { channels = 2; required = 1 } };
    {
      Proto.id = "t3";
      u = u3;
      verb = Proto.Pfd_dist { channels = 2; required = 1; bins = 0 };
    };
    {
      Proto.id = "t4";
      u = u3;
      verb =
        Proto.Fleet_mission
          {
            plants = 4;
            demands_per_plant = 100;
            mission_demands = 1000;
            salt = 7;
            shards = 3;
            space = 128;
          };
    };
  ]

(* The scripted session shared by the differential matrix and the golden
   pin: every work verb plus one malformed line (answered, counted,
   never fatal). *)
let session_work_lines =
  List.map Proto.render_request work_requests @ [ "{ not json" ]

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip_prop () =
  Prop.check ~cases:300 "serve request codec round-trip"
    (Prop.serve_request ()) (fun r ->
      match Proto.parse_line (Proto.render_request r) with
      | Ok (Proto.Work r') ->
          if not (Proto.equal_request r r') then
            failwith "parse (render r) not structurally equal to r";
          if not (String.equal (Proto.render_request r') (Proto.render_request r))
          then failwith "re-rendering the parsed request changed bytes"
      | Ok (Proto.Admin _) -> failwith "request parsed as an admin line"
      | Error e -> failwith ("request failed to parse: " ^ e))

let test_admin_roundtrip () =
  List.iter
    (fun verb ->
      let line = Proto.render_admin ~id:"a1" verb in
      match Proto.parse_line line with
      | Ok (Proto.Admin { id; verb = v }) ->
          check_string "admin id survives" "a1" id;
          check_bool "admin verb survives" true (v = verb)
      | _ -> Alcotest.failf "admin line did not round-trip: %s" line)
    [ Proto.Stats; Proto.Shutdown ]

(* Every malformed shape is rejected by the parser (and therefore
   answered with an error line, never evaluated). *)
let malformed_lines =
  [
    "";
    "{ not json";
    "[]";
    "{}";
    {|{"verb":"moments","p":[0.1],"q":[0.01]}|};
    {|{"id":"","verb":"moments","p":[0.1],"q":[0.01]}|};
    {|{"id":"x","verb":"frobnicate","p":[0.1],"q":[0.01]}|};
    {|{"id":"x","verb":"moments","p":[0.1,0.2],"q":[0.01]}|};
    {|{"id":"x","verb":"moments","p":[1.5],"q":[0.01]}|};
    {|{"id":"x","verb":"moments","p":[0.1],"q":[-0.2]}|};
    {|{"id":"x","verb":"moments","p":[null],"q":[0.01]}|};
    {|{"id":"x","verb":"moments","p":[],"q":[]}|};
    {|{"id":"x","verb":"risk-ratio","p":[0.1],"q":[0.01],"channels":2,"required":3}|};
    {|{"id":"x","verb":"risk-ratio","p":[0.1],"q":[0.01],"channels":99,"required":1}|};
    {|{"id":"x","verb":"pfd-dist","p":[0.1],"q":[0.01],"channels":2,"required":1,"bins":1}|};
    {|{"id":"x","verb":"pfd-dist","p":[0.1],"q":[0.01],"channels":2,"required":1}|};
    {|{"id":"x","verb":"fleet-mission","p":[0.1],"q":[0.01],"plants":0,"demands":10,"mission":10,"salt":0,"shards":1,"space":64}|};
    {|{"id":"x","verb":"fleet-mission","p":[0.1],"q":[0.01],"plants":1,"demands":10,"mission":10,"salt":0,"shards":1,"space":8}|};
  ]

let test_malformed_rejected () =
  List.iter
    (fun line ->
      match Proto.parse_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed line accepted: %s" line)
    malformed_lines

let test_retry_after_policy () =
  check_int "floor is 1 ms" 1 (Proto.retry_after_ms ~queue_depth:0 ~capacity:64);
  check_int "linear in overload" 65
    (Proto.retry_after_ms ~queue_depth:64 ~capacity:64);
  let prev = ref 0 in
  for depth = 0 to 256 do
    let r = Proto.retry_after_ms ~queue_depth:depth ~capacity:64 in
    check_bool "well-formed (>= 1)" true (r >= 1);
    check_bool "monotone in depth" true (r >= !prev);
    prev := r
  done;
  (* The busy line carries exactly the policy's advice. *)
  let line = Proto.busy_line ~id:"b1" ~queue_depth:8 ~capacity:8 in
  match Proto.parse_response line with
  | Ok resp ->
      check_bool "busy is not ok" false resp.Proto.resp_ok;
      check_bool "busy error tag" true (resp.Proto.resp_error = Some "busy");
      check_bool "busy echoes depth" true
        (resp.Proto.resp_queue_depth = Some 8);
      check_bool "busy echoes advice" true
        (resp.Proto.resp_retry_after_ms
        = Some (Proto.retry_after_ms ~queue_depth:8 ~capacity:8))
  | Error e -> Alcotest.failf "busy line unparseable: %s" e

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)
(* ------------------------------------------------------------------ *)

let test_admission_bounded_fifo () =
  let q = Admission.create ~capacity:3 in
  check_int "capacity" 3 (Admission.capacity q);
  List.iter
    (fun i ->
      check_bool "admitted under capacity" true
        (Admission.offer q i = Admission.Admitted))
    [ 1; 2; 3 ];
  (match Admission.offer q 4 with
  | Admission.Rejected { queue_depth } ->
      check_int "depth observed at rejection" 3 queue_depth
  | Admission.Admitted -> Alcotest.fail "offer past capacity admitted");
  check_int "accepted counter" 3 (Admission.accepted q);
  check_int "rejected counter" 1 (Admission.rejected q);
  check_bool "FIFO prefix" true (Admission.take_batch q ~max:2 = [| 1; 2 |]);
  check_int "depth after batch" 1 (Admission.depth q);
  check_bool "admits again after drain" true
    (Admission.offer q 5 = Admission.Admitted);
  check_bool "FIFO rest" true (Admission.take_batch q ~max:10 = [| 3; 5 |]);
  check_bool "empty drain" true (Admission.take_batch q ~max:4 = [||])

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_determinism () =
  List.iter
    (fun (r : Proto.request) ->
      let name = Proto.verb_name r in
      let a = Engine.eval ~seed:42 r in
      check_string (name ^ " repeatable") a (Engine.eval ~seed:42 r);
      (* The request carries its own shard count; the process-wide
         default must never leak into a response. *)
      let saved = Exec.default_shards () in
      Exec.set_default_shards 5;
      let b = Engine.eval ~seed:42 r in
      Exec.set_default_shards saved;
      check_string (name ^ " invariant under default-shards") a b;
      match Proto.parse_response a with
      | Ok resp ->
          check_bool (name ^ " is ok") true resp.Proto.resp_ok;
          check_bool (name ^ " echoes id") true
            (resp.Proto.resp_id = Some r.Proto.id);
          check_bool (name ^ " echoes seed") true
            (resp.Proto.resp_seed = Some 42)
      | Error e -> Alcotest.failf "%s response unparseable: %s" name e)
    work_requests;
  (* Fleet simulation draws randomness; the analytic verbs draw none. *)
  let draws_of r =
    match Proto.parse_response (Engine.eval ~seed:42 r) with
    | Ok resp -> Option.value resp.Proto.resp_draws ~default:(-1)
    | Error e -> Alcotest.failf "response unparseable: %s" e
  in
  check_int "moments draws nothing" 0 (draws_of (List.nth work_requests 0));
  check_bool "fleet-mission draws" true (draws_of (List.nth work_requests 3) > 0);
  (* The seed is part of the envelope even for seed-independent verbs. *)
  check_bool "seed is part of the response" true
    (not
       (String.equal
          (Engine.eval ~seed:42 (List.hd work_requests))
          (Engine.eval ~seed:43 (List.hd work_requests))))

let test_engine_unsupported_exact () =
  let n = Core.Pfd_dist.max_exact_faults + 1 in
  let u = { Proto.ps = Array.make n 0.1; qs = Array.make n 1.0e-4 } in
  let r =
    {
      Proto.id = "big";
      u;
      verb = Proto.Pfd_dist { channels = 2; required = 1; bins = 0 };
    }
  in
  let line = Engine.eval ~seed:42 r in
  check_string "unsupported is deterministic" line (Engine.eval ~seed:42 r);
  match Proto.parse_response line with
  | Ok resp ->
      check_bool "not ok" false resp.Proto.resp_ok;
      check_bool "tagged unsupported" true
        (resp.Proto.resp_error = Some "unsupported");
      check_bool "echoes id" true (resp.Proto.resp_id = Some "big")
  | Error e -> Alcotest.failf "error line unparseable: %s" e

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                         *)
(* ------------------------------------------------------------------ *)

(* A deliberately shuffled batch — kinds interleaved so the verb-grouping
   permutation actually permutes — must come back in arrival order with
   bytes identical to direct evaluation, for a sequential and a parallel
   pool alike. *)
let test_dispatcher_byte_identity () =
  let reindex i (r : Proto.request) =
    { r with Proto.id = Printf.sprintf "b%d-%s" i r.Proto.id }
  in
  let batch =
    [ 3; 0; 2; 0; 1; 3 ]
    |> List.mapi (fun i k -> reindex i (List.nth work_requests k))
    |> Array.of_list
  in
  let direct = Array.map (fun r -> Engine.eval ~seed:42 r) batch in
  List.iter
    (fun domains ->
      let pool = Exec.Pool.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Exec.Pool.shutdown pool)
        (fun () ->
          let d = Dispatcher.create ~pool ~seed:42 in
          check_int "workers reports pool size" domains (Dispatcher.workers d);
          check_int "seed echoed" 42 (Dispatcher.seed d);
          let results = Dispatcher.run_batch d batch in
          check_int "one result per request" (Array.length batch)
            (Array.length results);
          Array.iteri
            (fun i (res : Dispatcher.result) ->
              check_string
                (Printf.sprintf "slot %d identical (%d domains)" i domains)
                direct.(i) res.Dispatcher.line;
              check_bool "latency non-negative" true
                (Int64.compare res.Dispatcher.elapsed_ns 0L >= 0))
            results))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Daemon subprocess harness                                          *)
(* ------------------------------------------------------------------ *)

(* Resolve sibling build artefacts relative to this test binary, not the
   working directory: `dune runtest` runs tests from _build/default/test
   but `dune exec test/test_serve.exe` runs them from the project root,
   and the daemon/golden fixtures must work either way. *)
let in_test_dir path = Filename.concat (Filename.dirname Sys.executable_name) path
let cli_exe = in_test_dir "../bin/experiments_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let non_blank_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

(* One-shot CLI reference output for a script, under a given domain
   count (which must be inert: responses are pure in (seed, request)). *)
let assess_lines ~seed ~domains lines =
  let script = Filename.temp_file "serve-script" ".jsonl" in
  let out = Filename.temp_file "serve-assess" ".jsonl" in
  write_lines script lines;
  let cmd =
    Printf.sprintf "DIVREL_DOMAINS=%d %s" domains
      (Filename.quote_command cli_exe
         [ "assess"; "--seed"; string_of_int seed; script ]
         ~stdout:out)
  in
  let rc = Sys.command cmd in
  check_int "assess exit code" 0 rc;
  let got = non_blank_lines (read_file out) in
  Sys.remove script;
  Sys.remove out;
  got

let temp_socket () =
  let path = Filename.temp_file "divrel-serve" ".sock" in
  Sys.remove path;
  path

let env_with key value =
  let prefix = key ^ "=" in
  let keeps s =
    not
      (String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix)
  in
  Array.of_list
    ((prefix ^ value)
    :: (Array.to_list (Unix.environment ()) |> List.filter keeps))

let spawn_daemon ~env args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env cli_exe
      (Array.of_list (cli_exe :: args))
      env Unix.stdin null null
  in
  Unix.close null;
  pid

let run_session ~socket lines =
  let c = Client.connect (Server.Unix_path socket) in
  let replies =
    List.map
      (fun l ->
        match Client.round_trip c l with
        | Some reply -> reply
        | None -> Alcotest.failf "daemon closed while awaiting reply to: %s" l)
      lines
  in
  Client.close c;
  replies

let reap_daemon pid =
  let _, status = Unix.waitpid [] pid in
  check_bool "daemon exited cleanly" true (status = Unix.WEXITED 0)

(* The differential matrix of the satellite spec: daemon output is
   byte-identical to the one-shot CLI for seeds {42, 271828}, workers
   {1, 4} and DIVREL_DOMAINS {1, 2}. *)
let test_daemon_vs_assess () =
  List.iter
    (fun seed ->
      List.iter
        (fun domains ->
          let expected = assess_lines ~seed ~domains session_work_lines in
          check_int "assess answers every line"
            (List.length session_work_lines)
            (List.length expected);
          List.iter
            (fun workers ->
              let socket = temp_socket () in
              let env = env_with "DIVREL_DOMAINS" (string_of_int domains) in
              let pid =
                spawn_daemon ~env
                  [
                    "serve";
                    "--socket";
                    socket;
                    "--workers";
                    string_of_int workers;
                    "--seed";
                    string_of_int seed;
                  ]
              in
              let got =
                run_session ~socket
                  (session_work_lines
                  @ [ Proto.render_admin ~id:"bye" Proto.Shutdown ])
              in
              reap_daemon pid;
              List.iteri
                (fun i e ->
                  check_string
                    (Printf.sprintf "seed=%d domains=%d workers=%d line %d"
                       seed domains workers i)
                    e (List.nth got i))
                expected)
            [ 1; 4 ])
        [ 1; 2 ])
    [ 42; 271828 ]

(* ------------------------------------------------------------------ *)
(* Soak                                                               *)
(* ------------------------------------------------------------------ *)

(* 64 concurrent clients against a deliberately tight queue (capacity 8)
   so admission rejections actually happen. Every request must be
   answered exactly once, busy lines must carry well-formed retry
   advice, and the server's draw meter must equal the sum of the
   per-response draw fields — the conservation law that proves nothing
   was lost, duplicated or double-counted. *)
let test_soak () =
  let socket = temp_socket () in
  let config =
    {
      Server.listen = Server.Unix_path socket;
      workers = 4;
      queue_capacity = 8;
      batch_max = 4;
      seed = 42;
    }
  in
  let stats_slot = ref None in
  let server = Thread.create (fun () -> stats_slot := Some (Server.serve config)) () in
  let n_clients = 64 and per_client = 5 in
  let ok_counts = Array.make n_clients 0 in
  let draw_sums = Array.make n_clients 0 in
  let busy_counts = Array.make n_clients 0 in
  let failures = ref [] in
  let failures_mtx = Mutex.create () in
  let record_failure msg =
    Mutex.lock failures_mtx;
    failures := msg :: !failures;
    Mutex.unlock failures_mtx
  in
  let client ci =
    let c = Client.connect (Server.Unix_path socket) in
    for r = 0 to per_client - 1 do
      let id = Printf.sprintf "c%d-%d" ci r in
      let req =
        if r mod 2 = 0 then { Proto.id; u = u3; verb = Proto.Moments }
        else
          {
            Proto.id;
            u = u3;
            verb =
              Proto.Fleet_mission
                {
                  plants = 2;
                  demands_per_plant = 40;
                  mission_demands = 100;
                  salt = (ci * per_client) + r;
                  shards = 2;
                  space = 64;
                };
          }
      in
      let line = Proto.render_request req in
      let rec attempt budget =
        if budget <= 0 then record_failure (id ^ ": retry budget exhausted")
        else
          match Client.round_trip c line with
          | None -> record_failure (id ^ ": connection closed")
          | Some reply -> (
              match Proto.parse_response reply with
              | Ok resp when resp.Proto.resp_ok ->
                  if resp.Proto.resp_id <> Some id then
                    record_failure (id ^ ": reply id mismatch: " ^ reply)
                  else begin
                    ok_counts.(ci) <- ok_counts.(ci) + 1;
                    draw_sums.(ci) <-
                      draw_sums.(ci)
                      + Option.value resp.Proto.resp_draws ~default:0
                  end
              | Ok resp when resp.Proto.resp_error = Some "busy" -> (
                  busy_counts.(ci) <- busy_counts.(ci) + 1;
                  match
                    (resp.Proto.resp_retry_after_ms, resp.Proto.resp_queue_depth)
                  with
                  | Some ms, Some depth when ms >= 1 && depth >= 0 ->
                      Thread.delay (float_of_int ms /. 1000.0);
                      attempt (budget - 1)
                  | _ -> record_failure (id ^ ": ill-formed busy line: " ^ reply))
              | Ok _ -> record_failure (id ^ ": unexpected reply: " ^ reply)
              | Error e -> record_failure (id ^ ": unparseable reply: " ^ e))
      in
      attempt 10_000
    done;
    Client.close c
  in
  let threads = List.init n_clients (Thread.create client) in
  List.iter Thread.join threads;
  let ctrl = Client.connect (Server.Unix_path socket) in
  let stats_reply =
    match Client.round_trip ctrl (Proto.render_admin ~id:"stats" Proto.Stats) with
    | Some reply -> reply
    | None -> Alcotest.fail "no stats reply"
  in
  (match Client.round_trip ctrl (Proto.render_admin ~id:"bye" Proto.Shutdown) with
  | Some _ -> ()
  | None -> Alcotest.fail "no shutdown reply");
  Client.close ctrl;
  Thread.join server;
  (match !failures with
  | [] -> ()
  | fs ->
      Alcotest.failf "%d soak failure(s); first: %s" (List.length fs)
        (List.nth fs (List.length fs - 1)));
  let sum = Array.fold_left ( + ) 0 in
  let total_ok = sum ok_counts in
  let total_busy = sum busy_counts in
  let total_draws = sum draw_sums in
  check_int "every request answered exactly once" (n_clients * per_client)
    total_ok;
  check_bool "simulation actually drew randomness" true (total_draws > 0);
  let stats =
    match !stats_slot with
    | Some s -> s
    | None -> Alcotest.fail "server thread returned no stats"
  in
  check_int "server served every request" (n_clients * per_client)
    stats.Server.served;
  check_int "server rejections = client busy replies" total_busy
    stats.Server.rejected;
  check_int "no malformed lines" 0 stats.Server.malformed;
  check_bool "dispatched in batches" true (stats.Server.batches >= 1);
  check_int "draw conservation: server meter = sum of response meters"
    total_draws stats.Server.draws_total;
  (* The stats verb reports the same session counters over the wire. *)
  match Proto.parse_response stats_reply with
  | Ok resp -> (
      check_bool "stats is ok" true resp.Proto.resp_ok;
      match resp.Proto.resp_body with
      | Some body ->
          let int_field name =
            match Option.bind (Obs.Json.member name body) Obs.Json.to_int with
            | Some v -> v
            | None -> Alcotest.failf "stats body lacks %S: %s" name stats_reply
          in
          check_int "stats body served" stats.Server.served (int_field "served");
          check_int "stats body rejected" stats.Server.rejected
            (int_field "rejected");
          check_int "stats body draws_total" stats.Server.draws_total
            (int_field "draws_total")
      | None -> Alcotest.failf "stats reply has no body: %s" stats_reply)
  | Error e -> Alcotest.failf "stats reply unparseable: %s" e

(* ------------------------------------------------------------------ *)
(* Golden session transcript                                          *)
(* ------------------------------------------------------------------ *)

let golden_path = in_test_dir "golden/serve_session_seed42.jsonl"

(* One full scripted session against a subprocess daemon pinned at
   seed 42, workers 1, queue 64: the four work verbs, a malformed line,
   stats, shutdown — seven reply lines. Deterministic end to end, so
   byte-pinnable. *)
let golden_session () =
  let socket = temp_socket () in
  let pid =
    spawn_daemon
      ~env:(env_with "DIVREL_DOMAINS" "1")
      [
        "serve";
        "--socket";
        socket;
        "--workers";
        "1";
        "--queue-depth";
        "64";
        "--seed";
        "42";
      ]
  in
  let lines =
    session_work_lines
    @ [
        Proto.render_admin ~id:"s1" Proto.Stats;
        Proto.render_admin ~id:"bye" Proto.Shutdown;
      ]
  in
  let got = run_session ~socket lines in
  reap_daemon pid;
  String.concat "" (List.map (fun l -> l ^ "\n") got)

let test_golden_session () =
  let transcript = golden_session () in
  let expected = read_file golden_path in
  if not (String.equal expected transcript) then
    Alcotest.failf
      "session transcript drifted from %s@.expected:@.%s@.got:@.%s@.(regenerate \
       with SERVE_PRINT_GOLDEN=1 ./test_serve.exe > %s)"
      golden_path expected transcript golden_path

(* ------------------------------------------------------------------ *)

let () =
  if Sys.getenv_opt "SERVE_PRINT_GOLDEN" <> None then begin
    print_string (golden_session ());
    exit 0
  end

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "request round-trip property" `Quick
            test_request_roundtrip_prop;
          Alcotest.test_case "admin round-trip" `Quick test_admin_roundtrip;
          Alcotest.test_case "malformed lines rejected" `Quick
            test_malformed_rejected;
          Alcotest.test_case "retry-after policy" `Quick test_retry_after_policy;
        ] );
      ( "admission",
        [ Alcotest.test_case "bounded FIFO" `Quick test_admission_bounded_fifo ]
      );
      ( "engine",
        [
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "unsupported exact dist" `Quick
            test_engine_unsupported_exact;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "byte-identity across pool sizes" `Quick
            test_dispatcher_byte_identity;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "byte-identity vs one-shot assess" `Quick
            test_daemon_vs_assess;
          Alcotest.test_case "soak: 64 clients, tight queue" `Quick test_soak;
          Alcotest.test_case "golden session transcript" `Quick
            test_golden_session;
        ] );
    ]
