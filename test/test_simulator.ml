(* Tests for the protection-system simulator. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:4242

let make_space () =
  let profile = Demandspace.Profile.uniform ~size:200 in
  let r1 = Demandspace.Region.interval ~space_size:200 ~lo:0 ~hi:19 in
  let r2 = Demandspace.Region.interval ~space_size:200 ~lo:50 ~hi:59 in
  let r3 = Demandspace.Region.points ~space_size:200 [ 100; 150 ] in
  Demandspace.Space.create ~profile
    ~faults:[| (r1, 0.4); (r2, 0.25); (r3, 0.6) |]

(* ------------------------------------------------------------------ *)
(* Devteam                                                             *)
(* ------------------------------------------------------------------ *)

let test_devteam_frequencies () =
  let rng = rng0 () in
  let u = Core.Universe.of_pairs [ (0.4, 0.1); (0.25, 0.1); (0.6, 0.1) ] in
  let counts = Array.make 3 0 in
  let n = 50_000 in
  for _ = 1 to n do
    List.iter
      (fun i -> counts.(i) <- counts.(i) + 1)
      (Simulator.Devteam.sample_fault_set rng u)
  done;
  check_close ~eps:0.01 "fault 0 at p0" 0.4 (float_of_int counts.(0) /. float_of_int n);
  check_close ~eps:0.01 "fault 1 at p1" 0.25 (float_of_int counts.(1) /. float_of_int n);
  check_close ~eps:0.01 "fault 2 at p2" 0.6 (float_of_int counts.(2) /. float_of_int n)

let test_devteam_version_pfd () =
  let rng = rng0 () in
  let u = Core.Universe.of_pairs [ (0.5, 0.2); (0.5, 0.3) ] in
  let acc = Numerics.Welford.create () in
  for _ = 1 to 50_000 do
    Numerics.Welford.add acc (Simulator.Devteam.version_pfd_from_universe rng u)
  done;
  check_close ~eps:0.005 "mean version PFD = mu1" (Core.Moments.mu1 u)
    (Numerics.Welford.mean acc)

let test_devteam_pair_pfd () =
  let rng = rng0 () in
  let u = Core.Universe.of_pairs [ (0.5, 0.2); (0.3, 0.3) ] in
  let acc = Numerics.Welford.create () in
  for _ = 1 to 50_000 do
    let _, _, pair = Simulator.Devteam.pair_pfd_from_universe rng u in
    Numerics.Welford.add acc pair
  done;
  check_close ~eps:0.005 "mean pair PFD = mu2" (Core.Moments.mu2 u)
    (Numerics.Welford.mean acc)

let test_devteam_develop () =
  let rng = rng0 () in
  let space = make_space () in
  let v = Simulator.Devteam.develop rng space in
  List.iter
    (fun i -> if i < 0 || i > 2 then Alcotest.fail "fault index out of range")
    (Demandspace.Version.present_faults v)

(* ------------------------------------------------------------------ *)
(* Channel / Adjudicator / Protection                                  *)
(* ------------------------------------------------------------------ *)

let test_channel_respond () =
  let space = make_space () in
  let v = Demandspace.Version.create space [ 0 ] in
  let c = Simulator.Channel.create ~name:"A" v in
  Alcotest.(check bool) "fails inside its region" true
    (Simulator.Channel.respond c (Demandspace.Demand.of_int 5)
    = Simulator.Channel.No_action);
  Alcotest.(check bool) "shuts down elsewhere" true
    (Simulator.Channel.respond c (Demandspace.Demand.of_int 120)
    = Simulator.Channel.Shutdown);
  check_close ~eps:1e-12 "channel pfd" 0.1 (Simulator.Channel.pfd c)

let test_adjudicator_truth_table () =
  let open Simulator in
  let adj = Adjudicator.one_out_of_n in
  Alcotest.(check bool) "both good" true
    (Adjudicator.combine adj [ Channel.Shutdown; Channel.Shutdown ]
    = Channel.Shutdown);
  Alcotest.(check bool) "first fails" true
    (Adjudicator.combine adj [ Channel.No_action; Channel.Shutdown ]
    = Channel.Shutdown);
  Alcotest.(check bool) "second fails" true
    (Adjudicator.combine adj [ Channel.Shutdown; Channel.No_action ]
    = Channel.Shutdown);
  Alcotest.(check bool) "both fail" true
    (Adjudicator.combine adj [ Channel.No_action; Channel.No_action ]
    = Channel.No_action);
  Alcotest.(check bool) "system fails only when all fail" true
    (Adjudicator.system_fails adj [ Channel.No_action; Channel.No_action ]);
  Alcotest.check_raises "empty outputs"
    (Invalid_argument "Adjudicator.combine: no channel outputs") (fun () ->
      ignore (Adjudicator.combine adj []))

let test_protection_pfd () =
  let space = make_space () in
  let a = Demandspace.Version.create space [ 0; 1 ] in
  let b = Demandspace.Version.create space [ 1; 2 ] in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" a)
      (Simulator.Channel.create ~name:"B" b)
  in
  check_close ~eps:1e-12 "system pfd = common fault measure" 0.05
    (Simulator.Protection.true_pfd system);
  check_close ~eps:1e-12 "matches Version.pair_pfd"
    (Demandspace.Version.pair_pfd a b)
    (Simulator.Protection.true_pfd system);
  (* The system fails exactly on demands where both channels fail. *)
  Alcotest.(check bool) "fails on shared region" true
    (Simulator.Protection.fails_on system (Demandspace.Demand.of_int 55));
  Alcotest.(check bool) "survives single-channel fault" false
    (Simulator.Protection.fails_on system (Demandspace.Demand.of_int 5))

let test_protection_three_channels () =
  let space = make_space () in
  let mk faults = Simulator.Channel.create ~name:"x" (Demandspace.Version.create space faults) in
  let system = Simulator.Protection.create [ mk [ 0 ]; mk [ 0; 1 ]; mk [ 0; 2 ] ] in
  check_close ~eps:1e-12 "1oo3 pfd = triple intersection" 0.1
    (Simulator.Protection.true_pfd system)

(* ------------------------------------------------------------------ *)
(* Adjudication calculus                                               *)
(* ------------------------------------------------------------------ *)

let output_t =
  Alcotest.testable Simulator.Channel.pp_output Simulator.Channel.equal

let test_channel_equal_pp () =
  let open Simulator.Channel in
  let outputs = [ Shutdown; No_action; Abstain ] in
  (* equal must agree with structural equality on the whole 3x3 table *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Format.asprintf "equal %a %a" pp_output a pp_output b)
            (a = b) (equal a b))
        outputs)
    outputs;
  Alcotest.(check string) "pp shutdown" "shutdown"
    (Format.asprintf "%a" pp_output Shutdown);
  Alcotest.(check string) "pp no-action" "no-action"
    (Format.asprintf "%a" pp_output No_action);
  Alcotest.(check string) "pp abstain" "abstain"
    (Format.asprintf "%a" pp_output Abstain)

let test_channel_abstain () =
  let space = make_space () in
  let v = Demandspace.Version.create space [ 0 ] in
  (* self-check covering the whole failure region: every failure becomes
     an abstention *)
  let self_check = Demandspace.Version.failure_set v in
  let c = Simulator.Channel.create ~self_check ~name:"A" v in
  Alcotest.check output_t "abstains on a detected fault"
    Simulator.Channel.Abstain
    (Simulator.Channel.respond c (Demandspace.Demand.of_int 5));
  Alcotest.check output_t "shuts down on clean demands"
    Simulator.Channel.Shutdown
    (Simulator.Channel.respond c (Demandspace.Demand.of_int 120));
  Alcotest.(check bool) "abstains_on tracks respond" true
    (Simulator.Channel.abstains_on c (Demandspace.Demand.of_int 5));
  Alcotest.(check bool) "abstain set covers the detected region" true
    (Numerics.Bitset.mem (Simulator.Channel.abstain_set c) 5);
  (* a plain channel on the same version never abstains *)
  let plain = Simulator.Channel.create ~name:"B" v in
  Alcotest.check output_t "undetected failure is silent"
    Simulator.Channel.No_action
    (Simulator.Channel.respond plain (Demandspace.Demand.of_int 5));
  Alcotest.(check bool) "plain abstain set is empty" false
    (Numerics.Bitset.mem (Simulator.Channel.abstain_set plain) 5);
  Alcotest.check_raises "mis-sized self-check"
    (Invalid_argument "Channel.create: self-check set sized to a different space")
    (fun () ->
      ignore
        (Simulator.Channel.create
           ~self_check:(Numerics.Bitset.create 7)
           ~name:"C" v))

let test_calculus_truth_tables () =
  let open Simulator in
  let sd = Channel.Shutdown and na = Channel.No_action and ab = Channel.Abstain in
  (* unit passes the verdict lattice through (any shutdown wins) *)
  Alcotest.check output_t "unit keeps shutdown" sd
    (Adjudicator.(combine unit) [ sd; na ]);
  Alcotest.check output_t "unit keeps abstain" ab (Adjudicator.(combine unit) [ ab ]);
  (* vote thresholds over mixed vectors: quorum met, lost, and broken *)
  let v2 = Adjudicator.vote ~required:2 in
  Alcotest.check output_t "2oo3 quorum met" sd (Adjudicator.combine v2 [ sd; sd; na ]);
  Alcotest.check output_t "2oo3 outvoted" na (Adjudicator.combine v2 [ sd; na; na ]);
  Alcotest.check output_t "2oo3 quorum broken by abstention" ab
    (Adjudicator.combine v2 [ sd; ab; ab ]);
  (* the graceful-degradation cascade: a fallback OR rescues the vote *)
  let cascade = Adjudicator.(fallback v2 one_out_of_n) in
  Alcotest.check output_t "fallback rescues the broken quorum" sd
    (Adjudicator.combine cascade [ sd; ab; ab ]);
  Alcotest.check output_t "fallback does not fire on a definite verdict" na
    (Adjudicator.combine cascade [ sd; na; na ]);
  (* compose cascades the survivors of the first stage *)
  let two_stage = Adjudicator.(compose v2 one_out_of_n) in
  Alcotest.check output_t "compose collapses the vote's verdict" sd
    (Adjudicator.combine two_stage [ sd; sd; na ]);
  Alcotest.(check int) "min_channels of a vote" 2 (Adjudicator.min_channels v2);
  Alcotest.(check int) "min_channels of the cascade" 1
    (Adjudicator.min_channels cascade);
  Alcotest.(check bool) "terms compare structurally" true
    (Adjudicator.equal cascade Adjudicator.(fallback (vote ~required:2) (vote ~required:1)));
  Alcotest.check_raises "vote threshold must be positive"
    (Invalid_argument "Adjudicator.m_out_of_n: required must be >= 1")
    (fun () -> ignore (Adjudicator.vote ~required:0));
  Alcotest.check_raises "arity check"
    (Invalid_argument "Adjudicator.combine: more votes required than channels")
    (fun () -> ignore (Adjudicator.combine v2 [ sd ]))

let test_cascade_protection () =
  let space = make_space () in
  let va = Demandspace.Version.create space [ 0 ] in
  let vb = Demandspace.Version.create space [ 1 ] in
  let a =
    Simulator.Channel.create
      ~self_check:(Demandspace.Version.failure_set va)
      ~name:"A" va
  in
  let b = Simulator.Channel.create ~name:"B" vb in
  (* a demand in A's fault region: A abstains, B shuts down *)
  let d = Demandspace.Demand.of_int 5 in
  let strict = Simulator.Protection.create ~adjudicator:(Simulator.Adjudicator.vote ~required:2) [ a; b ] in
  Alcotest.check output_t "2oo2 loses its quorum" Simulator.Channel.Abstain
    (Simulator.Protection.respond strict d);
  Alcotest.(check bool) "2oo2 counts it as a system failure" true
    (Simulator.Protection.fails_on strict d);
  let graceful =
    Simulator.Protection.create
      ~adjudicator:
        Simulator.Adjudicator.(fallback (vote ~required:2) (vote ~required:1))
      [ a; b ]
  in
  Alcotest.check output_t "the cascade degrades to the surviving channel"
    Simulator.Channel.Shutdown
    (Simulator.Protection.respond graceful d);
  Alcotest.(check bool) "and handles the demand" false
    (Simulator.Protection.fails_on graceful d)

let test_runner_abstentions () =
  let rng = rng0 () in
  let space = make_space () in
  let v = Demandspace.Version.create space [ 0 ] in
  (* a single fully self-checking channel: every failure surfaces as a
     lost quorum, so the runner must attribute every system failure to an
     abstention *)
  let c =
    Simulator.Channel.create
      ~self_check:(Demandspace.Version.failure_set v)
      ~name:"A" v
  in
  let system = Simulator.Protection.create [ c ] in
  let stats = Simulator.Runner.run rng ~system ~demand_count:2000 in
  Alcotest.(check bool) "some demands hit the fault region" true
    (stats.Simulator.Runner.system_failures > 0);
  Alcotest.(check int) "every system failure is an abstention"
    stats.Simulator.Runner.system_failures
    stats.Simulator.Runner.system_abstentions;
  (* the same system without self-checking fails identically often on
     the same demand stream (the verdict changes, not the failure set) *)
  let rng' = rng0 () in
  let plain =
    Simulator.Protection.create [ Simulator.Channel.create ~name:"A" v ]
  in
  let stats' = Simulator.Runner.run rng' ~system:plain ~demand_count:2000 in
  Alcotest.(check int) "failure count matches the silent system"
    stats'.Simulator.Runner.system_failures
    stats.Simulator.Runner.system_failures;
  Alcotest.(check int) "silent system never abstains" 0
    stats'.Simulator.Runner.system_abstentions

(* ------------------------------------------------------------------ *)
(* Plant / Runner                                                      *)
(* ------------------------------------------------------------------ *)

let test_plant_idle_rate () =
  let rng = rng0 () in
  let profile = Demandspace.Profile.uniform ~size:10 in
  let plant = Simulator.Plant.create ~demand_rate:0.25 ~profile rng in
  let demands = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    match Simulator.Plant.step plant with
    | Simulator.Plant.Demand _ -> incr demands
    | Simulator.Plant.Idle -> ()
  done;
  check_close ~eps:0.01 "demand rate respected" 0.25
    (float_of_int !demands /. float_of_int n)

let test_runner_empirical_pfd () =
  let rng = rng0 () in
  let space = make_space () in
  let a = Demandspace.Version.create space [ 0; 1 ] in
  let b = Demandspace.Version.create space [ 1 ] in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" a)
      (Simulator.Channel.create ~name:"B" b)
  in
  let stats = Simulator.Runner.run rng ~system ~demand_count:100_000 in
  let truth = Simulator.Protection.true_pfd system in
  check_close ~eps:0.005 "empirical pfd converges" truth
    stats.Simulator.Runner.estimated_pfd;
  let lo, hi = stats.Simulator.Runner.pfd_ci in
  Alcotest.(check bool) "CI contains truth" true (lo <= truth && truth <= hi);
  Alcotest.(check int) "demand count recorded" 100_000 stats.Simulator.Runner.demands;
  (* channel A contains fault 0 and 1: pfd 0.15 *)
  let est = Simulator.Runner.channel_pfd_estimates stats in
  check_close ~eps:0.01 "channel A empirical pfd" 0.15 est.(0)

let test_runner_coincident () =
  let rng = rng0 () in
  let space = make_space () in
  let v = Demandspace.Version.create space [ 0 ] in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" v)
      (Simulator.Channel.create ~name:"B" v)
  in
  let stats = Simulator.Runner.run rng ~system ~demand_count:20_000 in
  Alcotest.(check int) "identical channels fail coincidentally"
    stats.Simulator.Runner.system_failures stats.Simulator.Runner.coincident_failures

(* ------------------------------------------------------------------ *)
(* Montecarlo                                                          *)
(* ------------------------------------------------------------------ *)

let test_montecarlo_estimate () =
  let rng = rng0 () in
  let u = Core.Universe.of_pairs [ (0.3, 0.1); (0.2, 0.2); (0.4, 0.05) ] in
  let est = Simulator.Montecarlo.estimate rng u ~replications:60_000 in
  check_close ~eps:0.003 "theta1 mean" (Core.Moments.mu1 u)
    est.Simulator.Montecarlo.theta1.Numerics.Stats.mean;
  check_close ~eps:0.002 "theta2 mean" (Core.Moments.mu2 u)
    est.Simulator.Montecarlo.theta2.Numerics.Stats.mean;
  check_close ~eps:0.01 "P(N1>0)" (Core.Fault_count.p_n1_pos u)
    est.Simulator.Montecarlo.p_n1_pos;
  check_close ~eps:0.02 "risk ratio" (Core.Fault_count.risk_ratio u)
    est.Simulator.Montecarlo.risk_ratio

let test_montecarlo_sigma () =
  let rng = rng0 () in
  let u = Core.Universe.of_pairs [ (0.3, 0.1); (0.2, 0.2); (0.4, 0.05) ] in
  let est = Simulator.Montecarlo.estimate rng u ~replications:60_000 in
  check_close ~eps:0.003 "theta1 std" (Core.Moments.sigma1 u)
    est.Simulator.Montecarlo.theta1.Numerics.Stats.std

let test_version_population () =
  let rng = rng0 () in
  let space = make_space () in
  let pop = Simulator.Montecarlo.version_population rng space ~count:27 in
  Alcotest.(check int) "27 versions" 27
    (Array.length pop.Simulator.Montecarlo.version_pfds);
  Alcotest.(check int) "351 pairs" 351
    (Array.length pop.Simulator.Montecarlo.pair_pfds);
  let mean_ratio, std_ratio = Simulator.Montecarlo.knight_leveson_shape pop in
  Alcotest.(check bool) "pair mean below version mean" true (mean_ratio < 1.0);
  Alcotest.(check bool) "pair std below version std" true (std_ratio < 1.0)

(* Reproducibility regression guard: the RNG draw counter must be a pure
   function of the seed and the code path — equal seeds, equal draw
   counts, at both the abstract (universe) and concrete (demand-space)
   simulation levels. A change that breaks this silently reorders or
   adds randomness and invalidates seed-pinned experiment outputs. *)
let test_rng_draw_counts () =
  let draws_of seed =
    let rng = Numerics.Rng.create ~seed in
    let u = Core.Universe.of_pairs [ (0.3, 0.1); (0.2, 0.2); (0.4, 0.05) ] in
    ignore (Simulator.Montecarlo.estimate rng u ~replications:2_000);
    let space = make_space () in
    let va, vb = Simulator.Devteam.develop_pair rng space in
    let system =
      Simulator.Protection.one_out_of_two
        (Simulator.Channel.create ~name:"A" va)
        (Simulator.Channel.create ~name:"B" vb)
    in
    ignore (Simulator.Runner.run rng ~system ~demand_count:5_000);
    Numerics.Rng.draws rng
  in
  let d1 = draws_of 4242 and d2 = draws_of 4242 in
  Alcotest.(check int) "equal seeds give equal draw counts" d1 d2;
  Alcotest.(check bool) "draws were actually counted" true (d1 > 0);
  (* split children count their own draws from zero *)
  let parent = rng0 () in
  let child = Numerics.Rng.split parent ~index:1 in
  Alcotest.(check int) "split advances the parent once" 1
    (Numerics.Rng.draws parent);
  Alcotest.(check int) "child starts at zero" 0 (Numerics.Rng.draws child);
  ignore (Numerics.Rng.float child);
  Alcotest.(check int) "child counts independently" 1
    (Numerics.Rng.draws child)

let test_empirical_system_pfd () =
  let rng = rng0 () in
  let space = make_space () in
  let u = Demandspace.Space.to_universe space in
  let emp =
    Simulator.Montecarlo.empirical_system_pfd rng space ~replications:300
      ~demands_per_system:2000
  in
  check_close ~eps:0.01 "full-stack pfd near mu2" (Core.Moments.mu2 u) emp

let () =
  Alcotest.run "simulator"
    [
      ( "devteam",
        [
          Alcotest.test_case "fault frequencies" `Slow test_devteam_frequencies;
          Alcotest.test_case "version pfd mean" `Slow test_devteam_version_pfd;
          Alcotest.test_case "pair pfd mean" `Slow test_devteam_pair_pfd;
          Alcotest.test_case "develop" `Quick test_devteam_develop;
        ] );
      ( "channel-adjudicator",
        [
          Alcotest.test_case "channel respond" `Quick test_channel_respond;
          Alcotest.test_case "adjudicator truth table" `Quick
            test_adjudicator_truth_table;
          Alcotest.test_case "protection pfd" `Quick test_protection_pfd;
          Alcotest.test_case "three channels" `Quick test_protection_three_channels;
        ] );
      ( "adjudication-calculus",
        [
          Alcotest.test_case "channel equal and pp" `Quick test_channel_equal_pp;
          Alcotest.test_case "self-checking channel" `Quick test_channel_abstain;
          Alcotest.test_case "combinator truth tables" `Quick
            test_calculus_truth_tables;
          Alcotest.test_case "cascade protection" `Quick test_cascade_protection;
          Alcotest.test_case "runner abstentions" `Quick test_runner_abstentions;
        ] );
      ( "plant-runner",
        [
          Alcotest.test_case "plant idle rate" `Slow test_plant_idle_rate;
          Alcotest.test_case "runner empirical pfd" `Slow test_runner_empirical_pfd;
          Alcotest.test_case "coincident failures" `Quick test_runner_coincident;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "estimate matches analytic" `Slow test_montecarlo_estimate;
          Alcotest.test_case "sigma matches" `Slow test_montecarlo_sigma;
          Alcotest.test_case "version population" `Quick test_version_population;
          Alcotest.test_case "full-stack pfd" `Slow test_empirical_system_pfd;
          Alcotest.test_case "rng draw counts reproducible" `Quick
            test_rng_draw_counts;
        ] );
    ]
