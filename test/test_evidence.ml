(* lib/evidence end to end: the streaming proven-in-use assessor.

   The load-bearing property is that the final verdict is a pure
   function of the run log's contents — any windowing of the stream
   (window size 1, 64, random split points, one batch) renders byte
   for byte the same verdict — and that the assessor's counters
   reconcile exactly with what Fleet.observe reports for the same
   seed. The CLI verb is smoke-tested through the real executable. *)

module Assessor = Evidence.Assessor
module Verdict = Evidence.Verdict
module Drift = Evidence.Drift
module Schema = Evidence.Schema
module Source = Evidence.Source
module Runlog = Obs.Runlog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixture: a small logged fleet campaign                             *)
(* ------------------------------------------------------------------ *)

let small_space () =
  let size = 64 in
  let faults =
    [|
      (Demandspace.Region.interval ~space_size:size ~lo:3 ~hi:6, 0.4);
      (Demandspace.Region.interval ~space_size:size ~lo:20 ~hi:24, 0.3);
      (Demandspace.Region.interval ~space_size:size ~lo:40 ~hi:41, 0.5);
    |]
  in
  Demandspace.Space.create
    ~profile:(Demandspace.Profile.uniform ~size)
    ~faults

(* Deploy and observe a fleet with the run-log sink active, exactly as
   the CLI does with --log, and return the captured log next to the
   in-process observation for reconciliation. ~shards:1 keeps the event
   order deterministic (sharded observation records runner.run events
   from worker domains). *)
let fleet_log ~seed ~plants ~demands_per_plant =
  let space = small_space () in
  let rng = Numerics.Rng.create ~seed in
  let log = Runlog.create () in
  Runlog.set_sink (Some log);
  let fleet =
    Fun.protect
      ~finally:(fun () -> Runlog.set_sink None)
      (fun () ->
        Runlog.record ~kind:"run.start"
          [
            ("target", Obs.Json.String "test.fleet");
            ("seed", Obs.Json.Int seed);
            ("shards", Obs.Json.Int 1);
          ];
        let systems = Simulator.Fleet.deploy_pairs ~shards:1 rng space ~plants in
        let fleet =
          Simulator.Fleet.observe ~shards:1 rng systems ~demands_per_plant
        in
        Runlog.record ~kind:"run.end"
          [
            ("target", Obs.Json.String "test.fleet");
            ("seed", Obs.Json.Int seed);
            ("shards", Obs.Json.Int 1);
            ("rng_draws", Obs.Json.Int (Numerics.Rng.total_draws ()));
            ("duration_ns", Obs.Json.Int 0);
          ];
        fleet)
  in
  (log, fleet)

let log_lines log =
  Runlog.to_jsonl log |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let uniform_profile size =
  Demandspace.Profile.probabilities (Demandspace.Profile.uniform ~size)

let config_with_profile () =
  {
    Assessor.default_config with
    Assessor.expected_profile = Some (uniform_profile 64);
  }

let verdict_of_lines config lines =
  let a = Assessor.create config in
  List.iter (Assessor.ingest_line a) lines;
  Verdict.render_json (Verdict.of_assessor a)

(* ------------------------------------------------------------------ *)
(* Windowed streaming == batch                                        *)
(* ------------------------------------------------------------------ *)

let test_windowed_equals_batch () =
  let log, _fleet = fleet_log ~seed:11 ~plants:6 ~demands_per_plant:300 in
  let lines = log_lines log in
  let n = List.length lines in
  let config = config_with_profile () in
  let batch = verdict_of_lines config lines in
  let windowed w =
    let a = Assessor.create config in
    let rec go = function
      | [] -> ()
      | rest ->
          let take = min w (List.length rest) in
          let window = List.filteri (fun i _ -> i < take) rest in
          let rest = List.filteri (fun i _ -> i >= take) rest in
          Assessor.ingest_batch a window;
          (* interim verdicts must not perturb the final one *)
          ignore (Verdict.of_assessor a);
          go rest
    in
    go lines;
    Verdict.render_json (Verdict.of_assessor a)
  in
  Prop.check ~cases:30 "windowed streaming == batch"
    (Prop.int_range 1 n)
    (fun w ->
      let v = windowed w in
      if v <> batch then
        Alcotest.failf "window %d diverges from the batch verdict" w)

let test_random_split_points () =
  let log, _fleet = fleet_log ~seed:12 ~plants:5 ~demands_per_plant:250 in
  let lines = Array.of_list (log_lines log) in
  let n = Array.length lines in
  let config = config_with_profile () in
  let batch = verdict_of_lines config (Array.to_list lines) in
  Prop.check ~cases:30 "any split points == batch"
    (Prop.pair (Prop.int_range 0 n) (Prop.int_range 0 n))
    (fun (i, j) ->
      let lo = min i j and hi = max i j in
      let slice a b = Array.to_list (Array.sub lines a (b - a)) in
      let a = Assessor.create config in
      Assessor.ingest_batch a (slice 0 lo);
      Assessor.ingest_batch a (slice lo hi);
      Assessor.ingest_batch a (slice hi n);
      let v = Verdict.render_json (Verdict.of_assessor a) in
      if v <> batch then
        Alcotest.failf "splits (%d, %d) diverge from the batch verdict" lo hi)

(* ------------------------------------------------------------------ *)
(* Reconciliation with Fleet.observe                                  *)
(* ------------------------------------------------------------------ *)

let test_reconciles_with_fleet_observe () =
  let plants = 7 and demands_per_plant = 400 in
  let log, fleet = fleet_log ~seed:42 ~plants ~demands_per_plant in
  let a = Assessor.create (config_with_profile ()) in
  Assessor.ingest_runlog a log;
  let fc = Assessor.fleet_counts a in
  check_int "plants" plants fc.Assessor.f_plants;
  check_int "fleet demands" (plants * demands_per_plant) fc.Assessor.f_demands;
  check_int "fleet failures"
    (Simulator.Fleet.total_failures fleet)
    fc.Assessor.f_failures;
  let records = Simulator.Fleet.records fleet in
  let per_plant = Assessor.plant_counts a in
  check_int "one entry per plant" plants (List.length per_plant);
  List.iteri
    (fun i (c : Assessor.plant_counts) ->
      check_int (Printf.sprintf "plant %d id" i) i c.Assessor.plant;
      check_int
        (Printf.sprintf "plant %d demands" i)
        records.(i).Simulator.Fleet.demands c.Assessor.demands;
      check_int
        (Printf.sprintf "plant %d failures" i)
        records.(i).Simulator.Fleet.failures c.Assessor.failures)
    per_plant;
  (* runner.run events cover the same campaign: totals agree *)
  let rc = Assessor.runner_counts a in
  check_int "runner demands" fc.Assessor.f_demands rc.Assessor.r_demands;
  check_int "runner failures" fc.Assessor.f_failures rc.Assessor.r_failures;
  (* the demand histogram accounts for every demand *)
  let hist_total = Array.fold_left ( + ) 0 (Assessor.demand_counts a) in
  check_int "demand histogram total" fc.Assessor.f_demands hist_total;
  let v = Verdict.of_assessor a in
  check_bool "verdict reconciled against fleet.observe" true
    v.Verdict.reconciled;
  check_int "no skipped events" 0 v.Verdict.events.Assessor.e_skipped_total;
  check_int "no malformed lines" 0 v.Verdict.events.Assessor.e_malformed

(* ------------------------------------------------------------------ *)
(* Drift detection                                                    *)
(* ------------------------------------------------------------------ *)

let sampled_counts profile ~size ~seed ~n =
  let rng = Numerics.Rng.create ~seed in
  let counts = Array.make size 0 in
  let buf = Array.make n 0 in
  Demandspace.Profile.sample_many profile rng buf ~n;
  Array.iter (fun id -> counts.(id) <- counts.(id) + 1) buf;
  counts

let test_drift_true_negative () =
  (* Evidence really drawn from the declared profile: no alarm. *)
  let size = 200 in
  let uniform = Demandspace.Profile.uniform ~size in
  let counts = sampled_counts uniform ~size ~seed:7 ~n:20_000 in
  let r =
    Drift.assess
      ~expected:(Demandspace.Profile.probabilities uniform)
      ~counts ~alpha:1e-3
  in
  check_bool
    (Printf.sprintf "no alarm on matching profile (p=%g)" r.Drift.p_value)
    false r.Drift.alarm;
  check_int "no impossible demands" 0 r.Drift.impossible

let test_drift_true_positive () =
  (* Evidence drawn from a zipf profile, declared uniform: alarm. *)
  let size = 200 in
  let zipf = Demandspace.Profile.zipf ~size ~exponent:1.2 in
  let counts = sampled_counts zipf ~size ~seed:7 ~n:20_000 in
  let r =
    Drift.assess
      ~expected:(Demandspace.Profile.probabilities
                   (Demandspace.Profile.uniform ~size))
      ~counts ~alpha:1e-3
  in
  check_bool
    (Printf.sprintf "alarm on drifted profile (p=%g)" r.Drift.p_value)
    true r.Drift.alarm

let test_drift_impossible_demands () =
  (* Demands where the declared profile has zero mass always alarm,
     with finite statistics. *)
  let expected = [| 0.5; 0.5; 0.0 |] in
  let counts = [| 40; 45; 5 |] in
  let r = Drift.assess ~expected ~counts ~alpha:1e-3 in
  check_int "impossible demands counted" 5 r.Drift.impossible;
  check_bool "alarm" true r.Drift.alarm;
  check_bool "statistics stay finite" true
    (Float.is_finite r.Drift.chi_square && Float.is_finite r.Drift.p_value
   && Float.is_finite r.Drift.kl_divergence)

let test_drift_alarm_rejects_verdict () =
  (* End to end: a fleet log assessed under the wrong declared profile
     is rejected for drift regardless of its failure record. *)
  let log, _fleet = fleet_log ~seed:13 ~plants:6 ~demands_per_plant:2_000 in
  let config =
    {
      Assessor.default_config with
      Assessor.expected_profile =
        Some
          (Demandspace.Profile.probabilities
             (Demandspace.Profile.peaked ~size:64 ~peak:0 ~mass:0.9));
    }
  in
  let a = Assessor.create config in
  Assessor.ingest_runlog a log;
  let v = Verdict.of_assessor a in
  (match v.Verdict.drift with
  | Some d -> check_bool "drift alarm raised" true d.Drift.alarm
  | None -> Alcotest.fail "drift detection should be enabled");
  check_string "verdict rejected" "rejected"
    (Verdict.overall_string v.Verdict.overall)

(* ------------------------------------------------------------------ *)
(* Schema robustness                                                  *)
(* ------------------------------------------------------------------ *)

let test_malformed_and_skipped () =
  let a = Assessor.create Assessor.default_config in
  Assessor.ingest_line a "this is not json";
  Assessor.ingest_line a "{\"event\":\"mystery.kind\",\"x\":1}";
  Assessor.ingest_line a "{\"event\":\"mystery.kind\"}";
  Assessor.ingest_line a "{\"no_event_field\":true}";
  (* well-formed JSON, out-of-range values: counted as malformed *)
  Assessor.ingest_line a
    "{\"event\":\"fleet.plant\",\"plant\":0,\"demands\":10,\"failures\":11,\"true_pfd\":0.1}";
  Assessor.ingest_line a
    "{\"event\":\"fleet.plant\",\"plant\":1,\"demands\":10,\"failures\":2,\"true_pfd\":0.1}";
  let e = Assessor.event_counts a in
  check_int "one event consumed" 1 e.Assessor.e_accepted;
  check_int "unknown kinds counted, not fatal" 2 e.Assessor.e_skipped_total;
  check_bool "skipped kinds tallied by name" true
    (List.assoc_opt "mystery.kind" e.Assessor.e_skipped = Some 2);
  check_int "malformed lines counted" 3 e.Assessor.e_malformed;
  let fc = Assessor.fleet_counts a in
  check_int "only the valid plant landed" 10 fc.Assessor.f_demands

let test_schema_parse () =
  (match
     Schema.parse_line
       "{\"event\":\"sprt.decision\",\"decision\":\"accept\",\"demands\":5,\"failures\":0,\"log_lr\":-4.7}"
   with
  | Schema.Event
      (Schema.Sprt_decision { decision; demands; failures = _; log_lr = _ }) ->
      check_bool "decision" true (decision = Schema.Accept);
      check_int "demands" 5 demands
  | _ -> Alcotest.fail "sprt.decision should parse");
  (match Schema.parse_line "{\"event\":\"campaign.mission\",\"missions\":3}" with
  | Schema.Skipped kind -> check_string "skip kind" "campaign.mission" kind
  | _ -> Alcotest.fail "unknown kind should be Skipped");
  match Schema.parse_line "{\"event\":42}" with
  | Schema.Malformed _ -> ()
  | _ -> Alcotest.fail "non-string event should be Malformed"

(* ------------------------------------------------------------------ *)
(* File sources: streaming writer, cursor, resume                     *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "evidence_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_streaming_writer () =
  with_temp_file (fun path ->
      let oc = open_out path in
      let log = Runlog.create_streaming oc in
      Runlog.set_sink (Some log);
      Fun.protect
        ~finally:(fun () -> Runlog.set_sink None)
        (fun () ->
          Runlog.record ~kind:"alpha" [ ("x", Obs.Json.Int 1) ];
          Runlog.record ~kind:"beta" [];
          Runlog.record ~kind:"gamma" [ ("y", Obs.Json.Float 0.5) ]);
      close_out oc;
      check_int "streaming log counts events" 3 (Runlog.size log);
      (* the in-memory accessors refuse: events went straight to disk *)
      (try
         ignore (Runlog.to_jsonl log);
         Alcotest.fail "to_jsonl should refuse on a streaming log"
       with Invalid_argument _ -> ());
      let ic = open_in path in
      let lines = ref [] in
      let rec read () =
        match Runlog.input_line_opt ic with
        | Some l ->
            lines := l :: !lines;
            read ()
        | None -> ()
      in
      read ();
      close_in ic;
      let lines = List.rev !lines in
      check_int "one line per event" 3 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.parse line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "invalid JSONL line (%s): %s" e line)
        lines)

let test_file_matches_memory () =
  let log, _fleet = fleet_log ~seed:17 ~plants:4 ~demands_per_plant:150 in
  let config = config_with_profile () in
  let from_memory =
    let a = Assessor.create config in
    Assessor.ingest_runlog a log;
    Verdict.render_json (Verdict.of_assessor a)
  in
  with_temp_file (fun path ->
      let oc = open_out path in
      Runlog.output_jsonl log oc;
      close_out oc;
      let a = Assessor.create config in
      let src = Source.open_file path in
      Fun.protect
        ~finally:(fun () -> Source.close src)
        (fun () -> Source.iter_lines src ~f:(Assessor.ingest_line a));
      check_string "file ingest == in-memory ingest" from_memory
        (Verdict.render_json (Verdict.of_assessor a)))

let test_source_resume () =
  with_temp_file (fun path ->
      let oc = open_out path in
      for i = 1 to 5 do
        Printf.fprintf oc "{\"event\":\"line\",\"i\":%d}\n" i
      done;
      close_out oc;
      let src = Source.open_file path in
      let line1 = Source.next_line src in
      let _line2 = Source.next_line src in
      let offset = Source.offset src in
      let rest cursor =
        let out = ref [] in
        Source.iter_lines cursor ~f:(fun l -> out := l :: !out);
        List.rev !out
      in
      let tail_first = rest src in
      check_int "read the tail" 3 (List.length tail_first);
      Source.close src;
      (* a fresh cursor resumed at the saved offset sees the same tail *)
      let src2 = Source.open_file path in
      Source.resume src2 ~offset;
      let tail_resumed = rest src2 in
      Source.close src2;
      check_bool "first line read" true (line1 <> None);
      check_bool "resumed tail identical" true (tail_first = tail_resumed))

(* ------------------------------------------------------------------ *)
(* Wald boundary and posterior sanity                                 *)
(* ------------------------------------------------------------------ *)

let test_wald_of_counts () =
  let c = Assessor.default_config in
  let w0 = Assessor.wald_of_counts c ~demands:0 ~failures:0 in
  check_bool "no evidence: undecided" true
    (w0.Assessor.w_decision = Schema.Undecided);
  let accept = Assessor.wald_of_counts c ~demands:10_000 ~failures:0 in
  check_bool "clean record accepts" true
    (accept.Assessor.w_decision = Schema.Accept);
  let reject = Assessor.wald_of_counts c ~demands:1_000 ~failures:50 in
  check_bool "bad record rejects" true
    (reject.Assessor.w_decision = Schema.Reject);
  check_bool "boundaries ordered" true
    (accept.Assessor.w_log_b < accept.Assessor.w_log_a)

let test_posterior_of_counts () =
  let c = Assessor.default_config in
  let p = Assessor.posterior_of_counts c ~demands:5_000 ~failures:5 in
  check_bool "interval ordered" true
    (p.Assessor.post_lo <= p.Assessor.post_mean
    && p.Assessor.post_mean <= p.Assessor.post_hi);
  check_bool "mean near the empirical rate" true
    (p.Assessor.post_mean > 5e-4 && p.Assessor.post_mean < 3e-3);
  check_bool "confidence in 1e-2 bound is high" true
    (p.Assessor.confidence_in_bound > 0.99)

(* ------------------------------------------------------------------ *)
(* Golden verdict pin (seed 42)                                       *)
(* ------------------------------------------------------------------ *)

let golden_path = "golden/evidence_seed42.json"

let test_golden_verdict () =
  let log, _fleet = fleet_log ~seed:42 ~plants:4 ~demands_per_plant:200 in
  let got = verdict_of_lines (config_with_profile ()) (log_lines log) ^ "\n" in
  let ic = open_in_bin golden_path in
  let n = in_channel_length ic in
  let expected = really_input_string ic n in
  close_in ic;
  if got <> expected then
    Alcotest.failf
      "seed-42 verdict diverges from the golden pin \
       (test/%s)\n--- expected ---\n%s--- got ---\n%s"
      golden_path expected got

(* ------------------------------------------------------------------ *)
(* CLI: the evidence verb end to end                                  *)
(* ------------------------------------------------------------------ *)

let cli_exe = "../bin/experiments_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_cli_window_byte_identity () =
  let log, _fleet = fleet_log ~seed:42 ~plants:5 ~demands_per_plant:300 in
  with_temp_file (fun log_path ->
      let oc = open_out log_path in
      Runlog.output_jsonl log oc;
      close_out oc;
      let verdict window =
        with_temp_file (fun out_path ->
            let args =
              [ "evidence"; log_path; "--json"; "--profile"; "uniform:64" ]
              @ (if window > 0 then [ "--window"; string_of_int window ]
                 else [])
            in
            let status =
              Sys.command
                (Filename.quote_command cli_exe args ~stdout:out_path)
            in
            check_int
              (Printf.sprintf "evidence --window %d exits 0" window)
              0 status;
            read_file out_path)
      in
      let whole = verdict 0 in
      check_bool "verdict is non-empty JSON" true
        (String.length whole > 2 && whole.[0] = '{');
      check_string "--window 1 byte-identical" whole (verdict 1);
      check_string "--window 64 byte-identical" whole (verdict 64);
      (* text mode smoke: exits 0 and prints a verdict *)
      with_temp_file (fun out_path ->
          let status =
            Sys.command
              (Filename.quote_command cli_exe
                 [ "evidence"; log_path; "--window"; "8" ]
                 ~stdout:out_path)
          in
          check_int "text mode exits 0" 0 status;
          let text = read_file out_path in
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
            at 0
          in
          check_bool "interim verdicts printed" true (contains text "interim @");
          check_bool "final text report rendered" true
            (contains text "proven-in-use verdict:")))

(* Regenerate the pin after an intentional verdict-schema change:
     EVIDENCE_PRINT_GOLDEN=1 ./test_evidence.exe > test/golden/evidence_seed42.json *)
let () =
  if Sys.getenv_opt "EVIDENCE_PRINT_GOLDEN" <> None then begin
    let log, _fleet = fleet_log ~seed:42 ~plants:4 ~demands_per_plant:200 in
    print_string
      (verdict_of_lines (config_with_profile ()) (log_lines log) ^ "\n");
    exit 0
  end

let () =
  Alcotest.run "evidence"
    [
      ( "streaming",
        [
          Alcotest.test_case "windowed == batch (property)" `Quick
            test_windowed_equals_batch;
          Alcotest.test_case "random split points == batch (property)" `Quick
            test_random_split_points;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "counters match Fleet.observe" `Quick
            test_reconciles_with_fleet_observe;
        ] );
      ( "drift",
        [
          Alcotest.test_case "true negative (matching profile)" `Quick
            test_drift_true_negative;
          Alcotest.test_case "true positive (zipf vs uniform)" `Quick
            test_drift_true_positive;
          Alcotest.test_case "impossible demands" `Quick
            test_drift_impossible_demands;
          Alcotest.test_case "alarm rejects the verdict" `Quick
            test_drift_alarm_rejects_verdict;
        ] );
      ( "schema",
        [
          Alcotest.test_case "malformed and unknown lines counted" `Quick
            test_malformed_and_skipped;
          Alcotest.test_case "event parsing" `Quick test_schema_parse;
        ] );
      ( "sources",
        [
          Alcotest.test_case "streaming runlog writer" `Quick
            test_streaming_writer;
          Alcotest.test_case "file ingest == in-memory ingest" `Quick
            test_file_matches_memory;
          Alcotest.test_case "cursor offset and resume" `Quick
            test_source_resume;
        ] );
      ( "judgements",
        [
          Alcotest.test_case "wald boundary" `Quick test_wald_of_counts;
          Alcotest.test_case "posterior bounds" `Quick test_posterior_of_counts;
        ] );
      ( "golden",
        [ Alcotest.test_case "seed-42 verdict pin" `Quick test_golden_verdict ] );
      ( "cli",
        [
          Alcotest.test_case "--window byte-identity" `Quick
            test_cli_window_byte_identity;
        ] );
    ]
