(* divlint against its fixture corpus: each rule on known-bad and
   known-clean snippets, rule scoping by path, suppression comments, and
   the CLI's exit code / JSON output. *)

module E = Divlint_lib.Engine

let fixtures_dir = "../tools/lint/fixtures"
let fixture name = Filename.concat fixtures_dir name

let lines_of rule findings =
  List.filter_map
    (fun f -> if f.E.rule = rule then Some f.E.line else None)
    findings

let count rule findings = List.length (lines_of rule findings)

let check_lines = Alcotest.(check (list int))
let check_int = Alcotest.(check int)

(* ---- R1 ---- *)

let test_float_eq () =
  let fs = E.lint_file (fixture "bad_float_eq.ml") in
  check_lines "R1 lines" [ 3; 4; 5 ] (lines_of E.Float_eq fs);
  check_int "nothing else" 3 (List.length fs)

(* ---- R2 ---- *)

let test_random () =
  let fs = E.lint_file (fixture "bad_random.ml") in
  check_lines "R2 lines" [ 3; 4; 5 ] (lines_of E.Random_use fs);
  let exempt =
    E.lint_file ~relpath:"lib/numerics/rng.ml" (fixture "bad_random.ml")
  in
  check_int "rng.ml is exempt" 0 (count E.Random_use exempt)

(* ---- R3 ---- *)

let test_float_sum () =
  let fs = E.lint_file (fixture "bad_float_sum.ml") in
  check_lines "R3 lines" [ 3; 4; 5 ] (lines_of E.Float_sum fs);
  check_int "int fold not flagged" 3 (List.length fs)

(* ---- R4 ---- *)

let test_missing_mli () =
  let bad =
    E.lint_file ~relpath:"lib/core/bad_no_mli.ml" (fixture "bad_no_mli.ml")
  in
  check_int "missing mli flagged" 1 (count E.Missing_mli bad);
  let with_mli =
    E.lint_file ~relpath:"lib/core/clean.ml" (fixture "clean.ml")
  in
  check_int "present mli accepted" 0 (count E.Missing_mli with_mli);
  let outside_lib = E.lint_file (fixture "bad_no_mli.ml") in
  check_int "R4 is lib-only" 0 (count E.Missing_mli outside_lib)

(* ---- R5 ---- *)

let test_print () =
  let in_lib =
    E.lint_file ~relpath:"lib/core/bad_print.ml" (fixture "bad_print.ml")
  in
  check_lines "R5 lines" [ 3; 4; 5 ] (lines_of E.Print_effect in_lib);
  let in_report =
    E.lint_file ~relpath:"lib/report/bad_print.ml" (fixture "bad_print.ml")
  in
  check_int "lib/report may print" 0 (count E.Print_effect in_report);
  let outside_lib = E.lint_file (fixture "bad_print.ml") in
  check_int "R5 is lib-only" 0 (count E.Print_effect outside_lib)

(* ---- R6 ---- *)

let test_partial () =
  let in_lib =
    E.lint_file ~relpath:"lib/core/bad_partial.ml" (fixture "bad_partial.ml")
  in
  check_lines "R6 lines" [ 3; 4; 5 ] (lines_of E.Partial_fun in_lib);
  let outside_lib = E.lint_file (fixture "bad_partial.ml") in
  check_int "R6 is lib-only" 0 (count E.Partial_fun outside_lib)

(* ---- R7 ---- *)

let test_wallclock () =
  let fs = E.lint_file (fixture "bad_wallclock.ml") in
  check_lines "R7 lines" [ 3; 4; 5 ] (lines_of E.Wallclock fs);
  check_int "nothing else" 3 (List.length fs);
  (* R7 applies everywhere, including lib/ and the executables... *)
  let in_lib =
    E.lint_file ~relpath:"lib/simulator/bad_wallclock.ml"
      (fixture "bad_wallclock.ml")
  in
  check_int "flagged in lib too" 3 (count E.Wallclock in_lib);
  let in_bench =
    E.lint_file ~relpath:"bench/bad_wallclock.ml" (fixture "bad_wallclock.ml")
  in
  check_int "flagged in bench" 3 (count E.Wallclock in_bench);
  (* ...except lib/obs/, the sanctioned home of the clock. *)
  let exempt =
    E.lint_file ~relpath:"lib/obs/clock.ml" (fixture "bad_wallclock.ml")
  in
  check_int "lib/obs is exempt" 0 (count E.Wallclock exempt)

(* ---- R8 ---- *)

let test_domain () =
  let fs = E.lint_file (fixture "bad_domain.ml") in
  check_lines "R8 lines" [ 3; 4; 5 ] (lines_of E.Domain_containment fs);
  check_int "Domain.self not flagged" 3 (List.length fs);
  (* R8 applies everywhere outside lib/exec/, including lib/ and tests... *)
  let in_lib =
    E.lint_file ~relpath:"lib/simulator/bad_domain.ml" (fixture "bad_domain.ml")
  in
  check_int "flagged in lib too" 3 (count E.Domain_containment in_lib);
  (* ...except lib/exec/, the sanctioned home of parallelism. *)
  let exempt =
    E.lint_file ~relpath:"lib/exec/pool.ml" (fixture "bad_domain.ml")
  in
  check_int "lib/exec is exempt" 0 (count E.Domain_containment exempt)

(* ---- clean corpus ---- *)

let test_clean () =
  let fs = E.lint_file ~relpath:"lib/core/clean.ml" (fixture "clean.ml") in
  check_int "clean file has no findings" 0 (List.length fs)

(* ---- suppressions ---- *)

let test_suppressions () =
  let fs = E.lint_file (fixture "suppressed.ml") in
  check_lines "only the unsuppressed site survives" [ 15 ]
    (List.map (fun f -> f.E.line) fs);
  check_int "and it is R1" 1 (count E.Float_eq fs)

(* ---- rendering ---- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_rendering () =
  let fs = E.lint_file (fixture "bad_float_eq.ml") in
  let text =
    match fs with f :: _ -> E.render_finding f | [] -> Alcotest.fail "no findings"
  in
  Alcotest.(check bool)
    "text leads with file:line:col and rule tag" true
    (contains "bad_float_eq.ml:3:" text && contains "[R1 float-eq]" text);
  let json = E.render_json fs in
  Alcotest.(check bool) "json has rule ids" true (contains "\"rule\":\"R1\"" json);
  Alcotest.(check bool) "json has slugs" true (contains "\"slug\":\"float-eq\"" json);
  Alcotest.(check bool) "json has lines" true (contains "\"line\":3" json)

(* ---- rule token parsing ---- *)

let test_rule_tokens () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("id round-trips: " ^ E.rule_id r)
        true
        (E.rule_of_token (E.rule_id r) = Some r
        && E.rule_of_token (E.rule_slug r) = Some r))
    E.all_rules;
  Alcotest.(check bool) "unknown token" true (E.rule_of_token "bogus" = None)

(* ---- the executable: exit codes over the corpus ---- *)

let divlint_exe = "../tools/lint/divlint.exe"

let run_divlint args =
  Sys.command (Filename.quote_command divlint_exe args ~stdout:"/dev/null")

let test_exit_codes () =
  check_int "known-bad corpus exits 1" 1
    (run_divlint [ fixture "bad_float_eq.ml" ]);
  check_int "clean file exits 0" 0 (run_divlint [ fixture "clean.ml" ])

let () =
  Alcotest.run "divlint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 float-eq" `Quick test_float_eq;
          Alcotest.test_case "R2 random" `Quick test_random;
          Alcotest.test_case "R3 float-sum" `Quick test_float_sum;
          Alcotest.test_case "R4 missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "R5 print" `Quick test_print;
          Alcotest.test_case "R6 partial" `Quick test_partial;
          Alcotest.test_case "R7 wallclock" `Quick test_wallclock;
          Alcotest.test_case "R8 domain-containment" `Quick test_domain;
          Alcotest.test_case "clean corpus" `Quick test_clean;
        ] );
      ( "suppressions",
        [ Alcotest.test_case "comment handling" `Quick test_suppressions ] );
      ( "output",
        [
          Alcotest.test_case "text and json" `Quick test_rendering;
          Alcotest.test_case "rule tokens" `Quick test_rule_tokens;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
    ]
