(* divlint against its fixture corpus: each rule on known-bad and
   known-clean snippets, rule scoping by path, suppression comments, the
   project-wide analysis (R9-R11) over its own corpus, and the CLI's exit
   code / JSON / SARIF output. *)

module E = Divlint_lib.Engine
module A = Divlint_lib.Analysis
module J = Obs.Json

let fixtures_dir = "../tools/lint/fixtures"
let fixture name = Filename.concat fixtures_dir name
let project_dir = Filename.concat fixtures_dir "project"
let in_file name (f : E.finding) = Filename.basename f.E.file = name

let lines_of rule findings =
  List.filter_map
    (fun f -> if f.E.rule = rule then Some f.E.line else None)
    findings

let count rule findings = List.length (lines_of rule findings)

let check_lines = Alcotest.(check (list int))
let check_int = Alcotest.(check int)

(* ---- R1 ---- *)

let test_float_eq () =
  let fs = E.lint_file (fixture "bad_float_eq.ml") in
  check_lines "R1 lines" [ 3; 4; 5 ] (lines_of E.Float_eq fs);
  check_int "nothing else" 3 (List.length fs)

(* ---- R2 ---- *)

let test_random () =
  let fs = E.lint_file (fixture "bad_random.ml") in
  check_lines "R2 lines" [ 3; 4; 5 ] (lines_of E.Random_use fs);
  let exempt =
    E.lint_file ~relpath:"lib/numerics/rng.ml" (fixture "bad_random.ml")
  in
  check_int "rng.ml is exempt" 0 (count E.Random_use exempt)

(* ---- R3 ---- *)

let test_float_sum () =
  let fs = E.lint_file (fixture "bad_float_sum.ml") in
  check_lines "R3 lines" [ 3; 4; 5 ] (lines_of E.Float_sum fs);
  check_int "int fold not flagged" 3 (List.length fs)

(* ---- R4 ---- *)

let test_missing_mli () =
  let bad =
    E.lint_file ~relpath:"lib/core/bad_no_mli.ml" (fixture "bad_no_mli.ml")
  in
  check_int "missing mli flagged" 1 (count E.Missing_mli bad);
  let with_mli =
    E.lint_file ~relpath:"lib/core/clean.ml" (fixture "clean.ml")
  in
  check_int "present mli accepted" 0 (count E.Missing_mli with_mli);
  let outside_lib = E.lint_file (fixture "bad_no_mli.ml") in
  check_int "R4 is lib-only" 0 (count E.Missing_mli outside_lib)

(* ---- R5 ---- *)

let test_print () =
  let in_lib =
    E.lint_file ~relpath:"lib/core/bad_print.ml" (fixture "bad_print.ml")
  in
  check_lines "R5 lines" [ 3; 4; 5 ] (lines_of E.Print_effect in_lib);
  let in_report =
    E.lint_file ~relpath:"lib/report/bad_print.ml" (fixture "bad_print.ml")
  in
  check_int "lib/report may print" 0 (count E.Print_effect in_report);
  let outside_lib = E.lint_file (fixture "bad_print.ml") in
  check_int "R5 is lib-only" 0 (count E.Print_effect outside_lib)

(* ---- R6 ---- *)

let test_partial () =
  let in_lib =
    E.lint_file ~relpath:"lib/core/bad_partial.ml" (fixture "bad_partial.ml")
  in
  check_lines "R6 lines" [ 3; 4; 5 ] (lines_of E.Partial_fun in_lib);
  let outside_lib = E.lint_file (fixture "bad_partial.ml") in
  check_int "R6 is lib-only" 0 (count E.Partial_fun outside_lib)

(* ---- R7 ---- *)

let test_wallclock () =
  let fs = E.lint_file (fixture "bad_wallclock.ml") in
  check_lines "R7 lines" [ 3; 4; 5 ] (lines_of E.Wallclock fs);
  check_int "nothing else" 3 (List.length fs);
  (* R7 applies everywhere, including lib/ and the executables... *)
  let in_lib =
    E.lint_file ~relpath:"lib/simulator/bad_wallclock.ml"
      (fixture "bad_wallclock.ml")
  in
  check_int "flagged in lib too" 3 (count E.Wallclock in_lib);
  let in_bench =
    E.lint_file ~relpath:"bench/bad_wallclock.ml" (fixture "bad_wallclock.ml")
  in
  check_int "flagged in bench" 3 (count E.Wallclock in_bench);
  (* ...except lib/obs/, the sanctioned home of the clock. *)
  let exempt =
    E.lint_file ~relpath:"lib/obs/clock.ml" (fixture "bad_wallclock.ml")
  in
  check_int "lib/obs is exempt" 0 (count E.Wallclock exempt)

(* ---- R8 ---- *)

let test_domain () =
  let fs = E.lint_file (fixture "bad_domain.ml") in
  check_lines "R8 lines" [ 3; 4; 5 ] (lines_of E.Domain_containment fs);
  check_int "Domain.self not flagged" 3 (List.length fs);
  (* R8 applies everywhere outside lib/exec/, including lib/ and tests... *)
  let in_lib =
    E.lint_file ~relpath:"lib/simulator/bad_domain.ml" (fixture "bad_domain.ml")
  in
  check_int "flagged in lib too" 3 (count E.Domain_containment in_lib);
  (* ...except lib/exec/, the sanctioned home of parallelism. *)
  let exempt =
    E.lint_file ~relpath:"lib/exec/pool.ml" (fixture "bad_domain.ml")
  in
  check_int "lib/exec is exempt" 0 (count E.Domain_containment exempt)

(* ---- clean corpus ---- *)

let test_clean () =
  let fs = E.lint_file ~relpath:"lib/core/clean.ml" (fixture "clean.ml") in
  check_int "clean file has no findings" 0 (List.length fs)

(* ---- suppressions ---- *)

let test_suppressions () =
  let fs = E.lint_file (fixture "suppressed.ml") in
  check_lines "only the unsuppressed site survives" [ 15 ]
    (List.map (fun f -> f.E.line) fs);
  check_int "and it is R1" 1 (count E.Float_eq fs)

(* ---- W1: unused suppressions ---- *)

let test_unused_suppression () =
  let fs = E.lint_file (fixture "unused_suppression.ml") in
  check_lines "W1 at the stale comment" [ 3 ]
    (lines_of E.Unused_suppression fs);
  let silenced = E.lint_file (fixture "suppressed_unused.ml") in
  check_int "meta-suppression silences the W1" 0 (List.length silenced);
  (* a project-rule suppression must not be judged stale by the per-file
     pass — only the project pass can tell whether R9-R11 fire *)
  let cross = E.lint_file (Filename.concat project_dir "driver.ml") in
  check_int "cross-mode suppressions left alone" 0
    (count E.Unused_suppression cross)

(* ---- rule scoping table ---- *)

let test_exemption_table () =
  let applies = E.rule_applies in
  Alcotest.(check bool) "R2 exempt in rng.ml" false
    (applies E.Random_use "lib/numerics/rng.ml");
  Alcotest.(check bool) "R2 applies elsewhere in lib" true
    (applies E.Random_use "lib/core/model.ml");
  Alcotest.(check bool) "R5 exempt under lib/report/" false
    (applies E.Print_effect "lib/report/tables.ml");
  Alcotest.(check bool) "R5 lib-only" false (applies E.Print_effect "bench/main.ml");
  Alcotest.(check bool) "R7 exempt under lib/obs/" false
    (applies E.Wallclock "lib/obs/clock.ml");
  Alcotest.(check bool) "R8 exempt under lib/exec/" false
    (applies E.Domain_containment "lib/exec/pool.ml");
  Alcotest.(check bool) "R9 exempt under lib/exec/ too" false
    (applies E.Shared_mutable_escape "lib/exec/pool.ml");
  Alcotest.(check bool) "R9 applies in lib/obs/" true
    (applies E.Shared_mutable_escape "lib/obs/trace.ml");
  Alcotest.(check bool) "R10 applies everywhere" true
    (applies E.Rng_discipline "test/test_exec.ml");
  (* the table is the single source of truth: the lib/exec row carries
     both the domain-containment and shared-mutable exemptions *)
  let exec_rules = E.exempt_rules "lib/exec/exec.ml" in
  Alcotest.(check bool) "table row for lib/exec" true
    (List.mem E.Domain_containment exec_rules
    && List.mem E.Shared_mutable_escape exec_rules);
  Alcotest.(check bool) "exact-path row matches only that file" true
    (E.exempt_rules "lib/numerics/rng.ml" = [ E.Random_use ]
    && E.exempt_rules "lib/numerics/rng_extra.ml" = [])

(* ---- project analysis: R9 ---- *)

let test_shared_mutable () =
  let r = A.analyze_paths [ project_dir ] in
  let r9 =
    List.filter (fun f -> f.E.rule = E.Shared_mutable_escape) r.A.res_findings
  in
  check_int "three unprotected writes" 3 (List.length r9);
  Alcotest.(check bool) "direct qualified write flagged" true
    (List.exists (fun f -> in_file "driver.ml" f && f.E.line = 8) r9);
  Alcotest.(check bool) "cross-module ref write flagged at its site" true
    (List.exists (fun f -> in_file "store.ml" f && f.E.line = 16) r9);
  Alcotest.(check bool) "cross-module container write flagged" true
    (List.exists (fun f -> in_file "store.ml" f && f.E.line = 19) r9);
  (* the cross-module case is invisible to any single-file pass: the same
     analysis over store.ml alone sees an ordinary function mutating an
     ordinary ref and reports nothing *)
  let alone = A.analyze_paths [ Filename.concat project_dir "store.ml" ] in
  check_int "store.ml alone is clean" 0 (List.length alone.A.res_findings)

(* ---- project analysis: R10 ---- *)

let test_rng_discipline () =
  let r = A.analyze_paths [ project_dir ] in
  let r10 =
    List.filter (fun f -> f.E.rule = E.Rng_discipline) r.A.res_findings
  in
  check_int "two undisciplined draws" 2 (List.length r10);
  Alcotest.(check bool) "module-level stream draw flagged at its site" true
    (List.exists (fun f -> in_file "rng_bad.ml" f && f.E.line = 7) r10);
  Alcotest.(check bool) "captured parent stream flagged" true
    (List.exists (fun f -> in_file "rng_bad.ml" f && f.E.line = 13) r10);
  let good = A.analyze_paths [ Filename.concat project_dir "rng_good.ml" ] in
  check_int "split substreams pass" 0 (List.length good.A.res_findings)

(* ---- project analysis: R11 ---- *)

let test_nondet_merge () =
  let r = A.analyze_paths [ project_dir ] in
  let r11 =
    List.filter (fun f -> f.E.rule = E.Nondet_merge) r.A.res_findings
  in
  check_int "two nondeterministic merges" 2 (List.length r11);
  Alcotest.(check bool) "completion-order accumulator flagged" true
    (List.exists (fun f -> in_file "merge_bad.ml" f && f.E.line = 5) r11);
  Alcotest.(check bool) "hash-order merge flagged" true
    (List.exists (fun f -> in_file "merge_bad.ml" f && f.E.line = 13) r11);
  let good = A.analyze_paths [ Filename.concat project_dir "merge_good.ml" ] in
  check_int "index-order merge and slice writes pass" 0
    (List.length good.A.res_findings)

(* ---- project analysis: suppressions and stats ---- *)

let test_project_suppressions () =
  let r = A.analyze_paths [ project_dir ] in
  check_int "seven findings survive over the corpus" 7
    (List.length r.A.res_findings);
  let dropped rule name =
    List.exists
      (fun f -> f.E.rule = rule && in_file name f)
      r.A.res_suppressed
  in
  Alcotest.(check bool) "R9 suppressible" true
    (dropped E.Shared_mutable_escape "driver.ml");
  Alcotest.(check bool) "R10 suppressible" true
    (dropped E.Rng_discipline "rng_bad.ml");
  Alcotest.(check bool) "R11 suppressible" true
    (dropped E.Nondet_merge "merge_bad.ml");
  (* every corpus suppression matched something, so no W1 noise *)
  check_int "no stale suppressions in the corpus" 0
    (count E.Unused_suppression r.A.res_findings)

let test_project_stats () =
  let r = A.analyze_paths [ project_dir ] in
  check_int "six corpus files scanned" 6 r.A.res_stats.A.st_files;
  Alcotest.(check bool) "functions harvested" true
    (r.A.res_stats.A.st_functions > 20);
  Alcotest.(check bool) "shard-reachable functions counted" true
    (r.A.res_stats.A.st_reachable > 0);
  (* the deliberately-bad corpus must never leak into a project scan *)
  check_int "fixtures directories are excluded" 0
    (List.length (A.collect [] fixtures_dir))

(* ---- exhaustiveness: every rule has a firing and a suppressed fixture ---- *)

let test_exhaustiveness () =
  let per_file =
    Sys.readdir fixtures_dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".ml")
    |> List.map (fun n ->
           E.lint_source_full
             ~relpath:("lib/core/" ^ n)
             ~path:(fixture n)
             (E.read_file (fixture n)))
  in
  let proj = A.analyze_paths [ project_dir ] in
  let kept =
    List.concat_map (fun (o : E.outcome) -> o.kept) per_file
    @ proj.A.res_findings
  in
  let dropped =
    List.concat_map (fun (o : E.outcome) -> o.dropped) per_file
    @ proj.A.res_suppressed
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (E.rule_id r ^ " has a firing fixture")
        true
        (List.exists (fun f -> f.E.rule = r) kept);
      Alcotest.(check bool)
        (E.rule_id r ^ " has a suppressed fixture")
        true
        (List.exists (fun f -> f.E.rule = r) dropped))
    E.all_rules

(* ---- rendering ---- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_rendering () =
  let fs = E.lint_file (fixture "bad_float_eq.ml") in
  let text =
    match fs with f :: _ -> E.render_finding f | [] -> Alcotest.fail "no findings"
  in
  Alcotest.(check bool)
    "text leads with file:line:col and rule tag" true
    (contains "bad_float_eq.ml:3:" text && contains "[R1 float-eq]" text);
  let json = E.render_json fs in
  Alcotest.(check bool) "json has rule ids" true (contains "\"rule\":\"R1\"" json);
  Alcotest.(check bool) "json has slugs" true (contains "\"slug\":\"float-eq\"" json);
  Alcotest.(check bool) "json has lines" true (contains "\"line\":3" json)

(* ---- SARIF ---- *)

let test_sarif () =
  let fs = E.lint_file (fixture "bad_float_eq.ml") in
  let sarif = E.render_sarif fs in
  let doc =
    match J.parse sarif with
    | Ok d -> d
    | Error e -> Alcotest.fail ("SARIF does not parse as JSON: " ^ e)
  in
  let get name o =
    match o with
    | J.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> v
        | None -> Alcotest.fail ("SARIF missing field " ^ name))
    | _ -> Alcotest.fail ("SARIF field " ^ name ^ ": not an object")
  in
  Alcotest.(check bool) "version 2.1.0" true
    (get "version" doc = J.String "2.1.0");
  Alcotest.(check bool) "$schema present" true
    (match get "$schema" doc with J.String _ -> true | _ -> false);
  let run =
    match get "runs" doc with
    | J.List [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one run"
  in
  let driver = get "driver" (get "tool" run) in
  Alcotest.(check bool) "driver is divlint" true
    (get "name" driver = J.String "divlint");
  let rules =
    match get "rules" driver with
    | J.List l -> l
    | _ -> Alcotest.fail "rules is not a list"
  in
  check_int "rule metadata covers every rule" (List.length E.all_rules)
    (List.length rules);
  let results =
    match get "results" run with
    | J.List l -> l
    | _ -> Alcotest.fail "results is not a list"
  in
  check_int "one result per finding" (List.length fs) (List.length results);
  match results with
  | first :: _ ->
      Alcotest.(check bool) "ruleId" true (get "ruleId" first = J.String "R1");
      Alcotest.(check bool) "level" true (get "level" first = J.String "error");
      let region =
        match get "locations" first with
        | J.List [ l ] -> get "region" (get "physicalLocation" l)
        | _ -> Alcotest.fail "expected one location"
      in
      Alcotest.(check bool) "startLine" true (get "startLine" region = J.Int 3);
      (match get "startColumn" region with
      | J.Int c -> Alcotest.(check bool) "column is 1-based" true (c >= 1)
      | _ -> Alcotest.fail "startColumn is not an int")
  | [] -> Alcotest.fail "no results"

(* ---- rule token parsing ---- *)

let test_rule_tokens () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("id round-trips: " ^ E.rule_id r)
        true
        (E.rule_of_token (E.rule_id r) = Some r
        && E.rule_of_token (E.rule_slug r) = Some r))
    E.all_rules;
  Alcotest.(check bool) "unknown token" true (E.rule_of_token "bogus" = None)

(* ---- the executable: exit codes over the corpus ---- *)

let divlint_exe = "../tools/lint/divlint.exe"

let run_divlint args =
  Sys.command (Filename.quote_command divlint_exe args ~stdout:"/dev/null")

let test_exit_codes () =
  check_int "known-bad corpus exits 1" 1
    (run_divlint [ fixture "bad_float_eq.ml" ]);
  check_int "clean file exits 0" 0 (run_divlint [ fixture "clean.ml" ]);
  check_int "project mode over the bad corpus exits 1" 1
    (run_divlint [ "--project"; project_dir ]);
  check_int "project mode over the good files exits 0" 0
    (run_divlint
       [
         "--project";
         Filename.concat project_dir "rng_good.ml";
         Filename.concat project_dir "merge_good.ml";
       ])

let () =
  Alcotest.run "divlint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 float-eq" `Quick test_float_eq;
          Alcotest.test_case "R2 random" `Quick test_random;
          Alcotest.test_case "R3 float-sum" `Quick test_float_sum;
          Alcotest.test_case "R4 missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "R5 print" `Quick test_print;
          Alcotest.test_case "R6 partial" `Quick test_partial;
          Alcotest.test_case "R7 wallclock" `Quick test_wallclock;
          Alcotest.test_case "R8 domain-containment" `Quick test_domain;
          Alcotest.test_case "clean corpus" `Quick test_clean;
        ] );
      ( "project",
        [
          Alcotest.test_case "R9 shared-mutable-escape" `Quick
            test_shared_mutable;
          Alcotest.test_case "R10 rng-discipline" `Quick test_rng_discipline;
          Alcotest.test_case "R11 nondeterministic-merge" `Quick
            test_nondet_merge;
          Alcotest.test_case "project suppressions" `Quick
            test_project_suppressions;
          Alcotest.test_case "scan-surface stats" `Quick test_project_stats;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "comment handling" `Quick test_suppressions;
          Alcotest.test_case "W1 unused suppressions" `Quick
            test_unused_suppression;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "exemption table" `Quick test_exemption_table;
          Alcotest.test_case "every rule has fixtures" `Quick
            test_exhaustiveness;
        ] );
      ( "output",
        [
          Alcotest.test_case "text and json" `Quick test_rendering;
          Alcotest.test_case "sarif" `Quick test_sarif;
          Alcotest.test_case "rule tokens" `Quick test_rule_tokens;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
    ]
