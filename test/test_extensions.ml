(* Tests for the model extensions (forced diversity, correlated faults,
   overlap, Bayesian assessment). *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:31337

let base_universe () =
  Core.Universe.of_pairs [ (0.3, 0.1); (0.2, 0.2); (0.4, 0.05); (0.1, 0.15) ]

(* ------------------------------------------------------------------ *)
(* Forced                                                              *)
(* ------------------------------------------------------------------ *)

let test_forced_of_universe_matches_core () =
  let u = base_universe () in
  let f = Extensions.Forced.of_universe u in
  check_close "mu_a = mu1" (Core.Moments.mu1 u) (Extensions.Forced.mu_a f);
  check_close "mu pair = mu2" (Core.Moments.mu2 u) (Extensions.Forced.mu_pair f);
  check_close "var pair = var2" (Core.Moments.var2 u) (Extensions.Forced.var_pair f);
  check_close "no common fault" (Core.Fault_count.p_n2_zero u)
    (Extensions.Forced.p_no_common_fault f);
  check_close "risk ratio" (Core.Fault_count.risk_ratio u)
    (Extensions.Forced.risk_ratio_vs_a f);
  check_close "gain of unforced is 1" 1.0 (Extensions.Forced.divergence_gain f)

let test_forced_hand_example () =
  let f =
    Extensions.Forced.create ~qs:[| 0.1; 0.2 |] ~pa:[| 0.5; 0.1 |]
      ~pb:[| 0.1; 0.5 |]
  in
  check_close "mu_a" ((0.5 *. 0.1) +. (0.1 *. 0.2)) (Extensions.Forced.mu_a f);
  check_close "mu_b" ((0.1 *. 0.1) +. (0.5 *. 0.2)) (Extensions.Forced.mu_b f);
  check_close "mu pair" ((0.05 *. 0.1) +. (0.05 *. 0.2))
    (Extensions.Forced.mu_pair f);
  check_close "no common" (0.95 *. 0.95) (Extensions.Forced.p_no_common_fault f)

let test_forced_complementary_preserves_a () =
  let rng = rng0 () in
  let u = base_universe () in
  let f = Extensions.Forced.complementary rng u ~strength:0.7 in
  check_close "channel A unchanged" (Core.Moments.mu1 u) (Extensions.Forced.mu_a f);
  (* strength 0 keeps B = A exactly *)
  let f0 = Extensions.Forced.complementary rng u ~strength:0.0 in
  check_close "strength 0: B = A" (Extensions.Forced.mu_a f0)
    (Extensions.Forced.mu_b f0)

let test_forced_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Forced.create: vector length mismatch") (fun () ->
      ignore (Extensions.Forced.create ~qs:[| 0.1 |] ~pa:[| 0.1; 0.2 |] ~pb:[| 0.1 |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Forced.create: pa outside [0, 1]") (fun () ->
      ignore (Extensions.Forced.create ~qs:[| 0.1 |] ~pa:[| 1.5 |] ~pb:[| 0.1 |]))

(* ------------------------------------------------------------------ *)
(* Correlated                                                          *)
(* ------------------------------------------------------------------ *)

let shock_model ?(shock_prob = 0.2) ?(lift = 2.0) () =
  Extensions.Correlated.of_universe_with_shock (base_universe ())
    ~cluster_size:2 ~shock_prob ~lift

let test_correlated_marginals_preserved () =
  let m = shock_model () in
  let u = Extensions.Correlated.marginal_universe m in
  let base = base_universe () in
  check_close ~eps:1e-12 "mu1 preserved" (Core.Moments.mu1 base)
    (Core.Moments.mu1 u);
  check_close ~eps:1e-12 "exact mu1 equals marginal mu1" (Core.Moments.mu1 base)
    (Extensions.Correlated.mu1 m);
  check_close ~eps:1e-12 "mu2 preserved" (Core.Moments.mu2 base)
    (Extensions.Correlated.mu2 m)

let test_correlated_zero_shock_is_independent () =
  let m = shock_model ~shock_prob:0.0 () in
  let base = base_universe () in
  check_close ~eps:1e-12 "var1" (Core.Moments.var1 base)
    (Extensions.Correlated.var1 m);
  check_close ~eps:1e-12 "P(N1=0)" (Core.Fault_count.p_n1_zero base)
    (Extensions.Correlated.p_n1_zero m);
  check_close ~eps:1e-12 "P(N2=0)" (Core.Fault_count.p_n2_zero base)
    (Extensions.Correlated.p_n2_zero m);
  check_close ~eps:1e-12 "risk ratio" (Core.Fault_count.risk_ratio base)
    (Extensions.Correlated.risk_ratio m)

let test_correlated_positive_correlation_raises_variance () =
  let independent = shock_model ~shock_prob:0.0 () in
  let correlated = shock_model ~shock_prob:0.3 ~lift:2.2 () in
  Alcotest.(check bool) "variance grows with positive correlation" true
    (Extensions.Correlated.var1 correlated > Extensions.Correlated.var1 independent)

let test_correlated_analytic_vs_monte_carlo () =
  let rng = rng0 () in
  let m = shock_model ~shock_prob:0.25 ~lift:2.0 () in
  let n = 60_000 in
  let n1_zero = ref 0 in
  let pfd_acc = Numerics.Welford.create () in
  for _ = 1 to n do
    let version_pfd, _ = Extensions.Correlated.sample_pair_pfd rng m in
    Numerics.Welford.add pfd_acc version_pfd;
    if version_pfd = 0.0 then incr n1_zero
  done;
  check_close ~eps:0.01 "MC P(N1=0)"
    (Extensions.Correlated.p_n1_zero m)
    (float_of_int !n1_zero /. float_of_int n);
  check_close ~eps:0.003 "MC mean PFD" (Extensions.Correlated.mu1 m)
    (Numerics.Welford.mean pfd_acc);
  check_close ~eps:0.005 "MC std PFD" (Extensions.Correlated.sigma1 m)
    (Numerics.Welford.std pfd_acc)

let test_correlated_pair_mc () =
  let rng = rng0 () in
  let m = shock_model ~shock_prob:0.25 ~lift:2.0 () in
  let n = 60_000 in
  let pair_zero = ref 0 in
  let pair_acc = Numerics.Welford.create () in
  for _ = 1 to n do
    let _, pair_pfd = Extensions.Correlated.sample_pair_pfd rng m in
    Numerics.Welford.add pair_acc pair_pfd;
    if pair_pfd = 0.0 then incr pair_zero
  done;
  check_close ~eps:0.01 "MC P(N2=0)"
    (Extensions.Correlated.p_n2_zero m)
    (float_of_int !pair_zero /. float_of_int n);
  check_close ~eps:0.002 "MC pair mean = mu2" (Extensions.Correlated.mu2 m)
    (Numerics.Welford.mean pair_acc)

let test_correlated_fault_free_risk_ratio () =
  (* Zero-denominator path: a process that can introduce no fault has
     P(N1 > 0) = 0, so the eq. (10) ratio is undefined — the guard must
     return nan rather than dividing by (near-)zero. *)
  let m =
    Extensions.Correlated.create
      [|
        { Extensions.Correlated.shock_prob = 0.3;
          faults = [| (0.0, 0.0, 0.1); (0.0, 0.0, 0.2) |] };
      |]
  in
  check_close ~eps:0.0 "P(N1>0) is exactly zero" 0.0
    (Extensions.Correlated.p_n1_pos m);
  Alcotest.(check bool) "risk ratio is nan, not a division blow-up" true
    (Float.is_nan (Extensions.Correlated.risk_ratio m))

let test_correlated_validation () =
  Alcotest.(check bool) "lift too large raises" true
    (try
       ignore
         (Extensions.Correlated.of_universe_with_shock
            (Core.Universe.of_pairs [ (0.5, 0.1) ])
            ~cluster_size:1 ~shock_prob:0.9 ~lift:3.0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Overlap                                                             *)
(* ------------------------------------------------------------------ *)

let overlapping_space rng =
  Demandspace.Genspace.overlapping_space rng ~width:24 ~height:24 ~n_faults:8
    ~max_extent:7 ~p_lo:0.2 ~p_hi:0.6
    ~profile:(Demandspace.Profile.uniform ~size:(24 * 24))

let test_overlap_analysis_mu1_pessimistic () =
  let rng = rng0 () in
  for i = 0 to 9 do
    let s = overlapping_space (Numerics.Rng.split rng ~index:i) in
    let a = Extensions.Overlap.analyse s in
    if a.Extensions.Overlap.mu1_pessimism < 1.0 -. 1e-12 then
      Alcotest.fail "additive mu1 below exact (impossible)"
  done

let test_overlap_disjoint_is_exact () =
  let rng = rng0 () in
  let s =
    Demandspace.Genspace.disjoint_space rng ~width:24 ~height:24 ~n_faults:8
      ~max_extent:4 ~p_lo:0.2 ~p_hi:0.6
      ~profile:(Demandspace.Profile.uniform ~size:(24 * 24))
  in
  let a = Extensions.Overlap.analyse s in
  check_close ~eps:1e-12 "no overlap: additive mu1 exact" 1.0
    a.Extensions.Overlap.mu1_pessimism;
  check_close ~eps:1e-12 "no overlap: additive mu2 exact" 1.0
    a.Extensions.Overlap.mu2_pessimism;
  Alcotest.(check int) "no overlapping pairs" 0 a.Extensions.Overlap.overlap_pairs

let test_overlap_merged_universe () =
  let profile = Demandspace.Profile.uniform ~size:100 in
  let r1 = Demandspace.Region.interval ~space_size:100 ~lo:0 ~hi:9 in
  let r2 = Demandspace.Region.interval ~space_size:100 ~lo:5 ~hi:14 in
  let r3 = Demandspace.Region.interval ~space_size:100 ~lo:50 ~hi:54 in
  let s =
    Demandspace.Space.create ~profile
      ~faults:[| (r1, 0.5); (r2, 0.5); (r3, 0.3) |]
  in
  let u = Extensions.Overlap.merged_universe s in
  Alcotest.(check int) "two merged faults" 2 (Core.Universe.size u);
  (* the merged group: union measure 15/100, p = 1 - 0.25 = 0.75 *)
  let qs = Core.Universe.qs u in
  let ps = Core.Universe.ps u in
  Array.sort compare qs;
  Array.sort compare ps;
  check_close ~eps:1e-12 "lone region q" 0.05 qs.(0);
  check_close ~eps:1e-12 "merged union q" 0.15 qs.(1);
  check_close ~eps:1e-12 "lone region p" 0.3 ps.(0);
  check_close ~eps:1e-12 "merged p = 1-(1-p1)(1-p2)" 0.75 ps.(1)

let test_overlap_mc_pessimism () =
  let rng = rng0 () in
  let s = overlapping_space (Numerics.Rng.split rng ~index:50) in
  let ratio = Extensions.Overlap.monte_carlo_pessimism rng s ~replications:3000 in
  Alcotest.(check bool) "mean additive/true ratio >= 1" true (ratio >= 1.0 -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Bayes                                                               *)
(* ------------------------------------------------------------------ *)

let prior () =
  Extensions.Bayes.of_mass [ (0.0, 0.3); (1e-4, 0.3); (1e-3, 0.2); (1e-2, 0.2) ]

let test_bayes_prior_statistics () =
  let t = prior () in
  check_close ~eps:1e-12 "prior mean"
    ((0.3 *. 1e-4) +. (0.2 *. 1e-3) +. (0.2 *. 1e-2))
    (Extensions.Bayes.mean t);
  check_close "prior P(<=1e-3)" 0.8 (Extensions.Bayes.prob_at_most t 1e-3)

let test_bayes_failure_free_shifts_down () =
  let t = prior () in
  let post = Extensions.Bayes.observe_failure_free t ~demands:1000 in
  Alcotest.(check bool) "posterior mean falls" true
    (Extensions.Bayes.mean post < Extensions.Bayes.mean t);
  Alcotest.(check bool) "confidence in bound rises" true
    (Extensions.Bayes.prob_at_most post 1e-3
    > Extensions.Bayes.prob_at_most t 1e-3)

let test_bayes_exact_update () =
  (* Two-point prior: posterior odds after t failure-free demands are
     prior odds times ((1-a)/(1-b))^t — check against the closed form. *)
  let a = 1e-3 and b = 1e-2 in
  let t = Extensions.Bayes.of_mass [ (a, 0.5); (b, 0.5) ] in
  let demands = 500 in
  let post = Extensions.Bayes.observe_failure_free t ~demands in
  let w_a = (1.0 -. a) ** float_of_int demands in
  let w_b = (1.0 -. b) ** float_of_int demands in
  let expected = w_a /. (w_a +. w_b) in
  check_close ~eps:1e-10 "two-point posterior" expected
    (Extensions.Bayes.prob_at_most post a)

let test_bayes_with_failures () =
  let t = Extensions.Bayes.of_mass [ (0.0, 0.5); (1e-2, 0.5) ] in
  let post = Extensions.Bayes.observe t ~demands:100 ~failures:1 in
  (* a failure rules out PFD = 0 entirely *)
  check_close ~eps:1e-12 "failure kills the zero atom" 0.0
    (Extensions.Bayes.prob_at_most post 0.0);
  Alcotest.check_raises "impossible record"
    (Invalid_argument "Bayes.observe: observation impossible under the prior")
    (fun () ->
      ignore
        (Extensions.Bayes.observe
           (Extensions.Bayes.of_mass [ (0.0, 1.0) ])
           ~demands:10 ~failures:1))

let test_bayes_huge_run_no_underflow () =
  let t = prior () in
  let post = Extensions.Bayes.observe_failure_free t ~demands:100_000_000 in
  (* only the PFD=0 atom survives a 10^8 failure-free run *)
  check_close ~eps:1e-9 "mass concentrates at zero" 1.0
    (Extensions.Bayes.prob_at_most post 0.0)

let test_bayes_demands_for_confidence () =
  let t = prior () in
  match
    Extensions.Bayes.demands_for_confidence t ~bound:1e-3 ~confidence:0.95
      ~max_demands:1_000_000
  with
  | None -> Alcotest.fail "confidence should be reachable"
  | Some d ->
      Alcotest.(check bool) "positive demand count" true (d > 0);
      let post = Extensions.Bayes.observe_failure_free t ~demands:d in
      Alcotest.(check bool) "confidence reached at d" true
        (Extensions.Bayes.prob_at_most post 1e-3 >= 0.95);
      let before = Extensions.Bayes.observe_failure_free t ~demands:(d - 1) in
      Alcotest.(check bool) "not reached at d-1" true
        (Extensions.Bayes.prob_at_most before 1e-3 < 0.95)

let test_bayes_trajectory_monotone () =
  let t = prior () in
  let traj =
    Extensions.Bayes.posterior_trajectory t ~bound:1e-3
      ~demand_counts:[| 0; 10; 100; 1000; 10000 |]
  in
  for i = 0 to Array.length traj - 2 do
    Alcotest.(check bool) "failure-free evidence never lowers confidence" true
      (snd traj.(i) <= snd traj.(i + 1) +. 1e-12)
  done

let test_bayes_roundtrip_with_pfd_dist () =
  let u = base_universe () in
  let dist = Core.Pfd_dist.exact_pair u in
  let t = Extensions.Bayes.of_pfd_dist dist in
  check_close ~eps:1e-10 "prior mean = dist mean" (Core.Pfd_dist.mean dist)
    (Extensions.Bayes.mean t);
  check_close ~eps:1e-10 "prior quantile = dist quantile"
    (Core.Pfd_dist.quantile dist 0.9)
    (Extensions.Bayes.quantile t 0.9)

let () =
  Alcotest.run "extensions"
    [
      ( "forced",
        [
          Alcotest.test_case "of_universe = core" `Quick
            test_forced_of_universe_matches_core;
          Alcotest.test_case "hand example" `Quick test_forced_hand_example;
          Alcotest.test_case "complementary" `Quick
            test_forced_complementary_preserves_a;
          Alcotest.test_case "validation" `Quick test_forced_validation;
        ] );
      ( "correlated",
        [
          Alcotest.test_case "marginals preserved" `Quick
            test_correlated_marginals_preserved;
          Alcotest.test_case "zero shock = independent" `Quick
            test_correlated_zero_shock_is_independent;
          Alcotest.test_case "positive correlation raises variance" `Quick
            test_correlated_positive_correlation_raises_variance;
          Alcotest.test_case "analytic vs MC (version)" `Slow
            test_correlated_analytic_vs_monte_carlo;
          Alcotest.test_case "analytic vs MC (pair)" `Slow test_correlated_pair_mc;
          Alcotest.test_case "validation" `Quick test_correlated_validation;
          Alcotest.test_case "fault-free risk ratio" `Quick
            test_correlated_fault_free_risk_ratio;
        ] );
      ( "overlap",
        [
          Alcotest.test_case "mu1 pessimistic" `Quick
            test_overlap_analysis_mu1_pessimistic;
          Alcotest.test_case "disjoint exact" `Quick test_overlap_disjoint_is_exact;
          Alcotest.test_case "merged universe" `Quick test_overlap_merged_universe;
          Alcotest.test_case "MC pessimism" `Slow test_overlap_mc_pessimism;
        ] );
      ( "bayes",
        [
          Alcotest.test_case "prior statistics" `Quick test_bayes_prior_statistics;
          Alcotest.test_case "failure-free shifts down" `Quick
            test_bayes_failure_free_shifts_down;
          Alcotest.test_case "exact two-point update" `Quick test_bayes_exact_update;
          Alcotest.test_case "with failures" `Quick test_bayes_with_failures;
          Alcotest.test_case "huge run, no underflow" `Quick
            test_bayes_huge_run_no_underflow;
          Alcotest.test_case "demands for confidence" `Quick
            test_bayes_demands_for_confidence;
          Alcotest.test_case "trajectory monotone" `Quick test_bayes_trajectory_monotone;
          Alcotest.test_case "pfd_dist roundtrip" `Quick
            test_bayes_roundtrip_with_pfd_dist;
        ] );
    ]
