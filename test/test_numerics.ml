(* Unit and property tests for the numerics substrate. *)

open Numerics

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Rng.create ~seed:12345

(* ------------------------------------------------------------------ *)
(* Kahan                                                               *)
(* ------------------------------------------------------------------ *)

let test_kahan_small_terms () =
  (* 1 + 1e-16 added 10^6 times loses the small terms under naive
     summation; Kahan keeps them. *)
  let acc = Kahan.create () in
  Kahan.add acc 1.0;
  for _ = 1 to 1_000_000 do
    Kahan.add acc 1e-16
  done;
  check_close ~eps:1e-12 "kahan preserves small terms" (1.0 +. 1e-10)
    (Kahan.total acc)

let test_kahan_sum_array () =
  check_close "sum_array" 6.0 (Kahan.sum_array [| 1.0; 2.0; 3.0 |]);
  check_close "sum_list" 6.0 (Kahan.sum_list [ 1.0; 2.0; 3.0 ]);
  check_close "sum_over" 10.0 (Kahan.sum_over 5 float_of_int)

let test_kahan_dot () =
  check_close "dot" 32.0 (Kahan.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  Alcotest.check_raises "dot length mismatch"
    (Invalid_argument "Kahan.dot: length mismatch") (fun () ->
      ignore (Kahan.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_kahan_reset () =
  let acc = Kahan.create () in
  Kahan.add acc 5.0;
  Kahan.reset acc;
  check_close "reset zeroes" 0.0 (Kahan.total acc)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.next_int64 a)
      (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_float_range () =
  let rng = rng0 () in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_float_mean () =
  let rng = rng0 () in
  let acc = Kahan.create () in
  let n = 100_000 in
  for _ = 1 to n do
    Kahan.add acc (Rng.float rng)
  done;
  check_close ~eps:0.01 "uniform mean ~ 0.5" 0.5
    (Kahan.total acc /. float_of_int n)

let test_rng_int_bounds () =
  let rng = rng0 () in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of range"
  done;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = rng0 () in
  let counts = Array.make 5 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      if abs_float (freq -. 0.2) > 0.01 then
        Alcotest.fail (Printf.sprintf "bucket freq %f too far from 0.2" freq))
    counts

let test_rng_bool_extremes () =
  let rng = rng0 () in
  Alcotest.(check bool) "p=0 never true" false (Rng.bool rng ~p:0.0);
  Alcotest.(check bool) "p=1 always true" true (Rng.bool rng ~p:1.0)

let test_rng_bool_frequency () =
  let rng = rng0 () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool rng ~p:0.3 then incr hits
  done;
  check_close ~eps:0.01 "bernoulli frequency" 0.3
    (float_of_int !hits /. float_of_int n)

let test_rng_split_independence () =
  let parent = rng0 () in
  let a = Rng.split parent ~index:0 in
  let b = Rng.split parent ~index:1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "split streams diverge" true (!same < 4)

let test_rng_shuffle_permutation () =
  let rng = rng0 () in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves elements"
    (Array.init 50 (fun i -> i))
    sorted

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_erf_known_values () =
  check_close ~eps:1e-12 "erf 0" 0.0 (Special.erf 0.0);
  check_close ~eps:1e-10 "erf 0.5" 0.5204998778130465 (Special.erf 0.5);
  check_close ~eps:1e-10 "erf 1" 0.8427007929497149 (Special.erf 1.0);
  check_close ~eps:1e-10 "erf 2" 0.9953222650189527 (Special.erf 2.0);
  check_close ~eps:1e-12 "erf 10" 1.0 (Special.erf 10.0)

let test_erf_odd () =
  List.iter
    (fun x ->
      check_close ~eps:1e-13 "erf odd" (-.Special.erf x) (Special.erf (-.x)))
    [ 0.1; 0.5; 1.0; 2.0; 3.5 ]

let test_erfc_known_values () =
  check_close ~eps:1e-12 "erfc 0" 1.0 (Special.erfc 0.0);
  check_close ~eps:1e-16 "erfc 3" 2.209049699858544e-05 (Special.erfc 3.0);
  check_close ~eps:1e-27 "erfc 5" 1.5374597944280347e-12 (Special.erfc 5.0);
  check_close ~eps:1e-11 "erfc -1" (2.0 -. Special.erfc 1.0) (Special.erfc (-1.0))

let test_erf_erfc_complement () =
  List.iter
    (fun x ->
      check_close ~eps:1e-12 "erf + erfc = 1" 1.0
        (Special.erf x +. Special.erfc x))
    [ 0.0; 0.3; 1.0; 1.49; 1.51; 2.5; 4.0 ]

let test_log_gamma () =
  check_close ~eps:1e-10 "log_gamma 5 = log 24" (log 24.0) (Special.log_gamma 5.0);
  check_close ~eps:1e-10 "log_gamma 0.5 = log sqrt(pi)"
    (log (sqrt Float.pi))
    (Special.log_gamma 0.5);
  check_close ~eps:1e-10 "log_gamma 1" 0.0 (Special.log_gamma 1.0)

let test_log_factorial_choose () =
  check_close ~eps:1e-10 "log 5!" (log 120.0) (Special.log_factorial 5);
  check_close ~eps:1e-10 "C(10,3) = 120" (log 120.0) (Special.log_choose 10 3);
  Alcotest.(check (float 0.0)) "choose out of range" neg_infinity
    (Special.log_choose 3 5)

let test_logsumexp () =
  check_close ~eps:1e-12 "logsumexp of equal terms"
    (log 3.0 +. 10.0)
    (Special.logsumexp [| 10.0; 10.0; 10.0 |]);
  Alcotest.(check (float 0.0)) "logsumexp empty-like" neg_infinity
    (Special.logsumexp [| neg_infinity; neg_infinity |])

(* ------------------------------------------------------------------ *)
(* Normal distribution                                                 *)
(* ------------------------------------------------------------------ *)

let test_normal_cdf_known () =
  check_close ~eps:1e-12 "Phi(0)" 0.5 (Normal_dist.cdf 0.0);
  check_close ~eps:1e-9 "Phi(1.96)" 0.9750021048517795 (Normal_dist.cdf 1.96);
  check_close ~eps:1e-9 "Phi(3)" 0.9986501019683699 (Normal_dist.cdf 3.0);
  check_close ~eps:1e-9 "Phi(-1)" 0.15865525393145707 (Normal_dist.cdf (-1.0))

let test_normal_ppf_known () =
  check_close ~eps:1e-9 "ppf 0.99" 2.3263478740408408 (Normal_dist.ppf 0.99);
  check_close ~eps:1e-9 "ppf 0.5" 0.0 (Normal_dist.ppf 0.5);
  check_close ~eps:1e-8 "ppf 0.975" 1.959963984540054 (Normal_dist.ppf 0.975)

let test_normal_ppf_cdf_roundtrip () =
  List.iter
    (fun p ->
      check_close ~eps:1e-11 "cdf(ppf(p)) = p" p
        (Normal_dist.cdf (Normal_dist.ppf p)))
    [ 1e-8; 1e-4; 0.01; 0.2; 0.5; 0.8; 0.99; 0.9999; 1.0 -. 1e-8 ]

let test_normal_location_scale () =
  check_close ~eps:1e-12 "cdf at mu is 0.5" 0.5 (Normal_dist.cdf ~mu:3.0 ~sigma:2.0 3.0);
  check_close ~eps:1e-9 "ppf with mu/sigma"
    (3.0 +. (2.0 *. Normal_dist.ppf 0.9))
    (Normal_dist.ppf ~mu:3.0 ~sigma:2.0 0.9)

let test_normal_sf () =
  List.iter
    (fun x ->
      check_close ~eps:1e-12 "cdf + sf = 1" 1.0
        (Normal_dist.cdf x +. Normal_dist.sf x))
    [ -3.0; 0.0; 1.5; 6.0 ]

let test_normal_pdf_integrates () =
  let xs = Grid.linspace ~lo:(-8.0) ~hi:8.0 ~n:4001 in
  let ys = Array.map (fun x -> Normal_dist.pdf x) xs in
  check_close ~eps:1e-6 "pdf integrates to 1" 1.0 (Grid.trapezoid ~xs ~ys)

let test_normal_sampling_moments () =
  let rng = rng0 () in
  let n = 200_000 in
  let samples = Array.init n (fun _ -> Normal_dist.sample rng ~mu:2.0 ~sigma:3.0 ()) in
  check_close ~eps:0.05 "sample mean" 2.0 (Stats.mean samples);
  check_close ~eps:0.05 "sample std" 3.0 (Stats.std samples)

let test_normal_invalid_args () =
  Alcotest.check_raises "ppf p=0"
    (Invalid_argument "Normal_dist.ppf: p must lie strictly inside (0, 1)")
    (fun () -> ignore (Normal_dist.ppf 0.0));
  Alcotest.check_raises "cdf sigma<=0"
    (Invalid_argument "Normal_dist.cdf: sigma must be positive") (fun () ->
      ignore (Normal_dist.cdf ~sigma:0.0 1.0))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_approx_eq () =
  Alcotest.(check bool) "equal is approx-equal" true (Stats.approx_eq 1.0 1.0);
  Alcotest.(check bool) "within absolute tolerance" true
    (Stats.approx_eq 0.0 1e-13);
  Alcotest.(check bool) "within relative tolerance" true
    (Stats.approx_eq 1e9 (1e9 +. 0.5));
  Alcotest.(check bool) "distinct values differ" false (Stats.approx_eq 1.0 1.1);
  Alcotest.(check bool) "nan equals nothing" false (Stats.approx_eq nan nan);
  Alcotest.(check bool) "0.1+0.2 ~ 0.3 (the R1 poster child)" true
    (Stats.approx_eq (0.1 +. 0.2) 0.3)

let test_stats_is_zero () =
  Alcotest.(check bool) "exact zero" true (Stats.is_zero 0.0);
  Alcotest.(check bool) "negative zero" true (Stats.is_zero (-0.0));
  Alcotest.(check bool) "subnormals count as zero" true (Stats.is_zero 1e-310);
  Alcotest.(check bool) "smallest normal still zero" true
    (Stats.is_zero Float.min_float);
  Alcotest.(check bool) "a tiny probability is NOT zero" false
    (Stats.is_zero 1e-300);
  Alcotest.(check bool) "custom eps" true (Stats.is_zero ~eps:1e-6 1e-7);
  Alcotest.(check bool) "nan is not zero" false (Stats.is_zero nan)

let test_stats_mean_variance () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 (Stats.mean a);
  check_close "population variance" 4.0 (Stats.variance ~bessel:false a);
  check_close ~eps:1e-12 "sample variance" (32.0 /. 7.0) (Stats.variance a)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_close "mean" 2.0 s.Stats.mean;
  check_close "min" 1.0 s.Stats.min;
  check_close "max" 3.0 s.Stats.max;
  check_close "variance" 1.0 s.Stats.variance

let test_stats_quantiles () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "q0" 1.0 (Stats.quantile a 0.0);
  check_close "q1" 4.0 (Stats.quantile a 1.0);
  check_close "median interpolates" 2.5 (Stats.median a);
  check_close "q 1/3" 2.0 (Stats.quantile a (1.0 /. 3.0))

let test_stats_covariance_correlation () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_close ~eps:1e-12 "perfect correlation" 1.0 (Stats.correlation a b);
  let c = [| 8.0; 6.0; 4.0; 2.0 |] in
  check_close ~eps:1e-12 "perfect anticorrelation" (-1.0) (Stats.correlation a c);
  check_close ~eps:1e-12 "cov(a,b) = 2 var(a)"
    (2.0 *. Stats.variance a)
    (Stats.covariance a b)

let test_stats_empirical_cdf () =
  let cdf = Stats.empirical_cdf [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "below support" 0.0 (cdf 0.5);
  check_close "at 2" 0.5 (cdf 2.0);
  check_close "mid-gap" 0.5 (cdf 2.5);
  check_close "above support" 1.0 (cdf 9.0)

let test_stats_wilson () =
  let lo, hi = Stats.proportion_ci ~successes:0 ~trials:100 () in
  Alcotest.(check bool) "zero successes: lo ~ 0" true (lo < 1e-12);
  Alcotest.(check bool) "zero successes: hi small but positive"
    true
    (hi > 0.0 && hi < 0.05);
  let lo2, hi2 = Stats.proportion_ci ~successes:50 ~trials:100 () in
  Alcotest.(check bool) "centred interval contains p-hat" true
    (lo2 < 0.5 && 0.5 < hi2)

(* ------------------------------------------------------------------ *)
(* Welford                                                             *)
(* ------------------------------------------------------------------ *)

let test_welford_matches_stats () =
  let rng = rng0 () in
  let samples = Array.init 5_000 (fun _ -> Rng.float rng) in
  let w = Welford.create () in
  Array.iter (Welford.add w) samples;
  check_close ~eps:1e-10 "welford mean" (Stats.mean samples) (Welford.mean w);
  check_close ~eps:1e-10 "welford variance" (Stats.variance samples)
    (Welford.variance w);
  check_close "welford min" (Array.fold_left min infinity samples)
    (Welford.min_value w)

let test_welford_merge () =
  let rng = rng0 () in
  let a = Array.init 1000 (fun _ -> Rng.float rng) in
  let b = Array.init 700 (fun _ -> Rng.float rng *. 2.0) in
  let wa = Welford.create () and wb = Welford.create () in
  Array.iter (Welford.add wa) a;
  Array.iter (Welford.add wb) b;
  let merged = Welford.merge wa wb in
  let combined = Array.append a b in
  check_close ~eps:1e-10 "merged mean" (Stats.mean combined) (Welford.mean merged);
  check_close ~eps:1e-9 "merged variance" (Stats.variance combined)
    (Welford.variance merged)

(* ------------------------------------------------------------------ *)
(* Alias                                                               *)
(* ------------------------------------------------------------------ *)

let test_alias_normalisation () =
  let t = Alias.create [| 2.0; 6.0; 2.0 |] in
  check_close "p0" 0.2 (Alias.probability t 0);
  check_close "p1" 0.6 (Alias.probability t 1);
  check_close "sum to one" 1.0 (Kahan.sum_array (Alias.probabilities t))

let test_alias_frequencies () =
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let t = Alias.create weights in
  let rng = rng0 () in
  let counts = Array.make 4 0 in
  let n = 200_000 in
  for _ = 1 to n do
    let i = Alias.sample t rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      check_close ~eps:0.01
        (Printf.sprintf "frequency of outcome %d" i)
        (weights.(i) /. 10.0)
        (float_of_int c /. float_of_int n))
    counts

let test_alias_degenerate () =
  let t = Alias.create [| 0.0; 5.0; 0.0 |] in
  let rng = rng0 () in
  for _ = 1 to 1000 do
    Alcotest.(check int) "only outcome 1 possible" 1 (Alias.sample t rng)
  done

let test_alias_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty weight vector")
    (fun () -> ignore (Alias.create [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Alias.create: weights must be non-negative") (fun () ->
      ignore (Alias.create [| 1.0; -1.0 |]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Alias.create: weights sum to zero") (fun () ->
      ignore (Alias.create [| 0.0; 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "fresh empty" true (Bitset.is_empty b);
  Bitset.set b 3;
  Bitset.set b 64;
  Bitset.set b 99;
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 63" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Bitset.clear b 64;
  Alcotest.(check int) "cardinal after clear" 2 (Bitset.cardinal b)

let test_bitset_set_ops () =
  let a = Bitset.of_list 20 [ 1; 2; 3 ] in
  let b = Bitset.of_list 20 [ 3; 4; 5 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5 ]
    (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check bool) "not disjoint" false (Bitset.disjoint a b);
  Alcotest.(check bool) "disjoint"
    true
    (Bitset.disjoint a (Bitset.of_list 20 [ 10; 11 ]))

let test_bitset_union_in_place () =
  let a = Bitset.of_list 10 [ 0; 1 ] in
  let b = Bitset.of_list 10 [ 8; 9 ] in
  Bitset.union_in_place a b;
  Alcotest.(check (list int)) "in-place union" [ 0; 1; 8; 9 ] (Bitset.to_list a)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset.mem: index out of range") (fun () ->
      ignore (Bitset.mem b 10))

(* ------------------------------------------------------------------ *)
(* Rootfind / Deriv / Grid                                             *)
(* ------------------------------------------------------------------ *)

let test_rootfind_bisect () =
  let root = Rootfind.bisect (fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 in
  check_close ~eps:1e-9 "sqrt 2 by bisection" (sqrt 2.0) root

let test_rootfind_brent () =
  let root = Rootfind.brent (fun x -> cos x -. x) ~lo:0.0 ~hi:1.0 in
  check_close ~eps:1e-9 "dottie number" 0.7390851332151607 root;
  Alcotest.check_raises "no sign change"
    (Invalid_argument "Rootfind.brent: no sign change over the bracket")
    (fun () -> ignore (Rootfind.brent (fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0))

let test_rootfind_golden () =
  let m = Rootfind.minimize_golden (fun x -> (x -. 1.5) ** 2.0) ~lo:0.0 ~hi:4.0 in
  check_close ~eps:1e-6 "minimum of parabola" 1.5 m

let test_deriv () =
  check_close ~eps:1e-7 "central d/dx sin at 0.7" (cos 0.7)
    (Deriv.central sin 0.7);
  check_close ~eps:1e-9 "richardson d/dx sin at 0.7" (cos 0.7)
    (Deriv.richardson sin 0.7);
  check_close ~eps:1e-5 "second derivative of x^3 at 2" 12.0
    (Deriv.second (fun x -> x ** 3.0) 2.0)

let test_deriv_gradient () =
  let f x = (x.(0) *. x.(0)) +. (3.0 *. x.(1)) in
  let g = Deriv.gradient f [| 2.0; 5.0 |] in
  check_close ~eps:1e-6 "df/dx0" 4.0 g.(0);
  check_close ~eps:1e-6 "df/dx1" 3.0 g.(1)

let test_grid () =
  let ls = Grid.linspace ~lo:0.0 ~hi:1.0 ~n:5 in
  check_close "linspace start" 0.0 ls.(0);
  check_close "linspace end" 1.0 ls.(4);
  check_close "linspace step" 0.25 ls.(1);
  let lg = Grid.logspace ~lo:1.0 ~hi:100.0 ~n:3 in
  check_close ~eps:1e-12 "logspace middle" 10.0 lg.(1);
  let xs = Grid.linspace ~lo:0.0 ~hi:1.0 ~n:101 in
  check_close ~eps:1e-12 "trapezoid of x" 0.5
    (Grid.trapezoid ~xs ~ys:(Array.copy xs))

(* ------------------------------------------------------------------ *)
(* Histogram / KS / Sampler / Bootstrap                                *)
(* ------------------------------------------------------------------ *)

let test_histogram () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.3; 0.35; 0.9; 1.0; -0.5; 2.0 ];
  Alcotest.(check int) "bin 0" 1 (Histogram.count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "hi lands in last bin" 2 (Histogram.count h 3);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  Alcotest.(check int) "total" 7 (Histogram.total h)

let test_histogram_density () =
  let rng = rng0 () in
  let samples = Array.init 50_000 (fun _ -> Rng.float rng) in
  let h = Histogram.of_samples ~bins:10 samples in
  let d = Histogram.densities h in
  Array.iter
    (fun density -> check_close ~eps:0.08 "uniform density ~ 1" 1.0 density)
    d

let test_ks_uniform () =
  let rng = rng0 () in
  let samples = Array.init 2000 (fun _ -> Rng.float rng) in
  let d = Ks.statistic samples (fun x -> max 0.0 (min 1.0 x)) in
  Alcotest.(check bool) "KS stat small for matching dist" true (d < 0.035);
  let p = Ks.p_value samples (fun x -> max 0.0 (min 1.0 x)) in
  Alcotest.(check bool) "p-value not tiny" true (p > 0.01)

let test_ks_mismatch () =
  let rng = rng0 () in
  let samples = Array.init 2000 (fun _ -> Rng.float rng ** 2.0) in
  let p = Ks.p_value samples (fun x -> max 0.0 (min 1.0 x)) in
  Alcotest.(check bool) "p-value tiny for wrong dist" true (p < 1e-6)

let test_ks_q_function () =
  check_close "Q(0) = 1" 1.0 (Ks.kolmogorov_q 0.0);
  Alcotest.(check bool) "Q decreasing" true
    (Ks.kolmogorov_q 0.5 > Ks.kolmogorov_q 1.0
    && Ks.kolmogorov_q 1.0 > Ks.kolmogorov_q 2.0);
  Alcotest.(check bool) "Q(3) tiny" true (Ks.kolmogorov_q 3.0 < 1e-6)

let test_sampler_exponential () =
  let rng = rng0 () in
  let samples = Array.init 100_000 (fun _ -> Sampler.exponential rng ~rate:2.0) in
  check_close ~eps:0.01 "exponential mean 1/rate" 0.5 (Stats.mean samples)

let test_sampler_binomial () =
  let rng = rng0 () in
  let samples =
    Array.init 50_000 (fun _ -> float_of_int (Sampler.binomial rng ~n:20 ~p:0.3))
  in
  check_close ~eps:0.05 "binomial mean" 6.0 (Stats.mean samples);
  check_close ~eps:0.1 "binomial variance" 4.2 (Stats.variance samples)

let test_sampler_beta () =
  let rng = rng0 () in
  let samples = Array.init 50_000 (fun _ -> Sampler.beta rng ~a:2.0 ~b:3.0) in
  Array.iter
    (fun x -> if x < 0.0 || x > 1.0 then Alcotest.fail "beta out of range")
    samples;
  check_close ~eps:0.01 "beta mean a/(a+b)" 0.4 (Stats.mean samples)

let test_sampler_gamma () =
  let rng = rng0 () in
  let samples = Array.init 50_000 (fun _ -> Sampler.gamma rng ~shape:3.5) in
  check_close ~eps:0.05 "gamma mean = shape" 3.5 (Stats.mean samples);
  let small = Array.init 50_000 (fun _ -> Sampler.gamma rng ~shape:0.5) in
  check_close ~eps:0.02 "gamma mean, shape < 1" 0.5 (Stats.mean small)

let test_sampler_dirichlet () =
  let rng = rng0 () in
  for _ = 1 to 50 do
    let v = Sampler.dirichlet rng ~alphas:[| 1.0; 2.0; 3.0 |] in
    check_close ~eps:1e-12 "dirichlet sums to 1" 1.0 (Kahan.sum_array v);
    Array.iter
      (fun x -> if x < 0.0 then Alcotest.fail "negative dirichlet weight")
      v
  done

let test_sampler_power_law () =
  let rng = rng0 () in
  for _ = 1 to 2000 do
    let x = Sampler.power_law rng ~exponent:(-1.5) ~lo:0.01 ~hi:1.0 in
    if x < 0.01 || x > 1.0 then Alcotest.fail "power law out of bounds"
  done

let test_sampler_poisson () =
  let rng = rng0 () in
  let samples =
    Array.init 50_000 (fun _ -> float_of_int (Sampler.poisson rng ~lambda:4.0))
  in
  check_close ~eps:0.05 "poisson mean" 4.0 (Stats.mean samples);
  check_close ~eps:0.15 "poisson variance" 4.0 (Stats.variance samples)

let test_sampler_truncated () =
  let rng = rng0 () in
  for _ = 1 to 1000 do
    let x = Sampler.truncated rng ~lo:0.4 ~hi:0.6 (fun r -> Rng.float r) in
    if x < 0.4 || x > 0.6 then Alcotest.fail "truncated out of bounds"
  done

let test_bootstrap () =
  let rng = rng0 () in
  let samples = Array.init 500 (fun _ -> Normal_dist.sample rng ~mu:10.0 ()) in
  let lo, hi = Bootstrap.percentile_ci rng samples Stats.mean in
  Alcotest.(check bool) "CI contains the true mean" true (lo < 10.0 && 10.0 < hi);
  Alcotest.(check bool) "CI reasonably narrow" true (hi -. lo < 0.5)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"quantile is monotone in p" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 2 50) (float_bound_inclusive 100.0))
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (a, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.quantile a lo <= Stats.quantile a hi +. 1e-9)

let prop_variance_nonnegative =
  QCheck2.Test.make ~name:"variance is non-negative" ~count:200
    QCheck2.Gen.(array_size (int_range 2 50) (float_range (-100.0) 100.0))
    (fun a -> Stats.variance a >= 0.0)

let prop_bitset_roundtrip =
  QCheck2.Test.make ~name:"bitset of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 99))
    (fun ids ->
      let sorted = List.sort_uniq compare ids in
      Bitset.to_list (Bitset.of_list 100 ids) = sorted)

let prop_erf_monotone =
  QCheck2.Test.make ~name:"erf is monotone" ~count:200
    QCheck2.Gen.(pair (float_range (-6.0) 6.0) (float_range (-6.0) 6.0))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Special.erf lo <= Special.erf hi +. 1e-15)

let prop_normal_ppf_inverse =
  QCheck2.Test.make ~name:"Phi(Phi^-1(p)) = p" ~count:200
    QCheck2.Gen.(float_range 1e-6 (1.0 -. 1e-6))
    (fun p -> abs_float (Normal_dist.cdf (Normal_dist.ppf p) -. p) < 1e-10)

let prop_kahan_matches_naive_closely =
  QCheck2.Test.make ~name:"kahan close to naive on benign data" ~count:200
    QCheck2.Gen.(array_size (int_range 1 100) (float_range (-1.0) 1.0))
    (fun a ->
      let naive = Array.fold_left ( +. ) 0.0 a in
      abs_float (Kahan.sum_array a -. naive) < 1e-9)

let props =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_quantile_monotone;
      prop_variance_nonnegative;
      prop_bitset_roundtrip;
      prop_erf_monotone;
      prop_normal_ppf_inverse;
      prop_kahan_matches_naive_closely;
    ]

let () =
  Alcotest.run "numerics"
    [
      ( "kahan",
        [
          Alcotest.test_case "small terms" `Quick test_kahan_small_terms;
          Alcotest.test_case "sums" `Quick test_kahan_sum_array;
          Alcotest.test_case "dot" `Quick test_kahan_dot;
          Alcotest.test_case "reset" `Quick test_kahan_reset;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
          Alcotest.test_case "bool frequency" `Quick test_rng_bool_frequency;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf values" `Quick test_erf_known_values;
          Alcotest.test_case "erf odd" `Quick test_erf_odd;
          Alcotest.test_case "erfc values" `Quick test_erfc_known_values;
          Alcotest.test_case "erf+erfc" `Quick test_erf_erfc_complement;
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "factorial/choose" `Quick test_log_factorial_choose;
          Alcotest.test_case "logsumexp" `Quick test_logsumexp;
        ] );
      ( "normal",
        [
          Alcotest.test_case "cdf values" `Quick test_normal_cdf_known;
          Alcotest.test_case "ppf values" `Quick test_normal_ppf_known;
          Alcotest.test_case "roundtrip" `Quick test_normal_ppf_cdf_roundtrip;
          Alcotest.test_case "location-scale" `Quick test_normal_location_scale;
          Alcotest.test_case "sf" `Quick test_normal_sf;
          Alcotest.test_case "pdf integral" `Quick test_normal_pdf_integrates;
          Alcotest.test_case "sampling moments" `Slow test_normal_sampling_moments;
          Alcotest.test_case "invalid args" `Quick test_normal_invalid_args;
        ] );
      ( "stats",
        [
          Alcotest.test_case "approx_eq" `Quick test_stats_approx_eq;
          Alcotest.test_case "is_zero" `Quick test_stats_is_zero;
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "covariance" `Quick test_stats_covariance_correlation;
          Alcotest.test_case "empirical cdf" `Quick test_stats_empirical_cdf;
          Alcotest.test_case "wilson" `Quick test_stats_wilson;
        ] );
      ( "welford",
        [
          Alcotest.test_case "matches stats" `Quick test_welford_matches_stats;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ( "alias",
        [
          Alcotest.test_case "normalisation" `Quick test_alias_normalisation;
          Alcotest.test_case "frequencies" `Slow test_alias_frequencies;
          Alcotest.test_case "degenerate" `Quick test_alias_degenerate;
          Alcotest.test_case "invalid" `Quick test_alias_invalid;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "set ops" `Quick test_bitset_set_ops;
          Alcotest.test_case "union in place" `Quick test_bitset_union_in_place;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        ] );
      ( "rootfind-deriv-grid",
        [
          Alcotest.test_case "bisect" `Quick test_rootfind_bisect;
          Alcotest.test_case "brent" `Quick test_rootfind_brent;
          Alcotest.test_case "golden" `Quick test_rootfind_golden;
          Alcotest.test_case "deriv" `Quick test_deriv;
          Alcotest.test_case "gradient" `Quick test_deriv_gradient;
          Alcotest.test_case "grid" `Quick test_grid;
        ] );
      ( "histogram-ks",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "density" `Slow test_histogram_density;
          Alcotest.test_case "ks uniform" `Quick test_ks_uniform;
          Alcotest.test_case "ks mismatch" `Quick test_ks_mismatch;
          Alcotest.test_case "kolmogorov q" `Quick test_ks_q_function;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "exponential" `Slow test_sampler_exponential;
          Alcotest.test_case "binomial" `Slow test_sampler_binomial;
          Alcotest.test_case "beta" `Slow test_sampler_beta;
          Alcotest.test_case "gamma" `Slow test_sampler_gamma;
          Alcotest.test_case "dirichlet" `Quick test_sampler_dirichlet;
          Alcotest.test_case "power law" `Quick test_sampler_power_law;
          Alcotest.test_case "poisson" `Slow test_sampler_poisson;
          Alcotest.test_case "truncated" `Quick test_sampler_truncated;
          Alcotest.test_case "bootstrap" `Slow test_bootstrap;
        ] );
      ("properties", props);
    ]
