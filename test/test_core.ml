(* Unit and property tests for the core fault-creation model. *)

let check_close ?(eps = 1e-12) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng0 () = Numerics.Rng.create ~seed:2024

(* A small universe whose moments are computable by hand:
   faults (p=0.5, q=0.1), (p=0.2, q=0.3).
   mu1 = 0.05 + 0.06 = 0.11
   mu2 = 0.025 + 0.012 = 0.037
   var1 = 0.25*0.01 + 0.16*0.09 = 0.0025 + 0.0144 = 0.0169
   var2 = 0.25*0.75*0.01 + 0.04*0.96*0.09 = 0.001875 + 0.003456 = 0.005331 *)
let tiny () = Core.Universe.of_pairs [ (0.5, 0.1); (0.2, 0.3) ]

let random_universe ?(n = 12) ?(p_hi = 0.6) rng =
  Core.Universe.uniform_random rng ~n ~p_lo:0.001 ~p_hi ~total_q:0.7

(* ------------------------------------------------------------------ *)
(* Fault                                                               *)
(* ------------------------------------------------------------------ *)

let test_fault_make () =
  let f = Core.Fault.make ~p:0.3 ~q:0.2 in
  check_close "p" 0.3 (Core.Fault.p f);
  check_close "q" 0.2 (Core.Fault.q f);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Fault.make: p must lie in [0, 1]") (fun () ->
      ignore (Core.Fault.make ~p:1.2 ~q:0.1));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Fault.make: q must lie in [0, 1]") (fun () ->
      ignore (Core.Fault.make ~p:0.1 ~q:(-0.1)))

let test_fault_contributions () =
  let f = Core.Fault.make ~p:0.5 ~q:0.1 in
  check_close "mean" 0.05 (Core.Fault.mean_contribution f);
  check_close "variance" 0.0025 (Core.Fault.variance_contribution f);
  check_close "common mean" 0.025 (Core.Fault.common_mean_contribution f);
  check_close "common variance" 0.001875 (Core.Fault.common_variance_contribution f)

let test_fault_scale () =
  let f = Core.Fault.make ~p:0.4 ~q:0.1 in
  check_close "scaled" 0.2 (Core.Fault.p (Core.Fault.scale_p f 0.5));
  Alcotest.check_raises "scale out of range"
    (Invalid_argument "Fault.scale_p: scaled probability leaves [0, 1]")
    (fun () -> ignore (Core.Fault.scale_p f 3.0))

(* ------------------------------------------------------------------ *)
(* Universe                                                            *)
(* ------------------------------------------------------------------ *)

let test_universe_accessors () =
  let u = tiny () in
  Alcotest.(check int) "size" 2 (Core.Universe.size u);
  check_close "pmax" 0.5 (Core.Universe.pmax u);
  check_close "qmax" 0.3 (Core.Universe.qmax u);
  check_close "total_q" 0.4 (Core.Universe.total_q u);
  Alcotest.(check bool) "disjoint valid" true (Core.Universe.validate_disjoint u)

let test_universe_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Universe.of_faults: empty universe")
    (fun () -> ignore (Core.Universe.of_pairs []))

let test_universe_scale () =
  let u = Core.Universe.scale_all_p (tiny ()) 0.5 in
  check_close "scaled p0" 0.25 (Core.Universe.ps u).(0);
  check_close "scaled p1" 0.1 (Core.Universe.ps u).(1);
  check_close "q unchanged" 0.1 (Core.Universe.qs u).(0)

let test_universe_set_p () =
  let u = Core.Universe.set_p (tiny ()) 1 0.9 in
  check_close "set p" 0.9 (Core.Universe.ps u).(1);
  check_close "other p untouched" 0.5 (Core.Universe.ps u).(0)

let test_universe_generators () =
  let rng = rng0 () in
  let u = Core.Universe.uniform_random rng ~n:30 ~p_lo:0.1 ~p_hi:0.4 ~total_q:0.6 in
  Alcotest.(check int) "size" 30 (Core.Universe.size u);
  check_close ~eps:1e-9 "total_q as requested" 0.6 (Core.Universe.total_q u);
  Array.iter
    (fun p ->
      if p < 0.1 || p > 0.4 then Alcotest.fail "p outside requested range")
    (Core.Universe.ps u);
  let hq = Core.Universe.high_quality rng ~n:40 ~expected_faults:0.5 ~total_q:0.2 in
  check_close ~eps:1e-9 "expected fault count" 0.5
    (Core.Moments.expected_fault_count hq);
  let dr = Core.Universe.dirichlet_random rng ~n:25 ~p_lo:0.0 ~p_hi:0.3 ~alpha:0.5 ~total_q:0.5 in
  check_close ~eps:1e-9 "dirichlet total q" 0.5 (Core.Universe.total_q dr)

(* ------------------------------------------------------------------ *)
(* Moments                                                             *)
(* ------------------------------------------------------------------ *)

let test_moments_hand_computed () =
  let u = tiny () in
  check_close "mu1" 0.11 (Core.Moments.mu1 u);
  check_close "mu2" 0.037 (Core.Moments.mu2 u);
  check_close "var1" 0.0169 (Core.Moments.var1 u);
  check_close "var2" 0.005331 (Core.Moments.var2 u);
  check_close "sigma1" (sqrt 0.0169) (Core.Moments.sigma1 u);
  check_close "expected faults" 0.7 (Core.Moments.expected_fault_count u);
  check_close "expected common" 0.29 (Core.Moments.expected_common_fault_count u)

let test_moments_channels () =
  let u = tiny () in
  check_close "mu_n 1 = mu1" (Core.Moments.mu1 u) (Core.Moments.mu_n u ~channels:1);
  check_close "mu_n 2 = mu2" (Core.Moments.mu2 u) (Core.Moments.mu_n u ~channels:2);
  check_close "mu_n 3" ((0.125 *. 0.1) +. (0.008 *. 0.3))
    (Core.Moments.mu_n u ~channels:3);
  check_close "var_n 2 = var2" (Core.Moments.var2 u)
    (Core.Moments.var_n u ~channels:2)

let test_moments_record () =
  let m = Core.Moments.compute (tiny ()) in
  check_close "record mu1" 0.11 m.Core.Moments.mu1;
  check_close "record sigma2" (sqrt 0.005331) m.Core.Moments.sigma2

let test_mean_gain () =
  check_close ~eps:1e-12 "gain" (0.11 /. 0.037) (Core.Moments.mean_gain (tiny ()))

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_golden_threshold () =
  (* the paper prints the truncated value 0.618033987 *)
  check_close ~eps:1e-8 "threshold value" 0.618033987 Core.Bounds.golden_threshold;
  Alcotest.(check bool) "below threshold shrinks" true
    (Core.Bounds.variance_term_shrinks 0.6);
  Alcotest.(check bool) "above threshold grows" false
    (Core.Bounds.variance_term_shrinks 0.63)

let test_sigma_ratio_paper_values () =
  check_close ~eps:5e-4 "pmax 0.5" 0.866 (Core.Bounds.sigma_ratio_bound 0.5);
  check_close ~eps:5e-4 "pmax 0.1" 0.332 (Core.Bounds.sigma_ratio_bound 0.1);
  check_close ~eps:5e-4 "pmax 0.01" 0.100 (Core.Bounds.sigma_ratio_bound 0.01)

let test_paper_table () =
  let table = Core.Bounds.paper_table () in
  Alcotest.(check int) "three rows" 3 (Array.length table);
  check_close "first pmax" 0.5 (fst table.(0))

let test_eq4_eq9_on_tiny () =
  let u = tiny () in
  check_close "eq4 bound" (0.5 *. 0.11) (Core.Bounds.mu2_upper u);
  Alcotest.(check bool) "eq4 holds" true
    (Core.Moments.mu2 u <= Core.Bounds.mu2_upper u);
  Alcotest.(check bool) "eq9 holds" true
    (Core.Moments.sigma2 u <= Core.Bounds.sigma2_upper u)

let test_eq12 () =
  check_close ~eps:1e-9 "eq12 arithmetic"
    (Core.Bounds.sigma_ratio_bound 0.1 *. 0.011)
    (Core.Bounds.pair_bound_from_bound ~single_bound:0.011 ~pmax:0.1)

(* ------------------------------------------------------------------ *)
(* Fault_count                                                         *)
(* ------------------------------------------------------------------ *)

let test_prob_none_some () =
  let ps = [| 0.5; 0.2 |] in
  check_close "prob none" 0.4 (Core.Fault_count.prob_none ps);
  check_close "prob some" 0.6 (Core.Fault_count.prob_some ps)

let test_prob_some_tiny_p () =
  (* 1 - (1-1e-12)^3 = 3e-12 to first order; naive float arithmetic would
     return garbage near machine epsilon. *)
  let ps = [| 1e-12; 1e-12; 1e-12 |] in
  (* exact value is 3e-12 - 3e-24 + 1e-36 *)
  check_close ~eps:5e-24 "cancellation-free small probabilities" 3e-12
    (Core.Fault_count.prob_some ps)

let test_n_probabilities () =
  let u = tiny () in
  check_close "P(N1=0)" (0.5 *. 0.8) (Core.Fault_count.p_n1_zero u);
  check_close "P(N2=0)" (0.75 *. 0.96) (Core.Fault_count.p_n2_zero u);
  check_close "risk ratio" ((1.0 -. 0.72) /. (1.0 -. 0.4))
    (Core.Fault_count.risk_ratio u);
  check_close ~eps:1e-12 "success ratio = prod(1+p)" (1.5 *. 1.2)
    (Core.Fault_count.success_ratio u)

let test_poisson_binomial_small () =
  let dist = Core.Fault_count.poisson_binomial [| 0.5; 0.2 |] in
  check_close "P(0)" 0.4 dist.(0);
  check_close "P(1)" ((0.5 *. 0.8) +. (0.5 *. 0.2)) dist.(1);
  check_close "P(2)" 0.1 dist.(2);
  check_close "normalised" 1.0 (Numerics.Kahan.sum_array dist)

let test_poisson_binomial_binomial_case () =
  (* Homogeneous probabilities reduce to the binomial distribution. *)
  let n = 10 and p = 0.3 in
  let dist = Core.Fault_count.poisson_binomial (Array.make n p) in
  for k = 0 to n do
    let expected =
      exp
        (Numerics.Special.log_choose n k
        +. (float_of_int k *. log p)
        +. (float_of_int (n - k) *. log (1.0 -. p)))
    in
    check_close ~eps:1e-12 (Printf.sprintf "binomial P(%d)" k) expected dist.(k)
  done

let test_poisson_binomial_moments () =
  let ps = [| 0.1; 0.4; 0.7; 0.05 |] in
  let dist = Core.Fault_count.poisson_binomial ps in
  check_close ~eps:1e-12 "mean = sum p" 1.25
    (Core.Fault_count.mean_of_distribution dist);
  check_close ~eps:1e-12 "variance = sum p(1-p)"
    ((0.1 *. 0.9) +. (0.4 *. 0.6) +. (0.7 *. 0.3) +. (0.05 *. 0.95))
    (Core.Fault_count.variance_of_distribution dist)

let test_nk_consistency () =
  let u = tiny () in
  check_close "N1 dist head = p_n1_zero" (Core.Fault_count.p_n1_zero u)
    (Core.Fault_count.n1_distribution u).(0);
  check_close "N2 dist head = p_n2_zero" (Core.Fault_count.p_n2_zero u)
    (Core.Fault_count.n2_distribution u).(0);
  check_close "channels=2 matches n2" (Core.Fault_count.p_n2_pos u)
    (Core.Fault_count.p_nk_pos u ~channels:2)

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let test_partial_matches_numerical () =
  let rng = rng0 () in
  for _ = 1 to 50 do
    let n = 2 + Numerics.Rng.int rng 8 in
    let ps =
      Array.init n (fun _ -> 0.02 +. (0.9 *. Numerics.Rng.float rng))
    in
    let i = Numerics.Rng.int rng n in
    let analytic = Core.Sensitivity.risk_ratio_partial ps i in
    let numeric =
      Numerics.Deriv.partial
        (fun v -> Core.Fault_count.risk_ratio_of_ps v)
        ps i
    in
    if abs_float (analytic -. numeric) > 1e-5 *. max 1.0 (abs_float analytic)
    then
      Alcotest.fail
        (Printf.sprintf "partial mismatch: analytic %g vs numeric %g" analytic
           numeric)
  done

let test_stationary_p1_closed_form () =
  List.iter
    (fun p2 ->
      let p1z = Core.Sensitivity.stationary_p1 ~p2 in
      let d = Core.Sensitivity.risk_ratio_partial [| p1z; p2 |] 0 in
      check_close ~eps:1e-10 (Printf.sprintf "derivative zero at p1z (p2=%g)" p2)
        0.0 d;
      Alcotest.(check bool) "p1z in (0,1)" true (p1z > 0.0 && p1z < 1.0))
    [ 0.05; 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_stationary_sign_pattern () =
  let p2 = 0.3 in
  let p1z = Core.Sensitivity.stationary_p1 ~p2 in
  Alcotest.(check bool) "negative below" true
    (Core.Sensitivity.risk_ratio_partial [| p1z /. 2.0; p2 |] 0 < 0.0);
  Alcotest.(check bool) "positive above" true
    (Core.Sensitivity.risk_ratio_partial [| p1z *. 2.0; p2 |] 0 > 0.0)

let test_stationary_numeric_search () =
  let ps = [| 0.2; 0.3 |] in
  match Core.Sensitivity.stationary_point ps 0 ~lo:0.001 ~hi:0.9 with
  | None -> Alcotest.fail "stationary point not found"
  | Some x ->
      check_close ~eps:1e-6 "matches closed form"
        (Core.Sensitivity.stationary_p1 ~p2:0.3)
        x

let test_k_derivative_nonnegative () =
  let rng = rng0 () in
  for _ = 1 to 200 do
    let n = 1 + Numerics.Rng.int rng 15 in
    let b = Array.init n (fun _ -> Numerics.Rng.float rng) in
    let k = 0.01 +. (0.99 *. Numerics.Rng.float rng) in
    let d = Core.Sensitivity.risk_ratio_k_derivative ~b ~k in
    if d < -1e-10 then
      Alcotest.fail (Printf.sprintf "Appendix B violated: dR/dk = %g" d)
  done

let test_classify () =
  (* With p1 well above the stationary point, decreasing p1 lowers the
     ratio: improvement increases the gain. *)
  Alcotest.(check bool) "above p1z improves gain" true
    (Core.Sensitivity.classify_single_improvement [| 0.5; 0.3 |] 0
    = Core.Sensitivity.Increases_gain);
  Alcotest.(check bool) "below p1z reduces gain" true
    (Core.Sensitivity.classify_single_improvement [| 0.02; 0.3 |] 0
    = Core.Sensitivity.Decreases_gain)

let test_risk_ratio_two_consistent () =
  let p1 = 0.23 and p2 = 0.41 in
  check_close ~eps:1e-12 "closed n=2 form matches generic"
    (Core.Fault_count.risk_ratio_of_ps [| p1; p2 |])
    (Core.Sensitivity.risk_ratio_two ~p1 ~p2)

(* ------------------------------------------------------------------ *)
(* Improvement                                                         *)
(* ------------------------------------------------------------------ *)

let test_improvement_steps () =
  let u = tiny () in
  let p' = Core.Universe.ps (Core.Improvement.apply_step u (Core.Improvement.Proportional 0.5)) in
  check_close "proportional" 0.25 p'.(0);
  let p'' =
    Core.Universe.ps
      (Core.Improvement.apply_step u
         (Core.Improvement.Single { index = 1; factor = 0.1 }))
  in
  check_close "single leaves others" 0.5 p''.(0);
  check_close "single scales target" 0.02 p''.(1);
  let p3 =
    Core.Universe.ps
      (Core.Improvement.apply_step u (Core.Improvement.Per_fault [| 0.5; 2.0 |]))
  in
  check_close "per fault" 0.4 p3.(1)

let test_improvement_errors () =
  let u = tiny () in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Improvement.apply_step: fault index out of range")
    (fun () ->
      ignore
        (Core.Improvement.apply_step u
           (Core.Improvement.Single { index = 5; factor = 0.5 })));
  Alcotest.check_raises "bad vector length"
    (Invalid_argument "Improvement.apply_step: factor vector length mismatch")
    (fun () ->
      ignore (Core.Improvement.apply_step u (Core.Improvement.Per_fault [| 1.0 |])))

let test_obviously_better () =
  let u = tiny () in
  let better = Core.Improvement.apply_step u (Core.Improvement.Proportional 0.8) in
  Alcotest.(check bool) "scaling down is obviously better" true
    (Core.Improvement.is_obviously_better u better);
  Alcotest.(check bool) "identity is not" false
    (Core.Improvement.is_obviously_better u u);
  let worse = Core.Universe.set_p u 0 0.9 in
  Alcotest.(check bool) "an increase is not" false
    (Core.Improvement.is_obviously_better u worse)

let test_trajectory () =
  let u = tiny () in
  let traj =
    Core.Improvement.proportional_trajectory u
      ~factors:(Numerics.Grid.linspace ~lo:0.2 ~hi:1.0 ~n:5)
  in
  Alcotest.(check int) "points" 5 (Array.length traj);
  (* Appendix B: the risk ratio rises with the factor. *)
  for i = 0 to 3 do
    Alcotest.(check bool) "ratio non-decreasing" true
      (traj.(i).Core.Improvement.risk_ratio
      <= traj.(i + 1).Core.Improvement.risk_ratio +. 1e-12)
  done;
  check_close ~eps:1e-12 "factor 1 recovers the universe"
    (Core.Fault_count.risk_ratio u)
    traj.(4).Core.Improvement.risk_ratio

(* ------------------------------------------------------------------ *)
(* Pfd_dist                                                            *)
(* ------------------------------------------------------------------ *)

let test_exact_tiny () =
  let dist = Core.Pfd_dist.exact_single (tiny ()) in
  (* support: 0, 0.1, 0.3, 0.4 with probs 0.4, 0.1, 0.24... let's check:
     P(0)   = 0.5*0.8 = 0.4
     P(0.1) = 0.5*0.8 = 0.4   (fault 1 only)
     P(0.3) = 0.5*0.2 = 0.1   (fault 2 only)
     P(0.4) = 0.5*0.2 = 0.1   (both) *)
  Alcotest.(check int) "support size" 4 (Core.Pfd_dist.size dist);
  check_close "P(X<=0)" 0.4 (Core.Pfd_dist.cdf dist 0.0);
  check_close "P(X<=0.1)" 0.8 (Core.Pfd_dist.cdf dist 0.1);
  check_close "P(X<=0.3)" 0.9 (Core.Pfd_dist.cdf dist 0.3);
  check_close "P(X<=0.4)" 1.0 (Core.Pfd_dist.cdf dist 0.4);
  check_close "P(X>0)" 0.6 (Core.Pfd_dist.prob_positive dist)

let test_exact_moments_match_closed_form () =
  let rng = rng0 () in
  for _ = 1 to 20 do
    let u = random_universe ~n:10 rng in
    let dist = Core.Pfd_dist.exact_single u in
    check_close ~eps:1e-10 "dist mean = mu1" (Core.Moments.mu1 u)
      (Core.Pfd_dist.mean dist);
    check_close ~eps:1e-10 "dist variance = var1" (Core.Moments.var1 u)
      (Core.Pfd_dist.variance dist);
    let pair = Core.Pfd_dist.exact_pair u in
    check_close ~eps:1e-10 "pair mean = mu2" (Core.Moments.mu2 u)
      (Core.Pfd_dist.mean pair);
    check_close ~eps:1e-10 "pair variance = var2" (Core.Moments.var2 u)
      (Core.Pfd_dist.variance pair)
  done

let test_prob_positive_matches_n1 () =
  let rng = rng0 () in
  let u = random_universe ~n:8 rng in
  (* all q_i > 0 in this generator, so Theta > 0 iff N > 0 *)
  check_close ~eps:1e-12 "P(Theta1>0) = P(N1>0)" (Core.Fault_count.p_n1_pos u)
    (Core.Pfd_dist.prob_positive (Core.Pfd_dist.exact_single u))

let test_quantile_properties () =
  let dist = Core.Pfd_dist.exact_single (tiny ()) in
  check_close "q at 0.3 -> 0" 0.0 (Core.Pfd_dist.quantile dist 0.3);
  check_close "q at 0.5 -> 0.1" 0.1 (Core.Pfd_dist.quantile dist 0.5);
  check_close "q at 1.0 -> max" 0.4 (Core.Pfd_dist.quantile dist 1.0);
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Pfd_dist.quantile: alpha outside [0, 1]") (fun () ->
      ignore (Core.Pfd_dist.quantile dist 1.5))

let test_grid_approximates_exact () =
  let rng = rng0 () in
  let u = random_universe ~n:14 rng in
  let exact = Core.Pfd_dist.exact_single u in
  let grid = Core.Pfd_dist.grid_single u ~bins:4096 in
  check_close ~eps:2e-4 "grid mean close" (Core.Pfd_dist.mean exact)
    (Core.Pfd_dist.mean grid);
  check_close ~eps:0.02 "grid q95 close"
    (Core.Pfd_dist.quantile exact 0.95)
    (Core.Pfd_dist.quantile grid 0.95)

let test_exact_limit () =
  let u = Core.Universe.homogeneous ~n:30 ~p:0.1 ~q:0.01 in
  Alcotest.(check bool) "raises beyond limit" true
    (try
       ignore (Core.Pfd_dist.exact_single u);
       false
     with Invalid_argument _ -> true);
  (* the dispatcher falls back to the grid instead *)
  let d = Core.Pfd_dist.single u in
  check_close ~eps:1e-3 "dispatcher grid mean" (Core.Moments.mu1 u)
    (Core.Pfd_dist.mean d)

let test_sampling_from_dist () =
  let rng = rng0 () in
  let dist = Core.Pfd_dist.exact_single (tiny ()) in
  let n = 100_000 in
  let acc = Numerics.Kahan.create () in
  for _ = 1 to n do
    Numerics.Kahan.add acc (Core.Pfd_dist.sample dist rng)
  done;
  check_close ~eps:2e-3 "sample mean matches" 0.11
    (Numerics.Kahan.total acc /. float_of_int n)

let test_of_mass_merging () =
  let d = Core.Pfd_dist.of_mass [ (0.1, 0.3); (0.1, 0.2); (0.0, 0.5) ] in
  Alcotest.(check int) "merged duplicates" 2 (Core.Pfd_dist.size d);
  check_close "cdf mid" 0.5 (Core.Pfd_dist.cdf d 0.05)

let test_of_mass_rejects_nan () =
  Alcotest.check_raises "NaN support point"
    (Invalid_argument "Pfd_dist.of_mass: NaN support point") (fun () ->
      ignore (Core.Pfd_dist.of_mass [ (0.1, 0.5); (nan, 0.5) ]));
  Alcotest.check_raises "NaN mass"
    (Invalid_argument "Pfd_dist.of_mass: NaN mass") (fun () ->
      ignore (Core.Pfd_dist.of_mass [ (0.1, 0.5); (0.2, nan) ]));
  (* NaN is rejected even on points the positive-mass filter would drop *)
  Alcotest.check_raises "NaN mass on zero-mass point"
    (Invalid_argument "Pfd_dist.of_mass: NaN support point") (fun () ->
      ignore (Core.Pfd_dist.of_mass [ (0.1, 0.5); (nan, 0.0) ]))

let test_of_sorted_arrays () =
  (* bit-parity with of_mass on the same points, zero-mass points
     dropped before the strictly-increasing check *)
  let d =
    Core.Pfd_dist.of_sorted_arrays
      [| 0.0; 0.05; 0.05; 0.1 |]
      [| 0.2; 0.0; 0.3; 0.5 |]
  in
  let via_mass =
    Core.Pfd_dist.of_mass [ (0.0, 0.2); (0.05, 0.3); (0.1, 0.5) ]
  in
  Alcotest.(check (array int64))
    "support bit-identical to of_mass"
    (Array.map Int64.bits_of_float (Core.Pfd_dist.support via_mass))
    (Array.map Int64.bits_of_float (Core.Pfd_dist.support d));
  Alcotest.(check (array int64))
    "masses bit-identical to of_mass"
    (Array.map Int64.bits_of_float (Core.Pfd_dist.masses via_mass))
    (Array.map Int64.bits_of_float (Core.Pfd_dist.masses d));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Pfd_dist.of_sorted_arrays: length mismatch") (fun () ->
      ignore (Core.Pfd_dist.of_sorted_arrays [| 0.1 |] [| 0.5; 0.5 |]));
  Alcotest.check_raises "unsorted support"
    (Invalid_argument
       "Pfd_dist.of_sorted_arrays: support not sorted strictly increasing")
    (fun () ->
      ignore (Core.Pfd_dist.of_sorted_arrays [| 0.2; 0.1 |] [| 0.5; 0.5 |]));
  Alcotest.check_raises "duplicate support"
    (Invalid_argument
       "Pfd_dist.of_sorted_arrays: support not sorted strictly increasing")
    (fun () ->
      ignore (Core.Pfd_dist.of_sorted_arrays [| 0.1; 0.1 |] [| 0.5; 0.5 |]));
  Alcotest.check_raises "NaN support"
    (Invalid_argument "Pfd_dist.of_sorted_arrays: NaN support point")
    (fun () ->
      ignore (Core.Pfd_dist.of_sorted_arrays [| 0.1; nan |] [| 0.5; 0.5 |]));
  Alcotest.check_raises "no positive mass"
    (Invalid_argument "Pfd_dist.of_sorted_arrays: no positive mass")
    (fun () -> ignore (Core.Pfd_dist.of_sorted_arrays [| 0.1 |] [| 0.0 |]))

(* ------------------------------------------------------------------ *)
(* Normal_approx and Assessment                                        *)
(* ------------------------------------------------------------------ *)

let test_worked_example_values () =
  let ex = Core.Normal_approx.worked_example () in
  check_close "single" 0.011 ex.Core.Normal_approx.single_bound;
  check_close ~eps:1e-6 "eq11" 0.0013316624 ex.Core.Normal_approx.pair_bound_eq11;
  check_close ~eps:1e-6 "eq12" 0.0036482872 ex.Core.Normal_approx.pair_bound_eq12

let test_bound_ratio_under_eq12 () =
  let rng = rng0 () in
  for _ = 1 to 50 do
    let u = random_universe rng in
    let k = Core.Normal_approx.k_of_confidence 0.99 in
    let ratio = Core.Normal_approx.bound_ratio u ~k in
    let guarantee = Core.Bounds.sigma_ratio_bound (Core.Universe.pmax u) in
    if ratio > guarantee +. 1e-12 then
      Alcotest.fail
        (Printf.sprintf "eq.(12) violated: ratio %g > guarantee %g" ratio
           guarantee)
  done

let test_bound_at_confidence () =
  let u = tiny () in
  let b = Core.Normal_approx.bound_at_confidence u ~confidence:0.99 in
  check_close ~eps:1e-9 "k at 99%" 2.3263478740408408 b.Core.Normal_approx.k;
  Alcotest.(check bool) "pair below single" true
    (b.Core.Normal_approx.pair < b.Core.Normal_approx.single)

let test_normal_cdf_quantile_roundtrip () =
  let u = tiny () in
  let x = Core.Normal_approx.single_quantile u ~confidence:0.9 in
  check_close ~eps:1e-9 "roundtrip" 0.9 (Core.Normal_approx.single_cdf u x)

let test_sil () =
  Alcotest.(check string) "SIL2" "SIL2"
    (Core.Assessment.sil_to_string (Core.Assessment.sil_of_pfd 5e-3));
  Alcotest.(check string) "SIL4" "SIL4"
    (Core.Assessment.sil_to_string (Core.Assessment.sil_of_pfd 5e-5));
  Alcotest.(check string) "below SIL1" "below SIL1"
    (Core.Assessment.sil_to_string (Core.Assessment.sil_of_pfd 0.5));
  check_close "ceiling SIL3" 1e-3
    (Core.Assessment.pfd_ceiling_of_sil Core.Assessment.SIL3)

let test_assess () =
  let u = tiny () in
  (* single bound at 90%: 0.11 + 1.2816*0.13 = 0.2766, so the lax
     requirement must sit above that *)
  let v = Core.Assessment.assess u ~required_bound:0.4 ~confidence:0.9 in
  Alcotest.(check bool) "single meets lax bound" true v.Core.Assessment.single_meets;
  Alcotest.(check bool) "pair meets lax bound" true v.Core.Assessment.pair_meets;
  let strict = Core.Assessment.assess u ~required_bound:1e-6 ~confidence:0.9 in
  Alcotest.(check bool) "nobody meets strict bound" false
    strict.Core.Assessment.pair_meets

let test_required_pmax () =
  (* round trip: if we require exactly the eq. (12) bound, the computed
     pmax should reproduce the one we started from. *)
  let single_bound = 0.011 in
  let pmax = 0.07 in
  let target = Core.Bounds.pair_bound_from_bound ~single_bound ~pmax in
  match
    Core.Assessment.required_pmax_for_bound ~single_bound ~required_bound:target
  with
  | None -> Alcotest.fail "expected a pmax"
  | Some p -> check_close ~eps:1e-9 "inverse of eq.(12)" pmax p

let test_required_pmax_trivial () =
  match
    Core.Assessment.required_pmax_for_bound ~single_bound:0.01 ~required_bound:0.02
  with
  | Some p -> check_close "no diversity needed" 1.0 p
  | None -> Alcotest.fail "expected Some 1.0"

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let gen_probs =
  QCheck2.Gen.(array_size (int_range 1 15) (float_range 1e-6 0.999))

let prop_risk_ratio_le_one =
  QCheck2.Test.make ~name:"eq. (10): risk ratio <= 1" ~count:300 gen_probs
    (fun ps ->
      let r = Core.Fault_count.risk_ratio_of_ps ps in
      r <= 1.0 +. 1e-12)

let prop_mu2_le_pmax_mu1 =
  QCheck2.Test.make ~name:"eq. (4): mu2 <= pmax*mu1" ~count:300
    QCheck2.Gen.(
      array_size (int_range 1 15) (pair (float_range 1e-6 1.0) (float_range 1e-6 0.05)))
    (fun pairs ->
      let u = Core.Universe.of_pairs (Array.to_list pairs) in
      Core.Moments.mu2 u <= (Core.Universe.pmax u *. Core.Moments.mu1 u) +. 1e-15)

let prop_sigma2_bound =
  QCheck2.Test.make ~name:"eq. (9): sigma2 <= sqrt(pmax(1+pmax))*sigma1"
    ~count:300
    QCheck2.Gen.(
      array_size (int_range 1 15) (pair (float_range 1e-6 1.0) (float_range 1e-6 0.05)))
    (fun pairs ->
      let u = Core.Universe.of_pairs (Array.to_list pairs) in
      Core.Moments.sigma2 u <= Core.Bounds.sigma2_upper u +. 1e-15)

let prop_success_ratio_identity =
  QCheck2.Test.make ~name:"footnote 5: P(N2=0)/P(N1=0) = prod(1+p)" ~count:300
    gen_probs (fun ps ->
      let u =
        Core.Universe.of_pairs
          (Array.to_list (Array.map (fun p -> (p, 0.01)) ps))
      in
      let direct =
        Core.Fault_count.p_n2_zero u /. Core.Fault_count.p_n1_zero u
      in
      abs_float (direct -. Core.Fault_count.success_ratio u)
      <= 1e-9 *. Core.Fault_count.success_ratio u)

let prop_appendix_b =
  QCheck2.Test.make ~name:"Appendix B: dR/dk >= 0" ~count:300
    QCheck2.Gen.(
      pair (array_size (int_range 1 12) (float_range 1e-4 1.0)) (float_range 0.01 1.0))
    (fun (b, k) -> Core.Sensitivity.risk_ratio_k_derivative ~b ~k >= -1e-10)

let prop_exact_dist_mean =
  QCheck2.Test.make ~name:"exact distribution mean equals mu1" ~count:100
    QCheck2.Gen.(
      array_size (int_range 1 10) (pair (float_range 0.0 1.0) (float_range 0.0 0.09)))
    (fun pairs ->
      let u = Core.Universe.of_pairs (Array.to_list pairs) in
      let d = Core.Pfd_dist.exact_single u in
      abs_float (Core.Pfd_dist.mean d -. Core.Moments.mu1 u) < 1e-10)

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"exact CDF is monotone" ~count:100
    QCheck2.Gen.(
      triple
        (array_size (int_range 1 8) (pair (float_range 0.01 1.0) (float_range 0.001 0.1)))
        (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (pairs, x1, x2) ->
      let u = Core.Universe.of_pairs (Array.to_list pairs) in
      let d = Core.Pfd_dist.exact_single u in
      let lo = min x1 x2 and hi = max x1 x2 in
      Core.Pfd_dist.cdf d lo <= Core.Pfd_dist.cdf d hi +. 1e-12)

let prop_poisson_binomial_normalised =
  QCheck2.Test.make ~name:"poisson-binomial sums to 1" ~count:200 gen_probs
    (fun ps ->
      abs_float (Numerics.Kahan.sum_array (Core.Fault_count.poisson_binomial ps) -. 1.0)
      < 1e-10)

let prop_quantile_cdf_consistency =
  QCheck2.Test.make ~name:"quantile and CDF agree" ~count:100
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 8) (pair (float_range 0.01 1.0) (float_range 0.001 0.1)))
        (float_range 0.01 0.99))
    (fun (pairs, alpha) ->
      let u = Core.Universe.of_pairs (Array.to_list pairs) in
      let d = Core.Pfd_dist.exact_single u in
      let x = Core.Pfd_dist.quantile d alpha in
      Core.Pfd_dist.cdf d x >= alpha -. 1e-12)

let props =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_risk_ratio_le_one;
      prop_mu2_le_pmax_mu1;
      prop_sigma2_bound;
      prop_success_ratio_identity;
      prop_appendix_b;
      prop_exact_dist_mean;
      prop_cdf_monotone;
      prop_poisson_binomial_normalised;
      prop_quantile_cdf_consistency;
    ]

let () =
  Alcotest.run "core"
    [
      ( "fault",
        [
          Alcotest.test_case "make" `Quick test_fault_make;
          Alcotest.test_case "contributions" `Quick test_fault_contributions;
          Alcotest.test_case "scale" `Quick test_fault_scale;
        ] );
      ( "universe",
        [
          Alcotest.test_case "accessors" `Quick test_universe_accessors;
          Alcotest.test_case "empty" `Quick test_universe_empty;
          Alcotest.test_case "scale" `Quick test_universe_scale;
          Alcotest.test_case "set_p" `Quick test_universe_set_p;
          Alcotest.test_case "generators" `Quick test_universe_generators;
        ] );
      ( "moments",
        [
          Alcotest.test_case "hand computed" `Quick test_moments_hand_computed;
          Alcotest.test_case "channels" `Quick test_moments_channels;
          Alcotest.test_case "record" `Quick test_moments_record;
          Alcotest.test_case "mean gain" `Quick test_mean_gain;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "golden threshold" `Quick test_golden_threshold;
          Alcotest.test_case "paper sigma ratios" `Quick test_sigma_ratio_paper_values;
          Alcotest.test_case "paper table" `Quick test_paper_table;
          Alcotest.test_case "eq4/eq9 on example" `Quick test_eq4_eq9_on_tiny;
          Alcotest.test_case "eq12" `Quick test_eq12;
        ] );
      ( "fault_count",
        [
          Alcotest.test_case "prob none/some" `Quick test_prob_none_some;
          Alcotest.test_case "tiny probabilities" `Quick test_prob_some_tiny_p;
          Alcotest.test_case "N probabilities" `Quick test_n_probabilities;
          Alcotest.test_case "poisson-binomial small" `Quick test_poisson_binomial_small;
          Alcotest.test_case "binomial special case" `Quick
            test_poisson_binomial_binomial_case;
          Alcotest.test_case "count moments" `Quick test_poisson_binomial_moments;
          Alcotest.test_case "nk consistency" `Quick test_nk_consistency;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "analytic vs numeric" `Quick test_partial_matches_numerical;
          Alcotest.test_case "stationary closed form" `Quick
            test_stationary_p1_closed_form;
          Alcotest.test_case "sign pattern" `Quick test_stationary_sign_pattern;
          Alcotest.test_case "numeric search" `Quick test_stationary_numeric_search;
          Alcotest.test_case "Appendix B" `Quick test_k_derivative_nonnegative;
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "n=2 form" `Quick test_risk_ratio_two_consistent;
        ] );
      ( "improvement",
        [
          Alcotest.test_case "steps" `Quick test_improvement_steps;
          Alcotest.test_case "errors" `Quick test_improvement_errors;
          Alcotest.test_case "obviously better" `Quick test_obviously_better;
          Alcotest.test_case "trajectory" `Quick test_trajectory;
        ] );
      ( "pfd_dist",
        [
          Alcotest.test_case "exact tiny" `Quick test_exact_tiny;
          Alcotest.test_case "moments match" `Quick test_exact_moments_match_closed_form;
          Alcotest.test_case "prob positive" `Quick test_prob_positive_matches_n1;
          Alcotest.test_case "quantiles" `Quick test_quantile_properties;
          Alcotest.test_case "grid vs exact" `Quick test_grid_approximates_exact;
          Alcotest.test_case "exact limit" `Quick test_exact_limit;
          Alcotest.test_case "sampling" `Slow test_sampling_from_dist;
          Alcotest.test_case "mass merging" `Quick test_of_mass_merging;
          Alcotest.test_case "of_mass rejects NaN" `Quick
            test_of_mass_rejects_nan;
          Alcotest.test_case "of_sorted_arrays" `Quick test_of_sorted_arrays;
        ] );
      ( "normal_approx-assessment",
        [
          Alcotest.test_case "worked example" `Quick test_worked_example_values;
          Alcotest.test_case "eq12 covers ratio" `Quick test_bound_ratio_under_eq12;
          Alcotest.test_case "bound at confidence" `Quick test_bound_at_confidence;
          Alcotest.test_case "cdf/quantile roundtrip" `Quick
            test_normal_cdf_quantile_roundtrip;
          Alcotest.test_case "sil" `Quick test_sil;
          Alcotest.test_case "assess" `Quick test_assess;
          Alcotest.test_case "required pmax" `Quick test_required_pmax;
          Alcotest.test_case "required pmax trivial" `Quick test_required_pmax_trivial;
        ] );
      ("properties", props);
    ]
