(* Prop — a small property-based testing harness over Numerics.Rng.

   Each case draws its inputs from a dedicated [Rng.split] substream of
   one fixed base seed, so a suite is deterministic from run to run and
   across machines; set PROP_SEED=<int> to replay a reported failure or
   to explore a different stream. On failure the harness greedily
   shrinks the counterexample and reports the base seed, the case index
   and the shrunk value. *)

let base_seed =
  match Sys.getenv_opt "PROP_SEED" with
  | None | Some "" -> 0x5eed_cafe
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some seed -> seed
      | None -> invalid_arg ("PROP_SEED is not an integer: " ^ s))

type 'a t = {
  gen : Numerics.Rng.t -> 'a;
  shrink : 'a -> 'a Seq.t;
  pp : Format.formatter -> 'a -> unit;
}

let no_shrink _ = Seq.empty
let make ?(shrink = no_shrink) ~pp gen = { gen; shrink; pp }
let generate t rng = t.gen rng

(* ---- primitives ---- *)

(* Shrinking moves toward [lo]: jump all the way, then halve the
   distance, then step by one. *)
let shrink_int_toward lo v =
  List.to_seq [ lo; lo + ((v - lo) / 2); v - 1 ]
  |> Seq.filter (fun c -> c >= lo && c < v)

let int_range lo hi =
  if hi < lo then invalid_arg "Prop.int_range: empty range";
  make
    ~shrink:(shrink_int_toward lo)
    ~pp:Format.pp_print_int
    (fun rng -> lo + Numerics.Rng.int rng (hi - lo + 1))

let pair a b =
  make
    ~shrink:(fun (x, y) ->
      Seq.append
        (Seq.map (fun x' -> (x', y)) (a.shrink x))
        (Seq.map (fun y' -> (x, y')) (b.shrink y)))
    ~pp:(fun ppf (x, y) -> Format.fprintf ppf "(@[%a,@ %a@])" a.pp x b.pp y)
    (fun rng ->
      let x = a.gen rng in
      let y = b.gen rng in
      (x, y))

let triple a b c =
  make
    ~shrink:(fun (x, y, z) ->
      List.to_seq
        [
          Seq.map (fun x' -> (x', y, z)) (a.shrink x);
          Seq.map (fun y' -> (x, y', z)) (b.shrink y);
          Seq.map (fun z' -> (x, y, z')) (c.shrink z);
        ]
      |> Seq.concat)
    ~pp:(fun ppf (x, y, z) ->
      Format.fprintf ppf "(@[%a,@ %a,@ %a@])" a.pp x b.pp y c.pp z)
    (fun rng ->
      let x = a.gen rng in
      let y = b.gen rng in
      let z = c.gen rng in
      (x, y, z))

let quad a b c d =
  make
    ~shrink:(fun (x, y, z, w) ->
      List.to_seq
        [
          Seq.map (fun x' -> (x', y, z, w)) (a.shrink x);
          Seq.map (fun y' -> (x, y', z, w)) (b.shrink y);
          Seq.map (fun z' -> (x, y, z', w)) (c.shrink z);
          Seq.map (fun w' -> (x, y, z, w')) (d.shrink w);
        ]
      |> Seq.concat)
    ~pp:(fun ppf (x, y, z, w) ->
      Format.fprintf ppf "(@[%a,@ %a,@ %a,@ %a@])" a.pp x b.pp y c.pp z d.pp w)
    (fun rng ->
      let x = a.gen rng in
      let y = b.gen rng in
      let z = c.gen rng in
      let w = d.gen rng in
      (x, y, z, w))

(* ---- domain generators ---- *)

(* RNG seeds: positive, wide enough to hit distinct splitmix streams,
   shrinking toward 1 for readable counterexamples. *)
let seed = int_range 1 1_000_000

(* Shard counts: 1 (the legacy sequential path) through well past the
   default, so properties exercise both branches of the sharding
   contract. *)
let shard_count = int_range 1 24

(* Sized universe: a handful of faults with mixed p and a subdivided
   total failure measure. Shrinks by dropping trailing faults. *)
let universe ?(max_faults = 10) () =
  if max_faults < 1 then invalid_arg "Prop.universe: max_faults must be >= 1";
  make
    ~shrink:(fun u ->
      let faults = Core.Universe.faults u in
      let n = Array.length faults in
      List.to_seq [ (n + 1) / 2; n - 1 ]
      |> Seq.filter (fun k -> k >= 1 && k < n)
      |> Seq.map (fun k -> Core.Universe.of_faults (Array.sub faults 0 k)))
    ~pp:Core.Universe.pp
    (fun rng ->
      let n = 1 + Numerics.Rng.int rng max_faults in
      let total_q = Numerics.Rng.uniform rng ~lo:0.05 ~hi:0.6 in
      Core.Universe.uniform_random rng ~n ~p_lo:0.02 ~p_hi:0.5 ~total_q)

(* Sized concrete demand space: a uniform profile and a few interval
   faults (overlaps allowed — versions take unions). Shrinks by
   dropping trailing faults. *)
let space ?(max_size = 160) ?(max_faults = 5) () =
  if max_size < 40 then invalid_arg "Prop.space: max_size must be >= 40";
  if max_faults < 1 then invalid_arg "Prop.space: max_faults must be >= 1";
  let rebuild sp k =
    Demandspace.Space.create
      ~profile:(Demandspace.Space.profile sp)
      ~faults:
        (Array.init k (fun i ->
             ( Demandspace.Space.region sp i,
               Demandspace.Space.introduction_prob sp i )))
  in
  make
    ~shrink:(fun sp ->
      let n = Demandspace.Space.fault_count sp in
      List.to_seq [ (n + 1) / 2; n - 1 ]
      |> Seq.filter (fun k -> k >= 1 && k < n)
      |> Seq.map (rebuild sp))
    ~pp:Demandspace.Space.pp
    (fun rng ->
      let size = 40 + Numerics.Rng.int rng (max_size - 40 + 1) in
      let n_faults = 1 + Numerics.Rng.int rng max_faults in
      let faults =
        Array.init n_faults (fun _ ->
            let lo = Numerics.Rng.int rng size in
            let width = 1 + Numerics.Rng.int rng (max 1 (size / 8)) in
            let hi = min (size - 1) (lo + width - 1) in
            let region = Demandspace.Region.interval ~space_size:size ~lo ~hi in
            (region, Numerics.Rng.uniform rng ~lo:0.05 ~hi:0.7))
      in
      Demandspace.Space.create
        ~profile:(Demandspace.Profile.uniform ~size)
        ~faults)

(* Assessment-service request terms (the lib/serve wire protocol): any
   verb, universe vectors and knobs within the protocol limits, float
   parameters drawn from the full [0, 1) double range so the codec
   round-trip property exercises exact float rendering. Shrinks toward
   the cheapest verb (Moments), then drops trailing faults — a failing
   codec property lands on a one-fault moments request. *)
let serve_request ?(max_faults = 8) () =
  if max_faults < 1 then
    invalid_arg "Prop.serve_request: max_faults must be >= 1";
  let truncate (r : Serve.Proto.request) k =
    {
      r with
      Serve.Proto.u =
        {
          Serve.Proto.ps = Array.sub r.Serve.Proto.u.Serve.Proto.ps 0 k;
          qs = Array.sub r.Serve.Proto.u.Serve.Proto.qs 0 k;
        };
    }
  in
  make
    ~shrink:(fun (r : Serve.Proto.request) ->
      let n = Array.length r.Serve.Proto.u.Serve.Proto.ps in
      Seq.append
        (match r.Serve.Proto.verb with
        | Serve.Proto.Moments -> Seq.empty
        | _ -> Seq.return { r with Serve.Proto.verb = Serve.Proto.Moments })
        (List.to_seq [ (n + 1) / 2; n - 1 ]
        |> Seq.filter (fun k -> k >= 1 && k < n)
        |> Seq.map (truncate r)))
    ~pp:Serve.Proto.pp_request
    (fun rng ->
      let n = 1 + Numerics.Rng.int rng max_faults in
      let ps = Array.init n (fun _ -> Numerics.Rng.float rng) in
      let qs =
        Array.init n (fun _ -> Numerics.Rng.float rng /. float_of_int n)
      in
      let u = { Serve.Proto.ps; qs } in
      let id = Printf.sprintf "r%d" (Numerics.Rng.int rng 1_000_000) in
      let channels = 1 + Numerics.Rng.int rng 8 in
      let required = 1 + Numerics.Rng.int rng channels in
      let verb =
        match Numerics.Rng.int rng 4 with
        | 0 -> Serve.Proto.Moments
        | 1 -> Serve.Proto.Risk_ratio { channels; required }
        | 2 ->
            let bins =
              if Numerics.Rng.int rng 3 = 0 then 0
              else 2 + Numerics.Rng.int rng 511
            in
            Serve.Proto.Pfd_dist { channels; required; bins }
        | _ ->
            Serve.Proto.Fleet_mission
              {
                plants = 1 + Numerics.Rng.int rng 64;
                demands_per_plant = 1 + Numerics.Rng.int rng 10_000;
                mission_demands = 1 + Numerics.Rng.int rng 1_000_000;
                salt = Numerics.Rng.int rng 4096;
                shards = 1 + Numerics.Rng.int rng 16;
                space = 16 + Numerics.Rng.int rng 4096;
              }
      in
      { Serve.Proto.id; u; verb })

(* ---- differential-oracle generators (lib/check) ---- *)

let arch_eq a b =
  Core.Voting.channels a = Core.Voting.channels b
  && Core.Voting.required a = Core.Voting.required b

(* Random N-of-M architectures (including the paper's 1-out-of-2 and
   2-out-of-3 as ordinary draws). Shrinking proposes the paper's
   1-out-of-2 first, then single-step reductions of N and M, so a
   failing architecture property lands on the smallest voted system that
   still fails — ideally the configuration the paper analyses. *)
let voting_arch ?(max_channels = 4) () =
  if max_channels < 1 then
    invalid_arg "Prop.voting_arch: max_channels must be >= 1";
  make
    ~shrink:(fun arch ->
      if arch_eq arch Core.Voting.one_out_of_two then Seq.empty
      else
        let channels = Core.Voting.channels arch in
        let required = Core.Voting.required arch in
        List.to_seq
          ([ Core.Voting.one_out_of_two ]
          @ (if channels > 1 then
               [
                 Core.Voting.create ~channels:(channels - 1)
                   ~required:(min required (channels - 1));
               ]
             else [])
          @
          if required > 1 then
            [ Core.Voting.create ~channels ~required:(required - 1) ]
          else [])
        |> Seq.filter (fun c -> not (arch_eq c arch)))
    ~pp:Core.Voting.pp
    (fun rng ->
      let channels = 1 + Numerics.Rng.int rng max_channels in
      let required = 1 + Numerics.Rng.int rng channels in
      Core.Voting.create ~channels ~required)

(* Plain quorum adjudicators, shrinking toward the paper's OR
   adjudicator (required = 1), consistent with {!voting_arch}'s
   1-out-of-2 target. For full calculus terms see {!adjudicator_term}. *)
let adjudicator ?(max_required = 4) () =
  if max_required < 1 then
    invalid_arg "Prop.adjudicator: max_required must be >= 1";
  make
    ~shrink:(fun adj ->
      shrink_int_toward 1 (Simulator.Adjudicator.min_channels adj)
      |> Seq.map (fun required -> Simulator.Adjudicator.m_out_of_n ~required))
    ~pp:Simulator.Adjudicator.pp
    (fun rng ->
      Simulator.Adjudicator.m_out_of_n
        ~required:(1 + Numerics.Rng.int rng max_required))

(* Adjudicator calculus terms: leaves are [unit] and quorum votes,
   internal nodes [compose]/[fallback], nested up to [max_depth].
   Greedy shrinking proposes the paper's OR vote first, then each
   immediate subterm, then single-step quorum reductions — so a failing
   algebraic property lands on [vote ~required:1] or the smallest
   combinator that still breaks it. *)
let adjudicator_term ?(max_depth = 3) ?(max_required = 4) () =
  if max_depth < 0 then
    invalid_arg "Prop.adjudicator_term: max_depth must be >= 0";
  if max_required < 1 then
    invalid_arg "Prop.adjudicator_term: max_required must be >= 1";
  let leaf rng =
    if Numerics.Rng.int rng 4 = 0 then Simulator.Adjudicator.unit
    else
      Simulator.Adjudicator.vote
        ~required:(1 + Numerics.Rng.int rng max_required)
  in
  let rec gen_term rng depth =
    if depth <= 0 then leaf rng
    else
      match Numerics.Rng.int rng 4 with
      | 0 | 1 -> leaf rng
      | 2 ->
          Simulator.Adjudicator.compose
            (gen_term rng (depth - 1))
            (gen_term rng (depth - 1))
      | _ ->
          Simulator.Adjudicator.fallback
            (gen_term rng (depth - 1))
            (gen_term rng (depth - 1))
  in
  let shrink_term t =
    match Simulator.Adjudicator.policy t with
    | Core.Voting.Vote 1 -> Seq.empty
    | Core.Voting.Vote r ->
        shrink_int_toward 1 r
        |> Seq.map (fun required -> Simulator.Adjudicator.vote ~required)
    | Core.Voting.Unit -> Seq.return Simulator.Adjudicator.one_out_of_n
    | Core.Voting.Compose (a, b) | Core.Voting.Fallback (a, b) ->
        List.to_seq
          [
            Simulator.Adjudicator.one_out_of_n;
            Simulator.Adjudicator.of_policy a;
            Simulator.Adjudicator.of_policy b;
          ]
  in
  make ~shrink:shrink_term ~pp:Simulator.Adjudicator.pp (fun rng ->
      gen_term rng max_depth)

(* Channel output vectors, abstention-bearing by default. Shrinks by
   dropping the last output, then demoting the first Abstain to
   No_action and the first No_action to Shutdown — toward the shortest,
   most-binary counterexample. *)
let channel_outputs ?(max_channels = 6) ?(abstaining = true) () =
  if max_channels < 1 then
    invalid_arg "Prop.channel_outputs: max_channels must be >= 1";
  let demote = function
    | Simulator.Channel.Abstain -> Some Simulator.Channel.No_action
    | Simulator.Channel.No_action -> Some Simulator.Channel.Shutdown
    | Simulator.Channel.Shutdown -> None
  in
  let rec demote_first = function
    | [] -> None
    | o :: rest -> (
        match demote o with
        | Some o' -> Some (o' :: rest)
        | None -> Option.map (fun r -> o :: r) (demote_first rest))
  in
  make
    ~shrink:(fun outs ->
      let n = List.length outs in
      Seq.append
        (if n > 1 then Seq.return (List.filteri (fun i _ -> i < n - 1) outs)
         else Seq.empty)
        (match demote_first outs with
        | Some outs' -> Seq.return outs'
        | None -> Seq.empty))
    ~pp:(fun ppf outs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Simulator.Channel.pp_output)
        outs)
    (fun rng ->
      let n = 1 + Numerics.Rng.int rng max_channels in
      List.init n (fun _ ->
          match Numerics.Rng.int rng (if abstaining then 3 else 2) with
          | 0 -> Simulator.Channel.Shutdown
          | 1 -> Simulator.Channel.No_action
          | _ -> Simulator.Channel.Abstain))

(* Paired universe/demand-space scenario for the differential oracle
   registry: regions disjoint by construction, so the universe
   abstraction is exact. Shrinks the architecture toward 1-out-of-2
   first, then drops trailing faults (a subset of disjoint regions stays
   disjoint), rebuilding through [Check.Scenario.create] so every shrunk
   candidate is still a valid scenario. *)
let scenario ?max_channels ?max_faults ?replications () =
  let arch_gen = voting_arch ?max_channels () in
  let drop_faults s k =
    let sp = Check.Scenario.space s in
    let faults =
      Array.init k (fun i ->
          ( Demandspace.Space.region sp i,
            Demandspace.Space.introduction_prob sp i ))
    in
    Check.Scenario.create
      ~arch:(Check.Scenario.arch s)
      ~space:
        (Demandspace.Space.create
           ~profile:(Demandspace.Space.profile sp)
           ~faults)
      ~sim_seed:(Check.Scenario.sim_seed s)
      ~replications:(Check.Scenario.replications s)
  in
  make
    ~shrink:(fun s ->
      let with_arch arch =
        Check.Scenario.create ~arch
          ~space:(Check.Scenario.space s)
          ~sim_seed:(Check.Scenario.sim_seed s)
          ~replications:(Check.Scenario.replications s)
      in
      let n = Demandspace.Space.fault_count (Check.Scenario.space s) in
      Seq.append
        (Seq.map with_arch (arch_gen.shrink (Check.Scenario.arch s)))
        (List.to_seq [ (n + 1) / 2; n - 1 ]
        |> Seq.filter (fun k -> k >= 1 && k < n)
        |> Seq.map (drop_faults s)))
    ~pp:Check.Scenario.pp
    (fun rng -> Check.Scenario.generate ?max_channels ?max_faults ?replications rng)

(* ---- runner ---- *)

let run_case f value =
  match f value with
  | () -> None
  | exception exn -> Some (Printexc.to_string exn)

(* Greedy shrink: take the first shrink candidate that still fails,
   repeat from there, give up when none fails or the budget runs out. *)
let rec shrink_loop t f value err budget =
  if budget <= 0 then (value, err)
  else
    let failing =
      Seq.find_map
        (fun v ->
          match run_case f v with Some e -> Some (v, e) | None -> None)
        (t.shrink value)
    in
    match failing with
    | None -> (value, err)
    | Some (v, e) -> shrink_loop t f v e (budget - 1)

(* First failing case (if any), with its value greedily shrunk. Exposed
   separately from {!check} so the harness can be tested itself. *)
let find_counterexample ?(cases = 100) t f =
  if cases < 1 then invalid_arg "Prop.find_counterexample: cases must be >= 1";
  let parent = Numerics.Rng.create ~seed:base_seed in
  let rec search case =
    if case >= cases then None
    else
      let rng = Numerics.Rng.split parent ~index:case in
      let value = t.gen rng in
      match run_case f value with
      | None -> search (case + 1)
      | Some err ->
          let value, err = shrink_loop t f value err 500 in
          Some (case, value, err)
  in
  search 0

let check ?cases name t f =
  match find_counterexample ?cases t f with
  | None -> ()
  | Some (case, value, err) ->
      Alcotest.failf
        "property %S: case %d failed; replay with PROP_SEED=%d@\n\
         counterexample (shrunk): %a@\n\
         %s"
        name case base_seed t.pp value err
