(* Bench harness.

   Pass 1 regenerates every table and figure of the paper (one experiment
   per artefact, see DESIGN.md's index) — the reproduction output proper.
   Pass 2 times the computational kernels with bechamel, one Test.make per
   kernel, so performance regressions in the library are visible.

   Run with:  dune exec bench/main.exe            (both passes)
              dune exec bench/main.exe -- tables  (reproduction only)
              dune exec bench/main.exe -- kernels (timings only)
              dune exec bench/main.exe -- json [--smoke] [-o FILE]
                 (kernel timings as BENCH_kernels.json; --smoke runs a
                  minimal-iteration pass for CI structural validation)

   Every mode also accepts --domains N (size of the default Exec pool)
   and --shards M (default shard count for the sharded library entry
   points). Changing domains never changes results; changing shards
   changes them deterministically.

   The json mode records the seed and, when the caller passes it, the git
   short revision via the GIT_REV environment variable — `make bench-json`
   does both — so the perf trajectory in BENCH_kernels.json is
   attributable to a commit. *)

open Bechamel
open Toolkit

let seed = 42

(* ------------------------------------------------------------------ *)
(* Kernel benchmarks                                                   *)
(* ------------------------------------------------------------------ *)

let kernel_universe n =
  let rng = Numerics.Rng.create ~seed in
  Core.Universe.uniform_random rng ~n ~p_lo:0.01 ~p_hi:0.4 ~total_q:0.5

(* Synthetic but schema-valid run log for the evidence-ingest kernel,
   generated once per process through the streaming runlog writer (so
   the file never lives in memory) and removed at exit. Alternating
   runner.run / fleet.plant events with a small demand histogram keep
   the lines at realistic field counts without E26's 1600-bin
   histograms dominating the byte count. *)
let evidence_log_path ~events =
  lazy
    (let path = Filename.temp_file "divrel_bench_evidence" ".jsonl" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     let oc = open_out path in
     let log = Obs.Runlog.create_streaming oc in
     Obs.Runlog.set_sink (Some log);
     Obs.Runlog.record ~kind:"run.start"
       [
         ("target", Obs.Json.String "bench.evidence");
         ("seed", Obs.Json.Int seed);
         ("shards", Obs.Json.Int 1);
       ];
     for i = 1 to events do
       if i land 1 = 0 then
         Obs.Runlog.record ~kind:"fleet.plant"
           [
             ("plant", Obs.Json.Int (i mod 400));
             ("demands", Obs.Json.Int 1000);
             ("failures", Obs.Json.Int (i mod 7));
             ("true_pfd", Obs.Json.Float 0.001);
           ]
       else
         Obs.Runlog.record ~kind:"runner.run"
           [
             ("demands", Obs.Json.Int 1000);
             ("system_failures", Obs.Json.Int (i mod 7));
             ("coincident_failures", Obs.Json.Int 0);
             ("rng_draws", Obs.Json.Int 2000);
             ( "demand_hist",
               Obs.Json.List
                 [
                   Obs.Json.List
                     [ Obs.Json.Int (i mod 64); Obs.Json.Int 600 ];
                   Obs.Json.List
                     [ Obs.Json.Int ((i + 7) mod 64); Obs.Json.Int 400 ];
                 ] );
           ]
     done;
     Obs.Runlog.record ~kind:"run.end"
       [
         ("target", Obs.Json.String "bench.evidence");
         ("seed", Obs.Json.Int seed);
         ("shards", Obs.Json.Int 1);
         ("rng_draws", Obs.Json.Int 0);
         ("duration_ns", Obs.Json.Int 0);
       ];
     Obs.Runlog.set_sink None;
     close_out oc;
     path)

let tests ~smoke () =
  let u_small = kernel_universe 16 in
  let u_big = kernel_universe 1000 in
  let ps_big = Core.Universe.ps u_big in
  let rng = Numerics.Rng.create ~seed:(seed + 1) in
  let space =
    Demandspace.Genspace.disjoint_space rng ~width:48 ~height:48 ~n_faults:12
      ~max_extent:4 ~p_lo:0.05 ~p_hi:0.4
      ~profile:(Demandspace.Profile.uniform ~size:(48 * 48))
  in
  let va, vb = Simulator.Devteam.develop_pair rng space in
  let system =
    Simulator.Protection.one_out_of_two
      (Simulator.Channel.create ~name:"A" va)
      (Simulator.Channel.create ~name:"B" vb)
  in
  let prior = Extensions.Bayes.of_pfd_dist (Core.Pfd_dist.exact_pair u_small) in
  (* Fixed-size pools for the parallel-estimate kernels: same seed, same
     shard count, different domain counts — the pair demonstrates (and
     the determinism test asserts) that timings may move but outputs
     cannot. Created lazily, and the kernels using them run last:
     spawned-but-idle domains make every stop-the-world Gc round (and
     hence bechamel's stabilization between samples) far more expensive,
     which would starve the sequential kernels of samples. *)
  let pool1 = lazy (Exec.Pool.create ~domains:1 ()) in
  let pool4 = lazy (Exec.Pool.create ~domains:4 ()) in
  let fleet_systems =
    lazy
      (let r = Numerics.Rng.create ~seed:(seed + 5) in
       Simulator.Fleet.deploy_pairs ~shards:1 r space ~plants:24)
  in
  (* Smoke mode validates structure, not timings: a 20k-event log keeps
     the CI gate fast while the full run ingests the advertised 1e6. *)
  let evidence_log =
    evidence_log_path ~events:(if smoke then 20_000 else 1_000_000)
  in
  (* Assessment-service throughput: an in-process daemon per worker
     count (spawned lazily, shut down at exit) and one persistent
     client; an iteration pipelines a 32-request batch of moments
     evaluations and drains the replies, timing codec + admission +
     dispatch + socket I/O end to end. Responses are byte-identical
     across the pair — only the timing may move. *)
  let serve_lines =
    lazy
      (Array.init 32 (fun i ->
           Serve.Proto.render_request
             {
               Serve.Proto.id = Printf.sprintf "k%d" i;
               u =
                 {
                   Serve.Proto.ps = [| 0.1; 0.02; 0.3 |];
                   qs = [| 1e-3; 1e-4; 5e-3 |];
                 };
               verb = Serve.Proto.Moments;
             }))
  in
  let serve_client workers =
    lazy
      (let path = Filename.temp_file "divrel_bench_serve" ".sock" in
       Sys.remove path;
       let config =
         {
           Serve.Server.listen = Serve.Server.Unix_path path;
           workers;
           queue_capacity = 64;
           batch_max = 8;
           seed;
         }
       in
       let thread =
         Thread.create (fun () -> ignore (Serve.Server.serve config)) ()
       in
       let client = Serve.Client.connect (Serve.Server.Unix_path path) in
       at_exit (fun () ->
           (try
              ignore
                (Serve.Client.round_trip client
                   (Serve.Proto.render_admin ~id:"bye" Serve.Proto.Shutdown));
              Serve.Client.close client
            with _ -> ());
           try Thread.join thread with _ -> ());
       client)
  in
  let serve_round client =
    let lines = Lazy.force serve_lines in
    Array.iter (Serve.Client.send_line client) lines;
    for _ = 1 to Array.length lines do
      match Serve.Client.recv_line client with
      | Some _ -> ()
      | None -> failwith "serve bench: server closed the connection"
    done
  in
  [
    Test.make ~name:"moments/n=1000"
      (Staged.stage (fun () -> ignore (Core.Moments.compute u_big)));
    Test.make ~name:"risk-ratio/n=1000"
      (Staged.stage (fun () -> ignore (Core.Fault_count.risk_ratio u_big)));
    Test.make ~name:"poisson-binomial/n=1000"
      (Staged.stage (fun () -> ignore (Core.Fault_count.poisson_binomial ps_big)));
    Test.make ~name:"exact-pfd-dist/n=16"
      (Staged.stage (fun () -> ignore (Core.Pfd_dist.exact_single u_small)));
    (* Fast-vs-naive kernel pairs for the rewritten hot paths: the
       unsuffixed names above/below time whatever the library defaults
       to (now the incremental formulations), the explicit pairs keep
       both sides measurable so benchdiff can track the gap as the
       kernels evolve. *)
    Test.make ~name:"exact-pfd-dist-fast/n=16"
      (Staged.stage
         (let probs = Core.Universe.ps u_small
          and values = Core.Universe.qs u_small in
          fun () -> ignore (Core.Pfd_dist.exact_of_vectors ~probs ~values ())));
    Test.make ~name:"exact-pfd-dist-naive/n=16"
      (Staged.stage
         (let probs = Core.Universe.ps u_small
          and values = Core.Universe.qs u_small in
          fun () ->
            ignore (Core.Pfd_dist.exact_of_vectors_naive ~probs ~values ())));
    Test.make ~name:"grid-pfd-dist/n=1000,bins=2048"
      (Staged.stage (fun () -> ignore (Core.Pfd_dist.grid_single u_big ~bins:2048)));
    Test.make ~name:"sensitivity-gradient/n=1000"
      (Staged.stage (fun () ->
           ignore (Core.Sensitivity.risk_ratio_gradient ps_big)));
    Test.make ~name:"sensitivity-gradient-incremental/n=1000"
      (Staged.stage (fun () ->
           ignore (Core.Sensitivity.risk_ratio_gradient ~shards:1 ps_big)));
    Test.make ~name:"sensitivity-gradient-naive/n=1000"
      (Staged.stage (fun () ->
           ignore (Core.Sensitivity.risk_ratio_gradient_naive ps_big)));
    Test.make ~name:"normal-ppf"
      (Staged.stage
         (let p = ref 0.001 in
          fun () ->
            p := if !p > 0.99 then 0.001 else !p +. 0.001;
            ignore (Numerics.Normal_dist.ppf !p)));
    Test.make ~name:"develop-pair/n=1000"
      (Staged.stage
         (let r = Numerics.Rng.create ~seed:(seed + 2) in
          fun () -> ignore (Simulator.Devteam.pair_pfd_from_universe r u_big)));
    Test.make ~name:"run-1000-demands"
      (Staged.stage
         (let r = Numerics.Rng.create ~seed:(seed + 3) in
          fun () -> ignore (Simulator.Runner.run r ~system ~demand_count:1000)));
    Test.make ~name:"bayes-update/10k-demands"
      (Staged.stage (fun () ->
           ignore (Extensions.Bayes.observe_failure_free prior ~demands:10_000)));
    Test.make ~name:"el-difficulty-sweep/48x48"
      (Staged.stage (fun () ->
           ignore (Baselines.Eckhardt_lee.mean_pair space)));
    Test.make ~name:"mc-estimate-parallel/1dom"
      (Staged.stage
         (let r = Numerics.Rng.create ~seed:(seed + 4) in
          fun () ->
            ignore
              (Simulator.Montecarlo.estimate ~pool:(Lazy.force pool1) ~shards:8
                 r u_big ~replications:64)));
    Test.make ~name:"mc-estimate-parallel/4dom"
      (Staged.stage
         (let r = Numerics.Rng.create ~seed:(seed + 4) in
          fun () ->
            ignore
              (Simulator.Montecarlo.estimate ~pool:(Lazy.force pool4) ~shards:8
                 r u_big ~replications:64)));
    (* Fleet observation sharded over the pool: the other determinism
       demonstrator pair. The systems are deployed once at setup (on the
       legacy sequential path so no pool is forced early); each run
       observes the whole fleet with 8 shards, exercising the batched
       demand sampling in the runner hot loop. *)
    Test.make ~name:"fleet-observe-parallel/1dom"
      (Staged.stage
         (let r = Numerics.Rng.create ~seed:(seed + 6) in
          fun () ->
            ignore
              (Simulator.Fleet.observe ~pool:(Lazy.force pool1) ~shards:8 r
                 (Lazy.force fleet_systems) ~demands_per_plant:2000)));
    Test.make ~name:"fleet-observe-parallel/4dom"
      (Staged.stage
         (let r = Numerics.Rng.create ~seed:(seed + 6) in
          fun () ->
            ignore
              (Simulator.Fleet.observe ~pool:(Lazy.force pool4) ~shards:8 r
                 (Lazy.force fleet_systems) ~demands_per_plant:2000)));
    (* Proven-in-use evidence pipeline: one full single-pass ingest of
       the synthetic run log (file -> cursor -> assessor -> verdict),
       the same path the `experiments_cli evidence` verb drives. *)
    Test.make ~name:"evidence-ingest/1e6"
      (Staged.stage (fun () ->
           let a =
             Evidence.Assessor.create Evidence.Assessor.default_config
           in
           let src = Evidence.Source.open_file (Lazy.force evidence_log) in
           Evidence.Source.iter_lines src ~f:(Evidence.Assessor.ingest_line a);
           Evidence.Source.close src;
           ignore (Evidence.Verdict.of_assessor a)));
    (* Run last, like the pool pairs above: the 4-worker daemon keeps
       three extra domains alive from first use to process exit. *)
    Test.make ~name:"serve-throughput/1workers"
      (Staged.stage
         (let client = serve_client 1 in
          fun () -> serve_round (Lazy.force client)));
    Test.make ~name:"serve-throughput/4workers"
      (Staged.stage
         (let client = serve_client 4 in
          fun () -> serve_round (Lazy.force client)));
  ]

type kernel_row = {
  name : string;
  ns_per_run : float option;
  r_square : float option;
  samples : int;
  domains : int;
}

(* Domains each kernel computed on, recorded per row in the JSON.
   Sequential kernels run on the calling domain; the parallel-estimate
   pair pins its pool size in the kernel name; the naive gradient
   reference shards over the process default pool (sized by --domains /
   DIVREL_DOMAINS). The incremental gradient never engages the pool. *)
let kernel_domains name =
  match name with
  | "mc-estimate-parallel/1dom" | "fleet-observe-parallel/1dom"
  | "serve-throughput/1workers" ->
      1
  | "mc-estimate-parallel/4dom" | "fleet-observe-parallel/4dom"
  | "serve-throughput/4workers" ->
      4
  | "sensitivity-gradient-naive/n=1000" -> Exec.Pool.size (Exec.Pool.default ())
  | _ -> 1

(* Slow kernels complete few runs inside the standard half-second quota
   and their OLS fit gets noisy (r^2 well below the 0.9 the repo wants
   to publish); give them a larger measurement budget. *)
let generous_quota_kernels =
  [
    "grid-pfd-dist/n=1000,bins=2048";
    "moments/n=1000";
    "sensitivity-gradient-naive/n=1000";
    "exact-pfd-dist-naive/n=16";
    "mc-estimate-parallel/1dom";
    "mc-estimate-parallel/4dom";
    "fleet-observe-parallel/1dom";
    "fleet-observe-parallel/4dom";
    "serve-throughput/1workers";
    "serve-throughput/4workers";
  ]

(* The evidence-ingest kernel makes one multi-second pass over a
   150MB-scale run log per iteration; it needs a far larger budget than
   even the generous tier to collect enough samples for a clean OLS
   fit. *)
let marathon_quota_kernels = [ "evidence-ingest/1e6" ]

let cfg_for ~smoke name =
  if smoke then Benchmark.cfg ~limit:2 ~quota:(Time.second 0.001) ()
  else if List.mem name marathon_quota_kernels then
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 30.0) ~stabilize:true ()
  else if List.mem name generous_quota_kernels then
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 3.0) ~stabilize:true ()
  else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()

(* Minimum OLS fit quality the artefact is allowed to publish. On a
   loaded single-core host one scheduler spike can ruin a whole
   measurement window, so a kernel whose fit comes out below this is
   re-measured (up to [max_attempts] total) and the best-fitting attempt
   kept — re-rolling the fit, never the timing itself. *)
let target_r_square = 0.9
let max_attempts = 5

(* Run every kernel and return one row per kernel, sorted by name. With
   [smoke] the benchmark budget collapses to a couple of iterations per
   kernel — enough for the CI gate to validate the JSON structure without
   paying benchmarking time. *)
let measure_kernels ~smoke () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let fit_of name b =
    match instances with
    | [] -> None
    | instance :: _ -> (
        let h = Hashtbl.create 1 in
        Hashtbl.add h name b;
        let per = Analyze.all ols instance h in
        match Hashtbl.find_opt per name with
        | Some o -> Analyze.OLS.r_square o
        | None -> None)
  in
  let measure_one elt =
    let name = Test.Elt.name elt in
    let cfg = cfg_for ~smoke name in
    let run () =
      let b = Benchmark.run cfg instances elt in
      (b, Option.value ~default:0.0 (fit_of name b))
    in
    let rec retry best best_r2 attempts_left =
      if best_r2 >= target_r_square || attempts_left = 0 then best
      else
        let b, r2 = run () in
        if r2 > best_r2 then retry b r2 (attempts_left - 1)
        else retry best best_r2 (attempts_left - 1)
    in
    let b, r2 = run () in
    if smoke then b else retry b r2 (max_attempts - 1)
  in
  let raw =
    List.fold_left
      (fun acc test ->
        List.fold_left
          (fun acc elt ->
            Hashtbl.add acc (Test.Elt.name elt) (measure_one elt);
            acc)
          acc (Test.elements test))
      (Hashtbl.create 16)
      (tests ~smoke ())
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure per_test ->
      Hashtbl.iter
        (fun name ols_result ->
          let ns_per_run =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Some e
            | _ -> None
          in
          let samples =
            match Hashtbl.find_opt raw name with
            | Some b -> b.Benchmark.stats.Benchmark.samples
            | None -> 0
          in
          rows :=
            {
              name;
              ns_per_run;
              r_square = Analyze.OLS.r_square ols_result;
              samples;
              domains = kernel_domains name;
            }
            :: !rows)
        per_test)
    merged;
  List.sort (fun a b -> compare a.name b.name) !rows

let print_kernel_table rows =
  print_endline "\n================ kernel timings (bechamel, OLS) ================";
  Printf.printf "%-34s %14s %10s\n" "kernel" "ns/run" "r^2";
  Printf.printf "%s\n" (String.make 60 '-');
  List.iter
    (fun row ->
      let estimate =
        match row.ns_per_run with
        | Some e -> Printf.sprintf "%14.1f" e
        | None -> Printf.sprintf "%14s" "n/a"
      in
      let r2 =
        match row.r_square with
        | Some r -> Printf.sprintf "%10.4f" r
        | None -> Printf.sprintf "%10s" "n/a"
      in
      Printf.printf "%-34s %s %s\n" row.name estimate r2)
    rows

(* ------------------------------------------------------------------ *)
(* JSON output (BENCH_kernels.json)                                    *)
(* ------------------------------------------------------------------ *)

let bench_json ~smoke rows =
  let opt_float = function Some f -> Obs.Json.Float f | None -> Obs.Json.Null in
  let kernel row =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String row.name);
        ("ns_per_run", opt_float row.ns_per_run);
        ("r_square", opt_float row.r_square);
        ("samples", Obs.Json.Int row.samples);
        ("domains", Obs.Json.Int row.domains);
      ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "divrel-bench/2");
      ("seed", Obs.Json.Int seed);
      ( "git_rev",
        Obs.Json.String
          (match Sys.getenv_opt "GIT_REV" with
          | Some rev when String.trim rev <> "" -> String.trim rev
          | _ -> "unknown") );
      ("mode", Obs.Json.String (if smoke then "smoke" else "full"));
      ("kernels", Obs.Json.List (List.map kernel rows));
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let run_kernels () = print_kernel_table (measure_kernels ~smoke:false ())

let run_json ~smoke ~out () =
  let rows = measure_kernels ~smoke () in
  write_file out (Obs.Json.render (bench_json ~smoke rows) ^ "\n");
  Printf.printf "bench: wrote %d kernel timings to %s%s\n" (List.length rows)
    out
    (if smoke then " (smoke mode: timings are not meaningful)" else "")

let run_tables () =
  print_endline
    "================ paper artefact reproduction (all tables & figures) \
     ================";
  print_string (Experiments.Registry.render_all ~seed ())

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let mode =
    match List.find_opt (fun a -> String.length a > 0 && a.[0] <> '-') args with
    | Some m -> m
    | None -> "all"
  in
  let smoke = List.mem "--smoke" args in
  let rec out_of = function
    | "-o" :: path :: _ -> path
    | _ :: tl -> out_of tl
    | [] -> "BENCH_kernels.json"
  in
  let out = out_of args in
  let rec int_flag name = function
    | f :: v :: tl ->
        if f = name then int_of_string_opt v else int_flag name (v :: tl)
    | _ -> None
  in
  (match int_flag "--domains" args with
  | Some d -> Exec.Pool.set_default_domains d
  | None -> ());
  (match int_flag "--shards" args with
  | Some s -> Exec.set_default_shards s
  | None -> ());
  (match mode with
  | "tables" -> run_tables ()
  | "kernels" -> run_kernels ()
  | "json" -> run_json ~smoke ~out ()
  | _ ->
      run_tables ();
      run_kernels ());
  print_endline "\nbench: done"
