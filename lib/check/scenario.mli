(** A randomized cross-check scenario: a voted architecture paired with a
    concrete demand space and its exact universe abstraction.

    The space's failure regions are disjoint by construction, so
    [Demandspace.Space.to_universe] is exact (the paper's non-overlap
    assumption holds) and every analytic quantity computed on the
    universe is directly comparable with a simulation over the space.
    The scenario also fixes the simulation substream seed and the
    replication budget, making every oracle verdict a pure function of
    the scenario. *)

type t

val create :
  arch:Core.Voting.t ->
  space:Demandspace.Space.t ->
  sim_seed:int ->
  replications:int ->
  t
(** Raises [Invalid_argument] when the space's regions overlap (the
    universe abstraction would be the pessimistic Section 6.2
    approximation, not an exact pairing) or [replications < 1]. *)

val generate :
  ?max_channels:int -> ?max_faults:int -> ?replications:int -> Numerics.Rng.t -> t
(** Random N-of-M architecture (N <= [max_channels], default 4) over a
    random disjoint-region space (<= [max_faults] faults, default 6;
    introduction probabilities in [0.1, 0.65] so Monte-Carlo event
    counts stay testable at the default 1200 replications). *)

val arch : t -> Core.Voting.t
val space : t -> Demandspace.Space.t

val universe : t -> Core.Universe.t
(** Exactly [Demandspace.Space.to_universe (space t)]. *)

val sim_seed : t -> int
val replications : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
