open Numerics

type voted_run = {
  pfds : float array;
  system_faulty : int;
  single_faulty : int;
}

(* Abstract-model simulation of an N-of-M architecture: develop the N
   channels as independent Bernoulli draws over the universe (exactly
   the paper's development model) and apply the voting rule per fault —
   fault i defeats the system iff at least N - M + 1 channels carry it.
   This is an independent implementation of the event [Voting] treats
   with binomial tail probabilities, which is what makes the comparison
   a differential test rather than a tautology. *)
let voted rng universe ~arch ~replications =
  if replications < 1 then invalid_arg "Sim.voted: replications must be >= 1";
  let n = Core.Universe.size universe in
  let channels = Core.Voting.channels arch in
  let defeat = channels - Core.Voting.required arch + 1 in
  let ps = Core.Universe.ps universe in
  let qs = Core.Universe.qs universe in
  let counts = Array.make n 0 in
  let pfds = Array.make replications 0.0 in
  let system_faulty = ref 0 and single_faulty = ref 0 in
  for r = 0 to replications - 1 do
    Array.fill counts 0 n 0;
    let first_nonempty = ref false in
    for c = 0 to channels - 1 do
      for i = 0 to n - 1 do
        if Rng.bool rng ~p:ps.(i) then begin
          counts.(i) <- counts.(i) + 1;
          if c = 0 then first_nonempty := true
        end
      done
    done;
    pfds.(r) <-
      Kahan.sum_over n (fun i -> if counts.(i) >= defeat then qs.(i) else 0.0);
    if !first_nonempty then incr single_faulty;
    if Array.exists (fun c -> c >= defeat) counts then incr system_faulty
  done;
  { pfds; system_faulty = !system_faulty; single_faulty = !single_faulty }

(* Full-stack simulation: concrete versions over the demand space,
   executable channels behind the M-out-of-N [Simulator.Adjudicator],
   exact system PFD by sweeping every demand through
   [Protection.respond]. Exercises the entire executable path the
   abstract sampler above bypasses. *)
let concrete_voted_pfds rng space ~arch ~replications =
  if replications < 1 then
    invalid_arg "Sim.concrete_voted_pfds: replications must be >= 1";
  let channels = Core.Voting.channels arch in
  let required = Core.Voting.required arch in
  Array.init replications (fun _ ->
      let chans =
        List.init channels (fun i ->
            Simulator.Channel.create
              ~name:(Printf.sprintf "ch%d" i)
              (Simulator.Devteam.develop rng space))
      in
      Simulator.Protection.true_pfd (Simulator.Protection.voted ~required chans))

(* Concrete 1-out-of-2 development: true single and pair PFDs by set
   intersection (no non-overlap assumption used on the simulation
   side). *)
let concrete_pairs rng space ~replications =
  if replications < 1 then
    invalid_arg "Sim.concrete_pairs: replications must be >= 1";
  let singles = Array.make replications 0.0 in
  let pairs = Array.make replications 0.0 in
  for r = 0 to replications - 1 do
    let va, vb = Simulator.Devteam.develop_pair rng space in
    singles.(r) <- Demandspace.Version.pfd va;
    pairs.(r) <- Demandspace.Version.pair_pfd va vb
  done;
  (singles, pairs)

(* Adjudicated-system sampler through the *list* path: per replication,
   develop [channels] abstract fault sets and, per fault, build the
   actual [Channel.output] vector (clean channel -> Shutdown, undetected
   carrier -> No_action, self-detected carrier -> Abstain) and hand it
   to [Adjudicator.combine]. Independent of both the counts fast path
   ([Devteam.adjudicated_system_pfd], the runner's decision table) and
   the closed form ([Voting.policy_defeat_prob]): a bug in the fold, the
   decision table or the binomial integration breaks three-way
   agreement. *)
let adjudicated rng universe ~channels ~detection ~adjudicator ~replications =
  if replications < 1 then
    invalid_arg "Sim.adjudicated: replications must be >= 1";
  if channels < 1 then invalid_arg "Sim.adjudicated: channels must be >= 1";
  if detection < 0.0 || detection > 1.0 then
    invalid_arg "Sim.adjudicated: detection outside [0, 1]";
  let n = Core.Universe.size universe in
  let ps = Core.Universe.ps universe in
  let qs = Core.Universe.qs universe in
  let outputs = Array.make_matrix channels n Simulator.Channel.Shutdown in
  Array.init replications (fun _ ->
      for c = 0 to channels - 1 do
        for i = 0 to n - 1 do
          outputs.(c).(i) <-
            (if Rng.bool rng ~p:ps.(i) then
               if detection > 0.0 && Rng.bool rng ~p:detection then
                 Simulator.Channel.Abstain
               else Simulator.Channel.No_action
             else Simulator.Channel.Shutdown)
        done
      done;
      Kahan.sum_over n (fun i ->
          let vector = List.init channels (fun c -> outputs.(c).(i)) in
          if Simulator.Adjudicator.system_fails adjudicator vector then qs.(i)
          else 0.0))

let count_positive samples =
  Array.fold_left (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 samples
