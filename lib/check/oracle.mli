(** A differential oracle: one analytic quantity paired with an
    independent estimator of the same quantity, plus the comparator that
    decides agreement.

    Running an oracle on a {!Scenario.t} yields one {!outcome} per
    checked quantity. For Monte-Carlo oracles the [simulated] side is a
    sample statistic; for closed-form-vs-closed-form oracles (e.g. exact
    enumeration against direct summation) it is the second derivation of
    the same value. *)

type outcome = {
  oracle : string;
  quantity : string;  (** e.g. ["mu2 (eq. 1)"] *)
  analytic : float;
  simulated : float;
  verdict : Compare.verdict;
}

type t

val make :
  id:string -> description:string -> (Scenario.t -> outcome list) -> t

val id : t -> string
val description : t -> string

val run : t -> Scenario.t -> outcome list
(** Evaluate both sides and compare. When a run log is active
    (lib/obs), every outcome is recorded as a [check.oracle] event. *)

val passed : outcome -> bool

val rng : Scenario.t -> salt:int -> Numerics.Rng.t
(** The oracle's private simulation substream:
    [Rng.split (Rng.create ~seed:(sim_seed scenario)) ~index:salt].
    Distinct salts give independent streams, so registry membership
    never perturbs another oracle's verdict. *)

val pp_outcome : Format.formatter -> outcome -> unit
