type t = {
  arch : Core.Voting.t;
  space : Demandspace.Space.t;
  universe : Core.Universe.t;
  sim_seed : int;
  replications : int;
}

let arch t = t.arch
let space t = t.space
let universe t = t.universe
let sim_seed t = t.sim_seed
let replications t = t.replications

let create ~arch ~space ~sim_seed ~replications =
  if replications < 1 then
    invalid_arg "Scenario.create: replications must be >= 1";
  if not (Demandspace.Space.regions_disjoint space) then
    invalid_arg
      "Scenario.create: failure regions must be disjoint so the universe \
       abstraction is exact (the paper's non-overlap assumption)";
  { arch; space; universe = Demandspace.Space.to_universe space; sim_seed; replications }

(* Random paired scenario: a uniform-profile space whose failure regions
   are disjoint by construction (one interval per equal block of the
   demand space), so [Space.to_universe] is exact and every analytic
   quantity on the universe is directly comparable with simulation on
   the space. Introduction probabilities stay in [0.1, 0.65]: bounded
   away from 0 so the Monte-Carlo events the statistical comparators
   count are not vanishingly rare at the default replication counts. *)
let generate ?(max_channels = 4) ?(max_faults = 6) ?(replications = 1200) rng =
  if max_channels < 1 then
    invalid_arg "Scenario.generate: max_channels must be >= 1";
  if max_faults < 1 then invalid_arg "Scenario.generate: max_faults must be >= 1";
  let channels = 1 + Numerics.Rng.int rng max_channels in
  let required = 1 + Numerics.Rng.int rng channels in
  let arch = Core.Voting.create ~channels ~required in
  let n_faults = 1 + Numerics.Rng.int rng max_faults in
  let size = 60 + Numerics.Rng.int rng 161 in
  let block = size / n_faults in
  let faults =
    Array.init n_faults (fun i ->
        let width = 1 + Numerics.Rng.int rng (max 1 (block / 2)) in
        let lo = (block * i) + Numerics.Rng.int rng (block - width + 1) in
        let region =
          Demandspace.Region.interval ~space_size:size ~lo ~hi:(lo + width - 1)
        in
        (region, Numerics.Rng.uniform rng ~lo:0.1 ~hi:0.65))
  in
  let space =
    Demandspace.Space.create
      ~profile:(Demandspace.Profile.uniform ~size)
      ~faults
  in
  let sim_seed = 1 + Numerics.Rng.int rng 1_000_000 in
  create ~arch ~space ~sim_seed ~replications

let pp ppf t =
  Fmt.pf ppf "%a over %d faults on %d demands (sim_seed=%d, replications=%d)"
    Core.Voting.pp t.arch
    (Demandspace.Space.fault_count t.space)
    (Demandspace.Space.size t.space)
    t.sim_seed t.replications

let to_string t = Fmt.str "%a" pp t
