(** Statistical comparators for the differential oracles.

    Three strengths of agreement, matching how the two sides of each
    oracle were computed:

    - {!exact_bits} — two code paths that must produce the identical
      double (golden pins, degenerate algebraic reductions);
    - {!approx} — independent closed forms that agree up to rounding
      (enumeration vs direct summation);
    - {!wilson} / {!mean_z} / {!ratio_wilson} — Monte-Carlo agreement:
      the analytic value must fall inside a z-sigma sampling interval of
      the estimate. With the default z (6), verdicts on a fixed seed are
      deterministic and a fresh seed has a ~2e-9 per-check false-alarm
      probability, so the differential suites are seed-stable and never
      flaky by construction. *)

type verdict = { pass : bool; comparator : string; detail : string }

val default_z : float
(** 6.0 — see the rationale above. *)

val exact_bits : float -> float -> verdict
(** Bit-identical doubles (NaN never passes). *)

val approx : ?rel:float -> ?abs:float -> float -> float -> verdict
(** {!Numerics.Stats.approx_eq} with the same defaults. *)

val wilson :
  ?z:float -> expected:float -> successes:int -> trials:int -> unit -> verdict
(** Does the analytic probability lie in the Wilson score interval of
    the observed proportion — or, for expected proportions within ~1/n
    of 0 or 1 where Wilson's CLT coverage collapses, within the exact
    Bernstein tolerance [z sqrt(expected (1 - expected) / n) +
    z^2/(3n)]? Either acceptance keeps the verdict a finite-sample
    guarantee at confidence [2 exp(-z^2/2)]. Raises [Invalid_argument]
    on an empty or inconsistent sample. *)

val mean_z :
  ?z:float ->
  ?bound:float ->
  expected:float ->
  sigma:float ->
  trials:int ->
  mean:float ->
  unit ->
  verdict
(** Is the sample mean within
    [z * sigma / sqrt trials + z^2 * bound / (3 * trials)] of the
    analytic expectation? [sigma] is the *analytic* standard deviation
    of one observation (e.g. [Voting.sigma]); [bound] (default 0) is a
    bound on the magnitude of one observation (e.g. [Universe.total_q]
    for PFD samples). With a positive [bound] the tolerance dominates
    the Bernstein tail inequality at confidence [2 exp(-z^2/2)], making
    the verdict a finite-sample guarantee valid even for the rare-event
    mixtures PFD samples are — not a CLT approximation. Falls back to
    {!approx} when both [sigma] and [bound] are zero. *)

val ratio_wilson :
  ?z:float -> expected:float -> num:int -> den:int -> trials:int -> unit -> verdict
(** Ratio-of-proportions containment for eq. (10)-style quantities:
    the analytic ratio must lie in the interval spanned by the two
    Wilson intervals, each widened by the Bernstein [z^2/(3n)] term (see
    {!wilson}). Inconclusive (passes, with a detail note) when the
    denominator interval touches zero. *)

val all_pass : verdict list -> bool
val pp : Format.formatter -> verdict -> unit
