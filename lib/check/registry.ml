open Numerics

(* Each oracle below pairs one analytic quantity (closed form on the
   universe) with an independent estimate of the same quantity —
   Monte Carlo over the abstract development model, full-stack concrete
   simulation over the demand space, or a second closed-form derivation —
   and the comparator appropriate to how the two sides were computed.
   See DESIGN.md "Cross-check matrix" for the full table. *)

let mk ~oracle ~quantity ~analytic ~simulated verdict =
  { Oracle.oracle; quantity; analytic; simulated; verdict }

(* ---- eqs. 1-3, 10 vs the sharded Monte Carlo harness ---- *)

let moments_vs_montecarlo =
  let id = "moments-vs-montecarlo" in
  Oracle.make ~id
    ~description:
      "mu1/mu2 (eq. 1), P(N1>0)/P(N2>0) and the eq. 10 risk ratio vs \
       Simulator.Montecarlo.estimate"
    (fun s ->
      let u = Scenario.universe s in
      let r = Scenario.replications s in
      let bound = Core.Universe.total_q u in
      let est =
        Simulator.Montecarlo.estimate (Oracle.rng s ~salt:1) u ~replications:r
      in
      let n1 = Sim.count_positive est.Simulator.Montecarlo.theta1_samples in
      let n2 = Sim.count_positive est.theta2_samples in
      let mu1 = Core.Moments.mu1 u and mu2 = Core.Moments.mu2 u in
      let p1 = Core.Fault_count.p_n1_pos u in
      let p2 = Core.Fault_count.p_n2_pos u in
      let rr = Core.Fault_count.risk_ratio u in
      [
        mk ~oracle:id ~quantity:"mu1 (eq. 1)" ~analytic:mu1
          ~simulated:est.theta1.mean
          (Compare.mean_z ~bound ~expected:mu1 ~sigma:(Core.Moments.sigma1 u)
             ~trials:r ~mean:est.theta1.mean ());
        mk ~oracle:id ~quantity:"mu2 (eq. 1)" ~analytic:mu2
          ~simulated:est.theta2.mean
          (Compare.mean_z ~bound ~expected:mu2 ~sigma:(Core.Moments.sigma2 u)
             ~trials:r ~mean:est.theta2.mean ());
        mk ~oracle:id ~quantity:"P(N1>0)" ~analytic:p1 ~simulated:est.p_n1_pos
          (Compare.wilson ~expected:p1 ~successes:n1 ~trials:r ());
        mk ~oracle:id ~quantity:"P(N2>0)" ~analytic:p2 ~simulated:est.p_n2_pos
          (Compare.wilson ~expected:p2 ~successes:n2 ~trials:r ());
        mk ~oracle:id ~quantity:"risk ratio (eq. 10)" ~analytic:rr
          ~simulated:est.risk_ratio
          (Compare.ratio_wilson ~expected:rr ~num:n2 ~den:n1 ~trials:r ());
      ])

(* ---- Voting closed forms vs the abstract N-of-M sampler ---- *)

let voting_mu_vs_sim =
  let id = "voting-mu-vs-sim" in
  Oracle.make ~id
    ~description:
      "Voting.mu (binomial defeat probabilities) vs abstract N-of-M \
       development sampling, z-tested against Voting.sigma"
    (fun s ->
      let u = Scenario.universe s and arch = Scenario.arch s in
      let r = Scenario.replications s in
      let run = Sim.voted (Oracle.rng s ~salt:2) u ~arch ~replications:r in
      let mu = Core.Voting.mu arch u in
      let mean = Stats.mean run.Sim.pfds in
      [
        mk ~oracle:id ~quantity:"Voting.mu" ~analytic:mu ~simulated:mean
          (Compare.mean_z
             ~bound:(Core.Universe.total_q u)
             ~expected:mu
             ~sigma:(Core.Voting.sigma arch u)
             ~trials:r ~mean ());
      ])

let voting_events_vs_sim =
  let id = "voting-events-vs-sim" in
  Oracle.make ~id
    ~description:
      "Voting.p_some_system_fault and risk_ratio_vs_single (eq. 10 \
       generalised) vs abstract N-of-M sampling"
    (fun s ->
      let u = Scenario.universe s and arch = Scenario.arch s in
      let r = Scenario.replications s in
      let run = Sim.voted (Oracle.rng s ~salt:3) u ~arch ~replications:r in
      let p_some = Core.Voting.p_some_system_fault arch u in
      let rr = Core.Voting.risk_ratio_vs_single arch u in
      let sim_p = float_of_int run.Sim.system_faulty /. float_of_int r in
      let sim_rr =
        if run.Sim.single_faulty = 0 then nan
        else
          float_of_int run.Sim.system_faulty
          /. float_of_int run.Sim.single_faulty
      in
      [
        mk ~oracle:id ~quantity:"p_some_system_fault" ~analytic:p_some
          ~simulated:sim_p
          (Compare.wilson ~expected:p_some ~successes:run.Sim.system_faulty
             ~trials:r ());
        mk ~oracle:id ~quantity:"risk_ratio_vs_single" ~analytic:rr
          ~simulated:sim_rr
          (Compare.ratio_wilson ~expected:rr ~num:run.Sim.system_faulty
             ~den:run.Sim.single_faulty ~trials:r ());
      ])

let voting_dist_vs_closed_form =
  let id = "voting-dist-vs-closed-form" in
  Oracle.make ~id
    ~description:
      "Voting.pfd_dist exact enumeration vs the direct closed forms \
       (Voting.mu/var/p_some_system_fault)"
    (fun s ->
      let u = Scenario.universe s and arch = Scenario.arch s in
      let d = Core.Voting.pfd_dist arch u in
      let mu = Core.Voting.mu arch u in
      let var = Core.Voting.var arch u in
      let p_some = Core.Voting.p_some_system_fault arch u in
      [
        mk ~oracle:id ~quantity:"mean" ~analytic:mu
          ~simulated:(Core.Pfd_dist.mean d)
          (Compare.approx mu (Core.Pfd_dist.mean d));
        mk ~oracle:id ~quantity:"variance" ~analytic:var
          ~simulated:(Core.Pfd_dist.variance d)
          (Compare.approx ~abs:1e-15 var (Core.Pfd_dist.variance d));
        mk ~oracle:id ~quantity:"P(PFD > 0)" ~analytic:p_some
          ~simulated:(Core.Pfd_dist.prob_positive d)
          (Compare.approx p_some (Core.Pfd_dist.prob_positive d));
      ])

let voting_vs_executable_adjudicator =
  let id = "voting-vs-executable-adjudicator" in
  Oracle.make ~id
    ~description:
      "Voting.mu vs concretely developed versions behind the executable \
       Simulator.Adjudicator (full demand-space sweep per replication)"
    (fun s ->
      let u = Scenario.universe s and arch = Scenario.arch s in
      let r = max 60 (Scenario.replications s / 8) in
      let samples =
        Sim.concrete_voted_pfds (Oracle.rng s ~salt:5) (Scenario.space s)
          ~arch ~replications:r
      in
      let mu = Core.Voting.mu arch u in
      let mean = Stats.mean samples in
      let positive = Sim.count_positive samples in
      let p_some = Core.Voting.p_some_system_fault arch u in
      [
        mk ~oracle:id ~quantity:"system PFD mean" ~analytic:mu ~simulated:mean
          (Compare.mean_z
             ~bound:(Core.Universe.total_q u)
             ~expected:mu
             ~sigma:(Core.Voting.sigma arch u)
             ~trials:r ~mean ());
        mk ~oracle:id ~quantity:"P(system has a defeating fault)"
          ~analytic:p_some
          ~simulated:(float_of_int positive /. float_of_int r)
          (Compare.wilson ~expected:p_some ~successes:positive ~trials:r ());
      ])

(* ---- Pfd_dist: exact vs grid vs sampling ---- *)

let pfd_exact_vs_grid =
  let id = "pfd-exact-vs-grid" in
  Oracle.make ~id
    ~description:
      "Pfd_dist exact enumeration vs the grid convolution (support \
       displacement bounded by n*step/2)"
    (fun s ->
      let u = Scenario.universe s in
      let bins = 4096 in
      let n = float_of_int (Core.Universe.size u) in
      let step = Core.Universe.total_q u /. float_of_int (bins - 1) in
      let tol = (n *. step /. 2.0) +. 1e-12 in
      let exact1 = Core.Pfd_dist.exact_single u in
      let grid1 = Core.Pfd_dist.grid_single u ~bins in
      let exact2 = Core.Pfd_dist.exact_pair u in
      let grid2 = Core.Pfd_dist.grid_pair u ~bins in
      [
        mk ~oracle:id ~quantity:"Theta_1 mean"
          ~analytic:(Core.Pfd_dist.mean exact1)
          ~simulated:(Core.Pfd_dist.mean grid1)
          (Compare.approx ~abs:tol ~rel:0.0 (Core.Pfd_dist.mean exact1)
             (Core.Pfd_dist.mean grid1));
        mk ~oracle:id ~quantity:"Theta_2 mean"
          ~analytic:(Core.Pfd_dist.mean exact2)
          ~simulated:(Core.Pfd_dist.mean grid2)
          (Compare.approx ~abs:tol ~rel:0.0 (Core.Pfd_dist.mean exact2)
             (Core.Pfd_dist.mean grid2));
        mk ~oracle:id ~quantity:"P(Theta_1 > 0)"
          ~analytic:(Core.Pfd_dist.prob_positive exact1)
          ~simulated:(Core.Pfd_dist.prob_positive grid1)
          (Compare.approx
             (Core.Pfd_dist.prob_positive exact1)
             (Core.Pfd_dist.prob_positive grid1));
      ])

let pfd_exact_vs_sampling =
  let id = "pfd-exact-vs-sampling" in
  Oracle.make ~id
    ~description:
      "Pfd_dist exact CDF/quantile machinery vs inverse-transform sampling \
       from the same distribution"
    (fun s ->
      let u = Scenario.universe s in
      let r = Scenario.replications s in
      let d = Core.Pfd_dist.exact_single u in
      let rng = Oracle.rng s ~salt:7 in
      let samples = Array.init r (fun _ -> Core.Pfd_dist.sample d rng) in
      let mean = Stats.mean samples in
      let positive = Sim.count_positive samples in
      let p_pos = Core.Pfd_dist.prob_positive d in
      [
        mk ~oracle:id ~quantity:"mean" ~analytic:(Core.Pfd_dist.mean d)
          ~simulated:mean
          (Compare.mean_z
             ~bound:(Core.Universe.total_q u)
             ~expected:(Core.Pfd_dist.mean d)
             ~sigma:(Core.Pfd_dist.std d) ~trials:r ~mean ());
        mk ~oracle:id ~quantity:"P(X > 0)" ~analytic:p_pos
          ~simulated:(float_of_int positive /. float_of_int r)
          (Compare.wilson ~expected:p_pos ~successes:positive ~trials:r ());
      ])

(* ---- baselines in their exact / degenerate regimes ---- *)

let eckhardt_lee_identities =
  let id = "eckhardt-lee-identities" in
  Oracle.make ~id
    ~description:
      "Eckhardt-Lee difficulty-function means over the demand space vs the \
       universe closed forms (exact on disjoint regions), plus the EL \
       decomposition residual"
    (fun s ->
      let u = Scenario.universe s and sp = Scenario.space s in
      let mu1 = Core.Moments.mu1 u and mu2 = Core.Moments.mu2 u in
      let el1 = Baselines.Eckhardt_lee.mean_single sp in
      let el2 = Baselines.Eckhardt_lee.mean_pair sp in
      let gap = Baselines.Eckhardt_lee.el_identity_gap sp in
      [
        mk ~oracle:id ~quantity:"E(Theta_1)" ~analytic:mu1 ~simulated:el1
          (Compare.approx mu1 el1);
        mk ~oracle:id ~quantity:"E(Theta_2)" ~analytic:mu2 ~simulated:el2
          (Compare.approx mu2 el2);
        mk ~oracle:id ~quantity:"EL decomposition residual" ~analytic:0.0
          ~simulated:gap
          (Compare.approx ~abs:1e-9 0.0 gap);
      ])

let eckhardt_lee_vs_concrete =
  let id = "eckhardt-lee-vs-concrete" in
  Oracle.make ~id
    ~description:
      "EL mean single/pair PFD vs concretely developed versions (true \
       set-intersection PFDs, no non-overlap shortcut on the simulation \
       side)"
    (fun s ->
      let u = Scenario.universe s in
      let r = max 200 (Scenario.replications s / 3) in
      let singles, pairs =
        Sim.concrete_pairs (Oracle.rng s ~salt:9) (Scenario.space s)
          ~replications:r
      in
      let bound = Core.Universe.total_q u in
      let el1 = Baselines.Eckhardt_lee.mean_single (Scenario.space s) in
      let el2 = Baselines.Eckhardt_lee.mean_pair (Scenario.space s) in
      let m1 = Stats.mean singles and m2 = Stats.mean pairs in
      [
        mk ~oracle:id ~quantity:"mean single PFD" ~analytic:el1 ~simulated:m1
          (Compare.mean_z ~bound ~expected:el1
             ~sigma:(Core.Moments.sigma1 u) ~trials:r ~mean:m1 ());
        mk ~oracle:id ~quantity:"mean pair PFD" ~analytic:el2 ~simulated:m2
          (Compare.mean_z ~bound ~expected:el2
             ~sigma:(Core.Moments.sigma2 u) ~trials:r ~mean:m2 ());
      ])

let littlewood_miller_degenerate =
  let id = "littlewood-miller-degenerate" in
  Oracle.make ~id
    ~description:
      "Littlewood-Miller with identical processes must reduce exactly to \
       Eckhardt-Lee (degenerate regime used as an algebraic oracle)"
    (fun s ->
      let sp = Scenario.space s in
      let lm = Baselines.Littlewood_miller.same_process sp in
      let el2 = Baselines.Eckhardt_lee.mean_pair sp in
      let lm2 = Baselines.Littlewood_miller.mean_pair lm in
      let cov = Baselines.Littlewood_miller.difficulty_covariance lm in
      let var = Baselines.Eckhardt_lee.difficulty_variance sp in
      let gap = Baselines.Littlewood_miller.lm_identity_gap lm in
      [
        mk ~oracle:id ~quantity:"E(Theta_2)" ~analytic:el2 ~simulated:lm2
          (Compare.approx el2 lm2);
        mk ~oracle:id ~quantity:"Cov(theta_A, theta_B) = Var(theta)"
          ~analytic:var ~simulated:cov
          (Compare.approx ~abs:1e-12 var cov);
        mk ~oracle:id ~quantity:"LM decomposition residual" ~analytic:0.0
          ~simulated:gap
          (Compare.approx ~abs:1e-9 0.0 gap);
      ])

let independence_degenerate =
  let id = "independence-degenerate" in
  Oracle.make ~id
    ~description:
      "Failure independence is exact iff the difficulty function is \
       constant: checked on a constant-difficulty space, plus the EL-style \
       penalty bound on the scenario universe"
    (fun s ->
      let u = Scenario.universe s in
      (* constant-difficulty construction: partition the whole demand
         space into one region per fault, all sharing one introduction
         probability, so theta(x) = p0 everywhere *)
      let size = Demandspace.Space.size (Scenario.space s) in
      let k = Demandspace.Space.fault_count (Scenario.space s) in
      let p0 = Core.Fault.p (Core.Universe.fault u 0) in
      let block = size / k in
      let faults =
        Array.init k (fun i ->
            let lo = block * i in
            let hi = if i = k - 1 then size - 1 else lo + block - 1 in
            (Demandspace.Region.interval ~space_size:size ~lo ~hi, p0))
      in
      let flat =
        Demandspace.Space.create
          ~profile:(Demandspace.Profile.uniform ~size)
          ~faults
      in
      let el1 = Baselines.Eckhardt_lee.mean_single flat in
      let el2 = Baselines.Eckhardt_lee.mean_pair flat in
      let indep = Baselines.Independence.pair_pfd ~single_pfd:el1 in
      let uf = Baselines.Independence.underestimation_factor u in
      [
        mk ~oracle:id ~quantity:"constant difficulty: E(Theta_2) = E(Theta_1)^2"
          ~analytic:indep ~simulated:el2
          (Compare.approx indep el2);
        mk ~oracle:id ~quantity:"mu2/mu1^2 >= 1 (EL penalty)" ~analytic:1.0
          ~simulated:uf
          {
            Compare.pass = uf >= 1.0 -. 1e-12;
            comparator = "lower-bound";
            detail = Printf.sprintf "underestimation factor %.6g >= 1" uf;
          };
      ])

let correlated_degenerate =
  let id = "correlated-degenerate" in
  Oracle.make ~id
    ~description:
      "Correlated fault introduction at lift 1 (zero shock effect) must \
       reproduce the independent closed forms exactly, and its pair sampler \
       must agree with mu2"
    (fun s ->
      let u = Scenario.universe s in
      let c =
        Extensions.Correlated.of_universe_with_shock u ~cluster_size:2
          ~shock_prob:0.3 ~lift:1.0
      in
      let mu1 = Core.Moments.mu1 u and mu2 = Core.Moments.mu2 u in
      let rr = Core.Fault_count.risk_ratio u in
      let r = max 300 (Scenario.replications s / 2) in
      let rng = Oracle.rng s ~salt:12 in
      let pair_samples =
        Array.init r (fun _ ->
            let _, pair = Extensions.Correlated.sample_pair_pfd rng c in
            pair)
      in
      let mean = Stats.mean pair_samples in
      [
        mk ~oracle:id ~quantity:"mu1" ~analytic:mu1
          ~simulated:(Extensions.Correlated.mu1 c)
          (Compare.approx mu1 (Extensions.Correlated.mu1 c));
        mk ~oracle:id ~quantity:"mu2" ~analytic:mu2
          ~simulated:(Extensions.Correlated.mu2 c)
          (Compare.approx mu2 (Extensions.Correlated.mu2 c));
        mk ~oracle:id ~quantity:"risk ratio (eq. 10)" ~analytic:rr
          ~simulated:(Extensions.Correlated.risk_ratio c)
          (Compare.approx rr (Extensions.Correlated.risk_ratio c));
        mk ~oracle:id ~quantity:"sampled pair PFD mean" ~analytic:mu2
          ~simulated:mean
          (Compare.mean_z
             ~bound:(Core.Universe.total_q u)
             ~expected:mu2
             ~sigma:(Core.Moments.sigma2 u)
             ~trials:r ~mean ());
      ])

(* ---- incremental rewrites vs the retained naive kernels ---- *)

(* Tolerance for the incremental-vs-naive gradient agreement: the two
   paths evaluate the same closed form but associate the compensated
   log-sums differently (per-index Kahan sums vs shared prefix/suffix
   arrays), so coordinates agree to rounding, not bitwise. The bound
   1e-9 * (1 + ||grad_naive||_inf) absolute plus 1e-9 relative is ~7
   orders of magnitude above the worst drift ever observed (~1e-14
   relative) while still catching any real formula divergence — see
   EXPERIMENTS.md "ulp-tolerance policy". *)
let gradient_tol g =
  Array.fold_left
    (fun acc d -> if Float.is_nan d then acc else Float.max acc (Float.abs d))
    0.0 g
  |> fun inf_norm -> 1e-9 *. (1.0 +. inf_norm)

let gradient_incremental_vs_naive =
  let id = "gradient-incremental-vs-naive" in
  Oracle.make ~id
    ~description:
      "O(n) prefix/suffix risk_ratio_gradient and risk_ratio_k_derivative \
       vs the retained O(n^2) per-partial references, including p_i in \
       {0, 1} boundary coordinates"
    (fun s ->
      let u = Scenario.universe s in
      let ps = Core.Universe.ps u in
      let max_abs_diff ps =
        let fast = Core.Sensitivity.risk_ratio_gradient ps in
        let naive = Core.Sensitivity.risk_ratio_gradient_naive ps in
        let d = ref 0.0 in
        Array.iteri
          (fun i f ->
            (* both NaN (the all-zero universe, where the ratio is 0/0)
               is agreement; NaN on one side only is divergence *)
            let diff =
              if Float.is_nan f && Float.is_nan naive.(i) then 0.0
              else Float.abs (f -. naive.(i))
            in
            d := Float.max !d diff)
          fast;
        (!d, gradient_tol naive)
      in
      let boundary =
        (* exercise the p_i = 0 and p_i = 1 edges the prefix/suffix
           construction exists for: a 1-coordinate sends every other
           partial through exp(-inf) = 0 while its own stays finite *)
        let b = Array.copy ps in
        if Array.length b > 0 then b.(0) <- 0.0;
        if Array.length b > 1 then b.(1) <- 1.0;
        b
      in
      let d_plain, tol_plain = max_abs_diff ps in
      let d_bound, tol_bound = max_abs_diff boundary in
      let k = 0.5 in
      let dk = Core.Sensitivity.risk_ratio_k_derivative ~b:ps ~k in
      let dk_naive = Core.Sensitivity.risk_ratio_k_derivative_naive ~b:ps ~k in
      [
        mk ~oracle:id ~quantity:"gradient max |fast - naive|" ~analytic:0.0
          ~simulated:d_plain
          (Compare.approx ~abs:tol_plain ~rel:0.0 0.0 d_plain);
        mk ~oracle:id ~quantity:"gradient max |fast - naive| (p in {0,1})"
          ~analytic:0.0 ~simulated:d_bound
          (Compare.approx ~abs:tol_bound ~rel:0.0 0.0 d_bound);
        mk ~oracle:id ~quantity:"dR/dk (Appendix B)" ~analytic:dk_naive
          ~simulated:dk
          (Compare.approx ~abs:1e-12 dk_naive dk);
      ])

let pfd_fast_vs_legacy =
  let id = "pfd-fast-vs-legacy" in
  Oracle.make ~id
    ~description:
      "Preallocated ping-pong exact convolution vs the legacy allocating \
       pass (bit-identical), and binomial-block grid convolution vs the \
       per-fault sweeps (agreement to rounding)"
    (fun s ->
      let u = Scenario.universe s in
      let probs = Core.Universe.ps u and values = Core.Universe.qs u in
      let fast = Core.Pfd_dist.exact_of_vectors ~shards:1 ~probs ~values () in
      let legacy = Core.Pfd_dist.exact_of_vectors_naive ~probs ~values () in
      let bins = 1024 in
      let gfast = Core.Pfd_dist.grid_of_vectors ~shards:1 ~probs ~values ~bins () in
      let glegacy =
        Core.Pfd_dist.grid_of_vectors_naive ~shards:1 ~probs ~values ~bins ()
      in
      [
        (* The sequential exact path claims bit-identity: same float ops
           in the same order, only the buffer management changed. *)
        mk ~oracle:id ~quantity:"exact mean"
          ~analytic:(Core.Pfd_dist.mean legacy)
          ~simulated:(Core.Pfd_dist.mean fast)
          (Compare.exact_bits (Core.Pfd_dist.mean legacy)
             (Core.Pfd_dist.mean fast));
        mk ~oracle:id ~quantity:"exact variance"
          ~analytic:(Core.Pfd_dist.variance legacy)
          ~simulated:(Core.Pfd_dist.variance fast)
          (Compare.exact_bits
             (Core.Pfd_dist.variance legacy)
             (Core.Pfd_dist.variance fast));
        mk ~oracle:id ~quantity:"exact P(X > 0)"
          ~analytic:(Core.Pfd_dist.prob_positive legacy)
          ~simulated:(Core.Pfd_dist.prob_positive fast)
          (Compare.exact_bits
             (Core.Pfd_dist.prob_positive legacy)
             (Core.Pfd_dist.prob_positive fast));
        (* The grid rewrite coalesces same-shift faults into binomial
           blocks, associating their products differently: rounding-level
           agreement only (see EXPERIMENTS.md for the policy). *)
        mk ~oracle:id ~quantity:"grid mean"
          ~analytic:(Core.Pfd_dist.mean glegacy)
          ~simulated:(Core.Pfd_dist.mean gfast)
          (Compare.approx (Core.Pfd_dist.mean glegacy)
             (Core.Pfd_dist.mean gfast));
        mk ~oracle:id ~quantity:"grid P(X > 0)"
          ~analytic:(Core.Pfd_dist.prob_positive glegacy)
          ~simulated:(Core.Pfd_dist.prob_positive gfast)
          (Compare.approx
             (Core.Pfd_dist.prob_positive glegacy)
             (Core.Pfd_dist.prob_positive gfast));
      ])

(* ---- the sharded fleet pipeline vs the moments ---- *)

let fleet_vs_moments =
  let id = "fleet-vs-moments" in
  Oracle.make ~id
    ~description:
      "Sharded fleet pipeline: deployed 1oo2 systems' true PFDs vs mu2, and \
       observed field failure counts vs the deployed fleet's own true PFDs"
    (fun s ->
      let u = Scenario.universe s in
      let plants = 48 and demands_per_plant = 400 in
      let rng = Oracle.rng s ~salt:13 in
      let systems =
        Simulator.Fleet.deploy_pairs rng (Scenario.space s) ~plants
      in
      let fleet = Simulator.Fleet.observe rng systems ~demands_per_plant in
      let summary = Simulator.Fleet.true_pfd_summary fleet in
      let mu2 = Core.Moments.mu2 u in
      let pooled = Simulator.Fleet.pooled_rate fleet in
      let trials = plants * demands_per_plant in
      [
        mk ~oracle:id ~quantity:"deployed true-PFD mean vs mu2" ~analytic:mu2
          ~simulated:summary.mean
          (Compare.mean_z
             ~bound:(Core.Universe.total_q u)
             ~expected:mu2
             ~sigma:(Core.Moments.sigma2 u)
             ~trials:plants ~mean:summary.mean ());
        (* conditional on the deployed PFDs, per-demand failures are
           independent (heterogeneous) Bernoullis, for which the Wilson
           interval around the pooled count is conservative *)
        mk ~oracle:id ~quantity:"observed failure rate vs deployed PFDs"
          ~analytic:summary.mean ~simulated:pooled
          (Compare.wilson ~expected:summary.mean
             ~successes:(Simulator.Fleet.total_failures fleet)
             ~trials ());
      ])

(* ---- the adjudication calculus: law oracles (DESIGN.md
   "Adjudication algebra") ---- *)

(* Deterministic random calculus terms and output vectors, drawn from
   the oracle's salted stream — the same term family test/prop.ml's
   generators explore, so a law failure found by either harness replays
   in the other. *)
let rec random_term rng ~depth =
  let leaf () =
    if Rng.int rng 4 = 0 then Simulator.Adjudicator.unit
    else Simulator.Adjudicator.vote ~required:(1 + Rng.int rng 4)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 4 with
    | 0 | 1 -> leaf ()
    | 2 ->
        Simulator.Adjudicator.compose
          (random_term rng ~depth:(depth - 1))
          (random_term rng ~depth:(depth - 1))
    | _ ->
        Simulator.Adjudicator.fallback
          (random_term rng ~depth:(depth - 1))
          (random_term rng ~depth:(depth - 1))

let random_outputs rng ~n ~abstaining =
  List.init n (fun _ ->
      match Rng.int rng (if abstaining then 3 else 2) with
      | 0 -> Simulator.Channel.Shutdown
      | 1 -> Simulator.Channel.No_action
      | _ -> Simulator.Channel.Abstain)

(* A vector long enough for every sub-term the law rewrites [term] into:
   combine raises below [min_channels], and the laws quantify over
   vectors both sides accept. *)
let random_vector_for rng term ~abstaining =
  let n = Simulator.Adjudicator.min_channels term + Rng.int rng 5 in
  random_outputs rng ~n ~abstaining

let shuffled rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let law_outcome ~oracle ~quantity ~cases ~violations =
  mk ~oracle ~quantity ~analytic:0.0 ~simulated:(float_of_int violations)
    {
      Compare.pass = violations = 0;
      comparator = "exact";
      detail =
        Printf.sprintf "%d/%d randomized cases violate the law" violations
          cases;
    }

let adjudication_unit_identity =
  let id = "adjudication-unit-identity" in
  Oracle.make ~id
    ~description:
      "compose unit t, compose t unit and t decide identically on every \
       output vector (unit is a two-sided identity of compose)"
    (fun s ->
      let rng = Oracle.rng s ~salt:14 in
      let cases = 200 in
      let left = ref 0 and right = ref 0 in
      for _ = 1 to cases do
        let t = random_term rng ~depth:3 in
        let outs = random_vector_for rng t ~abstaining:true in
        let base = Simulator.Adjudicator.combine t outs in
        let lu =
          Simulator.Adjudicator.(combine (compose unit t)) outs
        in
        let ru =
          Simulator.Adjudicator.(combine (compose t unit)) outs
        in
        if not (Simulator.Channel.equal lu base) then incr left;
        if not (Simulator.Channel.equal ru base) then incr right
      done;
      [
        law_outcome ~oracle:id ~quantity:"compose unit t ≡ t" ~cases
          ~violations:!left;
        law_outcome ~oracle:id ~quantity:"compose t unit ≡ t" ~cases
          ~violations:!right;
      ])

let adjudication_vote_permutation =
  let id = "adjudication-vote-permutation" in
  Oracle.make ~id
    ~description:
      "every calculus term adjudicates counts, so combine is invariant \
       under permutation of the channel output vector"
    (fun s ->
      let rng = Oracle.rng s ~salt:15 in
      let cases = 200 in
      let violations = ref 0 in
      for _ = 1 to cases do
        let t = random_term rng ~depth:3 in
        let outs = random_vector_for rng t ~abstaining:true in
        let a = Simulator.Adjudicator.combine t outs in
        let b = Simulator.Adjudicator.combine t (shuffled rng outs) in
        if not (Simulator.Channel.equal a b) then incr violations
      done;
      [
        law_outcome ~oracle:id ~quantity:"combine t (perm v) ≡ combine t v"
          ~cases ~violations:!violations;
      ])

let adjudication_fallback_idempotent =
  let id = "adjudication-fallback-idempotent" in
  Oracle.make ~id
    ~description:
      "fallback t t decides as t on abstain-free vectors (the backup \
       can only be reached when the primary abstains)"
    (fun s ->
      let rng = Oracle.rng s ~salt:16 in
      let cases = 200 in
      let violations = ref 0 in
      for _ = 1 to cases do
        let t = random_term rng ~depth:3 in
        let outs = random_vector_for rng t ~abstaining:false in
        let a = Simulator.Adjudicator.(combine (fallback t t)) outs in
        let b = Simulator.Adjudicator.combine t outs in
        if not (Simulator.Channel.equal a b) then incr violations
      done;
      [
        law_outcome ~oracle:id ~quantity:"fallback t t ≡ t (abstain-free)"
          ~cases ~violations:!violations;
      ])

(* The seed's adjudicator, reimplemented verbatim (polymorphic equality,
   double traversal and all) as the reference the calculus must
   bit-match on its legacy domain. *)
let legacy_combine ~required outputs =
  let shutdowns =
    List.length
      (List.filter (fun o -> o = Simulator.Channel.Shutdown) outputs)
  in
  if shutdowns >= required then Simulator.Channel.Shutdown
  else Simulator.Channel.No_action

let adjudication_vote_vs_legacy =
  let id = "adjudication-vote-vs-legacy" in
  Oracle.make ~id
    ~description:
      "vote ~required bit-matches the retained legacy M-out-of-N \
       adjudicator (and its system_fails predicate) on abstain-free \
       vectors, across every threshold the vector admits"
    (fun s ->
      let rng = Oracle.rng s ~salt:17 in
      let cases = 200 in
      let checked = ref 0 in
      let decisions = ref 0 and fails = ref 0 in
      for _ = 1 to cases do
        let n = 1 + Rng.int rng 7 in
        let outs = random_outputs rng ~n ~abstaining:false in
        for required = 1 to n do
          incr checked;
          let t = Simulator.Adjudicator.m_out_of_n ~required in
          let calculus = Simulator.Adjudicator.combine t outs in
          let legacy = legacy_combine ~required outs in
          if not (Simulator.Channel.equal calculus legacy) then
            incr decisions;
          if
            Simulator.Adjudicator.system_fails t outs
            <> not (Simulator.Channel.equal legacy Simulator.Channel.Shutdown)
          then incr fails
        done
      done;
      [
        law_outcome ~oracle:id ~quantity:"combine ≡ legacy decision"
          ~cases:!checked ~violations:!decisions;
        law_outcome ~oracle:id ~quantity:"system_fails ≡ legacy predicate"
          ~cases:!checked ~violations:!fails;
      ])

(* Independent evaluator of the graceful-degradation scenario — a 2-of-3
   vote falling back to an OR when abstentions break the quorum —
   written directly over the output list, with no reference to the
   counts algebra. *)
let reference_cascade outs =
  let shut =
    List.length
      (List.filter
         (fun o -> Simulator.Channel.equal o Simulator.Channel.Shutdown)
         outs)
  in
  let active =
    List.length
      (List.filter
         (fun o -> not (Simulator.Channel.equal o Simulator.Channel.Abstain))
         outs)
  in
  if shut >= 2 then Simulator.Channel.Shutdown
  else if active >= 2 then Simulator.Channel.No_action
  else if shut >= 1 then Simulator.Channel.Shutdown
  else if active >= 1 then Simulator.Channel.No_action
  else Simulator.Channel.Abstain

let adjudication_graceful_degradation =
  let id = "adjudication-graceful-degradation" in
  Oracle.make ~id
    ~description:
      "fallback (vote 2) (vote 1) over 3 self-checking channels: exact \
       agreement with an independent list evaluator, and the \
       policy_defeat_prob closed form vs both the list-path and \
       counts-path samplers"
    (fun s ->
      let rng = Oracle.rng s ~salt:18 in
      let cascade =
        Simulator.Adjudicator.(
          fallback (vote ~required:2) (vote ~required:1))
      in
      let channels = 3 and detection = 0.35 in
      let cases = 300 in
      let violations = ref 0 in
      for _ = 1 to cases do
        let outs = random_outputs rng ~n:channels ~abstaining:true in
        if
          not
            (Simulator.Channel.equal
               (Simulator.Adjudicator.combine cascade outs)
               (reference_cascade outs))
        then incr violations
      done;
      let u = Scenario.universe s in
      let policy = Simulator.Adjudicator.policy cascade in
      let mu = Core.Voting.policy_mu policy ~channels ~detection u in
      let sigma = Core.Voting.policy_sigma policy ~channels ~detection u in
      let bound = Core.Universe.total_q u in
      let r = Scenario.replications s in
      let list_samples =
        Sim.adjudicated rng u ~channels ~detection ~adjudicator:cascade
          ~replications:r
      in
      let counts_samples =
        Array.init r (fun _ ->
            Simulator.Devteam.adjudicated_system_pfd_from_universe ~detection
              rng u ~channels ~adjudicator:cascade)
      in
      let list_mean = Stats.mean list_samples in
      let counts_mean = Stats.mean counts_samples in
      [
        law_outcome ~oracle:id ~quantity:"combine ≡ independent evaluator"
          ~cases ~violations:!violations;
        mk ~oracle:id ~quantity:"policy_mu vs list-path sampler" ~analytic:mu
          ~simulated:list_mean
          (Compare.mean_z ~bound ~expected:mu ~sigma ~trials:r ~mean:list_mean
             ());
        mk ~oracle:id ~quantity:"policy_mu vs counts-path sampler"
          ~analytic:mu ~simulated:counts_mean
          (Compare.mean_z ~bound ~expected:mu ~sigma ~trials:r
             ~mean:counts_mean ());
      ])

let adjudication_policy_vs_binomial =
  let id = "adjudication-policy-vs-binomial" in
  Oracle.make ~id
    ~description:
      "policy closed forms at detection 0 (binom_pmf double sum over \
       carriers and abstainers) vs the legacy Voting closed forms \
       (regularized-incomplete-beta tails) on the scenario architecture"
    (fun s ->
      let u = Scenario.universe s and arch = Scenario.arch s in
      let channels = Core.Voting.channels arch in
      let policy = Core.Voting.arch_policy arch in
      let mu = Core.Voting.mu arch u in
      let pmu = Core.Voting.policy_mu policy ~channels u in
      let var = Core.Voting.var arch u in
      let pvar = Core.Voting.policy_var policy ~channels u in
      let p_some = Core.Voting.p_some_system_fault arch u in
      let pp_some =
        Core.Voting.policy_p_some_system_fault policy ~channels u
      in
      let rr = Core.Voting.risk_ratio_vs_single arch u in
      let prr =
        Core.Voting.policy_risk_ratio_vs_single policy ~channels u
      in
      let dist = Core.Voting.policy_pfd_dist policy ~channels u in
      [
        mk ~oracle:id ~quantity:"policy_mu vs Voting.mu" ~analytic:mu
          ~simulated:pmu (Compare.approx mu pmu);
        mk ~oracle:id ~quantity:"policy_var vs Voting.var" ~analytic:var
          ~simulated:pvar
          (Compare.approx ~abs:1e-15 var pvar);
        mk ~oracle:id ~quantity:"policy_p_some vs Voting.p_some"
          ~analytic:p_some ~simulated:pp_some (Compare.approx p_some pp_some);
        mk ~oracle:id ~quantity:"policy risk ratio vs Voting risk ratio"
          ~analytic:rr ~simulated:prr (Compare.approx rr prr);
        mk ~oracle:id ~quantity:"policy_pfd_dist mean vs policy_mu"
          ~analytic:pmu
          ~simulated:(Core.Pfd_dist.mean dist)
          (Compare.approx pmu (Core.Pfd_dist.mean dist));
      ])

(* ---- the assessment service vs the one-shot evaluator ---- *)

let serve_vs_cli =
  let id = "serve-vs-cli" in
  Oracle.make ~id
    ~description:
      "Served responses (Serve.Dispatcher batch over the ambient pool, any \
       worker count) vs direct Serve.Engine.eval: byte identity per verb, \
       plus the served moments body cross-read against Core.Moments \
       bit-exactly"
    (fun s ->
      let u = Scenario.universe s and arch = Scenario.arch s in
      let spec =
        { Serve.Proto.ps = Core.Universe.ps u; qs = Core.Universe.qs u }
      in
      let channels = Core.Voting.channels arch in
      let required = Core.Voting.required arch in
      (* Request parameters drawn from the oracle's private substream:
         the scenario sweep also exercises the service on varying fleet
         shapes, salts and shard counts. *)
      let rng = Oracle.rng s ~salt:19 in
      let bins =
        if Core.Universe.size u <= Core.Pfd_dist.max_exact_faults then 0
        else 128 + Rng.int rng 128
      in
      let requests =
        [|
          { Serve.Proto.id = "o-moments"; u = spec; verb = Serve.Proto.Moments };
          {
            Serve.Proto.id = "o-risk";
            u = spec;
            verb = Serve.Proto.Risk_ratio { channels; required };
          };
          {
            Serve.Proto.id = "o-dist";
            u = spec;
            verb = Serve.Proto.Pfd_dist { channels; required; bins };
          };
          {
            Serve.Proto.id = "o-fleet";
            u = spec;
            verb =
              Serve.Proto.Fleet_mission
                {
                  plants = 4 + Rng.int rng 5;
                  demands_per_plant = 50 + Rng.int rng 100;
                  mission_demands = 500;
                  salt = Rng.int rng 1024;
                  shards = 1 + Rng.int rng 8;
                  space = 1024;
                };
          };
        |]
      in
      let seed = Scenario.sim_seed s in
      let disp = Serve.Dispatcher.create ~pool:(Exec.Pool.default ()) ~seed in
      let served = Serve.Dispatcher.run_batch disp requests in
      let identity =
        Array.to_list
          (Array.mapi
             (fun i (res : Serve.Dispatcher.result) ->
               let direct = Serve.Engine.eval ~seed requests.(i) in
               let same = if String.equal res.Serve.Dispatcher.line direct then 1.0 else 0.0 in
               mk ~oracle:id
                 ~quantity:
                   (Printf.sprintf "%s byte-identity"
                      (Serve.Proto.verb_name requests.(i)))
                 ~analytic:1.0 ~simulated:same (Compare.exact_bits 1.0 same))
             served)
      in
      (* Cross-read: the served moments body must carry the closed forms
         bit-exactly (the JSON float codec round-trips exactly). *)
      let served_mu2 =
        match Serve.Proto.parse_response (served.(0)).Serve.Dispatcher.line with
        | Ok resp -> (
            match
              Option.bind resp.Serve.Proto.resp_body (fun b ->
                  Option.bind (Obs.Json.member "mu2" b) Obs.Json.to_float)
            with
            | Some v -> v
            | None -> nan)
        | Error _ -> nan
      in
      let mu2 = Core.Moments.mu2 u in
      identity
      @ [
          mk ~oracle:id ~quantity:"served mu2 field" ~analytic:mu2
            ~simulated:served_mu2 (Compare.exact_bits mu2 served_mu2);
        ])

let all =
  [
    moments_vs_montecarlo;
    voting_mu_vs_sim;
    voting_events_vs_sim;
    voting_dist_vs_closed_form;
    voting_vs_executable_adjudicator;
    pfd_exact_vs_grid;
    pfd_exact_vs_sampling;
    eckhardt_lee_identities;
    eckhardt_lee_vs_concrete;
    littlewood_miller_degenerate;
    independence_degenerate;
    correlated_degenerate;
    gradient_incremental_vs_naive;
    pfd_fast_vs_legacy;
    fleet_vs_moments;
    adjudication_unit_identity;
    adjudication_vote_permutation;
    adjudication_fallback_idempotent;
    adjudication_vote_vs_legacy;
    adjudication_graceful_degradation;
    adjudication_policy_vs_binomial;
    serve_vs_cli;
  ]

let ids () = List.map Oracle.id all

let find id =
  List.find_opt (fun o -> String.equal (Oracle.id o) id) all

let run_all scenario =
  List.concat_map (fun o -> Oracle.run o scenario) all

let failures outcomes = List.filter (fun o -> not (Oracle.passed o)) outcomes

(* ---- full sweep over generated scenarios (the CLI `check` verb) ---- *)

type sweep = {
  cases : int;
  checks : int;
  failed : (int * Scenario.t * Oracle.outcome) list;
  per_oracle : (string * int * int) list;  (* id, checks, failures *)
}

let sweep ?max_channels ?max_faults ?replications ?only ~seed ~cases () =
  if cases < 1 then invalid_arg "Registry.sweep: cases must be >= 1";
  let chosen =
    match only with
    | None -> all
    | Some prefix ->
        List.filter (fun o -> String.starts_with ~prefix (Oracle.id o)) all
  in
  if chosen = [] then
    invalid_arg "Registry.sweep: no registered oracle matches the prefix";
  let chosen_ids = List.map Oracle.id chosen in
  let parent = Rng.create ~seed in
  let tally = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace tally id (0, 0)) chosen_ids;
  let checks = ref 0 in
  let failed = ref [] in
  for case = 0 to cases - 1 do
    let scenario =
      Scenario.generate ?max_channels ?max_faults ?replications
        (Rng.split parent ~index:case)
    in
    List.iter
      (fun o ->
        let n, f =
          match Hashtbl.find_opt tally o.Oracle.oracle with
          | Some t -> t
          | None -> (0, 0)
        in
        let bad = if Oracle.passed o then 0 else 1 in
        Hashtbl.replace tally o.Oracle.oracle (n + 1, f + bad);
        incr checks;
        if bad = 1 then failed := (case, scenario, o) :: !failed)
      (List.concat_map (fun o -> Oracle.run o scenario) chosen)
  done;
  let per_oracle =
    List.map
      (fun id ->
        match Hashtbl.find_opt tally id with
        | Some (n, f) -> (id, n, f)
        | None -> (id, 0, 0))
      chosen_ids
  in
  { cases; checks = !checks; failed = List.rev !failed; per_oracle }

let passed sweep = sweep.failed = []

let render sweep =
  let table =
    Report.Table.of_rows ~title:"Differential cross-check sweep"
      ~headers:[ "oracle"; "checks"; "failures" ]
      (List.map
         (fun (id, n, f) ->
           [ id; Report.Table.int n; Report.Table.int f ])
         sweep.per_oracle)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Report.Table.render table);
  Buffer.add_string buf
    (Printf.sprintf "\n%d scenarios, %d checks, %d failures\n" sweep.cases
       sweep.checks (List.length sweep.failed));
  List.iter
    (fun (case, scenario, o) ->
      Buffer.add_string buf
        (Fmt.str "case %d: %a@\n  %a@\n" case Scenario.pp scenario
           Oracle.pp_outcome o))
    sweep.failed;
  Buffer.contents buf
