(** Simulation estimators the oracle registry confronts with closed
    forms.

    Two independent simulation layers are provided on purpose: an
    abstract sampler that draws fault sets straight from the universe
    (independent of the [Voting] binomial algebra but sharing its event
    definitions), and a full-stack concrete path (versions over a demand
    space, executable channels, the real [Simulator.Adjudicator]). A
    formula bug in either layer breaks agreement with the other two. *)

type voted_run = {
  pfds : float array;  (** voted-system PFD per replication *)
  system_faulty : int;
      (** replications in which some fault defeated the vote *)
  single_faulty : int;
      (** replications in which channel 0's version carried >= 1 fault *)
}

val voted :
  Numerics.Rng.t ->
  Core.Universe.t ->
  arch:Core.Voting.t ->
  replications:int ->
  voted_run
(** Abstract-model N-of-M sampler (per-fault channel counts against the
    defeat threshold). Raises [Invalid_argument] when [replications < 1]. *)

val concrete_voted_pfds :
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  arch:Core.Voting.t ->
  replications:int ->
  float array
(** Exact PFD of concretely developed voted systems: each replication
    develops the channels with {!Simulator.Devteam.develop}, builds
    [Simulator.Protection.voted] and sweeps the demand space. *)

val concrete_pairs :
  Numerics.Rng.t ->
  Demandspace.Space.t ->
  replications:int ->
  float array * float array
(** [(single_pfds, pair_pfds)] of concretely developed 1-out-of-2
    pairs (true set-intersection PFDs). *)

val adjudicated :
  Numerics.Rng.t ->
  Core.Universe.t ->
  channels:int ->
  detection:float ->
  adjudicator:Simulator.Adjudicator.t ->
  replications:int ->
  float array
(** Sampled PFDs of an adjudicated system through the *list* path: per
    replication and fault, the actual [Channel.output] vector (clean ->
    Shutdown, undetected carrier -> No_action, self-detected carrier ->
    Abstain) is adjudicated by [Simulator.Adjudicator.combine].
    Independent of the counts fast path and of
    [Core.Voting.policy_defeat_prob]'s closed form. Raises
    [Invalid_argument] when [replications < 1], [channels < 1] or
    [detection] is outside [0, 1]. *)

val count_positive : float array -> int
(** Number of strictly positive samples. *)
