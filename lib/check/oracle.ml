type outcome = {
  oracle : string;
  quantity : string;
  analytic : float;
  simulated : float;
  verdict : Compare.verdict;
}

type t = {
  id : string;
  description : string;
  run : Scenario.t -> outcome list;
}

let make ~id ~description run = { id; description; run }
let id t = t.id
let description t = t.description
let passed o = o.verdict.Compare.pass

(* Every oracle derives its simulation randomness from the scenario's
   seed through a per-oracle split index, so oracles neither share nor
   perturb each other's streams: adding an oracle to the registry never
   changes an existing oracle's verdict on the same scenario. *)
let rng scenario ~salt =
  Numerics.Rng.split
    (Numerics.Rng.create ~seed:(Scenario.sim_seed scenario))
    ~index:salt

let run t scenario =
  let outcomes = t.run scenario in
  if Obs.Runlog.active () then
    List.iter
      (fun o ->
        Obs.Runlog.record ~kind:"check.oracle"
          [
            ("oracle", Obs.Json.String o.oracle);
            ("quantity", Obs.Json.String o.quantity);
            ("analytic", Obs.Json.Float o.analytic);
            ("simulated", Obs.Json.Float o.simulated);
            ("comparator", Obs.Json.String o.verdict.Compare.comparator);
            ("pass", Obs.Json.Bool (passed o));
          ])
      outcomes;
  outcomes

let pp_outcome ppf o =
  Fmt.pf ppf "[%s] %s: analytic %.6g vs simulated %.6g — %a" o.oracle
    o.quantity o.analytic o.simulated Compare.pp o.verdict
