(** The differential oracle registry: every analytic quantity the
    library exposes, paired with at least one independent estimator and
    the statistical comparator appropriate to the pairing.

    The registry is the single source the property suite
    ([test/test_diff.ml]) and the [experiments_cli check] verb both
    drive; DESIGN.md's cross-check matrix documents the full
    quantity-by-estimator table. All verdicts on a fixed scenario are
    deterministic (per-oracle RNG salts, see {!Oracle.rng}), so a sweep
    is replayable from its seed alone. *)

val all : Oracle.t list
(** The registered oracles, in documentation order. *)

val ids : unit -> string list
val find : string -> Oracle.t option

val run_all : Scenario.t -> Oracle.outcome list
(** Every oracle's outcomes on one scenario, in registry order. *)

val failures : Oracle.outcome list -> Oracle.outcome list

type sweep = {
  cases : int;
  checks : int;  (** total outcomes across all cases and oracles *)
  failed : (int * Scenario.t * Oracle.outcome) list;
      (** (case index, scenario, outcome) for every failed check *)
  per_oracle : (string * int * int) list;
      (** per oracle id: checks run, checks failed *)
}

val sweep :
  ?max_channels:int ->
  ?max_faults:int ->
  ?replications:int ->
  ?only:string ->
  seed:int ->
  cases:int ->
  unit ->
  sweep
(** Generate [cases] scenarios from [seed] (case [k] uses
    [Rng.split (Rng.create ~seed) ~index:k]) and run the whole registry
    on each. [?only] restricts the sweep to oracles whose id starts
    with the given prefix (e.g. ["adjudication"] for the calculus law
    oracles), without changing any oracle's salted substream — a
    filtered sweep's verdicts are those of the full sweep. Deterministic:
    the same seed always yields the same sweep. Raises
    [Invalid_argument] when [cases < 1] or no oracle matches [only]. *)

val passed : sweep -> bool

val render : sweep -> string
(** Per-oracle tally table (via [Report.Table]) followed by one block
    per failed check. *)
