open Numerics

type verdict = { pass : bool; comparator : string; detail : string }

(* The default z for the statistical comparators. Two-sided normal tail
   beyond 6 sigma is ~2e-9, so even a full `make check` sweep (hundreds
   of scenarios, tens of statistical verdicts each) has a negligible
   probability of a false alarm under a *fresh* PROP_SEED — and for any
   fixed seed the verdicts are deterministic, so the suites can never
   flake from run to run. The width costs little detection power against
   real formula corruption: a broken analytic term shifts its estimate
   by many tens of standard errors at the replication counts the
   scenarios use (see the mutation smoke in EXPERIMENTS.md). *)
let default_z = 6.0

let fail_nan which v =
  {
    pass = false;
    comparator = "nan-guard";
    detail = Printf.sprintf "%s value is not finite: %h" which v;
  }

let guarded ~analytic ~simulated k =
  if Float.is_nan analytic then fail_nan "analytic" analytic
  else if Float.is_nan simulated then fail_nan "simulated" simulated
  else k ()

let exact_bits a b =
  guarded ~analytic:a ~simulated:b (fun () ->
      let pass = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
      {
        pass;
        comparator = "exact-bits";
        detail = Printf.sprintf "%h vs %h" a b;
      })

let approx ?(rel = 1e-9) ?(abs = 1e-12) a b =
  guarded ~analytic:a ~simulated:b (fun () ->
      {
        pass = Stats.approx_eq ~rel ~abs a b;
        comparator = Printf.sprintf "approx(rel=%.1e,abs=%.1e)" rel abs;
        detail = Printf.sprintf "%.12g vs %.12g (delta %.3e)" a b (a -. b);
      })

let wilson ?(z = default_z) ~expected ~successes ~trials () =
  if trials <= 0 then invalid_arg "Compare.wilson: trials must be positive";
  if successes < 0 || successes > trials then
    invalid_arg "Compare.wilson: successes out of range";
  guarded ~analytic:expected
    ~simulated:(float_of_int successes /. float_of_int trials)
    (fun () ->
      let lo, hi = Stats.proportion_ci ~z ~successes ~trials () in
      (* ulp slack so an expected value sitting exactly on an interval
         endpoint is never rejected for rounding reasons *)
      let eps = 1e-12 in
      let n = float_of_int trials in
      let observed = float_of_int successes /. n in
      (* Wilson's z-sigma coverage is a CLT statement and collapses when
         the expected proportion is within ~1/n of 0 or 1 (a single
         stray event then jumps the estimate outside the interval). The
         Bernstein test below is exact at any n: under the null the
         per-trial variance is the known expected*(1-expected), and
         P(|observed - expected| > z*sqrt(var/n) + z^2/(3n)) <=
         2*exp(-z^2/2) for bounded observations. Either acceptance
         keeps the verdict a finite-sample guarantee. *)
      let bernstein =
        (z *. sqrt (expected *. (1.0 -. expected) /. n)) +. (z *. z /. (3.0 *. n))
      in
      {
        pass =
          (expected >= lo -. eps && expected <= hi +. eps)
          || abs_float (observed -. expected) <= bernstein;
        comparator = Printf.sprintf "wilson+bernstein(z=%g)" z;
        detail =
          Printf.sprintf
            "expected %.6g, observed %d/%d, wilson [%.6g, %.6g], bernstein \
             half-width %.3e"
            expected successes trials lo hi bernstein;
      })

let mean_z ?(z = default_z) ?(bound = 0.0) ~expected ~sigma ~trials ~mean () =
  if trials <= 0 then invalid_arg "Compare.mean_z: trials must be positive";
  if sigma < 0.0 then invalid_arg "Compare.mean_z: sigma must be >= 0";
  if bound < 0.0 then invalid_arg "Compare.mean_z: bound must be >= 0";
  guarded ~analytic:expected ~simulated:mean (fun () ->
      if Stats.is_zero sigma && Stats.is_zero bound then
        (* a zero-variance quantity admits no sampling error: degrade to
           the floating-point comparator *)
        approx expected mean
      else
        let n = float_of_int trials in
        (* z * standard error, plus a Bernstein term for bounded
           observations: with |X| <= bound, the tolerance
           z*sigma/sqrt(n) + z^2*bound/(3n) dominates the exact solution
           of the Bernstein tail inequality at confidence
           2*exp(-z^2/2), so the verdict is a finite-sample guarantee
           rather than a CLT approximation — essential because PFD
           samples are rare-event mixtures (mostly zero, occasionally
           ~q_i) for which a pure z-test at modest replication counts
           is unreliable in the far tail. *)
        let half =
          (z *. sigma /. sqrt n) +. (z *. z *. bound /. (3.0 *. n))
        in
        {
          pass = abs_float (mean -. expected) <= half;
          comparator =
            (if bound > 0.0 then Printf.sprintf "z-bernstein(z=%g)" z
             else Printf.sprintf "z-test(z=%g)" z);
          detail =
            Printf.sprintf
              "expected %.6g, sample mean %.6g over %d, |delta| %.3e vs %.3e \
               allowed"
              expected mean trials
              (abs_float (mean -. expected))
              half;
        })

let ratio_wilson ?(z = default_z) ~expected ~num ~den ~trials () =
  if trials <= 0 then
    invalid_arg "Compare.ratio_wilson: trials must be positive";
  if num < 0 || num > trials || den < 0 || den > trials then
    invalid_arg "Compare.ratio_wilson: counts out of range";
  let observed =
    if den = 0 then nan else float_of_int num /. float_of_int den
  in
  if Float.is_nan expected then fail_nan "analytic" expected
  else
    (* widen each component interval by the Bernstein z^2/(3n) term so
       the containment stays a finite-sample statement when either
       proportion sits within ~1/n of 0 or 1 (see {!wilson}) *)
    let slack = z *. z /. (3.0 *. float_of_int trials) in
    let widen (lo, hi) = (Float.max 0.0 (lo -. slack), Float.min 1.0 (hi +. slack)) in
    let n_lo, n_hi = widen (Stats.proportion_ci ~z ~successes:num ~trials ()) in
    let d_lo, d_hi = widen (Stats.proportion_ci ~z ~successes:den ~trials ()) in
    if Stats.is_zero d_lo || d_lo < 0.0 then
      (* the denominator interval touches zero: the sample cannot bound
         the ratio, so the check is inconclusive rather than failed *)
      {
        pass = true;
        comparator = Printf.sprintf "ratio-wilson(z=%g)" z;
        detail =
          Printf.sprintf
            "inconclusive: denominator interval [%.3g, %.3g] touches 0 (%d/%d \
             events)"
            d_lo d_hi den trials;
      }
    else
      let lo = n_lo /. d_hi and hi = n_hi /. d_lo in
      let eps = 1e-12 in
      {
        pass = expected >= lo -. eps && expected <= hi +. eps;
        comparator = Printf.sprintf "ratio-wilson(z=%g)" z;
        detail =
          Printf.sprintf
            "expected %.6g, observed %.6g (%d/%d of %d), interval [%.6g, %.6g]"
            expected observed num den trials lo hi;
      }

let all_pass verdicts = List.for_all (fun v -> v.pass) verdicts

let pp ppf v =
  Fmt.pf ppf "%s %s: %s"
    (if v.pass then "ok" else "FAIL")
    v.comparator v.detail
