(** Domain-based worker pool (OCaml 5 multicore).

    A pool of [domains] execution contexts: [domains - 1] spawned worker
    domains plus the calling domain, which participates while a batch is
    running. A pool of size 1 spawns nothing and runs every task inline,
    so results are trivially identical to direct sequential execution —
    the anchor of the repo's determinism contract (see {!Exec}).

    This module is the only sanctioned home of [Domain.spawn] /
    [Domain.join] (divlint rule R8 [domain-containment]). *)

type t
(** A pool; reusable across many {!run} batches. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of the given size (>= 1). Without
    [domains], the size is the [DIVREL_DOMAINS] environment variable when
    set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** Number of execution contexts (including the caller). *)

val run : t -> n:int -> (int -> 'a) -> 'a array
(** [run t ~n f] evaluates [f 0 .. f (n-1)], possibly concurrently, and
    returns the results in index order. Tasks must depend only on their
    index, never on placement or completion order. If any task raises,
    one of the raised exceptions is re-raised after all tasks finish.
    Blocks until the whole batch is done. Every task flushes its
    domain's pending RNG draw count ({!Numerics.Rng.flush_draws}) on
    completion, so [Numerics.Rng.total_draws] is exact once [run]
    returns. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Running batches must
    have completed. *)

val env_var : string
(** ["DIVREL_DOMAINS"] — environment override for the default size. *)

val auto_domains : unit -> int
(** The size {!create} and {!default} use when none is given:
    [DIVREL_DOMAINS] if set, else [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** The lazily-created process-wide pool, sized by {!auto_domains} or a
    preceding {!set_default_domains}. Main-domain use only. *)

val set_default_domains : int -> unit
(** Resize the default pool (shuts down a previously created one). Wired
    to the [--domains] CLI flags. Main-domain use only. *)
