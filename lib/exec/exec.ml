(* Deterministic sharded execution.

   The repo's parallelism contract: every parallel computation is split
   into a *fixed* number of shards, each seeded from the parent RNG with
   [Rng.split ~index:shard], and shard results are merged in shard
   order. Output is therefore a pure function of (seed, shards) — the
   domain count only decides how many shards run concurrently, never
   what they compute. domains=1 and domains=N are byte-identical. *)

module Pool = Pool

(* Process-default shard count. A fixed constant (not hardware-derived!)
   so that default outputs are reproducible across machines; the CLI
   [--shards] flag and [set_default_shards] override it, which changes
   outputs deterministically. *)
let default_shards_value = 16
let default_shards_ref = ref default_shards_value
let default_shards () = !default_shards_ref

let set_default_shards n =
  if n < 1 then invalid_arg "Exec.set_default_shards: shards must be >= 1";
  default_shards_ref := n

let shard_bounds ~range ~shards =
  if shards < 1 then invalid_arg "Exec.shard_bounds: shards must be >= 1";
  if range < 0 then invalid_arg "Exec.shard_bounds: negative range";
  let base = range / shards and extra = range mod shards in
  Array.init shards (fun k ->
      let lo = (k * base) + min k extra in
      let len = base + if k < extra then 1 else 0 in
      (lo, len))

let split_rngs rng ~shards =
  if shards < 1 then invalid_arg "Exec.split_rngs: shards must be >= 1";
  Array.init shards (fun k -> Numerics.Rng.split rng ~index:k)

let map_shards ?pool ~shards ~f () =
  if shards < 1 then invalid_arg "Exec.map_shards: shards must be >= 1";
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Pool.run pool ~n:shards (fun k -> Obs.Trace.with_shard k (fun () -> f k))

let map_reduce ?pool ~shards ~f ~merge () =
  let results = map_shards ?pool ~shards ~f () in
  let acc = ref results.(0) in
  for k = 1 to shards - 1 do
    acc := merge !acc results.(k)
  done;
  !acc
