(* Domain-based worker pool.

   The pool owns [size - 1] worker domains pulling thunks from a shared
   queue; the caller participates in draining the queue during [run], so
   a pool of size 1 spawns no domains and executes everything inline on
   the calling domain. Determinism is the caller's contract: tasks must
   depend only on their own index (e.g. a per-shard split RNG), never on
   which domain runs them or in what order — [run] returns results in
   task-index order regardless of scheduling.

   This module is the only sanctioned home of Domain.spawn / Domain.join
   (divlint rule R8 `domain-containment`). *)

type task = unit -> unit

type t = {
  size : int;
  lock : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  queue : task Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Sizing                                                             *)
(* ------------------------------------------------------------------ *)

let env_var = "DIVREL_DOMAINS"

let env_domains () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let auto_domains () =
  match env_domains () with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Workers                                                            *)
(* ------------------------------------------------------------------ *)

let rec worker_loop t =
  Mutex.lock t.lock;
  while t.live && Queue.is_empty t.queue do
    Condition.wait t.work_available t.lock
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* only reachable on shutdown with an empty queue *)
      Mutex.unlock t.lock
  | Some task ->
      Mutex.unlock t.lock;
      task ();
      worker_loop t

let create ?domains () =
  let size = match domains with Some n -> n | None -> auto_domains () in
  if size < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      size;
      lock = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.live <- false;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

(* ------------------------------------------------------------------ *)
(* Running a batch                                                    *)
(* ------------------------------------------------------------------ *)

let run_sequential n f =
  let r = Array.init n (fun i -> f i) in
  Numerics.Rng.flush_draws ();
  r

let run t ~n f =
  if n < 0 then invalid_arg "Pool.run: negative task count";
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then run_sequential n f
  else begin
    (* Results land by index; completion and the first exception are
       tracked under the pool lock, which also publishes the result
       array writes to the joining caller. *)
    let results = Array.make n None in
    let remaining = ref n in
    let first_exn = ref None in
    let task i () =
      (match f i with
      | v -> results.(i) <- Some v
      | exception exn ->
          Mutex.lock t.lock;
          if !first_exn = None then first_exn := Some exn;
          Mutex.unlock t.lock);
      (* Per-domain RNG draw accounting: merge this domain's pending
         draw count into the process total before the task is reported
         done, so Rng.total_draws is exact as soon as the batch joins —
         one fetch-and-add per task instead of one per draw. *)
      Numerics.Rng.flush_draws ();
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    (* The caller drains the queue alongside the workers... *)
    let rec help () =
      Mutex.lock t.lock;
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.lock;
          task ();
          help ()
      | None -> Mutex.unlock t.lock
    in
    help ();
    (* ...then waits for in-flight tasks still running on workers. *)
    Mutex.lock t.lock;
    while !remaining > 0 do
      Condition.wait t.work_done t.lock
    done;
    Mutex.unlock t.lock;
    (match !first_exn with Some exn -> raise exn | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.run: task produced no result")
      results
  end

(* ------------------------------------------------------------------ *)
(* The process-wide default pool                                      *)
(* ------------------------------------------------------------------ *)

(* Lazily created on first use so libraries can take [?pool] arguments
   without forcing domain spawns at module initialisation. Managed from
   the main domain only (CLI flag parsing, bench setup). *)

let configured_domains = ref None
let the_default = ref None

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: domains must be >= 1";
  (match !the_default with Some p -> shutdown p | None -> ());
  the_default := None;
  configured_domains := Some n

let default () =
  match !the_default with
  | Some p -> p
  | None ->
      let domains =
        match !configured_domains with Some n -> n | None -> auto_domains ()
      in
      let p = create ~domains () in
      the_default := Some p;
      p
