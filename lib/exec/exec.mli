(** Deterministic sharded map-reduce over a {!Pool} of domains.

    Determinism contract: a parallel computation is split into a fixed
    number of [shards]; shard [k] derives its randomness from
    [Rng.split parent ~index:k] and its slice of the work from
    {!shard_bounds}; results are merged in shard order. The output is a
    pure function of [(seed, shards)] and is byte-identical for any
    domain count, including a 1-domain (fully sequential) pool. Changing
    [shards] changes outputs — deterministically — which is why the
    default is a fixed constant rather than a hardware-derived value. *)

module Pool = Pool

val default_shards : unit -> int
(** Shard count used by library entry points when the caller passes no
    [~shards]; 16 unless overridden by {!set_default_shards}. *)

val set_default_shards : int -> unit
(** Override {!default_shards} (>= 1); wired to the [--shards] CLI
    flags. Changes downstream outputs deterministically. *)

val shard_bounds : range:int -> shards:int -> (int * int) array
(** [(lo, len)] per shard: contiguous, disjoint, covering [0, range);
    lengths differ by at most one (the first [range mod shards] shards
    take the extra element). Shards beyond [range] get [len = 0]. *)

val split_rngs : Numerics.Rng.t -> shards:int -> Numerics.Rng.t array
(** One independent substream per shard, derived with
    [Rng.split ~index:k]. Advances the parent by exactly [shards]
    draws. *)

val map_shards :
  ?pool:Pool.t -> shards:int -> f:(int -> 'a) -> unit -> 'a array
(** Run [f 0 .. f (shards-1)] on the pool (default: {!Pool.default}),
    returning results in shard order. Each shard runs under
    [Obs.Trace.with_shard k] so trace spans from parallel regions stay
    well-nested per shard. *)

val map_reduce :
  ?pool:Pool.t ->
  shards:int ->
  f:(int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  unit ->
  'a
(** {!map_shards} followed by a left fold of [merge] in shard order:
    [merge (... merge (merge r0 r1) r2 ...) r(shards-1)]. *)
