open Numerics

let prod_except_one ps i =
  Kahan.sum_over (Array.length ps) (fun j ->
      if j = i then 0.0 else Special.log1p (-.ps.(j)))
  |> exp

let prod_except_squared ps i =
  Kahan.sum_over (Array.length ps) (fun j ->
      if j = i then 0.0 else Special.log1p (-.(ps.(j) *. ps.(j))))
  |> exp

let risk_ratio_partial ps i =
  let s1 = Fault_count.prob_some ps in
  if Stats.is_zero s1 then nan
  else
    let s2 = Fault_count.prob_some (Array.map (fun p -> p *. p) ps) in
    let ds1 = prod_except_one ps i in
    let ds2 = 2.0 *. ps.(i) *. prod_except_squared ps i in
    ((ds2 *. s1) -. (s2 *. ds1)) /. (s1 *. s1)

let risk_ratio_gradient ?pool ?shards ps =
  (* Each partial is O(n), the gradient O(n^2); the partials are pure, so
     they shard over index slices into a preallocated result array. Every
     shard writes exactly what the sequential loop would — no RNG, no
     merge — so the output is independent of both pool size and shard
     count here. *)
  let n = Array.length ps in
  let shards =
    let s = match shards with Some s -> s | None -> Exec.default_shards () in
    if s < 1 then invalid_arg "Sensitivity.risk_ratio_gradient: shards must be >= 1";
    min s (max 1 n)
  in
  let grad = Array.make n 0.0 in
  let bounds = Exec.shard_bounds ~range:n ~shards in
  ignore
    (Exec.map_shards ?pool ~shards
       ~f:(fun k ->
         let lo, len = bounds.(k) in
         for i = lo to lo + len - 1 do
           grad.(i) <- risk_ratio_partial ps i
         done)
       ());
  grad

let risk_ratio_k_derivative ~b ~k =
  (* Chain rule for p_i = k b_i: dR/dk = sum_i b_i dR/dp_i. Appendix B
     proves this is non-negative for 0 <= k b_i <= 1. *)
  let ps = Array.map (fun bi -> k *. bi) b in
  Kahan.sum_over (Array.length b) (fun i -> b.(i) *. risk_ratio_partial ps i)

let stationary_p1 ~p2 =
  if p2 <= 0.0 || p2 >= 1.0 then
    invalid_arg "Sensitivity.stationary_p1: p2 must lie strictly in (0, 1)";
  (* For n = 2 the ratio is R(p1) = (p1^2 + p2^2 - p1^2 p2^2) /
     (p1 + p2 - p1 p2); setting dR/dp1 = 0 gives the quadratic
     (1 - p2^2) p1^2 + 2 p2 (1 + p2) p1 - p2^2 = 0, whose positive root is
     below.  (Derived independently; EXPERIMENTS.md records how this
     compares with the root printed in the paper's Appendix A.) *)
  p2 *. (sqrt (2.0 /. (1.0 +. p2)) -. 1.0) /. (1.0 -. p2)

let risk_ratio_two ~p1 ~p2 =
  ((p1 *. p1) +. (p2 *. p2) -. (p1 *. p1 *. p2 *. p2))
  /. (p1 +. p2 -. (p1 *. p2))

let stationary_point ps i ~lo ~hi =
  let f x =
    let ps' = Array.copy ps in
    ps'.(i) <- x;
    risk_ratio_partial ps' i
  in
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then Some lo (* divlint: allow float-eq *)
  else if fhi = 0.0 then Some hi (* divlint: allow float-eq *)
  else if flo *. fhi > 0.0 then None
  else Some (Rootfind.brent f ~lo ~hi)

type improvement_effect = Increases_gain | Decreases_gain | Neutral

let classify_single_improvement ps i =
  (* Decreasing p_i moves the ratio by -dR/dp_i: a positive derivative
     means improvement (decrease of p_i) lowers the ratio and so increases
     the gain from diversity. *)
  let d = risk_ratio_partial ps i in
  if Float.is_nan d || abs_float d < 1e-14 then Neutral
  else if d > 0.0 then Increases_gain
  else Decreases_gain
