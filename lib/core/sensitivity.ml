open Numerics

let prod_except_one ps i =
  Kahan.sum_over (Array.length ps) (fun j ->
      if j = i then 0.0 else Special.log1p (-.ps.(j)))
  |> exp

let prod_except_squared ps i =
  Kahan.sum_over (Array.length ps) (fun j ->
      if j = i then 0.0 else Special.log1p (-.(ps.(j) *. ps.(j))))
  |> exp

let risk_ratio_partial ps i =
  let s1 = Fault_count.prob_some ps in
  if Stats.is_zero s1 then nan
  else
    let s2 = Fault_count.prob_some (Array.map (fun p -> p *. p) ps) in
    let ds1 = prod_except_one ps i in
    let ds2 = 2.0 *. ps.(i) *. prod_except_squared ps i in
    ((ds2 *. s1) -. (s2 *. ds1)) /. (s1 *. s1)

(* Incremental formulation of the full gradient. A single pass builds
   compensated prefix/suffix sums of log1p(-p_j) and log1p(-p_j^2);
   prod_except_one ps i is then exp(pre.(i) + suf.(i + 1)) and each
   partial costs O(1), so the whole gradient is O(n) instead of the
   naive O(n^2).

   Prefix + suffix — not the global product divided by one factor — so a
   coordinate with p_i = 1 stays exact: its own -infinity log term is
   excluded from the sums for index i rather than divided back out as a
   0/0. Kahan accumulators propagate an interior -infinity cleanly (the
   compensation is dropped on a non-finite sum), so other coordinates
   correctly see exp(-inf) = 0, exactly as the naive sum-over-j path
   does. The two prob_some terms are loop invariants, computed once.

   Summation order differs from the naive per-index Kahan sums, so
   results agree only to rounding; the incremental-vs-naive differential
   oracle and property suite pin the agreement (see EXPERIMENTS.md for
   the tolerance policy). *)
let incremental_partials ps =
  let n = Array.length ps in
  let s1 = Fault_count.prob_some ps in
  if Stats.is_zero s1 then fun _ -> nan
  else begin
    let pre1 = Array.make (n + 1) 0.0 and pre2 = Array.make (n + 1) 0.0 in
    let suf1 = Array.make (n + 1) 0.0 and suf2 = Array.make (n + 1) 0.0 in
    let a1 = Kahan.create () and a2 = Kahan.create () in
    for i = 0 to n - 1 do
      Kahan.add a1 (Special.log1p (-.ps.(i)));
      Kahan.add a2 (Special.log1p (-.(ps.(i) *. ps.(i))));
      pre1.(i + 1) <- Kahan.total a1;
      pre2.(i + 1) <- Kahan.total a2
    done;
    Kahan.reset a1;
    Kahan.reset a2;
    for i = n - 1 downto 0 do
      Kahan.add a1 (Special.log1p (-.ps.(i)));
      Kahan.add a2 (Special.log1p (-.(ps.(i) *. ps.(i))));
      suf1.(i) <- Kahan.total a1;
      suf2.(i) <- Kahan.total a2
    done;
    let s2 = Fault_count.prob_some (Array.map (fun p -> p *. p) ps) in
    fun i ->
      let ds1 = exp (pre1.(i) +. suf1.(i + 1)) in
      let ds2 = 2.0 *. ps.(i) *. exp (pre2.(i) +. suf2.(i + 1)) in
      ((ds2 *. s1) -. (s2 *. ds1)) /. (s1 *. s1)
  end

let check_shards ~what shards =
  match shards with
  | Some s when s < 1 ->
      invalid_arg (Printf.sprintf "Sensitivity.%s: shards must be >= 1" what)
  | _ -> ()

let risk_ratio_gradient ?pool:_ ?shards ps =
  (* O(n) total: cheaper than dispatching even one shard task, so the
     pool is accepted for API compatibility but never engaged. The
     output never depended on pool or shard count before and still does
     not. *)
  check_shards ~what:"risk_ratio_gradient" shards;
  let partial = incremental_partials ps in
  Array.init (Array.length ps) partial

let risk_ratio_gradient_naive ?pool ?shards ps =
  (* Retained O(n^2) reference path: each partial is an independent O(n)
     Kahan sum, sharded over index slices into a preallocated result
     array. Every shard writes exactly what the sequential loop would —
     no RNG, no merge — so the output is independent of both pool size
     and shard count. Kept as the differential-oracle anchor for the
     incremental path above. *)
  let n = Array.length ps in
  let shards =
    let s = match shards with Some s -> s | None -> Exec.default_shards () in
    if s < 1 then
      invalid_arg "Sensitivity.risk_ratio_gradient_naive: shards must be >= 1";
    min s (max 1 n)
  in
  let grad = Array.make n 0.0 in
  let bounds = Exec.shard_bounds ~range:n ~shards in
  ignore
    (Exec.map_shards ?pool ~shards
       ~f:(fun k ->
         let lo, len = bounds.(k) in
         for i = lo to lo + len - 1 do
           grad.(i) <- risk_ratio_partial ps i
         done)
       ());
  grad

let risk_ratio_k_derivative ~b ~k =
  (* Chain rule for p_i = k b_i: dR/dk = sum_i b_i dR/dp_i. Appendix B
     proves this is non-negative for 0 <= k b_i <= 1. O(n) via the same
     prefix/suffix machinery as the gradient. *)
  let ps = Array.map (fun bi -> k *. bi) b in
  let partial = incremental_partials ps in
  Kahan.sum_over (Array.length b) (fun i -> b.(i) *. partial i)

let risk_ratio_k_derivative_naive ~b ~k =
  let ps = Array.map (fun bi -> k *. bi) b in
  Kahan.sum_over (Array.length b) (fun i -> b.(i) *. risk_ratio_partial ps i)

let stationary_p1 ~p2 =
  if p2 <= 0.0 || p2 >= 1.0 then
    invalid_arg "Sensitivity.stationary_p1: p2 must lie strictly in (0, 1)";
  (* For n = 2 the ratio is R(p1) = (p1^2 + p2^2 - p1^2 p2^2) /
     (p1 + p2 - p1 p2); setting dR/dp1 = 0 gives the quadratic
     (1 - p2^2) p1^2 + 2 p2 (1 + p2) p1 - p2^2 = 0, whose positive root is
     below.  (Derived independently; EXPERIMENTS.md records how this
     compares with the root printed in the paper's Appendix A.) *)
  p2 *. (sqrt (2.0 /. (1.0 +. p2)) -. 1.0) /. (1.0 -. p2)

let risk_ratio_two ~p1 ~p2 =
  ((p1 *. p1) +. (p2 *. p2) -. (p1 *. p1 *. p2 *. p2))
  /. (p1 +. p2 -. (p1 *. p2))

let stationary_point ps i ~lo ~hi =
  let f x =
    let ps' = Array.copy ps in
    ps'.(i) <- x;
    risk_ratio_partial ps' i
  in
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then Some lo (* divlint: allow float-eq *)
  else if fhi = 0.0 then Some hi (* divlint: allow float-eq *)
  else if flo *. fhi > 0.0 then None
  else Some (Rootfind.brent f ~lo ~hi)

type improvement_effect = Increases_gain | Decreases_gain | Neutral

let classify_single_improvement ps i =
  (* Decreasing p_i moves the ratio by -dR/dp_i: a positive derivative
     means improvement (decrease of p_i) lowers the ratio and so increases
     the gain from diversity. *)
  let d = risk_ratio_partial ps i in
  if Float.is_nan d || abs_float d < 1e-14 then Neutral
  else if d > 0.0 then Increases_gain
  else Decreases_gain
