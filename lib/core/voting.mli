(** M-out-of-N voted architectures.

    The paper analyses the 1-out-of-2 OR configuration of Fig. 1; the
    fault-creation model extends verbatim to any M-out-of-N adjudication:
    with non-overlapping failure regions, a demand in fault i's region is
    mishandled exactly when too few channels are free of that fault, an
    event with binomial probability in the per-channel p_i. All the
    paper's machinery (moments, no-common-fault probabilities, exact PFD
    distributions, mu + k sigma bounds) then carries over. *)

type t
(** An architecture: N independently developed channels of which at least
    M must respond correctly. *)

val create : channels:int -> required:int -> t
(** Raises [Invalid_argument] unless 1 <= required <= channels. *)

val one_out_of_two : t
(** The paper's configuration. *)

val two_out_of_three : t
(** The classic majority-voting protection architecture. *)

val channels : t -> int
val required : t -> int

val fault_defeats_system : t -> p:float -> float
(** Probability that fault i (introduced per channel with probability [p])
    is present in enough channels to defeat the vote:
    P(Bin(N, p) >= N - M + 1). For 1-out-of-2 this is p^2, recovering the
    paper's model. *)

val mu : t -> Universe.t -> float
(** Mean system PFD. *)

val var : t -> Universe.t -> float
val sigma : t -> Universe.t -> float

val system_fault_probs : t -> Universe.t -> float array
(** Per-fault probabilities of defeating the vote — the voted system's
    analogue of the p_i^2 vector. *)

val p_system_fault_free : t -> Universe.t -> float
(** Probability that no fault defeats the vote (the Section 4 measure). *)

val p_some_system_fault : t -> Universe.t -> float

val risk_ratio_vs_single : t -> Universe.t -> float
(** Eq. (10) generalised: P(some system-level fault)/P(single version
    faulty). *)

val pfd_dist : t -> Universe.t -> Pfd_dist.t
(** Exact PFD distribution of the voted system. *)

val confidence_bound : t -> Universe.t -> k:float -> float
(** mu + k sigma for the voted system. *)

val pp : Format.formatter -> t -> unit

(** {1 Adjudication combinator calculus}

    A small algebra of adjudicators over abstaining channel outputs
    (Boiten, "Diversity and Adjudication"). The executable adjudicator
    in [Simulator.Adjudicator] and the analytic closed forms below
    share these counts-level semantics, so simulated and closed-form
    PFD evaluations of the same composed adjudicator are directly
    cross-checkable (see the [lib/check] adjudication oracles).

    Laws, by construction:
    - [compose Unit a], [compose a Unit] and [a] decide identically;
    - every policy is permutation-invariant in the channel outputs
      (the semantics only see vote counts);
    - [fallback a a] decides as [a] on abstain-free inputs;
    - [Vote r] on abstain-free inputs decides exactly as the legacy
      M-out-of-N adjudicator (Shutdown iff >= r shutdown votes). *)

type decision = Shutdown | No_action | Abstain
(** Verdict lattice: a demand is handled iff the decision is
    [Shutdown]; [Abstain] means the adjudicator could not reach a
    verdict (quorum loss under abstention). *)

type policy =
  | Unit  (** identity: passes the vote vector through unchanged *)
  | Vote of int
      (** [Vote r]: Shutdown on >= r shutdown votes; Abstain when
          fewer than r channels are still voting (quorum loss);
          No_action otherwise *)
  | Compose of policy * policy
      (** cascade: the second stage adjudicates the survivors (the
          collapsed vote vector) of the first *)
  | Fallback of policy * policy
      (** [Fallback (a, b)]: decide by [a]; if [a]'s verdict collapses
          to Abstain, re-adjudicate the original votes through [b] *)

val vote : required:int -> policy
(** [Vote required], validated. Raises [Invalid_argument] when
    [required < 1]. *)

val compose : policy -> policy -> policy
val fallback : policy -> policy -> policy

val decide :
  policy -> shutdowns:int -> no_actions:int -> abstains:int -> decision
(** Adjudicate a vote-count vector. Raises [Invalid_argument] on
    negative counts. Channel-order independence is structural: only
    counts enter. *)

val policy_min_channels : policy -> int
(** Fewest channel outputs on which the policy can reach a definite
    verdict — the arity floor enforced by
    [Simulator.Adjudicator.combine] ([Vote r] needs [r] channels; a
    fallback needs only its cheaper branch). *)

val equal_decision : decision -> decision -> bool
val equal_policy : policy -> policy -> bool
val pp_decision : Format.formatter -> decision -> unit

val pp_policy : Format.formatter -> policy -> unit
(** Prints [Vote] nodes in the legacy adjudicator's notation
    ("1-out-of-N (OR)", "[r]-out-of-N"). *)

val arch_policy : t -> policy
(** The fixed M-out-of-N architecture as a calculus instance. *)

(** {2 Closed-form PFD evaluation for composed adjudicators}

    Channels carry a fault independently with probability [p]; a
    carried fault is caught by the channel's development-time
    self-check with probability [detection] (default 0 — a channel
    without self-checks never abstains). On a demand in the fault's
    region, clean channels vote Shutdown, undetected carriers
    No_action, detected carriers Abstain; the system mishandles the
    demand iff [decide] of those counts is not [Shutdown]. With
    [detection = 0], [policy_defeat_prob (Vote r)] reduces to
    [fault_defeats_system] and the [policy_*] forms below reduce to
    their fixed-architecture counterparts. *)

val binom_pmf : n:int -> p:float -> int -> float
(** [binom_pmf ~n ~p k] is P(Bin(n, p) = k); exact at p = 0 and 1. *)

val policy_defeat_prob :
  policy -> channels:int -> ?detection:float -> p:float -> unit -> float

val policy_system_fault_probs :
  policy -> channels:int -> ?detection:float -> Universe.t -> float array

val policy_mu :
  policy -> channels:int -> ?detection:float -> Universe.t -> float
(** Mean system PFD of the adjudicated system over a universe. *)

val policy_var :
  policy -> channels:int -> ?detection:float -> Universe.t -> float

val policy_sigma :
  policy -> channels:int -> ?detection:float -> Universe.t -> float

val policy_p_some_system_fault :
  policy -> channels:int -> ?detection:float -> Universe.t -> float

val policy_risk_ratio_vs_single :
  policy -> channels:int -> ?detection:float -> Universe.t -> float

val policy_pfd_dist :
  policy -> channels:int -> ?detection:float -> Universe.t -> Pfd_dist.t
(** Exact PFD distribution of the adjudicated system (per-fault defeat
    probabilities convolved over the universe's q vector). *)
