(** Exact and grid-approximated distributions of the PFD random variables
    Theta_1 (one version) and Theta_2 (a 1-out-of-2 pair).

    The paper works with means, variances and a normal approximation because
    the full distribution has 2^n support points; on a finite universe we
    can do better and compute it exactly (small n) or on a value grid
    (large n), which is what lets experiments E06/E15 quantify how good the
    paper's Section 5 normal approximation actually is. *)

type t
(** A finite discrete distribution on [0, 1] (sorted support, merged
    duplicates, normalised mass, precomputed CDF). *)

val of_mass : (float * float) list -> t
(** Build from (value, mass) pairs; masses are normalised, zero-mass points
    dropped, equal support points merged (support ordered by
    [Float.compare]). Raises [Invalid_argument] when no positive mass
    remains, or when any support point or mass is NaN. *)

val of_sorted_arrays : float array -> float array -> t
(** Build from parallel support/mass arrays that are already sorted and
    coalesced: after dropping nonpositive-mass points the support must be
    strictly increasing ([Invalid_argument] otherwise, as for NaN entries,
    length mismatch, or no positive mass). Produces bit-identically the
    distribution [of_mass] would, in O(m) instead of O(m log m) — the
    constructor the convolvers use to skip the list round-trip and sort
    of an already-sorted support. *)

val support : t -> float array
val masses : t -> float array

val size : t -> int
(** Number of distinct support points. *)

val mean : t -> float
val variance : t -> float
val std : t -> float

val cdf : t -> float -> float
(** P(X <= x), O(log n). *)

val sf : t -> float -> float
(** P(X > x). *)

val quantile : t -> float -> float
(** Smallest support point x with CDF(x) >= alpha — the "upper bound not
    exceeded with a set probability" of Section 3. *)

val prob_positive : t -> float
(** P(X > 0): for the pair distribution this equals P(N2 > 0) when all q_i
    are positive. *)

val sample : t -> Numerics.Rng.t -> float
(** Draw from the distribution by inverse transform. *)

val max_exact_faults : int
(** Largest universe size accepted by exact enumeration (22: 4M support
    points before merging). *)

val exact_of_vectors :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  probs:float array ->
  values:float array ->
  unit ->
  t
(** Exact distribution of a sum of independent two-point variables taking
    value [values.(i)] with probability [probs.(i)], else 0.

    [shards = 1] (the default) is the sequential doubling pass —
    bit-identical values to the legacy kernel, now with preallocated
    ping-pong buffers (no per-fault allocation) and an
    {!of_sorted_arrays}-style finalisation instead of the of_mass list
    round-trip. With more shards, the outcomes of the first
    floor(log2 shards) faults are enumerated as scaled, shifted copies
    of the shared remaining-fault distribution and reduced through a
    pairwise merge tree on the pool; the result is deterministic in
    [shards] (domain count never matters) but its mass sums may differ
    from the sequential pass at ulp level, hence the conservative
    default. *)

val exact_of_vectors_naive : probs:float array -> values:float array -> unit -> t
(** The historical allocating doubling pass (fresh buffers and two
    [Array.sub] per fault, of_mass finalisation), retained as the
    reference side of the fast-vs-legacy differential oracle; sequential
    only. Bit-identical to [exact_of_vectors ~shards:1]. *)

val exact_single : ?pool:Exec.Pool.t -> ?shards:int -> Universe.t -> t
(** Exact distribution of Theta_1. *)

val exact_pair : ?pool:Exec.Pool.t -> ?shards:int -> Universe.t -> t
(** Exact distribution of Theta_2 (introduction probabilities p_i^2). *)

val exact_nk : ?pool:Exec.Pool.t -> ?shards:int -> Universe.t -> channels:int -> t
(** Exact distribution of the PFD of a 1-out-of-N system. *)

val grid_of_vectors :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  probs:float array ->
  values:float array ->
  bins:int ->
  unit ->
  t
(** Grid convolution: every region measure is rounded to a multiple of
    total_q/(bins-1); the support displacement is at most n*step/2 (the
    support can therefore extend slightly beyond total_q — no mass is
    ever clamped to the top bin). Handles thousands of faults.

    Faults sharing a shift are coalesced into one binomial block via the
    Poisson-binomial count recurrence, so the dense sweep runs once per
    distinct shift instead of once per fault. Large grids (>= 32768
    active bins) shard each block's dense update across the pool;
    sharded and sequential paths compute bit-identical values, so the
    result never depends on shards or domain count. Versus
    {!grid_of_vectors_naive} the block coalescing both associates
    same-shift products differently and reorders the dense passes by
    ascending shift: the two paths agree to rounding (see EXPERIMENTS.md
    for the tolerance policy), exactly bit-identical only when every
    shift is unique and the faults already appear in ascending-shift
    order. *)

val grid_of_vectors_naive :
  ?pool:Exec.Pool.t ->
  ?shards:int ->
  probs:float array ->
  values:float array ->
  bins:int ->
  unit ->
  t
(** The historical one-dense-sweep-per-fault grid pass, retained as the
    reference side of the fast-vs-legacy differential oracle. Same
    rounding, sizing and shard semantics as {!grid_of_vectors}. *)

val grid_single : ?pool:Exec.Pool.t -> ?shards:int -> Universe.t -> bins:int -> t
val grid_pair : ?pool:Exec.Pool.t -> ?shards:int -> Universe.t -> bins:int -> t

val single : Universe.t -> t
(** Exact when the universe is small enough, otherwise a 4096-bin grid. *)

val pair : Universe.t -> t
