open Numerics

type bound = { confidence : float; k : float; single : float; pair : float }

let k_of_confidence = Normal_dist.k_of_confidence

let single_bound u ~k =
  Bounds.confidence_bound ~mu:(Moments.mu1 u) ~sigma:(Moments.sigma1 u) ~k

let pair_bound u ~k =
  Bounds.confidence_bound ~mu:(Moments.mu2 u) ~sigma:(Moments.sigma2 u) ~k

let bound_at_confidence u ~confidence =
  let k = k_of_confidence confidence in
  { confidence; k; single = single_bound u ~k; pair = pair_bound u ~k }

let bound_ratio u ~k =
  let s = single_bound u ~k in
  if Stats.is_zero s then nan else pair_bound u ~k /. s

let bound_difference u ~k = single_bound u ~k -. pair_bound u ~k

let single_cdf u x =
  Normal_dist.cdf ~mu:(Moments.mu1 u) ~sigma:(Moments.sigma1 u) x

let pair_cdf u x =
  Normal_dist.cdf ~mu:(Moments.mu2 u) ~sigma:(Moments.sigma2 u) x

let single_quantile u ~confidence =
  Normal_dist.ppf ~mu:(Moments.mu1 u) ~sigma:(Moments.sigma1 u) confidence

let pair_quantile u ~confidence =
  Normal_dist.ppf ~mu:(Moments.mu2 u) ~sigma:(Moments.sigma2 u) confidence

type worked_example = {
  mu1 : float;
  sigma1 : float;
  k : float;
  pmax : float;
  single_bound : float;
  pair_bound_eq11 : float;
  pair_bound_eq12 : float;
}

let worked_example ?(mu1 = 0.01) ?(sigma1 = 0.001) ?(k = 1.0) ?(pmax = 0.1) () =
  (* The Section 5.1 numerical example: single bound 0.011, eq. (11) bound
     0.001 + k-term, eq. (12) bound sqrt(pmax(1+pmax)) * 0.011. *)
  let single_bound = mu1 +. (k *. sigma1) in
  let ratio = Bounds.sigma_ratio_bound pmax in
  let pair_bound_eq11 = (pmax *. mu1) +. (k *. ratio *. sigma1) in
  let pair_bound_eq12 = ratio *. single_bound in
  { mu1; sigma1; k; pmax; single_bound; pair_bound_eq11; pair_bound_eq12 }

let normality_ks_distance u =
  (* Sup-distance between the exact single-version PFD distribution and its
     moment-matched normal: the experiment E15 metric. *)
  let dist = Pfd_dist.single u in
  let mu = Pfd_dist.mean dist and sigma = Pfd_dist.std dist in
  if Stats.is_zero sigma then 1.0
  else
    let lo = mu -. (6.0 *. sigma) and hi = mu +. (6.0 *. sigma) in
    Ks.distance_between_cdfs
      (fun x -> Pfd_dist.cdf dist x)
      (fun x -> Normal_dist.cdf ~mu ~sigma x)
      ~lo ~hi
