open Numerics

let log_prob_none ps =
  Kahan.sum_over (Array.length ps) (fun i -> Special.log1p (-.ps.(i)))

let prob_none ps = exp (log_prob_none ps)

let prob_some ps =
  (* 1 - prod(1 - p_i), computed without cancellation when all p_i are
     tiny: -expm1(sum log1p(-p_i)). *)
  -.Special.expm1 (log_prob_none ps)

let p_n1_zero u = prob_none (Universe.ps u)
let p_n1_pos u = prob_some (Universe.ps u)

let squared ps = Array.map (fun p -> p *. p) ps

let p_n2_zero u = prob_none (squared (Universe.ps u))
let p_n2_pos u = prob_some (squared (Universe.ps u))

let powered ps ~channels =
  Array.map (fun p -> p ** float_of_int channels) ps

let p_nk_zero u ~channels =
  if channels < 1 then invalid_arg "Fault_count.p_nk_zero: channels < 1";
  prob_none (powered (Universe.ps u) ~channels)

let p_nk_pos u ~channels =
  if channels < 1 then invalid_arg "Fault_count.p_nk_pos: channels < 1";
  prob_some (powered (Universe.ps u) ~channels)

let risk_ratio u =
  let denom = p_n1_pos u in
  if Stats.is_zero denom then nan else p_n2_pos u /. denom

let risk_ratio_of_ps ps =
  let denom = prob_some ps in
  if Stats.is_zero denom then nan else prob_some (squared ps) /. denom

let success_ratio u =
  (* Footnote 5: P(N2=0)/P(N1=0) = prod (1+p_i) >= 1. *)
  exp
    (Kahan.sum_over (Universe.size u) (fun i ->
         Special.log1p (Fault.p (Universe.fault u i))))

(* Poisson-binomial distribution by the standard dynamic programme:
   after processing fault i, dist.(k) = P(exactly k of the first i faults
   are present). *)
let poisson_binomial ps =
  let n = Array.length ps in
  let dist = Array.make (n + 1) 0.0 in
  dist.(0) <- 1.0;
  for i = 0 to n - 1 do
    let p = ps.(i) in
    for k = min (i + 1) n downto 1 do
      dist.(k) <- (dist.(k) *. (1.0 -. p)) +. (dist.(k - 1) *. p)
    done;
    dist.(0) <- dist.(0) *. (1.0 -. p)
  done;
  dist

let n1_distribution u = poisson_binomial (Universe.ps u)
let n2_distribution u = poisson_binomial (squared (Universe.ps u))

let nk_distribution u ~channels =
  if channels < 1 then invalid_arg "Fault_count.nk_distribution: channels < 1";
  poisson_binomial (powered (Universe.ps u) ~channels)

let mean_of_distribution dist =
  Kahan.sum_over (Array.length dist) (fun k -> float_of_int k *. dist.(k))

let variance_of_distribution dist =
  let m = mean_of_distribution dist in
  Kahan.sum_over (Array.length dist) (fun k ->
      let d = float_of_int k -. m in
      d *. d *. dist.(k))
