open Numerics

type t = { xs : float array; ws : float array; cum : float array }

let reject_nan ~what x w =
  if Float.is_nan x then invalid_arg (what ^ ": NaN support point");
  if Float.is_nan w then invalid_arg (what ^ ": NaN mass")

(* Shared finalisation: the first [len] entries of [xs]/[ws] hold a
   support sorted strictly increasing once nonpositive-mass points are
   dropped. Normalisation (Kahan total over the kept masses, in order,
   then per-point division) and the CDF are computed exactly as the
   historical of_mass pipeline did, so a distribution built here is
   bit-identical to routing the same points through [of_mass] — that
   equivalence is what lets the convolvers skip the list round-trip and
   sort without perturbing any golden pin. *)
let of_sorted_len ~what xs ws len =
  let kept = ref 0 in
  for i = 0 to len - 1 do
    reject_nan ~what xs.(i) ws.(i);
    if ws.(i) > 0.0 then incr kept
  done;
  if !kept = 0 then invalid_arg (what ^ ": no positive mass");
  let n = !kept in
  let oxs = Array.make n 0.0 and ows = Array.make n 0.0 in
  let j = ref 0 in
  for i = 0 to len - 1 do
    if ws.(i) > 0.0 then begin
      oxs.(!j) <- xs.(i);
      ows.(!j) <- ws.(i);
      incr j
    end
  done;
  for i = 1 to n - 1 do
    if not (oxs.(i - 1) < oxs.(i)) then
      invalid_arg (what ^ ": support not sorted strictly increasing")
  done;
  let total = Kahan.sum_array ows in
  let ows = Array.map (fun w -> w /. total) ows in
  let cum = Array.make n 0.0 in
  let acc = Kahan.create () in
  Array.iteri
    (fun i w ->
      Kahan.add acc w;
      cum.(i) <- min 1.0 (Kahan.total acc))
    ows;
  cum.(n - 1) <- 1.0;
  { xs = oxs; ws = ows; cum }

let of_sorted_arrays xs ws =
  if Array.length xs <> Array.length ws then
    invalid_arg "Pfd_dist.of_sorted_arrays: length mismatch";
  of_sorted_len ~what:"Pfd_dist.of_sorted_arrays" xs ws (Array.length xs)

let of_mass pairs =
  List.iter (fun (x, w) -> reject_nan ~what:"Pfd_dist.of_mass" x w) pairs;
  let pairs = List.filter (fun (_, w) -> w > 0.0) pairs in
  if pairs = [] then invalid_arg "Pfd_dist.of_mass: no positive mass";
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) pairs in
  (* merge equal support points *)
  let merged =
    List.fold_left
      (fun acc (x, w) ->
        match acc with
        | (x0, w0) :: rest when x = x0 -> (x0, w0 +. w) :: rest
        | _ -> (x, w) :: acc)
      [] sorted
    |> List.rev
  in
  let xs = Array.of_list (List.map fst merged) in
  let ws = Array.of_list (List.map snd merged) in
  of_sorted_len ~what:"Pfd_dist.of_mass" xs ws (Array.length xs)

let support t = Array.copy t.xs
let masses t = Array.copy t.ws
let size t = Array.length t.xs

let mean t = Kahan.dot t.xs t.ws

let variance t =
  let m = mean t in
  Kahan.sum_over (size t) (fun i ->
      let d = t.xs.(i) -. m in
      t.ws.(i) *. d *. d)

let std t = sqrt (variance t)

let cdf t x =
  (* P(X <= x): index of last support point <= x. *)
  let n = size t in
  if n = 0 || x < t.xs.(0) then 0.0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    if x >= t.xs.(n - 1) then 1.0
    else begin
      (* invariant: xs(lo) <= x < xs(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t.xs.(mid) <= x then lo := mid else hi := mid
      done;
      t.cum.(!lo)
    end
  end

let sf t x = 1.0 -. cdf t x

let quantile t alpha =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Pfd_dist.quantile: alpha outside [0, 1]";
  (* smallest x with CDF(x) >= alpha *)
  let n = size t in
  let rec search lo hi =
    if lo >= hi then t.xs.(lo)
    else
      let mid = (lo + hi) / 2 in
      if t.cum.(mid) >= alpha then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let prob_positive t = 1.0 -. cdf t 0.0

let sample t rng =
  let u = Rng.float rng in
  let n = size t in
  let rec search lo hi =
    if lo >= hi then t.xs.(lo)
    else
      let mid = (lo + hi) / 2 in
      if t.cum.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)

let max_exact_faults = 22

(* Coalescing 2-way merge of sorted (value, mass) streams; masses of
   equal support points add in encounter order, exactly as the doubling
   convolution's push does. *)
let merge_streams (xs1, ws1) (xs2, ws2) =
  let m1 = Array.length xs1 and m2 = Array.length xs2 in
  if m1 = 0 then (xs2, ws2)
  else if m2 = 0 then (xs1, ws1)
  else begin
    let nxs = Array.make (m1 + m2) 0.0 and nws = Array.make (m1 + m2) 0.0 in
    let a = ref 0 and b = ref 0 and out = ref 0 in
    let push x w =
      if !out > 0 && nxs.(!out - 1) = x then nws.(!out - 1) <- nws.(!out - 1) +. w
      else begin
        nxs.(!out) <- x;
        nws.(!out) <- w;
        incr out
      end
    in
    while !a < m1 || !b < m2 do
      let xa = if !a < m1 then xs1.(!a) else infinity in
      let xb = if !b < m2 then xs2.(!b) else infinity in
      if xa <= xb then begin
        push xa ws1.(!a);
        incr a
      end
      else begin
        push xb ws2.(!b);
        incr b
      end
    done;
    (Array.sub nxs 0 !out, Array.sub nws 0 !out)
  end

(* Breadth-first doubling over faults [lo, hi): dist held as the first
   [len] entries of a ping-pong buffer pair. Each fault's fused merge of
   (old, weight (1-p)) with (old + q, weight p) writes the spare buffer
   and the roles swap — no Array.make / Array.sub per fault; the pair
   only reallocates on the O(log) occasions the support outgrows its
   capacity. The merge arithmetic is unchanged from the historical
   allocating pass, so every produced (value, mass) is bit-identical to
   it (asserted by the fast-vs-legacy differential oracle). Returns
   (xs, ws, len); entries at [len] and beyond are garbage. *)
let convolve_range ~probs ~values lo hi =
  let src_xs = ref (Array.make 16 0.0) and src_ws = ref (Array.make 16 0.0) in
  let dst_xs = ref [||] and dst_ws = ref [||] in
  !src_xs.(0) <- 0.0;
  !src_ws.(0) <- 1.0;
  let len = ref 1 in
  for i = lo to hi - 1 do
    let p = probs.(i) and q = values.(i) in
    if p > 0.0 then begin
      let m = !len in
      if Array.length !dst_xs < 2 * m then begin
        let cap = max (2 * m) (2 * Array.length !dst_xs) in
        dst_xs := Array.make cap 0.0;
        dst_ws := Array.make cap 0.0
      end;
      let old_xs = !src_xs and old_ws = !src_ws in
      let nxs = !dst_xs and nws = !dst_ws in
      let a = ref 0 and b = ref 0 and out = ref 0 in
      let push x w =
        if !out > 0 && nxs.(!out - 1) = x then nws.(!out - 1) <- nws.(!out - 1) +. w
        else begin
          nxs.(!out) <- x;
          nws.(!out) <- w;
          incr out
        end
      in
      while !a < m || !b < m do
        let xa = if !a < m then old_xs.(!a) else infinity in
        let xb = if !b < m then old_xs.(!b) +. q else infinity in
        if xa <= xb then begin
          push xa (old_ws.(!a) *. (1.0 -. p));
          incr a
        end
        else begin
          push xb (old_ws.(!b) *. p);
          incr b
        end
      done;
      src_xs := nxs;
      src_ws := nws;
      dst_xs := old_xs;
      dst_ws := old_ws;
      len := !out
    end
  done;
  (!src_xs, !src_ws, !len)

(* The historical allocating doubling pass, retained verbatim as the
   reference side of the fast-vs-legacy differential oracle: a fresh
   2m-point buffer pair and two Array.sub per fault, finishing through
   the of_mass list pipeline. *)
let convolve_range_naive ~probs ~values lo hi =
  let xs = ref [| 0.0 |] and ws = ref [| 1.0 |] in
  for i = lo to hi - 1 do
    let p = probs.(i) and q = values.(i) in
    if p > 0.0 then begin
      let old_xs = !xs and old_ws = !ws in
      let m = Array.length old_xs in
      let nxs = Array.make (2 * m) 0.0 and nws = Array.make (2 * m) 0.0 in
      (* fused merge of (old, weight (1-p)) with (old + q, weight p) *)
      let a = ref 0 and b = ref 0 and out = ref 0 in
      let push x w =
        if !out > 0 && nxs.(!out - 1) = x then nws.(!out - 1) <- nws.(!out - 1) +. w
        else begin
          nxs.(!out) <- x;
          nws.(!out) <- w;
          incr out
        end
      in
      while !a < m || !b < m do
        let xa = if !a < m then old_xs.(!a) else infinity in
        let xb = if !b < m then old_xs.(!b) +. q else infinity in
        if xa <= xb then begin
          push xa (old_ws.(!a) *. (1.0 -. p));
          incr a
        end
        else begin
          push xb (old_ws.(!b) *. p);
          incr b
        end
      done;
      xs := Array.sub nxs 0 !out;
      ws := Array.sub nws 0 !out
    end
  done;
  (!xs, !ws)

(* Exact distribution of sum of independent {0, q_i} variables with
   P(q_i) = probs.(i).

   Sequential (shards = 1, the default): one doubling pass — bit-for-bit
   the legacy kernel's values, now allocation-free (see convolve_range)
   and finalised without the of_mass list round-trip and sort (the
   doubling output is already sorted and coalesced). Sharded: split the
   faults into a *head* of s = floor(log2 shards) faults and a tail;
   each of the 2^s shards owns one head outcome (a subset of present
   head faults), scales and shifts the shared tail distribution by that
   outcome's mass and offset, and the 2^s streams reduce through a
   balanced pairwise merge tree whose levels run on the pool. Given a
   shard count the result is deterministic for any domain count; sharded
   mass sums may associate differently from the sequential pass
   (ulp-level), which is why the default stays 1. *)
let exact_of_vectors ?pool ?(shards = 1) ~probs ~values () =
  let n = Array.length probs in
  if n <> Array.length values then
    invalid_arg "Pfd_dist.exact_of_vectors: length mismatch";
  if n > max_exact_faults then
    invalid_arg
      (Printf.sprintf
         "Pfd_dist.exact_of_vectors: %d faults exceeds the exact-enumeration \
          limit of %d; use grid_of_vectors"
         n max_exact_faults);
  if shards < 1 then invalid_arg "Pfd_dist.exact_of_vectors: shards must be >= 1";
  let head_bits =
    let rec log2_floor acc s = if s >= 2 then log2_floor (acc + 1) (s / 2) else acc in
    min (log2_floor 0 shards) (max 0 (n - 1))
  in
  if head_bits = 0 then begin
    let xs, ws, len = convolve_range ~probs ~values 0 n in
    of_sorted_len ~what:"Pfd_dist.exact_of_vectors" xs ws len
  end
  else begin
    let tail_xs, tail_ws, m = convolve_range ~probs ~values head_bits n in
    let nstreams = 1 lsl head_bits in
    let streams =
      Exec.map_shards ?pool ~shards:nstreams
        ~f:(fun k ->
          (* Head outcome k: bit i of k decides whether head fault i is
             present. *)
          let mass = ref 1.0 in
          let offset = Kahan.create () in
          for i = 0 to head_bits - 1 do
            if k land (1 lsl i) <> 0 then begin
              mass := !mass *. probs.(i);
              Kahan.add offset values.(i)
            end
            else mass := !mass *. (1.0 -. probs.(i))
          done;
          if !mass <= 0.0 then ([||], [||])
          else begin
            let off = Kahan.total offset in
            let mass = !mass in
            ( Array.init m (fun j -> tail_xs.(j) +. off),
              Array.init m (fun j -> tail_ws.(j) *. mass) )
          end)
        ()
    in
    let rec reduce streams =
      let len = Array.length streams in
      if len = 1 then streams.(0)
      else begin
        let pairs = len / 2 in
        let merged =
          Exec.map_shards ?pool ~shards:pairs
            ~f:(fun k -> merge_streams streams.(2 * k) streams.((2 * k) + 1))
            ()
        in
        let next =
          if len mod 2 = 0 then merged
          else Array.append merged [| streams.(len - 1) |]
        in
        reduce next
      end
    in
    let xs, ws = reduce streams in
    of_sorted_len ~what:"Pfd_dist.exact_of_vectors" xs ws (Array.length xs)
  end

let exact_of_vectors_naive ~probs ~values () =
  let n = Array.length probs in
  if n <> Array.length values then
    invalid_arg "Pfd_dist.exact_of_vectors_naive: length mismatch";
  if n > max_exact_faults then
    invalid_arg
      (Printf.sprintf
         "Pfd_dist.exact_of_vectors_naive: %d faults exceeds the \
          exact-enumeration limit of %d; use grid_of_vectors"
         n max_exact_faults);
  let xs, ws = convolve_range_naive ~probs ~values 0 n in
  let pairs = Array.to_list (Array.map2 (fun x w -> (x, w)) xs ws) in
  of_mass pairs

let exact_single ?pool ?shards u =
  exact_of_vectors ?pool ?shards ~probs:(Universe.ps u) ~values:(Universe.qs u) ()

let exact_pair ?pool ?shards u =
  exact_of_vectors ?pool ?shards
    ~probs:(Array.map (fun p -> p *. p) (Universe.ps u))
    ~values:(Universe.qs u) ()

let exact_nk ?pool ?shards u ~channels =
  if channels < 1 then invalid_arg "Pfd_dist.exact_nk: channels < 1";
  exact_of_vectors ?pool ?shards
    ~probs:(Array.map (fun p -> p ** float_of_int channels) (Universe.ps u))
    ~values:(Universe.qs u) ()

(* Below this many active bins a fault's update is a few microseconds of
   arithmetic — cheaper than dispatching shard tasks — so the sharded
   grid path only engages on large grids. Purely a scheduling threshold:
   both paths compute bit-identical values. *)
let grid_parallel_min_bins = 32768

let grid_validate ~what ~probs ~values ~bins ~shards =
  if Array.length probs <> Array.length values then
    invalid_arg (what ^ ": length mismatch");
  if bins < 2 then invalid_arg (what ^ ": need at least 2 bins");
  let shards =
    match shards with Some s -> s | None -> Exec.default_shards ()
  in
  if shards < 1 then invalid_arg (what ^ ": shards must be >= 1");
  shards

(* Rounding each q_i to the nearest grid multiple can round *up* by as
   much as half a step, so the all-faults subset can land up to n/2
   bins above bins - 1. Size the dense array for that true top: a
   clamped array would silently drop the topmost mass and the
   normalisation would then smear the loss over the whole support,
   biasing the mean far beyond the n*step/2 displacement bound (caught
   by the pfd-exact-vs-grid differential oracle). *)
let grid_shifts ~probs ~values ~step =
  Array.init (Array.length probs) (fun i ->
      if probs.(i) > 0.0 then int_of_float (Float.round (values.(i) /. step))
      else 0)

(* Collect the surviving (value, mass) pairs of the dense array into
   sorted arrays; finalisation is then bit-identical to the historical
   of_mass route (ascending scan, same Kahan order) without the list. *)
let grid_finalise ~step ~dist ~top =
  let count = ref 0 in
  for j = 0 to top do
    if dist.(j) > 0.0 then incr count
  done;
  let xs = Array.make (max 1 !count) 0.0 and ws = Array.make (max 1 !count) 0.0 in
  let out = ref 0 in
  for j = 0 to top do
    if dist.(j) > 0.0 then begin
      xs.(!out) <- float_of_int j *. step;
      ws.(!out) <- dist.(j);
      incr out
    end
  done;
  of_sorted_len ~what:"Pfd_dist.grid_of_vectors" xs ws !out

(* Flat accumulator for the dense block sweeps: a mutable float record
   field stores unboxed, so the per-bin tap loop allocates nothing (a
   float ref would box every store). *)
type block_acc = { mutable acc : float }

(* One binomial-block dense pass: writes dst.(j) for j in [lo, hi] from
   the pre-update values of src, where the block is [counts] (length
   k + 1) over multiples of [shift]. Taps accumulate in ascending m, the
   same expression for every caller, so sequential in-place (src == dst,
   descending — every tap reads j or lower, still unwritten) and sharded
   src -> dst slices produce bit-identical values. The tap count is
   hoisted out of the branch: bins at or above k*shift take all k + 1
   taps unconditionally, lower bins take exactly j/shift. *)
let block_pass ~counts ~k ~shift ~src ~dst ~lo ~hi =
  let a = { acc = 0.0 } in
  let full_lo = k * shift in
  for j = hi downto max lo full_lo do
    a.acc <- counts.(0) *. src.(j);
    for m = 1 to k do
      a.acc <- a.acc +. (counts.(m) *. src.(j - (m * shift)))
    done;
    dst.(j) <- a.acc
  done;
  for j = min hi (full_lo - 1) downto lo do
    a.acc <- counts.(0) *. src.(j);
    for m = 1 to j / shift do
      a.acc <- a.acc +. (counts.(m) *. src.(j - (m * shift)))
    done;
    dst.(j) <- a.acc
  done

(* Grid approximation: round every q_i to a multiple of the grid step and
   convolve on a dense array. The support error per fault is at most half
   a step, so the total displacement is bounded by n * step / 2.

   Faults sharing a shift are coalesced into one binomial block: the
   Poisson-binomial recurrence (Fault_count.poisson_binomial) gives the
   distribution of how many of the k same-shift faults are present, and
   one (k+1)-tap dense pass applies the whole block — the fault loop
   runs distinct-shift passes instead of n. On realistic universes
   (thousands of faults, a few thousand bins) most faults share one of a
   few dozen shifts, so this removes almost all dense sweeps.

   The sequential kernel updates in place, scanning j downward so every
   tap j - m*shift is read pre-update. The sharded kernel writes the
   same expression into a second buffer (reads all pre-update by
   construction) over disjoint bin slices, then swaps buffers: every bin
   gets the identical tap arithmetic in the identical order, so grid
   results are bit-identical for any (shards, domains) combination.
   Versus the retained per-fault path (grid_of_vectors_naive) a block of
   k >= 2 faults associates the per-fault products differently, and the
   blocks run in ascending-shift order rather than index order, so the
   two paths agree to rounding, not bits; a block of one fault reduces
   to exactly the legacy keep/arrive expression, making the whole result
   bit-identical when every shift is unique and already ascending. *)
let grid_of_vectors ?pool ?shards ~probs ~values ~bins () =
  let n = Array.length probs in
  let shards =
    grid_validate ~what:"Pfd_dist.grid_of_vectors" ~probs ~values ~bins ~shards
  in
  let total = Kahan.sum_array values in
  let step = if total > 0.0 then total /. float_of_int (bins - 1) else 1.0 in
  let shifts = grid_shifts ~probs ~values ~step in
  let len = max bins (1 + Array.fold_left ( + ) 0 shifts) in
  (* binomial blocks: (shift, probs of the faults rounding to it), with
     members in index order (stable sort) so the Poisson-binomial
     recurrence consumes them deterministically *)
  let blocks =
    let tagged = ref [] in
    for i = n - 1 downto 0 do
      if probs.(i) > 0.0 && shifts.(i) > 0 then
        tagged := (shifts.(i), probs.(i)) :: !tagged
    done;
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) !tagged
    in
    let rec group = function
      | [] -> []
      | (s, p) :: rest ->
          let same, rest =
            List.partition (fun (s', _) -> s' = s) rest
          in
          (s, Array.of_list (p :: List.map snd same)) :: group rest
    in
    group sorted
  in
  let cur = ref (Array.make len 0.0) in
  (* Spare buffer for the sharded path; stale entries are harmless: a
     sharded round overwrites [0, new_top] entirely, and indices above
     any round's new_top have never been written (tops only grow), so
     they still hold the initial zeros the mass invariant requires. *)
  let spare = ref (Array.make len 0.0) in
  !cur.(0) <- 1.0;
  let top = ref 0 in
  List.iter
    (fun (shift, block_ps) ->
      let k = Array.length block_ps in
      let counts = Fault_count.poisson_binomial block_ps in
      let new_top = !top + (k * shift) in
      if shards > 1 && new_top + 1 >= grid_parallel_min_bins then begin
        let src = !cur and dst = !spare in
        let bounds = Exec.shard_bounds ~range:(new_top + 1) ~shards in
        ignore
          (Exec.map_shards ?pool ~shards
             ~f:(fun sk ->
               let lo, slice = bounds.(sk) in
               if slice > 0 then
                 block_pass ~counts ~k ~shift ~src ~dst ~lo
                   ~hi:(lo + slice - 1))
             ());
        cur := dst;
        spare := src
      end
      else begin
        let dist = !cur in
        block_pass ~counts ~k ~shift ~src:dist ~dst:dist ~lo:0 ~hi:new_top
      end;
      top := new_top)
    blocks;
  grid_finalise ~step ~dist:!cur ~top:!top

(* The historical per-fault grid pass, retained as the reference side of
   the fast-vs-legacy differential oracle: one two-tap dense sweep per
   fault, in index order, finishing through the of_mass list pipeline. *)
let grid_of_vectors_naive ?pool ?shards ~probs ~values ~bins () =
  let n = Array.length probs in
  let shards =
    grid_validate ~what:"Pfd_dist.grid_of_vectors_naive" ~probs ~values ~bins
      ~shards
  in
  let total = Kahan.sum_array values in
  let step = if total > 0.0 then total /. float_of_int (bins - 1) else 1.0 in
  let shifts = grid_shifts ~probs ~values ~step in
  let len = max bins (1 + Array.fold_left ( + ) 0 shifts) in
  let cur = ref (Array.make len 0.0) in
  let spare = ref (Array.make len 0.0) in
  !cur.(0) <- 1.0;
  let top = ref 0 in
  for i = 0 to n - 1 do
    let p = probs.(i) in
    if p > 0.0 then begin
      let shift = shifts.(i) in
      if shift = 0 then begin
        (* region too small for the grid: fold its mass into "no change";
           the caller can check the induced mean error via [mean]. *)
        ()
      end
      else begin
        let new_top = !top + shift in
        if shards > 1 && new_top + 1 >= grid_parallel_min_bins then begin
          let src = !cur and dst = !spare in
          let bounds = Exec.shard_bounds ~range:(new_top + 1) ~shards in
          ignore
            (Exec.map_shards ?pool ~shards
               ~f:(fun k ->
                 let lo, len = bounds.(k) in
                 for j = lo to lo + len - 1 do
                   let keep = src.(j) *. (1.0 -. p) in
                   let arrive =
                     if j >= shift then src.(j - shift) *. p else 0.0
                   in
                   dst.(j) <- keep +. arrive
                 done)
               ());
          cur := dst;
          spare := src
        end
        else begin
          let dist = !cur in
          for j = new_top downto 0 do
            let keep = dist.(j) *. (1.0 -. p) in
            let arrive = if j >= shift then dist.(j - shift) *. p else 0.0 in
            dist.(j) <- keep +. arrive
          done
        end;
        top := new_top
      end
    end
  done;
  let dist = !cur in
  let pairs = ref [] in
  for j = !top downto 0 do
    if dist.(j) > 0.0 then pairs := (float_of_int j *. step, dist.(j)) :: !pairs
  done;
  of_mass !pairs

let grid_single ?pool ?shards u ~bins =
  grid_of_vectors ?pool ?shards ~probs:(Universe.ps u) ~values:(Universe.qs u)
    ~bins ()

let grid_pair ?pool ?shards u ~bins =
  grid_of_vectors ?pool ?shards
    ~probs:(Array.map (fun p -> p *. p) (Universe.ps u))
    ~values:(Universe.qs u) ~bins ()

let single u =
  if Universe.size u <= max_exact_faults then exact_single u
  else grid_single u ~bins:4096

let pair u =
  if Universe.size u <= max_exact_faults then exact_pair u
  else grid_pair u ~bins:4096
