(** Sensitivity of the diversity gain to process improvement
    (Section 4.2 and Appendices A–B).

    The paper represents process improvement as decreases of the fault
    introduction probabilities p_i and studies the sign of the partial
    derivatives of the risk ratio P(N2>0)/P(N1>0): a *negative* derivative
    means decreasing that p_i increases the ratio, i.e. improving the
    process *reduces* the gain from diversity — the paper's headline
    counterintuitive result. *)

val risk_ratio_partial : float array -> int -> float
(** Analytic partial derivative of the eq. (10) risk ratio with respect to
    p_i (closed form, cross-validated against numerical differentiation in
    the test suite). NaN when all probabilities are 0. *)

val risk_ratio_gradient :
  ?pool:Exec.Pool.t -> ?shards:int -> float array -> float array
(** All partial derivatives, O(n): one pass builds compensated
    prefix/suffix log-products of (1 - p_j) and (1 - p_j^2) plus the two
    loop-invariant P(N>0) terms, making each partial O(1). Prefix +
    suffix (not global-product-divided-by-factor), so p_i = 1 stays
    exact with no 0/0. [pool]/[shards] are accepted for API
    compatibility; the O(n) pass is cheaper than dispatching a shard
    task and the result never depends on either. Agrees with
    {!risk_ratio_gradient_naive} to rounding (the incremental-vs-naive
    differential oracle pins the tolerance). *)

val risk_ratio_gradient_naive :
  ?pool:Exec.Pool.t -> ?shards:int -> float array -> float array
(** Retained O(n^2) reference: one independent {!risk_ratio_partial}
    Kahan sum per coordinate, sharded over index slices across the pool;
    identical to the sequential loop for any pool size or shard count.
    The differential-oracle anchor for {!risk_ratio_gradient}. *)

val risk_ratio_k_derivative : b:float array -> k:float -> float
(** Appendix B: with p_i = k * b_i, the derivative of the risk ratio with
    respect to the process-quality parameter k. The paper proves it is
    non-negative for any b and any k with all k*b_i in [0, 1]: uniform
    process improvement always increases the gain from diversity. O(n)
    via the same prefix/suffix machinery as {!risk_ratio_gradient}. *)

val risk_ratio_k_derivative_naive : b:float array -> k:float -> float
(** Retained O(n^2) reference for {!risk_ratio_k_derivative} (one
    {!risk_ratio_partial} per coordinate), used by the differential
    oracles. *)

val stationary_p1 : p2:float -> float
(** Appendix A, n = 2: the unique positive p1 at which the partial
    derivative of the risk ratio with respect to p1 vanishes, in closed
    form: p1z = p2 (sqrt(2/(1+p2)) - 1) / (1 - p2). For p1 below p1z the
    derivative is negative (improvement reduces the gain); above, positive. *)

val risk_ratio_two : p1:float -> p2:float -> float
(** The n = 2 risk ratio (p1^2 + p2^2 - p1^2 p2^2)/(p1 + p2 - p1 p2). *)

val stationary_point :
  float array -> int -> lo:float -> hi:float -> float option
(** Numerically locate a zero of the i-th partial derivative as p_i ranges
    over [lo, hi] with the other coordinates fixed; [None] if the
    derivative does not change sign over the bracket. *)

type improvement_effect = Increases_gain | Decreases_gain | Neutral

val classify_single_improvement : float array -> int -> improvement_effect
(** Effect on the diversity gain of marginally decreasing p_i (Section
    4.2.1): [Increases_gain] when the ratio falls, [Decreases_gain] when it
    rises — the counterintuitive regime. *)
