open Numerics

type t = { channels : int; required : int }

let create ~channels ~required =
  if channels < 1 then invalid_arg "Voting.create: need at least one channel";
  if required < 1 || required > channels then
    invalid_arg "Voting.create: required must lie in [1, channels]";
  { channels; required }

let one_out_of_two = { channels = 2; required = 1 }
let two_out_of_three = { channels = 3; required = 2 }

let channels t = t.channels
let required t = t.required

let fault_defeats_system t ~p =
  (* The system mishandles a demand in fault i's region iff fewer than
     [required] channels are free of fault i, i.e. at least
     channels - required + 1 channels contain it. *)
  let k = t.channels - t.required + 1 in
  Betainc.binomial_tail_direct ~n:t.channels ~p k

let mu t u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      fault_defeats_system t ~p:(Fault.p f) *. Fault.q f)

let var t u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      let s = fault_defeats_system t ~p:(Fault.p f) in
      s *. (1.0 -. s) *. Fault.q f *. Fault.q f)

let sigma t u = sqrt (var t u)

let system_fault_probs t u =
  Array.map (fun f -> fault_defeats_system t ~p:(Fault.p f)) (Universe.faults u)

let p_system_fault_free t u =
  Fault_count.prob_none (system_fault_probs t u)

let p_some_system_fault t u =
  Fault_count.prob_some (system_fault_probs t u)

let risk_ratio_vs_single t u =
  let denom = Fault_count.p_n1_pos u in
  if Stats.is_zero denom then nan else p_some_system_fault t u /. denom

let pfd_dist t u =
  Pfd_dist.exact_of_vectors ~probs:(system_fault_probs t u)
    ~values:(Universe.qs u) ()

let confidence_bound t u ~k = mu t u +. (k *. sigma t u)

let pp ppf t = Fmt.pf ppf "%d-out-of-%d" t.required t.channels

(* ------------------------------------------------------------------ *)
(* Adjudication combinator calculus                                   *)
(* ------------------------------------------------------------------ *)

(* The executable adjudicator (Simulator.Adjudicator) and the analytic
   closed forms below share one counts-level algebra, defined here so a
   formula/simulator divergence can only come from how the counts are
   *produced*, never from two drifting copies of the decision rule.

   A channel's adjudicated vote is one of three lattice points:
   Shutdown (demand detected), No_action (failed silently), Abstain
   (self-check caught the failure, output withheld). Every combinator
   is a function of the vote *counts* only, which makes permutation
   invariance structural. *)

type decision = Shutdown | No_action | Abstain

type policy =
  | Unit
  | Vote of int
  | Compose of policy * policy
  | Fallback of policy * policy

let vote ~required =
  if required < 1 then invalid_arg "Voting.vote: required must be >= 1";
  Vote required

let compose a b = Compose (a, b)
let fallback a b = Fallback (a, b)

let equal_decision a b =
  match (a, b) with
  | Shutdown, Shutdown | No_action, No_action | Abstain, Abstain -> true
  | (Shutdown | No_action | Abstain), _ -> false

let rec equal_policy a b =
  match (a, b) with
  | Unit, Unit -> true
  | Vote r, Vote r' -> r = r'
  | Compose (a1, b1), Compose (a2, b2) | Fallback (a1, b1), Fallback (a2, b2)
    -> equal_policy a1 a2 && equal_policy b1 b2
  | (Unit | Vote _ | Compose _ | Fallback _), _ -> false

(* Fewest channels on which the policy can reach a definite verdict:
   the first stage of a cascade sees the raw channel vector, so only it
   constrains the arity; a fallback is usable whenever either branch
   is. Mirrors the legacy "more votes required than channels" check for
   the plain M-out-of-N instance. *)
let rec policy_min_channels = function
  | Unit -> 1
  | Vote r -> max 1 r
  | Compose (a, _) -> policy_min_channels a
  | Fallback (a, b) -> min (policy_min_channels a) (policy_min_channels b)

(* Survivor semantics over vote counts. [Unit] passes the vector
   through; [Vote r] collapses it to a unanimous verdict — Shutdown on
   a quorum of shutdown votes, Abstain when too few channels are still
   voting for the quorum to be reachable (quorum loss), No_action
   otherwise; [Compose] feeds the first stage's survivors to the
   second; [Fallback] re-adjudicates the original vector through the
   backup when the primary's verdict collapses to Abstain. *)
let rec run_policy p ~shutdowns ~no_actions ~abstains =
  match p with
  | Unit -> (shutdowns, no_actions, abstains)
  | Vote r ->
      if shutdowns >= r then (1, 0, 0)
      else if shutdowns + no_actions < r then (0, 0, 1)
      else (0, 1, 0)
  | Compose (a, b) ->
      let shutdowns, no_actions, abstains =
        run_policy a ~shutdowns ~no_actions ~abstains
      in
      run_policy b ~shutdowns ~no_actions ~abstains
  | Fallback (a, b) ->
      let (s, na, _) as va = run_policy a ~shutdowns ~no_actions ~abstains in
      if s = 0 && na = 0 then run_policy b ~shutdowns ~no_actions ~abstains
      else va

(* Collapse a survivor vector to a verdict: any surviving shutdown vote
   carries (the paper's OR reading), a surviving silent failure beats a
   sea of abstentions, and a vector of pure abstentions abstains. *)
let decide p ~shutdowns ~no_actions ~abstains =
  if shutdowns < 0 || no_actions < 0 || abstains < 0 then
    invalid_arg "Voting.decide: negative vote count";
  let s, na, _ = run_policy p ~shutdowns ~no_actions ~abstains in
  if s > 0 then Shutdown else if na > 0 then No_action else Abstain

let pp_decision ppf = function
  | Shutdown -> Fmt.string ppf "shutdown"
  | No_action -> Fmt.string ppf "no-action"
  | Abstain -> Fmt.string ppf "abstain"

let rec pp_policy ppf = function
  | Unit -> Fmt.string ppf "unit"
  | Vote 1 -> Fmt.string ppf "1-out-of-N (OR)"
  | Vote r -> Fmt.pf ppf "%d-out-of-N" r
  | Compose (a, b) -> Fmt.pf ppf "compose(%a; %a)" pp_policy a pp_policy b
  | Fallback (a, b) -> Fmt.pf ppf "fallback(%a; %a)" pp_policy a pp_policy b

(* ---- closed-form PFD evaluation for composed adjudicators ---- *)

(* P(Bin(n, p) = k) via the log-beta identity C(n, k) =
   1 / ((n+1) B(n-k+1, k+1)); the endpoint probabilities are handled
   outside log space so p in {0, 1} stays exact. *)
let binom_pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then if k = 0 then 1.0 else 0.0
  else if p >= 1.0 then if k = n then 1.0 else 0.0
  else
    let fk = float_of_int k and fn = float_of_int n in
    let log_choose =
      -.log (fn +. 1.0) -. Betainc.log_beta (fn -. fk +. 1.0) (fk +. 1.0)
    in
    exp (log_choose +. (fk *. log p) +. ((fn -. fk) *. Special.log1p (-.p)))

(* Probability that a fault introduced per channel with probability [p]
   — and, when present, caught at development time by the channel's
   self-check with probability [detection] — leads the adjudicated
   system to mishandle a demand in the fault's region. On such a demand
   a clean channel votes Shutdown, an undetected carrier No_action and
   a detected carrier Abstain, so with F ~ Bin(channels, p) carriers of
   which A ~ Bin(F, detection) abstain, the system fails exactly when
   [decide] of the counts is not Shutdown. *)
let policy_defeat_prob policy ~channels ?(detection = 0.0) ~p () =
  if channels < 1 then
    invalid_arg "Voting.policy_defeat_prob: channels must be >= 1";
  if p < 0.0 || p > 1.0 then
    invalid_arg "Voting.policy_defeat_prob: p outside [0, 1]";
  if detection < 0.0 || detection > 1.0 then
    invalid_arg "Voting.policy_defeat_prob: detection outside [0, 1]";
  let acc = Kahan.create () in
  for f = 0 to channels do
    let pf = binom_pmf ~n:channels ~p f in
    if pf > 0.0 then
      for a = 0 to f do
        let pa = binom_pmf ~n:f ~p:detection a in
        if pa > 0.0 then
          let d =
            decide policy ~shutdowns:(channels - f) ~no_actions:(f - a)
              ~abstains:a
          in
          if not (equal_decision d Shutdown) then Kahan.add acc (pf *. pa)
      done
  done;
  Kahan.total acc

let policy_system_fault_probs policy ~channels ?detection u =
  Array.map
    (fun f ->
      policy_defeat_prob policy ~channels ?detection ~p:(Fault.p f) ())
    (Universe.faults u)

let policy_mu policy ~channels ?detection u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      policy_defeat_prob policy ~channels ?detection ~p:(Fault.p f) ()
      *. Fault.q f)

let policy_var policy ~channels ?detection u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      let s = policy_defeat_prob policy ~channels ?detection ~p:(Fault.p f) () in
      s *. (1.0 -. s) *. Fault.q f *. Fault.q f)

let policy_sigma policy ~channels ?detection u =
  sqrt (policy_var policy ~channels ?detection u)

let policy_p_some_system_fault policy ~channels ?detection u =
  Fault_count.prob_some (policy_system_fault_probs policy ~channels ?detection u)

let policy_risk_ratio_vs_single policy ~channels ?detection u =
  let denom = Fault_count.p_n1_pos u in
  if Stats.is_zero denom then nan
  else policy_p_some_system_fault policy ~channels ?detection u /. denom

let policy_pfd_dist policy ~channels ?detection u =
  Pfd_dist.exact_of_vectors
    ~probs:(policy_system_fault_probs policy ~channels ?detection u)
    ~values:(Universe.qs u) ()

let arch_policy t = Vote t.required
