open Numerics

type t = { channels : int; required : int }

let create ~channels ~required =
  if channels < 1 then invalid_arg "Voting.create: need at least one channel";
  if required < 1 || required > channels then
    invalid_arg "Voting.create: required must lie in [1, channels]";
  { channels; required }

let one_out_of_two = { channels = 2; required = 1 }
let two_out_of_three = { channels = 3; required = 2 }

let channels t = t.channels
let required t = t.required

let fault_defeats_system t ~p =
  (* The system mishandles a demand in fault i's region iff fewer than
     [required] channels are free of fault i, i.e. at least
     channels - required + 1 channels contain it. *)
  let k = t.channels - t.required + 1 in
  Betainc.binomial_tail_direct ~n:t.channels ~p k

let mu t u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      fault_defeats_system t ~p:(Fault.p f) *. Fault.q f)

let var t u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      let s = fault_defeats_system t ~p:(Fault.p f) in
      s *. (1.0 -. s) *. Fault.q f *. Fault.q f)

let sigma t u = sqrt (var t u)

let system_fault_probs t u =
  Array.map (fun f -> fault_defeats_system t ~p:(Fault.p f)) (Universe.faults u)

let p_system_fault_free t u =
  Fault_count.prob_none (system_fault_probs t u)

let p_some_system_fault t u =
  Fault_count.prob_some (system_fault_probs t u)

let risk_ratio_vs_single t u =
  let denom = Fault_count.p_n1_pos u in
  if Stats.is_zero denom then nan else p_some_system_fault t u /. denom

let pfd_dist t u =
  Pfd_dist.exact_of_vectors ~probs:(system_fault_probs t u)
    ~values:(Universe.qs u) ()

let confidence_bound t u ~k = mu t u +. (k *. sigma t u)

let pp ppf t = Fmt.pf ppf "%d-out-of-%d" t.required t.channels
