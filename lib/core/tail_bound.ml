open Numerics

(* Log of the moment generating function of the PFD: the PFD is a sum of
   independent two-point variables (q_i with probability p_i, else 0), so
   log E[e^{lambda Theta}] = sum_i log(1 - p_i + p_i e^{lambda q_i}),
   evaluated stably via log1p(p_i (e^{lambda q_i} - 1)). *)
let log_mgf ~probs ~values lambda =
  Kahan.sum_over (Array.length probs) (fun i ->
      Special.log1p (probs.(i) *. Special.expm1 (lambda *. values.(i))))

let chernoff_exponent ~probs ~values x =
  (* sup_{lambda >= 0} (lambda x - log MGF(lambda)), found by golden
     section on a bracket grown until the objective turns over. *)
  let objective lambda = (lambda *. x) -. log_mgf ~probs ~values lambda in
  let rec grow hi best =
    if hi > 1e9 then hi
    else
      let v = objective hi in
      if v < best then hi else grow (hi *. 4.0) v
  in
  let hi = grow 1.0 (objective 0.0) in
  let lambda_star =
    Rootfind.minimize_golden (fun l -> -.objective l) ~lo:0.0 ~hi
  in
  max 0.0 (objective lambda_star)

let chernoff_sf_of_vectors ~probs ~values x =
  let mean = Kahan.dot probs values in
  if x <= mean then 1.0 (* Chernoff is vacuous at or below the mean *)
  else exp (-.chernoff_exponent ~probs ~values x)

let chernoff_sf_single u x =
  chernoff_sf_of_vectors ~probs:(Universe.ps u) ~values:(Universe.qs u) x

let chernoff_sf_pair u x =
  chernoff_sf_of_vectors
    ~probs:(Array.map (fun p -> p *. p) (Universe.ps u))
    ~values:(Universe.qs u) x

let hoeffding_sf_of_vectors ~probs ~values x =
  (* Hoeffding: the i-th term lies in [0, q_i], so
     P(Theta - mean >= t) <= exp(-2 t^2 / sum q_i^2). Cruder than Chernoff
     but evaluable on a napkin — the assessor's sanity check. *)
  let mean = Kahan.dot probs values in
  if x <= mean then 1.0
  else
    let t = x -. mean in
    let denom =
      Kahan.sum_over (Array.length values) (fun i -> values.(i) *. values.(i))
    in
    if Stats.is_zero denom then 0.0 else exp (-2.0 *. t *. t /. denom)

let hoeffding_sf_single u x =
  hoeffding_sf_of_vectors ~probs:(Universe.ps u) ~values:(Universe.qs u) x

let guaranteed_bound_single u ~confidence =
  (* Smallest x with Chernoff P(Theta1 > x) <= 1 - confidence: a RIGOROUS
     counterpart of the Section 5 mu + k sigma bound (which relies on the
     unproven normal approximation). Bisection on x over [mu, total_q]. *)
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Tail_bound.guaranteed_bound_single: confidence outside (0, 1)";
  let target = 1.0 -. confidence in
  let mu = Moments.mu1 u in
  let hi = Universe.total_q u in
  if chernoff_sf_single u hi > target then hi
  else
    Rootfind.bisect ~tol:1e-12
      (fun x -> chernoff_sf_single u x -. target)
      ~lo:mu ~hi

let guaranteed_bound_pair u ~confidence =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Tail_bound.guaranteed_bound_pair: confidence outside (0, 1)";
  let target = 1.0 -. confidence in
  let mu = Moments.mu2 u in
  let hi = Universe.total_q u in
  if chernoff_sf_pair u hi > target then hi
  else
    Rootfind.bisect ~tol:1e-12
      (fun x -> chernoff_sf_pair u x -. target)
      ~lo:mu ~hi
