open Numerics

let mu1 u = Kahan.sum_over (Universe.size u) (fun i -> Fault.mean_contribution (Universe.fault u i))

let mu2 u =
  Kahan.sum_over (Universe.size u) (fun i ->
      Fault.common_mean_contribution (Universe.fault u i))

let var1 u =
  Kahan.sum_over (Universe.size u) (fun i ->
      Fault.variance_contribution (Universe.fault u i))

let var2 u =
  Kahan.sum_over (Universe.size u) (fun i ->
      Fault.common_variance_contribution (Universe.fault u i))

let sigma1 u = sqrt (var1 u)
let sigma2 u = sqrt (var2 u)

let mu_n u ~channels =
  if channels < 1 then invalid_arg "Moments.mu_n: need at least one channel";
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      (Fault.p f ** float_of_int channels) *. Fault.q f)

let var_n u ~channels =
  if channels < 1 then invalid_arg "Moments.var_n: need at least one channel";
  Kahan.sum_over (Universe.size u) (fun i ->
      let f = Universe.fault u i in
      let pn = Fault.p f ** float_of_int channels in
      pn *. (1.0 -. pn) *. Fault.q f *. Fault.q f)

let sigma_n u ~channels = sqrt (var_n u ~channels)

let expected_fault_count u =
  Kahan.sum_over (Universe.size u) (fun i -> Fault.p (Universe.fault u i))

let expected_common_fault_count u =
  Kahan.sum_over (Universe.size u) (fun i ->
      let p = Fault.p (Universe.fault u i) in
      p *. p)

let mean_gain u =
  let m2 = mu2 u in
  if Stats.is_zero m2 then infinity else mu1 u /. m2

type t = { mu1 : float; mu2 : float; sigma1 : float; sigma2 : float }

let compute u = { mu1 = mu1 u; mu2 = mu2 u; sigma1 = sigma1 u; sigma2 = sigma2 u }

let pp ppf m =
  Fmt.pf ppf "mu1=%.6g sigma1=%.6g mu2=%.6g sigma2=%.6g" m.mu1 m.sigma1 m.mu2
    m.sigma2
