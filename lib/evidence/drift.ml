(* Demand-profile drift detection.

   A proven-in-use argument is only as good as the stability of the
   demand profile it was collected under (Schabe & Braband; experiment
   E28 quantifies the PFD's sensitivity to profile error). This module
   compares the empirical demand histogram accumulated from the run log
   (the [demand_hist] field of [runner.run] events) against the profile
   the operating evidence was *declared* to be collected under, with a
   Pearson chi-square goodness-of-fit test and a KL divergence.

   The chi-square expectation is unreliable for bins with tiny expected
   counts, so bins whose expected count falls below [min_expected] are
   pooled into one rest bin (a deterministic function of the declared
   profile and the total count only, so verdicts stay reproducible).
   Demands observed where the declared profile puts zero probability are
   impossible under the declaration; they are counted separately
   ([impossible]) and raise the alarm unconditionally, keeping the
   reported statistics finite. *)

type result = {
  total : int;
  chi_square : float;
  dof : int;
  p_value : float;
  kl_divergence : float;
  impossible : int;
  alarm : bool;
}

let min_expected = 5.0

(* Upper-tail chi-square p-value via the Wilson-Hilferty cube-root
   normal approximation: (X/k)^(1/3) is approximately normal with mean
   1 - 2/(9k) and variance 2/(9k). Accurate to a few percent for k >= 1,
   far inside what an alarm threshold needs. *)
let chi_square_p_value ~dof x =
  if dof < 1 then invalid_arg "Drift.chi_square_p_value: dof must be >= 1";
  if x <= 0.0 then 1.0
  else
    let k = float_of_int dof in
    let v = 2.0 /. (9.0 *. k) in
    let z = (((x /. k) ** (1.0 /. 3.0)) -. (1.0 -. v)) /. sqrt v in
    1.0 -. Numerics.Normal_dist.cdf z

let assess ~expected ~counts ~alpha =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Drift.assess: alpha must lie strictly in (0, 1)";
  let n_expected = Array.length expected in
  if n_expected = 0 then invalid_arg "Drift.assess: expected profile is empty";
  Array.iter
    (fun p ->
      if p < 0.0 || not (Float.is_finite p) then
        invalid_arg "Drift.assess: expected probabilities must be finite >= 0")
    expected;
  let total =
    let t = ref 0 in
    Array.iter (fun c -> t := !t + c) counts;
    !t
  in
  (* Demands outside the declared support: either an id past the declared
     space, or an id the declared profile gives zero probability. *)
  let impossible = ref 0 in
  Array.iteri
    (fun id c ->
      if c > 0 && (id >= n_expected || Numerics.Stats.is_zero expected.(id))
      then impossible := !impossible + c)
    counts;
  let possible = total - !impossible in
  if possible = 0 then
    {
      total;
      chi_square = 0.0;
      dof = max 1 (n_expected - 1);
      p_value = 1.0;
      kl_divergence = 0.0;
      impossible = !impossible;
      alarm = !impossible > 0;
    }
  else begin
    let n = float_of_int possible in
    (* Pool small-expectation bins. Bin assignment depends only on the
       declared profile and the total, never on the observed counts, so
       the statistic is a pure function of (expected, counts). *)
    let chi = Numerics.Kahan.create () in
    let kl = Numerics.Kahan.create () in
    let pooled_obs = ref 0 in
    let pooled_exp = Numerics.Kahan.create () in
    let own_bins = ref 0 in
    Array.iteri
      (fun id p ->
        if not (Numerics.Stats.is_zero p) then begin
          let obs =
            if id < Array.length counts then counts.(id) else 0
          in
          (* KL term over the raw (unpooled) support: 0 when unobserved. *)
          if obs > 0 then begin
            let q = float_of_int obs /. n in
            Numerics.Kahan.add kl (q *. log (q /. p))
          end;
          let exp_count = p *. n in
          if exp_count >= min_expected then begin
            incr own_bins;
            let d = float_of_int obs -. exp_count in
            Numerics.Kahan.add chi (d *. d /. exp_count)
          end
          else begin
            pooled_obs := !pooled_obs + obs;
            Numerics.Kahan.add pooled_exp exp_count
          end
        end)
      expected;
    let bins =
      let pooled_mass = Numerics.Kahan.total pooled_exp in
      if Numerics.Stats.is_zero pooled_mass then !own_bins
      else begin
        let d = float_of_int !pooled_obs -. pooled_mass in
        Numerics.Kahan.add chi (d *. d /. pooled_mass);
        !own_bins + 1
      end
    in
    let chi_square = Numerics.Kahan.total chi in
    let dof = max 1 (bins - 1) in
    let p_value =
      if bins < 2 then 1.0 else chi_square_p_value ~dof chi_square
    in
    {
      total;
      chi_square;
      dof;
      p_value;
      kl_divergence = Numerics.Kahan.total kl;
      impossible = !impossible;
      alarm = !impossible > 0 || p_value < alpha;
    }
  end
